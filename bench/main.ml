(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) and runs Bechamel micro-benchmarks over the pipeline
   stages plus the design-choice ablations called out in DESIGN.md.

   Absolute numbers differ from the paper (the agents are OCaml models on
   this machine, not 55–80K LoC of C on the authors' testbed); the claims
   reproduced are the *shapes*: orderings between tests and agents, the
   grouping reduction, the 5/7 detection result, the rediscovered §5.1.2
   behaviour classes, and the concretization trade-offs.

   Environment knobs:
     SOFT_BENCH_PATHS=<n>   per-run path budget (default 4000)
     SOFT_BENCH_FULL=1      raise the budget to 100000 (long run)
     SOFT_BENCH_SKIP_MICRO=1  skip the Bechamel section
     SOFT_BENCH_JOBS=<n>    worker domains for the parallel section
                            (default: one per core)

   Machine-readable output: `--json` (or SOFT_BENCH_JSON=<path>) also
   writes the stage timings, pairs/sec, cache hit rates, and the -j N
   speedup to BENCH_crosscheck.json (or <path>) for CI trend tracking. *)

module Runner = Harness.Runner
module Spec = Harness.Test_spec
module Engine = Symexec.Engine
module Coverage = Symexec.Coverage

let budget =
  match Sys.getenv_opt "SOFT_BENCH_PATHS" with
  | Some s -> int_of_string s
  | None -> if Sys.getenv_opt "SOFT_BENCH_FULL" <> None then 100_000 else 4_000

(* --- machine-readable results ----------------------------------------- *)

type json =
  | J_int of int
  | J_num of float
  | J_str of string
  | J_obj of (string * json) list
  | J_arr of json list

let rec emit_json buf = function
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_num f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | J_str s ->
    Buffer.add_char buf '"';
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | J_obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        emit_json buf (J_str k);
        Buffer.add_char buf ':';
        emit_json buf v)
      fields;
    Buffer.add_char buf '}'
  | J_arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit_json buf v)
      items;
    Buffer.add_char buf ']'

let json_path =
  match Sys.getenv_opt "SOFT_BENCH_JSON" with
  | Some p -> Some p
  | None ->
    if Array.exists (( = ) "--json") Sys.argv then Some "BENCH_crosscheck.json" else None

(* --chaos-seed N selects the fault stream of the chaos-driven sections
   (default 7, the historical value); the chosen seed lands in the JSON so
   a recorded run names the stream it measured *)
let chaos_seed =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--chaos-seed" then int_of_string_opt Sys.argv.(i + 1)
    else find (i + 1)
  in
  Option.value ~default:7 (find 1)

let json_sections : (string * json) list ref = ref []

let record name j = json_sections := (name, j) :: !json_sections

let write_json () =
  match json_path with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 4096 in
    emit_json buf (J_obj (List.rev !json_sections));
    Buffer.add_char buf '\n';
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
    Printf.printf "wrote %s\n" path

(* Ablation control runs deliberately replay production work cold — caches
   cleared between stages, memo layers switched off — to provide the
   baselines their sections report.  Banking their query traffic here and
   subtracting it from the closing solver totals keeps the suite-wide
   cache figures about the system, not the harness: a hit rate that
   counted tens of thousands of deliberately-uncached control queries
   would understate what the cache does for every production-shaped
   section.  The excluded volume is reported alongside the totals. *)
type excluded_stats = {
  mutable ex_sat : int;
  mutable ex_cache : int;
  mutable ex_canonical : int;
  mutable ex_interval : int;
}

let excluded = { ex_sat = 0; ex_cache = 0; ex_canonical = 0; ex_interval = 0 }

let ablation f =
  let s = Smt.Solver.stats () in
  let sat0 = s.Smt.Solver.sat_calls
  and cache0 = s.Smt.Solver.cache_hits
  and canon0 = s.Smt.Solver.canonical_hits
  and interval0 = s.Smt.Solver.interval_hits in
  Fun.protect
    ~finally:(fun () ->
      excluded.ex_sat <- excluded.ex_sat + (s.Smt.Solver.sat_calls - sat0);
      excluded.ex_cache <- excluded.ex_cache + (s.Smt.Solver.cache_hits - cache0);
      excluded.ex_canonical <-
        excluded.ex_canonical + (s.Smt.Solver.canonical_hits - canon0);
      excluded.ex_interval <-
        excluded.ex_interval + (s.Smt.Solver.interval_hits - interval0))
    f

let solver_stats_json () =
  Smt.Solver.capture_expr_stats ();
  let s = Smt.Solver.stats () in
  let sat_calls = s.Smt.Solver.sat_calls - excluded.ex_sat in
  let cache_hits = s.Smt.Solver.cache_hits - excluded.ex_cache in
  let canonical_hits = s.Smt.Solver.canonical_hits - excluded.ex_canonical in
  let hit_rate =
    (* a hit is any verdict served from either memo level — the exact-key
       cache or the α-invariant canonical cache *)
    let hits = cache_hits + canonical_hits in
    let looked = sat_calls + hits in
    if looked = 0 then 0.0 else float_of_int hits /. float_of_int looked
  in
  J_obj
    [
      ("sat_calls", J_int sat_calls);
      ("cache_hits", J_int cache_hits);
      ("canonical_hits", J_int canonical_hits);
      ("cache_hit_rate", J_num hit_rate);
      ("cache_evictions", J_int s.Smt.Solver.cache_evictions);
      ("interval_hits", J_int (s.Smt.Solver.interval_hits - excluded.ex_interval));
      ("rows_pruned", J_int s.Smt.Solver.rows_pruned);
      ("pairs_skipped_by_pruning", J_int s.Smt.Solver.pairs_skipped_by_pruning);
      ("subsumed_groups", J_int s.Smt.Solver.subsumed_groups);
      ("expr_nodes", J_int s.Smt.Solver.expr_nodes);
      ( "excluded_ablation_controls",
        J_obj
          [
            ("sat_calls", J_int excluded.ex_sat);
            ("cache_hits", J_int excluded.ex_cache);
            ("canonical_hits", J_int excluded.ex_canonical);
            ("interval_hits", J_int excluded.ex_interval);
          ] );
    ]

let agents =
  [
    ("Reference Switch", Switches.Reference_switch.agent);
    ("Modified Switch", Switches.Modified_switch.agent);
    ("Open vSwitch", Switches.Open_vswitch.agent);
  ]

let line () = print_endline (String.make 100 '-')

let header title =
  print_newline ();
  line ();
  Printf.printf "%s\n" title;
  line ()

(* one shared cache of phase-1 runs: (test id, agent name) -> run *)
let run_cache : (string * string, Runner.run) Hashtbl.t = Hashtbl.create 64

(* first-pass crosscheck times from Table 3, for the regression re-run
   section to compare against *)
let first_check_time : (string, float) Hashtbl.t = Hashtbl.create 8

(* The solver cache is never cleared between production-shaped sections:
   the production pipeline ({!Soft.Pipeline.compare_agents}) executes
   every agent and the crosscheck against one warm per-domain cache, and
   a suite driver runs all tests in one process the same way.  Nearly
   identical switches re-issue nearly identical path queries, and later
   tests reuse earlier tests' verdicts — that reuse is part of the system
   under measurement.  (The bench used to clear per agent "so per-agent
   CPU times are not flattered"; that measured a cache policy no
   deployment uses.)  Sections that need cold baselines clear for
   themselves and run under {!ablation}. *)
let get_run ?(max_paths = budget) (spec : Spec.t) (name, agent) =
  let key = (spec.Spec.id, name) in
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
    let r = Runner.execute ~max_paths agent spec in
    Hashtbl.replace run_cache key r;
    r

(* ---------------------------------------------------------------------- *)
(* Table 1: the test suite *)

let table1 () =
  header "Table 1: Tests used in the evaluation";
  Printf.printf "%-14s %s\n" "Test" "Description";
  List.iter
    (fun (t : Spec.t) -> Printf.printf "%-14s %s\n" t.Spec.label t.description)
    (Spec.all ())

(* ---------------------------------------------------------------------- *)
(* Table 2: symbolic execution statistics per test and agent *)

let table2 () =
  header
    (Printf.sprintf
       "Table 2: Symbolic execution statistics (path budget %d; time = CPU seconds;\n\
        constraint size = boolean operations, avg/max)" budget);
  Printf.printf "%-14s %5s | %32s | %32s | %32s\n" "Test" "#msgs" "Reference Switch"
    "Modified Switch" "Open vSwitch";
  Printf.printf "%-14s %5s | %8s %7s %7s %7s" "" "" "time" "paths" "avg" "max";
  Printf.printf " | %8s %7s %7s %7s" "time" "paths" "avg" "max";
  Printf.printf " | %8s %7s %7s %7s\n" "time" "paths" "avg" "max";
  List.iter
    (fun (spec : Spec.t) ->
      Printf.printf "%-14s %5d" spec.Spec.label spec.message_count;
      List.iter
        (fun agent ->
          let r = get_run spec agent in
          let avg, mx = Runner.constraint_sizes r in
          Printf.printf " | %7.2fs %7d %7.1f %7d%!" r.Runner.run_stats.Engine.cpu_time
            (List.length r.run_paths) avg mx)
        agents;
      Printf.printf "\n%!")
    (Spec.all ())

(* ---------------------------------------------------------------------- *)
(* Table 3: grouping and inconsistency checking (Reference vs Open vSwitch) *)

(* FlowMod is excluded, as in the paper's Table 3 (its intersection stage
   is the >28h outlier there). *)
let table3_tests () =
  [
    Spec.packet_out (); Spec.stats_request (); Spec.set_config (); Spec.eth_flow_mod ();
    Spec.cs_flow_mods (); Spec.short_symb ();
  ]

let table3 () =
  header
    "Table 3: Grouping time / #distinct results (Reference, OVS) and inconsistency checking";
  Printf.printf "%-14s | %18s | %18s | %18s\n" "Test" "Reference grouping" "OVS grouping"
    "Inconsist. checking";
  Printf.printf "%-14s | %10s %7s | %10s %7s | %10s %7s\n" "" "time" "#res" "time" "#res"
    "time" "#found";
  let rows = ref [] in
  List.iter
    (fun (spec : Spec.t) ->
      let ra = get_run spec (List.nth agents 0) in
      let rb = get_run spec (List.nth agents 2) in
      let ga = Soft.Grouping.of_run ra in
      let gb = Soft.Grouping.of_run rb in
      let outcome = Soft.Crosscheck.check ga gb in
      let check_time = outcome.Soft.Crosscheck.o_check_time in
      Hashtbl.replace first_check_time spec.Spec.id check_time;
      let pairs = outcome.Soft.Crosscheck.o_pairs_checked in
      rows :=
        J_obj
          [
            ("test", J_str spec.Spec.id);
            ("group_time_a", J_num ga.Soft.Grouping.gr_group_time);
            ("group_time_b", J_num gb.Soft.Grouping.gr_group_time);
            ("check_time", J_num check_time);
            ("pairs_checked", J_int pairs);
            ( "pairs_per_sec",
              J_num (if check_time > 0.0 then float_of_int pairs /. check_time else 0.0) );
            ("inconsistencies", J_int (Soft.Crosscheck.count outcome));
            ("undecided", J_int (Soft.Crosscheck.undecided_count outcome));
          ]
        :: !rows;
      Printf.printf "%-14s | %9.3fs %7d | %9.3fs %7d | %9.2fs %7d\n%!" spec.Spec.label
        ga.Soft.Grouping.gr_group_time
        (Soft.Grouping.distinct_results ga)
        gb.Soft.Grouping.gr_group_time
        (Soft.Grouping.distinct_results gb)
        check_time (Soft.Crosscheck.count outcome))
    (table3_tests ());
  record "stages" (J_arr (List.rev !rows))

(* ---------------------------------------------------------------------- *)
(* Table 4: instruction and branch coverage *)

let no_message_spec =
  {
    Spec.id = "no_message";
    label = "No Message";
    description = "connection setup only";
    message_count = 0;
    inputs = [];
  }

let table4 () =
  header "Table 4: Instruction and branch coverage per test (percent)";
  Printf.printf "%-14s | %19s | %19s\n" "Test" "Reference Switch" "Open vSwitch";
  Printf.printf "%-14s | %9s %9s | %9s %9s\n" "" "Inst.(%)" "Branch(%)" "Inst.(%)" "Branch(%)";
  let tests = no_message_spec :: Spec.all () in
  let cumulative = Hashtbl.create 4 in
  List.iter
    (fun (spec : Spec.t) ->
      Printf.printf "%-14s" spec.Spec.label;
      List.iter
        (fun ((name, _) as agent) ->
          let r = get_run spec agent in
          let rep = Runner.coverage_report r in
          (let prev =
             match Hashtbl.find_opt cumulative name with
             | Some s -> s
             | None -> Coverage.empty_set ()
           in
           Hashtbl.replace cumulative name (Coverage.union prev r.Runner.run_coverage));
          Printf.printf " | %8.2f%% %8.2f%%" (Coverage.instr_pct rep) (Coverage.branch_pct rep))
        [ List.nth agents 0; List.nth agents 2 ];
      Printf.printf "\n%!")
    tests;
  Printf.printf "%-14s" "Cumulative";
  List.iter
    (fun (name, _) ->
      let set = try Hashtbl.find cumulative name with Not_found -> Coverage.empty_set () in
      let rep = Coverage.report (if name = "Reference Switch" then "reference" else "ovs") set in
      Printf.printf " | %8.2f%% %8.2f%%" (Coverage.instr_pct rep) (Coverage.branch_pct rep))
    [ List.nth agents 0; List.nth agents 2 ];
  Printf.printf "\n";
  Printf.printf
    "(the remaining cumulative gap is code unreachable through the control channel:\n\
    \ timer-driven expiry, async port events, teardown — the paper's ~75%% observation)\n"

(* ---------------------------------------------------------------------- *)
(* Table 5: effects of concretizing inputs *)

let table5 () =
  header "Table 5: Effects of concretizing on execution time, paths and instruction coverage";
  Printf.printf "%-18s %10s %8s %10s\n" "Test" "Time" "Paths" "Coverage";
  let reference = List.nth agents 0 in
  let row label (spec : Spec.t) =
    let r = get_run spec reference in
    let rep = Runner.coverage_report r in
    Printf.printf "%-18s %9.2fs %8d %9.2f%%\n%!" label r.Runner.run_stats.Engine.cpu_time
      (List.length r.run_paths) (Coverage.instr_pct rep)
  in
  row "Fully Symbolic" (Spec.fully_symbolic ());
  row "Concrete Match" (Spec.concrete_match ());
  row "Concrete Action" (Spec.concrete_action ());
  row "Concrete Probe" (Spec.probe_ablation ~symbolic_probe:false ());
  row "Symbolic Probe" (Spec.probe_ablation ~symbolic_probe:true ())

(* ---------------------------------------------------------------------- *)
(* Figure 4: coverage as a function of the number of symbolic messages *)

let figure4 () =
  header "Figure 4: Reference switch code coverage vs number of symbolic messages";
  Printf.printf "%-10s %10s %10s %8s %9s\n" "#messages" "Inst.(%)" "Branch(%)" "paths" "time";
  List.iter
    (fun n ->
      let spec = Spec.figure4_sequence ~messages:n () in
      let r = get_run spec (List.nth agents 0) in
      let rep = Runner.coverage_report r in
      Printf.printf "%-10d %9.2f%% %9.2f%% %8d %8.2fs\n%!" n (Coverage.instr_pct rep)
        (Coverage.branch_pct rep)
        (List.length r.Runner.run_paths)
        r.run_stats.Engine.cpu_time)
    [ 1; 2; 3 ]

(* ---------------------------------------------------------------------- *)
(* Section 5.1.1: Modified Switch vs Reference Switch (5/7 detection) *)

let section_5_1_1 () =
  header "Section 5.1.1: Modified Switch vs Reference Switch (injected differences)";
  let tests = [ Spec.packet_out (); Spec.stats_request (); Spec.set_config (); Spec.cs_flow_mods () ] in
  let detected = Hashtbl.create 8 in
  List.iter
    (fun (spec : Spec.t) ->
      let ra = get_run spec (List.nth agents 0) in
      let rb = get_run spec (List.nth agents 1) in
      let outcome = Soft.Crosscheck.check (Soft.Grouping.of_run ra) (Soft.Grouping.of_run rb) in
      Printf.printf "%-14s %4d inconsistencies\n%!" spec.Spec.label
        (Soft.Crosscheck.count outcome);
      List.iter
        (fun (inc : Soft.Crosscheck.inconsistency) ->
          match
            Switches.Modified_switch.attribute_inconsistency ~test:spec.Spec.id
              ~key_a:(Openflow.Trace.result_key inc.Soft.Crosscheck.i_result_a)
              ~key_b:(Openflow.Trace.result_key inc.i_result_b)
          with
          | Some m -> Hashtbl.replace detected m ()
          | None -> ())
        outcome.Soft.Crosscheck.o_inconsistencies)
    tests;
  let found = ref 0 in
  List.iter
    (fun (m : Switches.Modified_switch.injected) ->
      let hit = Hashtbl.mem detected m.Switches.Modified_switch.inj_id in
      if hit then incr found;
      Printf.printf "  %s %s: %s\n"
        (if hit then "[FOUND] " else "[MISSED]")
        m.inj_id m.inj_description)
    Switches.Modified_switch.injected_modifications;
  Printf.printf "=> SOFT pinpointed %d of 7 injected modifications (paper: 5 of 7)\n" !found

(* ---------------------------------------------------------------------- *)
(* Section 5.1.2: Reference vs Open vSwitch behaviour classes *)

let section_5_1_2 () =
  header "Section 5.1.2: Open vSwitch vs Reference Switch (root-cause classes)";
  let tests =
    [ Spec.packet_out (); Spec.stats_request (); Spec.eth_flow_mod (); Spec.short_symb () ]
  in
  let class_table : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (spec : Spec.t) ->
      let ra = get_run spec (List.nth agents 0) in
      let rb = get_run spec (List.nth agents 2) in
      let outcome = Soft.Crosscheck.check (Soft.Grouping.of_run ra) (Soft.Grouping.of_run rb) in
      Printf.printf "%-14s %4d inconsistencies, %d root-cause classes\n%!" spec.Spec.label
        (Soft.Crosscheck.count outcome)
        (List.length (Soft.Report.summarize outcome));
      List.iter
        (fun (s : Soft.Report.summary) ->
          let name = Soft.Report.class_name s.Soft.Report.s_class in
          Hashtbl.replace class_table name
            (s.s_count + try Hashtbl.find class_table name with Not_found -> 0))
        (Soft.Report.summarize outcome))
    tests;
  Printf.printf "\nfindings across tests (cf. the paper's narrative):\n";
  Hashtbl.iter (fun name count -> Printf.printf "  %4d x %s\n" count name) class_table;
  print_newline ();
  Printf.printf "expected classes present:\n";
  let have name = Hashtbl.mem class_table name in
  List.iter
    (fun cls ->
      Printf.printf "  [%s] %s\n" (if have (Soft.Report.class_name cls) then "x" else " ")
        (Soft.Report.class_name cls))
    Soft.Report.
      [ Agent_crash; Missing_error; Different_errors; Rejected_vs_applied;
        Forwarding_difference ]

(* ---------------------------------------------------------------------- *)
(* Design-choice ablations (DESIGN.md §5) *)

(* ---------------------------------------------------------------------- *)
(* Regression re-run: the deployment SOFT is built for is a standing
   interoperability suite re-executed whenever a switch changes.  In the
   same process, re-run every Table 3 comparison from scratch — symbolic
   execution, grouping, crosscheck, no run memo — against the cache the
   first pass left warm.  Every query a patch did not change is served
   from the memo levels; the re-run pays only for what moved. *)

let regression_rerun () =
  header
    "Regression re-run: full Table 3 suite again in the same process (warm cache,\n\
     as a standing interoperability suite re-runs after a switch patch)";
  let st = Smt.Solver.stats () in
  let sat0 = st.Smt.Solver.sat_calls
  and cache0 = st.Smt.Solver.cache_hits
  and canon0 = st.Smt.Solver.canonical_hits in
  Printf.printf "%-14s %6s | %10s %10s | %s\n" "Test" "pairs" "t(first)" "t(rerun)"
    "speedup";
  let rows = ref [] in
  let total_pairs = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (spec : Spec.t) ->
      let ra = Runner.execute ~max_paths:budget (snd (List.nth agents 0)) spec in
      let rb = Runner.execute ~max_paths:budget (snd (List.nth agents 2)) spec in
      let o =
        Soft.Crosscheck.check (Soft.Grouping.of_run ra) (Soft.Grouping.of_run rb)
      in
      let pairs = o.Soft.Crosscheck.o_pairs_checked in
      let rerun = o.Soft.Crosscheck.o_check_time in
      let first =
        match Hashtbl.find_opt first_check_time spec.Spec.id with
        | Some t -> t
        | None -> 0.0
      in
      let speedup = if rerun > 0.0 then first /. rerun else 0.0 in
      total_pairs := !total_pairs + pairs;
      Printf.printf "%-14s %6d | %9.3fs %9.3fs | %6.1fx\n%!" spec.Spec.label pairs first
        rerun speedup;
      rows :=
        J_obj
          [
            ("test", J_str spec.Spec.id);
            ("pairs_checked", J_int pairs);
            ("first_check_time", J_num first);
            ("rerun_check_time", J_num rerun);
            ("speedup", J_num speedup);
          ]
        :: !rows)
    (table3_tests ());
  let wall = Unix.gettimeofday () -. t0 in
  let sat = st.Smt.Solver.sat_calls - sat0 in
  let cache = st.Smt.Solver.cache_hits - cache0 in
  let canon = st.Smt.Solver.canonical_hits - canon0 in
  let hit_rate =
    let hits = cache + canon in
    let looked = sat + hits in
    if looked = 0 then 0.0 else float_of_int hits /. float_of_int looked
  in
  Printf.printf
    "re-run end to end (incl. symbolic execution): %.2fs — %d exact + %d canonical \
     hits, %d SAT calls (hit rate %.3f)\n"
    wall cache canon sat hit_rate;
  record "regression"
    (J_obj
       [
         ("tests", J_arr (List.rev !rows));
         ("pairs_checked", J_int !total_pairs);
         ("rerun_wall_time", J_num wall);
         ("sat_calls", J_int sat);
         ("cache_hits", J_int cache);
         ("canonical_hits", J_int canon);
         ("cache_hit_rate", J_num hit_rate);
       ])

(* ---------------------------------------------------------------------- *)

let ablation_interval_filter () =
  header "Ablation: interval pre-filter on/off (symbolic execution of Packet Out, reference)";
  let spec = Spec.packet_out () in
  let time use_interval =
    Smt.Solver.clear_cache ();
    let t0 = Sys.time () in
    let r = Runner.execute ~max_paths:600 ~use_interval Switches.Reference_switch.agent spec in
    (Sys.time () -. t0, List.length r.Runner.run_paths)
  in
  let t_on, p_on = time true in
  let t_off, p_off = time false in
  Printf.printf "with interval filter:    %6.2fs (%d paths)\n" t_on p_on;
  Printf.printf "without interval filter: %6.2fs (%d paths)\n" t_off p_off;
  assert (p_on = p_off)

let ablation_balanced_disjunction () =
  header "Ablation: balanced vs linear or-trees in grouped conditions (solver time)";
  let spec = Spec.packet_out () in
  let run = get_run spec (List.nth agents 0) in
  let conds = List.map (fun (p : Runner.path_record) -> p.Runner.pr_cond) run.run_paths in
  let some_other = match conds with c :: _ -> Smt.Expr.not_ c | [] -> Smt.Expr.tru in
  let time build =
    let cond = build conds in
    Smt.Solver.clear_cache ();
    let t0 = Sys.time () in
    ignore (Smt.Solver.check ~use_cache:false [ cond; some_other ]);
    Sys.time () -. t0
  in
  let balanced = time Smt.Expr.balanced_disj in
  let linear = time (fun cs -> List.fold_left Smt.Expr.or_ Smt.Expr.fls cs) in
  Printf.printf "balanced or-tree: %6.3fs    linear or-chain: %6.3fs  (%d disjuncts)\n"
    balanced linear (List.length conds)

let ablation_group_splitting () =
  header "Ablation: monolithic vs chunked group intersection (future-work remedy)";
  (* the smaller CS FlowMods keeps this ablation cheap; the outcome is the
     same on every test: identical findings, and with this solver the
     monolithic or-tree is the faster side — chunking only pays off when
     the single query diverges, as the paper's STP did *)
  let spec = Spec.cs_flow_mods () in
  let a = Soft.Grouping.of_run (get_run spec (List.nth agents 0)) in
  let b = Soft.Grouping.of_run (get_run spec (List.nth agents 2)) in
  let time split =
    Smt.Solver.clear_cache ();
    let outcome = Soft.Crosscheck.check ?split a b in
    (outcome.Soft.Crosscheck.o_check_time, Soft.Crosscheck.count outcome)
  in
  let t_whole, n_whole = time None in
  let t_split, n_split = time (Some 4) in
  Printf.printf "monolithic disjunctions: %6.2fs (%d found)\n" t_whole n_whole;
  Printf.printf "chunks of <= 4 paths:    %6.2fs (%d found)\n" t_split n_split;
  assert (n_whole = n_split)

let ablation_structured_inputs () =
  header "Ablation: structured vs raw symbolic inputs (paths per covered instruction)";
  let reference = List.nth agents 0 in
  let structured = get_run (Spec.packet_out ()) reference in
  let raw = get_run (Spec.short_symb ()) reference in
  let ratio (r : Runner.run) =
    let rep = Runner.coverage_report r in
    (List.length r.Runner.run_paths, rep.Coverage.instr_covered)
  in
  let sp, sc = ratio structured and rp, rc = ratio raw in
  Printf.printf "structured (Packet Out): %5d paths covering %d instructions\n" sp sc;
  Printf.printf "raw 10-byte (Short Symb): %4d paths covering %d instructions\n" rp rc;
  Printf.printf
    "(raw bytes spend their paths on framing errors; structured inputs reach deep handlers)\n"

(* ---------------------------------------------------------------------- *)
(* Parallel crosscheck: the work-stealing pool at -j 1 vs -j N *)

let parallel_jobs =
  match Sys.getenv_opt "SOFT_BENCH_JOBS" with
  | Some s -> max 2 (int_of_string s)
  | None -> max 2 (Harness.Pool.default_jobs ())

let parallel_crosscheck () =
  header
    (Printf.sprintf
       "Parallel crosscheck: -j 1 vs -j %d (work-stealing pool; %d core(s) available)"
       parallel_jobs
       (Harness.Pool.default_jobs ()));
  if Harness.Pool.default_jobs () < parallel_jobs then begin
    (* Oversubscribed: -jN domains time-slicing fewer cores measures the
       scheduler, not the pool — a "0.34x speedup" here is noise.  Measure
       what this machine *can* answer instead: the pool's own overhead,
       i.e. the same -j1 workload run sequentially vs forced through a
       single pool worker domain (spawn, hand-off, result marshalling). *)
    Printf.printf
      "skipped: %d job(s) requested but only %d core(s) available — an \
       oversubscribed measurement would report scheduler noise as pool slowdown\n"
      parallel_jobs
      (Harness.Pool.default_jobs ());
    let spec = Spec.cs_flow_mods () in
    let a = Soft.Grouping.of_run (get_run spec (List.nth agents 0)) in
    let b = Soft.Grouping.of_run (get_run spec (List.nth agents 2)) in
    let measure ~force_pool =
      Smt.Solver.clear_cache ();
      let o = Soft.Crosscheck.check ~jobs:1 ~force_pool a b in
      (o.Soft.Crosscheck.o_check_time, Soft.Crosscheck.count o)
    in
    let t_seq, n_seq = measure ~force_pool:false in
    let t_pool, n_pool = measure ~force_pool:true in
    assert (n_seq = n_pool);
    let overhead = if t_seq > 0.0 then (t_pool -. t_seq) /. t_seq else 0.0 in
    Printf.printf
      "pool overhead at -j1 (%s): %.3fs sequential, %.3fs via one pool worker => %+.1f%%\n"
      spec.Spec.label t_seq t_pool (100.0 *. overhead);
    record "parallel"
      (J_obj
         [
           ("status", J_str "skipped_insufficient_cores");
           ("cores_available", J_int (Harness.Pool.default_jobs ()));
           ("jobs", J_int parallel_jobs);
           ("pool_overhead_test", J_str spec.Spec.id);
           ("pool_overhead_seq_time", J_num t_seq);
           ("pool_overhead_pool_time", J_num t_pool);
           ("pool_overhead_frac", J_num overhead);
         ])
  end
  else begin
  Printf.printf "%-14s %7s | %9s %9s | %9s %9s | %7s\n" "Test" "pairs" "t(-j1)" "pairs/s"
    (Printf.sprintf "t(-j%d)" parallel_jobs)
    "pairs/s" "speedup";
  let tests = [ Spec.eth_flow_mod (); Spec.cs_flow_mods (); Spec.short_symb () ] in
  let rows = ref [] in
  let total_seq = ref 0.0 and total_par = ref 0.0 in
  List.iter
    (fun (spec : Spec.t) ->
      let a = Soft.Grouping.of_run (get_run spec (List.nth agents 0)) in
      let b = Soft.Grouping.of_run (get_run spec (List.nth agents 2)) in
      let measure jobs =
        (* cold caches on both sides: workers start with fresh per-domain
           contexts, so clear the caller's memo cache too for a fair -j 1 *)
        Smt.Solver.clear_cache ();
        Soft.Crosscheck.check ~jobs a b
      in
      let o1 = measure 1 in
      let on = measure parallel_jobs in
      (* the report must not depend on the worker count *)
      assert (Soft.Crosscheck.count o1 = Soft.Crosscheck.count on);
      assert (o1.Soft.Crosscheck.o_pairs_undecided = on.Soft.Crosscheck.o_pairs_undecided);
      let t1 = o1.Soft.Crosscheck.o_check_time in
      let tn = on.Soft.Crosscheck.o_check_time in
      total_seq := !total_seq +. t1;
      total_par := !total_par +. tn;
      let pairs = o1.Soft.Crosscheck.o_pairs_checked in
      let rate t = if t > 0.0 then float_of_int pairs /. t else 0.0 in
      let speedup = if tn > 0.0 then t1 /. tn else 0.0 in
      rows :=
        J_obj
          [
            ("test", J_str spec.Spec.id);
            ("pairs_checked", J_int pairs);
            ("seq_time", J_num t1);
            ("seq_pairs_per_sec", J_num (rate t1));
            ("par_time", J_num tn);
            ("par_pairs_per_sec", J_num (rate tn));
            ("speedup", J_num speedup);
          ]
        :: !rows;
      Printf.printf "%-14s %7d | %8.3fs %9.0f | %8.3fs %9.0f | %6.2fx\n%!" spec.Spec.label
        pairs t1 (rate t1) tn (rate tn) speedup)
    tests;
  let overall = if !total_par > 0.0 then !total_seq /. !total_par else 0.0 in
  Printf.printf "overall: %.3fs at -j1, %.3fs at -j%d => %.2fx\n" !total_seq !total_par
    parallel_jobs overall;
  if Harness.Pool.default_jobs () = 1 then
    Printf.printf
      "(single-core machine: the pool pays domain overhead with no parallel gain here)\n";
  record "parallel"
    (J_obj
       [
         ("status", J_str "measured");
         ("cores_available", J_int (Harness.Pool.default_jobs ()));
         ("jobs", J_int parallel_jobs);
         ("seq_time", J_num !total_seq);
         ("par_time", J_num !total_par);
         ("speedup", J_num overall);
         ("tests", J_arr (List.rev !rows));
       ])
  end

(* ---------------------------------------------------------------------- *)
(* Incremental crosscheck: scratch per-pair solving vs row-major sessions *)

let incremental_crosscheck () =
  header
    "Incremental crosscheck: per-pair scratch instances vs row-major sessions \
     (shared blasting + learnt-clause reuse)";
  Printf.printf "%-14s %7s | %9s %9s | %9s %9s | %7s | %6s %8s\n" "Test" "pairs"
    "t(scratch)" "pairs/s" "t(incr)" "pairs/s" "speedup" "reuse" "learnt";
  let tests = [ Spec.eth_flow_mod (); Spec.cs_flow_mods (); Spec.short_symb () ] in
  (* the exact reported facts, minus timing: the modes must agree on these
     byte for byte (the property test covers randomized matrices; this is
     the same assertion on the real suite) *)
  let canon (o : Soft.Crosscheck.outcome) =
    ( List.map
        (fun (inc : Soft.Crosscheck.inconsistency) ->
          ( Openflow.Trace.result_key inc.Soft.Crosscheck.i_result_a,
            Openflow.Trace.result_key inc.i_result_b,
            List.map
              (fun (v, value) -> (Smt.Expr.var_name v, Smt.Expr.var_width v, value))
              (Smt.Model.bindings inc.i_witness) ))
        o.Soft.Crosscheck.o_inconsistencies,
      o.o_pairs_undecided )
  in
  let rows = ref [] in
  let total_scratch = ref 0.0 and total_incr = ref 0.0 in
  let st = Smt.Solver.stats () in
  let sessions0 = st.Smt.Solver.sessions_opened in
  let assumes0 = st.Smt.Solver.assumption_solves in
  let fallbacks0 = st.Smt.Solver.scratch_fallbacks in
  let tiny0 = st.Smt.Solver.tiny_session_fallbacks in
  let learnt0 = st.Smt.Solver.learnt_retained in
  List.iter
    (fun (spec : Spec.t) ->
      let a = Soft.Grouping.of_run (get_run spec (List.nth agents 0)) in
      let b = Soft.Grouping.of_run (get_run spec (List.nth agents 2)) in
      let measure incremental =
        (* cold memo cache on both sides: the amortization under test is
           the in-session reuse, not warm whole-query memo hits; sharing
           off so the incremental side actually opens row sessions rather
           than adopting the shared blasted base *)
        Smt.Solver.clear_cache ();
        Soft.Crosscheck.check ~jobs:1 ~incremental ~share:false a b
      in
      let learnt_before = st.Smt.Solver.learnt_retained in
      let assumes_before = st.Smt.Solver.assumption_solves in
      let sessions_before = st.Smt.Solver.sessions_opened in
      let o_scratch = measure false in
      let o_incr = measure true in
      assert (canon o_scratch = canon o_incr);
      let ts = o_scratch.Soft.Crosscheck.o_check_time in
      let ti = o_incr.Soft.Crosscheck.o_check_time in
      total_scratch := !total_scratch +. ts;
      total_incr := !total_incr +. ti;
      let pairs = o_scratch.Soft.Crosscheck.o_pairs_checked in
      let rate t = if t > 0.0 then float_of_int pairs /. t else 0.0 in
      let speedup = if ti > 0.0 then ts /. ti else 0.0 in
      let learnt = st.Smt.Solver.learnt_retained - learnt_before in
      let assumes = st.Smt.Solver.assumption_solves - assumes_before in
      let sessions = st.Smt.Solver.sessions_opened - sessions_before in
      (* fraction of session queries that rode on an already-blasted row
         conjunct (each session's base blast is charged to its first query) *)
      let reuse =
        if assumes > 0 then float_of_int (assumes - sessions) /. float_of_int assumes
        else 0.0
      in
      rows :=
        J_obj
          [
            ("test", J_str spec.Spec.id);
            ("pairs_checked", J_int pairs);
            ("scratch_time", J_num ts);
            ("scratch_pairs_per_sec", J_num (rate ts));
            ("incremental_time", J_num ti);
            ("incremental_pairs_per_sec", J_num (rate ti));
            ("incremental_speedup", J_num speedup);
            ("sessions", J_int sessions);
            ("assumption_solves", J_int assumes);
            ("blast_reuse_rate", J_num reuse);
            ("learnt_retained", J_int learnt);
          ]
        :: !rows;
      Printf.printf "%-14s %7d | %8.3fs %9.0f | %8.3fs %9.0f | %6.2fx | %5.0f%% %8d\n%!"
        spec.Spec.label pairs ts (rate ts) ti (rate ti) speedup (100.0 *. reuse) learnt)
    tests;
  let overall = if !total_incr > 0.0 then !total_scratch /. !total_incr else 0.0 in
  let sessions = st.Smt.Solver.sessions_opened - sessions0 in
  let assumes = st.Smt.Solver.assumption_solves - assumes0 in
  let fallbacks = st.Smt.Solver.scratch_fallbacks - fallbacks0 in
  let tiny = st.Smt.Solver.tiny_session_fallbacks - tiny0 in
  let learnt = st.Smt.Solver.learnt_retained - learnt0 in
  let reuse =
    if assumes > 0 then float_of_int (assumes - sessions) /. float_of_int assumes else 0.0
  in
  Printf.printf
    "overall: %.3fs scratch, %.3fs incremental => %.2fx (%d sessions, %d assumption \
     solves, %d scratch fallbacks, %d learnt clauses retained)\n"
    !total_scratch !total_incr overall sessions assumes fallbacks learnt;
  record "incremental"
    (J_obj
       [
         ("scratch_time", J_num !total_scratch);
         ("incremental_time", J_num !total_incr);
         ("incremental_speedup", J_num overall);
         ("sessions", J_int sessions);
         ("assumption_solves", J_int assumes);
         ("scratch_fallbacks", J_int fallbacks);
         ("tiny_session_fallbacks", J_int tiny);
         ("blast_reuse_rate", J_num reuse);
         ("learnt_retained", J_int learnt);
         ("tests", J_arr (List.rev !rows));
       ])

(* ---------------------------------------------------------------------- *)
(* Canonical memo + row pruning + warm-cache pipeline: the full packet_out
   comparison end to end — execute every agent, group, crosscheck against
   both cut-throughs — measured the way the bench ran before this
   optimisation round (memo layers off, cache cleared between stages) vs
   the production configuration (canonical memo and row pruning on, one
   warm cache across the whole pipeline, as Pipeline.compare_agents runs
   it).  The verdicts, witnesses and undecided counts must agree byte for
   byte; only the time may move. *)

let canonical_crosscheck () =
  header
    "Canonical memo + row pruning, end to end (Packet Out: execute 3 agents,\n\
     crosscheck vs Modified and OVS; cold per-stage vs warm production pipeline)";
  let spec = Spec.packet_out () in
  (* the reported facts minus timing must not depend on the optimisations *)
  let facts (o : Soft.Crosscheck.outcome) =
    ( List.map
        (fun (inc : Soft.Crosscheck.inconsistency) ->
          ( Openflow.Trace.result_key inc.Soft.Crosscheck.i_result_a,
            Openflow.Trace.result_key inc.i_result_b,
            List.map
              (fun (v, value) -> (Smt.Expr.var_name v, Smt.Expr.var_width v, value))
              (Smt.Model.bindings inc.i_witness) ))
        o.Soft.Crosscheck.o_inconsistencies,
      o.o_pairs_undecided )
  in
  (* fresh executions on purpose — get_run's memo would hide the
     symbolic-execution share of the pipeline *)
  let pipeline ~enabled =
    let stage f =
      if not enabled then Smt.Solver.clear_cache ();
      f ()
    in
    Smt.Solver.clear_cache ();
    Smt.Solver.set_canon enabled;
    let t0 = Unix.gettimeofday () in
    let run ag = stage (fun () -> Runner.execute ~max_paths:budget ag spec) in
    let r_ref = run Switches.Reference_switch.agent in
    let r_mod = run Switches.Modified_switch.agent in
    let r_ovs = run Switches.Open_vswitch.agent in
    let ga = Soft.Grouping.of_run r_ref in
    let o_mod =
      stage (fun () ->
          Soft.Crosscheck.check ~jobs:1 ~prune:enabled ga (Soft.Grouping.of_run r_mod))
    in
    let o_ovs =
      stage (fun () ->
          Soft.Crosscheck.check ~jobs:1 ~prune:enabled ga (Soft.Grouping.of_run r_ovs))
    in
    let dt = Unix.gettimeofday () -. t0 in
    Smt.Solver.set_canon true;
    (dt, o_mod, o_ovs)
  in
  (* three interleaved rounds, best-of per variant: a single-shot wall
     time on a shared machine is noisy enough (±15% observed) to drown
     the effect being measured; the enabled run's stat deltas come from
     the last round (each round starts from a cleared cache, so rounds
     agree) *)
  let st = Smt.Solver.stats () in
  let t_off = ref infinity and t_on = ref infinity in
  let last = ref None in
  let canonical_hits = ref 0
  and cache_hits = ref 0
  and sat_calls = ref 0
  and rows_pruned = ref 0
  and pairs_skipped = ref 0
  and subsumed = ref 0 in
  for _round = 1 to 3 do
    let toff, off_mod, off_ovs = pipeline ~enabled:false in
    let hits0 = st.Smt.Solver.canonical_hits
    and cache0 = st.Smt.Solver.cache_hits
    and sat0 = st.Smt.Solver.sat_calls
    and rows0 = st.Smt.Solver.rows_pruned
    and skip0 = st.Smt.Solver.pairs_skipped_by_pruning
    and sub0 = st.Smt.Solver.subsumed_groups in
    let ton, on_mod, on_ovs = pipeline ~enabled:true in
    assert (facts off_mod = facts on_mod);
    assert (facts off_ovs = facts on_ovs);
    t_off := min !t_off toff;
    t_on := min !t_on ton;
    canonical_hits := st.Smt.Solver.canonical_hits - hits0;
    cache_hits := st.Smt.Solver.cache_hits - cache0;
    sat_calls := st.Smt.Solver.sat_calls - sat0;
    rows_pruned := st.Smt.Solver.rows_pruned - rows0;
    pairs_skipped := st.Smt.Solver.pairs_skipped_by_pruning - skip0;
    subsumed := st.Smt.Solver.subsumed_groups - sub0;
    last := Some (on_mod, on_ovs)
  done;
  let t_off = !t_off and t_on = !t_on in
  let canonical_hits = !canonical_hits
  and cache_hits = !cache_hits
  and sat_calls = !sat_calls
  and rows_pruned = !rows_pruned
  and pairs_skipped = !pairs_skipped
  and subsumed = !subsumed in
  let on_mod, on_ovs =
    match !last with Some p -> p | None -> assert false
  in
  let speedup = if t_on > 0.0 then t_off /. t_on else 0.0 in
  let hit_rate =
    let hits = cache_hits + canonical_hits in
    let looked = sat_calls + hits in
    if looked = 0 then 0.0 else float_of_int hits /. float_of_int looked
  in
  let pairs =
    on_mod.Soft.Crosscheck.o_pairs_checked + on_ovs.Soft.Crosscheck.o_pairs_checked
  in
  Printf.printf "%d pairs; cold per-stage: %6.2fs, warm pipeline: %6.2fs => %.2fx\n"
    pairs t_off t_on speedup;
  Printf.printf
    "warm run: %d canonical hits, %d exact hits, %d SAT calls (hit rate %.3f)\n"
    canonical_hits cache_hits sat_calls hit_rate;
  Printf.printf "pruning: %d rows pruned (%d pairs skipped, %d via subsumption)\n"
    rows_pruned pairs_skipped subsumed;
  record "canonical"
    (J_obj
       [
         ("pairs_checked", J_int pairs);
         ("disabled_time", J_num t_off);
         ("enabled_time", J_num t_on);
         ("speedup", J_num speedup);
         ("canonical_hits", J_int canonical_hits);
         ("cache_hits", J_int cache_hits);
         ("sat_calls", J_int sat_calls);
         ("cache_hit_rate", J_num hit_rate);
         ("rows_pruned", J_int rows_pruned);
         ("pairs_skipped_by_pruning", J_int pairs_skipped);
         ("subsumed_groups", J_int subsumed);
       ])

(* ---------------------------------------------------------------------- *)
(* Row pruning on a workload that actually prunes.  The switch agents in
   the sections above overlap on every row (same parser, same input
   space), so the end-to-end pipeline reports rows_pruned = 0 and the
   pruning pass only ever pays its probe-miss cutoff.  This section
   builds the matrix shape the pruner exists for — agents whose coverage
   is partially disjoint, the paper's scenario of a build that rejects a
   message class its peer accepts — so the recorded numbers exercise the
   prune-hit path end to end. *)

let pruning_crosscheck () =
  header
    "Row pruning: disjoint-coverage agents (rows of A that B's inputs never reach)";
  let x = Smt.Expr.var ~width:16 "prune.x" in
  let range lo hi =
    Smt.Expr.and_
      (Smt.Expr.uge x (Smt.Expr.const ~width:16 (Int64.of_int lo)))
      (Smt.Expr.ult x (Smt.Expr.const ~width:16 (Int64.of_int hi)))
  in
  let mk_group key lo hi =
    let cond = range lo hi in
    let result = { Openflow.Trace.trace = [ key ]; crash = None } in
    {
      Soft.Grouping.g_result = result;
      g_key = Openflow.Trace.result_key result;
      g_cond = cond;
      g_member_conds = [ cond ];
      g_path_count = 1;
    }
  in
  let mk_grouped agent groups =
    {
      Soft.Grouping.gr_agent = agent;
      gr_test = "synthetic-prune";
      gr_groups = groups;
      gr_group_time = 0.0;
    }
  in
  (* A: 14 rows entirely above B's coverage (each prunable with one probe
     against common(B)), then 6 rows inside it (crosschecked pairwise);
     B: 8 small ranges below 50.  Result keys all distinct, so no pair is
     skipped as equal — every skip below is the pruner's doing. *)
  let a =
    mk_grouped "disjoint-a"
      (List.init 14 (fun k ->
           mk_group (Printf.sprintf "a-high:%d" k) (100 + (40 * k)) (140 + (40 * k)))
      @ List.init 6 (fun k -> mk_group (Printf.sprintf "a-low:%d" k) (8 * k) ((8 * k) + 8)))
  in
  let b =
    mk_grouped "disjoint-b"
      (List.init 8 (fun j -> mk_group (Printf.sprintf "b:%d" j) (6 * j) ((6 * j) + 6)))
  in
  let facts (o : Soft.Crosscheck.outcome) =
    ( List.map
        (fun (inc : Soft.Crosscheck.inconsistency) ->
          ( Openflow.Trace.result_key inc.Soft.Crosscheck.i_result_a,
            Openflow.Trace.result_key inc.i_result_b,
            List.map
              (fun (v, value) -> (Smt.Expr.var_name v, Smt.Expr.var_width v, value))
              (Smt.Model.bindings inc.i_witness) ))
        o.Soft.Crosscheck.o_inconsistencies,
      o.o_pairs_undecided )
  in
  let measure prune =
    Smt.Solver.clear_cache ();
    let t0 = Unix.gettimeofday () in
    let o = Soft.Crosscheck.check ~jobs:1 ~prune a b in
    (o, Unix.gettimeofday () -. t0)
  in
  let st = Smt.Solver.stats () in
  let o_off, t_off = measure false in
  let rows0 = st.Smt.Solver.rows_pruned
  and skip0 = st.Smt.Solver.pairs_skipped_by_pruning
  and sub0 = st.Smt.Solver.subsumed_groups in
  let o_on, t_on = measure true in
  let rows_pruned = st.Smt.Solver.rows_pruned - rows0 in
  let pairs_skipped = st.Smt.Solver.pairs_skipped_by_pruning - skip0 in
  let subsumed = st.Smt.Solver.subsumed_groups - sub0 in
  (* the report must not depend on the pruning pass *)
  assert (facts o_off = facts o_on);
  assert (rows_pruned > 0);
  let pairs = o_on.Soft.Crosscheck.o_pairs_checked in
  let speedup = if t_on > 0.0 then t_off /. t_on else 0.0 in
  Printf.printf
    "%d pairs; no pruning: %6.3fs, pruning: %6.3fs => %.2fx\n\
     %d of %d rows pruned (%d pairs skipped, %d via subsumption), %d inconsistencies\n"
    pairs t_off t_on speedup rows_pruned
    (List.length a.Soft.Grouping.gr_groups)
    pairs_skipped subsumed
    (Soft.Crosscheck.count o_on);
  record "pruning"
    (J_obj
       [
         ("pairs_checked", J_int pairs);
         ("disabled_time", J_num t_off);
         ("enabled_time", J_num t_on);
         ("speedup", J_num speedup);
         ("rows_total", J_int (List.length a.Soft.Grouping.gr_groups));
         ("rows_pruned", J_int rows_pruned);
         ("pairs_skipped_by_pruning", J_int pairs_skipped);
         ("subsumed_groups", J_int subsumed);
         ("inconsistencies", J_int (Soft.Crosscheck.count o_on));
       ])

(* ---------------------------------------------------------------------- *)
(* Supervised crosscheck: watchdog kills + quarantine accounting under a
   chaos hang schedule *)

let supervised_crosscheck () =
  header
    "Supervised crosscheck: watchdog deadline + chaos hangs (retry/quarantine accounting)";
  let spec = Spec.cs_flow_mods () in
  let a = Soft.Grouping.of_run (get_run spec (List.nth agents 0)) in
  let b = Soft.Grouping.of_run (get_run spec (List.nth agents 2)) in
  (* clean baseline: supervision enabled but nothing tripping — this is the
     common production configuration and must not perturb the report *)
  Smt.Solver.clear_cache ();
  let clean = Soft.Crosscheck.check ~jobs:1 a b in
  let pol =
    Harness.Supervise.policy ~deadline_ms:250 ~max_retries:1 ~backoff_ms:[ 1 ] ()
  in
  Smt.Solver.clear_cache ();
  let calm = Soft.Crosscheck.check ~jobs:1 ~supervise:pol a b in
  assert (Soft.Crosscheck.count calm = Soft.Crosscheck.count clean);
  assert (Soft.Crosscheck.quarantined_count calm = 0);
  (* stormy run: hangs + solver faults injected; the watchdog kills each
     hang at the deadline, the ladder retries, strikes-out pairs quarantine *)
  let seed = chaos_seed and rate = 0.08 in
  Harness.Chaos.install (Harness.Chaos.plan ~seed ~rate ());
  Smt.Solver.clear_cache ();
  let solver_time_before = (Smt.Solver.stats ()).Smt.Solver.solver_time in
  let t0 = Unix.gettimeofday () in
  let warnings = ref 0 in
  let o =
    Soft.Crosscheck.check ~jobs:1 ~supervise:pol ~on_warning:(fun _ -> incr warnings) a b
  in
  let wall = Unix.gettimeofday () -. t0 in
  Harness.Chaos.deactivate ();
  Smt.Mono.reset_skew ();
  (* each injected clock jump advanced the monotonic clock a day, which the
     solver-time gauge absorbed; clamp the section's contribution back to
     its real wall time so the bench's closing totals stay meaningful *)
  (Smt.Solver.stats ()).Smt.Solver.solver_time <- solver_time_before +. wall;
  let tax t =
    List.length
      (List.filter (fun (_, _, tx) -> tx = t) o.Soft.Crosscheck.o_pairs_quarantined)
  in
  let quarantined = Soft.Crosscheck.quarantined_count o in
  Printf.printf
    "pairs: %d checked, %d inconsistencies (clean run: %d), %d undecided\n"
    o.Soft.Crosscheck.o_pairs_checked (Soft.Crosscheck.count o)
    (Soft.Crosscheck.count clean)
    (Soft.Crosscheck.undecided_count o);
  Printf.printf
    "supervision: %d retries, %d quarantined (hung %d / crashed %d / oom %d / faulted \
     %d) in %.2fs wall\n"
    o.Soft.Crosscheck.o_retries quarantined
    (tax Harness.Supervise.Hung) (tax Harness.Supervise.Crashed)
    (tax Harness.Supervise.Oom) (tax Harness.Supervise.Faulted)
    wall;
  record "supervision"
    (J_obj
       [
         ("chaos_seed", J_int seed);
         ("chaos_rate", J_num rate);
         ("deadline_ms", J_int 250);
         ("max_retries", J_int 1);
         ("pairs_checked", J_int o.Soft.Crosscheck.o_pairs_checked);
         ("inconsistencies", J_int (Soft.Crosscheck.count o));
         ("undecided", J_int (Soft.Crosscheck.undecided_count o));
         ("retries", J_int o.Soft.Crosscheck.o_retries);
         ("quarantined", J_int quarantined);
         ("quarantined_hung", J_int (tax Harness.Supervise.Hung));
         ("quarantined_crashed", J_int (tax Harness.Supervise.Crashed));
         ("quarantined_oom", J_int (tax Harness.Supervise.Oom));
         ("quarantined_faulted", J_int (tax Harness.Supervise.Faulted));
         ("warnings", J_int !warnings);
         ("wall_time", J_num wall);
       ])

(* ---------------------------------------------------------------------- *)
(* Fault-schedule exploration: how many draw sites a crosscheck exposes,
   systematic schedule throughput, and the cost of ddmin shrinking *)

let exploration_bench () =
  header
    "Fault-schedule exploration: site discovery, schedule throughput, ddmin shrink cost";
  Smt.Solver.clear_cache ();
  let w =
    Soft.Oracle.crosscheck_workload ~max_paths:budget
      ~a:Switches.Reference_switch.agent ~b:Switches.Modified_switch.agent
      (Spec.packet_out ())
  in
  (* single-fault pass, capped at the driver's default budget: the
     throughput number is the point here, not coverage (CI runs the
     uncapped exhaustive pass on cs_flow_mods) *)
  let t0 = Unix.gettimeofday () in
  let out = Harness.Explore.explore ~faults_per_schedule:1 ~shrink:false w in
  let single_wall = Unix.gettimeofday () -. t0 in
  let s = out.Harness.Explore.o_stats in
  Printf.printf
    "packet_out: %d draw site(s); single-fault pass: %d schedule(s) in %.2fs (%.1f/s), \
     %d violation(s)\n"
    s.Harness.Explore.x_sites s.x_schedules single_wall
    (float_of_int s.x_schedules /. Float.max 1e-9 single_wall)
    s.x_violations;
  (* shrink cost, measured on the synthetic workload's known violation:
     ddmin from every site armed down to the two-site minimum *)
  let sw = Soft.Oracle.synthetic_pair_workload () in
  let baseline, sites = Harness.Explore.discover sw in
  let fat = Harness.Schedule.make sites in
  let t1 = Unix.gettimeofday () in
  let shrink_tests =
    match Harness.Explore.shrink sw ~baseline fat with
    | Some (minimal, tests) ->
      Printf.printf
        "synthetic shrink: %d site(s) -> %d in %d workload run(s) (%.2fms)\n"
        (List.length sites)
        (Harness.Schedule.cardinal minimal)
        tests
        ((Unix.gettimeofday () -. t1) *. 1000.0);
      tests
    | None ->
      Printf.printf "synthetic shrink: violation not reproduced\n";
      0
  in
  record "exploration"
    (J_obj
       [
         ("workload", J_str "packet_out");
         ("sites", J_int s.Harness.Explore.x_sites);
         ("schedules", J_int s.x_schedules);
         ("violations", J_int s.x_violations);
         ("single_fault_wall_s", J_num single_wall);
         ( "schedules_per_sec",
           J_num (float_of_int s.x_schedules /. Float.max 1e-9 single_wall) );
         ("shrink_tests", J_int shrink_tests);
       ])

(* ---------------------------------------------------------------------- *)
(* Crash-only service: submit -> verdict latency cold vs from the store,
   plus WAL-replay recovery time *)

let service_bench () =
  header
    "Crash-only service: submit -> verdict latency (cold vs store hit) and WAL recovery";
  let dir =
    let f = Filename.temp_file "soft-bench-service" "" in
    Sys.remove f;
    Unix.mkdir f 0o700;
    f
  in
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg =
    Soft.Service.config
      ~max_paths:(min budget 400)
      ~on_warning:(fun _ -> ())
      ~agents:
        [
          ("ref", Switches.Reference_switch.agent);
          ("modified", Switches.Modified_switch.agent);
        ]
      ()
  in
  let submit () =
    match
      Soft.Service.submit dir ~agent_a:"ref" ~agent_b:"modified" ~tests:[ "packet_out" ]
    with
    | Ok id -> id
    | Error (`Backpressure _) -> failwith "bench service: unexpected backpressure"
  in
  (* drain the queue once; the measured span is serve only, not recovery *)
  let drain () =
    let t = Soft.Service.open_service cfg dir in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> Soft.Service.close t)
      (fun () -> Soft.Service.serve ~once:true t);
    Unix.gettimeofday () -. t0
  in
  Smt.Solver.clear_cache ();
  let id_cold = submit () in
  let t_cold = drain () in
  let sat_before = (Smt.Solver.stats ()).Smt.Solver.sat_calls in
  let id_warm = submit () in
  let t_warm = drain () in
  let warm_sat_calls = (Smt.Solver.stats ()).Smt.Solver.sat_calls - sat_before in
  (* the store-hit report must be byte-identical modulo the job id line *)
  let body id =
    match Soft.Service.report dir id with
    | None -> failwith "bench service: missing report"
    | Some s ->
      (match String.split_on_char '\n' s with
       | _header :: _job_id :: rest -> String.concat "\n" rest
       | _ -> s)
  in
  assert (body id_cold = body id_warm);
  assert (warm_sat_calls = 0);
  let t0 = Unix.gettimeofday () in
  let t = Soft.Service.open_service cfg dir in
  let t_recover = Unix.gettimeofday () -. t0 in
  let replayed = Soft.Service.replayed_records t in
  Soft.Service.close t;
  let st = Soft.Service.status dir in
  assert (st.Soft.Service.ss_verdicts_lost = 0);
  Printf.printf "cold submit -> verdict:   %6.3fs\n" t_cold;
  Printf.printf "store-hit resubmission:   %6.3fs (%d new SAT calls)\n" t_warm
    warm_sat_calls;
  Printf.printf "recovery (WAL replay):    %6.3fs (%d records, %d store entries)\n%!"
    t_recover replayed st.Soft.Service.ss_store_entries;
  record "service"
    (J_obj
       [
         ("cold_latency", J_num t_cold);
         ("warm_latency", J_num t_warm);
         ("warm_sat_calls", J_int warm_sat_calls);
         ("recovery_time", J_num t_recover);
         ("wal_records", J_int replayed);
         ("store_entries", J_int st.Soft.Service.ss_store_entries);
         ("jobs_done", J_int st.Soft.Service.ss_jobs_done);
       ])

(* ---------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks of the pipeline stages *)

let microbenchmarks () =
  header "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let spec = Spec.packet_out () in
  let run_ref = get_run spec (List.nth agents 0) in
  let run_ovs = get_run spec (List.nth agents 2) in
  let paths =
    List.map
      (fun (p : Runner.path_record) -> (p.Runner.pr_result, p.Runner.pr_cond))
      run_ref.Runner.run_paths
  in
  let grouped_ref = Soft.Grouping.of_run run_ref in
  let grouped_ovs = Soft.Grouping.of_run run_ovs in
  let ga = List.hd grouped_ref.Soft.Grouping.gr_groups in
  let gb =
    List.find
      (fun g -> g.Soft.Grouping.g_key <> ga.Soft.Grouping.g_key)
      grouped_ovs.Soft.Grouping.gr_groups
  in
  let x = Smt.Expr.var ~width:16 "bench.x" in
  let small_query =
    [
      Smt.Expr.ult x (Smt.Expr.const ~width:16 25L);
      Smt.Expr.eq
        (Smt.Expr.logand x (Smt.Expr.const ~width:16 0xfL))
        (Smt.Expr.const ~width:16 5L);
    ]
  in
  let tests =
    [
      Test.make ~name:"table2.symexec_packet_out_50paths"
        (Staged.stage (fun () ->
             ignore (Runner.execute ~max_paths:50 Switches.Reference_switch.agent spec)));
      Test.make ~name:"table3.grouping_packet_out"
        (Staged.stage (fun () -> ignore (Soft.Grouping.group_paths paths)));
      Test.make ~name:"table3.crosscheck_one_pair"
        (Staged.stage (fun () ->
             ignore
               (Smt.Solver.check ~use_cache:false
                  [ ga.Soft.Grouping.g_cond; gb.Soft.Grouping.g_cond ])));
      Test.make ~name:"solver.small_bitvector_query"
        (Staged.stage (fun () -> ignore (Smt.Solver.check ~use_cache:false small_query)));
      Test.make ~name:"wire.flow_mod_roundtrip"
        (Staged.stage
           (let fm =
              {
                Openflow.Types.fm_match = Openflow.Types.match_all;
                cookie = 1L;
                command = 0;
                idle_timeout = 0;
                hard_timeout = 0;
                priority = 1;
                fm_buffer_id = 0xffffffffl;
                out_port = 0xffff;
                flags = 0;
                fm_actions = [ Openflow.Types.Output { port = 1; max_len = 0 } ];
              }
            in
            fun () ->
              ignore
                (Openflow.Wire.parse
                   (Openflow.Wire.serialize
                      { Openflow.Types.xid = 0l; payload = Openflow.Types.Flow_mod fm }))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n%!" name est
          | _ -> Printf.printf "%-40s (no estimate)\n%!" name)
        results)
    tests

(* ---------------------------------------------------------------------- *)

let () =
  Printf.printf "SOFT evaluation harness (path budget per run: %d)\n" budget;
  Printf.printf "reproducing: Tables 1-5, Figure 4, sections 5.1.1 and 5.1.2\n";
  let t0 = Unix.gettimeofday () in
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  figure4 ();
  section_5_1_1 ();
  section_5_1_2 ();
  regression_rerun ();
  (* control runs from here down replay work cold on purpose; their query
     traffic is excluded from the closing cache totals *)
  ablation ablation_interval_filter;
  ablation ablation_balanced_disjunction;
  ablation ablation_group_splitting;
  ablation_structured_inputs ();
  ablation parallel_crosscheck;
  ablation incremental_crosscheck;
  ablation canonical_crosscheck;
  ablation pruning_crosscheck;
  supervised_crosscheck ();
  exploration_bench ();
  service_bench ();
  if Sys.getenv_opt "SOFT_BENCH_SKIP_MICRO" = None then microbenchmarks ();
  header "Summary";
  Printf.printf "total wall time: %.1fs\n" (Unix.gettimeofday () -. t0);
  Format.printf "solver totals: %a@." Smt.Solver.pp_stats ();
  record "meta"
    (J_obj
       [
         ("path_budget", J_int budget);
         ("wall_time", J_num (Unix.gettimeofday () -. t0));
       ]);
  record "solver" (solver_stats_json ());
  write_json ()
