(* Symbolic execution engine tests: forking, path conditions, replay
   determinism, strategies, coverage, crash/stop handling, limits. *)

open Smt
module Engine = Symexec.Engine
module Coverage = Symexec.Coverage
module Strategy = Symexec.Strategy

let c16 v = Expr.const ~width:16 (Int64.of_int v)
let x = Expr.var ~width:16 "engx"
let y = Expr.var ~width:16 "engy"

let run ?strategy ?max_paths ?max_decisions program =
  Engine.run ?strategy ?max_paths ?max_decisions program

let path_count (r : 'a Engine.run_result) = List.length r.Engine.results

let test_no_branch () =
  let r = run (fun env -> Engine.emit env "done") in
  Alcotest.(check int) "one path" 1 (path_count r);
  match r.Engine.results with
  | [ p ] ->
    Alcotest.(check (list string)) "events" [ "done" ] p.Engine.events;
    Alcotest.(check bool) "empty pc" true (Expr.is_true p.Engine.path_cond)
  | _ -> assert false

let test_single_branch () =
  let r =
    run (fun env ->
        if Engine.branch env (Expr.ult x (c16 10)) then Engine.emit env "low"
        else Engine.emit env "high")
  in
  Alcotest.(check int) "two paths" 2 (path_count r);
  let events = List.concat_map (fun p -> p.Engine.events) r.Engine.results in
  Alcotest.(check bool) "both outcomes" true
    (List.mem "low" events && List.mem "high" events)

let test_infeasible_pruning () =
  let r =
    run (fun env ->
        if Engine.branch env (Expr.ult x (c16 10)) then begin
          (* x < 10 makes x = 50 infeasible: no fork *)
          if Engine.branch env (Expr.eq x (c16 50)) then Engine.emit env "impossible"
          else Engine.emit env "consistent"
        end
        else Engine.emit env "high")
  in
  Alcotest.(check int) "two paths" 2 (path_count r);
  Alcotest.(check bool) "impossible path absent" false
    (List.exists (fun p -> List.mem "impossible" p.Engine.events) r.Engine.results)

let test_path_conditions_sound () =
  let r =
    run (fun env ->
        let a = Engine.branch env (Expr.ult x (c16 100)) in
        let b = Engine.branch env (Expr.eq y (c16 7)) in
        Engine.emit env (Printf.sprintf "%b%b" a b))
  in
  Alcotest.(check int) "four paths" 4 (path_count r);
  List.iter
    (fun (p : string Engine.path_result) ->
      (* a model of the path condition must reproduce the same events *)
      match Solver.check p.Engine.pc with
      | Solver.Unsat -> Alcotest.fail "path condition must be satisfiable"
      | Solver.Unknown _ -> Alcotest.fail "unbudgeted query returned Unknown"
      | Solver.Sat m ->
        let a = Int64.unsigned_compare (Model.get m (Expr.make_var "engx" 16)) 100L < 0 in
        let b = Model.get m (Expr.make_var "engy" 16) = 7L in
        Alcotest.(check (list string)) "replaying the model reproduces the trace"
          [ Printf.sprintf "%b%b" a b ] p.Engine.events)
    r.Engine.results

let test_concrete_conditions_dont_fork () =
  let r =
    run (fun env ->
        if Engine.branch env (Expr.ult (c16 1) (c16 2)) then Engine.emit env "always")
  in
  Alcotest.(check int) "one path" 1 (path_count r);
  Alcotest.(check int) "no forks" 0 (List.hd r.Engine.results).Engine.decisions

let test_crash_recorded () =
  let r =
    run (fun env ->
        if Engine.branch env (Expr.eq x (c16 0xfffd)) then Engine.crash env "boom"
        else Engine.emit env "fine")
  in
  Alcotest.(check int) "two paths" 2 (path_count r);
  let crashed = List.filter (fun p -> p.Engine.crashed <> None) r.Engine.results in
  Alcotest.(check int) "one crash" 1 (List.length crashed);
  Alcotest.(check (option string)) "message" (Some "boom")
    (List.hd crashed).Engine.crashed

let test_stop_records_partial () =
  let r =
    run (fun env ->
        Engine.emit env "before";
        if Engine.branch env (Expr.ult x (c16 5)) then Engine.stop env;
        Engine.emit env "after")
  in
  Alcotest.(check int) "two paths" 2 (path_count r);
  let stopped = List.find (fun p -> p.Engine.events = [ "before" ]) r.Engine.results in
  Alcotest.(check bool) "stopped path not crashed" true (stopped.Engine.crashed = None)

let test_assume () =
  let r =
    run (fun env ->
        Engine.assume env (Expr.ult x (c16 10));
        if Engine.branch env (Expr.ult x (c16 20)) then Engine.emit env "implied"
        else Engine.emit env "unreachable")
  in
  Alcotest.(check int) "one path" 1 (path_count r);
  Alcotest.(check (list string)) "assume constrains" [ "implied" ]
    (List.hd r.Engine.results).Engine.events

let test_assume_infeasible_aborts () =
  let r =
    run (fun env ->
        Engine.assume env (Expr.ult x (c16 10));
        Engine.assume env (Expr.ugt x (c16 20));
        Engine.emit env "dead")
  in
  Alcotest.(check int) "no surviving path" 0 (path_count r);
  Alcotest.(check bool) "abort counted" true (r.Engine.stats.Engine.aborted >= 1)

let test_concretize () =
  let r =
    run (fun env ->
        Engine.assume env (Expr.ugt x (c16 100));
        Engine.assume env (Expr.ult x (c16 103));
        let v = Engine.concretize env x in
        Engine.emit env (Int64.to_string v))
  in
  Alcotest.(check int) "one path" 1 (path_count r);
  let v = Int64.of_string (List.hd (List.hd r.Engine.results).Engine.events) in
  Alcotest.(check bool) "value in range" true (v = 101L || v = 102L);
  (* the concretization constraint must appear in the path condition *)
  match Solver.check ((List.hd r.Engine.results).Engine.pc @ [ Expr.neq x (Expr.const ~width:16 v) ]) with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "pc must pin the concretized value"
  | Solver.Unknown _ -> Alcotest.fail "unbudgeted query returned Unknown"

let test_max_paths () =
  let program env =
    (* 16 paths from 4 independent branches *)
    for i = 0 to 3 do
      ignore (Engine.branch env (Expr.eq (Expr.extract ~hi:i ~lo:i x) (Expr.const ~width:1 1L)))
    done
  in
  let r = run ~max_paths:5 program in
  Alcotest.(check int) "budget respected" 5 (path_count r);
  let full = run ~max_paths:1000 program in
  Alcotest.(check int) "full exploration" 16 (path_count full)

let test_max_decisions_truncates () =
  let program env =
    (* unbounded symbolic loop *)
    let rec go i =
      if Engine.branch env (Expr.ult (c16 (i mod 7)) (Expr.add x (c16 i))) then go (i + 1)
      else go (i + 2)
    in
    ignore (go 0)
  in
  let r = run ~max_paths:3 ~max_decisions:20 program in
  Alcotest.(check bool) "truncated paths counted" true (r.Engine.stats.Engine.truncated > 0);
  Alcotest.(check int) "no results from truncated paths" 0 (path_count r)

let all_path_keys (r : string Engine.run_result) =
  List.sort compare
    (List.map
       (fun (p : string Engine.path_result) -> String.concat "," p.Engine.events)
       r.Engine.results)

let test_strategies_agree () =
  let program env =
    let a = Engine.branch env (Expr.ult x (c16 100)) in
    let b = Engine.branch env (Expr.ult y (c16 50)) in
    let c = Engine.branch env (Expr.eq (Expr.add x y) (c16 60)) in
    Engine.emit env (Printf.sprintf "%b%b%b" a b c)
  in
  let base = all_path_keys (run ~strategy:Strategy.Dfs program) in
  List.iter
    (fun strategy ->
      Alcotest.(check (list string))
        (Printf.sprintf "strategy %s finds the same paths" (Strategy.to_string strategy))
        base
        (all_path_keys (run ~strategy program)))
    [ Strategy.Bfs; Strategy.Random 7; Strategy.Interleave 13 ]

let test_coverage_marks () =
  let bpoint = Coverage.branch "test_unit" "b0" in
  let ipoint = Coverage.instr "test_unit" "i0" in
  let r =
    run (fun env ->
        Engine.cover env ipoint;
        if Engine.branch ~loc:bpoint env (Expr.ult x (c16 10)) then () else ())
  in
  Alcotest.(check bool) "instr covered" true (Coverage.covered r.Engine.coverage ipoint);
  Alcotest.(check bool) "both branch directions covered" true
    (Coverage.covered r.Engine.coverage bpoint.Coverage.on_true
     && Coverage.covered r.Engine.coverage bpoint.Coverage.on_false);
  let report = Coverage.report "test_unit" r.Engine.coverage in
  Alcotest.(check int) "instr total" 1 report.Coverage.instr_total;
  Alcotest.(check int) "branch total counts directions" 2 report.Coverage.branch_total

let test_stats_constraint_sizes () =
  let r =
    run (fun env ->
        ignore (Engine.branch env (Expr.ult x (c16 10)));
        ignore (Engine.branch env (Expr.eq y (c16 1))))
  in
  Alcotest.(check bool) "avg size positive" true
    (r.Engine.stats.Engine.avg_constraint_size > 0.0);
  Alcotest.(check bool) "max >= avg" true
    (float_of_int r.Engine.stats.Engine.max_constraint_size
     >= r.Engine.stats.Engine.avg_constraint_size)

(* replay determinism: running twice yields the same partition *)
let test_deterministic () =
  let program env =
    let a = Engine.branch env (Expr.ult x (c16 256)) in
    let b = Engine.branch env (Expr.eq (Expr.logand y (c16 1)) (c16 1)) in
    Engine.emit env (Printf.sprintf "%b%b" a b)
  in
  Alcotest.(check (list string)) "deterministic partition" (all_path_keys (run program))
    (all_path_keys (run program))

let test_strategy_of_string () =
  let check_some msg expected s =
    match Strategy.of_string s with
    | Some st -> Alcotest.(check string) msg expected (Strategy.to_string st)
    | None -> Alcotest.failf "%s: %S rejected" msg s
  in
  check_some "dfs" "dfs" "dfs";
  check_some "bare random keeps the historical seed" "random:42" "random";
  check_some "explicit random seed" "random:7" "random:7";
  check_some "explicit interleave seed" "interleave:9" "interleave:9";
  check_some "default" "interleave:42" "default";
  (* round-trip: to_string output always parses back to the same strategy *)
  List.iter
    (fun st -> check_some "round-trip" (Strategy.to_string st) (Strategy.to_string st))
    [ Strategy.Dfs; Strategy.Bfs; Strategy.Random 3; Strategy.Interleave 5 ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true (Strategy.of_string s = None))
    [ "random:"; "random:x"; "dfs:3"; "cloud9"; "interleave:4.5" ]

let suite =
  [
    Alcotest.test_case "no branch" `Quick test_no_branch;
    Alcotest.test_case "single branch" `Quick test_single_branch;
    Alcotest.test_case "infeasible pruning" `Quick test_infeasible_pruning;
    Alcotest.test_case "path conditions sound" `Quick test_path_conditions_sound;
    Alcotest.test_case "concrete conditions don't fork" `Quick test_concrete_conditions_dont_fork;
    Alcotest.test_case "crash recorded" `Quick test_crash_recorded;
    Alcotest.test_case "stop records partial trace" `Quick test_stop_records_partial;
    Alcotest.test_case "assume" `Quick test_assume;
    Alcotest.test_case "assume infeasible aborts" `Quick test_assume_infeasible_aborts;
    Alcotest.test_case "concretize" `Quick test_concretize;
    Alcotest.test_case "max_paths budget" `Quick test_max_paths;
    Alcotest.test_case "max_decisions truncates" `Quick test_max_decisions_truncates;
    Alcotest.test_case "strategies agree on path set" `Quick test_strategies_agree;
    Alcotest.test_case "coverage marks" `Quick test_coverage_marks;
    Alcotest.test_case "constraint size stats" `Quick test_stats_constraint_sizes;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "strategy parsing round-trips" `Quick test_strategy_of_string;
  ]
