(* Tests for the solver stack: SAT core, bit-blasting, interval pre-filter
   and the frontend.  The central property: [Solver.check] agrees with
   brute-force/semantic evaluation, and every SAT answer carries a genuine
   model. *)

open Smt

let c w v = Expr.const ~width:w (Int64.of_int v)
let sat conds =
  match Solver.check ~use_cache:false conds with
  | Solver.Sat _ -> true
  | Solver.Unsat -> false
  | Solver.Unknown _ -> Alcotest.fail "unbudgeted query returned Unknown"

let model conds =
  match Solver.check ~use_cache:false conds with
  | Solver.Sat m -> m
  | Solver.Unsat -> Alcotest.fail "expected SAT"
  | Solver.Unknown _ -> Alcotest.fail "unbudgeted query returned Unknown"

let check_bool = Alcotest.(check bool)

(* --- SAT core ------------------------------------------------------- *)

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ 2 * a; 2 * b ];
  Sat.add_clause s [ (2 * a) + 1 ];
  check_bool "sat" true (Sat.solve s = Sat.Sat);
  check_bool "a false" false (Sat.model_value s a);
  check_bool "b true" true (Sat.model_value s b)

let test_sat_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ 2 * a ];
  Sat.add_clause s [ (2 * a) + 1 ];
  check_bool "unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_pigeonhole () =
  (* 4 pigeons, 3 holes: classic small UNSAT needing real conflict analysis *)
  let s = Sat.create () in
  let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  for p = 0 to 3 do
    Sat.add_clause s (List.init 3 (fun h -> 2 * v.(p).(h)))
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        Sat.add_clause s [ (2 * v.(p1).(h)) + 1; (2 * v.(p2).(h)) + 1 ]
      done
    done
  done;
  check_bool "pigeonhole unsat" true (Sat.solve s = Sat.Unsat)

let prop_sat_vs_bruteforce =
  (* random small CNF vs exhaustive enumeration *)
  QCheck2.Test.make ~name:"CDCL agrees with brute force on small CNF" ~count:200
    QCheck2.Gen.(
      let* nvars = int_range 1 8 in
      let+ clauses =
        list_size (int_range 1 20)
          (list_size (int_range 1 3)
             (let* v = int_range 0 (nvars - 1) in
              let+ sign = bool in
              (2 * v) + if sign then 1 else 0))
      in
      (nvars, clauses))
    (fun (nvars, clauses) ->
      let s = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      List.iter (Sat.add_clause s) clauses;
      let got = Sat.solve s = Sat.Sat in
      let brute =
        let ok = ref false in
        for assign = 0 to (1 lsl nvars) - 1 do
          let lit_true l =
            let v = l lsr 1 in
            let value = (assign lsr v) land 1 = 1 in
            if l land 1 = 1 then not value else value
          in
          if List.for_all (List.exists lit_true) clauses then ok := true
        done;
        !ok
      in
      got = brute)

(* --- bitvector layer -------------------------------------------------- *)

let test_arith_solving () =
  let x = Expr.var ~width:16 "sx" and y = Expr.var ~width:16 "sy" in
  (* the extra bound removes the second mod-2^16 solution *)
  let m =
    model
      [
        Expr.eq (Expr.add x y) (c 16 1000);
        Expr.eq (Expr.sub x y) (c 16 100);
        Expr.ult x (c 16 1000);
      ]
  in
  Alcotest.(check int64) "x" 550L (Model.get m (Expr.make_var "sx" 16));
  Alcotest.(check int64) "y" 450L (Model.get m (Expr.make_var "sy" 16))

let test_unsat_range () =
  let x = Expr.var ~width:16 "sz" in
  check_bool "x<10 and x>20 unsat" false
    (sat [ Expr.ult x (c 16 10); Expr.ugt x (c 16 20) ]);
  check_bool "x=5 and x=6 unsat" false
    (sat [ Expr.eq x (c 16 5); Expr.eq x (c 16 6) ]);
  check_bool "x<=5 or-free sat" true (sat [ Expr.ule x (c 16 5) ])

let test_mul_inverse () =
  let z = Expr.var ~width:8 "sm" in
  let m = model [ Expr.eq (Expr.mul z (c 8 5)) (c 8 35); Expr.ult z (c 8 16) ] in
  Alcotest.(check int64) "z" 7L (Model.get m (Expr.make_var "sm" 8))

let test_symbolic_shift () =
  let n = Expr.var ~width:32 "sn" in
  (* 0xffffffff << n = 0xffffff00  =>  n = 8 *)
  let mask = Expr.const ~width:32 0xffffffffL in
  let m = model [ Expr.eq (Expr.shl mask n) (Expr.const ~width:32 0xffffff00L) ] in
  Alcotest.(check int64) "n" 8L (Model.get m (Expr.make_var "sn" 32));
  (* n >= 32 zeroes the mask *)
  check_bool "overshift" true
    (sat [ Expr.eq (Expr.shl mask n) (Expr.const ~width:32 0L); Expr.uge n (c 32 32) ])

let test_extract_concat_solving () =
  let x = Expr.var ~width:16 "se" in
  let hi = Expr.extract ~hi:15 ~lo:8 x and lo = Expr.extract ~hi:7 ~lo:0 x in
  let m = model [ Expr.eq hi (c 8 0xab); Expr.eq lo (c 8 0xcd) ] in
  Alcotest.(check int64) "x from bytes" 0xabcdL (Model.get m (Expr.make_var "se" 16));
  check_bool "concat of extracts = x" true
    (not (sat [ Expr.neq (Expr.concat hi lo) x ]))

let test_ite_solving () =
  let x = Expr.var ~width:8 "si" in
  let e = Expr.ite (Expr.ult x (c 8 10)) (c 8 1) (c 8 2) in
  let m = model [ Expr.eq e (c 8 1) ] in
  check_bool "model obeys guard" true
    (Int64.unsigned_compare (Model.get m (Expr.make_var "si" 8)) 10L < 0);
  check_bool "e=3 impossible" false (sat [ Expr.eq e (c 8 3) ])

let test_signed_solving () =
  let x = Expr.var ~width:8 "ss" in
  (* x <s 0 forces the sign bit *)
  let m = model [ Expr.slt x (c 8 0) ] in
  check_bool "sign bit set" true
    (Int64.logand (Model.get m (Expr.make_var "ss" 8)) 0x80L = 0x80L)

let test_entails () =
  let x = Expr.var ~width:16 "sv" in
  let pc = [ Expr.ult x (c 16 10) ] in
  check_bool "x<10 entails x<20" true (Solver.entails pc (Expr.ult x (c 16 20)));
  check_bool "x<10 does not entail x<5" false (Solver.entails pc (Expr.ult x (c 16 5)))

(* Every SAT answer's model satisfies the query (on random queries). *)
let prop_model_soundness =
  QCheck2.Test.make ~name:"SAT models satisfy the query" ~count:150
    QCheck2.Gen.(
      let* w = oneofl [ 4; 8; 16 ] in
      let+ conds = list_size (int_range 1 4) (Gen.bool_gen ~max_depth:2 w) in
      conds)
    (fun conds ->
      match Solver.check ~use_cache:false conds with
      | Solver.Unsat -> true
      | Solver.Sat m -> Model.satisfies m conds
      | Solver.Unknown _ -> false)

(* Agreement with brute force over one small variable. *)
let prop_vs_enumeration =
  QCheck2.Test.make ~name:"solver agrees with enumeration at width 4" ~count:150
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 3) (Gen.bool_gen ~max_depth:2 4))
    (fun conds ->
      let vars =
        List.sort_uniq compare (List.concat_map Expr.vars_of_bool conds)
      in
      match vars with
      | [] | _ :: _ :: _ :: _ :: _ -> QCheck2.assume_fail ()
      | _ ->
        let n = List.length vars in
        let brute =
          let found = ref false in
          for assign = 0 to (1 lsl (4 * n)) - 1 do
            let lookup v =
              match List.find_index (fun u -> Expr.var_id u = Expr.var_id v) vars with
              | Some i -> Int64.of_int ((assign lsr (4 * i)) land 0xf)
              | None -> 0L
            in
            if List.for_all (Expr.eval_bool lookup) conds then found := true
          done;
          !found
        in
        sat conds = brute)

(* Interval filter soundness: whenever the interval domain says UNSAT, the
   full solver agrees. *)
let prop_interval_sound =
  QCheck2.Test.make ~name:"interval UNSAT implies solver UNSAT" ~count:300
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 5) (Gen.bool_gen ~max_depth:1 8))
    (fun conds ->
      match Interval.check conds with
      | Interval.Unknown -> true
      | Interval.Unsat -> not (sat conds))

let test_interval_units () =
  let x = Expr.var ~width:16 "iv" in
  let chk conds = Interval.check conds in
  check_bool "contradictory eq" true
    (chk [ Expr.eq x (c 16 5); Expr.eq x (c 16 6) ] = Interval.Unsat);
  check_bool "range clash" true
    (chk [ Expr.ult x (c 16 10); Expr.uge x (c 16 10) ] = Interval.Unsat);
  check_bool "masked bits clash" true
    (chk
       [
         Expr.eq (Expr.logand x (c 16 0xf)) (c 16 0xf);
         Expr.eq (Expr.logand x (c 16 0x1)) (c 16 0);
       ]
    = Interval.Unsat);
  check_bool "neq kills singleton" true
    (chk [ Expr.eq x (c 16 5); Expr.neq x (c 16 5) ] = Interval.Unsat);
  check_bool "satisfiable stays unknown" true
    (chk [ Expr.ult x (c 16 10) ] = Interval.Unknown);
  (* unrecognized constraint shapes must not produce UNSAT *)
  let y = Expr.var ~width:16 "iw" in
  check_bool "cross-variable is unknown" true
    (chk [ Expr.eq (Expr.add x y) (c 16 3) ] = Interval.Unknown)

let test_solver_cache () =
  Solver.clear_cache ();
  Solver.reset_stats ();
  let x = Expr.var ~width:16 "cachex" in
  let q = [ Expr.ult x (c 16 10) ] in
  ignore (Solver.check q);
  let calls_before = (Solver.stats ()).Solver.sat_calls in
  ignore (Solver.check q);
  Alcotest.(check int) "second query cached" calls_before (Solver.stats ()).Solver.sat_calls

let suite =
  [
    Alcotest.test_case "sat basic" `Quick test_sat_basic;
    Alcotest.test_case "sat unsat" `Quick test_sat_unsat;
    Alcotest.test_case "sat pigeonhole" `Quick test_sat_pigeonhole;
    QCheck_alcotest.to_alcotest prop_sat_vs_bruteforce;
    Alcotest.test_case "arithmetic system" `Quick test_arith_solving;
    Alcotest.test_case "unsat ranges" `Quick test_unsat_range;
    Alcotest.test_case "multiplication inverse" `Quick test_mul_inverse;
    Alcotest.test_case "symbolic shifts" `Quick test_symbolic_shift;
    Alcotest.test_case "extract/concat" `Quick test_extract_concat_solving;
    Alcotest.test_case "ite" `Quick test_ite_solving;
    Alcotest.test_case "signed constraints" `Quick test_signed_solving;
    Alcotest.test_case "entailment" `Quick test_entails;
    QCheck_alcotest.to_alcotest prop_model_soundness;
    QCheck_alcotest.to_alcotest prop_vs_enumeration;
    QCheck_alcotest.to_alcotest prop_interval_sound;
    Alcotest.test_case "interval units" `Quick test_interval_units;
    Alcotest.test_case "query cache" `Quick test_solver_cache;
  ]
