(* Incremental crosscheck: MiniSat-style assumption solving in the SAT
   core, the session layer's equivalence with scratch solving, and the
   end-to-end claim — a crosscheck report is byte-identical whether the
   pairs were solved on per-row incremental sessions (the default) or on
   fresh per-pair instances, across randomized pair matrices, chaos
   seeds, certify mode, and worker counts. *)

open Smt
module Runner = Harness.Runner
module Test_spec = Harness.Test_spec
module Chaos = Harness.Chaos

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_clean_world f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.deactivate ();
      Mono.reset_skew ();
      Solver.set_certify false;
      Solver.set_default_budget Solver.no_budget;
      Solver.clear_cache ())
    f

(* --- the SAT core's assumption interface ------------------------------- *)

let test_sat_assumptions () =
  let s = Sat.create () in
  let va = Sat.new_var s and vb = Sat.new_var s in
  let a = 2 * va and b = 2 * vb in
  Sat.add_clause s [ a; b ];
  check_bool "sat under [not a]" true (Sat.solve ~assumptions:[| Sat.lit_neg a |] s = Sat.Sat);
  check_bool "the model respects the assumption" true (not (Sat.model_value s va));
  check_bool "and satisfies the clause through b" true (Sat.model_value s vb);
  (match Sat.solve ~assumptions:[| Sat.lit_neg a; Sat.lit_neg b |] s with
  | Sat.Unsat ->
    let failed = Sat.failed_assumptions s in
    check_bool "failed assumptions reported" true (failed <> []);
    List.iter
      (fun l ->
        check_bool "failed subset drawn from the call's assumptions" true
          (l = Sat.lit_neg a || l = Sat.lit_neg b))
      failed
  | _ -> Alcotest.fail "expected unsat under contradictory assumptions");
  (* unsat-under-assumptions must not poison the instance *)
  check_bool "instance survives an assumption failure" true (Sat.solve s = Sat.Sat);
  (* an assumption contradicted at level 0 is the degenerate failure *)
  Sat.add_clause s [ a ];
  (match Sat.solve ~assumptions:[| Sat.lit_neg a |] s with
  | Sat.Unsat ->
    check_bool "root-level failure names the assumption itself" true
      (Sat.failed_assumptions s = [ Sat.lit_neg a ])
  | _ -> Alcotest.fail "expected unsat against a root-level unit");
  (* an assumption already true at level 0 costs an empty decision level *)
  check_bool "already-true assumptions are free" true
    (Sat.solve ~assumptions:[| a; b |] s = Sat.Sat);
  check_bool "still sat with no assumptions at all" true (Sat.solve s = Sat.Sat)

let test_sat_incremental_growth () =
  (* clauses and variables may arrive between solves; earlier answers must
     not leak into later ones *)
  let s = Sat.create () in
  let v1 = Sat.new_var s in
  Sat.add_clause s [ (2 * v1) + 1 ];
  check_bool "first solve" true (Sat.solve s = Sat.Sat);
  let v2 = Sat.new_var s in
  Sat.add_clause s [ 2 * v2 ];
  Sat.add_clause s [ (2 * v2) + 1; 2 * v1 ];
  (* v2 ∧ (¬v2 ∨ v1) forces v1, contradicting the first unit: global unsat *)
  check_bool "growing into unsat is detected" true (Sat.solve s = Sat.Unsat);
  check_bool "a globally unsat instance stays unsat" true
    (Sat.solve ~assumptions:[| 2 * v1 |] s = Sat.Unsat)

(* --- the session layer ------------------------------------------------- *)

let vars = lazy (List.map (fun n -> Expr.var ~width:8 ("inc." ^ n)) [ "x"; "y"; "z" ])

let random_cond rng =
  let vars = Lazy.force vars in
  let v = List.nth vars (Random.State.int rng (List.length vars)) in
  let c = Expr.const ~width:8 (Int64.of_int (Random.State.int rng 256)) in
  match Random.State.int rng 4 with
  | 0 -> Expr.ult v c
  | 1 -> Expr.eq v c
  | 2 -> Expr.not_ (Expr.eq v c)
  | _ -> Expr.ult c v

let test_session_matches_scratch_queries () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      let rng = Random.State.make [| 42 |] in
      for _ = 1 to 6 do
        let base = Expr.balanced_disj (List.init 3 (fun _ -> random_cond rng)) in
        let session = Session.create [ base ] in
        for _ = 1 to 12 do
          let extra = Expr.balanced_disj (List.init 2 (fun _ -> random_cond rng)) in
          Solver.clear_cache ();
          let r_inc = Session.check session [ base; extra ] in
          Solver.clear_cache ();
          let r_scr = Solver.check [ base; extra ] in
          match (r_inc, r_scr) with
          | Solver.Sat m1, Solver.Sat m2 ->
            check_bool "session publishes the scratch witness" true
              (Model.bindings m1 = Model.bindings m2)
          | Solver.Unsat, Solver.Unsat -> ()
          | _ -> Alcotest.fail "session verdict differs from scratch"
        done
      done)

(* --- crosscheck equivalence ------------------------------------------- *)

(* the one nondeterministic field is wall time; everything else must be
   byte-identical between the two solving modes *)
let canon (o : Soft.Crosscheck.outcome) =
  Format.asprintf "%a" Soft.Crosscheck.pp { o with Soft.Crosscheck.o_check_time = 0.0 }

(* A synthetic grouped run: randomized conditions over a tiny shared
   variable pool, result keys drawn so the two sides overlap on some
   (those pairs are skipped as equal) and differ on the rest. *)
let mk_grouped ~rng ~agent ~key_base n_groups =
  let groups =
    List.init n_groups (fun k ->
        let members = List.init (1 + Random.State.int rng 3) (fun _ -> random_cond rng) in
        let result =
          { Openflow.Trace.trace = [ Printf.sprintf "out:%d" (key_base + k) ]; crash = None }
        in
        {
          Soft.Grouping.g_result = result;
          g_key = Openflow.Trace.result_key result;
          g_cond = Expr.balanced_disj members;
          g_member_conds = members;
          g_path_count = List.length members;
        })
  in
  {
    Soft.Grouping.gr_agent = agent;
    gr_test = "synthetic";
    gr_groups = groups;
    gr_group_time = 0.0;
  }

let test_random_matrices_identical () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      for seed = 1 to 8 do
        let rng = Random.State.make [| seed |] in
        let na = 2 + Random.State.int rng 5 and nb = 2 + Random.State.int rng 5 in
        (* overlapping key ranges: some equal pairs, some crosschecked *)
        let a = mk_grouped ~rng ~agent:"A" ~key_base:0 na in
        let b = mk_grouped ~rng ~agent:"B" ~key_base:(Random.State.int rng 3) nb in
        let run ~incremental ~jobs =
          Solver.clear_cache ();
          Soft.Crosscheck.check ~jobs ~incremental a b
        in
        let scratch = run ~incremental:false ~jobs:1 in
        let msg s = Printf.sprintf "seed %d: %s" seed s in
        Alcotest.(check string)
          (msg "incremental -j1 byte-identical to scratch")
          (canon scratch)
          (canon (run ~incremental:true ~jobs:1));
        Alcotest.(check string)
          (msg "incremental -j4 byte-identical to scratch")
          (canon scratch)
          (canon (run ~incremental:true ~jobs:4))
      done)

let grouped_runs () =
  let spec = Test_spec.packet_out () in
  let run_a = Runner.execute ~max_paths:60 Switches.Reference_switch.agent spec in
  let run_b = Runner.execute ~max_paths:60 Switches.Modified_switch.agent spec in
  (Soft.Grouping.of_run run_a, Soft.Grouping.of_run run_b)

let test_real_runs_identical () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      let a, b = grouped_runs () in
      let run ~incremental ~jobs =
        Solver.clear_cache ();
        Soft.Crosscheck.check ~jobs ~incremental a b
      in
      let scratch = run ~incremental:false ~jobs:1 in
      check_bool "some inconsistencies to disagree about" true
        (Soft.Crosscheck.count scratch > 0);
      Alcotest.(check string) "incremental -j1 identical on real runs" (canon scratch)
        (canon (run ~incremental:true ~jobs:1));
      Alcotest.(check string) "incremental -j4 identical on real runs" (canon scratch)
        (canon (run ~incremental:true ~jobs:4)))

let test_chaos_seeds_identical () =
  (* same chaos plan, same per-query fault stream: at -j1 the two modes
     fire the query hook at the same stream positions, so even the
     degraded reports must match byte for byte across all seeds *)
  with_clean_world (fun () ->
      Solver.set_certify false;
      let a, b = grouped_runs () in
      for seed = 1 to 8 do
        let run incremental =
          Solver.clear_cache ();
          Mono.reset_skew ();
          Chaos.install (Chaos.plan ~seed ~rate:0.3 ());
          let o = Soft.Crosscheck.check ~jobs:1 ~incremental a b in
          Chaos.deactivate ();
          Mono.reset_skew ();
          o
        in
        let scratch = run false in
        Alcotest.(check string)
          (Printf.sprintf "chaos seed %d: incremental report identical" seed)
          (canon scratch)
          (canon (run true))
      done)

let test_certify_forces_scratch_and_matches () =
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      Solver.set_certify true;
      let st = Solver.stats () in
      let sessions0 = st.Solver.sessions_opened in
      let proofs0 = st.Solver.proofs_checked in
      Solver.clear_cache ();
      let o_inc = Soft.Crosscheck.check ~jobs:1 ~incremental:true a b in
      check_int "certify mode opens no sessions" sessions0 st.Solver.sessions_opened;
      check_bool "certify mode still checks proofs" true (st.Solver.proofs_checked > proofs0);
      Solver.clear_cache ();
      let o_scr = Soft.Crosscheck.check ~jobs:1 ~incremental:false a b in
      Alcotest.(check string) "reports identical under certify" (canon o_scr) (canon o_inc))

(* --- the session counters --------------------------------------------- *)

let test_session_counters_and_merge () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      let a, b = grouped_runs () in
      let st = Solver.stats () in
      let sessions0 = st.Solver.sessions_opened in
      let assumes0 = st.Solver.assumption_solves in
      Solver.clear_cache ();
      (* ~share:false: the shared-base path opens no per-row sessions, and
         this test is about the session counters *)
      ignore (Soft.Crosscheck.check ~jobs:4 ~incremental:true ~share:false a b);
      (* the crosscheck ran on worker domains; worker_exit folded the new
         counters back into this domain's record *)
      check_bool "sessions opened on workers merged back" true
        (st.Solver.sessions_opened > sessions0);
      check_bool "assumption solves merged back" true (st.Solver.assumption_solves > assumes0);
      (* merge_stats folds every new counter *)
      let src =
        {
          Solver.queries = 0;
          const_hits = 0;
          interval_hits = 0;
          cache_hits = 0;
          sat_calls = 0;
          sat_results = 0;
          unsat_results = 0;
          unknown_results = 0;
          cache_evictions = 0;
          solver_time = 0.0;
          proofs_checked = 0;
          proofs_failed = 0;
          sessions_opened = 3;
          assumption_solves = 7;
          scratch_fallbacks = 2;
          tiny_session_fallbacks = 5;
          learnt_retained = 11;
          canonical_hits = 13;
          canon_small_skips = 6;
          canon_threshold_nodes = 64;
          rows_pruned = 2;
          pairs_skipped_by_pruning = 9;
          subsumed_groups = 1;
          shared_solves = 4;
          bases_adopted = 2;
          clauses_exported = 8;
          clauses_imported = 10;
          expr_nodes = 0;
        }
      in
      let s1 = st.Solver.sessions_opened and a1 = st.Solver.assumption_solves in
      let f1 = st.Solver.scratch_fallbacks and l1 = st.Solver.learnt_retained in
      let t1 = st.Solver.tiny_session_fallbacks in
      let c1 = st.Solver.canonical_hits and r1 = st.Solver.rows_pruned in
      let p1 = st.Solver.pairs_skipped_by_pruning and g1 = st.Solver.subsumed_groups in
      let k1 = st.Solver.canon_small_skips in
      let sh1 = st.Solver.shared_solves and ad1 = st.Solver.bases_adopted in
      let ex1 = st.Solver.clauses_exported and im1 = st.Solver.clauses_imported in
      Solver.merge_stats ~into:st src;
      check_int "merge adds sessions_opened" (s1 + 3) st.Solver.sessions_opened;
      check_int "merge adds assumption_solves" (a1 + 7) st.Solver.assumption_solves;
      check_int "merge adds scratch_fallbacks" (f1 + 2) st.Solver.scratch_fallbacks;
      check_int "merge adds tiny_session_fallbacks" (t1 + 5) st.Solver.tiny_session_fallbacks;
      check_int "merge adds learnt_retained" (l1 + 11) st.Solver.learnt_retained;
      check_int "merge adds canonical_hits" (c1 + 13) st.Solver.canonical_hits;
      check_int "merge adds rows_pruned" (r1 + 2) st.Solver.rows_pruned;
      check_int "merge adds pairs_skipped_by_pruning" (p1 + 9) st.Solver.pairs_skipped_by_pruning;
      check_int "merge adds subsumed_groups" (g1 + 1) st.Solver.subsumed_groups;
      check_int "merge adds canon_small_skips" (k1 + 6) st.Solver.canon_small_skips;
      check_bool "merge maxes canon_threshold_nodes" true
        (st.Solver.canon_threshold_nodes >= 64);
      check_int "merge adds shared_solves" (sh1 + 4) st.Solver.shared_solves;
      check_int "merge adds bases_adopted" (ad1 + 2) st.Solver.bases_adopted;
      check_int "merge adds clauses_exported" (ex1 + 8) st.Solver.clauses_exported;
      check_int "merge adds clauses_imported" (im1 + 10) st.Solver.clauses_imported)

let suite =
  [
    ("sat solve under assumptions", `Quick, test_sat_assumptions);
    ("sat instance grows between solves", `Quick, test_sat_incremental_growth);
    ("session answers match scratch queries", `Quick, test_session_matches_scratch_queries);
    ("randomized matrices: incremental = scratch", `Quick, test_random_matrices_identical);
    ("real runs: incremental = scratch at -j1/-j4", `Quick, test_real_runs_identical);
    ("chaos seeds: incremental = scratch", `Quick, test_chaos_seeds_identical);
    ("certify mode falls back to scratch", `Quick, test_certify_forces_scratch_and_matches);
    ("session counters fold across domains", `Quick, test_session_counters_and_merge);
  ]
