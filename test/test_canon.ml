(* Semantic query canonicalization and UNSAT-core row pruning: the
   α-invariance of the canonical key, the solver's canonical memo layer
   (Unsat transfers, Sat replays its witness, certify never trusts a hit
   without replay), and the crosscheck pruning pass — byte-identical
   reports with pruning on or off, at -j1 and -j2, clean and under an
   8-seed chaos sweep where verdicts may only degrade to undecided. *)

open Smt
module Chaos = Harness.Chaos
module Runner = Harness.Runner
module Test_spec = Harness.Test_spec
module Trace = Openflow.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_clean_world f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.deactivate ();
      Mono.reset_skew ();
      Solver.set_certify false;
      Solver.set_canon true;
      Solver.set_canon_threshold Solver.default_canon_threshold;
      Solver.set_default_budget Solver.no_budget;
      Solver.clear_cache ())
    f

(* --- α-renaming over the hash-consed DAG ------------------------------- *)

(* Rebuild a formula with every variable [v] replaced by [sub v].  Smart
   constructors re-apply the same deterministic folds, so a pure renaming
   yields a structurally identical term over fresh variables — exactly
   the α-variant the canonical key must not distinguish. *)
let rec rename_bv sub (e : Expr.bv) : Expr.bv =
  match e.Expr.node with
  | Expr.Const c -> Expr.const ~width:e.Expr.width c
  | Expr.Var v -> sub v
  | Expr.Unop (op, a) -> Expr.unop op (rename_bv sub a)
  | Expr.Binop (op, a, b) -> Expr.binop op (rename_bv sub a) (rename_bv sub b)
  | Expr.Ite (c, t, f) ->
    Expr.ite (rename_bool sub c) (rename_bv sub t) (rename_bv sub f)
  | Expr.Extract (a, hi, lo) -> Expr.extract ~hi ~lo (rename_bv sub a)
  | Expr.Concat (h, l) -> Expr.concat (rename_bv sub h) (rename_bv sub l)
  | Expr.Zext a -> Expr.zext ~width:e.Expr.width (rename_bv sub a)
  | Expr.Sext a -> Expr.sext ~width:e.Expr.width (rename_bv sub a)

and rename_bool sub (b : Expr.boolean) : Expr.boolean =
  match b.Expr.bnode with
  | Expr.True -> Expr.tru
  | Expr.False -> Expr.fls
  | Expr.Cmp (op, x, y) -> Expr.cmp op (rename_bv sub x) (rename_bv sub y)
  | Expr.Not x -> Expr.not_ (rename_bool sub x)
  | Expr.And (x, y) -> Expr.and_ (rename_bool sub x) (rename_bool sub y)
  | Expr.Or (x, y) -> Expr.or_ (rename_bool sub x) (rename_bool sub y)

let prefixed prefix v =
  Expr.var ~width:(Expr.var_width v) (prefix ^ "." ^ Expr.var_name v)

(* --- randomized formulas over a small shared pool ---------------------- *)

let pool = lazy (List.map (fun n -> Expr.var ~width:8 ("cn." ^ n)) [ "x"; "y"; "z" ])

let rec random_bv rng depth =
  if depth = 0 || Random.State.int rng 3 = 0 then
    if Random.State.bool rng then
      List.nth (Lazy.force pool) (Random.State.int rng 3)
    else Expr.const ~width:8 (Int64.of_int (Random.State.int rng 256))
  else
    match Random.State.int rng 6 with
    | 0 -> Expr.add (random_bv rng (depth - 1)) (random_bv rng (depth - 1))
    | 1 -> Expr.mul (random_bv rng (depth - 1)) (random_bv rng (depth - 1))
    | 2 -> Expr.logand (random_bv rng (depth - 1)) (random_bv rng (depth - 1))
    | 3 -> Expr.logxor (random_bv rng (depth - 1)) (random_bv rng (depth - 1))
    | 4 -> Expr.bnot (random_bv rng (depth - 1))
    | _ ->
      Expr.ite (random_cond rng (depth - 1))
        (random_bv rng (depth - 1))
        (random_bv rng (depth - 1))

and random_cond rng depth =
  let x = random_bv rng depth and y = random_bv rng depth in
  match Random.State.int rng 5 with
  | 0 -> Expr.eq x y
  | 1 -> Expr.ult x y
  | 2 -> Expr.not_ (Expr.ule x y)
  | 3 when depth > 0 -> Expr.and_ (Expr.eq x y) (random_cond rng (depth - 1))
  | 4 when depth > 0 -> Expr.or_ (Expr.ult x y) (random_cond rng (depth - 1))
  | _ -> Expr.ule x y

let random_conds rng =
  List.init (1 + Random.State.int rng 3) (fun _ -> random_cond rng (1 + Random.State.int rng 2))

(* --- the canonical key itself ------------------------------------------ *)

let test_alpha_renaming_shares_key () =
  let rng = Random.State.make [| 7 |] in
  for i = 1 to 25 do
    let conds = random_conds rng in
    let key, ren = Canon.of_conds conds in
    let renamed = List.map (rename_bool (prefixed (Printf.sprintf "r%d" i))) conds in
    let key', ren' = Canon.of_conds renamed in
    check_string (Printf.sprintf "iteration %d: α-renaming preserves the key" i) key key';
    check_int
      (Printf.sprintf "iteration %d: same number of variable slots" i)
      (Canon.slot_count ren) (Canon.slot_count ren');
    (* a genuinely different query must not collide *)
    let x = List.hd (Lazy.force pool) in
    check_bool
      (Printf.sprintf "iteration %d: distinct constants give distinct keys" i)
      false
      (Canon.key_of_conds (Expr.eq_const x 77L :: conds)
      = Canon.key_of_conds (Expr.eq_const x 78L :: conds))
  done

let test_canonicalization_idempotent () =
  let rng = Random.State.make [| 11 |] in
  for i = 1 to 25 do
    let conds = random_conds rng in
    let k1 = Canon.key_of_conds conds in
    let k2 = Canon.key_of_conds conds in
    check_string (Printf.sprintf "iteration %d: deterministic across calls" i) k1 k2;
    check_string
      (Printf.sprintf "iteration %d: of_conds and key_of_conds agree" i)
      k1
      (fst (Canon.of_conds conds))
  done

let test_shape_invariances () =
  let x = Expr.var ~width:8 "ci.x"
  and y = Expr.var ~width:8 "ci.y"
  and z = Expr.var ~width:8 "ci.z" in
  let a = Expr.ult x y and b = Expr.eq_const y 4L and c = Expr.ule z x in
  check_string "conjunct order is irrelevant"
    (Canon.key_of_conds [ a; b; c ])
    (Canon.key_of_conds [ c; a; b ]);
  check_string "a conjunction flattens into the conjunct list"
    (Canon.key_of_conds [ a; b; c ])
    (Canon.key_of_conds [ Expr.and_ a (Expr.and_ b c) ]);
  let ms = [ a; b; c; Expr.ugt x z; Expr.eq x (Expr.add y z) ] in
  check_string "disjunction reassociation is invisible"
    (Canon.key_of_conds [ Expr.disj ms ])
    (Canon.key_of_conds [ Expr.balanced_disj ms ]);
  check_string "double negation cancels"
    (Canon.key_of_conds [ a ])
    (Canon.key_of_conds [ Expr.not_ (Expr.not_ a) ]);
  check_string "De Morgan: ¬(a ∨ b) has the key of ¬a ∧ ¬b"
    (Canon.key_of_conds [ Expr.not_ (Expr.or_ a b) ])
    (Canon.key_of_conds [ Expr.not_ a; Expr.not_ b ]);
  check_string "commutative operands reorder freely"
    (Canon.key_of_conds [ Expr.eq (Expr.add x y) z ])
    (Canon.key_of_conds [ Expr.eq z (Expr.add y x) ])

(* --- the solver's canonical memo layer --------------------------------- *)

let test_unsat_transfers_across_renaming () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      (* the probe queries here are deliberately tiny; disable the
         small-query skip so they reach the canonical layer under test *)
      Solver.set_canon_threshold 0;
      Solver.clear_cache ();
      let st = Solver.stats () in
      (* interval filter off: the conflicting constants would be refuted
         before the canonical lookup runs, and this test targets the
         canonical layer alone *)
      let unsat_pair v = [ Expr.eq_const v 3L; Expr.eq_const v 5L ] in
      let x = Expr.var ~width:8 "ct.x" in
      check_bool "original query is unsat" true
        (Solver.check ~use_interval:false (unsat_pair x) = Solver.Unsat);
      let c0 = st.Solver.canonical_hits and s0 = st.Solver.sat_calls in
      let y = Expr.var ~width:8 "ct.y" in
      check_bool "renamed query answered unsat" true
        (Solver.check ~use_interval:false (unsat_pair y) = Solver.Unsat);
      check_int "the α-variant hit the canonical memo" (c0 + 1) st.Solver.canonical_hits;
      check_int "an unsat transfer costs no SAT call" s0 st.Solver.sat_calls;
      (* reassociated variant: conjunction vs two-element list *)
      let z = Expr.var ~width:8 "ct.z" in
      check_bool "conjoined variant answered unsat" true
        (Solver.check ~use_interval:false
           [ Expr.and_ (Expr.eq_const z 3L) (Expr.eq_const z 5L) ]
        = Solver.Unsat);
      check_int "the reassociated variant hit too" (c0 + 2) st.Solver.canonical_hits;
      (* --no-canon: same query shape must now miss *)
      Solver.set_canon false;
      let w = Expr.var ~width:8 "ct.w" in
      check_bool "canon off: still answered (by the solver)" true
        (Solver.check ~use_interval:false (unsat_pair w) = Solver.Unsat);
      check_int "canon off: no canonical hit recorded" (c0 + 2) st.Solver.canonical_hits;
      Solver.set_canon true)

let test_sat_hit_replays_witness () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      Solver.set_canon_threshold 0;
      Solver.clear_cache ();
      let st = Solver.stats () in
      let query a b =
        [ Expr.ult a b; Expr.eq_const (Expr.logand a b) 0L; Expr.neq_const a 0L ]
      in
      let x = Expr.var ~width:8 "cs.x" and y = Expr.var ~width:8 "cs.y" in
      (match Solver.check (query x y) with
      | Solver.Sat _ -> ()
      | _ -> Alcotest.fail "original query should be sat");
      let c0 = st.Solver.canonical_hits and s0 = st.Solver.sat_calls in
      let a = Expr.var ~width:8 "cs.a" and b = Expr.var ~width:8 "cs.b" in
      let m2 =
        match Solver.check (query a b) with
        | Solver.Sat m -> m
        | _ -> Alcotest.fail "renamed query should be sat"
      in
      check_int "the α-variant hit the canonical memo" (c0 + 1) st.Solver.canonical_hits;
      check_int "a sat hit replays through the scratch core" (s0 + 1) st.Solver.sat_calls;
      check_bool "the published witness satisfies the query" true
        (Model.satisfies m2 (query a b));
      (* byte-identity: the witness must be exactly what a fresh, uncached
         solve of the same query would publish *)
      let m3 =
        match Solver.check ~use_cache:false (query a b) with
        | Solver.Sat m -> m
        | _ -> Alcotest.fail "uncached replay should be sat"
      in
      check_bool "witness identical to a fresh solve" true
        (Model.bindings m2 = Model.bindings m3))

let test_certify_never_trusts_canonical_hit () =
  with_clean_world (fun () ->
      Solver.set_certify true;
      Solver.set_canon_threshold 0;
      Solver.clear_cache ();
      let st = Solver.stats () in
      let unsat_pair v = [ Expr.eq_const v 9L; Expr.eq_const v 12L ] in
      let x = Expr.var ~width:8 "cc.x" in
      let p0 = st.Solver.proofs_checked in
      check_bool "certified original is unsat" true
        (Solver.check (unsat_pair x) = Solver.Unsat);
      check_int "the original unsat carried a checked proof" (p0 + 1) st.Solver.proofs_checked;
      let c1 = st.Solver.canonical_hits and p1 = st.Solver.proofs_checked in
      let y = Expr.var ~width:8 "cc.y" in
      check_bool "certified α-variant is unsat" true
        (Solver.check (unsat_pair y) = Solver.Unsat);
      check_int "the hit was recognized" (c1 + 1) st.Solver.canonical_hits;
      check_int "but the verdict still came from a checked proof" (p1 + 1)
        st.Solver.proofs_checked)

(* --- crosscheck row pruning -------------------------------------------- *)

let canon_outcome (o : Soft.Crosscheck.outcome) =
  Format.asprintf "%a" Soft.Crosscheck.pp { o with Soft.Crosscheck.o_check_time = 0.0 }

let mk_group key members =
  let result = { Trace.trace = [ "out:" ^ key ]; crash = None } in
  {
    Soft.Grouping.g_result = result;
    g_key = Trace.result_key result;
    g_cond = Expr.balanced_disj members;
    g_member_conds = members;
    g_path_count = List.length members;
  }

let mk_grouped ~agent groups =
  { Soft.Grouping.gr_agent = agent; gr_test = "synthetic"; gr_groups = groups; gr_group_time = 0.0 }

let test_disjoint_row_pruned_wholesale () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      let x = Expr.var ~width:8 "cp.x" and y = Expr.var ~width:8 "cp.y" in
      let m0 = Expr.ugt x (Expr.const ~width:8 200L) in
      let a =
        mk_grouped ~agent:"A"
          [
            (* row 0: x > 200, disjoint from everything B covers *)
            mk_group "A0" [ m0 ];
            (* row 1: a conjunctive extension of row 0 — structurally
               subsumed, must prune with no probe *)
            mk_group "A1" [ Expr.and_ m0 (Expr.eq_const y 3L) ];
            (* row 2: x < 50 overlaps both B groups — never pruned *)
            mk_group "A2" [ Expr.ult x (Expr.const ~width:8 50L) ];
          ]
      in
      let b =
        mk_grouped ~agent:"B"
          [
            mk_group "B0" [ Expr.ult x (Expr.const ~width:8 10L) ];
            mk_group "B1"
              [
                Expr.and_
                  (Expr.uge x (Expr.const ~width:8 10L))
                  (Expr.ult x (Expr.const ~width:8 20L));
              ];
          ]
      in
      let st = Solver.stats () in
      let r0 = st.Solver.rows_pruned
      and k0 = st.Solver.pairs_skipped_by_pruning
      and g0 = st.Solver.subsumed_groups in
      Solver.clear_cache ();
      let pruned = Soft.Crosscheck.check ~jobs:1 a b in
      check_int "both disjoint rows pruned" (r0 + 2) st.Solver.rows_pruned;
      check_int "all four of their pairs skipped" (k0 + 4) st.Solver.pairs_skipped_by_pruning;
      check_int "the extension row reused the verdict structurally" (g0 + 1)
        st.Solver.subsumed_groups;
      check_int "the overlapping row still found its inconsistencies" 2
        (Soft.Crosscheck.count pruned);
      check_int "every pair was accounted" 6 pruned.Soft.Crosscheck.o_pairs_checked;
      Solver.clear_cache ();
      let unpruned = Soft.Crosscheck.check ~jobs:1 ~prune:false a b in
      check_string "report byte-identical to the unpruned run" (canon_outcome unpruned)
        (canon_outcome pruned))

let mk_random_grouped ~rng ~agent ~key_base n_groups =
  mk_grouped ~agent
    (List.init n_groups (fun k ->
         mk_group
           (string_of_int (key_base + k))
           (List.init (1 + Random.State.int rng 3) (fun _ -> random_cond rng 1))))

let test_random_matrices_prune_identical () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      for seed = 1 to 8 do
        let rng = Random.State.make [| seed; 77 |] in
        let na = 2 + Random.State.int rng 5 and nb = 2 + Random.State.int rng 5 in
        let a = mk_random_grouped ~rng ~agent:"A" ~key_base:0 na in
        let b = mk_random_grouped ~rng ~agent:"B" ~key_base:(Random.State.int rng 3) nb in
        let run ~prune ~jobs =
          Solver.clear_cache ();
          Soft.Crosscheck.check ~jobs ~prune a b
        in
        let baseline = run ~prune:false ~jobs:1 in
        let msg s = Printf.sprintf "seed %d: %s" seed s in
        check_string
          (msg "pruned -j1 byte-identical to unpruned")
          (canon_outcome baseline)
          (canon_outcome (run ~prune:true ~jobs:1));
        check_string
          (msg "pruned -j2 byte-identical to unpruned")
          (canon_outcome baseline)
          (canon_outcome (run ~prune:true ~jobs:2))
      done)

let grouped_runs () =
  let spec = Test_spec.packet_out () in
  let run_a = Runner.execute ~max_paths:60 Switches.Reference_switch.agent spec in
  let run_b = Runner.execute ~max_paths:60 Switches.Modified_switch.agent spec in
  (Soft.Grouping.of_run run_a, Soft.Grouping.of_run run_b)

let test_real_runs_prune_identical () =
  with_clean_world (fun () ->
      Solver.set_certify false;
      let a, b = grouped_runs () in
      let run ~prune ~jobs =
        Solver.clear_cache ();
        Soft.Crosscheck.check ~jobs ~prune a b
      in
      let baseline = run ~prune:false ~jobs:1 in
      check_string "real runs: pruned -j1 identical" (canon_outcome baseline)
        (canon_outcome (run ~prune:true ~jobs:1));
      check_string "real runs: pruned -j2 identical" (canon_outcome baseline)
        (canon_outcome (run ~prune:true ~jobs:2)))

let inconsistency_keys (o : Soft.Crosscheck.outcome) =
  List.map
    (fun (i : Soft.Crosscheck.inconsistency) ->
      (Trace.result_key i.Soft.Crosscheck.i_result_a, Trace.result_key i.Soft.Crosscheck.i_result_b))
    o.Soft.Crosscheck.o_inconsistencies

let test_chaos_sweep_only_degrades () =
  (* faults injected into the pruning probes and the pairwise solves may
     cost verdicts, never invent them: every inconsistency reported under
     chaos exists in the clean run, and anything lost shows up as
     undecided *)
  with_clean_world (fun () ->
      Solver.set_certify false;
      let a, b = grouped_runs () in
      Solver.clear_cache ();
      let clean = Soft.Crosscheck.check ~jobs:1 a b in
      let clean_keys = inconsistency_keys clean in
      check_bool "clean run finds inconsistencies" true (Soft.Crosscheck.count clean > 0);
      for seed = 1 to 8 do
        Solver.clear_cache ();
        Mono.reset_skew ();
        Chaos.install (Chaos.plan ~seed ~rate:0.3 ());
        let chaotic = Soft.Crosscheck.check ~jobs:1 a b in
        Chaos.deactivate ();
        Mono.reset_skew ();
        let msg s = Printf.sprintf "chaos seed %d: %s" seed s in
        List.iter
          (fun k ->
            check_bool (msg "no inconsistency is invented under chaos") true
              (List.mem k clean_keys))
          (inconsistency_keys chaotic);
        check_bool (msg "lost verdicts degrade to undecided, never vanish") true
          (Soft.Crosscheck.count clean - Soft.Crosscheck.count chaotic
          <= Soft.Crosscheck.undecided_count chaotic);
        check_int (msg "the pair matrix is fully accounted")
          clean.Soft.Crosscheck.o_pairs_checked chaotic.Soft.Crosscheck.o_pairs_checked
      done)

let suite =
  [
    ("α-renamed queries share a canonical key", `Quick, test_alpha_renaming_shares_key);
    ("canonicalization is idempotent and deterministic", `Quick, test_canonicalization_idempotent);
    ("reassociation, negation and commutation invariances", `Quick, test_shape_invariances);
    ("unsat verdicts transfer across renamings", `Quick, test_unsat_transfers_across_renaming);
    ("sat hits replay and publish the scratch witness", `Quick, test_sat_hit_replays_witness);
    ("certify never trusts a canonical hit without replay", `Quick,
     test_certify_never_trusts_canonical_hit);
    ("a disjoint row prunes wholesale, subsumption reuses it", `Quick,
     test_disjoint_row_pruned_wholesale);
    ("random matrices: pruned = unpruned at -j1/-j2", `Quick, test_random_matrices_prune_identical);
    ("real runs: pruned = unpruned at -j1/-j2", `Quick, test_real_runs_prune_identical);
    ("chaos sweep over the pruning path only grows undecided", `Quick,
     test_chaos_sweep_only_degrades);
  ]
