(* Internal fault injection: deterministic per-point fault schedules, each
   fault point's concrete effect, and the central soundness invariant —
   over many seeds, injected faults may only move crosscheck pairs to
   undecided, never flip a verdict or invent an inconsistency. *)

open Smt
module Chaos = Harness.Chaos
module Runner = Harness.Runner
module Test_spec = Harness.Test_spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test leaves the process clean: no active plan, no clock skew,
   no poisoned memo cache. *)
let with_clean_world f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.deactivate ();
      Mono.reset_skew ();
      Solver.clear_cache ())
    f

let fires plan pt n =
  (* the boolean fault schedule of [pt]'s next [n] draws *)
  Chaos.install plan;
  let pattern =
    List.init n (fun _ ->
        match Chaos.maybe_raise pt with
        | () -> false
        | exception Chaos.Injected_fault _ -> true)
  in
  Chaos.deactivate ();
  pattern

let test_plan_determinism () =
  with_clean_world (fun () ->
      let p1 = fires (Chaos.plan ~seed:11 ~rate:0.5 ()) Chaos.Solver_fault 200 in
      let p2 = fires (Chaos.plan ~seed:11 ~rate:0.5 ()) Chaos.Solver_fault 200 in
      check_bool "same seed, same schedule" true (p1 = p2);
      let p3 = fires (Chaos.plan ~seed:12 ~rate:0.5 ()) Chaos.Solver_fault 200 in
      check_bool "different seed, different schedule" true (p1 <> p3);
      check_bool "rate 0.5 actually fires sometimes" true (List.mem true p1);
      check_bool "and spares sometimes" true (List.mem false p1))

let test_point_streams_independent () =
  with_clean_world (fun () ->
      (* drawing at one point must not shift another point's schedule *)
      let solo = fires (Chaos.plan ~seed:7 ~rate:0.5 ()) Chaos.Solver_fault 100 in
      let plan = Chaos.plan ~seed:7 ~rate:0.5 () in
      Chaos.install plan;
      let interleaved =
        List.init 100 (fun _ ->
            (try Chaos.maybe_raise Chaos.Agent_step with Chaos.Injected_fault _ -> ());
            match Chaos.maybe_raise Chaos.Solver_fault with
            | () -> false
            | exception Chaos.Injected_fault _ -> true)
      in
      check_bool "solver-fault schedule unshifted by agent-step draws" true
        (solo = interleaved))

let test_rate_bounds () =
  Alcotest.check_raises "rate above 1 rejected"
    (Invalid_argument "Chaos.plan: rate must be within [0, 1]") (fun () ->
      ignore (Chaos.plan ~seed:1 ~rate:1.5 ()));
  Alcotest.check_raises "negative rate rejected"
    (Invalid_argument "Chaos.plan: rate must be within [0, 1]") (fun () ->
      ignore (Chaos.plan ~seed:1 ~rate:(-0.1) ()));
  with_clean_world (fun () ->
      check_bool "rate 0 never fires" true
        (List.for_all not (fires (Chaos.plan ~seed:1 ~rate:0.0 ()) Chaos.Agent_step 100));
      check_bool "rate 1 always fires" true
        (List.for_all Fun.id (fires (Chaos.plan ~seed:1 ~rate:1.0 ()) Chaos.Agent_step 100));
      Chaos.deactivate ();
      (* with no plan active every injection point is a no-op *)
      Chaos.maybe_raise Chaos.Solver_fault;
      Chaos.maybe_clock_jump ())

let test_clock_jump_and_reset () =
  with_clean_world (fun () ->
      let before = Mono.now () in
      Chaos.install (Chaos.plan ~seed:3 ~rate:1.0 ());
      Chaos.maybe_clock_jump ();
      check_bool "clock jumped a day" true (Mono.now () -. before > 86000.0);
      Mono.reset_skew ();
      check_bool "reset_skew restores the clock" true (Mono.now () -. before < 86000.0))

let test_truncation_point () =
  with_clean_world (fun () ->
      let file = Filename.temp_file "soft_chaos" ".dat" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
        (fun () ->
          Out_channel.with_open_bin file (fun oc ->
              Out_channel.output_string oc (String.make 100 'x'));
          (* inactive: untouched *)
          Chaos.maybe_truncate_file file;
          check_int "no plan, no truncation" 100 (Unix.stat file).Unix.st_size;
          Chaos.install (Chaos.plan ~seed:3 ~rate:1.0 ());
          Chaos.maybe_truncate_file file;
          check_int "fired truncation halves the file" 50 (Unix.stat file).Unix.st_size))

(* --- agent-step faults abort runs loudly ------------------------------ *)

let test_agent_step_fault_aborts_run () =
  with_clean_world (fun () ->
      Chaos.install (Chaos.plan ~seed:1 ~rate:1.0 ());
      let spec = Test_spec.packet_out () in
      (match Runner.execute ~max_paths:20 Switches.Reference_switch.agent spec with
       | _ -> Alcotest.fail "injected agent fault did not abort the run"
       | exception Chaos.Injected_fault p ->
         Alcotest.(check string) "the agent-step point fired" "agent-step" p);
      (* crash isolation still contains it at the run boundary: the fault
         becomes a failure record, never a fake trace *)
      match Runner.execute_safe ~max_paths:20 Switches.Reference_switch.agent spec with
      | Ok _ -> Alcotest.fail "execute_safe should have seen the fault"
      | Error f ->
        check_bool "failure names the injected fault" true
          (String.length f.Runner.f_error > 0))

(* --- the soundness invariant over many seeds -------------------------- *)

(* Baseline: a real crosscheck of the reference vs modified switches,
   grouped once.  Chaos then re-runs the same crosscheck under 8 seeds
   with solver faults, clock jumps, and checkpoint truncation armed.  A
   seed may cost verdicts (pairs degrade to undecided) but must never
   invent an inconsistency, lose one to anything but undecided, or alter
   which pairs were compared. *)
let inc_keys (o : Soft.Crosscheck.outcome) =
  List.map
    (fun (i : Soft.Crosscheck.inconsistency) ->
      ( Openflow.Trace.result_key i.Soft.Crosscheck.i_result_a,
        Openflow.Trace.result_key i.Soft.Crosscheck.i_result_b ))
    o.Soft.Crosscheck.o_inconsistencies

let test_chaos_only_grows_undecided () =
  with_clean_world (fun () ->
      let spec = Test_spec.packet_out () in
      let run_a = Runner.execute ~max_paths:60 Switches.Reference_switch.agent spec in
      let run_b = Runner.execute ~max_paths:60 Switches.Modified_switch.agent spec in
      let a = Soft.Grouping.of_run run_a and b = Soft.Grouping.of_run run_b in
      Solver.clear_cache ();
      let baseline = Soft.Crosscheck.check a b in
      check_bool "baseline finds inconsistencies" true (Soft.Crosscheck.count baseline > 0);
      check_int "baseline has no undecided pairs" 0
        (Soft.Crosscheck.undecided_count baseline);
      let base_incs = inc_keys baseline in
      for seed = 1 to 8 do
        (* a fresh cache per seed: memoized answers would bypass the SAT
           core and with it the injection point *)
        Solver.clear_cache ();
        Mono.reset_skew ();
        Chaos.install (Chaos.plan ~seed ~rate:0.3 ());
        (* a generous per-query budget: only an injected clock jump can
           expire it, which must degrade the pair, not misreport it *)
        let o = Soft.Crosscheck.check ~budget:(Solver.budget ~timeout_ms:60_000 ()) a b in
        Chaos.deactivate ();
        let chaos_incs = inc_keys o in
        let msg s = Printf.sprintf "seed %d: %s" seed s in
        check_int (msg "same pairs compared") baseline.Soft.Crosscheck.o_pairs_checked
          o.Soft.Crosscheck.o_pairs_checked;
        check_int (msg "same pairs equal") baseline.Soft.Crosscheck.o_pairs_equal
          o.Soft.Crosscheck.o_pairs_equal;
        (* no invented inconsistencies *)
        List.iter
          (fun k -> check_bool (msg "every inconsistency is a baseline one") true
              (List.mem k base_incs))
          chaos_incs;
        (* every lost inconsistency is accounted for as undecided *)
        List.iter
          (fun k ->
            if not (List.mem k chaos_incs) then
              check_bool (msg "lost verdicts became undecided") true
                (List.mem k o.Soft.Crosscheck.o_pairs_undecided))
          base_incs;
        (* faulted pairs are counted, and counted inside undecided *)
        check_bool (msg "fault count bounded by undecided") true
          (o.Soft.Crosscheck.o_pair_faults <= Soft.Crosscheck.undecided_count o)
      done;
      (* determinism: the same seed reproduces the same degraded outcome *)
      let rerun seed =
        Solver.clear_cache ();
        Mono.reset_skew ();
        Chaos.install (Chaos.plan ~seed ~rate:0.3 ());
        let o = Soft.Crosscheck.check a b in
        Chaos.deactivate ();
        (inc_keys o, o.Soft.Crosscheck.o_pairs_undecided)
      in
      check_bool "a seed reproduces its exact outcome" true (rerun 5 = rerun 5))

(* --- checkpoint truncation under chaos heals via cold start ----------- *)

let test_truncated_chaos_checkpoint_heals () =
  with_clean_world (fun () ->
      let spec = Test_spec.packet_out () in
      let run_a = Runner.execute ~max_paths:60 Switches.Reference_switch.agent spec in
      let run_b = Runner.execute ~max_paths:60 Switches.Modified_switch.agent spec in
      let a = Soft.Grouping.of_run run_a and b = Soft.Grouping.of_run run_b in
      Solver.clear_cache ();
      let baseline = Soft.Crosscheck.check a b in
      let file = Filename.temp_file "soft_chaos_ckpt" ".txt" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
        (fun () ->
          (* rate 1: every snapshot written is immediately truncated *)
          Chaos.install (Chaos.plan ~seed:9 ~rate:1.0 ());
          ignore (Soft.Crosscheck.check ~checkpoint:file ~checkpoint_every:4 a b);
          Chaos.deactivate ();
          check_bool "a (truncated) checkpoint exists" true (Sys.file_exists file);
          (* resuming from the mangled file warns and starts cold — and the
             cold run still reproduces the uninterrupted outcome *)
          Solver.clear_cache ();
          let warnings = ref [] in
          let o =
            Soft.Crosscheck.check ~resume:file
              ~on_warning:(fun m -> warnings := m :: !warnings)
              a b
          in
          check_bool "corruption was warned about" true (!warnings <> []);
          check_int "cold start reproduces the baseline"
            (Soft.Crosscheck.count baseline) (Soft.Crosscheck.count o)))

let suite =
  [
    ("plans are deterministic per seed", `Quick, test_plan_determinism);
    ("fault points draw independent streams", `Quick, test_point_streams_independent);
    ("rate validation and edge rates", `Quick, test_rate_bounds);
    ("clock jump fires and resets", `Quick, test_clock_jump_and_reset);
    ("checkpoint truncation point", `Quick, test_truncation_point);
    ("agent-step fault aborts the run loudly", `Quick, test_agent_step_fault_aborts_run);
    ("chaos only grows undecided (8 seeds)", `Quick, test_chaos_only_grows_undecided);
    ("truncated chaos checkpoint heals cold", `Quick, test_truncated_chaos_checkpoint_heals);
  ]
