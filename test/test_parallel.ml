(* Multicore crosscheck: the work-stealing pool's contract, domain-safe
   expression interning and per-domain solver contexts, and the central
   determinism claim — a crosscheck report is byte-identical whatever
   [-j N] it ran at, because all merging is row-major and all shared
   mutation stays on the coordinating domain. *)

open Smt
module Pool = Harness.Pool
module Runner = Harness.Runner
module Test_spec = Harness.Test_spec
module Chaos = Harness.Chaos

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_clean_world f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.deactivate ();
      Mono.reset_skew ();
      Solver.set_certify false;
      Solver.set_default_budget Solver.no_budget;
      Solver.clear_cache ())
    f

(* --- the pool itself -------------------------------------------------- *)

let test_pool_results_in_task_order () =
  let tasks = Array.init 100 Fun.id in
  let out = Pool.run_exn ~jobs:4 (fun x -> x * x) tasks in
  check_bool "results are in task order, not completion order" true
    (out = Array.init 100 (fun i -> i * i));
  check_bool "empty input, no domains" true (Pool.run_exn ~jobs:4 Fun.id [||] = [||]);
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.run: jobs must be positive") (fun () ->
      ignore (Pool.run ~jobs:0 Fun.id [| 1 |]))

let test_pool_on_result_serialized () =
  (* [on_result] runs on the caller's domain: plain unsynchronized state
     mutated there must come out consistent even at -j 4 *)
  let seen = ref [] in
  let out =
    Pool.run_exn ~jobs:4
      ~on_result:(fun i r -> seen := (i, r) :: !seen)
      (fun x -> 2 * x)
      (Array.init 50 Fun.id)
  in
  check_int "every task delivered exactly once" 50 (List.length !seen);
  List.iter (fun (i, r) -> check_int "payload matches its index" (2 * i) r) !seen;
  check_bool "return value still in task order" true (out = Array.init 50 (fun i -> 2 * i))

let test_pool_sequential_fast_path () =
  (* jobs = 1 must be the exact legacy shape: caller's domain, submission
     order, no worker hooks *)
  let hooks = ref 0 in
  let order = ref [] in
  let caller = Domain.self () in
  let on_caller = ref true in
  ignore
    (Pool.run_exn ~jobs:1
       ~worker_init:(fun () -> incr hooks)
       ~worker_exit:(fun () -> incr hooks)
       ~on_result:(fun i _ -> order := i :: !order)
       (fun x ->
         if Domain.self () <> caller then on_caller := false;
         x)
       (Array.init 20 Fun.id));
  check_int "no worker hooks at -j 1" 0 !hooks;
  check_bool "tasks ran on the caller's domain" true !on_caller;
  check_bool "completion order is submission order" true
    (List.rev !order = List.init 20 Fun.id)

let test_pool_exception_propagates_after_join () =
  let exits = Atomic.make 0 in
  (match
     Pool.run ~jobs:4 ~fail_fast:true
       ~worker_exit:(fun () -> Atomic.incr exits)
       (fun x -> if x = 13 then failwith "boom" else x)
       (Array.init 40 Fun.id)
   with
  | _ -> Alcotest.fail "task exception was swallowed"
  | exception Failure msg ->
    Alcotest.(check string) "the task's own exception" "boom" msg);
  (* every spawned worker was joined, and its exit hook ran despite the
     cancellation *)
  check_bool "worker_exit ran on every worker" true (Atomic.get exits >= 1)

(* the new default: a task that raises costs that task, not the batch *)
let test_pool_outcome_mode () =
  let out =
    Pool.run ~jobs:4
      (fun x -> if x mod 7 = 3 then failwith (string_of_int x) else x * x)
      (Array.init 30 Fun.id)
  in
  Array.iteri
    (fun i o ->
      match (o, i mod 7 = 3) with
      | Ok v, false -> check_int "surviving task's value" (i * i) v
      | Error (Failure msg, _), true -> Alcotest.(check string) "its own exception" (string_of_int i) msg
      | Ok _, true -> Alcotest.fail "poison task reported Ok"
      | Error _, false -> Alcotest.fail "healthy task reported Error"
      | _ -> Alcotest.fail "unexpected exception")
    out;
  (* same contract on the -j 1 sequential fast path *)
  let seq =
    Pool.run ~jobs:1 (fun x -> if x = 2 then raise Exit else x) (Array.init 5 Fun.id)
  in
  check_bool "sequential Error at the poison index" true
    (match seq.(2) with Error (Exit, _) -> true | _ -> false);
  check_bool "sequential later tasks still ran" true (seq.(4) = Ok 4);
  (* on_result sees the Error exactly once, like any other outcome *)
  let errs = ref 0 in
  ignore
    (Pool.run ~jobs:4
       ~on_result:(fun _ -> function Error _ -> incr errs | Ok _ -> ())
       (fun x -> if x = 5 then failwith "once" else x)
       (Array.init 20 Fun.id));
  check_int "one Error delivered to on_result" 1 !errs

let test_pool_worker_hooks_pair_up () =
  let inits = Atomic.make 0 and exits = Atomic.make 0 in
  ignore
    (Pool.run ~jobs:3
       ~worker_init:(fun () -> Atomic.incr inits)
       ~worker_exit:(fun () -> Atomic.incr exits)
       Fun.id (Array.init 9 Fun.id));
  check_int "every init has its exit" (Atomic.get inits) (Atomic.get exits);
  check_bool "at least one worker, at most jobs" true
    (Atomic.get inits >= 1 && Atomic.get inits <= 3)

(* --- domain-safe interning and solver contexts ------------------------ *)

let test_interning_shared_across_domains () =
  (* four domains interning the same names must agree on the ids — the
     hash-cons tables are global (locked), not per-domain, so expressions
     built on any domain remain comparable everywhere *)
  let ids =
    Pool.run_exn ~jobs:4
      (fun k -> Expr.var_id (Expr.make_var (Printf.sprintf "par.v%d" (k mod 4)) 16))
      (Array.init 16 Fun.id)
  in
  Array.iteri
    (fun k id -> check_int "same name, same id, any domain" ids.(k mod 4) id)
    ids;
  (* and a variable interned on a worker resolves on the main domain *)
  match Expr.var_by_id ids.(0) with
  | Some v -> Alcotest.(check string) "name round-trips" "par.v0" (Expr.var_name v)
  | None -> Alcotest.fail "worker-interned variable invisible to the main domain"

let test_solver_contexts_are_per_domain () =
  with_clean_world (fun () ->
      let x = Expr.var ~width:8 "par.iso" in
      ignore (Solver.check ~use_cache:false [ Expr.ult x (Expr.const ~width:8 10L) ]);
      let main_queries = (Solver.stats ()).Solver.queries in
      check_bool "main context counted its query" true (main_queries > 0);
      let observed =
        Pool.run_exn ~jobs:2
          (fun _ ->
            (* a fresh domain starts from the built-in defaults: empty
               stats, certify off — whatever main has done *)
            Solver.set_certify true;
            ((Solver.stats ()).Solver.queries, Solver.certify_enabled ()))
          (Array.init 2 Fun.id)
      in
      Array.iter
        (fun (q, c) ->
          check_int "worker stats start fresh" 0 q;
          check_bool "worker toggled its own certify flag" true c)
        observed;
      check_bool "worker toggles never leak into main" true
        (not (Solver.certify_enabled ()));
      check_int "main stats undisturbed" main_queries (Solver.stats ()).Solver.queries)

let test_config_handoff_and_stats_merge () =
  with_clean_world (fun () ->
      Solver.set_default_budget (Solver.budget ~max_conflicts:123 ());
      Solver.set_certify true;
      let worker_init, worker_exit = Soft.Crosscheck.solver_pool_hooks () in
      let before = (Solver.stats ()).Solver.queries in
      let observed =
        Pool.run_exn ~jobs:2 ~worker_init ~worker_exit
          (fun k ->
            let x = Expr.var ~width:8 (Printf.sprintf "par.cfg%d" k) in
            ignore (Solver.check [ Expr.eq_const x (Int64.of_int k) ]);
            ((Solver.get_default_budget ()).Solver.b_max_conflicts, Solver.certify_enabled ()))
          (Array.init 4 Fun.id)
      in
      Array.iter
        (fun (mc, certify) ->
          check_bool "worker inherited the conflict budget" true (mc = Some 123);
          check_bool "worker inherited certify mode" true certify)
        observed;
      check_bool "worker queries merged back into the caller's stats" true
        ((Solver.stats ()).Solver.queries >= before + 4))

(* --- crosscheck determinism across -j --------------------------------- *)

let grouped_runs () =
  let spec = Test_spec.packet_out () in
  let run_a = Runner.execute ~max_paths:60 Switches.Reference_switch.agent spec in
  let run_b = Runner.execute ~max_paths:60 Switches.Modified_switch.agent spec in
  (Soft.Grouping.of_run run_a, Soft.Grouping.of_run run_b)

(* the one nondeterministic field is wall time; everything else must be
   byte-identical across worker counts *)
let canon (o : Soft.Crosscheck.outcome) =
  Format.asprintf "%a" Soft.Crosscheck.pp { o with Soft.Crosscheck.o_check_time = 0.0 }

let test_jobs_report_identical () =
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      Solver.clear_cache ();
      let o1 = Soft.Crosscheck.check ~jobs:1 a b in
      Solver.clear_cache ();
      let o4 = Soft.Crosscheck.check ~jobs:4 a b in
      check_bool "some inconsistencies to disagree about" true (Soft.Crosscheck.count o1 > 0);
      Alcotest.(check string) "-j 4 report is byte-identical to -j 1" (canon o1) (canon o4);
      check_int "same exit status" (Soft.Report.exit_status o1) (Soft.Report.exit_status o4))

let test_parallel_checkpoint_resume () =
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      let file = Filename.temp_file "soft_parallel_ckpt" ".txt" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
        (fun () ->
          Solver.clear_cache ();
          let full = Soft.Crosscheck.check ~jobs:4 ~checkpoint:file ~checkpoint_every:4 a b in
          check_bool "checkpoint written" true (Sys.file_exists file);
          (* resuming the completed snapshot replays every pair: no new
             solver work on any domain *)
          let before = (Solver.stats ()).Solver.queries in
          let resumed = Soft.Crosscheck.check ~jobs:4 ~resume:file a b in
          check_int "a complete snapshot costs no queries" before
            (Solver.stats ()).Solver.queries;
          Alcotest.(check string) "resumed outcome identical" (canon full) (canon resumed);
          (* a -j 1 snapshot resumes under -j 4 (and vice versa): the file
             records pair outcomes, not scheduling *)
          Solver.clear_cache ();
          let seq = Soft.Crosscheck.check ~jobs:1 ~checkpoint:file a b in
          let cross = Soft.Crosscheck.check ~jobs:4 ~resume:file a b in
          Alcotest.(check string) "-j 1 snapshot, -j 4 resume" (canon seq) (canon cross)))

let test_chaos_invariant_at_j4 () =
  (* the 8-seed chaos soundness invariant, re-run at -j 4: which pair a
     fault lands on now depends on scheduling, but faults must still only
     ever degrade pairs to undecided *)
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      Solver.clear_cache ();
      let baseline = Soft.Crosscheck.check a b in
      let inc_keys (o : Soft.Crosscheck.outcome) =
        List.map
          (fun (i : Soft.Crosscheck.inconsistency) ->
            ( Openflow.Trace.result_key i.Soft.Crosscheck.i_result_a,
              Openflow.Trace.result_key i.Soft.Crosscheck.i_result_b ))
          o.Soft.Crosscheck.o_inconsistencies
      in
      let base_incs = inc_keys baseline in
      for seed = 1 to 8 do
        Solver.clear_cache ();
        Mono.reset_skew ();
        Chaos.install (Chaos.plan ~seed ~rate:0.3 ());
        let o =
          Soft.Crosscheck.check ~jobs:4 ~budget:(Solver.budget ~timeout_ms:60_000 ()) a b
        in
        Chaos.deactivate ();
        let msg s = Printf.sprintf "seed %d at -j4: %s" seed s in
        check_int (msg "same pairs compared") baseline.Soft.Crosscheck.o_pairs_checked
          o.Soft.Crosscheck.o_pairs_checked;
        List.iter
          (fun k ->
            check_bool (msg "no invented inconsistencies") true (List.mem k base_incs))
          (inc_keys o);
        List.iter
          (fun k ->
            if not (List.mem k (inc_keys o)) then
              check_bool (msg "lost verdicts became undecided") true
                (List.mem k o.Soft.Crosscheck.o_pairs_undecided))
          base_incs;
        check_bool (msg "fault count bounded by undecided") true
          (o.Soft.Crosscheck.o_pair_faults <= Soft.Crosscheck.undecided_count o)
      done)

(* --- shared blasted base and clause exchange -------------------------- *)

let test_shared_base_parity () =
  (* the tentpole determinism claim: with the shared blasted base (and
     clause exchange) left at their defaults, the report stays
     byte-identical at any -j, in the default configuration, under a
     chaos schedule, and in certify mode (where the shared path
     auto-disables but the flags are still accepted) *)
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      let run ?(certify = false) ?chaos_seed jobs =
        Solver.clear_cache ();
        Mono.reset_skew ();
        Solver.set_certify certify;
        (match chaos_seed with
        | Some seed -> Chaos.install (Chaos.plan ~seed ~rate:0.3 ())
        | None -> ());
        let o = Soft.Crosscheck.check ~jobs a b in
        Chaos.deactivate ();
        Solver.set_certify false;
        o
      in
      let st = Solver.stats () in
      let shared0 = st.Solver.shared_solves and adopted0 = st.Solver.bases_adopted in
      let o1 = run 1 in
      check_bool "the -j1 run rode the shared base" true
        (st.Solver.shared_solves > shared0 && st.Solver.bases_adopted > adopted0);
      let o4 = run 4 in
      check_bool "some inconsistencies to disagree about" true (Soft.Crosscheck.count o1 > 0);
      Alcotest.(check string) "shared base: -j4 byte-identical to -j1" (canon o1) (canon o4);
      (* chaos streams are keyed by pair, so the same seed faults the same
         pairs whatever the worker count *)
      let c1 = run ~chaos_seed:5 1 and c4 = run ~chaos_seed:5 4 in
      Alcotest.(check string) "under chaos: -j4 byte-identical to -j1" (canon c1) (canon c4);
      let p1 = run ~certify:true 1 and p4 = run ~certify:true 4 in
      Alcotest.(check string) "under certify: -j4 byte-identical to -j1" (canon p1)
        (canon p4);
      (* and turning the base off is a pure perf toggle, not a semantic one *)
      Solver.clear_cache ();
      let off = Soft.Crosscheck.check ~jobs:4 ~share:false a b in
      Alcotest.(check string) "--no-share-base leaves the report unchanged" (canon o1)
        (canon off))

let test_clause_exchange_sound () =
  (* imported clauses are implied by the common prefix, so they may only
     speed a verdict up, never change it: exchange on vs off must be
     byte-identical, including across a chaos sweep *)
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      let run ~exchange ?chaos_seed () =
        Solver.clear_cache ();
        Mono.reset_skew ();
        (match chaos_seed with
        | Some seed -> Chaos.install (Chaos.plan ~seed ~rate:0.3 ())
        | None -> ());
        let o = Soft.Crosscheck.check ~jobs:4 ~exchange a b in
        Chaos.deactivate ();
        o
      in
      let on = run ~exchange:true () and off = run ~exchange:false () in
      Alcotest.(check string) "exchange never changes the report" (canon off) (canon on);
      for seed = 1 to 8 do
        let on = run ~exchange:true ~chaos_seed:seed ()
        and off = run ~exchange:false ~chaos_seed:seed () in
        Alcotest.(check string)
          (Printf.sprintf "seed %d: exchange on/off identical" seed)
          (canon off) (canon on)
      done)

let test_shared_base_adoption () =
  (* the Session.shared contract directly: one blast, per-domain copies,
     scratch-identical verdicts, scratch fallback off the condition set *)
  with_clean_world (fun () ->
      let x = Expr.var ~width:8 "par.sh" in
      let in_set = Expr.ult x (Expr.const ~width:8 10L) in
      let also_in_set = Expr.eq_const x 3L in
      let off_set = Expr.uge x (Expr.const ~width:8 200L) in
      let sh = Session.make_shared [ in_set; also_in_set ] in
      let s1 = Session.adopt sh in
      check_bool "adoption is memoized per domain" true (s1 == Session.adopt sh);
      let fresh_copies =
        Pool.run_exn ~jobs:2 (fun _ -> Session.adopt sh != s1) [| 0; 1 |]
      in
      Array.iter
        (fun fresh -> check_bool "worker domains adopt private copies" true fresh)
        fresh_copies;
      let agree conds =
        Solver.clear_cache ();
        let r_sh = Session.check_shared ~use_cache:false sh conds in
        let r_scr = Solver.check ~use_cache:false conds in
        match (r_sh, r_scr) with
        | Solver.Sat m1, Solver.Sat m2 ->
          check_bool "shared publishes the scratch witness" true
            (Model.bindings m1 = Model.bindings m2)
        | Solver.Unsat, Solver.Unsat -> ()
        | _ -> Alcotest.fail "shared verdict differs from scratch"
      in
      agree [ in_set; also_in_set ];
      agree [ in_set; Expr.not_ also_in_set ];
      (* a conjunct outside the blasted set falls back to scratch — same
         verdict, no assumption solve on the adopted copy *)
      let st = Solver.stats () in
      let shared0 = st.Solver.shared_solves in
      agree [ in_set; off_set ];
      check_int "off-set query bypassed the shared instance" shared0
        st.Solver.shared_solves;
      Session.release sh)

let test_exchange_ring_semantics () =
  (* single-domain contract first: no self-import, oldest-first order,
     drain-once, lossy overwrite *)
  let ring = Exchange.create ~capacity:4 in
  let a = Exchange.register ring and b = Exchange.register ring in
  Exchange.publish a [| 2; 5 |];
  check_bool "own clauses never come back" true (Exchange.drain a = []);
  (match Exchange.drain b with
  | [ [| 2; 5 |] ] -> ()
  | _ -> Alcotest.fail "consumer missed the published clause");
  check_bool "a drained clause is not re-delivered" true (Exchange.drain b = []);
  for i = 1 to 6 do
    Exchange.publish a [| i |]
  done;
  (* capacity 4: the six publishes overwrote the two oldest *)
  (match Exchange.drain b with
  | [ [| 3 |]; [| 4 |]; [| 5 |]; [| 6 |] ] -> ()
  | l ->
    Alcotest.failf "lossy drain kept %d clauses, expected the newest 4"
      (List.length l));
  check_int "published counts all publishes" 7 (Exchange.published ring);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Exchange.create: capacity must be positive") (fun () ->
      ignore (Exchange.create ~capacity:0))

let test_exchange_ring_under_domains () =
  (* two producer domains race a consumer on a deliberately tiny ring:
     whatever subset survives must be well-formed, never self-published,
     and the publish counter must account for every publish *)
  let ring = Exchange.create ~capacity:16 in
  let consumer = Exchange.register ring in
  Exchange.publish consumer [| 9; 9 |];
  let producer tag =
    Domain.spawn (fun () ->
        let ep = Exchange.register ring in
        for i = 1 to 200 do
          Exchange.publish ep [| tag; i |]
        done)
  in
  let d1 = producer 1 and d2 = producer 2 in
  let drained = ref [] in
  for _ = 1 to 50 do
    drained := Exchange.drain consumer @ !drained
  done;
  Domain.join d1;
  Domain.join d2;
  drained := Exchange.drain consumer @ !drained;
  List.iter
    (fun c ->
      (* in particular never the consumer's own [| 9; 9 |] *)
      check_bool "drained clause is one some producer published" true
        (Array.length c = 2 && (c.(0) = 1 || c.(0) = 2) && c.(1) >= 1 && c.(1) <= 200))
    !drained;
  (* racing overwrites may duplicate a delivery, but never invent one *)
  check_bool "the ring is lossy, never inventive" true
    (List.length (List.sort_uniq compare !drained) <= 400);
  check_int "every publish counted" 401 (Exchange.published ring)

(* --- the pipeline at -j N --------------------------------------------- *)

let test_compare_suite_jobs_equivalent () =
  with_clean_world (fun () ->
      let specs = [ Test_spec.packet_out (); Test_spec.stats_request () ] in
      let run jobs =
        Solver.clear_cache ();
        Soft.Pipeline.compare_suite ~max_paths:40 ~jobs Switches.Reference_switch.agent
          Switches.Modified_switch.agent specs
      in
      let seq = run 1 and par = run 4 in
      check_int "no failures either way" 0 (List.length par.Soft.Pipeline.sr_failures);
      check_int "same comparisons"
        (List.length seq.Soft.Pipeline.sr_comparisons)
        (List.length par.Soft.Pipeline.sr_comparisons);
      List.iter2
        (fun (cs : Soft.Pipeline.comparison) (cp : Soft.Pipeline.comparison) ->
          Alcotest.(check string) "same report at -j 1 and -j 4" (canon cs.Soft.Pipeline.c_outcome)
            (canon cp.Soft.Pipeline.c_outcome))
        seq.Soft.Pipeline.sr_comparisons par.Soft.Pipeline.sr_comparisons)

let test_compare_suite_failure_attribution () =
  (* rate-1.0 chaos makes both agents' runs fault; sequential never starts
     agent B, and the concurrent run must report the same single failure —
     agent A's — per test, discarding B's concurrent result *)
  with_clean_world (fun () ->
      let specs = [ Test_spec.packet_out () ] in
      let failures jobs =
        Chaos.install (Chaos.plan ~seed:2 ~rate:1.0 ());
        let s =
          Soft.Pipeline.compare_suite ~max_paths:20 ~jobs Switches.Reference_switch.agent
            Switches.Modified_switch.agent specs
        in
        Chaos.deactivate ();
        List.map (fun (f : Runner.failure) -> (f.Runner.f_agent, f.Runner.f_test))
          s.Soft.Pipeline.sr_failures
      in
      let seq = failures 1 and par = failures 4 in
      check_int "one failure per test" 1 (List.length seq);
      check_bool "concurrent failure attribution matches sequential" true (seq = par))

(* An interval-refutable query consumes no query-hook draw, and must keep
   consuming none on every repeat: caching its Unsat would turn later
   occurrences into cache hits, which fire the hook once (the draw of the
   core solve a hit normally replaces).  The same query would then cost
   zero draws on a domain that filtered it fresh and one draw on a domain
   replaying it from cache — and cache warmth differs by worker count,
   which is exactly the dependence the chaos byte-identity gate forbids.
   (Caught live: pairs flipping between the interval filter and the warm
   cache across [-j] shifted the keyed fault schedule.) *)
let test_interval_refutation_uncached () =
  with_clean_world (fun () ->
      let x = Expr.var ~width:8 "par.iv" in
      let contradiction =
        [ Expr.ult x (Expr.const ~width:8 5L); Expr.uge x (Expr.const ~width:8 10L) ]
      in
      let st = Solver.stats () in
      let iv0 = st.Solver.interval_hits and ch0 = st.Solver.cache_hits in
      let draws = ref 0 in
      Solver.set_query_hook (fun () -> incr draws);
      Fun.protect
        ~finally:(fun () -> Solver.set_query_hook (fun () -> ()))
        (fun () ->
          (match Solver.check contradiction with
           | Solver.Unsat -> ()
           | _ -> Alcotest.fail "interval contradiction not refuted");
          match Solver.check contradiction with
          | Solver.Unsat -> ()
          | _ -> Alcotest.fail "interval contradiction not refuted on repeat");
      check_int "both occurrences answered by the interval filter"
        (iv0 + 2) st.Solver.interval_hits;
      check_int "interval refutations never enter the cache" ch0
        st.Solver.cache_hits;
      check_int "an interval refutation consumes no query-hook draw" 0 !draws)

let suite =
  [
    ("pool returns results in task order", `Quick, test_pool_results_in_task_order);
    ("pool serializes on_result on the caller", `Quick, test_pool_on_result_serialized);
    ("pool -j1 is the sequential fast path", `Quick, test_pool_sequential_fast_path);
    ("pool joins all domains on task exception", `Quick, test_pool_exception_propagates_after_join);
    ("pool per-task Error outcomes", `Quick, test_pool_outcome_mode);
    ("pool worker hooks pair up", `Quick, test_pool_worker_hooks_pair_up);
    ("interning is shared across domains", `Quick, test_interning_shared_across_domains);
    ("solver contexts are per-domain", `Quick, test_solver_contexts_are_per_domain);
    ("config hand-off and stats merge", `Quick, test_config_handoff_and_stats_merge);
    ("-j4 report byte-identical to -j1", `Quick, test_jobs_report_identical);
    ("parallel checkpoint/resume", `Quick, test_parallel_checkpoint_resume);
    ("chaos invariant holds at -j4 (8 seeds)", `Quick, test_chaos_invariant_at_j4);
    ("shared base: -j parity (default/chaos/certify)", `Quick, test_shared_base_parity);
    ("clause exchange never changes the report", `Quick, test_clause_exchange_sound);
    ("shared base adoption contract", `Quick, test_shared_base_adoption);
    ("exchange ring single-domain semantics", `Quick, test_exchange_ring_semantics);
    ("exchange ring under racing domains", `Quick, test_exchange_ring_under_domains);
    ("interval refutations bypass the cache", `Quick, test_interval_refutation_uncached);
    ("compare_suite equal at -j1 and -j4", `Quick, test_compare_suite_jobs_equivalent);
    ("suite failure attribution under -j4", `Quick, test_compare_suite_failure_attribution);
  ]
