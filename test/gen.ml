(* QCheck generators shared by the property-based test suites. *)

open Smt

let int64_range lo hi =
  (* inclusive unsigned-ish range generator over int64 within [lo, hi] *)
  QCheck2.Gen.map Int64.of_int QCheck2.Gen.(int_range (Int64.to_int lo) (Int64.to_int hi))

let width_gen = QCheck2.Gen.oneofl [ 1; 4; 8; 12; 16; 24; 32; 48 ]

let value_for_width w =
  let open QCheck2.Gen in
  if w >= 62 then map Int64.of_int (int_range 0 max_int)
  else map Int64.of_int (int_range 0 (Int64.to_int (Expr.mask w)))

(* A pool of variables per width so generated expressions share variables
   (interesting constraints need sharing). *)
let var_of w i = Expr.var ~width:w (Printf.sprintf "q%d_%d" w i)

let bv_gen ?(max_depth = 4) width =
  let open QCheck2.Gen in
  let rec go depth =
    if depth = 0 then
      oneof
        [
          map (fun v -> Expr.const ~width v) (value_for_width width);
          map (fun i -> var_of width i) (int_range 0 2);
        ]
    else
      let sub = go (depth - 1) in
      frequency
        [
          (2, map (fun v -> Expr.const ~width v) (value_for_width width));
          (2, map (fun i -> var_of width i) (int_range 0 2));
          ( 3,
            map3
              (fun op a b -> Expr.binop op a b)
              (oneofl Expr.[ Add; Sub; Mul; Andb; Orb; Xorb ])
              sub sub );
          (1, map2 (fun op a -> Expr.unop op a) (oneofl Expr.[ Bnot; Neg ]) sub);
          ( 1,
            (* shift by a small constant amount *)
            map2
              (fun a s -> Expr.shl a (Expr.const ~width (Int64.of_int s)))
              sub (int_range 0 (width - 1)) );
          ( 1,
            map2
              (fun a s -> Expr.lshr a (Expr.const ~width (Int64.of_int s)))
              sub (int_range 0 (width - 1)) );
        ]
  in
  go max_depth

let cmp_gen = QCheck2.Gen.oneofl Expr.[ Eq; Ult; Ule; Slt; Sle ]

let bool_gen ?(max_depth = 3) width =
  let open QCheck2.Gen in
  let atom =
    map3 (fun op a b -> Expr.cmp op a b) cmp_gen (bv_gen ~max_depth:2 width)
      (bv_gen ~max_depth:2 width)
  in
  let rec go depth =
    if depth = 0 then atom
    else
      let sub = go (depth - 1) in
      frequency
        [
          (3, atom);
          (1, map Expr.not_ sub);
          (1, map2 Expr.and_ sub sub);
          (1, map2 Expr.or_ sub sub);
        ]
  in
  go max_depth

(* A random assignment for the shared variable pool. *)
let assignment_gen width =
  let open QCheck2.Gen in
  map3
    (fun a b c -> [ (var_of width 0, a); (var_of width 1, b); (var_of width 2, c) ])
    (value_for_width width) (value_for_width width) (value_for_width width)

let model_of_assignment bindings =
  Model.of_bindings
    (List.map
       (fun (e, v) ->
         match Expr.vars_of_bv e with [ var ] -> (var, v) | _ -> assert false)
       bindings)

(* Concrete OpenFlow value generators --------------------------------- *)

let mac_gen = QCheck2.Gen.map Int64.of_int QCheck2.Gen.(int_bound 0xffffff)
let u16_gen = QCheck2.Gen.int_bound 0xffff
let u8_gen = QCheck2.Gen.int_bound 0xff
let i32_gen = QCheck2.Gen.map Int32.of_int QCheck2.Gen.(int_bound 0x3fffffff)

let of_match_gen =
  let open QCheck2.Gen in
  let* wildcards = map Int32.of_int (int_bound Openflow.Constants.Wildcards.all) in
  let* in_port = u16_gen in
  let* dl_src = mac_gen in
  let* dl_dst = mac_gen in
  let* dl_vlan = u16_gen in
  let* dl_vlan_pcp = int_bound 7 in
  let* dl_type = u16_gen in
  let* nw_tos = u8_gen in
  let* nw_proto = u8_gen in
  let* nw_src = i32_gen in
  let* nw_dst = i32_gen in
  let* tp_src = u16_gen in
  let+ tp_dst = u16_gen in
  {
    Openflow.Types.wildcards; in_port; dl_src; dl_dst; dl_vlan; dl_vlan_pcp; dl_type;
    nw_tos; nw_proto; nw_src; nw_dst; tp_src; tp_dst;
  }

let action_gen =
  let open QCheck2.Gen in
  let open Openflow.Types in
  oneof
    [
      map2 (fun port max_len -> Output { port; max_len }) u16_gen u16_gen;
      map (fun v -> Set_vlan_vid v) u16_gen;
      map (fun v -> Set_vlan_pcp v) u8_gen;
      return Strip_vlan;
      map (fun m -> Set_dl_src m) mac_gen;
      map (fun m -> Set_dl_dst m) mac_gen;
      map (fun a -> Set_nw_src a) i32_gen;
      map (fun a -> Set_nw_dst a) i32_gen;
      map (fun t -> Set_nw_tos t) u8_gen;
      map (fun p -> Set_tp_src p) u16_gen;
      map (fun p -> Set_tp_dst p) u16_gen;
      map2 (fun port queue_id -> Enqueue { port; queue_id }) u16_gen i32_gen;
    ]

let flow_mod_gen =
  let open QCheck2.Gen in
  let* fm_match = of_match_gen in
  let* command = int_bound 4 in
  let* idle_timeout = u16_gen in
  let* hard_timeout = u16_gen in
  let* priority = u16_gen in
  let* out_port = u16_gen in
  let* flags = int_bound 7 in
  let+ fm_actions = list_size (int_bound 3) action_gen in
  {
    Openflow.Types.fm_match; cookie = 0xdeadbeefL; command; idle_timeout; hard_timeout;
    priority; fm_buffer_id = 0xffffffffl; out_port; flags; fm_actions;
  }

let message_gen =
  let open QCheck2.Gen in
  let open Openflow.Types in
  oneof
    [
      return Hello;
      map (fun s -> Echo_request s) (small_string ~gen:printable);
      map (fun s -> Echo_reply s) (small_string ~gen:printable);
      return Features_request;
      return Get_config_request;
      return Barrier_request;
      return Barrier_reply;
      map2 (fun cfg_flags miss_send_len -> Set_config { cfg_flags; miss_send_len })
        (int_bound 3) u16_gen;
      map (fun f -> Flow_mod f) flow_mod_gen;
      map2
        (fun po_in_port po_actions ->
          Packet_out
            { po_buffer_id = 0xffffffffl; po_in_port; po_actions; po_data = "payload" })
        u16_gen
        (list_size (int_bound 3) action_gen);
      map (fun qgc_port -> Queue_get_config_request { qgc_port }) u16_gen;
      map2
        (fun err_type err_code -> Error_msg { err_type; err_code; err_data = "d" })
        (int_bound 5) (int_bound 8);
      map (fun p -> Stats_request { sreq_flags = 0; sreq = Port_stats_request { psr_port_no = p } })
        u16_gen;
      map (fun f -> Stats_request { sreq_flags = 0; sreq = Flow_stats_request
        { fsr_match = f; fsr_table_id = 0xff; fsr_out_port = Openflow.Constants.Port.none } })
        of_match_gen;
      return (Stats_request { sreq_flags = 0; sreq = Desc_request });
    ]

let msg_gen =
  QCheck2.Gen.map2
    (fun xid payload -> { Openflow.Types.xid = Int32.of_int xid; payload })
    QCheck2.Gen.(int_bound 0xffffff)
    message_gen

(* Concrete packet generator ------------------------------------------- *)

let packet_gen =
  let open QCheck2.Gen in
  let open Packet.Headers in
  let transport =
    oneof
      [
        map2 (fun s d -> Tcp { tcp_src = s; tcp_dst = d }) u16_gen u16_gen;
        map2 (fun s d -> Udp { udp_src = s; udp_dst = d }) u16_gen u16_gen;
        map2 (fun t c -> Icmp { icmp_type = t; icmp_code = c }) u8_gen u8_gen;
      ]
  in
  let* dl_src = mac_gen in
  let* dl_dst = mac_gen in
  let* vlan =
    oneof
      [ return None; map2 (fun vid pcp -> Some { vid; pcp }) (int_bound 0xfff) (int_bound 7) ]
  in
  let* kind = int_bound 2 in
  match kind with
  | 0 ->
    let* tos = map (fun t -> t land 0xfc) u8_gen in
    let* proto_payload = transport in
    let* src = i32_gen in
    let+ dst = i32_gen in
    {
      dl_src; dl_dst; vlan; dl_type = Packet.Constants_pkt.eth_type_ip;
      net =
        Ipv4
          {
            ip_tos = tos;
            ip_proto = proto_of_transport proto_payload;
            ip_src = src;
            ip_dst = dst;
            ip_payload = proto_payload;
          };
    }
  | 1 ->
    let* op = int_range 1 2 in
    let* sha = mac_gen in
    let* spa = i32_gen in
    let* tha = mac_gen in
    let+ tpa = i32_gen in
    { dl_src; dl_dst; vlan; dl_type = Packet.Constants_pkt.eth_type_arp;
      net = Arp { arp_op = op; arp_sha = sha; arp_spa = spa; arp_tha = tha; arp_tpa = tpa } }
  | _ ->
    let+ payload = small_string ~gen:printable in
    { dl_src; dl_dst; vlan; dl_type = 0x88b5; net = Other_net payload }

(* Wire mutation generators --------------------------------------------- *)

(* Corrupted frames for the codec-robustness properties: whatever the
   mutation, [Wire.parse] / [Wire.parse_stream] must answer with a clean
   parse or [Parse_error] — never any other exception.  Each generator
   starts from a well-formed serialized message so the mutation, not the
   base frame, is what the codec is defending against. *)

let truncated_wire_gen =
  let open QCheck2.Gen in
  let* m = msg_gen in
  let wire = Openflow.Wire.serialize m in
  let+ keep = int_bound (String.length wire - 1) in
  String.sub wire 0 keep

let bitflipped_wire_gen =
  let open QCheck2.Gen in
  let* m = msg_gen in
  let wire = Openflow.Wire.serialize m in
  let* byte = int_bound (String.length wire - 1) in
  let+ bit = int_bound 7 in
  let b = Bytes.of_string wire in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  Bytes.to_string b

let length_corrupted_wire_gen =
  let open QCheck2.Gen in
  let* m = msg_gen in
  let wire = Openflow.Wire.serialize m in
  let+ claim = int_bound 0xffff in
  let actual = String.length wire in
  (* the mutation must actually lie about the length *)
  let claim = if claim = actual then (claim + 1) land 0xffff else claim in
  let b = Bytes.of_string wire in
  Bytes.set b 2 (Char.chr ((claim lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (claim land 0xff));
  Bytes.to_string b
