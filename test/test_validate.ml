(* Replay validation: every real inconsistency between the reference and
   modified switches is replay-confirmed, a fabricated inconsistency
   between identical agents is refuted, a crashing agent yields
   replay-failed — and the exit-status policy maps all of it to the
   documented codes. *)

module Runner = Harness.Runner
module Test_spec = Harness.Test_spec
module Trace = Openflow.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ref_agent = Switches.Reference_switch.agent
let mod_agent = Switches.Modified_switch.agent

(* One shared small comparison: 60 paths find a handful of genuine
   inconsistencies between the reference and modified switches.  All
   replays below must reuse the comparison's own spec ([c_test]): a fresh
   [Test_spec.packet_out ()] would mint fresh symbolic variables the
   recorded witnesses do not bind, and pinning would constrain nothing. *)
let cmp =
  lazy
    (Soft.Pipeline.compare_agents ~max_paths:60 ~validate:true ref_agent mod_agent
       (Test_spec.packet_out ()))

let test_real_inconsistencies_confirmed () =
  let c = Lazy.force cmp in
  let n = Soft.Pipeline.inconsistency_count c in
  check_bool "the small run still finds inconsistencies" true (n > 0);
  match c.Soft.Pipeline.c_validation with
  | None -> Alcotest.fail "validation requested but absent"
  | Some v ->
    check_int "every inconsistency replay-confirmed" n v.Soft.Validate.vs_confirmed;
    check_int "none refuted" 0 v.Soft.Validate.vs_refuted;
    check_int "none failed to replay" 0 v.Soft.Validate.vs_failed;
    check_bool "summary agrees" true (Soft.Validate.all_confirmed v);
    (* each confirmed record carries both concrete traces, and they differ *)
    List.iter
      (fun (r : Soft.Validate.result) ->
        match (r.Soft.Validate.v_replay_a, r.Soft.Validate.v_replay_b) with
        | Some ta, Some tb ->
          check_bool "replayed traces diverge" true
            (Trace.result_key ta <> Trace.result_key tb)
        | _ -> Alcotest.fail "confirmed result lacks a replay trace")
      v.Soft.Validate.vs_results

let test_fabricated_inconsistency_refuted () =
  (* steal a genuine witness, then claim it distinguishes the reference
     switch from itself: replay produces identical traces and must refute *)
  let c = Lazy.force cmp in
  let inc = List.hd c.Soft.Pipeline.c_outcome.Soft.Crosscheck.o_inconsistencies in
  let r = Soft.Validate.validate_one ref_agent ref_agent c.Soft.Pipeline.c_test inc in
  (match r.Soft.Validate.v_status with
   | Soft.Validate.Refuted -> ()
   | s -> Alcotest.failf "expected Refuted, got %s" (Soft.Validate.status_name s));
  match (r.Soft.Validate.v_replay_a, r.Soft.Validate.v_replay_b) with
  | Some ta, Some tb ->
    check_bool "identical agents replay identically" true
      (Trace.result_key ta = Trace.result_key tb)
  | _ -> Alcotest.fail "refuted result lacks a replay trace"

(* An agent whose crash is engine-fatal (an ordinary exception would be
   isolated into a crash *trace*, which is still replayable behavior):
   the replay itself fails, and the failure is reported as such rather
   than confirming anything. *)
exception Hard_crash

let () = Symexec.Engine.register_fatal (function Hard_crash -> true | _ -> false)

module Crashing_agent = struct
  let name = "crashing"

  type state = unit

  let init () = ()
  let connection_setup _env () = raise Hard_crash
  let handle_message _env st _ = st
  let advance_time _env st ~seconds:_ = st
  let handle_packet _env st ~probe_id:_ ~in_port:_ _ = st
end

let crashing : Switches.Agent_intf.t = (module Crashing_agent)

let test_unreplayable_is_failed () =
  let c = Lazy.force cmp in
  let inc = List.hd c.Soft.Pipeline.c_outcome.Soft.Crosscheck.o_inconsistencies in
  let r = Soft.Validate.validate_one ref_agent crashing c.Soft.Pipeline.c_test inc in
  match r.Soft.Validate.v_status with
  | Soft.Validate.Replay_failed msg ->
    check_bool "names the failing agent" true
      (String.length msg > 0 && r.Soft.Validate.v_replay_b = None)
  | s -> Alcotest.failf "expected Replay_failed, got %s" (Soft.Validate.status_name s)

(* --- the exit-status policy ------------------------------------------- *)

let outcome ?(incs = []) ?(undecided = []) ?(faults = 0) () =
  {
    Soft.Crosscheck.o_agent_a = "a";
    o_agent_b = "b";
    o_test = "t";
    o_inconsistencies = incs;
    o_pairs_checked = 1;
    o_pairs_equal = 0;
    o_pairs_undecided = undecided;
    o_pair_faults = faults;
    o_pairs_quarantined = [];
    o_retries = 0;
    o_check_time = 0.0;
  }

let some_inc () =
  let c = Lazy.force cmp in
  List.hd c.Soft.Pipeline.c_outcome.Soft.Crosscheck.o_inconsistencies

let summary ~confirmed ~refuted ~failed =
  {
    Soft.Validate.vs_agent_a = "a";
    vs_agent_b = "b";
    vs_test = "t";
    vs_confirmed = confirmed;
    vs_refuted = refuted;
    vs_failed = failed;
    vs_results = [];
  }

let test_exit_status () =
  check_int "clean run exits 0" 0 (Soft.Report.exit_status (outcome ()));
  check_int "inconsistencies exit 1" 1
    (Soft.Report.exit_status (outcome ~incs:[ some_inc () ] ()));
  check_int "undecided pairs exit 3" 3
    (Soft.Report.exit_status (outcome ~undecided:[ ("A", "B") ] ()));
  check_int "faulted pairs exit 3" 3 (Soft.Report.exit_status (outcome ~faults:1 ()));
  check_int "confirmed inconsistency exits 1" 1
    (Soft.Report.exit_status
       ~validation:(summary ~confirmed:1 ~refuted:0 ~failed:0)
       (outcome ~incs:[ some_inc () ] ()));
  check_int "a refuted-only report is inconclusive: 3" 3
    (Soft.Report.exit_status
       ~validation:(summary ~confirmed:0 ~refuted:1 ~failed:0)
       (outcome ~incs:[ some_inc () ] ()));
  check_int "a replay-failed report is inconclusive: 3" 3
    (Soft.Report.exit_status
       ~validation:(summary ~confirmed:0 ~refuted:0 ~failed:1)
       (outcome ~incs:[ some_inc () ] ()));
  check_int "confirmed outranks undecided" 1
    (Soft.Report.exit_status
       ~validation:(summary ~confirmed:1 ~refuted:0 ~failed:1)
       (outcome ~incs:[ some_inc () ] ~undecided:[ ("A", "B") ] ()))

(* Replay must select exactly the recorded behavior: pinning the witness
   and re-executing the reference switch lands on a path whose normalized
   trace is the one the crosscheck reported for it. *)
let test_replay_is_concrete () =
  let c = Lazy.force cmp in
  let inc = List.hd c.Soft.Pipeline.c_outcome.Soft.Crosscheck.o_inconsistencies in
  match
    Runner.execute_replay ~max_paths:64 ref_agent c.Soft.Pipeline.c_test
      ~witness:inc.Soft.Crosscheck.i_witness
  with
  | Some t ->
    Alcotest.(check string) "replay reproduces the recorded trace"
      (Trace.result_key inc.Soft.Crosscheck.i_result_a)
      (Trace.result_key t)
  | None -> Alcotest.fail "witness selected no path on replay"

let suite =
  [
    ("real inconsistencies are replay-confirmed", `Quick, test_real_inconsistencies_confirmed);
    ("fabricated inconsistency is refuted", `Quick, test_fabricated_inconsistency_refuted);
    ("unreplayable report is replay-failed", `Quick, test_unreplayable_is_failed);
    ("exit-status policy", `Quick, test_exit_status);
    ("replay pins the witness concretely", `Quick, test_replay_is_concrete);
  ]
