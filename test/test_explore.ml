(* Fault-schedule exploration: the schedule text format, scripted plan
   exactness, record→replay equivalence (pure draws and full crosschecks
   at several worker counts), systematic exploration of the crosscheck
   workload, ddmin shrinking to a provably 1-minimal schedule, and the
   committed repro corpus replaying its historical outcomes. *)

open Smt
module Chaos = Harness.Chaos
module Schedule = Harness.Schedule
module Explore = Harness.Explore
module Runner = Harness.Runner
module Test_spec = Harness.Test_spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_clean_world f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.deactivate ();
      Mono.reset_skew ();
      Solver.clear_cache ())
    f

let site p k i = { Schedule.s_point = p; s_key = k; s_index = i }

(* --- the schedule text format ------------------------------------------ *)

let test_schedule_format () =
  let t =
    Schedule.make
      ~meta:[ ("workload", "x"); ("note", "spaces and\nnewlines \xff") ]
      [
        site "torn-write" None 2;
        site "solver-fault" (Some 3) 0;
        site "solver-fault" (Some 3) 0 (* duplicate *);
        site "solver-fault" None 1;
      ]
  in
  check_int "duplicates collapse" 3 (Schedule.cardinal t);
  (match Schedule.sites t with
  | [ a; b; c ] ->
    check_string "global stream sorts before keyed" "solver-fault/-/1"
      (Format.asprintf "%a" Schedule.pp_site a);
    check_string "keyed site next" "solver-fault/3/0"
      (Format.asprintf "%a" Schedule.pp_site b);
    check_string "points sort last" "torn-write/-/2"
      (Format.asprintf "%a" Schedule.pp_site c)
  | _ -> Alcotest.fail "wrong cardinality");
  let text = Schedule.to_string t in
  (match Schedule.of_string text with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok t' ->
    check_bool "sites survive" true (Schedule.sites t' = Schedule.sites t);
    check_bool "meta survives (bytes included)" true
      (Schedule.meta_all t' = Schedule.meta_all t);
    check_string "serialization is byte-stable" text (Schedule.to_string t'));
  (* any edit breaks the checksum: flip one site-index digit *)
  let mangled = String.map (fun c -> if c = '2' then '3' else c) text in
  (match Schedule.of_string mangled with
  | Ok _ -> Alcotest.fail "accepted a mangled schedule"
  | Error e -> check_bool "mangling is a checksum error" true
      (String.length e > 0));
  (* a truncated file loses its sum trailer *)
  (match Schedule.of_string (String.sub text 0 (String.length text / 2)) with
  | Ok _ -> Alcotest.fail "accepted a truncated schedule"
  | Error _ -> ());
  (* save/load through a file *)
  let file = Filename.temp_file "soft_schedule" ".schedule" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      Schedule.save file t;
      match Schedule.load file with
      | Ok t' -> check_string "file roundtrip" text (Schedule.to_string t')
      | Error e -> Alcotest.failf "load failed: %s" e)

(* --- scripted plans ---------------------------------------------------- *)

let test_scripted_exactness () =
  with_clean_world (fun () ->
      let sched =
        Schedule.make [ site "solver-fault" (Some 2) 1; site "agent-step" None 0 ]
      in
      let plan = Chaos.scripted ~record:true sched in
      Chaos.install plan;
      let fired = ref [] in
      for k = 0 to 3 do
        for i = 0 to 1 do
          if Chaos.fires ~key:k Chaos.Solver_fault then fired := (k, i) :: !fired
        done
      done;
      let agent0 = Chaos.fires Chaos.Agent_step in
      let agent1 = Chaos.fires Chaos.Agent_step in
      Chaos.deactivate ();
      check_bool "exactly the scheduled keyed draw fired" true ([ (2, 1) ] = List.rev !fired);
      check_bool "unkeyed draw 0 scheduled: fires" true agent0;
      check_bool "unkeyed draw 1 unscheduled: spared" false agent1;
      check_int "total fired" 2 (Chaos.total_fired plan);
      check_int "every draw recorded" 10 (List.length (Chaos.trace plan));
      check_bool "fired draws convert back to the schedule" true
        (Schedule.sites (Chaos.to_schedule plan) = Schedule.sites sched);
      (* unknown point names are rejected at plan construction *)
      match Chaos.scripted (Schedule.make [ site "no-such-point" None 0 ]) with
      | _ -> Alcotest.fail "accepted an unknown injection point"
      | exception Invalid_argument _ -> ())

let draw_pattern () =
  List.concat
    [
      List.concat_map
        (fun i -> [ Chaos.fires ~key:(i mod 3) Chaos.Solver_fault ])
        (List.init 9 Fun.id);
      List.init 4 (fun _ -> Chaos.fires Chaos.Checkpoint_truncate);
      List.init 5 (fun i -> Chaos.fires ~key:i Chaos.Clock_jump);
    ]

let test_record_replay_draws () =
  with_clean_world (fun () ->
      let plan = Chaos.plan ~record:true ~seed:42 ~rate:0.5 () in
      Chaos.install plan;
      let fired = draw_pattern () in
      Chaos.deactivate ();
      check_bool "the seeded run fired something" true (List.mem true fired);
      check_bool "and spared something" true (List.mem false fired);
      let sched = Chaos.to_schedule plan in
      let replay = Chaos.scripted ~record:true sched in
      Chaos.install replay;
      let fired' = draw_pattern () in
      Chaos.deactivate ();
      check_bool "scripted replay reproduces the exact fire pattern" true (fired = fired');
      check_bool "and converts back to the same schedule" true
        (Schedule.sites (Chaos.to_schedule replay) = Schedule.sites sched))

(* --- record → replay on a real crosscheck, across worker counts -------- *)

let grouped_pair ~max_paths spec =
  let run_a = Runner.execute ~max_paths Switches.Reference_switch.agent spec in
  let run_b = Runner.execute ~max_paths Switches.Modified_switch.agent spec in
  (Soft.Grouping.of_run run_a, Soft.Grouping.of_run run_b)

let test_record_replay_crosscheck () =
  with_clean_world (fun () ->
      let a, b = grouped_pair ~max_paths:60 (Test_spec.packet_out ()) in
      (* find a seed whose sweep actually fires: a failing sweep in the
         acceptance sense is one that degraded something *)
      let rec seeded_sweep seed =
        if seed > 32 then Alcotest.fail "no seed fired in 32 tries"
        else begin
          Solver.clear_cache ();
          Mono.reset_skew ();
          let plan = Chaos.plan ~record:true ~seed ~rate:0.3 () in
          Chaos.install plan;
          let o = Soft.Crosscheck.check a b in
          Chaos.deactivate ();
          if Chaos.total_fired plan > 0 then (o, plan) else seeded_sweep (seed + 1)
        end
      in
      let o, plan = seeded_sweep 1 in
      let stable = Soft.Crosscheck.render_stable o in
      let sched = Chaos.to_schedule ~meta:[ ("workload", "packet_out") ] plan in
      check_bool "the sweep converts to a nonempty schedule" true
        (Schedule.cardinal sched > 0);
      check_bool "the sweep degraded pairs to undecided" true
        (Soft.Crosscheck.undecided_count o > 0);
      (* the explicit schedule replays byte-identically at -j1 and -j4 *)
      List.iter
        (fun jobs ->
          Mono.reset_skew ();
          Chaos.install (Chaos.scripted sched);
          let o' = Soft.Crosscheck.check ~jobs a b in
          Chaos.deactivate ();
          check_string
            (Printf.sprintf "scripted replay at -j%d is byte-identical" jobs)
            stable
            (Soft.Crosscheck.render_stable o'))
        [ 1; 4 ])

(* --- exploring the crosscheck workload --------------------------------- *)

let crosscheck_workload ?(max_paths = 40) () =
  Soft.Oracle.crosscheck_workload ~max_paths ~max_wall_s:600.0
    ~a:Switches.Reference_switch.agent ~b:Switches.Modified_switch.agent
    (Test_spec.packet_out ())

let test_explore_crosscheck_holds () =
  with_clean_world (fun () ->
      let w = crosscheck_workload () in
      let out = Explore.explore ~max_schedules:10 ~faults_per_schedule:2 w in
      check_bool "the crosscheck run draws sites" true (out.Explore.o_stats.x_sites > 0);
      check_int "budget respected" 10 out.Explore.o_stats.x_schedules;
      check_int "every schedule upholds the invariants" 0
        out.Explore.o_stats.x_violations)

(* --- an injected violation shrinks to the 1-minimal schedule ----------- *)

let poison_sites =
  [ site "solver-fault" (Some 3) 0; site "solver-fault" (Some 7) 0 ]

let test_synthetic_violation_found_and_shrunk () =
  with_clean_world (fun () ->
      let w = Soft.Oracle.synthetic_pair_workload () in
      let out = Explore.explore ~max_schedules:400 ~faults_per_schedule:2 w in
      check_int "24 draw sites discovered" 24 out.Explore.o_stats.x_sites;
      check_int "exactly the poison pair violates" 1 out.Explore.o_stats.x_violations;
      (match out.Explore.o_violations with
      | [ v ] -> (
        match v.Explore.v_minimal with
        | Some m ->
          check_bool "the shrunk schedule is the poison pair" true
            (Schedule.sites m = poison_sites)
        | None -> Alcotest.fail "violation was not shrunk")
      | _ -> Alcotest.fail "expected one violation");
      (* ddmin from a fat failing schedule: every site armed *)
      let baseline, sites = Explore.discover w in
      let fat = Schedule.make sites in
      match Explore.shrink w ~baseline fat with
      | None -> Alcotest.fail "the fat schedule should fail"
      | Some (minimal, tests) ->
        check_bool "shrinks to exactly the poison pair" true
          (Schedule.sites minimal = poison_sites);
        check_bool "shrinking spent a sane number of runs" true (tests > 0 && tests < 200);
        (* local minimality, verified directly: removing any single
           remaining site makes the oracles pass *)
        List.iter
          (fun s ->
            let rest =
              List.filter
                (fun s' -> Schedule.compare_site s s' <> 0)
                (Schedule.sites minimal)
            in
            check_int
              (Format.asprintf "removing %a makes it pass" Schedule.pp_site s)
              0
              (List.length (Explore.check_schedule w ~baseline (Schedule.make rest))))
          (Schedule.sites minimal))

(* --- the committed repro corpus ---------------------------------------- *)

(* dune runtest runs in _build/default/test (where the glob_files dep
   lands); dune exec from the workspace root *)
let corpus_dir =
  if Sys.file_exists "repros" then "repros" else Filename.concat "test" "repros"

let test_repro_corpus () =
  with_clean_world (fun () ->
      let files =
        Sys.readdir corpus_dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".schedule")
        |> List.sort compare
      in
      check_bool "the corpus is nonempty" true (files <> []);
      List.iter
        (fun f ->
          match Schedule.load (Filename.concat corpus_dir f) with
          | Error e -> Alcotest.failf "%s: %s" f e
          | Ok sched ->
            let meta k =
              match Schedule.meta sched k with
              | Some v -> v
              | None -> Alcotest.failf "%s: missing meta %s" f k
            in
            let expect = meta "expect" in
            let w =
              match
                Soft.Oracle.workload ~max_paths:40 ~max_wall_s:600.0
                  ~a:Switches.Reference_switch.agent
                  ~b:Switches.Modified_switch.agent (meta "workload")
              with
              | Ok w -> w
              | Error e -> Alcotest.failf "%s: %s" f e
            in
            let baseline, _ = Explore.discover w in
            let violations = Explore.check_schedule w ~baseline sched in
            check_bool
              (Printf.sprintf "%s replays its historical outcome (%s)" f expect)
              (expect = "violation")
              (violations <> []))
        files)

let suite =
  [
    Alcotest.test_case "schedule text format" `Quick test_schedule_format;
    Alcotest.test_case "scripted plans fire exactly the schedule" `Quick
      test_scripted_exactness;
    Alcotest.test_case "record/replay pure draw equivalence" `Quick
      test_record_replay_draws;
    Alcotest.test_case "recorded sweep replays byte-identically at -j1/-j4" `Slow
      test_record_replay_crosscheck;
    Alcotest.test_case "crosscheck exploration upholds the oracles" `Slow
      test_explore_crosscheck_holds;
    Alcotest.test_case "injected violation shrinks to 1-minimal" `Quick
      test_synthetic_violation_found_and_shrunk;
    Alcotest.test_case "repro corpus replays historical outcomes" `Slow
      test_repro_corpus;
  ]
