(* The robustness layer: solver budgets and the tri-state result, the
   bounded memo cache, crosscheck's chunk-split retry ladder and undecided
   pairs, checkpoint/resume, and crash isolation in the engine, runner and
   pipeline.  The central properties: a pathological query costs bounded
   effort and degrades to [Unknown]/undecided instead of hanging or lying,
   and a killed-then-resumed crosscheck reports exactly what an
   uninterrupted one does. *)

open Smt
module Engine = Symexec.Engine
module Trace = Openflow.Trace

let c16 v = Expr.const ~width:16 (Int64.of_int v)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

(* An UNSAT pigeonhole instance PHP(p, p-1): every resolution-style solver
   needs many conflicts, so tiny budgets reliably exhaust. *)
let pigeonhole p =
  let holes = p - 1 in
  let s = Sat.create () in
  let v = Array.init p (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for i = 0 to p - 1 do
    Sat.add_clause s (List.init holes (fun j -> 2 * v.(i).(j)))
  done;
  for j = 0 to holes - 1 do
    for i = 0 to p - 1 do
      for k = i + 1 to p - 1 do
        Sat.add_clause s [ (2 * v.(i).(j)) + 1; (2 * v.(k).(j)) + 1 ]
      done
    done
  done;
  s

(* --- SAT-core budgets ------------------------------------------------- *)

let test_sat_budget_conflicts () =
  check_bool "unbudgeted PHP(5) is UNSAT" true (Sat.solve (pigeonhole 5) = Sat.Unsat);
  check_bool "conflict budget exhausts" true
    (Sat.solve ~max_conflicts:2 (pigeonhole 6) = Sat.Unknown Sat.Conflicts)

let test_sat_budget_decisions () =
  check_bool "decision budget exhausts" true
    (Sat.solve ~max_decisions:1 (pigeonhole 6) = Sat.Unknown Sat.Decisions)

let test_sat_budget_deadline () =
  check_bool "expired deadline exhausts" true
    (Sat.solve ~deadline:(Mono.now () -. 1.0) (pigeonhole 6) = Sat.Unknown Sat.Time);
  (* the instance survives an exhausted solve and can still be decided *)
  let s = pigeonhole 5 in
  check_bool "budgeted attempt is Unknown" true
    (Sat.solve ~max_conflicts:1 s = Sat.Unknown Sat.Conflicts);
  check_bool "same instance solvable afterwards" true (Sat.solve s = Sat.Unsat)

let test_mono_clock () =
  let t0 = Mono.now () in
  let t1 = Mono.now () in
  check_bool "monotonic" true (t1 >= t0);
  check_bool "ns positive" true (Int64.compare (Mono.now_ns ()) 0L > 0)

(* --- frontend budgets and Unknown semantics --------------------------- *)

(* [x <> const] needs at least one CDCL decision, and the interval filter
   cannot decide it, so a zero-decision budget forces Unknown. *)
let hard_for_zero_decisions name = [ Expr.neq (Expr.var ~width:16 name) (c16 0) ]

let zero_decisions = Solver.budget ~max_decisions:0 ()

let test_check_unknown () =
  match Solver.check ~use_cache:false ~budget:zero_decisions (hard_for_zero_decisions "bud.a") with
  | Solver.Unknown Solver.Out_of_decisions -> ()
  | Solver.Unknown r -> Alcotest.failf "wrong reason: %s" (Solver.unknown_reason_to_string r)
  | Solver.Sat _ | Solver.Unsat -> Alcotest.fail "expected Unknown"

let test_check_timeout () =
  check_bool "zero wall-clock budget" true
    (Solver.check ~use_cache:false
       ~budget:(Solver.budget ~timeout_ms:0 ())
       (hard_for_zero_decisions "bud.b")
    = Solver.Unknown Solver.Out_of_time)

let test_unknown_semantics () =
  let q = hard_for_zero_decisions "bud.c" in
  check_bool "is_sat refuses to claim sat" false (Solver.is_sat ~use_cache:false ~budget:zero_decisions q);
  check_bool "get_model has no model" true
    (Solver.get_model ~use_cache:false ~budget:zero_decisions q = None);
  (* a true entailment the interval domain cannot certify: x xor y = 0
     entails x = y; Unknown must answer false, an adequate budget true *)
  let xor_entailment tag =
    let x = Expr.var ~width:16 (tag ^ ".x") and y = Expr.var ~width:16 (tag ^ ".y") in
    ([ Expr.eq (Expr.logxor x y) (c16 0) ], Expr.eq x y)
  in
  (* distinct variables per call: the exact-key memo cache must not leak
     the unbudgeted answer into the budgeted query.  The canonical layer
     *would* (soundly) recognize the renamed query and prove it without
     spending budget — which is its job — so it is switched off here:
     this test is about budget semantics, not cache reach. *)
  let pc, c = xor_entailment "bud.e1" in
  check_bool "entailment provable with no budget" true (Solver.entails pc c);
  Solver.set_canon false;
  Fun.protect ~finally:(fun () -> Solver.set_canon true) (fun () ->
      let pc, c = xor_entailment "bud.e2" in
      check_bool "entailment refused under exhausted budget" false
        (Solver.entails ~budget:zero_decisions pc c))

let test_unknown_not_cached () =
  let q = hard_for_zero_decisions "bud.nc" in
  check_bool "budgeted attempt is Unknown" true
    (match Solver.check ~use_cache:true ~budget:zero_decisions q with
     | Solver.Unknown _ -> true
     | _ -> false);
  (* if the Unknown had been memoized, this identical unbudgeted query
     would replay it instead of solving *)
  check_bool "identical query solves once the budget allows" true
    (match Solver.check ~use_cache:true q with Solver.Sat _ -> true | _ -> false)

let test_default_budget () =
  Fun.protect
    ~finally:(fun () -> Solver.set_default_budget Solver.no_budget)
    (fun () ->
      Solver.set_default_budget zero_decisions;
      check_bool "default budget reaches budget-less calls" true
        (match Solver.check ~use_cache:false (hard_for_zero_decisions "bud.d") with
         | Solver.Unknown _ -> true
         | _ -> false);
      (* an explicit budget still overrides the default *)
      check_bool "explicit budget overrides default" true
        (match
           Solver.check ~use_cache:false ~budget:Solver.no_budget
             (hard_for_zero_decisions "bud.e")
         with
         | Solver.Sat _ -> true
         | _ -> false))

let test_cache_bounded () =
  Fun.protect
    ~finally:(fun () ->
      Solver.set_cache_capacity 65536;
      Solver.clear_cache ())
    (fun () ->
      Solver.set_cache_capacity 4;
      Solver.clear_cache ();
      let evictions0 = (Solver.stats ()).Solver.cache_evictions in
      for i = 0 to 9 do
        ignore
          (Solver.check ~use_cache:true
             [ Expr.eq (Expr.var ~width:16 "bud.cap") (c16 (1000 + i)) ])
      done;
      check_bool "overflow flushes the memo table" true
        ((Solver.stats ()).Solver.cache_evictions > evictions0));
  Alcotest.check_raises "non-positive capacity rejected"
    (Invalid_argument "Solver.set_cache_capacity: capacity must be positive") (fun () ->
      Solver.set_cache_capacity 0)

(* --- chunk_conds ------------------------------------------------------ *)

let test_chunk_conds () =
  let x = Expr.var ~width:16 "chk.x" in
  let conds = List.init 5 (fun i -> Expr.eq x (c16 (i + 1))) in
  check_int "n=2 makes three chunks" 3 (List.length (Soft.Crosscheck.chunk_conds 2 conds));
  check_int "n=1 makes one chunk per cond" 5 (List.length (Soft.Crosscheck.chunk_conds 1 conds));
  check_int "n >= length makes one chunk" 1 (List.length (Soft.Crosscheck.chunk_conds 10 conds));
  check_int "empty input, no chunks" 0 (List.length (Soft.Crosscheck.chunk_conds 3 []));
  (* chunking preserves the union: each member value satisfies exactly one chunk *)
  let chunks = Soft.Crosscheck.chunk_conds 2 conds in
  List.iter
    (fun v ->
      let m = Model.of_bindings [ (Expr.make_var "chk.x" 16, v) ] in
      check_int
        (Printf.sprintf "x=%Ld in exactly one chunk" v)
        1
        (List.length (List.filter (Model.eval_bool m) chunks)))
    [ 1L; 2L; 3L; 4L; 5L ];
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Crosscheck.chunk_conds: chunk size must be positive") (fun () ->
      ignore (Soft.Crosscheck.chunk_conds 0 conds));
  Alcotest.check_raises "negative n rejected"
    (Invalid_argument "Crosscheck.chunk_conds: chunk size must be positive") (fun () ->
      ignore (Soft.Crosscheck.chunk_conds (-3) conds))

(* --- sat_pair: budgets and the retry ladder --------------------------- *)

let result trace = { Trace.trace; crash = None }

let group key members =
  {
    Soft.Grouping.g_result = result [ key ];
    g_key = key;
    g_cond = Expr.balanced_disj members;
    g_member_conds = members;
    g_path_count = List.length members;
  }

(* Two disjoint 4-member groups.  The monolithic disjunction pair needs the
   SAT core (the interval domain cannot see through an or-tree), so a
   zero-decision budget leaves it Unknown; singleton chunk pairs are
   constant-vs-constant equality clashes the interval filter kills for
   free.  The ladder therefore rescues the verdict that the monolithic
   attempt lost. *)
let disjoint_pair () =
  let x = Expr.var ~width:16 "lad.x" in
  let a = group "A" (List.init 4 (fun i -> Expr.eq x (c16 (i + 1)))) in
  let b = group "B" (List.init 4 (fun i -> Expr.eq x (c16 (i + 9)))) in
  (a, b)

let test_sat_pair_plain () =
  let x = Expr.var ~width:16 "sp.x" in
  let a = group "A" [ Expr.ult x (c16 10) ] in
  let b = group "B" [ Expr.eq x (c16 5) ] in
  (match Soft.Crosscheck.sat_pair a b with
   | Soft.Crosscheck.Pair_sat m ->
     check_bool "witness in both groups" true
       (Model.eval_bool m a.Soft.Grouping.g_cond && Model.eval_bool m b.Soft.Grouping.g_cond)
   | _ -> Alcotest.fail "expected Pair_sat");
  let b' = group "B" [ Expr.uge x (c16 10) ] in
  check_bool "disjoint pair is Pair_unsat" true
    (Soft.Crosscheck.sat_pair a b' = Soft.Crosscheck.Pair_unsat)

let test_sat_pair_ladder_rescues () =
  let a, b = disjoint_pair () in
  (* no ladder: the budget-starved monolithic attempt stays undecided *)
  check_bool "without the ladder: undecided" true
    (Soft.Crosscheck.sat_pair ~budget:zero_decisions ~retry:[] a b
    = Soft.Crosscheck.Pair_undecided);
  (* the default ladder reaches singleton chunks, which the interval
     filter decides without spending any of the budget *)
  check_bool "with the ladder: proven disjoint" true
    (Soft.Crosscheck.sat_pair ~budget:zero_decisions a b = Soft.Crosscheck.Pair_unsat);
  (* starting split at 1 never needs the ladder at all *)
  check_bool "split=1 from the start: proven disjoint" true
    (Soft.Crosscheck.sat_pair ~split:1 ~budget:zero_decisions a b
    = Soft.Crosscheck.Pair_unsat)

let test_sat_pair_undecided () =
  (* singleton groups whose one query needs a decision: every rung
     re-chunks to the same shape, so the verdict degrades to undecided —
     and does so immediately, not after hanging *)
  let x = Expr.var ~width:16 "ud.x" in
  let a = group "A" [ Expr.neq x (c16 0) ] in
  let b = group "B" [ Expr.neq x (c16 1) ] in
  check_bool "all attempts exhausted: undecided" true
    (Soft.Crosscheck.sat_pair ~budget:zero_decisions a b = Soft.Crosscheck.Pair_undecided)

(* --- crosscheck: undecided pairs in the outcome ----------------------- *)

let grouped name groups =
  { Soft.Grouping.gr_agent = name; gr_test = "budget-test"; gr_groups = groups; gr_group_time = 0.0 }

let test_check_reports_undecided () =
  let x = Expr.var ~width:16 "ud2.x" in
  let a = grouped "a" [ group "A" [ Expr.neq x (c16 0) ] ] in
  let b = grouped "b" [ group "B" [ Expr.neq x (c16 1) ] ] in
  let o = Soft.Crosscheck.check ~budget:zero_decisions a b in
  check_int "no inconsistency claimed" 0 (Soft.Crosscheck.count o);
  check_int "one pair undecided" 1 (Soft.Crosscheck.undecided_count o);
  Alcotest.(check (pair string string))
    "undecided pair names both result keys" ("A", "B")
    (List.hd o.Soft.Crosscheck.o_pairs_undecided);
  (* same pair with an adequate budget: decided, nothing undecided *)
  let o' = Soft.Crosscheck.check a b in
  check_int "decidable with budget" 0 (Soft.Crosscheck.undecided_count o');
  check_int "and it is an inconsistency" 1 (Soft.Crosscheck.count o')

(* A pathological pair: a group disjunction too hard for the budget on
   every rung of the ladder still terminates (quickly) and is reported
   undecided rather than hanging the crosscheck — the failure mode that
   killed the paper's own STP runs (§5.2). *)
let test_pathological_pair_terminates () =
  let xs = List.init 6 (fun i -> Expr.var ~width:16 (Printf.sprintf "path.x%d" i)) in
  let chain =
    (* x0 ^ x1 ^ ... ^ x5 <> 0: satisfiable, but never by propagation alone *)
    Expr.neq (List.fold_left Expr.logxor (c16 0) xs) (c16 0)
  in
  let a = grouped "a" [ group "A" [ chain ] ] in
  let b = grouped "b" [ group "B" [ chain ] ] in
  let t0 = Mono.now () in
  let o = Soft.Crosscheck.check ~budget:zero_decisions a b in
  check_bool "terminates fast" true (Mono.elapsed t0 < 5.0);
  check_int "reported undecided, not dropped" 1 (Soft.Crosscheck.undecided_count o)

(* --- checkpoint / resume ---------------------------------------------- *)

(* The Figure 1 toy agents from test_soft: three results vs two, exactly
   one genuine inconsistency (p = OFPP_CONTROLLER). *)
let fig1_agent1 env p =
  if Engine.branch_eq env p 0xfffdL then Engine.emit env "CTRL"
  else if Engine.branch env (Expr.ult p (c16 25)) then Engine.emit env "FWD"
  else Engine.emit env "ERR"

let fig1_agent2 env p =
  if Engine.branch env (Expr.ult p (c16 25)) then Engine.emit env "FWD"
  else Engine.emit env "ERR"

let run_toy name program =
  let r = Engine.run program in
  let paths =
    List.map
      (fun (pr : string Engine.path_result) ->
        ({ Trace.trace = pr.Engine.events; crash = None }, pr.Engine.path_cond))
      r.Engine.results
  in
  {
    Soft.Grouping.gr_agent = name;
    gr_test = "fig1";
    gr_groups = Soft.Grouping.group_paths paths;
    gr_group_time = 0.0;
  }

let witness_bindings o =
  List.map
    (fun (i : Soft.Crosscheck.inconsistency) -> Model.bindings i.Soft.Crosscheck.i_witness)
    o.Soft.Crosscheck.o_inconsistencies

let check_same_outcome msg (expected : Soft.Crosscheck.outcome) (got : Soft.Crosscheck.outcome) =
  check_int (msg ^ ": inconsistencies") (Soft.Crosscheck.count expected) (Soft.Crosscheck.count got);
  check_int (msg ^ ": pairs checked") expected.Soft.Crosscheck.o_pairs_checked
    got.Soft.Crosscheck.o_pairs_checked;
  check_int (msg ^ ": pairs equal") expected.Soft.Crosscheck.o_pairs_equal
    got.Soft.Crosscheck.o_pairs_equal;
  Alcotest.(check (list (pair string string)))
    (msg ^ ": undecided pairs")
    expected.Soft.Crosscheck.o_pairs_undecided got.Soft.Crosscheck.o_pairs_undecided;
  check_bool (msg ^ ": identical witnesses") true
    (witness_bindings expected = witness_bindings got)

exception Killed

let test_checkpoint_resume_equivalence () =
  let p = Expr.var ~width:16 "fig1.p" in
  let a = run_toy "agent1" (fun env -> fig1_agent1 env p) in
  let b = run_toy "agent2" (fun env -> fig1_agent2 env p) in
  let uninterrupted = Soft.Crosscheck.check a b in
  check_int "toy example has one inconsistency" 1 (Soft.Crosscheck.count uninterrupted);
  let file = Filename.temp_file "soft_ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      (* "kill" the run the moment it finds the inconsistency; snapshots
         every decided pair mean the checkpoint holds the progress so far *)
      (match
         Soft.Crosscheck.check ~checkpoint:file ~checkpoint_every:1
           ~on_found:(fun _ -> raise Killed)
           a b
       with
       | _ -> Alcotest.fail "the injected kill did not fire"
       | exception Killed -> ());
      check_bool "checkpoint written before the kill" true (Sys.file_exists file);
      let resumed = Soft.Crosscheck.check ~resume:file a b in
      check_same_outcome "resumed = uninterrupted" uninterrupted resumed;
      (* a full checkpoint replays entirely — no pair is re-solved, and the
         witnesses survive the serialization round-trip *)
      let full = Soft.Crosscheck.check ~checkpoint:file a b in
      let replayed = Soft.Crosscheck.check ~resume:file a b in
      check_same_outcome "replayed = checkpointed" full replayed)

let test_resume_missing_file_is_fresh () =
  let p = Expr.var ~width:16 "fig1.p" in
  let a = run_toy "agent1" (fun env -> fig1_agent1 env p) in
  let b = run_toy "agent2" (fun env -> fig1_agent2 env p) in
  let o =
    Soft.Crosscheck.check
      ~resume:(Filename.concat (Filename.get_temp_dir_name ()) "soft_no_such_ckpt")
      a b
  in
  check_int "missing resume file starts fresh" 1 (Soft.Crosscheck.count o)

let test_resume_rejects_mismatch () =
  let p = Expr.var ~width:16 "fig1.p" in
  let a = run_toy "agent1" (fun env -> fig1_agent1 env p) in
  let b = run_toy "agent2" (fun env -> fig1_agent2 env p) in
  let file = Filename.temp_file "soft_ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      ignore (Soft.Crosscheck.check ~checkpoint:file a b);
      (* same agent names and test, different groups: the fingerprint in
         the snapshot must refuse the resume *)
      let a' = run_toy "agent1" (fun env -> fig1_agent2 env p) in
      match Soft.Crosscheck.check ~resume:file a' b with
      | _ -> Alcotest.fail "mismatched checkpoint accepted"
      | exception Soft.Crosscheck.Checkpoint_error _ -> ())

(* A damaged checkpoint — truncated write or flipped bit — must never
   raise and never resume wrong: the checksum catches it, a warning is
   issued, and the run starts cold with the exact uninterrupted outcome. *)
let check_corrupted_resume msg corrupt =
  let p = Expr.var ~width:16 "fig1.p" in
  let a = run_toy "agent1" (fun env -> fig1_agent1 env p) in
  let b = run_toy "agent2" (fun env -> fig1_agent2 env p) in
  let uninterrupted = Soft.Crosscheck.check a b in
  let file = Filename.temp_file "soft_ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      ignore (Soft.Crosscheck.check ~checkpoint:file a b);
      corrupt file;
      let warnings = ref [] in
      let resumed =
        Soft.Crosscheck.check ~resume:file
          ~on_warning:(fun m -> warnings := m :: !warnings)
          a b
      in
      check_bool (msg ^ ": warning issued") true
        (List.exists (contains ~needle:"integrity") !warnings);
      check_same_outcome (msg ^ ": cold start = uninterrupted") uninterrupted resumed)

let test_resume_truncated_checkpoint () =
  check_corrupted_resume "truncated" (fun file ->
      Unix.truncate file ((Unix.stat file).Unix.st_size / 2))

let test_resume_bitflipped_checkpoint () =
  check_corrupted_resume "bit-flipped" (fun file ->
      let body = In_channel.with_open_bin file In_channel.input_all in
      (* flip a bit in the middle of the payload, away from the header *)
      let i = String.length body / 2 in
      let body = Bytes.of_string body in
      Bytes.set body i (Char.chr (Char.code (Bytes.get body i) lxor 1));
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_bytes oc body))

(* --- crash isolation: engine, runner, pipeline ------------------------ *)

let test_engine_isolates_agent_exception () =
  let x = Expr.var ~width:16 "iso.x" in
  let r =
    Engine.run (fun env ->
        if Engine.branch env (Expr.ult x (c16 100)) then failwith "agent bug"
        else Engine.emit env "fine")
  in
  check_int "both paths recorded" 2 (List.length r.Engine.results);
  check_int "one exception counted" 1 r.Engine.stats.Engine.exceptions;
  check_bool "crash message preserved" true
    (List.exists
       (fun (p : string Engine.path_result) ->
         match p.Engine.crashed with
         | Some msg -> contains ~needle:"agent bug" msg
         | None -> false)
       r.Engine.results)

let test_engine_deadline () =
  let x = Expr.var ~width:16 "ddl.x" in
  let r =
    Engine.run ~deadline_ms:0 (fun env ->
        for i = 0 to 7 do
          ignore (Engine.branch env (Expr.ult x (c16 (100 + i))))
        done;
        Engine.emit env "done")
  in
  check_bool "deadline recorded" true r.Engine.stats.Engine.deadline_hit;
  check_bool "exploration actually cut" true (r.Engine.stats.Engine.path_count <= 1)

(* An agent whose connection setup trips the one exception the engine's
   per-path isolation refuses to swallow: a solver soundness violation.
   It escapes the engine — and [execute_safe] must catch it at the run
   boundary. *)
module Broken_agent = struct
  let name = "broken"

  type state = unit

  let init () = ()
  let connection_setup _env () = raise (Smt.Solver.Solver_error ("injected soundness failure", []))
  let handle_message _env st _ = st
  let advance_time _env st ~seconds:_ = st
  let handle_packet _env st ~probe_id:_ ~in_port:_ _ = st
end

let broken : Switches.Agent_intf.t = (module Broken_agent)

let test_execute_safe_isolates_run () =
  let spec = Harness.Test_spec.packet_out () in
  (match Harness.Runner.execute_safe ~max_paths:10 broken spec with
   | Ok _ -> Alcotest.fail "broken agent must fail"
   | Error f ->
     Alcotest.(check string) "agent recorded" "broken" f.Harness.Runner.f_agent;
     Alcotest.(check string) "test recorded" spec.Harness.Test_spec.id f.Harness.Runner.f_test;
     check_bool "error text preserved" true
       (contains ~needle:"soundness" f.Harness.Runner.f_error));
  match Harness.Runner.execute_safe ~max_paths:10 Switches.Reference_switch.agent spec with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "healthy agent failed: %s" f.Harness.Runner.f_error

let test_suite_survives_crashing_agent () =
  let spec = Harness.Test_spec.packet_out () in
  let s =
    Soft.Pipeline.compare_suite ~max_paths:10 broken Switches.Reference_switch.agent [ spec ]
  in
  check_int "no comparison from the lost run" 0 (List.length s.Soft.Pipeline.sr_comparisons);
  check_int "failure recorded instead" 1 (List.length s.Soft.Pipeline.sr_failures);
  let s' =
    Soft.Pipeline.compare_suite ~max_paths:30 Switches.Reference_switch.agent
      Switches.Reference_switch.agent [ spec ]
  in
  check_int "healthy suite compares" 1 (List.length s'.Soft.Pipeline.sr_comparisons);
  check_int "healthy suite has no failures" 0 (List.length s'.Soft.Pipeline.sr_failures);
  check_int "agent vs itself stays clean" 0
    (Soft.Pipeline.inconsistency_count (List.hd s'.Soft.Pipeline.sr_comparisons))

let suite =
  [
    ("sat budget: conflicts", `Quick, test_sat_budget_conflicts);
    ("sat budget: decisions", `Quick, test_sat_budget_decisions);
    ("sat budget: deadline + reuse", `Quick, test_sat_budget_deadline);
    ("monotonic clock", `Quick, test_mono_clock);
    ("check returns Unknown on exhaustion", `Quick, test_check_unknown);
    ("check honours wall-clock budget", `Quick, test_check_timeout);
    ("Unknown semantics: is_sat/get_model/entails", `Quick, test_unknown_semantics);
    ("Unknown results are never cached", `Quick, test_unknown_not_cached);
    ("default budget applies process-wide", `Quick, test_default_budget);
    ("memo cache is bounded", `Quick, test_cache_bounded);
    ("chunk_conds edges", `Quick, test_chunk_conds);
    ("sat_pair decides plain pairs", `Quick, test_sat_pair_plain);
    ("retry ladder rescues a starved pair", `Quick, test_sat_pair_ladder_rescues);
    ("sat_pair degrades to undecided", `Quick, test_sat_pair_undecided);
    ("check reports undecided pairs", `Quick, test_check_reports_undecided);
    ("pathological pair terminates within budget", `Quick, test_pathological_pair_terminates);
    ("checkpoint/resume equals uninterrupted", `Quick, test_checkpoint_resume_equivalence);
    ("resume: missing file is a fresh start", `Quick, test_resume_missing_file_is_fresh);
    ("resume: mismatched checkpoint rejected", `Quick, test_resume_rejects_mismatch);
    ("resume: truncated checkpoint heals cold", `Quick, test_resume_truncated_checkpoint);
    ("resume: bit-flipped checkpoint heals cold", `Quick, test_resume_bitflipped_checkpoint);
    ("engine isolates agent exceptions", `Quick, test_engine_isolates_agent_exception);
    ("engine honours the exploration deadline", `Quick, test_engine_deadline);
    ("execute_safe isolates a crashing run", `Quick, test_execute_safe_isolates_run);
    ("compare_suite survives a crashing agent", `Quick, test_suite_survives_crashing_agent);
  ]
