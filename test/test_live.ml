(* Live-wire replay: framed connections, child-process supervision, and
   the loopback parity + resilience contract of Soft.Live.

   The loopback tests run the switch server on its own domain over a
   Unix-domain socket in this process: the client (main domain) drives
   both endpoints strictly sequentially, so the two servers never execute
   agent code concurrently. *)

module Conn = Openflow.Conn
module Types = Openflow.Types
module Proc = Harness.Proc
module Chaos = Harness.Chaos
module Test_spec = Harness.Test_spec
module Live = Soft.Live

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sock_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "soft-test-%d-%s.sock" (Unix.getpid ()) tag)

(* --- addresses --------------------------------------------------------- *)

let test_addr_parsing () =
  (match Conn.addr_of_string "unix:/run/soft.sock" with
   | Conn.Unix_sock p -> Alcotest.(check string) "unix: prefix" "/run/soft.sock" p
   | Conn.Tcp _ -> Alcotest.fail "expected a unix address");
  (match Conn.addr_of_string "/tmp/soft.sock" with
   | Conn.Unix_sock p -> Alcotest.(check string) "bare path" "/tmp/soft.sock" p
   | Conn.Tcp _ -> Alcotest.fail "expected a unix address");
  (match Conn.addr_of_string "127.0.0.1:6633" with
   | Conn.Tcp (h, p) ->
     Alcotest.(check string) "host" "127.0.0.1" h;
     check_int "port" 6633 p
   | Conn.Unix_sock _ -> Alcotest.fail "expected a tcp address");
  List.iter
    (fun s ->
      match Conn.addr_of_string s with
      | (_ : Conn.addr) -> Alcotest.failf "expected Invalid_argument for %S" s
      | exception Invalid_argument _ -> ())
    [ "nonsense"; "host:notaport"; "host:0"; ":6633" ]

(* --- framing over a real socket ---------------------------------------- *)

(* Client and acceptor live in the same thread: Unix-socket connects
   complete immediately, and the socket buffers hold our small frames. *)
let with_pair f =
  let path = sock_path "pair" in
  let srv = Conn.listen (Conn.Unix_sock path) in
  let client = Conn.connect (Conn.Unix_sock path) in
  let server = Conn.accept ~deadline_ms:2000 srv in
  Fun.protect
    ~finally:(fun () ->
      Conn.close client;
      Conn.close server;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f client server)

let test_frame_roundtrip () =
  with_pair (fun client server ->
      let m1 = { Types.xid = 1l; payload = Types.Echo_request "abc" } in
      let m2 = { Types.xid = 2l; payload = Types.Barrier_request } in
      (* two frames back-to-back arrive as two messages, in order *)
      Conn.send_msg client m1;
      Conn.send_msg client m2;
      Alcotest.(check bool) "first frame" true (Conn.recv_msg ~deadline_ms:2000 server = m1);
      Alcotest.(check bool) "second frame" true (Conn.recv_msg ~deadline_ms:2000 server = m2);
      check_bool "still open" true (Conn.is_open server))

let test_runt_frame_is_peer_fault () =
  with_pair (fun client server ->
      (* a complete header whose length field is below the header size:
         the framer must refuse *)
      Conn.send_frame client "\x01\x00\x00\x04\x00\x00\x00\x01";
      match Conn.recv_frame ~deadline_ms:2000 server with
      | (_ : string) -> Alcotest.fail "expected Peer_fault"
      | exception Conn.Peer_fault _ -> check_bool "connection dead" false (Conn.is_open server))

let test_garbage_frame_is_peer_fault () =
  with_pair (fun client server ->
      (* well-framed but unparseable (message type 99) *)
      Conn.send_frame client "\x01\x63\x00\x08\x00\x00\x00\x01";
      match Conn.recv_msg ~deadline_ms:2000 server with
      | (_ : Types.msg) -> Alcotest.fail "expected Peer_fault"
      | exception Conn.Peer_fault _ -> ())

let test_silence_is_timeout () =
  with_pair (fun _client server ->
      match Conn.recv_frame ~deadline_ms:60 server with
      | (_ : string) -> Alcotest.fail "expected Timeout"
      | exception Conn.Timeout _ -> check_bool "timeout leaves conn open" true (Conn.is_open server))

let test_dead_address_contained () =
  match Conn.connect ~timeout_ms:250 (Conn.Unix_sock (sock_path "nobody-here")) with
  | (_ : Conn.t) -> Alcotest.fail "expected a contained failure"
  | exception (Conn.Peer_fault _ | Conn.Timeout _) -> ()

let test_handshake_and_ping () =
  let path = sock_path "hs" in
  let srv = Conn.listen (Conn.Unix_sock path) in
  let switch =
    Domain.spawn (fun () ->
        let s = Conn.accept ~deadline_ms:5000 srv in
        Conn.handshake_switch ~deadline_ms:5000 s;
        (* answer exactly one keepalive, then hang up *)
        (match Conn.recv_msg ~deadline_ms:5000 s with
         | { Types.payload = Types.Echo_request p; _ } as m ->
           Conn.send_msg s { m with Types.payload = Types.Echo_reply p }
         | _ -> ());
        Conn.close s)
  in
  let c = Conn.connect (Conn.Unix_sock path) in
  let feats = Conn.handshake_controller ~deadline_ms:5000 c in
  check_bool "default features advertised" true (feats.Types.datapath_id = 0x50f7L);
  Conn.ping ~deadline_ms:5000 c;
  Conn.close c;
  Domain.join switch;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  try Sys.remove path with Sys_error _ -> ()

(* --- process supervision ----------------------------------------------- *)

let wait_status p =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    match Proc.poll p with
    | Proc.Running when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.02;
      go ()
    | st -> st
  in
  go ()

let test_proc_lifecycle () =
  let p = Proc.spawn "sleep 30" in
  check_bool "spawned child is alive" true (Proc.alive p);
  (match Proc.stop ~grace_ms:200 p with
   | Proc.Signaled _ -> ()
   | st -> Alcotest.failf "expected Signaled, got %s" (Proc.status_descr st));
  check_bool "stop is sticky" false (Proc.alive p);
  let q = Proc.spawn "exit 7" in
  match wait_status q with
  | Proc.Exited 7 -> ()
  | st -> Alcotest.failf "expected exit 7, got %s" (Proc.status_descr st)

let test_supervised_start () =
  (match
     Proc.start_supervised ~restarts:1 ~backoff_ms:[ 1 ] ~readiness_timeout_ms:300
       "exit 3" ~ready:(fun () -> false)
   with
   | Ok p ->
     ignore (Proc.stop p : Proc.status);
     Alcotest.fail "a dying command must not come up"
   | Error (Harness.Supervise.Crashed, msg) ->
     check_bool "classification names the exit" true (String.length msg > 0)
   | Error (tax, _) ->
     Alcotest.failf "expected Crashed, got %s" (Harness.Supervise.taxonomy_to_string tax));
  match Proc.start_supervised ~readiness_timeout_ms:2000 "sleep 30" ~ready:(fun () -> true) with
  | Ok p ->
    check_bool "ready child reported up" true (Proc.alive p);
    ignore (Proc.stop ~grace_ms:200 p : Proc.status)
  | Error (_, msg) -> Alcotest.failf "supervised start failed: %s" msg

let test_classify_transport () =
  let tax e = fst (Proc.classify_transport e) in
  check_bool "timeout is hung" true (tax (Conn.Timeout "x") = Harness.Supervise.Hung);
  check_bool "peer fault is crashed" true (tax (Conn.Peer_fault "x") = Harness.Supervise.Crashed)

let test_merge_exit () =
  check_int "live confirmation outranks an undecided base" 1 (Live.merge_exit 3 1);
  check_int "all-failed live downgrades found inconsistencies" 3 (Live.merge_exit 1 3);
  check_int "nothing live to test defers to base" 1 (Live.merge_exit 1 0);
  check_int "clean everywhere" 0 (Live.merge_exit 0 0)

(* --- loopback parity and resilience ------------------------------------ *)

let ref_agent = Switches.Reference_switch.agent
let mod_agent = Switches.Modified_switch.agent

(* The same small comparison the in-process validation tests use: 60
   paths on Packet Out find real reference/modified inconsistencies. *)
let cmp =
  lazy
    (Soft.Pipeline.compare_agents ~max_paths:60 ref_agent mod_agent (Test_spec.packet_out ()))

let spawn_server ?(max_conns = 1) ?(idle_deadline_ms = 10_000) agent tag =
  let path = sock_path tag in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Live.serve ~max_paths:64 ~max_conns ~idle_deadline_ms
          ~on_listening:(fun () -> Atomic.set ready true)
          agent (Conn.Unix_sock path))
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  check_bool "server came up" true (Atomic.get ready);
  (path, d)

let external_ep name path =
  { Live.ep_agent = name; ep_addr = Conn.Unix_sock path; ep_cmd = None }

let test_loopback_parity () =
  Chaos.deactivate ();
  let c = Lazy.force cmp in
  let n = Soft.Pipeline.inconsistency_count c in
  check_bool "the small run still finds inconsistencies" true (n > 0);
  let pa, da = spawn_server ref_agent "parity-a" in
  let pb, db = spawn_server mod_agent "parity-b" in
  let summary =
    Live.validate_live ~a:(external_ep "reference" pa) ~b:(external_ep "modified" pb)
      c.Soft.Pipeline.c_test c.Soft.Pipeline.c_outcome
  in
  Domain.join da;
  Domain.join db;
  check_int "every inconsistency live-confirmed" n summary.Live.ls_confirmed;
  check_int "none refuted over the wire" 0 summary.Live.ls_refuted;
  check_int "none transport-failed" 0 summary.Live.ls_failed;
  check_int "confirmed findings exit 1" 1 (Live.exit_status summary);
  (* every confirmed witness carries both live observations, diverging *)
  List.iter
    (fun (r : Live.result) ->
      match (r.Live.l_key_a, r.Live.l_key_b) with
      | Some ka, Some kb -> check_bool "live observations diverge" true (ka <> kb)
      | _ -> Alcotest.fail "confirmed result lacks a live observation")
    summary.Live.ls_results

let test_live_refutes_identical_agents () =
  Chaos.deactivate ();
  let c = Lazy.force cmp in
  let pa, da = spawn_server ref_agent "refute-a" in
  let pb, db = spawn_server ref_agent "refute-b" in
  let summary =
    Live.validate_live ~a:(external_ep "reference" pa) ~b:(external_ep "reference'" pb)
      c.Soft.Pipeline.c_test c.Soft.Pipeline.c_outcome
  in
  Domain.join da;
  Domain.join db;
  check_int "identical agents refute everything" 0 summary.Live.ls_confirmed;
  check_int "all witnesses refuted" (Soft.Pipeline.inconsistency_count c)
    summary.Live.ls_refuted;
  check_int "a refuted-only live report is inconclusive" 3 (Live.exit_status summary)

(* A peer that handshakes, swallows one frame, and vanishes — with its
   listener gone, recovery cannot reconnect and every witness must
   degrade to transport-failed without an exception escaping. *)
let test_peer_death_degrades () =
  Chaos.deactivate ();
  let c = Lazy.force cmp in
  let n = Soft.Pipeline.inconsistency_count c in
  let pa, da = spawn_server ~max_conns:1 ref_agent "death-a" in
  let pb = sock_path "death-b" in
  let db =
    Domain.spawn (fun () ->
        let srv = Conn.listen (Conn.Unix_sock pb) in
        (try
           let s = Conn.accept ~deadline_ms:10_000 srv in
           Conn.handshake_switch ~deadline_ms:10_000 s;
           ignore (Conn.recv_frame ~deadline_ms:10_000 s : string);
           Conn.close s
         with Conn.Peer_fault _ | Conn.Timeout _ -> ());
        try Unix.close srv with Unix.Unix_error _ -> ())
  in
  Unix.sleepf 0.05;
  let summary =
    Live.validate_live ~connect_attempts:2 ~a:(external_ep "reference" pa)
      ~b:(external_ep "treacherous" pb) c.Soft.Pipeline.c_test
      c.Soft.Pipeline.c_outcome
  in
  Domain.join da;
  Domain.join db;
  check_int "no witness confirmed" 0 summary.Live.ls_confirmed;
  check_int "every witness transport-failed" n summary.Live.ls_failed;
  check_int "transport failure is inconclusive" 3 (Live.exit_status summary);
  List.iter
    (fun (r : Live.result) ->
      match r.Live.l_status with
      | Live.L_failed ((Harness.Supervise.Hung | Harness.Supervise.Crashed), msg) ->
        check_bool "failure carries a message" true (String.length msg > 0)
      | Live.L_failed (tax, _) ->
        Alcotest.failf "unexpected taxonomy %s" (Harness.Supervise.taxonomy_to_string tax)
      | _ -> Alcotest.fail "expected transport-failed")
    summary.Live.ls_results

(* 8-seed chaos sweep over the transport points: whatever torn frames,
   resets, and stalls the plan injects, validate_live returns a complete
   summary — counts add up, nothing aborts, nothing hangs. *)
let test_transport_chaos_sweep () =
  let c = Lazy.force cmp in
  let n = Soft.Pipeline.inconsistency_count c in
  for seed = 1 to 8 do
    Chaos.install
      (Chaos.plan ~only:Chaos.transport_points ~seed ~rate:0.03 ());
    let tag = Printf.sprintf "chaos%d" seed in
    let pa, da = spawn_server ~max_conns:8 ~idle_deadline_ms:2000 ref_agent (tag ^ "-a") in
    let pb, db = spawn_server ~max_conns:8 ~idle_deadline_ms:2000 mod_agent (tag ^ "-b") in
    let summary =
      Live.validate_live ~deadline_ms:3000 ~connect_attempts:2
        ~a:(external_ep "reference" pa) ~b:(external_ep "modified" pb)
        c.Soft.Pipeline.c_test c.Soft.Pipeline.c_outcome
    in
    Domain.join da;
    Domain.join db;
    check_int
      (Printf.sprintf "seed %d: every witness accounted for" seed)
      n
      (summary.Live.ls_confirmed + summary.Live.ls_refuted + summary.Live.ls_failed);
    (* transport faults may only degrade, never flip a verdict *)
    check_int (Printf.sprintf "seed %d: no refutations appear under chaos" seed) 0
      summary.Live.ls_refuted
  done;
  Chaos.deactivate ()

let suite =
  [
    ("address parsing", `Quick, test_addr_parsing);
    ("frame roundtrip", `Quick, test_frame_roundtrip);
    ("runt frame is a peer fault", `Quick, test_runt_frame_is_peer_fault);
    ("garbage frame is a peer fault", `Quick, test_garbage_frame_is_peer_fault);
    ("silence is a timeout", `Quick, test_silence_is_timeout);
    ("dead address is contained", `Quick, test_dead_address_contained);
    ("handshake and ping", `Quick, test_handshake_and_ping);
    ("process lifecycle", `Quick, test_proc_lifecycle);
    ("supervised start", `Quick, test_supervised_start);
    ("transport failures classify", `Quick, test_classify_transport);
    ("live exit merges like --validate", `Quick, test_merge_exit);
    ("loopback parity with in-process verdicts", `Quick, test_loopback_parity);
    ("identical agents refute over the wire", `Quick, test_live_refutes_identical_agents);
    ("peer death degrades to transport-failed", `Quick, test_peer_death_degrades);
    ("transport chaos sweep", `Slow, test_transport_chaos_sweep);
  ]
