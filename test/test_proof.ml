(* DRUP proof emission from the CDCL core and the independent RUP checker:
   a valid refutation is accepted, fabricated or incomplete derivations are
   rejected, certification is physically absent when disabled, and the
   solver frontend's certify mode checks every UNSAT before publishing
   it. *)

open Smt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

let pos v = 2 * v
let neg v = (2 * v) + 1

(* UNSAT pigeonhole PHP(p, p-1): needs real conflict analysis, so its
   refutation exercises learnt-clause logging, not just propagation. *)
let pigeonhole ?(proof = false) p =
  let holes = p - 1 in
  let s = Sat.create () in
  if proof then Sat.enable_proof s;
  let v = Array.init p (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for i = 0 to p - 1 do
    Sat.add_clause s (List.init holes (fun j -> pos v.(i).(j)))
  done;
  for j = 0 to holes - 1 do
    for i = 0 to p - 1 do
      for k = i + 1 to p - 1 do
        Sat.add_clause s [ neg v.(i).(j); neg v.(k).(j) ]
      done
    done
  done;
  s

let test_valid_refutation_accepted () =
  let s = pigeonhole ~proof:true 5 in
  check_bool "instance is UNSAT" true (Sat.solve s = Sat.Unsat);
  check_bool "originals were logged" true (Sat.original_clauses s <> []);
  check_bool "derivation steps were logged" true (Sat.proof_steps s <> []);
  match Proof.check_derivation (Sat.original_clauses s) (Sat.proof_steps s) with
  | Proof.Valid -> ()
  | Proof.Invalid msg -> Alcotest.failf "valid proof rejected: %s" msg

let test_propagation_only_refutation () =
  (* the original CNF is already refutable by unit propagation: the
     checker must accept it with an empty derivation *)
  check_bool "x ∧ ¬x refuted with no steps" true
    (Proof.check_derivation [ [| pos 0 |]; [| neg 0 |] ] [] = Proof.Valid)

let test_non_rup_step_rejected () =
  (* from the single clause a∨b, the unit clause [a] is not RUP: assuming
     ¬a propagates nothing *)
  match Proof.check_derivation [ [| pos 0; pos 1 |] ] [ Sat.P_add [| pos 0 |] ] with
  | Proof.Valid -> Alcotest.fail "non-RUP step accepted"
  | Proof.Invalid msg ->
    check_bool "message names the failing step" true
      (contains ~needle:"reverse-unit-propagation" msg)

let test_unfinished_derivation_rejected () =
  (* a satisfiable CNF with no steps never reaches the empty clause *)
  match Proof.check_derivation [ [| pos 0; pos 1 |] ] [] with
  | Proof.Valid -> Alcotest.fail "claimed a refutation of a satisfiable CNF"
  | Proof.Invalid msg ->
    check_bool "message says the derivation is incomplete" true
      (contains ~needle:"does not reach" msg)

let test_deleted_clause_unusable () =
  (* against {x∨y, x∨¬y} the unit [x] is RUP (assume ¬x, propagate y, the
     second clause conflicts); neither original is unit, so nothing enters
     the permanent top-level assignment at attach time.  Deleting x∨y
     first must break the derivation — a checker that ignored deletions
     would still accept the step. *)
  let originals = [ [| pos 0; pos 1 |]; [| pos 0; neg 1 |] ] in
  (match Proof.check_derivation originals [ Sat.P_add [| pos 0 |] ] with
   | Proof.Invalid msg when contains ~needle:"does not reach" msg ->
     () (* control: the step itself is accepted, only the end is missing *)
   | Proof.Valid -> Alcotest.fail "satisfiable CNF declared refuted"
   | Proof.Invalid msg -> Alcotest.failf "control step rejected: %s" msg);
  match
    Proof.check_derivation originals
      [ Sat.P_delete [| pos 0; pos 1 |]; Sat.P_add [| pos 0 |] ]
  with
  | Proof.Valid -> Alcotest.fail "step derived from a deleted clause accepted"
  | Proof.Invalid msg ->
    check_bool "rejected as non-RUP, not merely unfinished" true
      (contains ~needle:"reverse-unit-propagation" msg)

let test_proof_off_path_absent () =
  (* with certification disabled the proof log must be physically absent —
     no structure is ever allocated, not an empty one kept up to date *)
  let s = pigeonhole 5 in
  check_bool "no proof before solving" false (Sat.proof_enabled s);
  check_bool "instance is UNSAT" true (Sat.solve s = Sat.Unsat);
  check_bool "no proof after an unsat solve" false (Sat.proof_enabled s);
  check_int "no originals retained" 0 (List.length (Sat.original_clauses s));
  check_int "no steps retained" 0 (List.length (Sat.proof_steps s));
  let ctx = Bitblast.create () in
  check_bool "bit-blast contexts default to no proof" false (Sat.proof_enabled ctx.Bitblast.sat);
  let ctx' = Bitblast.create ~proof:true () in
  check_bool "~proof:true turns logging on at creation" true
    (Sat.proof_enabled ctx'.Bitblast.sat)

let c16 v = Expr.const ~width:16 (Int64.of_int v)

let test_certified_frontend () =
  Fun.protect
    ~finally:(fun () -> Solver.set_certify false)
    (fun () ->
      Solver.set_certify true;
      let checked0 = (Solver.stats ()).Solver.proofs_checked in
      let failed0 = (Solver.stats ()).Solver.proofs_failed in
      let x = Expr.var ~width:16 "prf.x" in
      (* an UNSAT query the interval filter would normally answer: certify
         mode must bypass the filter, reach the SAT core, and publish the
         Unsat only with an accepted proof *)
      check_bool "certified UNSAT still answered" true
        (Solver.check ~use_cache:false [ Expr.ult x (c16 5); Expr.uge x (c16 10) ]
        = Solver.Unsat);
      check_bool "a proof was checked" true ((Solver.stats ()).Solver.proofs_checked > checked0);
      check_int "no proof failed" failed0 (Solver.stats ()).Solver.proofs_failed;
      (* SAT answers are unaffected (still model-checked, no proof needed) *)
      check_bool "certified SAT still answered" true
        (match Solver.check ~use_cache:false [ Expr.ult x (c16 5) ] with
         | Solver.Sat _ -> true
         | _ -> false))

let test_certify_toggle_flushes_cache () =
  Fun.protect
    ~finally:(fun () -> Solver.set_certify false)
    (fun () ->
      Solver.set_certify false;
      let x = Expr.var ~width:16 "prf.tog" in
      let q = [ Expr.ult x (c16 5); Expr.uge x (c16 10) ] in
      check_bool "uncertified answer" true (Solver.check q = Solver.Unsat);
      Solver.set_certify true;
      (* the memoized uncertified Unsat must not be replayed: the query
         runs again and a proof is checked *)
      let checked0 = (Solver.stats ()).Solver.proofs_checked in
      check_bool "re-answered under certify" true (Solver.check q = Solver.Unsat);
      check_bool "with a fresh proof, not the cache" true
        ((Solver.stats ()).Solver.proofs_checked > checked0))

let suite =
  [
    ("valid refutation accepted", `Quick, test_valid_refutation_accepted);
    ("propagation-only refutation accepted", `Quick, test_propagation_only_refutation);
    ("non-RUP step rejected", `Quick, test_non_rup_step_rejected);
    ("unfinished derivation rejected", `Quick, test_unfinished_derivation_rejected);
    ("deleted clauses are really gone", `Quick, test_deleted_clause_unusable);
    ("proof log physically absent when disabled", `Quick, test_proof_off_path_absent);
    ("certified frontend checks every UNSAT", `Quick, test_certified_frontend);
    ("certify toggle flushes the memo cache", `Quick, test_certify_toggle_flushes_cache);
  ]
