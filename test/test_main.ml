(* Aggregated test runner: `dune runtest` executes every suite.

   Setting SOFT_CERTIFY=1 runs the whole suite with solver certification
   on — every Unsat the frontend publishes is then backed by a checked
   DRUP proof.  CI exercises this mode; it must change no verdicts. *)

let () =
  (match Sys.getenv_opt "SOFT_CERTIFY" with
  | Some ("1" | "true" | "yes") -> Smt.Solver.set_certify true
  | _ -> ());
  Alcotest.run "soft"
    [
      ("expr", Test_expr.suite);
      ("solver", Test_solver.suite);
      ("serial", Test_serial.suite);
      ("wire", Test_wire.suite);
      ("packet", Test_packet.suite);
      ("engine", Test_engine.suite);
      ("match_sem", Test_match_sem.suite);
      ("flow_table", Test_flow_table.suite);
      ("sym_msg", Test_sym_msg.suite);
      ("agents", Test_agents.suite);
      ("normalize", Test_normalize.suite);
      ("soft", Test_soft.suite);
      ("budget", Test_budget.suite);
      ("time", Test_time.suite);
      ("failure_injection", Test_failure_injection.suite);
      ("partition", Test_partition.suite);
      ("proof", Test_proof.suite);
      ("validate", Test_validate.suite);
      ("chaos", Test_chaos.suite);
      ("parallel", Test_parallel.suite);
      ("incremental", Test_incremental.suite);
      ("canon", Test_canon.suite);
      ("supervise", Test_supervise.suite);
      ("live", Test_live.suite);
      ("service", Test_service.suite);
      ("explore", Test_explore.suite);
    ]
