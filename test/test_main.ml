(* Aggregated test runner: `dune runtest` executes every suite. *)

let () =
  Alcotest.run "soft"
    [
      ("expr", Test_expr.suite);
      ("solver", Test_solver.suite);
      ("serial", Test_serial.suite);
      ("wire", Test_wire.suite);
      ("packet", Test_packet.suite);
      ("engine", Test_engine.suite);
      ("match_sem", Test_match_sem.suite);
      ("flow_table", Test_flow_table.suite);
      ("sym_msg", Test_sym_msg.suite);
      ("agents", Test_agents.suite);
      ("normalize", Test_normalize.suite);
      ("soft", Test_soft.suite);
      ("budget", Test_budget.suite);
      ("time", Test_time.suite);
      ("failure_injection", Test_failure_injection.suite);
      ("partition", Test_partition.suite);
    ]
