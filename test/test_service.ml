(* The crash-only service layer: WAL append/replay contracts (torn-tail
   discard, the replay-prefix property, ghost commits under injected
   durability faults), the content-addressed store's corrupt-reads-as-
   absent contract, spool-queue backpressure, the checkpoint v3
   duplicate-quarantine guard, and the end-to-end service invariants —
   a killed-and-recovered serve run reproduces the uninterrupted run's
   report bytes, and a resubmitted unchanged job is answered from the
   store with zero new SAT calls. *)

open Smt
module Journal = Harness.Journal
module Store = Harness.Store
module Jobqueue = Harness.Jobqueue
module Chaos = Harness.Chaos
module Supervise = Harness.Supervise
module Service = Soft.Service

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_clean_world f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.deactivate ();
      Mono.reset_skew ();
      Solver.set_default_budget Solver.no_budget;
      Solver.clear_cache ())
    f

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p

let in_tmpdir f =
  let dir = Filename.temp_file "soft_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

let read_file p = In_channel.with_open_bin p In_channel.input_all
let write_file p s = Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

(* --- the write-ahead log ----------------------------------------------- *)

let test_journal_roundtrip () =
  in_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let j = Journal.create ~fsync:false path in
      let records = [ "submit a b"; "binary \x00\x01\xff"; "newline in\nside"; "" ] in
      List.iter (Journal.append j) records;
      Journal.close j;
      Alcotest.(check (list string)) "replay returns the appended records" records
        (Journal.replay path);
      (* reopen and extend: appends land after the existing history *)
      let j = Journal.create ~fsync:false path in
      Journal.append j "tail";
      Journal.close j;
      Alcotest.(check (list string)) "append after reopen extends" (records @ [ "tail" ])
        (Journal.replay path))

let test_journal_torn_tail () =
  in_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let j = Journal.create ~fsync:false path in
      List.iter (Journal.append j) [ "r0"; "r1"; "r2" ];
      Journal.close j;
      (* tear the last record mid-line, as a crash mid-append would *)
      let content = read_file path in
      write_file path (String.sub content 0 (String.length content - 3));
      Alcotest.(check (list string)) "torn tail discarded, prefix intact" [ "r0"; "r1" ]
        (Journal.replay path);
      (* recovery truncates the tear; new appends start at a boundary *)
      let j = Journal.create ~fsync:false path in
      Journal.append j "r3";
      Journal.close j;
      Alcotest.(check (list string)) "append after tear recovery" [ "r0"; "r1"; "r3" ]
        (Journal.replay path))

(* Two deterministic cuts at the nastiest parser boundaries.  First: a
   record line cut exactly at the end of its checksum — "r <32 hex>" plus
   the line terminator but no payload separator — which lands precisely on
   decode_line's length/separator boundary (index 34).  Second: the same
   cut without the terminator, the shape a real crash leaves. *)
let test_journal_checksum_boundary_cut () =
  in_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let j = Journal.create ~fsync:false path in
      List.iter (Journal.append j) [ "keep0"; "keep1"; "casualty" ];
      Journal.close j;
      let content = read_file path in
      let line_start = String.rindex (String.sub content 0 (String.length content - 1)) '\n' + 1 in
      (* "r " + 32 checksum hex chars = 34 bytes of the final line *)
      let boundary = line_start + 34 in
      List.iter
        (fun (label, cut) ->
          write_file path cut;
          Alcotest.(check (list string))
            (label ^ ": prefix intact, boundary-cut record discarded")
            [ "keep0"; "keep1" ] (Journal.replay path);
          (* recovery truncates the debris back to the record boundary *)
          let j = Journal.create ~fsync:false path in
          Journal.append j "resumed";
          Journal.close j;
          Alcotest.(check (list string))
            (label ^ ": appends resume at a record boundary")
            [ "keep0"; "keep1"; "resumed" ]
            (Journal.replay path))
        [
          ("terminated", String.sub content 0 boundary ^ "\n");
          ("torn", String.sub content 0 boundary);
        ])

(* A zero-length payload is a legal record — "r <md5 of empty> " with
   nothing after the separator.  Intact, it must replay as "";  with its
   terminator cut off, it is a torn tail and must be discarded even
   though its checksum would verify, because an unterminated line can
   never be trusted as complete. *)
let test_journal_zero_length_trailing_record () =
  in_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let j = Journal.create ~fsync:false path in
      List.iter (Journal.append j) [ "real"; "" ];
      Journal.close j;
      Alcotest.(check (list string))
        "intact zero-length record replays" [ "real"; "" ] (Journal.replay path);
      let content = read_file path in
      write_file path (String.sub content 0 (String.length content - 1));
      Alcotest.(check (list string))
        "unterminated zero-length record is a torn tail" [ "real" ]
        (Journal.replay path);
      let j = Journal.create ~fsync:false path in
      Journal.append j "after";
      Journal.close j;
      Alcotest.(check (list string))
        "recovery heals the tail" [ "real"; "after" ] (Journal.replay path))

(* Replay of any byte-prefix of the log is a prefix of the full replay:
   no cut point — however unaligned — can reorder, invent or corrupt
   records.  This is the invariant that makes "recover from whatever is
   on disk" safe at every kill instant. *)
let test_journal_prefix_property () =
  in_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let j = Journal.create ~fsync:false path in
      for i = 0 to 29 do
        Journal.append j (Printf.sprintf "record %d with some payload %d" i (i * i))
      done;
      Journal.close j;
      let full_bytes = read_file path in
      let full = Journal.replay path in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
        | _, [] -> false
      in
      let rng = Random.State.make [| 0xca5e |] in
      let cut = Filename.concat dir "cut.log" in
      for _ = 1 to 60 do
        let n = Random.State.int rng (String.length full_bytes + 1) in
        write_file cut (String.sub full_bytes 0 n);
        let part = Journal.replay cut in
        check_bool
          (Printf.sprintf "replay of %d-byte prefix is a replay prefix" n)
          true (is_prefix part full)
      done)

(* Under injected durability faults, for every chaos seed: the records
   whose append was acknowledged are a subsequence of what replay
   recovers (nothing acknowledged is lost), and replay recovers only
   records that were actually attempted (ghost commits from failed
   fsyncs are legitimate; invented records are not). *)
let test_journal_chaos_sweep () =
  with_clean_world (fun () ->
      let rec is_subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' -> if x = y then is_subseq xs' ys' else is_subseq xs ys'
      in
      for seed = 1 to 8 do
        in_tmpdir (fun dir ->
            let path = Filename.concat dir "wal.log" in
            Chaos.install
              (Chaos.plan
                 ~only:[ Chaos.Torn_write; Chaos.Fsync_fail; Chaos.Rename_crash ]
                 ~seed ~rate:0.3 ());
            let committed = ref [] in
            let attempted = ref [] in
            let handle = ref (Journal.create ~fsync:false path) in
            for i = 0 to 29 do
              let r = Printf.sprintf "seed%d record %d" seed i in
              attempted := r :: !attempted;
              match Journal.append !handle r with
              | () -> committed := r :: !committed
              | exception Chaos.Injected_fault _ ->
                (* the simulated kill: drop the handle, recover *)
                Journal.close !handle;
                handle := Journal.create ~fsync:false path
            done;
            Journal.close !handle;
            Chaos.deactivate ();
            let replayed = Journal.replay path in
            check_bool
              (Printf.sprintf "seed %d: acknowledged records all recovered" seed)
              true
              (is_subseq (List.rev !committed) replayed);
            check_bool
              (Printf.sprintf "seed %d: recovered records were all attempted" seed)
              true
              (is_subseq replayed (List.rev !attempted)))
      done)

let test_journal_rewrite () =
  in_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let j = Journal.create ~fsync:false path in
      List.iter (Journal.append j) [ "a"; "b"; "c"; "d" ];
      Journal.close j;
      Journal.rewrite ~fsync:false path [ "b"; "d" ];
      Alcotest.(check (list string)) "compaction kept exactly the given records"
        [ "b"; "d" ] (Journal.replay path);
      let j = Journal.create ~fsync:false path in
      Journal.append j "e";
      Journal.close j;
      Alcotest.(check (list string)) "appendable after compaction" [ "b"; "d"; "e" ]
        (Journal.replay path))

(* --- the content-addressed store --------------------------------------- *)

let test_store_contract () =
  in_tmpdir (fun dir ->
      let s = Store.open_store ~fsync:false dir in
      let key = Digest.to_hex (Digest.string "k1") in
      check_bool "absent key" true (Store.get s ~key = None);
      Store.put s ~key "payload bytes \x00\xff";
      Alcotest.(check (option string)) "round trip" (Some "payload bytes \x00\xff")
        (Store.get s ~key);
      check_int "one entry" 1 (Store.size s);
      (match Store.put s ~key:"not hex!" "x" with
      | () -> Alcotest.fail "accepted a non-hex key"
      | exception Invalid_argument _ -> ());
      (* flip a payload byte on disk: the entry must read as absent *)
      let file = Filename.concat dir key in
      let content = Bytes.of_string (read_file file) in
      let i = Bytes.length content - 2 in
      Bytes.set content i (if Bytes.get content i = 'x' then 'y' else 'x');
      write_file file (Bytes.to_string content);
      check_bool "corrupt entry reads as absent" true (Store.get s ~key = None))

(* --- the spool queue --------------------------------------------------- *)

let test_jobqueue () =
  in_tmpdir (fun dir ->
      let q = Filename.concat dir "queue" in
      let id1 =
        match Jobqueue.submit ~max_pending:2 q "payload one" with
        | Ok id -> id
        | Error _ -> Alcotest.fail "first submit refused"
      in
      let id2 =
        match Jobqueue.submit ~max_pending:2 q "payload one" with
        | Ok id -> id
        | Error _ -> Alcotest.fail "second submit refused"
      in
      check_bool "identical payloads get distinct ids" true (id1 <> id2);
      (match Jobqueue.submit ~max_pending:2 q "payload three" with
      | Error (`Backpressure 2) -> ()
      | Ok _ -> Alcotest.fail "watermark not enforced"
      | Error (`Backpressure n) -> Alcotest.failf "wrong depth %d" n);
      (match Jobqueue.pending q with
      | [ a; b ] ->
        check_string "arrival order" id1 a.Jobqueue.sb_id;
        check_string "arrival order (2)" id2 b.Jobqueue.sb_id;
        check_string "payload intact" "payload one" a.Jobqueue.sb_payload
      | l -> Alcotest.failf "expected 2 pending, got %d" (List.length l));
      Jobqueue.remove q id1;
      check_int "removed" 1 (Jobqueue.depth q))

(* --- checkpoint v3: duplicate / contradictory quarantine records ------- *)

let body_of content =
  let wo = String.sub content 0 (String.length content - 1) in
  let i = String.rindex wo '\n' in
  String.sub content 0 (i + 1)

let with_sum body = body ^ "sum " ^ Digest.to_hex (Digest.string body) ^ "\n"

let test_checkpoint_dup_quarantine () =
  with_clean_world (fun () ->
      in_tmpdir (fun dir ->
          let file = Filename.concat dir "ckpt" in
          let spec = Harness.Test_spec.packet_out () in
          let a =
            Soft.Grouping.of_run
              (Harness.Runner.execute ~max_paths:40 Switches.Reference_switch.agent spec)
          in
          let b =
            Soft.Grouping.of_run
              (Harness.Runner.execute ~max_paths:40 Switches.Modified_switch.agent spec)
          in
          ignore (Soft.Crosscheck.check ~checkpoint:file a b);
          let lines = String.split_on_char '\n' (body_of (read_file file)) in
          (* take the first two decided pairs: turn the second into a
             quarantine, then append colliding records for both *)
          let decided =
            List.filter
              (fun l -> String.length l > 2 && l.[0] = 'd' && l.[1] = ' ')
              lines
          in
          let d1 = List.nth decided 0 and d2 = List.nth decided 1 in
          let q_of d tax = "q" ^ String.sub d 1 (String.length d - 1) ^ " " ^ tax in
          let lines' =
            List.concat_map (fun l -> if l = d2 then [ q_of d2 "hung" ] else [ l ]) lines
          in
          (* drop the trailing "" so appended records stay in the body *)
          let lines' = List.filter (fun l -> l <> "") lines' in
          let doctored =
            lines'
            @ [
                q_of d1 "crashed" (* contradicts d1's clean verdict *);
                q_of d2 "crashed" (* contradicts the hung quarantine *);
                q_of d2 "hung" (* exact duplicate *);
              ]
          in
          write_file file (with_sum (String.concat "\n" doctored ^ "\n"));
          let warnings = ref [] in
          let resumed =
            Soft.Crosscheck.check ~resume:file
              ~on_warning:(fun w -> warnings := w :: !warnings)
              a b
          in
          check_int "each collision warned" 3 (List.length !warnings);
          check_bool "warnings name the quarantine collision" true
            (List.for_all
               (fun w ->
                 let has needle =
                   let n = String.length needle and l = String.length w in
                   let rec find i = i + n <= l && (String.sub w i n = needle || find (i + 1)) in
                   find 0
                 in
                 has "quarantine" && has "keeping the first")
               !warnings);
          (* first-wins: d1 stays decided, d2 keeps the hung taxonomy *)
          check_int "only the one real quarantine survives" 1
            (Soft.Crosscheck.quarantined_count resumed);
          match resumed.Soft.Crosscheck.o_pairs_quarantined with
          | [ (_, _, tax) ] -> check_bool "first taxonomy wins" true (tax = Supervise.Hung)
          | _ -> Alcotest.fail "quarantine list malformed"))

(* --- the service ------------------------------------------------------- *)

let agents =
  [
    ("ref", Switches.Reference_switch.agent);
    ("modified", Switches.Modified_switch.agent);
  ]

let cfg ?(crash_limit = 3) () =
  Service.config ~max_paths:80 ~crash_limit ~fsync:false ~on_warning:(fun _ -> ()) ~agents ()

let submit_ok dir =
  match
    Service.submit dir ~agent_a:"ref" ~agent_b:"modified"
      ~tests:[ "packet_out"; "concrete" ]
  with
  | Ok id -> id
  | Error _ -> Alcotest.fail "submit refused"

(* strip "soft-report 1\njob <id>\n": ids are per-submission, the rest of
   the report must be a pure function of the work *)
let report_body s =
  match String.split_on_char '\n' s with
  | _magic :: _job :: rest -> String.concat "\n" rest
  | _ -> s

let drain_fully dir =
  let t = Service.open_service (cfg ()) dir in
  Fun.protect ~finally:(fun () -> Service.close t) (fun () -> Service.serve ~once:true t)

let test_service_end_to_end () =
  with_clean_world (fun () ->
      in_tmpdir (fun dir ->
          let id = submit_ok dir in
          drain_fully dir;
          let st = Service.status dir in
          check_int "one job" 1 st.Service.ss_jobs;
          check_int "job done" 1 st.Service.ss_jobs_done;
          check_int "both units settled" 2 st.Service.ss_units_settled;
          check_int "no verdict lost" 0 st.Service.ss_verdicts_lost;
          check_int "queue drained" 0 st.Service.ss_queue_depth;
          match Service.report dir id with
          | None -> Alcotest.fail "report missing"
          | Some r ->
            check_bool "report names both tests" true
              (String.length r > 0
              && String.split_on_char '\n' r
                 |> List.exists (fun l -> l = "== test packet_out =="))))

(* kill -9 equivalence: run the same job uninterrupted and under a kill
   after every possible unit count; each recovered run must finish with
   byte-identical report content. *)
let test_kill_recover_byte_identity () =
  with_clean_world (fun () ->
      let baseline =
        in_tmpdir (fun dir ->
            let id = submit_ok dir in
            drain_fully dir;
            report_body (Option.get (Service.report dir id)))
      in
      List.iter
        (fun kill_after ->
          in_tmpdir (fun dir ->
              let id = submit_ok dir in
              (* first lifetime: die after [kill_after] units *)
              let t = Service.open_service (cfg ()) dir in
              Fun.protect
                ~finally:(fun () -> Service.close t)
                (fun () -> Service.serve ~once:true ~max_units:kill_after t);
              (* second lifetime: recovery is the only startup path *)
              drain_fully dir;
              check_string
                (Printf.sprintf "kill after %d units: identical report" kill_after)
                baseline
                (report_body (Option.get (Service.report dir id)))))
        [ 0; 1; 2 ])

(* The same equivalence under injected durability faults at chaos-chosen
   instants: torn WAL appends, failed fsyncs, rename-point crashes.  Each
   Injected_fault is a simulated kill; the daemon comes back through
   recovery until the job completes.  Faults are masked to the durability
   points, so solver verdicts cannot be perturbed — any report difference
   is a recovery bug. *)
let test_chaos_kill_recover_byte_identity () =
  with_clean_world (fun () ->
      let baseline =
        in_tmpdir (fun dir ->
            let id = submit_ok dir in
            drain_fully dir;
            report_body (Option.get (Service.report dir id)))
      in
      List.iter
        (fun seed ->
          in_tmpdir (fun dir ->
              let id = submit_ok dir in
              Chaos.install
                (Chaos.plan
                   ~only:[ Chaos.Torn_write; Chaos.Fsync_fail; Chaos.Rename_crash ]
                   ~seed ~rate:0.1 ());
              let crashes = ref 0 in
              let finished = ref false in
              (* the crash-loop guard must not quarantine units that die to
                 injected faults: raise it out of the way *)
              let c = cfg ~crash_limit:1_000 () in
              while (not !finished) && !crashes < 200 do
                match
                  let t = Service.open_service c dir in
                  Fun.protect
                    ~finally:(fun () -> Service.close t)
                    (fun () -> Service.serve ~once:true t)
                with
                | () -> finished := true
                | exception Chaos.Injected_fault _ -> incr crashes
              done;
              Chaos.deactivate ();
              check_bool (Printf.sprintf "seed %d: converged" seed) true !finished;
              let st = Service.status dir in
              check_int
                (Printf.sprintf "seed %d: nothing lost" seed)
                0 st.Service.ss_verdicts_lost;
              check_string
                (Printf.sprintf "seed %d: identical report after %d crashes" seed !crashes)
                baseline
                (report_body (Option.get (Service.report dir id)))))
        [ 1; 2; 3 ])

(* Resubmitting an unchanged job must be answered entirely from the
   content-addressed store: no solver work, identical bytes. *)
let test_resubmit_zero_sat_calls () =
  with_clean_world (fun () ->
      in_tmpdir (fun dir ->
          let id1 = submit_ok dir in
          drain_fully dir;
          let first = report_body (Option.get (Service.report dir id1)) in
          let store_before = (Service.status dir).Service.ss_store_entries in
          let sat_before = (Solver.stats ()).Solver.sat_calls in
          let id2 = submit_ok dir in
          drain_fully dir;
          check_int "zero new SAT calls" sat_before (Solver.stats ()).Solver.sat_calls;
          check_int "zero new store entries" store_before
            (Service.status dir).Service.ss_store_entries;
          check_string "identical report from the store" first
            (report_body (Option.get (Service.report dir id2)))))

let test_service_backpressure () =
  with_clean_world (fun () ->
      in_tmpdir (fun dir ->
          (match
             Service.submit ~max_pending:1 dir ~agent_a:"ref" ~agent_b:"modified"
               ~tests:[ "concrete" ]
           with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "first submit refused");
          match
            Service.submit ~max_pending:1 dir ~agent_a:"ref" ~agent_b:"modified"
              ~tests:[ "concrete" ]
          with
          | Error (`Backpressure 1) -> ()
          | Ok _ -> Alcotest.fail "watermark not enforced"
          | Error (`Backpressure n) -> Alcotest.failf "wrong reported depth %d" n))

(* A job naming an unknown test or agent must settle as quarantined —
   deterministically, without crash-looping the daemon. *)
let test_unknown_unit_quarantined () =
  with_clean_world (fun () ->
      in_tmpdir (fun dir ->
          let id =
            match
              Service.submit dir ~agent_a:"ref" ~agent_b:"nonesuch" ~tests:[ "concrete" ]
            with
            | Ok id -> id
            | Error _ -> Alcotest.fail "submit refused"
          in
          drain_fully dir;
          let st = Service.status dir in
          check_int "job completed" 1 st.Service.ss_jobs_done;
          check_int "unit quarantined" 1 st.Service.ss_units_quarantined;
          match Service.report dir id with
          | Some r ->
            check_bool "report carries the inconclusive exit" true
              (let lines = String.split_on_char '\n' r in
               List.exists (fun l -> l = "exit 3") lines)
          | None -> Alcotest.fail "report missing"))

let suite =
  [
    Alcotest.test_case "journal round trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal torn tail" `Quick test_journal_torn_tail;
    Alcotest.test_case "journal checksum-boundary cut" `Quick
      test_journal_checksum_boundary_cut;
    Alcotest.test_case "journal zero-length trailing record" `Quick
      test_journal_zero_length_trailing_record;
    Alcotest.test_case "journal replay-prefix property" `Quick test_journal_prefix_property;
    Alcotest.test_case "journal chaos sweep" `Quick test_journal_chaos_sweep;
    Alcotest.test_case "journal rewrite" `Quick test_journal_rewrite;
    Alcotest.test_case "store contract" `Quick test_store_contract;
    Alcotest.test_case "jobqueue order and backpressure" `Quick test_jobqueue;
    Alcotest.test_case "checkpoint duplicate quarantine" `Slow test_checkpoint_dup_quarantine;
    Alcotest.test_case "service end to end" `Slow test_service_end_to_end;
    Alcotest.test_case "kill/recover byte identity" `Slow test_kill_recover_byte_identity;
    Alcotest.test_case "chaos kill/recover byte identity" `Slow
      test_chaos_kill_recover_byte_identity;
    Alcotest.test_case "resubmit answered from store" `Slow test_resubmit_zero_sat_calls;
    Alcotest.test_case "submit backpressure" `Quick test_service_backpressure;
    Alcotest.test_case "unknown unit quarantined" `Quick test_unknown_unit_quarantined;
  ]
