(* The supervision layer: watchdog deadlines actually kill hung work,
   the retry/backoff ladder, failure taxonomy, the memory-pressure guard,
   the Expr node-limit backstop, the checkpoint v2->v3 migration, and the
   end-to-end contract — chaos hangs under supervision only ever degrade
   pairs to quarantined/undecided, never flip a verdict, and the report
   stays byte-identical across [-j N]. *)

open Smt
module Supervise = Harness.Supervise
module Chaos = Harness.Chaos
module Runner = Harness.Runner
module Test_spec = Harness.Test_spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_clean_world f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.deactivate ();
      Mono.reset_skew ();
      Expr.set_node_limit None;
      Solver.set_certify false;
      Solver.set_default_budget Solver.no_budget;
      Solver.clear_cache ())
    f

(* --- policy and classification ---------------------------------------- *)

let test_policy_validation () =
  let bad name f =
    match f () with
    | (_ : Supervise.policy) -> Alcotest.fail ("accepted " ^ name)
    | exception Invalid_argument _ -> ()
  in
  bad "zero deadline" (fun () -> Supervise.policy ~deadline_ms:0 ());
  bad "negative retries" (fun () -> Supervise.policy ~max_retries:(-1) ());
  bad "empty ladder" (fun () -> Supervise.policy ~backoff_ms:[] ());
  bad "negative backoff" (fun () -> Supervise.policy ~backoff_ms:[ 5; -1 ] ());
  bad "jitter out of range" (fun () -> Supervise.policy ~jitter:1.5 ());
  bad "zero ceiling" (fun () -> Supervise.policy ~mem_ceiling_mb:0 ());
  let p = Supervise.policy () in
  check_int "default retries" 2 p.Supervise.sp_max_retries

let test_classification () =
  let tax e = fst (Supervise.classify_exn e) in
  check_bool "deadline cancellation is Hung" true
    (tax (Cancel.Cancelled Cancel.Deadline) = Supervise.Hung);
  check_bool "memory cancellation is Oom" true
    (tax (Cancel.Cancelled Cancel.Memory) = Supervise.Oom);
  check_bool "Out_of_memory is Oom" true (tax Out_of_memory = Supervise.Oom);
  check_bool "node limit is Oom" true (tax (Expr.Node_limit 42) = Supervise.Oom);
  check_bool "injected fault is Faulted" true
    (tax (Chaos.Injected_fault "solver") = Supervise.Faulted);
  check_bool "anything else is Crashed" true (tax (Failure "boom") = Supervise.Crashed);
  List.iter
    (fun t ->
      check_bool "taxonomy name round-trips" true
        (Supervise.taxonomy_of_string (Supervise.taxonomy_to_string t) = Some t))
    [ Supervise.Hung; Supervise.Crashed; Supervise.Oom; Supervise.Faulted ];
  check_bool "unknown name rejected" true (Supervise.taxonomy_of_string "wedged" = None)

(* --- the watchdog ------------------------------------------------------ *)

let test_watchdog_kills_hung_task () =
  (* a task that never returns but does poll: the monitor must cancel it
     preemptively, well within 2x the deadline *)
  let deadline_ms = 100 in
  let pol = Supervise.policy ~deadline_ms () in
  Supervise.with_monitor pol (fun sup ->
      let t0 = Unix.gettimeofday () in
      let r = Supervise.run sup (fun () -> while true do Cancel.poll () done) in
      let elapsed_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      (match r with
      | Error (Supervise.Hung, _) -> ()
      | Error (t, m) ->
        Alcotest.fail
          (Printf.sprintf "wrong taxonomy %s: %s" (Supervise.taxonomy_to_string t) m)
      | Ok () -> Alcotest.fail "hung task returned");
      check_bool
        (Printf.sprintf "killed within 2x deadline (%.0fms)" elapsed_ms)
        true
        (elapsed_ms < 2.0 *. float_of_int deadline_ms);
      (* a task that finishes in time is untouched, and its token is gone *)
      (match Supervise.run sup (fun () -> 7) with
      | Ok 7 -> ()
      | _ -> Alcotest.fail "healthy task perturbed");
      check_bool "no token outside supervised extents" true (Cancel.current () = None))

let test_retry_ladder () =
  let pol = Supervise.policy ~max_retries:2 ~backoff_ms:[ 1 ] ~jitter:0.0 () in
  Supervise.with_monitor pol (fun sup ->
      let calls = ref 0 in
      (match
         Supervise.run_retrying sup ~key:42 (fun ~attempt ->
             incr calls;
             if attempt < 2 then failwith "flaky" else "ok")
       with
      | `Done ("ok", 2) -> ()
      | `Done (_, n) -> Alcotest.fail (Printf.sprintf "wrong retry count %d" n)
      | `Quarantine _ -> Alcotest.fail "transient failure quarantined");
      check_int "attempt 0 plus two retries" 3 !calls;
      (* a hopeless task strikes out with the last attempt's classification *)
      let calls = ref 0 in
      (match
         Supervise.run_retrying sup ~key:7 (fun ~attempt:_ ->
             incr calls;
             failwith "always")
       with
      | `Quarantine (Supervise.Crashed, msg, 2) ->
        check_bool "carries the exception text" true
          (String.length msg > 0 && String.sub msg 0 7 = "Failure")
      | `Quarantine (t, _, n) ->
        Alcotest.fail
          (Printf.sprintf "wrong strike-out %s after %d" (Supervise.taxonomy_to_string t) n)
      | `Done _ -> Alcotest.fail "hopeless task succeeded");
      check_int "ladder exhausted after max_retries" 3 !calls)

let test_memory_guard () =
  (* ceiling just above the current heap: the task's allocations cross it,
     the monitor cancels with Memory, and the attempt classifies as Oom *)
  let ceiling = int_of_float (Supervise.heap_mb ()) + 32 in
  let pol = Supervise.policy ~mem_ceiling_mb:ceiling () in
  Supervise.with_monitor pol (fun sup ->
      let r =
        Supervise.run sup (fun () ->
            let keep = ref [] in
            (* 1 MiB blocks go straight to the major heap, paced so the
               monitor's heap samples (updated at GC slice boundaries) keep
               up; the cap keeps a broken guard a failed test, not an OOMed
               runner *)
            for _ = 1 to 512 do
              Cancel.poll ();
              keep := Bytes.create (1024 * 1024) :: !keep;
              Unix.sleepf 0.0005
            done;
            ignore (Sys.opaque_identity !keep))
      in
      (match r with
      | Error (Supervise.Oom, _) -> ()
      | Error (t, m) ->
        Alcotest.fail
          (Printf.sprintf "wrong taxonomy %s: %s" (Supervise.taxonomy_to_string t) m)
      | Ok () -> Alcotest.fail "memory guard never fired");
      check_bool "pressure event counted" true (Supervise.pressure_events sup >= 1))

let test_expr_node_limit () =
  with_clean_world (fun () ->
      let base = Expr.live_nodes () in
      check_bool "hash-cons tables are populated" true (base > 0);
      Expr.set_node_limit (Some (base + 16));
      let x = Expr.var ~width:32 "supervise.nl" in
      (match
         for k = 0 to 999 do
           ignore (Expr.add x (Expr.const ~width:32 (Int64.of_int (0x5ead00 + k))))
         done
       with
      | () -> Alcotest.fail "node limit never enforced"
      | exception Expr.Node_limit n -> check_int "carries the limit" (base + 16) n);
      Expr.set_node_limit None;
      (* the gauge feeds solver stats and merges as a maximum *)
      Solver.capture_expr_stats ();
      let s = Solver.stats () in
      check_bool "expr_nodes gauge captured" true (s.Solver.expr_nodes >= base))

(* --- checkpoint v2 -> v3 migration ------------------------------------ *)

let read_file p = In_channel.with_open_bin p In_channel.input_all
let write_file p s = Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

(* strip the trailing [sum ...] line / append a fresh one *)
let body_of content =
  let wo = String.sub content 0 (String.length content - 1) in
  let i = String.rindex wo '\n' in
  String.sub content 0 (i + 1)

let with_sum body = body ^ "sum " ^ Digest.to_hex (Digest.string body) ^ "\n"

let grouped_runs () =
  let spec = Test_spec.packet_out () in
  let run_a = Runner.execute ~max_paths:40 Switches.Reference_switch.agent spec in
  let run_b = Runner.execute ~max_paths:40 Switches.Modified_switch.agent spec in
  (Soft.Grouping.of_run run_a, Soft.Grouping.of_run run_b)

let canon (o : Soft.Crosscheck.outcome) =
  Format.asprintf "%a" Soft.Crosscheck.pp { o with Soft.Crosscheck.o_check_time = 0.0 }

let in_temp f =
  let file = Filename.temp_file "soft_supervise_ckpt" ".txt" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists file then Sys.remove file) (fun () -> f file)

let test_checkpoint_v2_migration () =
  with_clean_world (fun () ->
      in_temp (fun file ->
          let a, b = grouped_runs () in
          let full = Soft.Crosscheck.check ~checkpoint:file a b in
          let v3 = read_file file in
          check_bool "fresh snapshots carry the v3 magic" true
            (String.sub v3 0 18 = "soft-checkpoint 3\n");
          (* rewrite the same records as a v2 file: old magic, no q lines
             (there are none in a clean run), fresh checksum *)
          let v2_body =
            "soft-checkpoint 2\n"
            ^ String.sub (body_of v3) 18 (String.length (body_of v3) - 18)
          in
          write_file file (with_sum v2_body);
          let warnings = ref [] in
          let before = (Solver.stats ()).Solver.queries in
          let resumed =
            Soft.Crosscheck.check ~resume:file ~checkpoint:file
              ~on_warning:(fun w -> warnings := w :: !warnings)
              a b
          in
          check_bool "v2 resumes without warnings" true (!warnings = []);
          check_int "a complete v2 snapshot costs no queries" before
            (Solver.stats ()).Solver.queries;
          Alcotest.(check string) "v2 resume reproduces the outcome" (canon full)
            (canon resumed);
          check_bool "resume starts with an empty quarantine" true
            (resumed.Soft.Crosscheck.o_pairs_quarantined = []);
          (* ... and the next snapshot is written in the new format *)
          let rewritten = read_file file in
          check_bool "rewrite upgrades the magic to v3" true
            (String.sub rewritten 0 18 = "soft-checkpoint 3\n")))

let test_checkpoint_corrupt_v3_cold_start () =
  with_clean_world (fun () ->
      in_temp (fun file ->
          let a, b = grouped_runs () in
          let full = Soft.Crosscheck.check ~checkpoint:file a b in
          let v3 = read_file file in
          (* flip one body byte: the checksum must catch it *)
          let bad = Bytes.of_string v3 in
          Bytes.set bad (String.length v3 / 2)
            (if Bytes.get bad (String.length v3 / 2) = 'x' then 'y' else 'x');
          write_file file (Bytes.to_string bad);
          let warnings = ref [] in
          let before = (Solver.stats ()).Solver.queries in
          let resumed =
            Soft.Crosscheck.check ~resume:file
              ~on_warning:(fun w -> warnings := w :: !warnings)
              a b
          in
          check_int "exactly one degradation warning" 1 (List.length !warnings);
          check_bool "warning names the integrity check" true
            (match !warnings with
            | [ w ] -> (
              match String.index_opt w 'i' with
              | Some _ ->
                (* substring search without Str *)
                let needle = "integrity" in
                let n = String.length needle and l = String.length w in
                let rec find i = i + n <= l && (String.sub w i n = needle || find (i + 1)) in
                find 0
              | None -> false)
            | _ -> false);
          check_bool "cold start re-solves" true
            ((Solver.stats ()).Solver.queries > before);
          Alcotest.(check string) "cold start is only slower, never wrong" (canon full)
            (canon resumed)))

let test_checkpoint_quarantine_roundtrip () =
  with_clean_world (fun () ->
      in_temp (fun file ->
          let a, b = grouped_runs () in
          ignore (Soft.Crosscheck.check ~checkpoint:file a b);
          let v3 = read_file file in
          (* turn the first clean pair record into a quarantine record, as a
             supervised run that struck out on that pair would have left it *)
          let lines = String.split_on_char '\n' (body_of v3) in
          let replaced = ref None in
          let lines' =
            List.map
              (fun l ->
                if !replaced = None && String.length l > 2 && l.[0] = 'd' && l.[1] = ' '
                then begin
                  let q = "q" ^ String.sub l 1 (String.length l - 1) ^ " hung" in
                  replaced := Some q;
                  q
                end
                else l)
              lines
          in
          let q_file = with_sum (String.concat "\n" lines') in
          check_bool "found a decided pair to quarantine" true (!replaced <> None);
          write_file file q_file;
          let before = (Solver.stats ()).Solver.queries in
          let resumed = Soft.Crosscheck.check ~resume:file ~checkpoint:file a b in
          (* the poison pair was skipped, not re-solved, and is reported
             with its taxonomy *)
          check_int "resume re-solves nothing" before (Solver.stats ()).Solver.queries;
          check_int "one quarantined pair" 1 (Soft.Crosscheck.quarantined_count resumed);
          (match resumed.Soft.Crosscheck.o_pairs_quarantined with
          | [ (_, _, tax) ] -> check_bool "taxonomy survives" true (tax = Supervise.Hung)
          | _ -> Alcotest.fail "quarantine list malformed");
          check_bool "quarantined implies undecided" true
            (Soft.Crosscheck.undecided_count resumed >= 1);
          (* this matrix has real inconsistencies, and a confirmed divergence
             outranks being degraded in the exit taxonomy *)
          check_int "confirmed divergences outrank degraded" 1
            (Soft.Report.exit_status resumed);
          (* the rewritten snapshot is byte-identical: quarantine records
             survive write/read/rewrite exactly *)
          Alcotest.(check string) "quarantine round-trips byte-identically" q_file
            (read_file file)))

(* --- end to end: chaos hangs under the watchdog ------------------------ *)

let test_supervised_hang_degrades_not_hangs () =
  (* rate-1.0 hangs: every solve stalls until the watchdog kills it, every
     pair quarantines as hung, the run completes degraded — bounded by
     pairs x deadline, not forever *)
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      let pol =
        Supervise.policy ~deadline_ms:60 ~max_retries:0 ~backoff_ms:[ 1 ] ()
      in
      Chaos.install (Chaos.plan ~seed:3 ~rate:1.0 ());
      let warnings = ref 0 in
      let o =
        Soft.Crosscheck.check ~supervise:pol ~on_warning:(fun _ -> incr warnings) a b
      in
      Chaos.deactivate ();
      check_bool "pairs were attempted" true (o.Soft.Crosscheck.o_pairs_checked > 0);
      let quarantined = Soft.Crosscheck.quarantined_count o in
      (* pairs the cheap pipeline (const eval, interval prefilter) decides
         never reach the SAT core, so the hang hook never fires for them;
         everything that did need the core must have struck out *)
      check_bool "most pairs quarantined" true
        (quarantined > o.Soft.Crosscheck.o_pairs_checked / 2);
      check_int "nothing undecided except by quarantine" quarantined
        (Soft.Crosscheck.undecided_count o);
      check_bool "no verdict can have come from a hung core" true
        (o.Soft.Crosscheck.o_inconsistencies = []);
      List.iter
        (fun (_, _, tax) -> check_bool "all hung" true (tax = Supervise.Hung))
        o.Soft.Crosscheck.o_pairs_quarantined;
      check_bool "quarantine warnings surfaced" true (!warnings >= quarantined);
      check_int "degraded exit, not a hang or a crash" 3 (Soft.Report.exit_status o))

let test_chaos_hang_sweep_invariant () =
  (* the 8-seed soundness sweep with the hang point live: chaos under
     supervision may only grow undecided/quarantine — never flip or invent
     a verdict *)
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      Solver.clear_cache ();
      let baseline = Soft.Crosscheck.check a b in
      let inc_keys (o : Soft.Crosscheck.outcome) =
        List.map
          (fun (i : Soft.Crosscheck.inconsistency) ->
            ( Openflow.Trace.result_key i.Soft.Crosscheck.i_result_a,
              Openflow.Trace.result_key i.i_result_b ))
          o.Soft.Crosscheck.o_inconsistencies
      in
      let base_incs = inc_keys baseline in
      let pol =
        Supervise.policy ~deadline_ms:50 ~max_retries:1 ~backoff_ms:[ 1 ] ()
      in
      for seed = 1 to 8 do
        Solver.clear_cache ();
        Mono.reset_skew ();
        Chaos.install (Chaos.plan ~seed ~rate:0.15 ());
        let o = Soft.Crosscheck.check ~supervise:pol a b in
        Chaos.deactivate ();
        let msg s = Printf.sprintf "seed %d: %s" seed s in
        check_int (msg "same pairs compared") baseline.Soft.Crosscheck.o_pairs_checked
          o.Soft.Crosscheck.o_pairs_checked;
        List.iter
          (fun k -> check_bool (msg "no invented inconsistencies") true (List.mem k base_incs))
          (inc_keys o);
        List.iter
          (fun k ->
            if not (List.mem k (inc_keys o)) then
              check_bool (msg "lost verdicts became undecided") true
                (List.mem k o.Soft.Crosscheck.o_pairs_undecided))
          base_incs;
        check_bool (msg "quarantine bounded by undecided") true
          (Soft.Crosscheck.quarantined_count o <= Soft.Crosscheck.undecided_count o)
      done)

let test_supervised_jobs_report_identical () =
  (* supervision enabled but nothing tripping: the report must stay
     byte-identical to the unsupervised one, at any -j *)
  with_clean_world (fun () ->
      let a, b = grouped_runs () in
      Solver.clear_cache ();
      let plain = Soft.Crosscheck.check ~jobs:1 a b in
      let pol = Supervise.policy ~deadline_ms:60_000 ~max_retries:1 () in
      Solver.clear_cache ();
      let s1 = Soft.Crosscheck.check ~jobs:1 ~supervise:pol a b in
      Solver.clear_cache ();
      let s4 = Soft.Crosscheck.check ~jobs:4 ~supervise:pol a b in
      Alcotest.(check string) "supervised -j1 equals unsupervised" (canon plain) (canon s1);
      Alcotest.(check string) "supervised -j4 equals -j1" (canon s1) (canon s4);
      check_int "no quarantine on a healthy run" 0 (Soft.Crosscheck.quarantined_count s4);
      check_int "no retries on a healthy run" 0 s4.Soft.Crosscheck.o_retries)

let suite =
  [
    ("policy validation", `Quick, test_policy_validation);
    ("failure taxonomy classification", `Quick, test_classification);
    ("watchdog kills a hung task within 2x deadline", `Quick, test_watchdog_kills_hung_task);
    ("retry ladder and strike-out", `Quick, test_retry_ladder);
    ("memory guard degrades to Oom", `Quick, test_memory_guard);
    ("Expr node limit backstop", `Quick, test_expr_node_limit);
    ("checkpoint v2 resumes into v3", `Quick, test_checkpoint_v2_migration);
    ("corrupt v3 checkpoint cold-starts", `Quick, test_checkpoint_corrupt_v3_cold_start);
    ("quarantine round-trips through the checkpoint", `Quick, test_checkpoint_quarantine_roundtrip);
    ("rate-1.0 hangs degrade, never hang the run", `Quick, test_supervised_hang_degrades_not_hangs);
    ("8-seed chaos-hang sweep invariant", `Quick, test_chaos_hang_sweep_invariant);
    ("supervised report byte-identical across -j", `Quick, test_supervised_jobs_report_identical);
  ]
