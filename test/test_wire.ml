(* OpenFlow 1.0 wire codec tests: serialization round trips, header
   invariants, and parse-error behaviour. *)

open Openflow

let roundtrip (m : Types.msg) = Wire.parse (Wire.serialize m)

let msg = Alcotest.testable Pp.msg ( = )

let check_roundtrip name m = Alcotest.check msg name m (roundtrip m)

let test_simple_messages () =
  List.iter
    (fun payload -> check_roundtrip "roundtrip" { Types.xid = 42l; payload })
    [
      Types.Hello;
      Types.Echo_request "ping";
      Types.Echo_reply "";
      Types.Features_request;
      Types.Get_config_request;
      Types.Barrier_request;
      Types.Barrier_reply;
      Types.Set_config { cfg_flags = 1; miss_send_len = 0x80 };
      Types.Get_config_reply { cfg_flags = 0; miss_send_len = 0xffff };
      Types.Queue_get_config_request { qgc_port = 3 };
      Types.Error_msg { err_type = 1; err_code = 6; err_data = "dead" };
      Types.Vendor { vendor = 0x2320l; vendor_body = "nx" };
    ]

let test_header_fields () =
  let wire = Wire.serialize { Types.xid = 0x01020304l; payload = Types.Hello } in
  Alcotest.(check int) "length" 8 (String.length wire);
  Alcotest.(check int) "version" Constants.version (Char.code wire.[0]);
  Alcotest.(check int) "type" Constants.Msg_type.hello (Char.code wire.[1]);
  Alcotest.(check int) "len hi" 0 (Char.code wire.[2]);
  Alcotest.(check int) "len lo" 8 (Char.code wire.[3]);
  Alcotest.(check int) "xid byte 0" 1 (Char.code wire.[4]);
  Alcotest.(check int) "xid byte 3" 4 (Char.code wire.[7])

let test_flow_mod_roundtrip () =
  let fm =
    {
      Types.fm_match =
        {
          Types.match_all with
          Types.wildcards = 0x300ffl;
          in_port = 1;
          dl_type = 0x800;
          nw_src = 0x0a000001l;
        };
      cookie = 0x1122334455667788L;
      command = Constants.Flow_mod_command.add;
      idle_timeout = 60;
      hard_timeout = 0;
      priority = 0x8000;
      fm_buffer_id = 0xffffffffl;
      out_port = Constants.Port.none;
      flags = Constants.Flow_mod_flags.send_flow_rem;
      fm_actions =
        [
          Types.Set_vlan_vid 100;
          Types.Set_dl_src 0x010203040506L;
          Types.Output { port = 2; max_len = 0xffff };
          Types.Enqueue { port = 1; queue_id = 7l };
        ];
    }
  in
  let m = { Types.xid = 9l; payload = Types.Flow_mod fm } in
  check_roundtrip "flow mod" m;
  (* 72 fixed bytes + 8 + 16 + 8 + 16 action bytes *)
  Alcotest.(check int) "wire size" (72 + 48) (String.length (Wire.serialize m))

let test_packet_out_roundtrip () =
  let po =
    {
      Types.po_buffer_id = 0xffffffffl;
      po_in_port = Constants.Port.none;
      po_actions = [ Types.Output { port = Constants.Port.flood; max_len = 0 } ];
      po_data = "\x01\x02\x03\x04";
    }
  in
  check_roundtrip "packet out" { Types.xid = 77l; payload = Types.Packet_out po }

let test_stats_roundtrips () =
  List.iter
    (fun sreq ->
      check_roundtrip "stats request"
        { Types.xid = 5l; payload = Types.Stats_request { sreq_flags = 0; sreq } })
    [
      Types.Desc_request;
      Types.Table_stats_request;
      Types.Port_stats_request { psr_port_no = Constants.Port.none };
      Types.Queue_stats_request { qsr_port_no = 1; qsr_queue_id = 0xffffffffl };
      Types.Flow_stats_request
        { fsr_match = Types.match_all; fsr_table_id = 0xff; fsr_out_port = Constants.Port.none };
    ];
  check_roundtrip "desc reply"
    {
      Types.xid = 6l;
      payload =
        Types.Stats_reply
          {
            srep_flags = 0;
            srep = Types.Desc_reply { mfr = "SOFT"; hw = "emu"; sw = "1.0"; serial = "1"; dp = "d" };
          };
    };
  check_roundtrip "aggregate reply"
    {
      Types.xid = 7l;
      payload =
        Types.Stats_reply
          {
            srep_flags = 0;
            srep =
              Types.Aggregate_reply
                { agg_packet_count = 10L; agg_byte_count = 640L; agg_flow_count = 2l };
          };
    }

let test_features_reply_roundtrip () =
  let port n =
    {
      Types.port_no = n;
      hw_addr = Int64.of_int (0x020000000000 + n);
      port_name = Printf.sprintf "eth%d" n;
      config = 0l;
      state = 0l;
      curr = 0x82l;
      advertised = 0l;
      supported = 0l;
      peer = 0l;
    }
  in
  check_roundtrip "features reply"
    {
      Types.xid = 1l;
      payload =
        Types.Features_reply
          {
            datapath_id = 0xcafeL;
            n_buffers = 256l;
            n_tables = 1;
            capabilities = 0xc7l;
            supported_actions = 0xfffl;
            ports = [ port 1; port 2; port 3 ];
          };
    }

let test_packet_in_roundtrip () =
  check_roundtrip "packet in"
    {
      Types.xid = 0l;
      payload =
        Types.Packet_in
          {
            pi_buffer_id = 0x100l;
            pi_total_len = 64;
            pi_in_port = 1;
            pi_reason = Constants.Packet_in_reason.no_match;
            pi_data = String.make 32 'x';
          };
    }

let test_parse_errors () =
  let bad_version = "\x02\x00\x00\x08\x00\x00\x00\x00" in
  (try
     ignore (Wire.parse bad_version);
     Alcotest.fail "expected parse error"
   with Wire.Parse_error _ -> ());
  let truncated = "\x01\x0e\x00\x48\x00\x00\x00\x00" (* flow mod claiming 72, body absent *) in
  (try
     ignore (Wire.parse truncated);
     Alcotest.fail "expected parse error"
   with Wire.Parse_error _ -> ());
  let trailing = Wire.serialize { Types.xid = 0l; payload = Types.Hello } ^ "zz" in
  try
    ignore (Wire.parse trailing);
    Alcotest.fail "expected parse error"
  with Wire.Parse_error _ -> ()

let test_parse_stream () =
  let messages =
    [
      { Types.xid = 1l; payload = Types.Hello };
      { Types.xid = 2l; payload = Types.Echo_request "hb" };
      { Types.xid = 3l; payload = Types.Barrier_request };
    ]
  in
  let wire = String.concat "" (List.map Wire.serialize messages) in
  Alcotest.(check (list msg)) "stream" messages (Wire.parse_stream wire)

let test_action_length_validation () =
  (* an action whose length is not a multiple of 8 must be rejected *)
  let bogus =
    "\x01\x0d\x00\x1d\x00\x00\x00\x00" (* packet-out header, claims 29 bytes *)
    ^ "\xff\xff\xff\xff\xff\xff\x00\x0d" (* buffer -1, in_port, actions_len 13 *)
    ^ "\x00\x00\x00\x0d\x00\x01\x00\x00\x00\x00\x00\x00\x00"
  in
  try
    ignore (Wire.parse bogus);
    Alcotest.fail "expected parse error"
  with Wire.Parse_error _ -> ()

let prop_msg_roundtrip =
  QCheck2.Test.make ~name:"random messages roundtrip through the wire" ~count:400
    Gen.msg_gen
    (fun m -> roundtrip m = m)

let prop_length_header =
  QCheck2.Test.make ~name:"length header equals wire size" ~count:400 Gen.msg_gen
    (fun m ->
      let wire = Wire.serialize m in
      let len = (Char.code wire.[2] lsl 8) lor Char.code wire.[3] in
      len = String.length wire)

(* Mutation robustness: the parser sits behind a live socket in the wire
   replay layer, so a corrupted frame must come back as [Parse_error]
   (which Conn folds into a contained peer fault) — never as
   Invalid_argument, an assert failure, or an out-of-bounds read. *)

let parse_contained wire =
  match Wire.parse wire with
  | (_ : Types.msg) -> true
  | exception Wire.Parse_error _ -> true

let stream_contained wire =
  match Wire.parse_stream wire with
  | (_ : Types.msg list) -> true
  | exception Wire.Parse_error _ -> true

let prop_truncated_frames =
  QCheck2.Test.make ~name:"truncated frames fail with Parse_error only" ~count:400
    Gen.truncated_wire_gen
    (fun wire ->
      (* a strict prefix is never a whole message: parse must refuse *)
      (match Wire.parse wire with
       | (_ : Types.msg) -> false
       | exception Wire.Parse_error _ -> true)
      && stream_contained wire)

let prop_bitflipped_frames =
  QCheck2.Test.make ~name:"bit-flipped frames parse or fail with Parse_error only"
    ~count:400 Gen.bitflipped_wire_gen
    (fun wire -> parse_contained wire && stream_contained wire)

let prop_length_corrupted_frames =
  QCheck2.Test.make ~name:"length-corrupted frames fail with Parse_error only"
    ~count:400 Gen.length_corrupted_wire_gen
    (fun wire ->
      (* the length field lies, and parse checks it against the buffer *)
      (match Wire.parse wire with
       | (_ : Types.msg) -> false
       | exception Wire.Parse_error _ -> true)
      && stream_contained wire)

let prop_corrupt_mid_stream =
  QCheck2.Test.make
    ~name:"corruption mid-stream is contained to Parse_error" ~count:200
    QCheck2.Gen.(pair Gen.msg_gen Gen.length_corrupted_wire_gen)
    (fun (good, bad) -> stream_contained (Wire.serialize good ^ bad))

let suite =
  [
    Alcotest.test_case "simple messages roundtrip" `Quick test_simple_messages;
    Alcotest.test_case "header layout" `Quick test_header_fields;
    Alcotest.test_case "flow mod roundtrip" `Quick test_flow_mod_roundtrip;
    Alcotest.test_case "packet out roundtrip" `Quick test_packet_out_roundtrip;
    Alcotest.test_case "stats roundtrips" `Quick test_stats_roundtrips;
    Alcotest.test_case "features reply roundtrip" `Quick test_features_reply_roundtrip;
    Alcotest.test_case "packet in roundtrip" `Quick test_packet_in_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "message stream" `Quick test_parse_stream;
    Alcotest.test_case "action length validation" `Quick test_action_length_validation;
    QCheck_alcotest.to_alcotest prop_msg_roundtrip;
    QCheck_alcotest.to_alcotest prop_length_header;
    QCheck_alcotest.to_alcotest prop_truncated_frames;
    QCheck_alcotest.to_alcotest prop_bitflipped_frames;
    QCheck_alcotest.to_alcotest prop_length_corrupted_frames;
    QCheck_alcotest.to_alcotest prop_corrupt_mid_stream;
  ]
