(* SOFT core tests: grouping, crosschecking, reporting, test-case
   generation, and the end-to-end soundness properties of the pipeline —
   most importantly: no false positives (an agent crosschecked against
   itself yields zero inconsistencies), and every witness genuinely
   satisfies both agents' conditions. *)

open Smt
module Trace = Openflow.Trace
module Engine = Symexec.Engine

let c16 v = Expr.const ~width:16 (Int64.of_int v)

let result trace = { Trace.trace; crash = None }

(* --- grouping -------------------------------------------------------- *)

let test_grouping_collapses () =
  let x = Expr.var ~width:16 "gx" in
  let paths =
    [
      (result [ "A" ], Expr.eq x (c16 1));
      (result [ "B" ], Expr.eq x (c16 2));
      (result [ "A" ], Expr.eq x (c16 3));
      (result [ "A" ], Expr.eq x (c16 4));
    ]
  in
  let groups = Soft.Grouping.group_paths paths in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let ga = List.find (fun g -> g.Soft.Grouping.g_key = Trace.result_key (result [ "A" ])) groups in
  Alcotest.(check int) "A groups 3 paths" 3 ga.Soft.Grouping.g_path_count;
  (* the group condition is the disjunction: each member value satisfies it *)
  List.iter
    (fun v ->
      let m = Model.of_bindings [ (Expr.make_var "gx" 16, v) ] in
      Alcotest.(check bool)
        (Printf.sprintf "x=%Ld in group A" v)
        true
        (Model.eval_bool m ga.Soft.Grouping.g_cond))
    [ 1L; 3L; 4L ];
  let m2 = Model.of_bindings [ (Expr.make_var "gx" 16, 2L) ] in
  Alcotest.(check bool) "x=2 not in group A" false (Model.eval_bool m2 ga.Soft.Grouping.g_cond)

let test_grouping_crash_distinct () =
  let x = Expr.var ~width:16 "gy" in
  let paths =
    [
      (result [ "A" ], Expr.eq x (c16 1));
      ({ Trace.trace = [ "A" ]; crash = Some "boom" }, Expr.eq x (c16 2));
    ]
  in
  Alcotest.(check int) "crash separates results" 2
    (List.length (Soft.Grouping.group_paths paths))

(* --- crosschecking: the Figure 1/2 example --------------------------- *)

let fig1_agent1 env p =
  if Engine.branch_eq env p 0xfffdL then Engine.emit env "CTRL"
  else if Engine.branch env (Expr.ult p (c16 25)) then Engine.emit env "FWD"
  else Engine.emit env "ERR"

let fig1_agent2 env p =
  if Engine.branch env (Expr.ult p (c16 25)) then Engine.emit env "FWD"
  else Engine.emit env "ERR"

let run_toy name program =
  let r = Engine.run program in
  let paths =
    List.map
      (fun (pr : string Engine.path_result) ->
        ({ Trace.trace = pr.Engine.events; crash = None }, pr.Engine.path_cond))
      r.Engine.results
  in
  {
    Soft.Grouping.gr_agent = name;
    gr_test = "fig1";
    gr_groups = Soft.Grouping.group_paths paths;
    gr_group_time = 0.0;
  }

let test_figure1_example () =
  let p = Expr.var ~width:16 "fig1.p" in
  let a = run_toy "agent1" (fun env -> fig1_agent1 env p) in
  let b = run_toy "agent2" (fun env -> fig1_agent2 env p) in
  Alcotest.(check int) "agent1 results" 3 (List.length a.Soft.Grouping.gr_groups);
  Alcotest.(check int) "agent2 results" 2 (List.length b.Soft.Grouping.gr_groups);
  let outcome = Soft.Crosscheck.check a b in
  (* exactly one non-empty intersection of differing results: p = OFPP_CTRL
     where agent1 says CTRL and agent2 says ERR *)
  Alcotest.(check int) "one inconsistency" 1 (Soft.Crosscheck.count outcome);
  let inc = List.hd outcome.Soft.Crosscheck.o_inconsistencies in
  Alcotest.(check int64) "witness is OFPP_CONTROLLER" 0xfffdL
    (Model.get inc.Soft.Crosscheck.i_witness (Expr.make_var "fig1.p" 16));
  Alcotest.(check bool) "witness satisfies the conjunction" true
    (Soft.Testcase.witness_consistent inc)

let test_self_check_no_false_positives () =
  let p = Expr.var ~width:16 "fig1.p" in
  let a = run_toy "agent1" (fun env -> fig1_agent1 env p) in
  let a' = run_toy "agent1-again" (fun env -> fig1_agent1 env p) in
  let outcome = Soft.Crosscheck.check a a' in
  Alcotest.(check int) "agent vs itself: no inconsistencies" 0
    (Soft.Crosscheck.count outcome)

let test_check_requires_same_test () =
  let p = Expr.var ~width:16 "fig1.p" in
  let a = run_toy "agent1" (fun env -> fig1_agent1 env p) in
  let b = { (run_toy "agent2" (fun env -> fig1_agent2 env p)) with Soft.Grouping.gr_test = "other" } in
  Alcotest.check_raises "different tests rejected"
    (Invalid_argument "Crosscheck.check: runs of different tests") (fun () ->
      ignore (Soft.Crosscheck.check a b))

let test_split_crosscheck_equivalent () =
  (* chunked checking (the paper's proposed remedy for solver blow-ups)
     must find exactly the same inconsistent result pairs *)
  let spec = Harness.Test_spec.packet_out () in
  let a =
    Soft.Grouping.of_run
      (Harness.Runner.execute ~max_paths:400 Switches.Reference_switch.agent spec)
  in
  let b =
    Soft.Grouping.of_run
      (Harness.Runner.execute ~max_paths:400 Switches.Open_vswitch.agent spec)
  in
  let keys outcome =
    List.sort_uniq compare
      (List.map
         (fun (i : Soft.Crosscheck.inconsistency) ->
           (Trace.result_key i.Soft.Crosscheck.i_result_a, Trace.result_key i.i_result_b))
         outcome.Soft.Crosscheck.o_inconsistencies)
  in
  let whole = Soft.Crosscheck.check a b in
  let split = Soft.Crosscheck.check ~split:5 a b in
  Alcotest.(check int) "same number of inconsistent pairs" (Soft.Crosscheck.count whole)
    (Soft.Crosscheck.count split);
  Alcotest.(check bool) "same pairs" true (keys whole = keys split)

let test_crosscheck_symmetric () =
  (* swapping the agents mirrors the inconsistent pairs exactly *)
  let spec = Harness.Test_spec.short_symb () in
  let a =
    Soft.Grouping.of_run
      (Harness.Runner.execute ~max_paths:100 Switches.Reference_switch.agent spec)
  in
  let b =
    Soft.Grouping.of_run
      (Harness.Runner.execute ~max_paths:100 Switches.Open_vswitch.agent spec)
  in
  let keys outcome =
    List.sort_uniq compare
      (List.map
         (fun (i : Soft.Crosscheck.inconsistency) ->
           (Trace.result_key i.Soft.Crosscheck.i_result_a, Trace.result_key i.i_result_b))
         outcome.Soft.Crosscheck.o_inconsistencies)
  in
  let ab = keys (Soft.Crosscheck.check a b) in
  let ba = List.map (fun (x, y) -> (y, x)) (keys (Soft.Crosscheck.check b a)) in
  Alcotest.(check bool) "mirrored pairs" true (List.sort compare ba = ab)

let test_group_condition_entails_members () =
  (* every member path condition implies its group's disjunction *)
  let spec = Harness.Test_spec.stats_request () in
  let g =
    Soft.Grouping.of_run
      (Harness.Runner.execute ~max_paths:100 Switches.Reference_switch.agent spec)
  in
  List.iter
    (fun (grp : Soft.Grouping.group) ->
      List.iter
        (fun member ->
          Alcotest.(check bool) "member implies group" false
            (Smt.Solver.is_sat [ member; Smt.Expr.not_ grp.Soft.Grouping.g_cond ]))
        grp.Soft.Grouping.g_member_conds)
    g.Soft.Grouping.gr_groups

(* --- classification ---------------------------------------------------- *)

let mk_inc a b =
  {
    Soft.Crosscheck.i_result_a = a;
    i_result_b = b;
    i_witness = Model.empty ();
    i_cond = Expr.tru;
    i_paths_a = 1;
    i_paths_b = 1;
  }

let test_classification () =
  let open Soft.Report in
  Alcotest.(check string) "crash class" (class_name Agent_crash)
    (class_name
       (classify (mk_inc { Trace.trace = []; crash = Some "x" } (result [ "of:barrier_reply" ]))));
  Alcotest.(check string) "missing error" (class_name Missing_error)
    (class_name (classify (mk_inc (result [ "of:error(BAD_REQUEST,6)" ]) (result []))));
  Alcotest.(check string) "different errors" (class_name Different_errors)
    (class_name
       (classify
          (mk_inc (result [ "of:error(BAD_REQUEST,6)" ]) (result [ "of:error(BAD_ACTION,1)" ]))));
  Alcotest.(check string) "rejected vs applied" (class_name Rejected_vs_applied)
    (class_name
       (classify (mk_inc (result [ "of:error(BAD_ACTION,4)" ]) (result [ "dp:tx(#2,p)" ]))));
  Alcotest.(check string) "probe difference" (class_name State_difference)
    (class_name (classify (mk_inc (result [ "probe1:fwd(#2,p)" ]) (result [ "probe1:dropped" ]))))

let test_summarize_dedups () =
  let incs =
    [
      mk_inc (result [ "of:error(BAD_REQUEST,6)" ]) (result []);
      mk_inc (result [ "of:error(BAD_REQUEST,8)" ]) (result []);
      mk_inc { Trace.trace = []; crash = Some "x" } (result [ "of:barrier_reply" ]);
    ]
  in
  let outcome =
    {
      Soft.Crosscheck.o_agent_a = "a";
      o_agent_b = "b";
      o_test = "t";
      o_inconsistencies = incs;
      o_pairs_checked = 3;
      o_pairs_equal = 0;
      o_pairs_undecided = [];
      o_pair_faults = 0;
      o_pairs_quarantined = [];
      o_retries = 0;
      o_check_time = 0.0;
    }
  in
  let summary = Soft.Report.summarize outcome in
  Alcotest.(check int) "two classes" 2 (List.length summary);
  Alcotest.(check int) "missing-error counted twice" 2
    (List.hd summary).Soft.Report.s_count

(* --- end to end --------------------------------------------------------- *)

let test_e2e_packet_out_findings () =
  let spec = Harness.Test_spec.packet_out () in
  let c =
    Soft.Pipeline.compare_agents ~max_paths:800 Switches.Reference_switch.agent
      Switches.Open_vswitch.agent spec
  in
  Alcotest.(check bool) "inconsistencies found" true (Soft.Pipeline.inconsistency_count c > 0);
  let classes = List.map (fun s -> s.Soft.Report.s_class) (Soft.Pipeline.summaries c) in
  Alcotest.(check bool) "crash class present" true
    (List.mem Soft.Report.Agent_crash classes);
  (* every witness satisfies its conjunction *)
  List.iter
    (fun inc ->
      Alcotest.(check bool) "witness consistent" true (Soft.Testcase.witness_consistent inc))
    c.Soft.Pipeline.c_outcome.Soft.Crosscheck.o_inconsistencies;
  (* every reproducer's control messages have a coherent OpenFlow header;
     the body may be deliberately malformed — that is the whole point of a
     bug-triggering input — in which case strict parsing refuses it *)
  List.iter
    (fun tc ->
      List.iter
        (function
          | Soft.Testcase.C_message { wire; _ } ->
            Alcotest.(check int) "version byte" Openflow.Constants.version
              (Char.code wire.[0]);
            let claimed = (Char.code wire.[2] lsl 8) lor Char.code wire.[3] in
            Alcotest.(check int) "length header matches byte count" claimed
              (String.length wire)
          | Soft.Testcase.C_probe _ | Soft.Testcase.C_advance_time _ -> ())
        tc.Soft.Testcase.tc_inputs)
    (Soft.Pipeline.test_cases c)

let test_e2e_self_comparison_clean () =
  (* the fundamental no-false-positive property on a real test *)
  let spec = Harness.Test_spec.set_config () in
  let c =
    Soft.Pipeline.compare_agents ~max_paths:800 Switches.Reference_switch.agent
      Switches.Reference_switch.agent spec
  in
  Alcotest.(check int) "reference vs reference: zero inconsistencies" 0
    (Soft.Pipeline.inconsistency_count c)

let test_e2e_set_config_identical () =
  (* the paper's Table 3 reports 0 inconsistencies for Set Config between
     reference and ovs *)
  let spec = Harness.Test_spec.set_config () in
  let c =
    Soft.Pipeline.compare_agents ~max_paths:2000 Switches.Reference_switch.agent
      Switches.Open_vswitch.agent spec
  in
  Alcotest.(check int) "set config: no inconsistencies" 0
    (Soft.Pipeline.inconsistency_count c)

let test_e2e_concrete_single_path () =
  let spec = Harness.Test_spec.concrete () in
  let run = Harness.Runner.execute ~max_paths:10 Switches.Reference_switch.agent spec in
  Alcotest.(check int) "concrete test has exactly one path" 1
    (List.length run.Harness.Runner.run_paths)

let suite =
  [
    Alcotest.test_case "grouping collapses" `Quick test_grouping_collapses;
    Alcotest.test_case "crash results are distinct" `Quick test_grouping_crash_distinct;
    Alcotest.test_case "figure 1 example" `Quick test_figure1_example;
    Alcotest.test_case "no false positives (toy)" `Quick test_self_check_no_false_positives;
    Alcotest.test_case "test mismatch rejected" `Quick test_check_requires_same_test;
    Alcotest.test_case "split crosscheck equivalent" `Slow test_split_crosscheck_equivalent;
    Alcotest.test_case "crosscheck symmetric" `Slow test_crosscheck_symmetric;
    Alcotest.test_case "group condition entails members" `Quick
      test_group_condition_entails_members;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "summaries dedup" `Quick test_summarize_dedups;
    Alcotest.test_case "e2e: packet out findings" `Slow test_e2e_packet_out_findings;
    Alcotest.test_case "e2e: self comparison clean" `Slow test_e2e_self_comparison_clean;
    Alcotest.test_case "e2e: set config identical" `Slow test_e2e_set_config_identical;
    Alcotest.test_case "e2e: concrete single path" `Quick test_e2e_concrete_single_path;
  ]
