(** Solver frontend: the STP-shaped interface the rest of SOFT uses.

    A query is a conjunction of boolean expressions.  The pipeline is
    constant short-circuiting, then the sound UNSAT-only interval filter,
    then bit-blasting to the CDCL SAT core with model extraction.
    Results are memoized on the multiset of constraint ids. *)

type result =
  | Sat of Model.t  (** satisfiable, with a concrete witness *)
  | Unsat

type stats = {
  mutable queries : int;
  mutable const_hits : int;  (** answered by constant folding *)
  mutable interval_hits : int;  (** answered by the interval filter *)
  mutable cache_hits : int;
  mutable sat_calls : int;  (** queries reaching the SAT core *)
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable solver_time : float;  (** wall seconds inside the SAT core *)
}

val stats : stats
(** Global counters, cumulative since start or the last {!reset_stats}. *)

val reset_stats : unit -> unit

val clear_cache : unit -> unit
(** Drop the query-result memo table (benchmarks use this to measure cold
    costs). *)

val check : ?use_interval:bool -> ?use_cache:bool -> Expr.boolean list -> result
(** [check conds] decides the conjunction of [conds].  [use_interval]
    (default true) enables the interval pre-filter; [use_cache] (default
    true) the memo table. *)

val is_sat : ?use_interval:bool -> ?use_cache:bool -> Expr.boolean list -> bool
val get_model : ?use_interval:bool -> ?use_cache:bool -> Expr.boolean list -> Model.t option

val entails : Expr.boolean list -> Expr.boolean -> bool
(** [entails pc c] iff [pc ∧ ¬c] is unsatisfiable. *)

val pp_stats : Format.formatter -> unit -> unit
