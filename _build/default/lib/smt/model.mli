(** A satisfying assignment: symbolic variable -> concrete value.

    Variables absent from the model are unconstrained and read as zero,
    which matches what STP reports for don't-care inputs. *)

type t

val empty : unit -> t
val of_bindings : (Expr.var * int64) list -> t
val set : t -> Expr.var -> int64 -> unit

val get : t -> Expr.var -> int64
(** Value of a variable, normalized to its width; [0] when unbound. *)

val mem : t -> Expr.var -> bool

val bindings : t -> (Expr.var * int64) list
(** All bound variables, sorted by variable id. *)

val eval_bv : t -> Expr.bv -> int64
(** Memoized evaluation of a term under the model. *)

val eval_bool : t -> Expr.boolean -> bool

val satisfies : t -> Expr.boolean list -> bool
(** Does the model satisfy all the given constraints?  Used to double-check
    inconsistency witnesses before shipping them. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
