(** S-expression serialization of expressions — the interchange format for
    path conditions in SOFT's decoupled two-phase workflow (paper §2.4):
    vendors ship the *outputs* of symbolic execution, never source code.

    Parsing re-applies the smart constructors, so a round trip returns the
    physically identical hash-consed term. *)

exception Parse_error of string

val bool_to_string : Expr.boolean -> string
val bv_to_string : Expr.bv -> string

val bool_of_string : string -> Expr.boolean
(** @raise Parse_error on malformed input. *)

val bv_of_string : string -> Expr.bv
