(* S-expression serialization of expressions.  SOFT's two phases run
   decoupled (paper §2.4): each vendor ships the *output* of symbolic
   execution — path conditions and result traces — not source code.  This
   module is the interchange format for those path conditions.

   Grammar:
     bv   ::= (c W HEX) | (v NAME W) | (u OP bv) | (b OP bv bv)
            | (ite bool bv bv) | (ex HI LO bv) | (cat bv bv)
            | (zx W bv) | (sx W bv)
     bool ::= t | f | (cmp OP bv bv) | (not bool)
            | (and bool bool) | (or bool bool)

   Variable names are quoted with '|' to allow arbitrary characters except
   '|' and newline. *)

exception Parse_error of string

let unop_name = function Expr.Bnot -> "bnot" | Expr.Neg -> "neg"

let unop_of_name = function
  | "bnot" -> Expr.Bnot
  | "neg" -> Expr.Neg
  | s -> raise (Parse_error ("unop " ^ s))

let binop_name = function
  | Expr.Add -> "add"
  | Expr.Sub -> "sub"
  | Expr.Mul -> "mul"
  | Expr.Andb -> "and"
  | Expr.Orb -> "or"
  | Expr.Xorb -> "xor"
  | Expr.Shl -> "shl"
  | Expr.Lshr -> "lshr"

let binop_of_name = function
  | "add" -> Expr.Add
  | "sub" -> Expr.Sub
  | "mul" -> Expr.Mul
  | "and" -> Expr.Andb
  | "or" -> Expr.Orb
  | "xor" -> Expr.Xorb
  | "shl" -> Expr.Shl
  | "lshr" -> Expr.Lshr
  | s -> raise (Parse_error ("binop " ^ s))

let cmp_name = function
  | Expr.Eq -> "eq"
  | Expr.Ult -> "ult"
  | Expr.Ule -> "ule"
  | Expr.Slt -> "slt"
  | Expr.Sle -> "sle"

let cmp_of_name = function
  | "eq" -> Expr.Eq
  | "ult" -> Expr.Ult
  | "ule" -> Expr.Ule
  | "slt" -> Expr.Slt
  | "sle" -> Expr.Sle
  | s -> raise (Parse_error ("cmp " ^ s))

(* --- writing ------------------------------------------------------------ *)

let rec write_bv buf (e : Expr.bv) =
  match e.Expr.node with
  | Expr.Const c -> Printf.bprintf buf "(c %d %Lx)" e.Expr.width c
  | Expr.Var v -> Printf.bprintf buf "(v |%s| %d)" (Expr.var_name v) (Expr.var_width v)
  | Expr.Unop (op, a) ->
    Printf.bprintf buf "(u %s " (unop_name op);
    write_bv buf a;
    Buffer.add_char buf ')'
  | Expr.Binop (op, a, b) ->
    Printf.bprintf buf "(b %s " (binop_name op);
    write_bv buf a;
    Buffer.add_char buf ' ';
    write_bv buf b;
    Buffer.add_char buf ')'
  | Expr.Ite (c, a, b) ->
    Buffer.add_string buf "(ite ";
    write_bool buf c;
    Buffer.add_char buf ' ';
    write_bv buf a;
    Buffer.add_char buf ' ';
    write_bv buf b;
    Buffer.add_char buf ')'
  | Expr.Extract (a, hi, lo) ->
    Printf.bprintf buf "(ex %d %d " hi lo;
    write_bv buf a;
    Buffer.add_char buf ')'
  | Expr.Concat (a, b) ->
    Buffer.add_string buf "(cat ";
    write_bv buf a;
    Buffer.add_char buf ' ';
    write_bv buf b;
    Buffer.add_char buf ')'
  | Expr.Zext a ->
    Printf.bprintf buf "(zx %d " e.Expr.width;
    write_bv buf a;
    Buffer.add_char buf ')'
  | Expr.Sext a ->
    Printf.bprintf buf "(sx %d " e.Expr.width;
    write_bv buf a;
    Buffer.add_char buf ')'

and write_bool buf (b : Expr.boolean) =
  match b.Expr.bnode with
  | Expr.True -> Buffer.add_char buf 't'
  | Expr.False -> Buffer.add_char buf 'f'
  | Expr.Cmp (op, x, y) ->
    Printf.bprintf buf "(cmp %s " (cmp_name op);
    write_bv buf x;
    Buffer.add_char buf ' ';
    write_bv buf y;
    Buffer.add_char buf ')'
  | Expr.Not x ->
    Buffer.add_string buf "(not ";
    write_bool buf x;
    Buffer.add_char buf ')'
  | Expr.And (x, y) ->
    Buffer.add_string buf "(and ";
    write_bool buf x;
    Buffer.add_char buf ' ';
    write_bool buf y;
    Buffer.add_char buf ')'
  | Expr.Or (x, y) ->
    Buffer.add_string buf "(or ";
    write_bool buf x;
    Buffer.add_char buf ' ';
    write_bool buf y;
    Buffer.add_char buf ')'

let bool_to_string b =
  let buf = Buffer.create 256 in
  write_bool buf b;
  Buffer.contents buf

let bv_to_string e =
  let buf = Buffer.create 256 in
  write_bv buf e;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let skip_ws cur =
  while cur.pos < String.length cur.s && (cur.s.[cur.pos] = ' ' || cur.s.[cur.pos] = '\n') do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  skip_ws cur;
  match peek cur with
  | Some x when x = c -> cur.pos <- cur.pos + 1
  | Some x -> raise (Parse_error (Printf.sprintf "expected '%c', got '%c' at %d" c x cur.pos))
  | None -> raise (Parse_error (Printf.sprintf "expected '%c', got end of input" c))

let atom cur =
  skip_ws cur;
  let start = cur.pos in
  while
    cur.pos < String.length cur.s
    &&
    match cur.s.[cur.pos] with ' ' | '(' | ')' | '\n' -> false | _ -> true
  do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then raise (Parse_error (Printf.sprintf "expected atom at %d" start));
  String.sub cur.s start (cur.pos - start)

let quoted_name cur =
  skip_ws cur;
  expect cur '|';
  let start = cur.pos in
  while cur.pos < String.length cur.s && cur.s.[cur.pos] <> '|' do
    cur.pos <- cur.pos + 1
  done;
  let name = String.sub cur.s start (cur.pos - start) in
  expect cur '|';
  name

let int_atom cur =
  let a = atom cur in
  match int_of_string_opt a with
  | Some n -> n
  | None -> raise (Parse_error ("expected integer, got " ^ a))

let rec parse_bv cur : Expr.bv =
  expect cur '(';
  let tag = atom cur in
  let e =
    match tag with
    | "c" ->
      let w = int_atom cur in
      let hex = atom cur in
      let v =
        try Int64.of_string ("0x" ^ hex)
        with _ -> raise (Parse_error ("bad constant " ^ hex))
      in
      Expr.const ~width:w v
    | "v" -> (
      let name = quoted_name cur in
      let w = int_atom cur in
      (* a corrupted file can redeclare a known variable at a bogus width;
         report it as a parse error, not an internal exception *)
      try Expr.var ~width:w name with
      | Expr.Width_mismatch m -> raise (Parse_error m)
      | Invalid_argument m -> raise (Parse_error m))
    | "u" ->
      let op = unop_of_name (atom cur) in
      Expr.unop op (parse_bv cur)
    | "b" ->
      let op = binop_of_name (atom cur) in
      let a = parse_bv cur in
      let b = parse_bv cur in
      Expr.binop op a b
    | "ite" ->
      let c = parse_bool cur in
      let a = parse_bv cur in
      let b = parse_bv cur in
      Expr.ite c a b
    | "ex" ->
      let hi = int_atom cur in
      let lo = int_atom cur in
      Expr.extract ~hi ~lo (parse_bv cur)
    | "cat" ->
      let a = parse_bv cur in
      let b = parse_bv cur in
      Expr.concat a b
    | "zx" ->
      let w = int_atom cur in
      Expr.zext ~width:w (parse_bv cur)
    | "sx" ->
      let w = int_atom cur in
      Expr.sext ~width:w (parse_bv cur)
    | t -> raise (Parse_error ("unknown bv tag " ^ t))
  in
  expect cur ')';
  e

and parse_bool cur : Expr.boolean =
  skip_ws cur;
  match peek cur with
  | Some 't' ->
    cur.pos <- cur.pos + 1;
    Expr.tru
  | Some 'f' ->
    cur.pos <- cur.pos + 1;
    Expr.fls
  | Some '(' ->
    expect cur '(';
    let tag = atom cur in
    let b =
      match tag with
      | "cmp" ->
        let op = cmp_of_name (atom cur) in
        let x = parse_bv cur in
        let y = parse_bv cur in
        Expr.cmp op x y
      | "not" -> Expr.not_ (parse_bool cur)
      | "and" ->
        let x = parse_bool cur in
        let y = parse_bool cur in
        Expr.and_ x y
      | "or" ->
        let x = parse_bool cur in
        let y = parse_bool cur in
        Expr.or_ x y
      | t -> raise (Parse_error ("unknown bool tag " ^ t))
    in
    expect cur ')';
    b
  | _ -> raise (Parse_error "expected boolean expression")

(* Structurally corrupted input can also surface as width or argument
   errors from the smart constructors (bad extract ranges, mismatched
   operand widths); fold them all into [Parse_error]. *)
let guarded parse s =
  let cur = { s; pos = 0 } in
  let v =
    try parse cur with
    | Expr.Width_mismatch m -> raise (Parse_error m)
    | Invalid_argument m -> raise (Parse_error m)
  in
  skip_ws cur;
  if cur.pos <> String.length s then raise (Parse_error "trailing garbage");
  v

let bool_of_string s = guarded parse_bool s
let bv_of_string s = guarded parse_bv s
