lib/smt/sat.ml: Array Bytes List
