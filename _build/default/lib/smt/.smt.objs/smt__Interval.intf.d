lib/smt/interval.mli: Expr
