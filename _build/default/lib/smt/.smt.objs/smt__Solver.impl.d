lib/smt/solver.ml: Bitblast Expr Format Hashtbl Interval List Model Sat Unix
