lib/smt/expr.ml: Array Format Hashtbl Int64 List Printf
