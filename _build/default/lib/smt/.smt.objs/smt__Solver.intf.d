lib/smt/solver.mli: Expr Format Model
