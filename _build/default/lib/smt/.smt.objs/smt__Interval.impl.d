lib/smt/interval.ml: Expr Hashtbl Int64 List
