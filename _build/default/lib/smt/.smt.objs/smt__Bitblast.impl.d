lib/smt/bitblast.ml: Array Expr Hashtbl Int64 Model Sat
