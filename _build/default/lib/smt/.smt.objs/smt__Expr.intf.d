lib/smt/expr.mli: Format
