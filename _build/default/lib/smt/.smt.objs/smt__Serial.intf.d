lib/smt/serial.mli: Expr
