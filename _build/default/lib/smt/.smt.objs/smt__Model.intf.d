lib/smt/model.mli: Expr Format
