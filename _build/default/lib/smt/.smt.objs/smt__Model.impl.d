lib/smt/model.ml: Expr Format Hashtbl Int64 List
