lib/smt/sat.mli:
