lib/smt/serial.ml: Buffer Expr Int64 Printf String
