(** A cheap, sound, UNSAT-only pre-filter for feasibility queries.

    Tracks per-variable unsigned ranges, known-bit masks and forbidden
    values.  Constraint shapes it does not recognize are ignored, keeping
    the domain an over-approximation: {!verdict} [Unsat] is definitive,
    [Unknown] means "ask the SAT solver".  Most OpenFlow-agent branch
    conditions are single-field validations, which this domain decides
    instantly. *)

type t

type verdict = Unsat | Unknown

val create : unit -> t
val copy : t -> t

val add : t -> Expr.boolean -> verdict
(** Refine the domain with one constraint and report whether the
    accumulated domain became definitely empty. *)

val check : Expr.boolean list -> verdict
(** One-shot check of a conjunction with a fresh domain. *)

val suggest : t -> Expr.var -> int64 option
(** Best-effort: a value consistent with the variable's current domain. *)
