(* A satisfying assignment: Expr variable id -> concrete value.  Variables
   absent from the table are unconstrained and default to zero, which is
   also what STP reports for don't-care inputs. *)

type t = (int, int64) Hashtbl.t

let empty () : t = Hashtbl.create 8

let of_bindings bindings : t =
  let t = Hashtbl.create (List.length bindings) in
  List.iter (fun ((v : Expr.var), value) -> Hashtbl.replace t (Expr.var_id v) value) bindings;
  t

let set (t : t) v value = Hashtbl.replace t (Expr.var_id v) value

let get (t : t) v =
  match Hashtbl.find_opt t (Expr.var_id v) with
  | Some value -> Int64.logand value (Expr.mask (Expr.var_width v))
  | None -> 0L

let mem (t : t) v = Hashtbl.mem t (Expr.var_id v)

let bindings (t : t) =
  Hashtbl.fold
    (fun vid value acc ->
      match Expr.var_by_id vid with Some v -> (v, value) :: acc | None -> acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> compare (Expr.var_id a) (Expr.var_id b))

let eval_bv (t : t) e = Expr.eval_bv_memo (fun v -> get t v) e
let eval_bool (t : t) b = Expr.eval_bool_memo (fun v -> get t v) b

(* Does this model satisfy all the given constraints?  Used by tests and by
   the crosscheck phase to double-check witnesses. *)
let satisfies (t : t) conds = List.for_all (eval_bool t) conds

let pp fmt (t : t) =
  let bs = bindings t in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (v, value) ->
      Format.fprintf fmt "%s = 0x%Lx (%Lu)@ " (Expr.var_name v) value value)
    bs;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
