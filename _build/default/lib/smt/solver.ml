(* Solver frontend: the STP-shaped API that the rest of SOFT talks to.

   A query is a conjunction of boolean expressions.  The pipeline is:
   1. constant-level short-circuit (hash-consing already folded constants),
   2. the interval/bit-mask pre-filter (sound UNSAT-only),
   3. bit-blast + CDCL SAT, with model extraction on SAT.

   Results are memoized on the multiset of constraint ids; this pays off
   because path exploration re-checks shared path-condition prefixes. *)

type result = Sat of Model.t | Unsat

type stats = {
  mutable queries : int;
  mutable const_hits : int;
  mutable interval_hits : int;
  mutable cache_hits : int;
  mutable sat_calls : int;
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable solver_time : float;
}

let stats = {
  queries = 0;
  const_hits = 0;
  interval_hits = 0;
  cache_hits = 0;
  sat_calls = 0;
  sat_results = 0;
  unsat_results = 0;
  solver_time = 0.0;
}

let reset_stats () =
  stats.queries <- 0;
  stats.const_hits <- 0;
  stats.interval_hits <- 0;
  stats.cache_hits <- 0;
  stats.sat_calls <- 0;
  stats.sat_results <- 0;
  stats.unsat_results <- 0;
  stats.solver_time <- 0.0

(* cache: sorted constraint-id list -> result *)
let cache : (int list, result) Hashtbl.t = Hashtbl.create 4096

let clear_cache () = Hashtbl.reset cache

let cache_key conds = List.sort_uniq compare (List.map (fun (b : Expr.boolean) -> b.Expr.bid) conds)

let run_sat conds =
  stats.sat_calls <- stats.sat_calls + 1;
  let t0 = Unix.gettimeofday () in
  let ctx = Bitblast.create () in
  List.iter (Bitblast.assert_bool ctx) conds;
  let r =
    match Sat.solve ctx.Bitblast.sat with
    | Sat.Sat -> Sat (Bitblast.extract_model ctx)
    | Sat.Unsat -> Unsat
  in
  stats.solver_time <- stats.solver_time +. (Unix.gettimeofday () -. t0);
  r

let check ?(use_interval = true) ?(use_cache = true) conds =
  stats.queries <- stats.queries + 1;
  (* drop trivially-true conjuncts; answer immediately on any false *)
  let conds = List.filter (fun c -> not (Expr.is_true c)) conds in
  if List.exists Expr.is_false conds then begin
    stats.const_hits <- stats.const_hits + 1;
    Unsat
  end
  else if conds = [] then begin
    stats.const_hits <- stats.const_hits + 1;
    Sat (Model.empty ())
  end
  else
    let key = if use_cache then cache_key conds else [] in
    match if use_cache then Hashtbl.find_opt cache key else None with
    | Some r ->
      stats.cache_hits <- stats.cache_hits + 1;
      r
    | None ->
      let r =
        if use_interval && Interval.check conds = Interval.Unsat then begin
          stats.interval_hits <- stats.interval_hits + 1;
          Unsat
        end
        else run_sat conds
      in
      (match r with
       | Sat m ->
         stats.sat_results <- stats.sat_results + 1;
         (* sanity: the model must actually satisfy the query *)
         assert (Model.satisfies m conds)
       | Unsat -> stats.unsat_results <- stats.unsat_results + 1);
      if use_cache then Hashtbl.replace cache key r;
      r

let is_sat ?use_interval ?use_cache conds =
  match check ?use_interval ?use_cache conds with Sat _ -> true | Unsat -> false

let get_model ?use_interval ?use_cache conds =
  match check ?use_interval ?use_cache conds with Sat m -> Some m | Unsat -> None

(* Validity of an implication: pc ⊨ c  iff  pc ∧ ¬c is unsat. *)
let entails pc c = not (is_sat (Expr.not_ c :: pc))

let pp_stats fmt () =
  Format.fprintf fmt
    "queries=%d const=%d interval=%d cache=%d sat_calls=%d (sat=%d unsat=%d) time=%.3fs"
    stats.queries stats.const_hits stats.interval_hits stats.cache_hits stats.sat_calls
    stats.sat_results stats.unsat_results stats.solver_time
