(* OpenFlow 1.0 match semantics over symbolic values.

   All three agent models share these definitions: they implement the
   *specified* semantics of ofp_match (field comparison gated by wildcard
   bits, CIDR-style masks for nw_src/nw_dst).  The agents differ in
   *validation and control flow*, not in what a match means — just as the
   reference switch and Open vSwitch share the specification. *)

open Smt
module C = Openflow.Constants
module Sym_msg = Openflow.Sym_msg
module Flow_key = Packet.Flow_key

let c32 v = Expr.const ~width:32 (Int64.of_int v)
let all_ones32 = Expr.const ~width:32 0xffffffffL

(* Is wildcard bit [b] set? *)
let wildcarded (wc : Expr.bv) b = Expr.neq (Expr.logand wc (c32 b)) (c32 0)

(* CIDR mask from the 6-bit wildcard count: [n] low bits ignored, n >= 32
   means match nothing of the field. *)
let nw_mask (wc : Expr.bv) ~shift =
  let n = Expr.logand (Expr.lshr wc (c32 shift)) (c32 0x3f) in
  (* 0xffffffff << n, with n >= 32 giving 0 (barrel shifter handles it) *)
  Expr.shl all_ones32 n

let field_cond wc bit mfield kfield = Expr.or_ (wildcarded wc bit) (Expr.eq mfield kfield)

(* Does flow key [k] match [m]? A single symbolic boolean (no branching);
   agents branch on it. *)
let matches (m : Sym_msg.smatch) (k : Flow_key.t) =
  let wc = m.Sym_msg.s_wildcards in
  let nw_field shift mfield kfield =
    let mask = nw_mask wc ~shift in
    Expr.eq (Expr.logand mfield mask) (Expr.logand kfield mask)
  in
  Expr.balanced_conj
    [
      field_cond wc C.Wildcards.in_port m.s_in_port k.Flow_key.fk_in_port;
      field_cond wc C.Wildcards.dl_src m.s_dl_src k.fk_dl_src;
      field_cond wc C.Wildcards.dl_dst m.s_dl_dst k.fk_dl_dst;
      field_cond wc C.Wildcards.dl_vlan m.s_dl_vlan k.fk_dl_vlan;
      field_cond wc C.Wildcards.dl_vlan_pcp m.s_dl_vlan_pcp k.fk_dl_vlan_pcp;
      field_cond wc C.Wildcards.dl_type m.s_dl_type k.fk_dl_type;
      field_cond wc C.Wildcards.nw_tos m.s_nw_tos k.fk_nw_tos;
      field_cond wc C.Wildcards.nw_proto m.s_nw_proto k.fk_nw_proto;
      nw_field C.Wildcards.nw_src_shift m.s_nw_src k.fk_nw_src;
      nw_field C.Wildcards.nw_dst_shift m.s_nw_dst k.fk_nw_dst;
      field_cond wc C.Wildcards.tp_src m.s_tp_src k.fk_tp_src;
      field_cond wc C.Wildcards.tp_dst m.s_tp_dst k.fk_tp_dst;
    ]

(* Strict identity of two match structures: equal wildcards and equal
   values on every field not wildcarded (used by MODIFY_STRICT and
   DELETE_STRICT). *)
let strict_equal (a : Sym_msg.smatch) (b : Sym_msg.smatch) =
  let wc = a.Sym_msg.s_wildcards in
  let both_or_eq bit fa fb = Expr.or_ (wildcarded wc bit) (Expr.eq fa fb) in
  let nw_eq shift fa fb =
    let mask = nw_mask wc ~shift in
    Expr.eq (Expr.logand fa mask) (Expr.logand fb mask)
  in
  Expr.balanced_conj
    [
      Expr.eq a.s_wildcards b.Sym_msg.s_wildcards;
      both_or_eq C.Wildcards.in_port a.s_in_port b.s_in_port;
      both_or_eq C.Wildcards.dl_src a.s_dl_src b.s_dl_src;
      both_or_eq C.Wildcards.dl_dst a.s_dl_dst b.s_dl_dst;
      both_or_eq C.Wildcards.dl_vlan a.s_dl_vlan b.s_dl_vlan;
      both_or_eq C.Wildcards.dl_vlan_pcp a.s_dl_vlan_pcp b.s_dl_vlan_pcp;
      both_or_eq C.Wildcards.dl_type a.s_dl_type b.s_dl_type;
      both_or_eq C.Wildcards.nw_tos a.s_nw_tos b.s_nw_tos;
      both_or_eq C.Wildcards.nw_proto a.s_nw_proto b.s_nw_proto;
      nw_eq C.Wildcards.nw_src_shift a.s_nw_src b.s_nw_src;
      nw_eq C.Wildcards.nw_dst_shift a.s_nw_dst b.s_nw_dst;
      both_or_eq C.Wildcards.tp_src a.s_tp_src b.s_tp_src;
      both_or_eq C.Wildcards.tp_dst a.s_tp_dst b.s_tp_dst;
    ]

(* Does [outer] subsume [inner], i.e. is every packet matched by [inner]
   also matched by [outer]?  Used by non-strict MODIFY and DELETE. *)
let subsumes (outer : Sym_msg.smatch) (inner : Sym_msg.smatch) =
  let owc = outer.Sym_msg.s_wildcards and iwc = inner.Sym_msg.s_wildcards in
  (* outer must be at least as wildcarded, and agree where both are exact *)
  let f bit fo fi =
    Expr.or_ (wildcarded owc bit)
      (Expr.and_ (Expr.not_ (wildcarded iwc bit)) (Expr.eq fo fi))
  in
  let nw shift fo fi =
    let omask = nw_mask owc ~shift and imask = nw_mask iwc ~shift in
    (* outer mask must be a subset of inner's exact bits and values agree *)
    Expr.and_
      (Expr.eq (Expr.logand omask imask) omask)
      (Expr.eq (Expr.logand fo omask) (Expr.logand fi omask))
  in
  Expr.balanced_conj
    [
      f C.Wildcards.in_port outer.s_in_port inner.s_in_port;
      f C.Wildcards.dl_src outer.s_dl_src inner.s_dl_src;
      f C.Wildcards.dl_dst outer.s_dl_dst inner.s_dl_dst;
      f C.Wildcards.dl_vlan outer.s_dl_vlan inner.s_dl_vlan;
      f C.Wildcards.dl_vlan_pcp outer.s_dl_vlan_pcp inner.s_dl_vlan_pcp;
      f C.Wildcards.dl_type outer.s_dl_type inner.s_dl_type;
      f C.Wildcards.nw_tos outer.s_nw_tos inner.s_nw_tos;
      f C.Wildcards.nw_proto outer.s_nw_proto inner.s_nw_proto;
      nw C.Wildcards.nw_src_shift outer.s_nw_src inner.s_nw_src;
      nw C.Wildcards.nw_dst_shift outer.s_nw_dst inner.s_nw_dst;
      f C.Wildcards.tp_src outer.s_tp_src inner.s_tp_src;
      f C.Wildcards.tp_dst outer.s_tp_dst inner.s_tp_dst;
    ]

(* Can some packet match both [a] and [b]?  Used by CHECK_OVERLAP. *)
let overlaps (a : Sym_msg.smatch) (b : Sym_msg.smatch) =
  let awc = a.Sym_msg.s_wildcards and bwc = b.Sym_msg.s_wildcards in
  let f bit fa fb =
    Expr.or_ (Expr.or_ (wildcarded awc bit) (wildcarded bwc bit)) (Expr.eq fa fb)
  in
  let nw shift fa fb =
    let mask = Expr.logand (nw_mask awc ~shift) (nw_mask bwc ~shift) in
    Expr.eq (Expr.logand fa mask) (Expr.logand fb mask)
  in
  Expr.balanced_conj
    [
      f C.Wildcards.in_port a.s_in_port b.s_in_port;
      f C.Wildcards.dl_src a.s_dl_src b.s_dl_src;
      f C.Wildcards.dl_dst a.s_dl_dst b.s_dl_dst;
      f C.Wildcards.dl_vlan a.s_dl_vlan b.s_dl_vlan;
      f C.Wildcards.dl_vlan_pcp a.s_dl_vlan_pcp b.s_dl_vlan_pcp;
      f C.Wildcards.dl_type a.s_dl_type b.s_dl_type;
      f C.Wildcards.nw_tos a.s_nw_tos b.s_nw_tos;
      f C.Wildcards.nw_proto a.s_nw_proto b.s_nw_proto;
      nw C.Wildcards.nw_src_shift a.s_nw_src b.s_nw_src;
      nw C.Wildcards.nw_dst_shift a.s_nw_dst b.s_nw_dst;
      f C.Wildcards.tp_src a.s_tp_src b.s_tp_src;
      f C.Wildcards.tp_dst a.s_tp_dst b.s_tp_dst;
    ]

(* Is the match exact (no wildcard bit set)?  Exact-match entries take
   precedence over all wildcarded entries in OpenFlow 1.0 lookup. *)
let is_exact (m : Sym_msg.smatch) = Expr.eq m.Sym_msg.s_wildcards (c32 0)
