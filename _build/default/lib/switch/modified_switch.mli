(** The "Modified Switch" of the evaluation (§5.1.1): the Reference Switch
    with seven injected behaviour changes, two of which (M1: connection
    setup, M2: timer-driven expiry) are unreachable by SOFT's standard
    tests — the expected detection outcome is 5 of 7. *)

include Agent_intf.S

val agent : Agent_intf.t

type injected = {
  inj_id : string;  (** M1..M7 *)
  inj_description : string;
  inj_detectable : bool;  (** reachable through SOFT's standard test inputs? *)
}

val injected_modifications : injected list

val attribute_inconsistency :
  test:string -> key_a:string -> key_b:string -> string option
(** Map an observed inconsistency (test id + the two result keys) back to
    the injected modification it reveals — mechanizing the manual triage of
    the paper's detection experiment. *)
