(* Model of Open vSwitch 1.0.0's OpenFlow agent (80K LoC of C in the
   paper's evaluation).  Written independently of [Ref_core] — the two code
   bases implement the same specification with different structure, which
   is precisely what SOFT crosschecks.

   The documented OVS behaviours encoded here (paper §5.1.2):
   - strict upfront validation of action arguments: a VLAN id that does not
     fit in 12 bits, a ToS with nonzero low bits, or a PCP above 7 make OVS
     *silently ignore the whole message* (no error);
   - an OUTPUT port above a configurable maximum is rejected with an error;
   - an unknown buffer_id draws an error message, but a Flow Mod still
     installs the flow;
   - actions are validated before buffers are consulted (opposite order
     from the reference switch);
   - invalid or unknown statistics requests are answered with an error;
   - OFPP_NORMAL is supported (traditional forwarding path);
   - emergency flow entries are not supported;
   - a rule whose match pins in_port to the OUTPUT port is accepted, and
     matching packets are dropped at forwarding time. *)

open Smt
module Engine = Symexec.Engine
module Coverage = Symexec.Coverage
module Trace = Openflow.Trace
module Sym_msg = Openflow.Sym_msg
module C = Openflow.Constants
module AC = Agent_common

module Impl : Agent_intf.S = struct
  let name = "ovs"

  type state = AC.state

  let config = AC.default_config

  (* OVS validates output ports against its datapath's maximum port count *)
  let max_ports = 255

  let c16 = AC.c16
  let c32 = AC.c32

  (* ---- coverage instrumentation ---- *)

  let pt n = Coverage.instr name n
  let bp n = Coverage.branch name n

  let pt_init = pt "init"
  let pt_conn = pt "conn.setup"
  let pt_rconn_hello = pt "rconn.hello"
  let bp_rconn_version = bp "rconn.version_ok"
  let pt_msg_entry = pt "ofproto.handle_msg"
  let bp_msg_len = bp "ofproto.len_ok"
  let pt_msg_blocked = pt "ofproto.blocked"
  let pt_hello = pt "ofproto.hello"
  let pt_echo = pt "ofproto.echo"
  let pt_features = pt "ofproto.features"
  let pt_get_config = pt "ofproto.get_config"
  let pt_set_config = pt "ofproto.set_config"
  let bp_set_config_len = bp "ofproto.set_config.len"
  let pt_barrier = pt "ofproto.barrier"
  let pt_vendor = pt "ofproto.vendor"
  let bp_vendor_nicira = bp "ofproto.vendor.nicira"
  let pt_bad_type = pt "ofproto.bad_type"
  let pt_po_entry = pt "ofproto.packet_out"
  let bp_po_len = bp "ofproto.packet_out.len"
  let pt_po_validate = pt "validate.actions"
  let bp_po_buffer = bp "ofproto.packet_out.buffer"
  let pt_po_buffer_err = pt "ofproto.packet_out.buffer_unknown"
  let pt_po_execute = pt "xlate.execute"
  let pt_fm_entry = pt "ofproto.flow_mod"
  let bp_fm_len = bp "ofproto.flow_mod.len"
  let bp_fm_emerg = bp "ofproto.flow_mod.emerg"
  let pt_fm_emerg_unsupported = pt "ofproto.flow_mod.emerg_unsupported"
  let bp_fm_overlap_flag = bp "ofproto.flow_mod.check_overlap"
  let pt_fm_overlap_err = pt "ofproto.flow_mod.overlap_error"
  let pt_fm_add = pt "ofproto.flow_mod.add"
  let pt_fm_modify = pt "ofproto.flow_mod.modify"
  let pt_fm_modify_strict = pt "ofproto.flow_mod.modify_strict"
  let pt_fm_delete = pt "ofproto.flow_mod.delete"
  let pt_fm_delete_strict = pt "ofproto.flow_mod.delete_strict"
  let pt_fm_bad_command = pt "ofproto.flow_mod.bad_command"
  let bp_fm_buffer = bp "ofproto.flow_mod.buffer"
  let pt_fm_buffer_err = pt "ofproto.flow_mod.buffer_unknown"
  let pt_fm_flow_removed = pt "ofproto.flow_mod.send_flow_removed"
  let pt_fm_normalize = pt "ofputil.normalize_rule"
  let bp_norm_ip = bp "ofputil.normalize.is_ip"
  let bp_norm_tp = bp "ofputil.normalize.has_transport"
  let pt_stats_entry = pt "ofproto.stats"
  let bp_stats_len = bp "ofproto.stats.len"
  let pt_stats_desc = pt "stats.desc"
  let pt_stats_flow = pt "stats.flow"
  let pt_stats_aggregate = pt "stats.aggregate"
  let pt_stats_table = pt "stats.table"
  let pt_stats_port = pt "stats.port"
  let pt_stats_queue = pt "stats.queue"
  let pt_stats_unknown = pt "stats.bad_stat"
  let pt_qgc = pt "ofproto.queue_get_config"
  let bp_qgc_valid = bp "ofproto.queue_get_config.valid"
  let pt_port_mod = pt "ofproto.port_mod"
  let bp_val_type = bp "validate.action_type"
  let bp_val_len = bp "validate.action_len"
  let bp_val_vlan_vid = bp "validate.vlan_vid_range"
  let bp_val_vlan_pcp = bp "validate.vlan_pcp_range"
  let bp_val_tos = bp "validate.tos_bits"
  let bp_val_port_range = bp "validate.port_range"
  let bp_val_port_special = bp "validate.port_special"
  let pt_val_enqueue = pt "validate.enqueue"
  let pt_val_vendor_action = pt "validate.vendor_action"
  let pt_act_output = pt "xlate.output"
  let bp_act_out_phys = bp "xlate.output.phys"
  let pt_act_out_in_port = pt "xlate.output.in_port"
  let pt_act_out_table = pt "xlate.output.table"
  let pt_act_out_normal = pt "xlate.output.normal"
  let pt_act_out_flood = pt "xlate.output.flood"
  let pt_act_out_all = pt "xlate.output.all"
  let pt_act_out_ctrl = pt "xlate.output.controller"
  let pt_act_out_local = pt "xlate.output.local"
  let pt_act_mod_field = pt "xlate.mod_field"
  let pt_probe_entry = pt "dp.receive"
  let bp_probe_match = bp "dp.classifier_match"
  let pt_probe_miss = pt "dp.miss_upcall"
  let pt_probe_apply = pt "dp.apply_actions"
  let pt_probe_drop = pt "dp.drop"

  (* code present but unreachable through SOFT's control-channel tests *)
  let pt_timer_expire = pt "timer.expire_flows"
  let pt_timer_flow_removed = pt "timer.send_flow_removed"
  let pt_netdev_status = pt "netdev.port_status"
  let pt_conn_teardown = pt "rconn.teardown"
  let pt_bundle = pt "bond.rebalance"
  let pt_cfm = pt "cfm.monitor"

  exception Msg_error of int * int
  exception Silent_ignore (* strict validation failed: drop whole message *)

  let error t code = raise (Msg_error (t, code))

  let init () = AC.initial_state ()

  let connection_setup env st =
    Engine.cover env pt_init;
    Engine.cover env pt_conn;
    Engine.cover env pt_rconn_hello;
    let peer_version = Expr.const ~width:8 (Int64.of_int C.version) in
    ignore
      (Engine.branch ~loc:bp_rconn_version env
         (Expr.eq peer_version (Expr.const ~width:8 1L)));
    st

  (* ---- upfront action validation (ofp-actions validation pass) -------- *)

  let is_type env (a : Sym_msg.saction) t = Engine.branch_eq env a.Sym_msg.a_type (Int64.of_int t)

  let check_len env (a : Sym_msg.saction) expected =
    if not (Engine.branch ~loc:bp_val_len env (Expr.eq a.Sym_msg.a_len (c16 expected))) then
      error C.Error_type.bad_action C.Bad_action.bad_len

  (* Validate one OUTPUT port value.  Specials are accepted; physical ports
     are checked against [max_ports] (the configurable maximum). *)
  let validate_output_port env port =
    if
      Engine.branch ~loc:bp_val_port_special env
        (Expr.uge port (c16 C.Port.in_port))
    then begin
      (* one of the eight reserved values: all accepted at validation *)
      ()
    end
    else if
      Engine.branch ~loc:bp_val_port_range env
        (Expr.and_ (Expr.uge port (c16 1)) (Expr.ule port (c16 max_ports)))
    then ()
    else error C.Error_type.bad_action C.Bad_action.bad_out_port

  (* The strict validation pass over an action list.  Raises
     [Silent_ignore] for bad field values (the documented silent drop) and
     [Msg_error] for structural problems. *)
  let validate_actions env actions =
    Engine.cover env pt_po_validate;
    List.iter
      (fun (a : Sym_msg.saction) ->
        if is_type env a C.Action_type.output then begin
          check_len env a 8;
          validate_output_port env (Sym_msg.body_u16 a 0)
        end
        else if is_type env a C.Action_type.set_vlan_vid then begin
          check_len env a 8;
          let vid = Sym_msg.body_u16 a 0 in
          if not (Engine.branch ~loc:bp_val_vlan_vid env (Expr.ule vid (c16 0xfff))) then
            raise Silent_ignore
        end
        else if is_type env a C.Action_type.set_vlan_pcp then begin
          check_len env a 8;
          let pcp = Sym_msg.body_u8 a 0 in
          if not (Engine.branch ~loc:bp_val_vlan_pcp env (Expr.ule pcp (AC.c8 7))) then
            raise Silent_ignore
        end
        else if is_type env a C.Action_type.strip_vlan then check_len env a 8
        else if is_type env a C.Action_type.set_dl_src || is_type env a C.Action_type.set_dl_dst
        then check_len env a 16
        else if is_type env a C.Action_type.set_nw_src || is_type env a C.Action_type.set_nw_dst
        then check_len env a 8
        else if is_type env a C.Action_type.set_nw_tos then begin
          check_len env a 8;
          let tos = Sym_msg.body_u8 a 0 in
          if
            not
              (Engine.branch ~loc:bp_val_tos env
                 (Expr.eq (Expr.logand tos (AC.c8 0x3)) (AC.c8 0)))
          then raise Silent_ignore
        end
        else if is_type env a C.Action_type.set_tp_src || is_type env a C.Action_type.set_tp_dst
        then check_len env a 8
        else if is_type env a C.Action_type.enqueue then begin
          Engine.cover env pt_val_enqueue;
          check_len env a 16;
          (* no queues configured *)
          error C.Error_type.bad_action C.Bad_action.bad_queue
        end
        else if is_type env a C.Action_type.vendor then begin
          Engine.cover env pt_val_vendor_action;
          error C.Error_type.bad_action C.Bad_action.bad_vendor
        end
        else begin
          ignore (Engine.branch ~loc:bp_val_type env Expr.fls);
          error C.Error_type.bad_action C.Bad_action.bad_type
        end)
      actions

  (* ---- action translation/execution (xlate) --------------------------- *)

  let rec do_output env st ?(from_table = false) ~in_port ~(sink : AC.sink) pkt port =
    Engine.cover env pt_act_output;
    if
      Engine.branch ~loc:bp_act_out_phys env
        (Expr.and_ (Expr.uge port (c16 1)) (Expr.ule port (c16 config.AC.nports)))
    then begin
      (* classifier refuses to send a packet back out its input port *)
      if Engine.branch env (Expr.eq port in_port) then () else sink.AC.tx env ~port pkt
    end
    else if Engine.branch env (Expr.ule port (c16 max_ports)) then
      (* validated range but no such datapath port: dropped *)
      ()
    else if Engine.branch_eq env port (Int64.of_int C.Port.in_port) then begin
      Engine.cover env pt_act_out_in_port;
      sink.AC.tx env ~port:in_port pkt
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.table) then begin
      Engine.cover env pt_act_out_table;
      if from_table then () (* resubmit from a flow entry: refused *)
      else run_through_table env st ~in_port ~sink pkt
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.normal) then begin
      Engine.cover env pt_act_out_normal;
      (* traditional L2 forwarding path: supported by OVS *)
      sink.AC.tx env ~port pkt
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.flood) then begin
      Engine.cover env pt_act_out_flood;
      AC.fanout env config ~in_port ~except_in_port:true pkt sink
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.all) then begin
      Engine.cover env pt_act_out_all;
      AC.fanout env config ~in_port ~except_in_port:true pkt sink
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.controller) then begin
      Engine.cover env pt_act_out_ctrl;
      sink.AC.to_controller env ~reason:C.Packet_in_reason.action pkt
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.local) then begin
      Engine.cover env pt_act_out_local;
      sink.AC.tx env ~port pkt
    end
    else
      (* OFPP_NONE: validated earlier as "special", dropped at xlate *)
      ()

  and run_through_table env st ~in_port ~sink pkt =
    let key = Packet.Flow_key.extract env ~in_port pkt in
    match Flow_table.lookup env st.AC.table key with
    | Some entry ->
      ignore (apply_actions env st ~from_table:true ~in_port ~sink pkt entry.Flow_table.e_actions)
    | None -> ()

  (* Execution assumes validation already passed; no value branching is
     repeated here (values are known in range). *)
  and apply_action env st ?(from_table = false) ~in_port ~sink pkt (a : Sym_msg.saction) =
    if is_type env a C.Action_type.output then begin
      do_output env st ~from_table ~in_port ~sink pkt (Sym_msg.body_u16 a 0);
      pkt
    end
    else begin
      Engine.cover env pt_act_mod_field;
      if is_type env a C.Action_type.set_vlan_vid then
        AC.set_vlan_vid pkt (Sym_msg.body_u16 a 0)
      else if is_type env a C.Action_type.set_vlan_pcp then
        AC.set_vlan_pcp pkt (Sym_msg.body_u8 a 0)
      else if is_type env a C.Action_type.strip_vlan then AC.strip_vlan pkt
      else if is_type env a C.Action_type.set_dl_src then AC.set_dl_src pkt (Sym_msg.body_mac a 0)
      else if is_type env a C.Action_type.set_dl_dst then AC.set_dl_dst pkt (Sym_msg.body_mac a 0)
      else if is_type env a C.Action_type.set_nw_src then AC.set_nw_src pkt (Sym_msg.body_u32 a 0)
      else if is_type env a C.Action_type.set_nw_dst then AC.set_nw_dst pkt (Sym_msg.body_u32 a 0)
      else if is_type env a C.Action_type.set_nw_tos then AC.set_nw_tos pkt (Sym_msg.body_u8 a 0)
      else if is_type env a C.Action_type.set_tp_src then AC.set_tp_src pkt (Sym_msg.body_u16 a 0)
      else if is_type env a C.Action_type.set_tp_dst then AC.set_tp_dst pkt (Sym_msg.body_u16 a 0)
      else pkt
    end

  and apply_actions env st ?(from_table = false) ~in_port ~sink pkt actions =
    List.fold_left (fun pkt a -> apply_action env st ~from_table ~in_port ~sink pkt a) pkt actions

  (* ---- handlers -------------------------------------------------------- *)

  let handle_packet_out env st (msg : Sym_msg.t) (po : Sym_msg.spacket_out) =
    Engine.cover env pt_po_entry;
    (match AC.check_length env msg ~expected:16 ~exact:false with
     | `Short ->
       ignore (Engine.branch ~loc:bp_po_len env Expr.fls);
       error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ignore (Engine.branch ~loc:bp_po_len env Expr.tru));
    (* actions are validated before buffers are consulted *)
    validate_actions env po.Sym_msg.spo_actions;
    if
      Engine.branch ~loc:bp_po_buffer env
        (Expr.neq po.Sym_msg.spo_buffer_id (c32 0xffffffff))
    then begin
      Engine.cover env pt_po_buffer_err;
      error C.Error_type.bad_request C.Bad_request.buffer_unknown
    end;
    match po.Sym_msg.spo_data with
    | None -> st
    | Some pkt ->
      Engine.cover env pt_po_execute;
      let in_port = po.Sym_msg.spo_in_port in
      let sink = AC.packet_out_sink ~in_port ~frame_len:64 in
      ignore (apply_actions env st ~in_port ~sink pkt po.Sym_msg.spo_actions);
      st

  (* ofputil_normalize_rule: fields that cannot be matched given the
     dl_type / nw_proto in the match are forced to wildcards and zeroed.
     The reference switch stores matches raw — a genuine behavioural
     difference between the two code bases. *)
  let normalize_match env (m : Sym_msg.smatch) =
    Engine.cover env pt_fm_normalize;
    let wc = m.Sym_msg.s_wildcards in
    let exact bit = Expr.eq (Expr.logand wc (c32 bit)) (c32 0) in
    let is_ip =
      Expr.and_ (exact C.Wildcards.dl_type)
        (Expr.eq m.s_dl_type (c16 Packet.Constants_pkt.eth_type_ip))
    in
    if Engine.branch ~loc:bp_norm_ip env is_ip then begin
      let transport p = Expr.eq m.s_nw_proto (AC.c8 p) in
      let has_tp =
        Expr.and_ (exact C.Wildcards.nw_proto)
          (Expr.or_
             (transport Packet.Constants_pkt.proto_tcp)
             (Expr.or_
                (transport Packet.Constants_pkt.proto_udp)
                (transport Packet.Constants_pkt.proto_icmp)))
      in
      if Engine.branch ~loc:bp_norm_tp env has_tp then m
      else
        {
          m with
          Sym_msg.s_wildcards =
            Expr.logor wc (c32 C.Wildcards.(tp_src lor tp_dst));
          s_tp_src = c16 0;
          s_tp_dst = c16 0;
        }
    end
    else
      {
        m with
        Sym_msg.s_wildcards =
          Expr.logor wc
            (c32
               C.Wildcards.(
                 nw_tos lor nw_proto lor tp_src lor tp_dst lor nw_src_all lor nw_dst_all));
        s_nw_tos = AC.c8 0;
        s_nw_proto = AC.c8 0;
        s_nw_src = c32 0;
        s_nw_dst = c32 0;
        s_tp_src = c16 0;
        s_tp_dst = c16 0;
      }

  let install_entry env st (fm : Sym_msg.sflow_mod) =
    let check_overlap_set =
      Engine.branch ~loc:bp_fm_overlap_flag env
        (Expr.neq
           (Expr.logand fm.Sym_msg.sfm_flags (c16 C.Flow_mod_flags.check_overlap))
           (c16 0))
    in
    if check_overlap_set then begin
      let entry = Flow_table.entry_of_flow_mod fm 0 in
      if Flow_table.check_overlap env st.AC.table entry then begin
        Engine.cover env pt_fm_overlap_err;
        error C.Error_type.flow_mod_failed C.Flow_mod_failed.overlap
      end
    end;
    {
      st with
      AC.table = Flow_table.add env st.AC.table (Flow_table.entry_of_flow_mod ~now:st.AC.clock fm 0);
    }

  let handle_flow_mod env st (msg : Sym_msg.t) (fm : Sym_msg.sflow_mod) =
    Engine.cover env pt_fm_entry;
    (match AC.check_length env msg ~expected:C.Sizes.flow_mod ~exact:false with
     | `Short ->
       ignore (Engine.branch ~loc:bp_fm_len env Expr.fls);
       error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ignore (Engine.branch ~loc:bp_fm_len env Expr.tru));
    (* normalize the match like ofputil does, then validate actions *)
    let fm = { fm with Sym_msg.sfm_match = normalize_match env fm.Sym_msg.sfm_match } in
    validate_actions env fm.Sym_msg.sfm_actions;
    (* no emergency flow support *)
    if
      Engine.branch ~loc:bp_fm_emerg env
        (Expr.neq (Expr.logand fm.sfm_flags (c16 C.Flow_mod_flags.emerg)) (c16 0))
    then begin
      Engine.cover env pt_fm_emerg_unsupported;
      error C.Error_type.flow_mod_failed C.Flow_mod_failed.unsupported
    end;
    let cmd = fm.Sym_msg.sfm_command in
    let st =
      if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.add) then begin
        Engine.cover env pt_fm_add;
        install_entry env st fm
      end
      else if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.modify) then begin
        Engine.cover env pt_fm_modify;
        let table', changed = Flow_table.modify env st.AC.table fm in
        if changed then { st with AC.table = table' } else install_entry env st fm
      end
      else if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.modify_strict) then begin
        Engine.cover env pt_fm_modify_strict;
        let table', changed = Flow_table.modify_strict env st.AC.table fm in
        if changed then { st with AC.table = table' } else install_entry env st fm
      end
      else if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.delete) then begin
        Engine.cover env pt_fm_delete;
        let table', removed = Flow_table.delete env ~strict:false st.AC.table fm in
        List.iter
          (fun (e : Flow_table.entry) ->
            if
              Engine.branch env
                (Expr.neq
                   (Expr.logand e.Flow_table.e_flags (c16 C.Flow_mod_flags.send_flow_rem))
                   (c16 0))
            then begin
              Engine.cover env pt_fm_flow_removed;
              Engine.emit env
                (Trace.Msg_out
                   (Trace.O_flow_removed { o_fr_reason = C.Flow_removed_reason.delete }))
            end)
          removed;
        { st with AC.table = table' }
      end
      else if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.delete_strict) then begin
        Engine.cover env pt_fm_delete_strict;
        let table', removed = Flow_table.delete env ~strict:true st.AC.table fm in
        List.iter
          (fun (e : Flow_table.entry) ->
            if
              Engine.branch env
                (Expr.neq
                   (Expr.logand e.Flow_table.e_flags (c16 C.Flow_mod_flags.send_flow_rem))
                   (c16 0))
            then begin
              Engine.cover env pt_fm_flow_removed;
              Engine.emit env
                (Trace.Msg_out
                   (Trace.O_flow_removed { o_fr_reason = C.Flow_removed_reason.delete }))
            end)
          removed;
        { st with AC.table = table' }
      end
      else begin
        Engine.cover env pt_fm_bad_command;
        error C.Error_type.flow_mod_failed C.Flow_mod_failed.bad_command
      end
    in
    (* buffered packet: the buffer does not exist — reply with an error,
       but the flow stays installed (paper §5.1.2, lack-of-error finding) *)
    if
      Engine.branch ~loc:bp_fm_buffer env
        (Expr.neq fm.Sym_msg.sfm_buffer_id (c32 0xffffffff))
    then begin
      Engine.cover env pt_fm_buffer_err;
      AC.send_error env ~err_type:C.Error_type.bad_request
        ~err_code:C.Bad_request.buffer_unknown;
      st
    end
    else st

  (* flow/aggregate requests dispatch on table_id: 0xff = all tables,
     0xfe = emergency, a specific id otherwise *)
  let table_scope env (s : Sym_msg.sstats_request) =
    let tid = s.Sym_msg.ssr_table_id in
    if Engine.branch_eq env tid 0xffL then `All
    else if Engine.branch_eq env tid 0xfeL then `Emergency
    else if Engine.branch_eq env tid 0L then `Table0
    else `No_such_table

  let flow_stats_digest env st (s : Sym_msg.sstats_request) =
    match table_scope env s with
    | `No_such_table -> "flows=0,table=none"
    | (`All | `Emergency | `Table0) as scope ->
      let entries =
        match scope with
        | `Emergency -> Flow_table.entries st.AC.emerg_table
        | `All -> Flow_table.entries st.AC.table @ Flow_table.entries st.AC.emerg_table
        | `Table0 -> Flow_table.entries st.AC.table
      in
      let n =
        List.fold_left
          (fun acc (e : Flow_table.entry) ->
            if
              Engine.branch env
                (Expr.and_
                   (Match_sem.subsumes s.Sym_msg.ssr_match e.Flow_table.e_match)
                   (Flow_table.entry_outputs_to e s.Sym_msg.ssr_out_port))
            then acc + 1
            else acc)
          0 entries
      in
      Printf.sprintf "flows=%d" n

  let handle_stats_request env st (msg : Sym_msg.t) (s : Sym_msg.sstats_request) =
    Engine.cover env pt_stats_entry;
    (match AC.check_length env msg ~expected:C.Sizes.stats_request ~exact:false with
     | `Short ->
       ignore (Engine.branch ~loc:bp_stats_len env Expr.fls);
       error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ignore (Engine.branch ~loc:bp_stats_len env Expr.tru));
    let typ = s.Sym_msg.ssr_type in
    let reply stype body =
      Engine.emit env
        (Trace.Msg_out (Trace.O_stats_reply { o_stats_type = stype; o_stats_body = body }))
    in
    let need_exact_len n =
      match AC.check_length env msg ~expected:n ~exact:true with
      | `Ok -> ()
      | `Short -> error C.Error_type.bad_request C.Bad_request.bad_len
      | `Blocked ->
        Engine.cover env pt_msg_blocked;
        Engine.stop env
    in
    if Engine.branch_eq env typ (Int64.of_int C.Stats_type.desc) then begin
      Engine.cover env pt_stats_desc;
      need_exact_len 12;
      reply C.Stats_type.desc "desc"
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.flow) then begin
      Engine.cover env pt_stats_flow;
      need_exact_len 56;
      reply C.Stats_type.flow (flow_stats_digest env st s)
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.aggregate) then begin
      Engine.cover env pt_stats_aggregate;
      need_exact_len 56;
      reply C.Stats_type.aggregate ("agg:" ^ flow_stats_digest env st s)
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.table) then begin
      Engine.cover env pt_stats_table;
      need_exact_len 12;
      reply C.Stats_type.table
        (Printf.sprintf "tables=1,active=%d" (Flow_table.size st.AC.table))
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.port) then begin
      Engine.cover env pt_stats_port;
      need_exact_len 20;
      let port = s.Sym_msg.ssr_port_no in
      if
        Engine.branch env
          (Expr.or_
             (Expr.eq port (c16 C.Port.none))
             (Expr.and_ (Expr.uge port (c16 1)) (Expr.ule port (c16 config.AC.nports))))
      then reply C.Stats_type.port "ports"
      else reply C.Stats_type.port "ports-empty"
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.queue) then begin
      Engine.cover env pt_stats_queue;
      need_exact_len 20;
      reply C.Stats_type.queue "queues-empty"
    end
    else begin
      (* invalid or unknown request: answered with an error *)
      Engine.cover env pt_stats_unknown;
      error C.Error_type.bad_request C.Bad_request.bad_stat
    end;
    st

  let handle_queue_get_config env st (msg : Sym_msg.t) port =
    Engine.cover env pt_qgc;
    (match AC.check_length env msg ~expected:C.Sizes.queue_get_config_request ~exact:true with
     | `Short -> error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ());
    if
      Engine.branch ~loc:bp_qgc_valid env
        (Expr.and_ (Expr.uge port (c16 1)) (Expr.ule port (c16 config.AC.nports)))
    then begin
      Engine.emit env
        (Trace.Msg_out (Trace.O_queue_config_reply { o_q_port = port; o_n_queues = 0 }));
      st
    end
    else error C.Error_type.queue_op_failed C.Queue_op_failed.bad_port

  let handle_set_config env st (msg : Sym_msg.t) (sc : Sym_msg.sswitch_config) =
    Engine.cover env pt_set_config;
    (match AC.check_length env msg ~expected:C.Sizes.switch_config ~exact:true with
     | `Short ->
       ignore (Engine.branch ~loc:bp_set_config_len env Expr.fls);
       error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ignore (Engine.branch ~loc:bp_set_config_len env Expr.tru));
    (* ofproto dispatches on the fragment mode; OVS 1.0 treats the invalid
       encoding (3) as NORMAL, matching the reference switch's leniency *)
    let frag = Expr.logand sc.Sym_msg.scfg_flags (c16 C.Config_flags.frag_mask) in
    ignore
      (if Engine.branch_eq env frag (Int64.of_int C.Config_flags.frag_normal) then 0
       else if Engine.branch_eq env frag (Int64.of_int C.Config_flags.frag_drop) then 1
       else if Engine.branch_eq env frag (Int64.of_int C.Config_flags.frag_reasm) then 2
       else 3);
    { st with AC.miss_send_len = sc.Sym_msg.smiss_send_len; AC.frag_flags = sc.Sym_msg.scfg_flags }

  (* ---- dispatch --------------------------------------------------------- *)

  let is_msg_type env (msg : Sym_msg.t) t = Engine.branch_eq env msg.Sym_msg.sm_type (Int64.of_int t)

  let raw_fallback env (msg : Sym_msg.t) ~expected : state =
    match AC.check_length env msg ~expected ~exact:false with
    | `Blocked ->
      Engine.cover env pt_msg_blocked;
      Engine.stop env
    | `Short | `Ok -> error C.Error_type.bad_request C.Bad_request.bad_len

  let handle_message env st (msg : Sym_msg.t) =
    if st.AC.blocked then st
    else begin
      Engine.cover env pt_msg_entry;
      match AC.check_length env msg ~expected:C.Sizes.header ~exact:false with
      | `Short ->
        ignore (Engine.branch ~loc:bp_msg_len env Expr.fls);
        AC.send_error env ~err_type:C.Error_type.bad_request ~err_code:C.Bad_request.bad_len;
        st
      | `Blocked ->
        Engine.cover env pt_msg_blocked;
        { st with AC.blocked = true }
      | `Ok -> (
        ignore (Engine.branch ~loc:bp_msg_len env Expr.tru);
        let module T = C.Msg_type in
        try
          if is_msg_type env msg T.hello then begin
            Engine.cover env pt_hello;
            st
          end
          else if is_msg_type env msg T.echo_request then begin
            Engine.cover env pt_echo;
            let payload = Expr.sub msg.Sym_msg.sm_length (c16 C.Sizes.header) in
            Engine.emit env (Trace.Msg_out (Trace.O_echo_reply { payload_len = payload }));
            st
          end
          else if is_msg_type env msg T.echo_reply then st
          else if is_msg_type env msg T.features_request then begin
            Engine.cover env pt_features;
            (match AC.check_length env msg ~expected:8 ~exact:true with
             | `Ok ->
               Engine.emit env
                 (Trace.Msg_out (Trace.O_features_reply { o_n_ports = config.AC.nports }))
             | `Short | `Blocked -> error C.Error_type.bad_request C.Bad_request.bad_len);
            st
          end
          else if is_msg_type env msg T.get_config_request then begin
            Engine.cover env pt_get_config;
            Engine.emit env
              (Trace.Msg_out
                 (Trace.O_get_config_reply
                    { o_flags = st.AC.frag_flags; o_miss_send_len = st.AC.miss_send_len }));
            st
          end
          else if is_msg_type env msg T.set_config then begin
            match msg.Sym_msg.sm_body with
            | Sym_msg.SSet_config sc -> handle_set_config env st msg sc
            | _ -> raw_fallback env msg ~expected:C.Sizes.switch_config
          end
          else if is_msg_type env msg T.packet_out then begin
            match msg.Sym_msg.sm_body with
            | Sym_msg.SPacket_out po -> handle_packet_out env st msg po
            | _ -> raw_fallback env msg ~expected:C.Sizes.packet_out
          end
          else if is_msg_type env msg T.flow_mod then begin
            match msg.Sym_msg.sm_body with
            | Sym_msg.SFlow_mod fm -> handle_flow_mod env st msg fm
            | _ -> raw_fallback env msg ~expected:C.Sizes.flow_mod
          end
          else if is_msg_type env msg T.stats_request then begin
            match msg.Sym_msg.sm_body with
            | Sym_msg.SStats_request s -> handle_stats_request env st msg s
            | _ -> raw_fallback env msg ~expected:C.Sizes.stats_request
          end
          else if is_msg_type env msg T.barrier_request then begin
            Engine.cover env pt_barrier;
            Engine.emit env (Trace.Msg_out Trace.O_barrier_reply);
            st
          end
          else if is_msg_type env msg T.queue_get_config_request then begin
            match msg.Sym_msg.sm_body with
            | Sym_msg.SQueue_get_config_request { sqgc_port } ->
              handle_queue_get_config env st msg sqgc_port
            | _ -> raw_fallback env msg ~expected:C.Sizes.queue_get_config_request
          end
          else if is_msg_type env msg T.port_mod then begin
            Engine.cover env pt_port_mod;
            match AC.check_length env msg ~expected:C.Sizes.port_mod ~exact:true with
            | `Ok -> st
            | `Short | `Blocked -> error C.Error_type.bad_request C.Bad_request.bad_len
          end
          else if is_msg_type env msg T.vendor then begin
            Engine.cover env pt_vendor;
            (* OVS recognizes Nicira extensions; anything else is rejected *)
            match msg.Sym_msg.sm_body with
            | Sym_msg.SVendor { sv_vendor } ->
              if
                Engine.branch ~loc:bp_vendor_nicira env
                  (Expr.eq sv_vendor (c32 0x00002320))
              then error C.Error_type.bad_request C.Bad_request.bad_subtype
              else error C.Error_type.bad_request C.Bad_request.bad_vendor
            | _ -> raw_fallback env msg ~expected:12
          end
          else begin
            Engine.cover env pt_bad_type;
            error C.Error_type.bad_request C.Bad_request.bad_type
          end
        with
        | Msg_error (t, code) ->
          AC.send_error env ~err_type:t ~err_code:code;
          st
        | Silent_ignore -> st)
    end

  (* ---- data plane -------------------------------------------------------- *)

  let handle_packet env st ~probe_id ~in_port pkt =
    if st.AC.blocked then st
    else begin
      Engine.cover env pt_probe_entry;
      let key = Packet.Flow_key.extract env ~in_port pkt in
      let hit = Flow_table.lookup env st.AC.table key in
      ignore
        (Engine.branch ~loc:bp_probe_match env
           (Expr.of_bool (match hit with Some _ -> true | None -> false)));
      match hit with
      | None ->
        Engine.cover env pt_probe_miss;
        AC.packet_in_miss env st ~in_port ~frame_len:64 pkt;
        st
      | Some entry ->
        Engine.cover env pt_probe_apply;
        let sink = AC.probe_sink ~probe_id ~in_port in
        let before = Engine.event_count env in
        ignore (apply_actions env st ~from_table:true ~in_port ~sink pkt entry.Flow_table.e_actions);
        if Engine.event_count env = before then begin
          Engine.cover env pt_probe_drop;
          Engine.emit env (Trace.Probe_response { probe_id; response = Trace.Probe_dropped })
        end;
        st
    end

  (* Virtual-time extension: OVS's flow expiration sweep. *)
  let advance_time env st ~seconds =
    let now = st.AC.clock + seconds in
    let expired_cond (e : Flow_table.entry) =
      let elapsed = c16 (now - e.Flow_table.e_installed_at) in
      let active t = Expr.neq t (c16 0) in
      Expr.or_
        (Expr.and_ (active e.Flow_table.e_hard_timeout)
           (Expr.uge elapsed e.Flow_table.e_hard_timeout))
        (Expr.and_ (active e.Flow_table.e_idle_timeout)
           (Expr.uge elapsed e.Flow_table.e_idle_timeout))
    in
    let expired, kept =
      List.partition
        (fun e ->
          Engine.cover env pt_timer_expire;
          Engine.branch env (expired_cond e))
        (Flow_table.entries st.AC.table)
    in
    List.iter
      (fun (e : Flow_table.entry) ->
        if
          Engine.branch env
            (Expr.neq
               (Expr.logand e.Flow_table.e_flags (c16 C.Flow_mod_flags.send_flow_rem))
               (c16 0))
        then begin
          Engine.cover env pt_timer_flow_removed;
          Engine.emit env
            (Trace.Msg_out
               (Trace.O_flow_removed { o_fr_reason = C.Flow_removed_reason.idle_timeout }))
        end)
      expired;
    { st with AC.clock = now; AC.table = { st.AC.table with Flow_table.entries = kept } }

  let _ = (pt_netdev_status, pt_conn_teardown, pt_bundle, pt_cfm)
end

include Impl

let agent : Agent_intf.t = (module Impl)
