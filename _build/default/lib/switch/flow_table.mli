(** The switch flow-table substrate: a priority-ordered rule store whose
    entries may carry symbolic match fields, priorities and actions.
    Query operations take the engine environment and branch where outcomes
    depend on symbolic data; SOFT's tables stay small (a handful of
    entries), so per-entry branching is tractable — exactly why the
    paper's input sequences are short. *)

open Smt
module Sym_msg = Openflow.Sym_msg

type entry = {
  e_match : Sym_msg.smatch;
  e_priority : Expr.bv;  (** 16 *)
  e_cookie : Expr.bv;  (** 64 *)
  e_idle_timeout : Expr.bv;  (** 16 *)
  e_hard_timeout : Expr.bv;  (** 16 *)
  e_flags : Expr.bv;  (** 16 *)
  e_actions : Sym_msg.saction list;
  e_emergency : bool;
  e_id : int;  (** insertion order; deterministic tie-breaking *)
  e_installed_at : int;  (** virtual-time install instant *)
}

type t = { entries : entry list; next_id : int }

val empty : t
val size : t -> int
val entries : t -> entry list
val iter : (entry -> unit) -> t -> unit

val entry_of_flow_mod :
  ?emergency:bool -> ?now:int -> Sym_msg.sflow_mod -> int -> entry

val entry_outputs_to : entry -> Expr.bv -> Expr.boolean
(** Does the entry emit to the port through some OUTPUT action?  OFPP_NONE
    means no filter (always true). *)

val lookup :
  'ev Symexec.Engine.env -> t -> Packet.Flow_key.t -> entry option
(** Highest-priority matching entry; exact-match entries outrank all
    wildcarded ones; priority ties resolve to the older entry. *)

val add : 'ev Symexec.Engine.env -> t -> entry -> t
(** ADD semantics: an existing entry with identical match and priority is
    replaced. *)

val check_overlap : 'ev Symexec.Engine.env -> t -> entry -> bool
(** Does the entry overlap an existing same-priority entry? *)

val modify : 'ev Symexec.Engine.env -> t -> Sym_msg.sflow_mod -> t * bool
(** Non-strict MODIFY; the flag reports whether anything changed (a no-op
    MODIFY acts as ADD per the 1.0 spec — the caller handles that). *)

val modify_strict : 'ev Symexec.Engine.env -> t -> Sym_msg.sflow_mod -> t * bool

val delete :
  'ev Symexec.Engine.env -> strict:bool -> t -> Sym_msg.sflow_mod -> t * entry list
(** DELETE / DELETE_STRICT with the out_port filter; returns the removed
    entries (for flow-removed notifications). *)
