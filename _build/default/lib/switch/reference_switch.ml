(* The OpenFlow 1.0 Reference Switch model: [Ref_core] with its stock
   behaviour. *)

module Impl = Ref_core.Make (struct
  let name = "reference"
  let quirks = Ref_core.reference_quirks
end)

include Impl

let agent : Agent_intf.t = (module Impl)
