(* The interface every OpenFlow agent model implements.  The harness drives
   agents exclusively through this signature — mirroring how SOFT treats
   vendors' agents as opaque binaries behind the OpenFlow and dataplane
   interfaces. *)

module Engine = Symexec.Engine
module Trace = Openflow.Trace
module Sym_msg = Openflow.Sym_msg

module type S = sig
  val name : string

  type state

  (* Fresh switch state after process start. *)
  val init : unit -> state

  (* Connection establishment with the controller (hello exchange); runs
     with concrete data before symbolic inputs are injected, like SOFT's
     test driver (paper §4.1). *)
  val connection_setup : Trace.event Engine.env -> state -> state

  (* Process one OpenFlow control message. *)
  val handle_message : Trace.event Engine.env -> state -> Sym_msg.t -> state

  (* Advance the agent's virtual clock, firing flow timeouts — the time
     extension sketched as future work in the paper (§5.1.1, MODIST-style).
     Timer behaviour is unreachable through the standard Table-1 tests. *)
  val advance_time :
    Trace.event Engine.env -> state -> seconds:int -> state

  (* Receive a packet on the data plane (the harness's probes). *)
  val handle_packet :
    Trace.event Engine.env ->
    state ->
    probe_id:int ->
    in_port:Smt.Expr.bv ->
    Packet.Sym_packet.t ->
    state
end

type t = (module S)

let name (module A : S) = A.name
