(* The switch flow table substrate: a priority-ordered rule store whose
   entries may carry symbolic match fields, priorities and actions (they
   come from symbolic Flow Mod messages).  Query operations take the
   engine environment and branch where outcomes depend on symbolic data;
   tables stay small in SOFT's tests (at most a handful of entries), so
   per-entry branching is tractable — this is exactly why the paper's
   input sequences are short. *)

open Smt
module Engine = Symexec.Engine
module Sym_msg = Openflow.Sym_msg
module Trace = Openflow.Trace
module C = Openflow.Constants

type entry = {
  e_match : Sym_msg.smatch;
  e_priority : Expr.bv; (* 16 *)
  e_cookie : Expr.bv; (* 64 *)
  e_idle_timeout : Expr.bv; (* 16 *)
  e_hard_timeout : Expr.bv; (* 16 *)
  e_flags : Expr.bv; (* 16 *)
  e_actions : Sym_msg.saction list;
  e_emergency : bool;
  e_id : int; (* insertion order, for deterministic tie-breaking *)
  e_installed_at : int; (* virtual-time install instant (time extension) *)
}

type t = { entries : entry list (* insertion order *); next_id : int }

let empty = { entries = []; next_id = 0 }

let size t = List.length t.entries

let entry_of_flow_mod ?(emergency = false) ?(now = 0) (fm : Sym_msg.sflow_mod) id =
  {
    e_match = fm.Sym_msg.sfm_match;
    e_priority = fm.sfm_priority;
    e_cookie = fm.sfm_cookie;
    e_idle_timeout = fm.sfm_idle_timeout;
    e_hard_timeout = fm.sfm_hard_timeout;
    e_flags = fm.sfm_flags;
    e_actions = fm.sfm_actions;
    e_emergency = emergency;
    e_id = id;
    e_installed_at = now;
  }

(* Does the entry emit to [port] through some OUTPUT action?  Used by the
   out_port filter of DELETE.  OFPP_NONE means "no filter". *)
let entry_outputs_to (e : entry) (port : Expr.bv) =
  let none = Expr.const ~width:16 (Int64.of_int C.Port.none) in
  let out_type = Expr.const ~width:16 (Int64.of_int C.Action_type.output) in
  let conds =
    List.filter_map
      (fun (a : Sym_msg.saction) ->
        if Array.length a.Sym_msg.a_body >= 2 then
          Some (Expr.and_ (Expr.eq a.a_type out_type) (Expr.eq (Sym_msg.body_u16 a 0) port))
        else None)
      e.e_actions
  in
  Expr.or_ (Expr.eq port none) (Expr.balanced_disj conds)

(* Lookup the highest-priority matching entry for [key].  Exact-match
   entries (wildcards = 0) outrank all wildcarded entries per the 1.0 spec;
   ties on priority resolve to the older entry.  Branches once per entry on
   the match condition, then on priority comparisons among hits. *)
let lookup env t key =
  let hits =
    List.filter (fun e -> Engine.branch env (Match_sem.matches e.e_match key)) t.entries
  in
  match hits with
  | [] -> None
  | [ e ] -> Some e
  | first :: rest ->
    let effective_priority e =
      (* exact-match entries outrank wildcarded ones *)
      Expr.ite (Match_sem.is_exact e.e_match)
        (Expr.const ~width:17 0x10000L)
        (Expr.zext ~width:17 e.e_priority)
    in
    let best =
      List.fold_left
        (fun best e ->
          if Engine.branch env (Expr.uge (effective_priority best) (effective_priority e))
          then best
          else e)
        first rest
    in
    Some best

(* Insert an entry for ADD.  An existing entry with identical match and
   priority is replaced (spec behaviour for both agents). *)
let add env t entry =
  let replaced = ref false in
  let entries =
    List.map
      (fun e ->
        if
          (not !replaced) && e.e_emergency = entry.e_emergency
          && Engine.branch env
               (Expr.and_
                  (Match_sem.strict_equal e.e_match entry.e_match)
                  (Expr.eq e.e_priority entry.e_priority))
        then begin
          replaced := true;
          { entry with e_id = e.e_id }
        end
        else e)
      t.entries
  in
  if !replaced then { t with entries }
  else { entries = t.entries @ [ { entry with e_id = t.next_id } ]; next_id = t.next_id + 1 }

(* Does [entry] overlap any existing entry at the same priority?  Used when
   the flow mod carries CHECK_OVERLAP. *)
let check_overlap env t entry =
  List.exists
    (fun e ->
      e.e_emergency = entry.e_emergency
      && Engine.branch env
           (Expr.and_
              (Expr.eq e.e_priority entry.e_priority)
              (Match_sem.overlaps e.e_match entry.e_match)))
    t.entries

(* Non-strict MODIFY: replace the actions of every entry subsumed by the
   flow mod's match. Returns the table and whether any entry was changed. *)
let modify env t (fm : Sym_msg.sflow_mod) =
  let changed = ref false in
  let entries =
    List.map
      (fun e ->
        if
          e.e_emergency = false
          && Engine.branch env (Match_sem.subsumes fm.Sym_msg.sfm_match e.e_match)
        then begin
          changed := true;
          { e with e_actions = fm.sfm_actions; e_cookie = fm.sfm_cookie }
        end
        else e)
      t.entries
  in
  ({ t with entries }, !changed)

(* Strict MODIFY: identical match and equal priority. *)
let modify_strict env t (fm : Sym_msg.sflow_mod) =
  let changed = ref false in
  let entries =
    List.map
      (fun e ->
        if
          e.e_emergency = false
          && Engine.branch env
               (Expr.and_
                  (Match_sem.strict_equal fm.Sym_msg.sfm_match e.e_match)
                  (Expr.eq fm.sfm_priority e.e_priority))
        then begin
          changed := true;
          { e with e_actions = fm.sfm_actions; e_cookie = fm.sfm_cookie }
        end
        else e)
      t.entries
  in
  ({ t with entries }, !changed)

(* DELETE / DELETE_STRICT: remove matching entries, honouring the out_port
   filter.  Returns the new table and the removed entries. *)
let delete env ~strict t (fm : Sym_msg.sflow_mod) =
  let matches_fm e =
    let base =
      if strict then
        Expr.and_
          (Match_sem.strict_equal fm.Sym_msg.sfm_match e.e_match)
          (Expr.eq fm.sfm_priority e.e_priority)
      else Match_sem.subsumes fm.Sym_msg.sfm_match e.e_match
    in
    Engine.branch env (Expr.and_ base (entry_outputs_to e fm.sfm_out_port))
  in
  let removed, kept = List.partition matches_fm t.entries in
  ({ t with entries = kept }, removed)

let iter f t = List.iter f t.entries
let entries t = t.entries
