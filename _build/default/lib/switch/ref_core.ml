(* Model of the OpenFlow 1.0 Reference Switch agent (the Stanford
   "ofdatapath" userspace switch, 55K LoC of C in the paper's evaluation),
   parameterized by a set of behavioural quirks so the Modified Switch of
   §5.1.1 is the same code base with a handful of injected changes — which
   is exactly how the paper's authors produced it.

   The documented reference-switch behaviours encoded here (paper §5.1.2):
   - crashes when a Packet Out outputs to OFPP_CONTROLLER;
   - crashes when executing a SET_VLAN_VID action from a Packet Out;
   - crashes on a queue-config request for port 0 (memory error);
   - does not validate VLAN id / ToS / PCP values, masking them on
     application instead;
   - swallows the error for an unknown buffer_id (handler returns an error
     that is never converted into an OpenFlow message);
   - returns an error when a flow mod's match in_port equals an OUTPUT
     action's port;
   - performs no upper-bound validation on physical output ports;
   - silently ignores statistics requests it cannot answer;
   - supports emergency flow entries; does not support OFPP_NORMAL. *)

open Smt
module Engine = Symexec.Engine
module Coverage = Symexec.Coverage
module Trace = Openflow.Trace
module Sym_msg = Openflow.Sym_msg
module C = Openflow.Constants
module SP = Packet.Sym_packet
module AC = Agent_common

type quirks = {
  po_port_max_check : int option; (* M3: error for physical ports above this *)
  bad_action_err_type : int; (* M4: error type for invalid action types *)
  miss_send_len_clamp : int option; (* M5: clamp Set Config's miss_send_len *)
  honor_check_overlap : bool; (* M6: false = silently ignore CHECK_OVERLAP *)
  error_on_unknown_stats : bool; (* M7: true = report unanswerable stats *)
  strict_hello : bool; (* M1: only affects version negotiation at connect *)
  early_idle_expiry : bool; (* M2: only affects timer-driven expiry *)
}

let reference_quirks =
  {
    po_port_max_check = None;
    bad_action_err_type = C.Error_type.bad_action;
    miss_send_len_clamp = None;
    honor_check_overlap = true;
    error_on_unknown_stats = false;
    strict_hello = false;
    early_idle_expiry = false;
  }

module type PARAMS = sig
  val name : string
  val quirks : quirks
end

module Make (P : PARAMS) : Agent_intf.S = struct
  let name = P.name
  let q = P.quirks
  let config = AC.default_config

  type state = AC.state

  let c16 = AC.c16
  let c32 = AC.c32

  (* ---- coverage instrumentation (one registry per instantiation) ---- *)

  let pt n = Coverage.instr P.name n
  let bp n = Coverage.branch P.name n

  let pt_init = pt "init"
  let pt_conn_setup = pt "conn.setup"
  let pt_conn_hello = pt "conn.hello"
  let bp_conn_version = bp "conn.version_ok"
  let pt_conn_strict_reject = pt "conn.strict_reject"
  let pt_msg_entry = pt "msg.entry"
  let bp_msg_len = bp "msg.len_ok"
  let pt_msg_blocked = pt "msg.blocked"
  let pt_hello = pt "hello.handler"
  let pt_echo = pt "echo.handler"
  let pt_features = pt "features.handler"
  let pt_get_config = pt "get_config.handler"
  let pt_set_config = pt "set_config.handler"
  let bp_set_config_len = bp "set_config.len"
  let pt_barrier = pt "barrier.handler"
  let pt_vendor = pt "vendor.handler"
  let pt_bad_type = pt "msg.bad_type"
  let pt_unexpected = pt "msg.unexpected_type"
  let pt_po_entry = pt "packet_out.entry"
  let bp_po_len = bp "packet_out.len"
  let bp_po_buffer = bp "packet_out.buffer_set"
  let pt_po_buffer_missing = pt "packet_out.buffer_missing"
  let pt_po_no_data = pt "packet_out.no_data"
  let pt_po_execute = pt "packet_out.execute"
  let pt_fm_entry = pt "flow_mod.entry"
  let bp_fm_len = bp "flow_mod.len"
  let bp_fm_emerg = bp "flow_mod.emerg"
  let bp_fm_emerg_timeout = bp "flow_mod.emerg_timeout"
  let bp_fm_overlap_flag = bp "flow_mod.check_overlap"
  let pt_fm_overlap_err = pt "flow_mod.overlap_error"
  let pt_fm_add = pt "flow_mod.add"
  let pt_fm_modify = pt "flow_mod.modify"
  let pt_fm_modify_strict = pt "flow_mod.modify_strict"
  let pt_fm_delete = pt "flow_mod.delete"
  let pt_fm_delete_strict = pt "flow_mod.delete_strict"
  let pt_fm_bad_command = pt "flow_mod.bad_command"
  let bp_fm_buffer = bp "flow_mod.buffer_set"
  let pt_fm_buffer_missing = pt "flow_mod.buffer_missing"
  let bp_fm_table_full = bp "flow_mod.table_full"
  let pt_fm_flow_removed = pt "flow_mod.send_flow_removed"
  let bp_fm_in_eq_out = bp "flow_mod.in_port_eq_out_port"
  let pt_stats_entry = pt "stats.entry"
  let bp_stats_len = bp "stats.len"
  let pt_stats_desc = pt "stats.desc"
  let pt_stats_flow = pt "stats.flow"
  let pt_stats_aggregate = pt "stats.aggregate"
  let pt_stats_table = pt "stats.table"
  let pt_stats_port = pt "stats.port"
  let pt_stats_queue = pt "stats.queue"
  let pt_stats_unknown = pt "stats.unknown"
  let pt_qgc_entry = pt "queue_config.entry"
  let bp_qgc_port0 = bp "queue_config.port0"
  let bp_qgc_valid = bp "queue_config.valid_port"
  let pt_port_mod = pt "port_mod.handler"
  let bp_port_mod_valid = bp "port_mod.valid"
  let pt_act_output = pt "action.output"
  let bp_act_out_phys = bp "action.output.phys"
  let bp_act_out_zero = bp "action.output.zero"
  let pt_act_out_in_port = pt "action.output.in_port"
  let pt_act_out_table = pt "action.output.table"
  let pt_act_out_normal = pt "action.output.normal"
  let pt_act_out_flood = pt "action.output.flood"
  let pt_act_out_all = pt "action.output.all"
  let pt_act_out_ctrl = pt "action.output.controller"
  let pt_act_out_local = pt "action.output.local"
  let pt_act_out_invalid = pt "action.output.invalid"
  let pt_act_vlan_vid = pt "action.set_vlan_vid"
  let pt_act_vlan_pcp = pt "action.set_vlan_pcp"
  let pt_act_strip_vlan = pt "action.strip_vlan"
  let pt_act_dl_src = pt "action.set_dl_src"
  let pt_act_dl_dst = pt "action.set_dl_dst"
  let pt_act_nw_src = pt "action.set_nw_src"
  let pt_act_nw_dst = pt "action.set_nw_dst"
  let pt_act_nw_tos = pt "action.set_nw_tos"
  let pt_act_tp_src = pt "action.set_tp_src"
  let pt_act_tp_dst = pt "action.set_tp_dst"
  let pt_act_enqueue = pt "action.enqueue"
  let pt_act_vendor = pt "action.vendor"
  let pt_act_unknown = pt "action.unknown"
  let bp_act_len = bp "action.len_ok"
  let pt_probe_entry = pt "dp.probe_entry"
  let bp_probe_match = bp "dp.table_match"
  let pt_probe_miss = pt "dp.table_miss"
  let pt_probe_apply = pt "dp.apply_actions"
  let pt_probe_drop = pt "dp.drop"

  (* code regions that exist in the agent but are unreachable through the
     control channel during SOFT's tests: timers and async port events *)
  let pt_timer_idle = pt "timer.idle_expiry"
  let pt_timer_hard = pt "timer.hard_expiry"
  let pt_timer_flow_removed = pt "timer.send_flow_removed"
  let bp_timer_quirk = bp "timer.early_expiry_quirk"
  let pt_port_status = pt "async.port_status"
  let pt_conn_teardown = pt "conn.teardown"
  let pt_echo_timeout = pt "conn.echo_timeout"

  (* ---- errors, terminated message processing ------------------------- *)

  exception Msg_error of int * int
  exception Msg_silent_drop (* handler error swallowed: externally silent *)

  let error t code = raise (Msg_error (t, code))

  (* ---- agent lifecycle ------------------------------------------------ *)

  let init () =
    let st = AC.initial_state () in
    st

  let connection_setup env st =
    Engine.cover env pt_init;
    Engine.cover env pt_conn_setup;
    Engine.cover env pt_conn_hello;
    (* version negotiation on the (concrete) hello from the controller *)
    let peer_version = Expr.const ~width:8 (Int64.of_int C.version) in
    if Engine.branch ~loc:bp_conn_version env (Expr.eq peer_version (Expr.const ~width:8 1L))
    then st
    else begin
      (* M1 lives here: a strict agent refuses mismatched versions, the
         reference one proceeds with the lower version.  The harness always
         completes the handshake with a correct hello first (paper §5.1.1),
         so this difference is invisible to the tests. *)
      Engine.cover env pt_conn_strict_reject;
      if q.strict_hello then Engine.crash env "hello version rejected" else st
    end

  (* Timer-driven expiry.  Unreachable through the standard Table-1 tests
     (the paper's second missed modification, M2); the harness's virtual
     time extension [advance_time] drives it explicitly.  The M2 quirk
     makes idle rules expire one second early.  Idle timeouts here measure
     from installation (the model does not refresh last-use on traffic). *)
  let advance_time env st ~seconds =
    let now = st.AC.clock + seconds in
    let expired_cond (e : Flow_table.entry) =
      let elapsed = c16 (now - e.Flow_table.e_installed_at) in
      let active t = Expr.neq t (c16 0) in
      let idle_bound =
        if q.early_idle_expiry then
          Expr.sub e.Flow_table.e_idle_timeout (c16 1)
        else e.Flow_table.e_idle_timeout
      in
      Expr.or_
        (Expr.and_ (active e.Flow_table.e_hard_timeout)
           (Expr.uge elapsed e.Flow_table.e_hard_timeout))
        (Expr.and_ (active e.Flow_table.e_idle_timeout) (Expr.uge elapsed idle_bound))
    in
    let expired, kept =
      List.partition
        (fun e ->
          Engine.cover env pt_timer_idle;
          Engine.cover env pt_timer_hard;
          Engine.branch ~loc:bp_timer_quirk env (expired_cond e))
        (Flow_table.entries st.AC.table)
    in
    List.iter
      (fun (e : Flow_table.entry) ->
        if
          Engine.branch env
            (Expr.neq
               (Expr.logand e.Flow_table.e_flags (c16 C.Flow_mod_flags.send_flow_rem))
               (c16 0))
        then begin
          Engine.cover env pt_timer_flow_removed;
          Engine.emit env
            (Trace.Msg_out
               (Trace.O_flow_removed { o_fr_reason = C.Flow_removed_reason.idle_timeout }))
        end)
      expired;
    {
      st with
      AC.clock = now;
      AC.table = { st.AC.table with Flow_table.entries = kept };
    }

  (* ---- action execution ----------------------------------------------- *)

  type exec_ctx = Packet_out_ctx | Table_ctx

  let require_len env (a : Sym_msg.saction) expected =
    if not (Engine.branch ~loc:bp_act_len env (Expr.eq a.Sym_msg.a_len (c16 expected))) then
      error C.Error_type.bad_action C.Bad_action.bad_len

  let is_type env (a : Sym_msg.saction) t = Engine.branch_eq env a.Sym_msg.a_type (Int64.of_int t)

  (* Send [pkt] out of [port] per the OUTPUT action semantics. *)
  let rec do_output env st ~ctx ~in_port ~(sink : AC.sink) pkt port =
    Engine.cover env pt_act_output;
    if Engine.branch ~loc:bp_act_out_zero env (Expr.eq port (c16 0)) then
      error C.Error_type.bad_action C.Bad_action.bad_out_port
    else if
      Engine.branch ~loc:bp_act_out_phys env
        (Expr.and_ (Expr.uge port (c16 1)) (Expr.ule port (c16 config.AC.nports)))
    then begin
      (* never forward a packet back out its ingress port implicitly;
         OFPP_IN_PORT exists for that *)
      if Engine.branch env (Expr.eq port in_port) then () else sink.AC.tx env ~port pkt
    end
    else if Engine.branch env (Expr.ule port (c16 C.Port.max)) then begin
      (* physical port number beyond the ports that exist *)
      match q.po_port_max_check with
      | Some limit when Engine.branch env (Expr.ugt port (c16 limit)) ->
        error C.Error_type.bad_action C.Bad_action.bad_out_port
      | _ ->
        (* the reference switch hands the packet to a non-existent datapath
           port: it vanishes without an error (paper: no port validation) *)
        ()
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.in_port) then begin
      Engine.cover env pt_act_out_in_port;
      sink.AC.tx env ~port:in_port pkt
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.table) then begin
      Engine.cover env pt_act_out_table;
      match ctx with
      | Packet_out_ctx -> run_through_table env st ~in_port ~sink pkt
      | Table_ctx -> () (* OFPP_TABLE is only valid in packet-out actions *)
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.normal) then begin
      Engine.cover env pt_act_out_normal;
      (* purely an OpenFlow switch: no traditional forwarding path *)
      error C.Error_type.bad_action C.Bad_action.bad_out_port
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.flood) then begin
      Engine.cover env pt_act_out_flood;
      AC.fanout env config ~in_port ~except_in_port:true pkt sink
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.all) then begin
      Engine.cover env pt_act_out_all;
      AC.fanout env config ~in_port ~except_in_port:true pkt sink
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.controller) then begin
      Engine.cover env pt_act_out_ctrl;
      match ctx with
      | Packet_out_ctx ->
        (* reliability bug: NULL packet-in retval dereference *)
        Engine.crash env "segfault: packet-out to OFPP_CONTROLLER"
      | Table_ctx -> sink.AC.to_controller env ~reason:C.Packet_in_reason.action pkt
    end
    else if Engine.branch_eq env port (Int64.of_int C.Port.local) then begin
      Engine.cover env pt_act_out_local;
      sink.AC.tx env ~port pkt
    end
    else begin
      (* OFPP_NONE or a reserved value *)
      Engine.cover env pt_act_out_invalid;
      error C.Error_type.bad_action C.Bad_action.bad_out_port
    end

  (* Table-directed output (OFPP_TABLE): look the packet up; a miss drops
     it silently for controller-originated packets. *)
  and run_through_table env st ~in_port ~sink pkt =
    let key = Packet.Flow_key.extract env ~in_port pkt in
    match Flow_table.lookup env st.AC.table key with
    | Some entry -> ignore (apply_actions env st ~ctx:Table_ctx ~in_port ~sink pkt entry.Flow_table.e_actions)
    | None -> ()

  (* Execute one action; returns the possibly rewritten packet. *)
  and exec_action env st ~ctx ~in_port ~sink pkt (a : Sym_msg.saction) =
    if is_type env a C.Action_type.output then begin
      require_len env a 8;
      do_output env st ~ctx ~in_port ~sink pkt (Sym_msg.body_u16 a 0);
      pkt
    end
    else if is_type env a C.Action_type.set_vlan_vid then begin
      Engine.cover env pt_act_vlan_vid;
      require_len env a 8;
      match ctx with
      | Packet_out_ctx ->
        (* reliability bug: vlan rewrite on the packet-out path touches an
           uninitialized buffer descriptor *)
        Engine.crash env "segfault: set_vlan_vid in packet-out"
      | Table_ctx ->
        (* no validation: mask the value into shape *)
        AC.set_vlan_vid pkt (Expr.logand (Sym_msg.body_u16 a 0) (c16 0xfff))
    end
    else if is_type env a C.Action_type.set_vlan_pcp then begin
      Engine.cover env pt_act_vlan_pcp;
      require_len env a 8;
      AC.set_vlan_pcp pkt (Expr.logand (Sym_msg.body_u8 a 0) (AC.c8 0x7))
    end
    else if is_type env a C.Action_type.strip_vlan then begin
      Engine.cover env pt_act_strip_vlan;
      require_len env a 8;
      AC.strip_vlan pkt
    end
    else if is_type env a C.Action_type.set_dl_src then begin
      Engine.cover env pt_act_dl_src;
      require_len env a 16;
      AC.set_dl_src pkt (Sym_msg.body_mac a 0)
    end
    else if is_type env a C.Action_type.set_dl_dst then begin
      Engine.cover env pt_act_dl_dst;
      require_len env a 16;
      AC.set_dl_dst pkt (Sym_msg.body_mac a 0)
    end
    else if is_type env a C.Action_type.set_nw_src then begin
      Engine.cover env pt_act_nw_src;
      require_len env a 8;
      AC.set_nw_src pkt (Sym_msg.body_u32 a 0)
    end
    else if is_type env a C.Action_type.set_nw_dst then begin
      Engine.cover env pt_act_nw_dst;
      require_len env a 8;
      AC.set_nw_dst pkt (Sym_msg.body_u32 a 0)
    end
    else if is_type env a C.Action_type.set_nw_tos then begin
      Engine.cover env pt_act_nw_tos;
      require_len env a 8;
      (* no validation: mask the two low bits away *)
      AC.set_nw_tos pkt (Expr.logand (Sym_msg.body_u8 a 0) (AC.c8 0xfc))
    end
    else if is_type env a C.Action_type.set_tp_src then begin
      Engine.cover env pt_act_tp_src;
      require_len env a 8;
      AC.set_tp_src pkt (Sym_msg.body_u16 a 0)
    end
    else if is_type env a C.Action_type.set_tp_dst then begin
      Engine.cover env pt_act_tp_dst;
      require_len env a 8;
      AC.set_tp_dst pkt (Sym_msg.body_u16 a 0)
    end
    else if is_type env a C.Action_type.enqueue then begin
      Engine.cover env pt_act_enqueue;
      require_len env a 16;
      (* no queues are configured on the emulated switch *)
      error C.Error_type.bad_action C.Bad_action.bad_queue
    end
    else if is_type env a C.Action_type.vendor then begin
      Engine.cover env pt_act_vendor;
      error C.Error_type.bad_action C.Bad_action.bad_vendor
    end
    else begin
      Engine.cover env pt_act_unknown;
      error q.bad_action_err_type C.Bad_action.bad_type
    end

  and apply_actions env st ~ctx ~in_port ~sink pkt actions =
    List.fold_left (fun pkt a -> exec_action env st ~ctx ~in_port ~sink pkt a) pkt actions

  (* Install-time validation of flow mod actions: the reference switch
     checks action types, lengths, and the in-port/out-port conflict, but
     not field values or port ranges. *)
  let validate_flow_mod_actions env (fm : Sym_msg.sflow_mod) =
    let wc = fm.Sym_msg.sfm_match.Sym_msg.s_wildcards in
    let in_port_exact =
      Expr.eq (Expr.logand wc (c32 C.Wildcards.in_port)) (c32 0)
    in
    List.iter
      (fun (a : Sym_msg.saction) ->
        if is_type env a C.Action_type.output then begin
          require_len env a 8;
          let port = Sym_msg.body_u16 a 0 in
          (* "no packet will ever be forwarded back out its ingress port":
             reject when the match pins in_port to the output port *)
          if
            Engine.branch ~loc:bp_fm_in_eq_out env
              (Expr.and_ in_port_exact (Expr.eq port fm.Sym_msg.sfm_match.Sym_msg.s_in_port))
          then error C.Error_type.bad_action C.Bad_action.bad_out_port
        end
        else if
          is_type env a C.Action_type.set_vlan_vid
          || is_type env a C.Action_type.set_vlan_pcp
          || is_type env a C.Action_type.strip_vlan
          || is_type env a C.Action_type.set_nw_src
          || is_type env a C.Action_type.set_nw_dst
          || is_type env a C.Action_type.set_nw_tos
          || is_type env a C.Action_type.set_tp_src
          || is_type env a C.Action_type.set_tp_dst
        then require_len env a 8
        else if is_type env a C.Action_type.set_dl_src || is_type env a C.Action_type.set_dl_dst
        then require_len env a 16
        else if is_type env a C.Action_type.enqueue then begin
          require_len env a 16;
          error C.Error_type.bad_action C.Bad_action.bad_queue
        end
        else if is_type env a C.Action_type.vendor then
          error C.Error_type.bad_action C.Bad_action.bad_vendor
        else error q.bad_action_err_type C.Bad_action.bad_type)
      fm.Sym_msg.sfm_actions

  (* ---- message handlers ------------------------------------------------ *)

  let handle_packet_out env st (msg : Sym_msg.t) (po : Sym_msg.spacket_out) =
    Engine.cover env pt_po_entry;
    (match AC.check_length env msg ~expected:16 ~exact:false with
     | `Short ->
       ignore (Engine.branch ~loc:bp_po_len env Expr.fls);
       error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ignore (Engine.branch ~loc:bp_po_len env Expr.tru));
    (* buffer handling comes FIRST in the reference switch; its failure is
       the swallowed-error bug: the handler errors out internally but no
       OpenFlow error is ever emitted *)
    if
      Engine.branch ~loc:bp_po_buffer env
        (Expr.neq po.Sym_msg.spo_buffer_id (c32 0xffffffff))
    then begin
      Engine.cover env pt_po_buffer_missing;
      raise Msg_silent_drop
    end;
    match po.Sym_msg.spo_data with
    | None ->
      Engine.cover env pt_po_no_data;
      st
    | Some pkt ->
      Engine.cover env pt_po_execute;
      let in_port = po.Sym_msg.spo_in_port in
      let sink = AC.packet_out_sink ~in_port ~frame_len:64 in
      ignore
        (apply_actions env st ~ctx:Packet_out_ctx ~in_port ~sink pkt po.Sym_msg.spo_actions);
      st

  let install_entry env st (fm : Sym_msg.sflow_mod) ~emergency =
    let table = if emergency then st.AC.emerg_table else st.AC.table in
    if
      Flow_table.size table >= config.AC.table_max
      && Engine.branch ~loc:bp_fm_table_full env Expr.tru
    then error C.Error_type.flow_mod_failed C.Flow_mod_failed.all_tables_full;
    let check_overlap_set =
      Engine.branch ~loc:bp_fm_overlap_flag env
        (Expr.neq
           (Expr.logand fm.Sym_msg.sfm_flags (c16 C.Flow_mod_flags.check_overlap))
           (c16 0))
    in
    if check_overlap_set && q.honor_check_overlap then begin
      let entry = Flow_table.entry_of_flow_mod ~emergency fm 0 in
      if Flow_table.check_overlap env table entry then begin
        Engine.cover env pt_fm_overlap_err;
        error C.Error_type.flow_mod_failed C.Flow_mod_failed.overlap
      end
    end;
    let table' =
      Flow_table.add env table (Flow_table.entry_of_flow_mod ~emergency ~now:st.AC.clock fm 0)
    in
    if emergency then { st with AC.emerg_table = table' } else { st with AC.table = table' }

  let handle_flow_mod env st (msg : Sym_msg.t) (fm : Sym_msg.sflow_mod) =
    Engine.cover env pt_fm_entry;
    (match AC.check_length env msg ~expected:C.Sizes.flow_mod ~exact:false with
     | `Short ->
       ignore (Engine.branch ~loc:bp_fm_len env Expr.fls);
       error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ignore (Engine.branch ~loc:bp_fm_len env Expr.tru));
    let cmd = fm.Sym_msg.sfm_command in
    let emergency =
      Engine.branch ~loc:bp_fm_emerg env
        (Expr.neq (Expr.logand fm.sfm_flags (c16 C.Flow_mod_flags.emerg)) (c16 0))
    in
    let st =
      if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.add) then begin
        Engine.cover env pt_fm_add;
        if emergency then begin
          (* emergency entries must have zero timeouts *)
          if
            Engine.branch ~loc:bp_fm_emerg_timeout env
              (Expr.or_
                 (Expr.neq fm.sfm_idle_timeout (c16 0))
                 (Expr.neq fm.sfm_hard_timeout (c16 0)))
          then error C.Error_type.flow_mod_failed C.Flow_mod_failed.bad_emerg_timeout
        end;
        validate_flow_mod_actions env fm;
        install_entry env st fm ~emergency
      end
      else if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.modify) then begin
        Engine.cover env pt_fm_modify;
        validate_flow_mod_actions env fm;
        let table', changed = Flow_table.modify env st.AC.table fm in
        if changed then { st with AC.table = table' } else install_entry env st fm ~emergency:false
      end
      else if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.modify_strict) then begin
        Engine.cover env pt_fm_modify_strict;
        validate_flow_mod_actions env fm;
        let table', changed = Flow_table.modify_strict env st.AC.table fm in
        if changed then { st with AC.table = table' } else install_entry env st fm ~emergency:false
      end
      else if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.delete) then begin
        Engine.cover env pt_fm_delete;
        let table', removed = Flow_table.delete env ~strict:false st.AC.table fm in
        List.iter
          (fun (e : Flow_table.entry) ->
            if
              Engine.branch env
                (Expr.neq
                   (Expr.logand e.Flow_table.e_flags (c16 C.Flow_mod_flags.send_flow_rem))
                   (c16 0))
            then begin
              Engine.cover env pt_fm_flow_removed;
              Engine.emit env
                (Trace.Msg_out
                   (Trace.O_flow_removed { o_fr_reason = C.Flow_removed_reason.delete }))
            end)
          removed;
        { st with AC.table = table' }
      end
      else if Engine.branch_eq env cmd (Int64.of_int C.Flow_mod_command.delete_strict) then begin
        Engine.cover env pt_fm_delete_strict;
        let table', removed = Flow_table.delete env ~strict:true st.AC.table fm in
        List.iter
          (fun (e : Flow_table.entry) ->
            if
              Engine.branch env
                (Expr.neq
                   (Expr.logand e.Flow_table.e_flags (c16 C.Flow_mod_flags.send_flow_rem))
                   (c16 0))
            then begin
              Engine.cover env pt_fm_flow_removed;
              Engine.emit env
                (Trace.Msg_out
                   (Trace.O_flow_removed { o_fr_reason = C.Flow_removed_reason.delete }))
            end)
          removed;
        { st with AC.table = table' }
      end
      else begin
        Engine.cover env pt_fm_bad_command;
        error C.Error_type.flow_mod_failed C.Flow_mod_failed.bad_command
      end
    in
    (* buffered-packet handling: the handler notices the unknown buffer and
       errors internally, but the error is never sent (swallowed) and no
       packet is processed; the flow stays installed *)
    if
      Engine.branch ~loc:bp_fm_buffer env
        (Expr.neq fm.Sym_msg.sfm_buffer_id (c32 0xffffffff))
    then begin
      Engine.cover env pt_fm_buffer_missing;
      st (* swallowed error: externally silent *)
    end
    else st

  (* flow/aggregate requests dispatch on table_id: 0xff = all tables,
     0xfe = emergency, a specific id otherwise *)
  let table_scope env (s : Sym_msg.sstats_request) =
    let tid = s.Sym_msg.ssr_table_id in
    if Engine.branch_eq env tid 0xffL then `All
    else if Engine.branch_eq env tid 0xfeL then `Emergency
    else if Engine.branch_eq env tid 0L then `Table0
    else `No_such_table

  let flow_stats_digest env st (s : Sym_msg.sstats_request) =
    (* count entries subsumed by the request's match with the out_port
       filter, as the real handler iterates chains *)
    match table_scope env s with
    | `No_such_table -> "flows=0,table=none"
    | (`All | `Emergency | `Table0) as scope ->
      let entries =
        match scope with
        | `Emergency -> Flow_table.entries st.AC.emerg_table
        | `All -> Flow_table.entries st.AC.table @ Flow_table.entries st.AC.emerg_table
        | `Table0 -> Flow_table.entries st.AC.table
      in
      let n =
        List.fold_left
          (fun acc (e : Flow_table.entry) ->
            if
              Engine.branch env
                (Expr.and_
                   (Match_sem.subsumes s.Sym_msg.ssr_match e.Flow_table.e_match)
                   (Flow_table.entry_outputs_to e s.Sym_msg.ssr_out_port))
            then acc + 1
            else acc)
          0 entries
      in
      Printf.sprintf "flows=%d" n

  let handle_stats_request env st (msg : Sym_msg.t) (s : Sym_msg.sstats_request) =
    Engine.cover env pt_stats_entry;
    (* the common header needs 12 bytes; per-type bodies checked below *)
    (match AC.check_length env msg ~expected:C.Sizes.stats_request ~exact:false with
     | `Short ->
       ignore (Engine.branch ~loc:bp_stats_len env Expr.fls);
       error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ignore (Engine.branch ~loc:bp_stats_len env Expr.tru));
    let typ = s.Sym_msg.ssr_type in
    let reply stype body =
      Engine.emit env (Trace.Msg_out (Trace.O_stats_reply { o_stats_type = stype; o_stats_body = body }))
    in
    let need_exact_len n =
      match AC.check_length env msg ~expected:n ~exact:true with
      | `Ok -> ()
      | `Short -> error C.Error_type.bad_request C.Bad_request.bad_len
      | `Blocked ->
        Engine.cover env pt_msg_blocked;
        Engine.stop env
    in
    if Engine.branch_eq env typ (Int64.of_int C.Stats_type.desc) then begin
      Engine.cover env pt_stats_desc;
      need_exact_len 12;
      reply C.Stats_type.desc "desc"
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.flow) then begin
      Engine.cover env pt_stats_flow;
      need_exact_len 56;
      reply C.Stats_type.flow (flow_stats_digest env st s)
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.aggregate) then begin
      Engine.cover env pt_stats_aggregate;
      need_exact_len 56;
      let d = flow_stats_digest env st s in
      reply C.Stats_type.aggregate ("agg:" ^ d)
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.table) then begin
      Engine.cover env pt_stats_table;
      need_exact_len 12;
      reply C.Stats_type.table
        (Printf.sprintf "tables=1,active=%d" (Flow_table.size st.AC.table))
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.port) then begin
      Engine.cover env pt_stats_port;
      need_exact_len 20;
      let port = s.Sym_msg.ssr_port_no in
      if
        Engine.branch env
          (Expr.or_
             (Expr.eq port (c16 C.Port.none))
             (Expr.and_ (Expr.uge port (c16 1)) (Expr.ule port (c16 config.AC.nports))))
      then reply C.Stats_type.port "ports"
      else reply C.Stats_type.port "ports-empty"
    end
    else if Engine.branch_eq env typ (Int64.of_int C.Stats_type.queue) then begin
      Engine.cover env pt_stats_queue;
      need_exact_len 20;
      reply C.Stats_type.queue "queues-empty"
    end
    else begin
      Engine.cover env pt_stats_unknown;
      (* the handler returns an error code, but it is never converted into
         an OpenFlow message: the request is silently ignored *)
      if q.error_on_unknown_stats then error C.Error_type.bad_request C.Bad_request.bad_stat
      else raise Msg_silent_drop
    end;
    st

  let handle_queue_get_config env st (msg : Sym_msg.t) port =
    Engine.cover env pt_qgc_entry;
    (match AC.check_length env msg ~expected:C.Sizes.queue_get_config_request ~exact:true with
     | `Short -> error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ());
    if Engine.branch ~loc:bp_qgc_port0 env (Expr.eq port (c16 0)) then
      (* reliability bug: the queue array for port 0 is never allocated *)
      Engine.crash env "memory error: queue config for port 0"
    else if
      Engine.branch ~loc:bp_qgc_valid env
        (Expr.and_ (Expr.uge port (c16 1)) (Expr.ule port (c16 config.AC.nports)))
    then begin
      Engine.emit env
        (Trace.Msg_out (Trace.O_queue_config_reply { o_q_port = port; o_n_queues = 0 }));
      st
    end
    else error C.Error_type.queue_op_failed C.Queue_op_failed.bad_port

  let handle_set_config env st (msg : Sym_msg.t) (sc : Sym_msg.sswitch_config) =
    Engine.cover env pt_set_config;
    (match AC.check_length env msg ~expected:C.Sizes.switch_config ~exact:true with
     | `Short ->
       ignore (Engine.branch ~loc:bp_set_config_len env Expr.fls);
       error C.Error_type.bad_request C.Bad_request.bad_len
     | `Blocked ->
       Engine.cover env pt_msg_blocked;
       Engine.stop env
     | `Ok -> ignore (Engine.branch ~loc:bp_set_config_len env Expr.tru));
    (* dispatch on the fragment-handling mode like the real handler; the
       reference switch stores whatever value arrives *)
    let frag = Expr.logand sc.Sym_msg.scfg_flags (c16 C.Config_flags.frag_mask) in
    ignore
      (if Engine.branch_eq env frag (Int64.of_int C.Config_flags.frag_normal) then 0
       else if Engine.branch_eq env frag (Int64.of_int C.Config_flags.frag_drop) then 1
       else if Engine.branch_eq env frag (Int64.of_int C.Config_flags.frag_reasm) then 2
       else 3);
    let miss =
      match q.miss_send_len_clamp with
      | None -> sc.Sym_msg.smiss_send_len
      | Some limit ->
        Expr.ite
          (Expr.ule sc.Sym_msg.smiss_send_len (c16 limit))
          sc.Sym_msg.smiss_send_len (c16 limit)
    in
    { st with AC.miss_send_len = miss; AC.frag_flags = sc.Sym_msg.scfg_flags }

  (* ---- top-level dispatch ---------------------------------------------- *)

  let is_msg_type env (msg : Sym_msg.t) t = Engine.branch_eq env msg.Sym_msg.sm_type (Int64.of_int t)

  (* A message whose type claims a structured body we did not receive (raw
     short-symbolic input): triage on the claimed length like the real
     parser would — block when the claim exceeds the delivered bytes,
     error out otherwise. *)
  let raw_fallback env (msg : Sym_msg.t) ~expected : state =
    match AC.check_length env msg ~expected ~exact:false with
    | `Blocked ->
      Engine.cover env pt_msg_blocked;
      Engine.stop env
    | `Short | `Ok -> error C.Error_type.bad_request C.Bad_request.bad_len

  let handle_message env st (msg : Sym_msg.t) =
    if st.AC.blocked then st
    else begin
      Engine.cover env pt_msg_entry;
      (* header length sanity *)
      (match AC.check_length env msg ~expected:C.Sizes.header ~exact:false with
       | `Short ->
         ignore (Engine.branch ~loc:bp_msg_len env Expr.fls);
         AC.send_error env ~err_type:C.Error_type.bad_request ~err_code:C.Bad_request.bad_len;
         st
       | `Blocked ->
         Engine.cover env pt_msg_blocked;
         { st with AC.blocked = true }
       | `Ok ->
         ignore (Engine.branch ~loc:bp_msg_len env Expr.tru);
         let module T = C.Msg_type in
         try
           if is_msg_type env msg T.hello then begin
             Engine.cover env pt_hello;
             st (* hello after setup: ignored *)
           end
           else if is_msg_type env msg T.echo_request then begin
             Engine.cover env pt_echo;
             let payload = Expr.sub msg.Sym_msg.sm_length (c16 C.Sizes.header) in
             Engine.emit env (Trace.Msg_out (Trace.O_echo_reply { payload_len = payload }));
             st
           end
           else if is_msg_type env msg T.echo_reply then st
           else if is_msg_type env msg T.features_request then begin
             Engine.cover env pt_features;
             (match AC.check_length env msg ~expected:8 ~exact:true with
              | `Ok ->
                Engine.emit env
                  (Trace.Msg_out (Trace.O_features_reply { o_n_ports = config.AC.nports }))
              | `Short | `Blocked ->
                error C.Error_type.bad_request C.Bad_request.bad_len);
             st
           end
           else if is_msg_type env msg T.get_config_request then begin
             Engine.cover env pt_get_config;
             Engine.emit env
               (Trace.Msg_out
                  (Trace.O_get_config_reply
                     { o_flags = st.AC.frag_flags; o_miss_send_len = st.AC.miss_send_len }));
             st
           end
           else if is_msg_type env msg T.set_config then begin
             match msg.Sym_msg.sm_body with
             | Sym_msg.SSet_config sc -> handle_set_config env st msg sc
             | _ -> raw_fallback env msg ~expected:C.Sizes.switch_config
           end
           else if is_msg_type env msg T.packet_out then begin
             match msg.Sym_msg.sm_body with
             | Sym_msg.SPacket_out po -> handle_packet_out env st msg po
             | _ -> raw_fallback env msg ~expected:C.Sizes.packet_out
           end
           else if is_msg_type env msg T.flow_mod then begin
             match msg.Sym_msg.sm_body with
             | Sym_msg.SFlow_mod fm -> handle_flow_mod env st msg fm
             | _ -> raw_fallback env msg ~expected:C.Sizes.flow_mod
           end
           else if is_msg_type env msg T.stats_request then begin
             match msg.Sym_msg.sm_body with
             | Sym_msg.SStats_request s -> handle_stats_request env st msg s
             | _ -> raw_fallback env msg ~expected:C.Sizes.stats_request
           end
           else if is_msg_type env msg T.barrier_request then begin
             Engine.cover env pt_barrier;
             Engine.emit env (Trace.Msg_out Trace.O_barrier_reply);
             st
           end
           else if is_msg_type env msg T.queue_get_config_request then begin
             match msg.Sym_msg.sm_body with
             | Sym_msg.SQueue_get_config_request { sqgc_port } ->
               handle_queue_get_config env st msg sqgc_port
             | _ -> raw_fallback env msg ~expected:C.Sizes.queue_get_config_request
           end
           else if is_msg_type env msg T.port_mod then begin
             Engine.cover env pt_port_mod;
             (match AC.check_length env msg ~expected:C.Sizes.port_mod ~exact:true with
              | `Ok ->
                ignore (Engine.branch ~loc:bp_port_mod_valid env Expr.tru);
                st
              | `Short | `Blocked -> error C.Error_type.bad_request C.Bad_request.bad_len)
           end
           else if is_msg_type env msg T.vendor then begin
             Engine.cover env pt_vendor;
             error C.Error_type.bad_request C.Bad_request.bad_vendor
           end
           else if
             is_msg_type env msg T.error || is_msg_type env msg T.features_reply
             || is_msg_type env msg T.get_config_reply
             || is_msg_type env msg T.packet_in || is_msg_type env msg T.flow_removed
             || is_msg_type env msg T.port_status || is_msg_type env msg T.stats_reply
             || is_msg_type env msg T.barrier_reply
             || is_msg_type env msg T.queue_get_config_reply
           then begin
             (* switch-to-controller types arriving at the switch *)
             Engine.cover env pt_unexpected;
             error C.Error_type.bad_request C.Bad_request.bad_type
           end
           else begin
             Engine.cover env pt_bad_type;
             error C.Error_type.bad_request C.Bad_request.bad_type
           end
         with
         | Msg_error (t, code) ->
           AC.send_error env ~err_type:t ~err_code:code;
           st
         | Msg_silent_drop -> st)
    end

  (* ---- data plane -------------------------------------------------------- *)

  let handle_packet env st ~probe_id ~in_port pkt =
    if st.AC.blocked then st
    else begin
      Engine.cover env pt_probe_entry;
      let key = Packet.Flow_key.extract env ~in_port pkt in
      let hit = Flow_table.lookup env st.AC.table key in
      ignore
        (Engine.branch ~loc:bp_probe_match env
           (Expr.of_bool (match hit with Some _ -> true | None -> false)));
      match hit with
      | None ->
        Engine.cover env pt_probe_miss;
        AC.packet_in_miss env st ~in_port ~frame_len:64 pkt;
        st
      | Some entry ->
        Engine.cover env pt_probe_apply;
        let sink = AC.probe_sink ~probe_id ~in_port in
        let before = Engine.event_count env in
        (try
           ignore
             (apply_actions env st ~ctx:Table_ctx ~in_port ~sink pkt
                entry.Flow_table.e_actions)
         with Msg_error _ ->
           (* malformed stored action at forwarding time: drop *)
           ());
        if Engine.event_count env = before then begin
          Engine.cover env pt_probe_drop;
          Engine.emit env
            (Trace.Probe_response { probe_id; response = Trace.Probe_dropped })
        end;
        st
    end

  let _ = pt_port_status
  let _ = pt_conn_teardown
  let _ = pt_echo_timeout
end
