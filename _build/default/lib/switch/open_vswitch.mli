(** The Open vSwitch 1.0.0 agent model: an independently written
    implementation of the same specification, with OVS's documented
    behaviours — strict upfront action validation with silent message
    drops, error-but-install buffer handling, flow normalization, port
    range checks, `OFPP_NORMAL` support, no emergency flows (§5.1.2). *)

include Agent_intf.S

val agent : Agent_intf.t
