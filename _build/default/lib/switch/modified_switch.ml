(* The "Modified Switch" of the evaluation (§5.1.1): the Reference Switch
   code base with seven behaviour changes injected by team members who did
   not build the tool.  Five are observable through the OpenFlow interface;
   two are not reachable by SOFT's tests — M1 manifests only during
   connection establishment (the harness completes a correct handshake
   before testing) and M2 only when a rule expires on a timer (the symbolic
   engine cannot trigger timers).  SOFT is expected to find exactly 5/7. *)

module Impl = Ref_core.Make (struct
  let name = "modified"

  let quirks =
    {
      Ref_core.po_port_max_check = Some 16; (* M3: reject output ports > 16 *)
      bad_action_err_type = Openflow.Constants.Error_type.bad_request;
      (* M4: wrong error type for invalid actions *)
      miss_send_len_clamp = Some 0x20; (* M5: silently clamp miss_send_len below the probe frame size *)
      honor_check_overlap = false; (* M6: CHECK_OVERLAP ignored *)
      error_on_unknown_stats = true; (* M7: errors where reference is silent *)
      strict_hello = true; (* M1: NOT detectable (connection setup) *)
      early_idle_expiry = true; (* M2: NOT detectable (timer-driven) *)
    }
end)

include Impl

let agent : Agent_intf.t = (module Impl)

(* The injected modifications, for reporting the 5/7 detection experiment. *)
type injected = {
  inj_id : string;
  inj_description : string;
  inj_detectable : bool; (* reachable through SOFT's test inputs? *)
}

let injected_modifications =
  [
    {
      inj_id = "M1";
      inj_description = "strict version negotiation: rejects mismatched Hello";
      inj_detectable = false;
    };
    {
      inj_id = "M2";
      inj_description = "idle-timeout rules expire one tick early";
      inj_detectable = false;
    };
    {
      inj_id = "M3";
      inj_description = "Packet Out: error for output ports above 16";
      inj_detectable = true;
    };
    {
      inj_id = "M4";
      inj_description = "invalid actions rejected with BAD_REQUEST instead of BAD_ACTION";
      inj_detectable = true;
    };
    {
      inj_id = "M5";
      inj_description = "Set Config: miss_send_len silently clamped to 32";
      inj_detectable = true;
    };
    {
      inj_id = "M6";
      inj_description = "Flow Mod: CHECK_OVERLAP flag ignored";
      inj_detectable = true;
    };
    {
      inj_id = "M7";
      inj_description = "unknown statistics requests answered with an error";
      inj_detectable = true;
    };
  ]

(* Map an observed inconsistency (by test id and the two result keys) back
   to the injected modification it reveals — the mechanized version of the
   manual triage in the paper's §5.1.1 experiment. *)
let attribute_inconsistency ~test ~key_a ~key_b =
  let has_sub needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let either p = p key_a || p key_b in
  match test with
  | "packet_out" ->
    if either (has_sub "error(BAD_REQUEST,0)") then Some "M4"
    else if either (has_sub "error(BAD_ACTION,4)") then Some "M3"
    else None
  | "set_config" -> Some "M5"
  | "cs_flow_mods" ->
    if either (has_sub "error(FLOW_MOD_FAILED,1)") then Some "M6" else None
  | "stats_request" ->
    if either (has_sub "error(BAD_REQUEST,2)") then Some "M7" else None
  | _ -> None
