(* Helpers shared by the agent models: switch configuration, packet header
   edits performed by actions, output fan-out for FLOOD/ALL, and the agent
   state record.  Control flow and validation stay in the per-agent
   modules — those are what SOFT crosschecks. *)

open Smt
module Engine = Symexec.Engine
module Trace = Openflow.Trace
module Sym_msg = Openflow.Sym_msg
module C = Openflow.Constants
module SP = Packet.Sym_packet

let c8 v = Expr.const ~width:8 (Int64.of_int v)
let c16 v = Expr.const ~width:16 (Int64.of_int v)
let c32 v = Expr.const ~width:32 (Int64.of_int v)

type switch_config = {
  nports : int; (* physical ports are 1..nports *)
  n_buffers : int;
  table_max : int;
}

let default_config = { nports = 4; n_buffers = 256; table_max = 64 }

(* Agent state common to all models. [blocked] models an agent stuck
   reading a message whose claimed length exceeds the delivered bytes. *)
type state = {
  table : Flow_table.t;
  emerg_table : Flow_table.t;
  miss_send_len : Expr.bv; (* 16 *)
  frag_flags : Expr.bv; (* 16 *)
  blocked : bool;
  clock : int; (* virtual time in seconds (time extension) *)
}

let initial_state () =
  {
    table = Flow_table.empty;
    emerg_table = Flow_table.empty;
    miss_send_len = c16 128;
    frag_flags = c16 C.Config_flags.frag_normal;
    blocked = false;
    clock = 0;
  }

(* --- packet edits ------------------------------------------------------ *)

let set_vlan_vid (p : SP.t) vid =
  let pcp = match p.SP.svlan with Some v -> v.SP.spcp | None -> c8 0 in
  { p with SP.svlan = Some { SP.svid = vid; spcp = pcp } }

let set_vlan_pcp (p : SP.t) pcp =
  let vid = match p.SP.svlan with Some v -> v.SP.svid | None -> c16 0 in
  { p with SP.svlan = Some { SP.svid = vid; spcp = pcp } }

let strip_vlan (p : SP.t) = { p with SP.svlan = None }
let set_dl_src (p : SP.t) addr = { p with SP.sdl_src = addr }
let set_dl_dst (p : SP.t) addr = { p with SP.sdl_dst = addr }

let map_ip (p : SP.t) f =
  match p.SP.snet with SP.Sipv4 ip -> { p with SP.snet = SP.Sipv4 (f ip) } | SP.Sother_net -> p

let set_nw_src p addr = map_ip p (fun ip -> { ip with SP.ssrc = addr })
let set_nw_dst p addr = map_ip p (fun ip -> { ip with SP.sdst = addr })
let set_nw_tos p tos = map_ip p (fun ip -> { ip with SP.stos = tos })

let map_tp (p : SP.t) f = map_ip p (fun ip -> { ip with SP.stransport = f ip.SP.stransport })

let set_tp_src p port =
  map_tp p (function
    | SP.Stcp { stcp_dst; _ } -> SP.Stcp { stcp_src = port; stcp_dst }
    | SP.Sudp { sudp_dst; _ } -> SP.Sudp { sudp_src = port; sudp_dst }
    | tp -> tp)

let set_tp_dst p port =
  map_tp p (function
    | SP.Stcp { stcp_src; _ } -> SP.Stcp { stcp_src; stcp_dst = port }
    | SP.Sudp { sudp_src; _ } -> SP.Sudp { sudp_src; sudp_dst = port }
    | tp -> tp)

(* --- output helpers ----------------------------------------------------- *)

(* How a forwarded packet is reported depends on the context: dataplane TX
   for Packet Out processing, probe response for injected probes. *)
type sink = {
  tx : Trace.event Engine.env -> port:Expr.bv -> SP.t -> unit;
  to_controller : Trace.event Engine.env -> reason:int -> SP.t -> unit;
}

let packet_out_sink ~(in_port : Expr.bv) ~(frame_len : int) =
  {
    tx = (fun env ~port pkt -> Engine.emit env (Trace.Pkt_out { out_port = port; out_pkt = pkt }));
    to_controller =
      (fun env ~reason pkt ->
        Engine.emit env
          (Trace.Msg_out
             (Trace.O_packet_in
                {
                  o_pi_in_port = in_port;
                  o_pi_reason = reason;
                  o_pi_buffer = Trace.No_buffer;
                  o_pi_pkt = Some pkt;
                  o_pi_data_len = c16 frame_len;
                })));
  }

let probe_sink ~probe_id ~in_port =
  {
    tx =
      (fun env ~port pkt ->
        Engine.emit env
          (Trace.Probe_response
             { probe_id; response = Trace.Forwarded { fwd_port = port; fwd_pkt = pkt } }));
    to_controller =
      (fun env ~reason pkt ->
        ignore in_port;
        ignore pkt;
        Engine.emit env
          (Trace.Probe_response { probe_id; response = Trace.Sent_to_controller { stc_reason = reason } }));
  }

(* Emit the packet on every physical port except [in_port] (FLOOD/ALL
   semantics; the emulated switch has no flood-disabled ports).  [in_port]
   may be symbolic: the engine branches per port, and infeasible
   combinations are pruned. *)
let fanout env config ~in_port ~except_in_port pkt (sink : sink) =
  for port = 1 to config.nports do
    let pc = c16 port in
    if (not except_in_port) || Engine.branch env (Expr.neq in_port pc) then
      sink.tx env ~port:pc pkt
  done

let send_error env ~err_type ~err_code =
  Engine.emit env (Trace.Msg_out (Trace.O_error { o_err_type = err_type; o_err_code = err_code }))

(* Packet-in for a table miss, respecting miss_send_len: if the configured
   length covers the whole frame the packet goes up unbuffered; otherwise
   it is buffered and truncated.  The truncation length stays symbolic in
   the output (outputs may contain symbolic inputs, paper §3.3). *)
let packet_in_miss env (st : state) ~in_port ~frame_len pkt =
  let full = Expr.uge st.miss_send_len (c16 frame_len) in
  if Engine.branch env full then
    (* short frame fits entirely: no buffering *)
    Engine.emit env
      (Trace.Msg_out
         (Trace.O_packet_in
            {
              o_pi_in_port = in_port;
              o_pi_reason = C.Packet_in_reason.no_match;
              o_pi_buffer = Trace.No_buffer;
              o_pi_pkt = Some pkt;
              o_pi_data_len = c16 frame_len;
            }))
  else
    (* buffered, truncated to miss_send_len; the truncation length is a
       symbolic input flowing to the output.  The buffer id itself is
       normalized away (paper par. 3.3). *)
    Engine.emit env
      (Trace.Msg_out
         (Trace.O_packet_in
            {
              o_pi_in_port = in_port;
              o_pi_reason = C.Packet_in_reason.no_match;
              o_pi_buffer = Trace.Buffer_id { braw = c32 0 };
              o_pi_pkt = Some pkt;
              o_pi_data_len = st.miss_send_len;
            }))

(* --- length bookkeeping -------------------------------------------------- *)

(* Claimed-length triage shared by all agents: returns [`Ok] when the
   claimed length is exactly [expected] (or at least [expected] when
   [exact] is false), [`Short] when too small, [`Blocked] when the claim
   exceeds what was delivered (the agent would block on read). *)
let check_length env (msg : Sym_msg.t) ~expected ~exact =
  let claimed = msg.Sym_msg.sm_length in
  let phys = msg.sm_phys_len in
  if Engine.branch env (Expr.ult claimed (c16 expected)) then `Short
  else if Engine.branch env (Expr.ugt claimed (c16 phys)) then `Blocked
  else if (not exact) || Engine.branch env (Expr.eq claimed (c16 expected)) then `Ok
  else `Short
