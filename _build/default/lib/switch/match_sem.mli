(** OpenFlow 1.0 match semantics over symbolic values.

    All agent models share these definitions: they implement the
    *specified* meaning of ofp_match (field comparison gated by wildcard
    bits, CIDR masks for nw_src/nw_dst).  Agents differ in validation and
    control flow, not in what a match means.  Every predicate returns a
    single symbolic boolean (no branching); agents branch on it. *)

open Smt
module Sym_msg = Openflow.Sym_msg

val wildcarded : Expr.bv -> int -> Expr.boolean
(** [wildcarded wc bit]: is the wildcard [bit] set in [wc]? *)

val nw_mask : Expr.bv -> shift:int -> Expr.bv
(** CIDR mask from the 6-bit wildcard count at [shift]; counts >= 32 give
    the all-zero mask (field fully wildcarded). *)

val matches : Sym_msg.smatch -> Packet.Flow_key.t -> Expr.boolean
(** Does the flow key satisfy the match? *)

val strict_equal : Sym_msg.smatch -> Sym_msg.smatch -> Expr.boolean
(** Identity of two matches: equal wildcards and equal values on every
    non-wildcarded field (MODIFY_STRICT / DELETE_STRICT). *)

val subsumes : Sym_msg.smatch -> Sym_msg.smatch -> Expr.boolean
(** [subsumes outer inner]: every packet matched by [inner] is matched by
    [outer] (non-strict MODIFY / DELETE, flow-stats filtering). *)

val overlaps : Sym_msg.smatch -> Sym_msg.smatch -> Expr.boolean
(** Can some packet match both? (CHECK_OVERLAP). *)

val is_exact : Sym_msg.smatch -> Expr.boolean
(** No wildcard bit set; exact-match entries outrank wildcarded ones in
    1.0 lookup. *)
