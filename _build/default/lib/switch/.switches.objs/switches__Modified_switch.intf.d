lib/switch/modified_switch.mli: Agent_intf
