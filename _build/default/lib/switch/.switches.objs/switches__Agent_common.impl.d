lib/switch/agent_common.ml: Expr Flow_table Int64 Openflow Packet Smt Symexec
