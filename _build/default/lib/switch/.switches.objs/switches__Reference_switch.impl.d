lib/switch/reference_switch.ml: Agent_intf Ref_core
