lib/switch/modified_switch.ml: Agent_intf Openflow Ref_core String
