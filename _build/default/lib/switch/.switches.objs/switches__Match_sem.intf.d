lib/switch/match_sem.mli: Expr Openflow Packet Smt
