lib/switch/flow_table.mli: Expr Openflow Packet Smt Symexec
