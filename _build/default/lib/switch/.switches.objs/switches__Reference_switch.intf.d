lib/switch/reference_switch.mli: Agent_intf
