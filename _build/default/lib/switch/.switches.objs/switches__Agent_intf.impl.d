lib/switch/agent_intf.ml: Openflow Packet Smt Symexec
