lib/switch/ref_core.ml: Agent_common Agent_intf Expr Flow_table Int64 List Match_sem Openflow Packet Printf Smt Symexec
