lib/switch/match_sem.ml: Expr Int64 Openflow Packet Smt
