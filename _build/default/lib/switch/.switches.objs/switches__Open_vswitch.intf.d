lib/switch/open_vswitch.mli: Agent_intf
