lib/switch/flow_table.ml: Array Expr Int64 List Match_sem Openflow Smt Symexec
