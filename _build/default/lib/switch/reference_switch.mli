(** The OpenFlow 1.0 Reference Switch model: {!Ref_core} with its stock
    behaviour, including the documented reliability bugs and leniencies the
    paper's evaluation rediscovers (§5.1.2). *)

include Agent_intf.S

val agent : Agent_intf.t
(** The agent as a first-class value for the harness and pipeline. *)
