(* Observable outputs of an OpenFlow agent: messages back to the controller
   and packets on the data plane (paper §3.3).  Events may embed symbolic
   expressions — the harness feeds both agents identically-named symbolic
   inputs, so hash-consing makes symbolic outputs comparable by id.

   [key] renders an event to a stable string; a path's *result* is the
   concatenation of its event keys, which is what grouping and
   crosschecking compare.  Normalization (buffer ids, xids) happens in
   [Harness.Normalize] before keys are taken. *)

open Smt
module C = Constants

type buffer_ref =
  | No_buffer
  | Buffer_id of sbuf

and sbuf = { braw : Expr.bv (* 32 *) }

type msg_out =
  | O_hello
  | O_echo_reply of { payload_len : Expr.bv (* 16 *) }
  | O_error of { o_err_type : int; o_err_code : int }
  | O_features_reply of { o_n_ports : int }
  | O_get_config_reply of { o_flags : Expr.bv; o_miss_send_len : Expr.bv }
  | O_packet_in of {
      o_pi_in_port : Expr.bv;
      o_pi_reason : int;
      o_pi_buffer : buffer_ref;
      o_pi_pkt : Packet.Sym_packet.t option;
      o_pi_data_len : Expr.bv; (* 16; bytes of packet data included *)
    }
  | O_stats_reply of { o_stats_type : int; o_stats_body : string (* digest *) }
  | O_barrier_reply
  | O_queue_config_reply of { o_q_port : Expr.bv; o_n_queues : int }
  | O_flow_removed of { o_fr_reason : int }

type event =
  | Msg_out of msg_out
  | Pkt_out of { out_port : Expr.bv; out_pkt : Packet.Sym_packet.t }
  | Probe_response of { probe_id : int; response : probe_response }

and probe_response =
  | Forwarded of { fwd_port : Expr.bv; fwd_pkt : Packet.Sym_packet.t }
  | Sent_to_controller of { stc_reason : int }
  | Probe_dropped

(* --- stable keys -------------------------------------------------------- *)

let bv_key (e : Expr.bv) =
  match Expr.const_value e with
  | Some v -> Printf.sprintf "#%Lx" v
  | None -> Printf.sprintf "e%d" e.Expr.id

let buffer_key = function
  | No_buffer -> "nobuf"
  | Buffer_id { braw } -> "buf:" ^ bv_key braw

let pkt_key (p : Packet.Sym_packet.t) = Packet.Sym_packet.digest p

let msg_out_key = function
  | O_hello -> "hello"
  | O_echo_reply { payload_len } -> Printf.sprintf "echo_reply(%s)" (bv_key payload_len)
  | O_error { o_err_type; o_err_code } ->
    Printf.sprintf "error(%s,%d)" (C.Error_type.name o_err_type) o_err_code
  | O_features_reply { o_n_ports } -> Printf.sprintf "features_reply(%d)" o_n_ports
  | O_get_config_reply { o_flags; o_miss_send_len } ->
    Printf.sprintf "get_config_reply(%s,%s)" (bv_key o_flags) (bv_key o_miss_send_len)
  | O_packet_in { o_pi_in_port; o_pi_reason; o_pi_buffer; o_pi_pkt; o_pi_data_len } ->
    Printf.sprintf "packet_in(%s,%d,%s,%s,len=%s)" (bv_key o_pi_in_port) o_pi_reason
      (buffer_key o_pi_buffer)
      (match o_pi_pkt with Some p -> pkt_key p | None -> "-")
      (bv_key o_pi_data_len)
  | O_stats_reply { o_stats_type; o_stats_body } ->
    Printf.sprintf "stats_reply(%s,%s)" (C.Stats_type.name o_stats_type) o_stats_body
  | O_barrier_reply -> "barrier_reply"
  | O_queue_config_reply { o_q_port; o_n_queues } ->
    Printf.sprintf "queue_config_reply(%s,%d)" (bv_key o_q_port) o_n_queues
  | O_flow_removed { o_fr_reason } -> Printf.sprintf "flow_removed(%d)" o_fr_reason

let probe_response_key = function
  | Forwarded { fwd_port; fwd_pkt } ->
    Printf.sprintf "fwd(%s,%s)" (bv_key fwd_port) (pkt_key fwd_pkt)
  | Sent_to_controller { stc_reason } -> Printf.sprintf "to_ctrl(%d)" stc_reason
  | Probe_dropped -> "dropped"

let event_key = function
  | Msg_out m -> "of:" ^ msg_out_key m
  | Pkt_out { out_port; out_pkt } ->
    Printf.sprintf "dp:tx(%s,%s)" (bv_key out_port) (pkt_key out_pkt)
  | Probe_response { probe_id; response } ->
    Printf.sprintf "probe%d:%s" probe_id (probe_response_key response)

(* The normalized result of a path: what SOFT compares across agents.  A
   crash is part of the observable result (the connection drops). *)
type result = { trace : string list; crash : string option }

let result_of ?crash events = { trace = List.map event_key events; crash }

let result_key r =
  String.concat ";" r.trace
  ^ match r.crash with Some m -> ";CRASH(" ^ m ^ ")" | None -> ""

let equal_result a b = result_key a = result_key b

let pp_result fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter (fun k -> Format.fprintf fmt "%s@ " k) r.trace;
  (match r.crash with Some m -> Format.fprintf fmt "CRASH: %s@ " m | None -> ());
  Format.fprintf fmt "@]"
