(** Human-readable printers for concrete OpenFlow values (used by
    reproducer test cases, the CLI and examples). *)

val mac : Format.formatter -> Types.mac -> unit
val ipv4 : Format.formatter -> int32 -> unit
val action : Format.formatter -> Types.action -> unit
val actions : Format.formatter -> Types.action list -> unit

val of_match : Format.formatter -> Types.of_match -> unit
(** Prints only the non-wildcarded fields. *)

val message : Format.formatter -> Types.message -> unit
val msg : Format.formatter -> Types.msg -> unit
val message_to_string : Types.message -> string
val msg_to_string : Types.msg -> string
