(* OpenFlow 1.0.0 protocol constants, transcribed from openflow.h of the
   v1.0 specification.  Names follow the spec (OFPT_*, OFPP_*, ...) with the
   prefix dropped and lowercased. *)

let version = 0x01

(* ofp_type: message type codes *)
module Msg_type = struct
  let hello = 0
  let error = 1
  let echo_request = 2
  let echo_reply = 3
  let vendor = 4
  let features_request = 5
  let features_reply = 6
  let get_config_request = 7
  let get_config_reply = 8
  let set_config = 9
  let packet_in = 10
  let flow_removed = 11
  let port_status = 12
  let packet_out = 13
  let flow_mod = 14
  let port_mod = 15
  let stats_request = 16
  let stats_reply = 17
  let barrier_request = 18
  let barrier_reply = 19
  let queue_get_config_request = 20
  let queue_get_config_reply = 21

  let max = 21

  let all =
    [
      hello; error; echo_request; echo_reply; vendor; features_request;
      features_reply; get_config_request; get_config_reply; set_config;
      packet_in; flow_removed; port_status; packet_out; flow_mod; port_mod;
      stats_request; stats_reply; barrier_request; barrier_reply;
      queue_get_config_request; queue_get_config_reply;
    ]

  let name t =
    match t with
    | 0 -> "HELLO"
    | 1 -> "ERROR"
    | 2 -> "ECHO_REQUEST"
    | 3 -> "ECHO_REPLY"
    | 4 -> "VENDOR"
    | 5 -> "FEATURES_REQUEST"
    | 6 -> "FEATURES_REPLY"
    | 7 -> "GET_CONFIG_REQUEST"
    | 8 -> "GET_CONFIG_REPLY"
    | 9 -> "SET_CONFIG"
    | 10 -> "PACKET_IN"
    | 11 -> "FLOW_REMOVED"
    | 12 -> "PORT_STATUS"
    | 13 -> "PACKET_OUT"
    | 14 -> "FLOW_MOD"
    | 15 -> "PORT_MOD"
    | 16 -> "STATS_REQUEST"
    | 17 -> "STATS_REPLY"
    | 18 -> "BARRIER_REQUEST"
    | 19 -> "BARRIER_REPLY"
    | 20 -> "QUEUE_GET_CONFIG_REQUEST"
    | 21 -> "QUEUE_GET_CONFIG_REPLY"
    | n -> Printf.sprintf "UNKNOWN(%d)" n
end

(* ofp_port: special port numbers (16-bit) *)
module Port = struct
  let max = 0xff00 (* maximum number of physical ports *)
  let in_port = 0xfff8 (* send back out the input port *)
  let table = 0xfff9 (* perform actions in the flow table (packet-out only) *)
  let normal = 0xfffa (* traditional L2/L3 processing *)
  let flood = 0xfffb (* all ports except input and flood-disabled *)
  let all = 0xfffc (* all ports except input *)
  let controller = 0xfffd (* encapsulate and send to controller *)
  let local = 0xfffe (* local openflow "port" *)
  let none = 0xffff (* not associated with any port *)

  let specials = [ in_port; table; normal; flood; all; controller; local; none ]

  let name p =
    if p = in_port then "IN_PORT"
    else if p = table then "TABLE"
    else if p = normal then "NORMAL"
    else if p = flood then "FLOOD"
    else if p = all then "ALL"
    else if p = controller then "CONTROLLER"
    else if p = local then "LOCAL"
    else if p = none then "NONE"
    else string_of_int p
end

(* ofp_action_type *)
module Action_type = struct
  let output = 0
  let set_vlan_vid = 1
  let set_vlan_pcp = 2
  let strip_vlan = 3
  let set_dl_src = 4
  let set_dl_dst = 5
  let set_nw_src = 6
  let set_nw_dst = 7
  let set_nw_tos = 8
  let set_tp_src = 9
  let set_tp_dst = 10
  let enqueue = 11
  let vendor = 0xffff

  let all_standard =
    [
      output; set_vlan_vid; set_vlan_pcp; strip_vlan; set_dl_src; set_dl_dst;
      set_nw_src; set_nw_dst; set_nw_tos; set_tp_src; set_tp_dst; enqueue;
    ]

  (* wire length in bytes of each standard action structure *)
  let wire_len t =
    if t = output || t = set_vlan_vid || t = set_vlan_pcp || t = strip_vlan
       || t = set_nw_src || t = set_nw_dst || t = set_nw_tos || t = set_tp_src
       || t = set_tp_dst
    then 8
    else if t = set_dl_src || t = set_dl_dst || t = enqueue then 16
    else 8

  let name t =
    match t with
    | 0 -> "OUTPUT"
    | 1 -> "SET_VLAN_VID"
    | 2 -> "SET_VLAN_PCP"
    | 3 -> "STRIP_VLAN"
    | 4 -> "SET_DL_SRC"
    | 5 -> "SET_DL_DST"
    | 6 -> "SET_NW_SRC"
    | 7 -> "SET_NW_DST"
    | 8 -> "SET_NW_TOS"
    | 9 -> "SET_TP_SRC"
    | 10 -> "SET_TP_DST"
    | 11 -> "ENQUEUE"
    | 0xffff -> "VENDOR"
    | n -> Printf.sprintf "ACTION(%d)" n
end

(* ofp_flow_mod_command *)
module Flow_mod_command = struct
  let add = 0
  let modify = 1
  let modify_strict = 2
  let delete = 3
  let delete_strict = 4

  let all = [ add; modify; modify_strict; delete; delete_strict ]

  let name c =
    match c with
    | 0 -> "ADD"
    | 1 -> "MODIFY"
    | 2 -> "MODIFY_STRICT"
    | 3 -> "DELETE"
    | 4 -> "DELETE_STRICT"
    | n -> Printf.sprintf "CMD(%d)" n
end

(* ofp_flow_mod_flags *)
module Flow_mod_flags = struct
  let send_flow_rem = 1 lsl 0
  let check_overlap = 1 lsl 1
  let emerg = 1 lsl 2
end

(* ofp_flow_wildcards *)
module Wildcards = struct
  let in_port = 1 lsl 0
  let dl_vlan = 1 lsl 1
  let dl_src = 1 lsl 2
  let dl_dst = 1 lsl 3
  let dl_type = 1 lsl 4
  let nw_proto = 1 lsl 5
  let tp_src = 1 lsl 6
  let tp_dst = 1 lsl 7
  let nw_src_shift = 8
  let nw_src_bits = 6
  let nw_src_mask = 0x3f lsl 8
  let nw_src_all = 32 lsl 8
  let nw_dst_shift = 14
  let nw_dst_bits = 6
  let nw_dst_mask = 0x3f lsl 14
  let nw_dst_all = 32 lsl 14
  let dl_vlan_pcp = 1 lsl 20
  let nw_tos = 1 lsl 21
  let all = (1 lsl 22) - 1
end

(* ofp_error_type *)
module Error_type = struct
  let hello_failed = 0
  let bad_request = 1
  let bad_action = 2
  let flow_mod_failed = 3
  let port_mod_failed = 4
  let queue_op_failed = 5

  let name t =
    match t with
    | 0 -> "HELLO_FAILED"
    | 1 -> "BAD_REQUEST"
    | 2 -> "BAD_ACTION"
    | 3 -> "FLOW_MOD_FAILED"
    | 4 -> "PORT_MOD_FAILED"
    | 5 -> "QUEUE_OP_FAILED"
    | n -> Printf.sprintf "ERRTYPE(%d)" n
end

(* ofp_bad_request_code *)
module Bad_request = struct
  let bad_version = 0
  let bad_type = 1
  let bad_stat = 2
  let bad_vendor = 3
  let bad_subtype = 4
  let eperm = 5
  let bad_len = 6
  let buffer_empty = 7
  let buffer_unknown = 8
end

(* ofp_bad_action_code *)
module Bad_action = struct
  let bad_type = 0
  let bad_len = 1
  let bad_vendor = 2
  let bad_vendor_type = 3
  let bad_out_port = 4
  let bad_argument = 5
  let eperm = 6
  let too_many = 7
  let bad_queue = 8
end

(* ofp_flow_mod_failed_code *)
module Flow_mod_failed = struct
  let all_tables_full = 0
  let overlap = 1
  let eperm = 2
  let bad_emerg_timeout = 3
  let bad_command = 4
  let unsupported = 5
end

(* ofp_queue_op_failed_code *)
module Queue_op_failed = struct
  let bad_port = 0
  let bad_queue = 1
  let eperm = 2
end

(* ofp_stats_types *)
module Stats_type = struct
  let desc = 0
  let flow = 1
  let aggregate = 2
  let table = 3
  let port = 4
  let queue = 5
  let vendor = 0xffff

  let all_standard = [ desc; flow; aggregate; table; port; queue ]

  let name t =
    match t with
    | 0 -> "DESC"
    | 1 -> "FLOW"
    | 2 -> "AGGREGATE"
    | 3 -> "TABLE"
    | 4 -> "PORT"
    | 5 -> "QUEUE"
    | 0xffff -> "VENDOR"
    | n -> Printf.sprintf "STATS(%d)" n
end

(* ofp_config_flags: fragment handling *)
module Config_flags = struct
  let frag_normal = 0
  let frag_drop = 1
  let frag_reasm = 2
  let frag_mask = 3
end

(* ofp_packet_in_reason *)
module Packet_in_reason = struct
  let no_match = 0
  let action = 1
end

(* ofp_flow_removed_reason *)
module Flow_removed_reason = struct
  let idle_timeout = 0
  let hard_timeout = 1
  let delete = 2
end

(* structure sizes on the wire (bytes) *)
module Sizes = struct
  let header = 8
  let of_match = 40
  let flow_mod = 72 (* includes header and match, excludes actions *)
  let packet_out = 16 (* includes header, excludes actions and data *)
  let stats_request = 12 (* includes header, excludes body *)
  let stats_reply = 12
  let flow_stats_request = 44 (* match + table_id + pad + out_port *)
  let switch_config = 12
  let phy_port = 48
  let features_reply = 32 (* excludes ports *)
  let queue_get_config_request = 12
  let error_msg = 12 (* excludes data *)
  let port_mod = 32
  let packet_in = 18 (* excludes data *)
  let flow_removed = 88
end

let buffer_none = 0xffffffffl

(* Ethernet / IP constants used in matching and validation *)
module Eth = struct
  let type_ip = 0x0800
  let type_arp = 0x0806
  let type_vlan = 0x8100
end

module Ip_proto = struct
  let icmp = 1
  let tcp = 6
  let udp = 17
end

let vlan_none = 0xffff (* OFP_VLAN_NONE: match packets without a VLAN tag *)
