(* Concrete OpenFlow 1.0 message structures.  These mirror the wire
   structures one-to-one; [Wire] serializes/parses them, and the harness
   uses them for reproducer test cases.  Symbolic counterparts live in
   [Sym_msg]. *)

type mac = int64 (* low 48 bits *)

type of_match = {
  wildcards : int32;
  in_port : int;
  dl_src : mac;
  dl_dst : mac;
  dl_vlan : int;
  dl_vlan_pcp : int;
  dl_type : int;
  nw_tos : int;
  nw_proto : int;
  nw_src : int32;
  nw_dst : int32;
  tp_src : int;
  tp_dst : int;
}

let match_all =
  {
    wildcards = Int32.of_int Constants.Wildcards.all;
    in_port = 0;
    dl_src = 0L;
    dl_dst = 0L;
    dl_vlan = 0;
    dl_vlan_pcp = 0;
    dl_type = 0;
    nw_tos = 0;
    nw_proto = 0;
    nw_src = 0l;
    nw_dst = 0l;
    tp_src = 0;
    tp_dst = 0;
  }

type action =
  | Output of { port : int; max_len : int }
  | Set_vlan_vid of int
  | Set_vlan_pcp of int
  | Strip_vlan
  | Set_dl_src of mac
  | Set_dl_dst of mac
  | Set_nw_src of int32
  | Set_nw_dst of int32
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int
  | Enqueue of { port : int; queue_id : int32 }
  | Vendor_action of { vendor : int32; body : string }
  | Unknown_action of { typ : int; len : int; body : string }

type flow_mod = {
  fm_match : of_match;
  cookie : int64;
  command : int;
  idle_timeout : int;
  hard_timeout : int;
  priority : int;
  fm_buffer_id : int32;
  out_port : int;
  flags : int;
  fm_actions : action list;
}

type packet_out = {
  po_buffer_id : int32;
  po_in_port : int;
  po_actions : action list;
  po_data : string; (* raw packet bytes; empty when buffer_id is used *)
}

type switch_config = { cfg_flags : int; miss_send_len : int }

type phy_port = {
  port_no : int;
  hw_addr : mac;
  port_name : string; (* up to 16 bytes *)
  config : int32;
  state : int32;
  curr : int32;
  advertised : int32;
  supported : int32;
  peer : int32;
}

type switch_features = {
  datapath_id : int64;
  n_buffers : int32;
  n_tables : int;
  capabilities : int32;
  supported_actions : int32;
  ports : phy_port list;
}

type packet_in = {
  pi_buffer_id : int32;
  pi_total_len : int;
  pi_in_port : int;
  pi_reason : int;
  pi_data : string;
}

type flow_removed = {
  fr_match : of_match;
  fr_cookie : int64;
  fr_priority : int;
  fr_reason : int;
  fr_duration_sec : int32;
  fr_duration_nsec : int32;
  fr_idle_timeout : int;
  fr_packet_count : int64;
  fr_byte_count : int64;
}

type port_status = { ps_reason : int; ps_desc : phy_port }

type port_mod = {
  pm_port_no : int;
  pm_hw_addr : mac;
  pm_config : int32;
  pm_mask : int32;
  pm_advertise : int32;
}

type flow_stats_request = { fsr_match : of_match; fsr_table_id : int; fsr_out_port : int }

type stats_request =
  | Desc_request
  | Flow_stats_request of flow_stats_request
  | Aggregate_request of flow_stats_request
  | Table_stats_request
  | Port_stats_request of { psr_port_no : int }
  | Queue_stats_request of { qsr_port_no : int; qsr_queue_id : int32 }
  | Vendor_stats_request of { vsr_vendor : int32; vsr_body : string }
  | Unknown_stats_request of { usr_type : int; usr_body : string }

type flow_stats = {
  fs_table_id : int;
  fs_match : of_match;
  fs_duration_sec : int32;
  fs_duration_nsec : int32;
  fs_priority : int;
  fs_idle_timeout : int;
  fs_hard_timeout : int;
  fs_cookie : int64;
  fs_packet_count : int64;
  fs_byte_count : int64;
  fs_actions : action list;
}

type table_stats = {
  ts_table_id : int;
  ts_name : string;
  ts_wildcards : int32;
  ts_max_entries : int32;
  ts_active_count : int32;
  ts_lookup_count : int64;
  ts_matched_count : int64;
}

type port_stats = {
  pst_port_no : int;
  pst_rx_packets : int64;
  pst_tx_packets : int64;
  pst_rx_bytes : int64;
  pst_tx_bytes : int64;
  pst_rx_dropped : int64;
  pst_tx_dropped : int64;
  pst_rx_errors : int64;
  pst_tx_errors : int64;
}

type stats_reply =
  | Desc_reply of { mfr : string; hw : string; sw : string; serial : string; dp : string }
  | Flow_stats_reply of flow_stats list
  | Aggregate_reply of { agg_packet_count : int64; agg_byte_count : int64; agg_flow_count : int32 }
  | Table_stats_reply of table_stats list
  | Port_stats_reply of port_stats list
  | Queue_stats_reply of { qs_entries : (int * int32 * int64 * int64 * int64) list }

type error_msg = { err_type : int; err_code : int; err_data : string }

type message =
  | Hello
  | Error_msg of error_msg
  | Echo_request of string
  | Echo_reply of string
  | Vendor of { vendor : int32; vendor_body : string }
  | Features_request
  | Features_reply of switch_features
  | Get_config_request
  | Get_config_reply of switch_config
  | Set_config of switch_config
  | Packet_in of packet_in
  | Flow_removed of flow_removed
  | Port_status of port_status
  | Packet_out of packet_out
  | Flow_mod of flow_mod
  | Port_mod of port_mod
  | Stats_request of { sreq_flags : int; sreq : stats_request }
  | Stats_reply of { srep_flags : int; srep : stats_reply }
  | Barrier_request
  | Barrier_reply
  | Queue_get_config_request of { qgc_port : int }
  | Queue_get_config_reply of { qgr_port : int; qgr_queues : (int32 * int) list }

type msg = { xid : int32; payload : message }

let msg_type_of_message = function
  | Hello -> Constants.Msg_type.hello
  | Error_msg _ -> Constants.Msg_type.error
  | Echo_request _ -> Constants.Msg_type.echo_request
  | Echo_reply _ -> Constants.Msg_type.echo_reply
  | Vendor _ -> Constants.Msg_type.vendor
  | Features_request -> Constants.Msg_type.features_request
  | Features_reply _ -> Constants.Msg_type.features_reply
  | Get_config_request -> Constants.Msg_type.get_config_request
  | Get_config_reply _ -> Constants.Msg_type.get_config_reply
  | Set_config _ -> Constants.Msg_type.set_config
  | Packet_in _ -> Constants.Msg_type.packet_in
  | Flow_removed _ -> Constants.Msg_type.flow_removed
  | Port_status _ -> Constants.Msg_type.port_status
  | Packet_out _ -> Constants.Msg_type.packet_out
  | Flow_mod _ -> Constants.Msg_type.flow_mod
  | Port_mod _ -> Constants.Msg_type.port_mod
  | Stats_request _ -> Constants.Msg_type.stats_request
  | Stats_reply _ -> Constants.Msg_type.stats_reply
  | Barrier_request -> Constants.Msg_type.barrier_request
  | Barrier_reply -> Constants.Msg_type.barrier_reply
  | Queue_get_config_request _ -> Constants.Msg_type.queue_get_config_request
  | Queue_get_config_reply _ -> Constants.Msg_type.queue_get_config_reply
