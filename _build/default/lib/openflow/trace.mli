(** Observable outputs of an OpenFlow agent: messages back to the
    controller and packets on the data plane (paper §3.3).  Events may
    embed symbolic expressions — the harness feeds both agents
    identically-named symbolic inputs, so hash-consing makes symbolic
    outputs comparable by expression identity.

    {!event_key} renders an event to a stable string; a path's *result* is
    the list of its event keys plus the crash flag — exactly what grouping
    and crosschecking compare.  Normalization (buffer ids, vendor strings)
    happens in [Harness.Normalize] before keys are taken. *)

open Smt

type buffer_ref = No_buffer | Buffer_id of sbuf
and sbuf = { braw : Expr.bv (* 32 *) }

type msg_out =
  | O_hello
  | O_echo_reply of { payload_len : Expr.bv (* 16 *) }
  | O_error of { o_err_type : int; o_err_code : int }
  | O_features_reply of { o_n_ports : int }
  | O_get_config_reply of { o_flags : Expr.bv; o_miss_send_len : Expr.bv }
  | O_packet_in of {
      o_pi_in_port : Expr.bv;
      o_pi_reason : int;
      o_pi_buffer : buffer_ref;
      o_pi_pkt : Packet.Sym_packet.t option;
      o_pi_data_len : Expr.bv;  (** bytes of packet data included *)
    }
  | O_stats_reply of { o_stats_type : int; o_stats_body : string (* digest *) }
  | O_barrier_reply
  | O_queue_config_reply of { o_q_port : Expr.bv; o_n_queues : int }
  | O_flow_removed of { o_fr_reason : int }

type event =
  | Msg_out of msg_out  (** OpenFlow message to the controller *)
  | Pkt_out of { out_port : Expr.bv; out_pkt : Packet.Sym_packet.t }
      (** data-plane transmission *)
  | Probe_response of { probe_id : int; response : probe_response }

and probe_response =
  | Forwarded of { fwd_port : Expr.bv; fwd_pkt : Packet.Sym_packet.t }
  | Sent_to_controller of { stc_reason : int }
  | Probe_dropped  (** the explicit empty probe response of §3.3 *)

val event_key : event -> string
val msg_out_key : msg_out -> string

type result = { trace : string list; crash : string option }
(** The normalized result of a path.  A crash is observable (the control
    connection drops) and is part of the result. *)

val result_of : ?crash:string -> event list -> result
val result_key : result -> string
val equal_result : result -> result -> bool
val pp_result : Format.formatter -> result -> unit
