lib/openflow/trace.ml: Constants Expr Format List Packet Printf Smt String
