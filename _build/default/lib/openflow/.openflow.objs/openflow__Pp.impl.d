lib/openflow/pp.ml: Constants Format Int32 Int64 List String Types Wire
