lib/openflow/sym_msg.mli: Expr Model Packet Smt Types
