lib/openflow/types.ml: Constants Int32
