lib/openflow/pp.mli: Format Types
