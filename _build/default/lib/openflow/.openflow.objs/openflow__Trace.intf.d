lib/openflow/trace.mli: Expr Format Packet Smt
