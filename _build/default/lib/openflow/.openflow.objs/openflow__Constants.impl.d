lib/openflow/constants.ml: Printf
