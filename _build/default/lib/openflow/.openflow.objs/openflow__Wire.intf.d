lib/openflow/wire.mli: Types
