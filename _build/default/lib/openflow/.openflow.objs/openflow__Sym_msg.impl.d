lib/openflow/sym_msg.ml: Array Char Constants Expr Int64 List Model Packet Printf Smt String Types
