lib/openflow/wire.ml: Buffer Char Constants Int32 Int64 List Printf String Types
