(** OpenFlow 1.0 wire codec: big-endian serialization and parsing of the
    concrete message structures in {!Types}.  Round-tripping is checked by
    property-based tests; reproducer test cases are emitted as real wire
    bytes through this module. *)

exception Parse_error of string

val serialize : Types.msg -> string
(** Exact wire bytes, header included; the length field is computed. *)

val parse : string -> Types.msg
(** Parse exactly one message.
    @raise Parse_error on bad version, truncation, trailing bytes, or
    malformed action lists. *)

val parse_at : string -> int -> Types.msg * int
(** Parse one message at an offset; returns it and the next offset. *)

val parse_stream : string -> Types.msg list
(** Parse back-to-back messages until the buffer is exhausted. *)

(** {1 Pieces exposed for stats handling and tests} *)

val stats_type_of_request : Types.stats_request -> int
val stats_type_of_reply : Types.stats_reply -> int
val action_wire_len : Types.action -> int
