(* Human-readable printers for concrete OpenFlow values (reports, examples,
   debugging).  Kept separate from [Types] so the data definitions stay
   dependency-free. *)

open Types
module C = Constants

let mac fmt (m : mac) =
  Format.fprintf fmt "%02Lx:%02Lx:%02Lx:%02Lx:%02Lx:%02Lx"
    (Int64.logand (Int64.shift_right_logical m 40) 0xffL)
    (Int64.logand (Int64.shift_right_logical m 32) 0xffL)
    (Int64.logand (Int64.shift_right_logical m 24) 0xffL)
    (Int64.logand (Int64.shift_right_logical m 16) 0xffL)
    (Int64.logand (Int64.shift_right_logical m 8) 0xffL)
    (Int64.logand m 0xffL)

let ipv4 fmt (a : int32) =
  let b i = Int32.to_int (Int32.logand (Int32.shift_right_logical a (8 * i)) 0xffl) in
  Format.fprintf fmt "%d.%d.%d.%d" (b 3) (b 2) (b 1) (b 0)

let action fmt = function
  | Output { port; max_len } ->
    Format.fprintf fmt "output(port=%s,max_len=%d)" (C.Port.name port) max_len
  | Set_vlan_vid v -> Format.fprintf fmt "set_vlan_vid(%d)" v
  | Set_vlan_pcp v -> Format.fprintf fmt "set_vlan_pcp(%d)" v
  | Strip_vlan -> Format.fprintf fmt "strip_vlan"
  | Set_dl_src m -> Format.fprintf fmt "set_dl_src(%a)" mac m
  | Set_dl_dst m -> Format.fprintf fmt "set_dl_dst(%a)" mac m
  | Set_nw_src a -> Format.fprintf fmt "set_nw_src(%a)" ipv4 a
  | Set_nw_dst a -> Format.fprintf fmt "set_nw_dst(%a)" ipv4 a
  | Set_nw_tos t -> Format.fprintf fmt "set_nw_tos(%d)" t
  | Set_tp_src p -> Format.fprintf fmt "set_tp_src(%d)" p
  | Set_tp_dst p -> Format.fprintf fmt "set_tp_dst(%d)" p
  | Enqueue { port; queue_id } -> Format.fprintf fmt "enqueue(port=%d,q=%ld)" port queue_id
  | Vendor_action { vendor; _ } -> Format.fprintf fmt "vendor_action(0x%lx)" vendor
  | Unknown_action { typ; _ } -> Format.fprintf fmt "unknown_action(%d)" typ

let of_match fmt (m : of_match) =
  let wc = Int32.to_int m.wildcards in
  let field bit name pr =
    if wc land bit = 0 then Format.fprintf fmt "%s=%t," name pr
  in
  Format.fprintf fmt "{";
  field C.Wildcards.in_port "in_port" (fun f -> Format.fprintf f "%d" m.in_port);
  field C.Wildcards.dl_src "dl_src" (fun f -> mac f m.dl_src);
  field C.Wildcards.dl_dst "dl_dst" (fun f -> mac f m.dl_dst);
  field C.Wildcards.dl_vlan "dl_vlan" (fun f -> Format.fprintf f "%d" m.dl_vlan);
  field C.Wildcards.dl_vlan_pcp "dl_vlan_pcp" (fun f -> Format.fprintf f "%d" m.dl_vlan_pcp);
  field C.Wildcards.dl_type "dl_type" (fun f -> Format.fprintf f "0x%04x" m.dl_type);
  field C.Wildcards.nw_tos "nw_tos" (fun f -> Format.fprintf f "%d" m.nw_tos);
  field C.Wildcards.nw_proto "nw_proto" (fun f -> Format.fprintf f "%d" m.nw_proto);
  let nw_src_bits = (wc lsr C.Wildcards.nw_src_shift) land 0x3f in
  if nw_src_bits < 32 then Format.fprintf fmt "nw_src=%a/%d," ipv4 m.nw_src (32 - nw_src_bits);
  let nw_dst_bits = (wc lsr C.Wildcards.nw_dst_shift) land 0x3f in
  if nw_dst_bits < 32 then Format.fprintf fmt "nw_dst=%a/%d," ipv4 m.nw_dst (32 - nw_dst_bits);
  field C.Wildcards.tp_src "tp_src" (fun f -> Format.fprintf f "%d" m.tp_src);
  field C.Wildcards.tp_dst "tp_dst" (fun f -> Format.fprintf f "%d" m.tp_dst);
  Format.fprintf fmt "}"

let actions fmt l =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") action)
    l

let message fmt = function
  | Hello -> Format.fprintf fmt "HELLO"
  | Error_msg { err_type; err_code; _ } ->
    Format.fprintf fmt "ERROR(%s,code=%d)" (C.Error_type.name err_type) err_code
  | Echo_request _ -> Format.fprintf fmt "ECHO_REQUEST"
  | Echo_reply _ -> Format.fprintf fmt "ECHO_REPLY"
  | Vendor { vendor; _ } -> Format.fprintf fmt "VENDOR(0x%lx)" vendor
  | Features_request -> Format.fprintf fmt "FEATURES_REQUEST"
  | Features_reply f ->
    Format.fprintf fmt "FEATURES_REPLY(dpid=0x%Lx,ports=%d)" f.datapath_id
      (List.length f.ports)
  | Get_config_request -> Format.fprintf fmt "GET_CONFIG_REQUEST"
  | Get_config_reply c ->
    Format.fprintf fmt "GET_CONFIG_REPLY(flags=%d,miss=%d)" c.cfg_flags c.miss_send_len
  | Set_config c ->
    Format.fprintf fmt "SET_CONFIG(flags=%d,miss=%d)" c.cfg_flags c.miss_send_len
  | Packet_in p ->
    Format.fprintf fmt "PACKET_IN(in_port=%d,reason=%d,len=%d)" p.pi_in_port p.pi_reason
      (String.length p.pi_data)
  | Flow_removed f ->
    Format.fprintf fmt "FLOW_REMOVED(%a,reason=%d)" of_match f.fr_match f.fr_reason
  | Port_status p -> Format.fprintf fmt "PORT_STATUS(reason=%d)" p.ps_reason
  | Packet_out p ->
    Format.fprintf fmt "PACKET_OUT(buf=%ld,in_port=%d,%a)" p.po_buffer_id p.po_in_port
      actions p.po_actions
  | Flow_mod f ->
    Format.fprintf fmt "FLOW_MOD(%s,%a,prio=%d,%a)"
      (C.Flow_mod_command.name f.command)
      of_match f.fm_match f.priority actions f.fm_actions
  | Port_mod p -> Format.fprintf fmt "PORT_MOD(port=%d)" p.pm_port_no
  | Stats_request { sreq; _ } ->
    Format.fprintf fmt "STATS_REQUEST(%s)"
      (C.Stats_type.name (Wire.stats_type_of_request sreq))
  | Stats_reply { srep; _ } ->
    Format.fprintf fmt "STATS_REPLY(%s)" (C.Stats_type.name (Wire.stats_type_of_reply srep))
  | Barrier_request -> Format.fprintf fmt "BARRIER_REQUEST"
  | Barrier_reply -> Format.fprintf fmt "BARRIER_REPLY"
  | Queue_get_config_request { qgc_port } ->
    Format.fprintf fmt "QUEUE_GET_CONFIG_REQUEST(port=%d)" qgc_port
  | Queue_get_config_reply { qgr_port; qgr_queues } ->
    Format.fprintf fmt "QUEUE_GET_CONFIG_REPLY(port=%d,queues=%d)" qgr_port
      (List.length qgr_queues)

let msg fmt (m : msg) = Format.fprintf fmt "xid=%ld %a" m.xid message m.payload

let message_to_string m = Format.asprintf "%a" message m
let msg_to_string m = Format.asprintf "%a" msg m
