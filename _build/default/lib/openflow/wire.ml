(* OpenFlow 1.0 wire codec: big-endian serialization and parsing of the
   concrete message structures in [Types].  Round-tripping is checked by
   property-based tests.  Reproducer test cases produced by the crosscheck
   phase are emitted as real wire bytes through this module. *)

open Types
module C = Constants

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- writer --------------------------------------------------------- *)

module W = struct
  let create () = Buffer.create 64
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u16 b v =
    u8 b (v lsr 8);
    u8 b v

  let u32 b (v : int32) =
    let v = Int32.to_int v land 0xffffffff in
    u8 b (v lsr 24);
    u8 b (v lsr 16);
    u8 b (v lsr 8);
    u8 b v

  let u64 b (v : int64) =
    u32 b (Int64.to_int32 (Int64.shift_right_logical v 32));
    u32 b (Int64.to_int32 v)

  let mac b (v : mac) =
    for i = 5 downto 0 do
      u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

  let pad b n = for _ = 1 to n do u8 b 0 done

  let fixed_string b s n =
    let len = min (String.length s) n in
    Buffer.add_substring b s 0 len;
    pad b (n - len)

  let raw b s = Buffer.add_string b s
  let contents b = Buffer.contents b
end

(* --- reader --------------------------------------------------------- *)

module R = struct
  type t = { data : string; mutable pos : int; limit : int }

  let create ?limit data =
    let limit = match limit with Some l -> l | None -> String.length data in
    { data; pos = 0; limit }

  let remaining r = r.limit - r.pos

  let need r n = if remaining r < n then fail "truncated: need %d bytes, have %d" n (remaining r)

  let u8 r =
    need r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let hi = u8 r in
    let lo = u8 r in
    (hi lsl 8) lor lo

  let u32 r =
    let a = u16 r and b = u16 r in
    Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b)

  let u64 r =
    let hi = u32 r and lo = u32 r in
    Int64.logor
      (Int64.shift_left (Int64.of_int32 hi) 32)
      (Int64.logand (Int64.of_int32 lo) 0xffffffffL)

  let mac r =
    let v = ref 0L in
    for _ = 1 to 6 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (u8 r))
    done;
    !v

  let skip r n =
    need r n;
    r.pos <- r.pos + n

  let fixed_string r n =
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    (* trim trailing NULs *)
    let len = ref n in
    while !len > 0 && s.[!len - 1] = '\000' do
      decr len
    done;
    String.sub s 0 !len

  let rest r =
    let s = String.sub r.data r.pos (remaining r) in
    r.pos <- r.limit;
    s

  let sub_reader r n =
    need r n;
    let s = { data = r.data; pos = r.pos; limit = r.pos + n } in
    r.pos <- r.pos + n;
    s
end

(* --- match ---------------------------------------------------------- *)

let write_match b (m : of_match) =
  W.u32 b m.wildcards;
  W.u16 b m.in_port;
  W.mac b m.dl_src;
  W.mac b m.dl_dst;
  W.u16 b m.dl_vlan;
  W.u8 b m.dl_vlan_pcp;
  W.pad b 1;
  W.u16 b m.dl_type;
  W.u8 b m.nw_tos;
  W.u8 b m.nw_proto;
  W.pad b 2;
  W.u32 b m.nw_src;
  W.u32 b m.nw_dst;
  W.u16 b m.tp_src;
  W.u16 b m.tp_dst

let read_match r =
  let wildcards = R.u32 r in
  let in_port = R.u16 r in
  let dl_src = R.mac r in
  let dl_dst = R.mac r in
  let dl_vlan = R.u16 r in
  let dl_vlan_pcp = R.u8 r in
  R.skip r 1;
  let dl_type = R.u16 r in
  let nw_tos = R.u8 r in
  let nw_proto = R.u8 r in
  R.skip r 2;
  let nw_src = R.u32 r in
  let nw_dst = R.u32 r in
  let tp_src = R.u16 r in
  let tp_dst = R.u16 r in
  {
    wildcards; in_port; dl_src; dl_dst; dl_vlan; dl_vlan_pcp; dl_type; nw_tos;
    nw_proto; nw_src; nw_dst; tp_src; tp_dst;
  }

(* --- actions -------------------------------------------------------- *)

let action_wire_len = function
  | Output _ | Set_vlan_vid _ | Set_vlan_pcp _ | Strip_vlan | Set_nw_src _
  | Set_nw_dst _ | Set_nw_tos _ | Set_tp_src _ | Set_tp_dst _ -> 8
  | Set_dl_src _ | Set_dl_dst _ | Enqueue _ -> 16
  | Vendor_action { body; _ } -> 8 + String.length body
  | Unknown_action { len; _ } -> len

let write_action b a =
  let len = action_wire_len a in
  match a with
  | Output { port; max_len } ->
    W.u16 b C.Action_type.output;
    W.u16 b len;
    W.u16 b port;
    W.u16 b max_len
  | Set_vlan_vid vid ->
    W.u16 b C.Action_type.set_vlan_vid;
    W.u16 b len;
    W.u16 b vid;
    W.pad b 2
  | Set_vlan_pcp pcp ->
    W.u16 b C.Action_type.set_vlan_pcp;
    W.u16 b len;
    W.u8 b pcp;
    W.pad b 3
  | Strip_vlan ->
    W.u16 b C.Action_type.strip_vlan;
    W.u16 b len;
    W.pad b 4
  | Set_dl_src addr ->
    W.u16 b C.Action_type.set_dl_src;
    W.u16 b len;
    W.mac b addr;
    W.pad b 6
  | Set_dl_dst addr ->
    W.u16 b C.Action_type.set_dl_dst;
    W.u16 b len;
    W.mac b addr;
    W.pad b 6
  | Set_nw_src addr ->
    W.u16 b C.Action_type.set_nw_src;
    W.u16 b len;
    W.u32 b addr
  | Set_nw_dst addr ->
    W.u16 b C.Action_type.set_nw_dst;
    W.u16 b len;
    W.u32 b addr
  | Set_nw_tos tos ->
    W.u16 b C.Action_type.set_nw_tos;
    W.u16 b len;
    W.u8 b tos;
    W.pad b 3
  | Set_tp_src port ->
    W.u16 b C.Action_type.set_tp_src;
    W.u16 b len;
    W.u16 b port;
    W.pad b 2
  | Set_tp_dst port ->
    W.u16 b C.Action_type.set_tp_dst;
    W.u16 b len;
    W.u16 b port;
    W.pad b 2
  | Enqueue { port; queue_id } ->
    W.u16 b C.Action_type.enqueue;
    W.u16 b len;
    W.u16 b port;
    W.pad b 6;
    W.u32 b queue_id
  | Vendor_action { vendor; body } ->
    W.u16 b C.Action_type.vendor;
    W.u16 b len;
    W.u32 b vendor;
    W.raw b body
  | Unknown_action { typ; len; body } ->
    W.u16 b typ;
    W.u16 b len;
    W.raw b body

let read_action r =
  let typ = R.u16 r in
  let len = R.u16 r in
  if len < 8 then fail "action length %d < 8" len;
  if len mod 8 <> 0 then fail "action length %d not multiple of 8" len;
  let body = R.sub_reader r (len - 4) in
  let a =
    if typ = C.Action_type.output then
      let port = R.u16 body in
      let max_len = R.u16 body in
      Output { port; max_len }
    else if typ = C.Action_type.set_vlan_vid then Set_vlan_vid (R.u16 body)
    else if typ = C.Action_type.set_vlan_pcp then Set_vlan_pcp (R.u8 body)
    else if typ = C.Action_type.strip_vlan then Strip_vlan
    else if typ = C.Action_type.set_dl_src then Set_dl_src (R.mac body)
    else if typ = C.Action_type.set_dl_dst then Set_dl_dst (R.mac body)
    else if typ = C.Action_type.set_nw_src then Set_nw_src (R.u32 body)
    else if typ = C.Action_type.set_nw_dst then Set_nw_dst (R.u32 body)
    else if typ = C.Action_type.set_nw_tos then Set_nw_tos (R.u8 body)
    else if typ = C.Action_type.set_tp_src then Set_tp_src (R.u16 body)
    else if typ = C.Action_type.set_tp_dst then Set_tp_dst (R.u16 body)
    else if typ = C.Action_type.enqueue then begin
      let port = R.u16 body in
      R.skip body 6;
      Enqueue { port; queue_id = R.u32 body }
    end
    else if typ = C.Action_type.vendor then begin
      let vendor = R.u32 body in
      Vendor_action { vendor; body = R.rest body }
    end
    else Unknown_action { typ; len; body = R.rest body }
  in
  a

let read_actions r nbytes =
  let sub = R.sub_reader r nbytes in
  let rec go acc = if R.remaining sub = 0 then List.rev acc else go (read_action sub :: acc) in
  go []

(* --- stats bodies ---------------------------------------------------- *)

let write_flow_stats_request b (f : flow_stats_request) =
  write_match b f.fsr_match;
  W.u8 b f.fsr_table_id;
  W.pad b 1;
  W.u16 b f.fsr_out_port

let read_flow_stats_request r =
  let fsr_match = read_match r in
  let fsr_table_id = R.u8 r in
  R.skip r 1;
  let fsr_out_port = R.u16 r in
  { fsr_match; fsr_table_id; fsr_out_port }

let write_stats_request_body b = function
  | Desc_request -> ()
  | Flow_stats_request f | Aggregate_request f -> write_flow_stats_request b f
  | Table_stats_request -> ()
  | Port_stats_request { psr_port_no } ->
    W.u16 b psr_port_no;
    W.pad b 6
  | Queue_stats_request { qsr_port_no; qsr_queue_id } ->
    W.u16 b qsr_port_no;
    W.pad b 2;
    W.u32 b qsr_queue_id
  | Vendor_stats_request { vsr_vendor; vsr_body } ->
    W.u32 b vsr_vendor;
    W.raw b vsr_body
  | Unknown_stats_request { usr_body; _ } -> W.raw b usr_body

let stats_type_of_request = function
  | Desc_request -> C.Stats_type.desc
  | Flow_stats_request _ -> C.Stats_type.flow
  | Aggregate_request _ -> C.Stats_type.aggregate
  | Table_stats_request -> C.Stats_type.table
  | Port_stats_request _ -> C.Stats_type.port
  | Queue_stats_request _ -> C.Stats_type.queue
  | Vendor_stats_request _ -> C.Stats_type.vendor
  | Unknown_stats_request { usr_type; _ } -> usr_type

let read_stats_request_body r typ =
  if typ = C.Stats_type.desc then Desc_request
  else if typ = C.Stats_type.flow then Flow_stats_request (read_flow_stats_request r)
  else if typ = C.Stats_type.aggregate then Aggregate_request (read_flow_stats_request r)
  else if typ = C.Stats_type.table then Table_stats_request
  else if typ = C.Stats_type.port then begin
    let psr_port_no = R.u16 r in
    R.skip r 6;
    Port_stats_request { psr_port_no }
  end
  else if typ = C.Stats_type.queue then begin
    let qsr_port_no = R.u16 r in
    R.skip r 2;
    let qsr_queue_id = R.u32 r in
    Queue_stats_request { qsr_port_no; qsr_queue_id }
  end
  else if typ = C.Stats_type.vendor then
    let vsr_vendor = R.u32 r in
    Vendor_stats_request { vsr_vendor; vsr_body = R.rest r }
  else Unknown_stats_request { usr_type = typ; usr_body = R.rest r }

let write_flow_stats b (f : flow_stats) =
  let actions_buf = W.create () in
  List.iter (write_action actions_buf) f.fs_actions;
  let actions = W.contents actions_buf in
  W.u16 b (88 + String.length actions);
  W.u8 b f.fs_table_id;
  W.pad b 1;
  write_match b f.fs_match;
  W.u32 b f.fs_duration_sec;
  W.u32 b f.fs_duration_nsec;
  W.u16 b f.fs_priority;
  W.u16 b f.fs_idle_timeout;
  W.u16 b f.fs_hard_timeout;
  W.pad b 6;
  W.u64 b f.fs_cookie;
  W.u64 b f.fs_packet_count;
  W.u64 b f.fs_byte_count;
  W.raw b actions

let read_flow_stats r =
  let len = R.u16 r in
  let fs_table_id = R.u8 r in
  R.skip r 1;
  let fs_match = read_match r in
  let fs_duration_sec = R.u32 r in
  let fs_duration_nsec = R.u32 r in
  let fs_priority = R.u16 r in
  let fs_idle_timeout = R.u16 r in
  let fs_hard_timeout = R.u16 r in
  R.skip r 6;
  let fs_cookie = R.u64 r in
  let fs_packet_count = R.u64 r in
  let fs_byte_count = R.u64 r in
  let fs_actions = read_actions r (len - 88) in
  {
    fs_table_id; fs_match; fs_duration_sec; fs_duration_nsec; fs_priority;
    fs_idle_timeout; fs_hard_timeout; fs_cookie; fs_packet_count; fs_byte_count;
    fs_actions;
  }

let write_table_stats b (t : table_stats) =
  W.u8 b t.ts_table_id;
  W.pad b 3;
  W.fixed_string b t.ts_name 32;
  W.u32 b t.ts_wildcards;
  W.u32 b t.ts_max_entries;
  W.u32 b t.ts_active_count;
  W.u64 b t.ts_lookup_count;
  W.u64 b t.ts_matched_count

let read_table_stats r =
  let ts_table_id = R.u8 r in
  R.skip r 3;
  let ts_name = R.fixed_string r 32 in
  let ts_wildcards = R.u32 r in
  let ts_max_entries = R.u32 r in
  let ts_active_count = R.u32 r in
  let ts_lookup_count = R.u64 r in
  let ts_matched_count = R.u64 r in
  { ts_table_id; ts_name; ts_wildcards; ts_max_entries; ts_active_count;
    ts_lookup_count; ts_matched_count }

let write_port_stats b (p : port_stats) =
  W.u16 b p.pst_port_no;
  W.pad b 6;
  W.u64 b p.pst_rx_packets;
  W.u64 b p.pst_tx_packets;
  W.u64 b p.pst_rx_bytes;
  W.u64 b p.pst_tx_bytes;
  W.u64 b p.pst_rx_dropped;
  W.u64 b p.pst_tx_dropped;
  W.u64 b p.pst_rx_errors;
  W.u64 b p.pst_tx_errors;
  (* rx_frame_err, rx_over_err, rx_crc_err, collisions: not modeled *)
  W.u64 b 0L;
  W.u64 b 0L;
  W.u64 b 0L;
  W.u64 b 0L

let read_port_stats r =
  let pst_port_no = R.u16 r in
  R.skip r 6;
  let pst_rx_packets = R.u64 r in
  let pst_tx_packets = R.u64 r in
  let pst_rx_bytes = R.u64 r in
  let pst_tx_bytes = R.u64 r in
  let pst_rx_dropped = R.u64 r in
  let pst_tx_dropped = R.u64 r in
  let pst_rx_errors = R.u64 r in
  let pst_tx_errors = R.u64 r in
  R.skip r 32;
  { pst_port_no; pst_rx_packets; pst_tx_packets; pst_rx_bytes; pst_tx_bytes;
    pst_rx_dropped; pst_tx_dropped; pst_rx_errors; pst_tx_errors }

let stats_type_of_reply = function
  | Desc_reply _ -> C.Stats_type.desc
  | Flow_stats_reply _ -> C.Stats_type.flow
  | Aggregate_reply _ -> C.Stats_type.aggregate
  | Table_stats_reply _ -> C.Stats_type.table
  | Port_stats_reply _ -> C.Stats_type.port
  | Queue_stats_reply _ -> C.Stats_type.queue

let write_stats_reply_body b = function
  | Desc_reply { mfr; hw; sw; serial; dp } ->
    W.fixed_string b mfr 256;
    W.fixed_string b hw 256;
    W.fixed_string b sw 256;
    W.fixed_string b serial 32;
    W.fixed_string b dp 256
  | Flow_stats_reply fss -> List.iter (write_flow_stats b) fss
  | Aggregate_reply { agg_packet_count; agg_byte_count; agg_flow_count } ->
    W.u64 b agg_packet_count;
    W.u64 b agg_byte_count;
    W.u32 b agg_flow_count;
    W.pad b 4
  | Table_stats_reply tss -> List.iter (write_table_stats b) tss
  | Port_stats_reply pss -> List.iter (write_port_stats b) pss
  | Queue_stats_reply { qs_entries } ->
    List.iter
      (fun (port, qid, tx_bytes, tx_packets, tx_errors) ->
        W.u16 b port;
        W.pad b 2;
        W.u32 b qid;
        W.u64 b tx_bytes;
        W.u64 b tx_packets;
        W.u64 b tx_errors)
      qs_entries

let read_stats_reply_body r typ =
  if typ = C.Stats_type.desc then
    let mfr = R.fixed_string r 256 in
    let hw = R.fixed_string r 256 in
    let sw = R.fixed_string r 256 in
    let serial = R.fixed_string r 32 in
    let dp = R.fixed_string r 256 in
    Desc_reply { mfr; hw; sw; serial; dp }
  else if typ = C.Stats_type.flow then begin
    let rec go acc = if R.remaining r = 0 then List.rev acc else go (read_flow_stats r :: acc) in
    Flow_stats_reply (go [])
  end
  else if typ = C.Stats_type.aggregate then begin
    let agg_packet_count = R.u64 r in
    let agg_byte_count = R.u64 r in
    let agg_flow_count = R.u32 r in
    R.skip r 4;
    Aggregate_reply { agg_packet_count; agg_byte_count; agg_flow_count }
  end
  else if typ = C.Stats_type.table then begin
    let rec go acc = if R.remaining r = 0 then List.rev acc else go (read_table_stats r :: acc) in
    Table_stats_reply (go [])
  end
  else if typ = C.Stats_type.port then begin
    let rec go acc = if R.remaining r = 0 then List.rev acc else go (read_port_stats r :: acc) in
    Port_stats_reply (go [])
  end
  else if typ = C.Stats_type.queue then begin
    let rec go acc =
      if R.remaining r = 0 then List.rev acc
      else begin
        let port = R.u16 r in
        R.skip r 2;
        let qid = R.u32 r in
        let tx_bytes = R.u64 r in
        let tx_packets = R.u64 r in
        let tx_errors = R.u64 r in
        go ((port, qid, tx_bytes, tx_packets, tx_errors) :: acc)
      end
    in
    Queue_stats_reply { qs_entries = go [] }
  end
  else fail "unsupported stats reply type %d" typ

(* --- ports ----------------------------------------------------------- *)

let write_phy_port b (p : phy_port) =
  W.u16 b p.port_no;
  W.mac b p.hw_addr;
  W.fixed_string b p.port_name 16;
  W.u32 b p.config;
  W.u32 b p.state;
  W.u32 b p.curr;
  W.u32 b p.advertised;
  W.u32 b p.supported;
  W.u32 b p.peer

let read_phy_port r =
  let port_no = R.u16 r in
  let hw_addr = R.mac r in
  let port_name = R.fixed_string r 16 in
  let config = R.u32 r in
  let state = R.u32 r in
  let curr = R.u32 r in
  let advertised = R.u32 r in
  let supported = R.u32 r in
  let peer = R.u32 r in
  { port_no; hw_addr; port_name; config; state; curr; advertised; supported; peer }

(* --- top level -------------------------------------------------------- *)

let write_body b = function
  | Hello | Features_request | Get_config_request | Barrier_request | Barrier_reply -> ()
  | Echo_request s | Echo_reply s -> W.raw b s
  | Error_msg { err_type; err_code; err_data } ->
    W.u16 b err_type;
    W.u16 b err_code;
    W.raw b err_data
  | Vendor { vendor; vendor_body } ->
    W.u32 b vendor;
    W.raw b vendor_body
  | Features_reply f ->
    W.u64 b f.datapath_id;
    W.u32 b f.n_buffers;
    W.u8 b f.n_tables;
    W.pad b 3;
    W.u32 b f.capabilities;
    W.u32 b f.supported_actions;
    List.iter (write_phy_port b) f.ports
  | Get_config_reply c | Set_config c ->
    W.u16 b c.cfg_flags;
    W.u16 b c.miss_send_len
  | Packet_in p ->
    W.u32 b p.pi_buffer_id;
    W.u16 b p.pi_total_len;
    W.u16 b p.pi_in_port;
    W.u8 b p.pi_reason;
    W.pad b 1;
    W.raw b p.pi_data
  | Flow_removed f ->
    write_match b f.fr_match;
    W.u64 b f.fr_cookie;
    W.u16 b f.fr_priority;
    W.u8 b f.fr_reason;
    W.pad b 1;
    W.u32 b f.fr_duration_sec;
    W.u32 b f.fr_duration_nsec;
    W.u16 b f.fr_idle_timeout;
    W.pad b 2;
    W.u64 b f.fr_packet_count;
    W.u64 b f.fr_byte_count
  | Port_status { ps_reason; ps_desc } ->
    W.u8 b ps_reason;
    W.pad b 7;
    write_phy_port b ps_desc
  | Packet_out p ->
    let actions_buf = W.create () in
    List.iter (write_action actions_buf) p.po_actions;
    let actions = W.contents actions_buf in
    W.u32 b p.po_buffer_id;
    W.u16 b p.po_in_port;
    W.u16 b (String.length actions);
    W.raw b actions;
    W.raw b p.po_data
  | Flow_mod f ->
    write_match b f.fm_match;
    W.u64 b f.cookie;
    W.u16 b f.command;
    W.u16 b f.idle_timeout;
    W.u16 b f.hard_timeout;
    W.u16 b f.priority;
    W.u32 b f.fm_buffer_id;
    W.u16 b f.out_port;
    W.u16 b f.flags;
    List.iter (write_action b) f.fm_actions
  | Port_mod p ->
    W.u16 b p.pm_port_no;
    W.mac b p.pm_hw_addr;
    W.u32 b p.pm_config;
    W.u32 b p.pm_mask;
    W.u32 b p.pm_advertise;
    W.pad b 4
  | Stats_request { sreq_flags; sreq } ->
    W.u16 b (stats_type_of_request sreq);
    W.u16 b sreq_flags;
    write_stats_request_body b sreq
  | Stats_reply { srep_flags; srep } ->
    W.u16 b (stats_type_of_reply srep);
    W.u16 b srep_flags;
    write_stats_reply_body b srep
  | Queue_get_config_request { qgc_port } ->
    W.u16 b qgc_port;
    W.pad b 2
  | Queue_get_config_reply { qgr_port; qgr_queues } ->
    W.u16 b qgr_port;
    W.pad b 6;
    List.iter
      (fun (qid, min_rate) ->
        W.u32 b qid;
        (* queue descriptor with one min-rate property (16 bytes) *)
        W.u16 b (8 + 16);
        W.pad b 2;
        W.u16 b 1 (* OFPQT_MIN_RATE *);
        W.u16 b 16;
        W.pad b 4;
        W.u16 b min_rate;
        W.pad b 6)
      qgr_queues

let serialize ({ xid; payload } : msg) =
  let body = W.create () in
  write_body body payload;
  let body = W.contents body in
  let b = W.create () in
  W.u8 b C.version;
  W.u8 b (msg_type_of_message payload);
  W.u16 b (C.Sizes.header + String.length body);
  W.u32 b xid;
  W.raw b body;
  W.contents b

let read_body r typ len =
  let body_len = len - C.Sizes.header in
  let body = R.sub_reader r body_len in
  let module T = C.Msg_type in
  if typ = T.hello then Hello
  else if typ = T.error then begin
    let err_type = R.u16 body in
    let err_code = R.u16 body in
    Error_msg { err_type; err_code; err_data = R.rest body }
  end
  else if typ = T.echo_request then Echo_request (R.rest body)
  else if typ = T.echo_reply then Echo_reply (R.rest body)
  else if typ = T.vendor then begin
    let vendor = R.u32 body in
    Vendor { vendor; vendor_body = R.rest body }
  end
  else if typ = T.features_request then Features_request
  else if typ = T.features_reply then begin
    let datapath_id = R.u64 body in
    let n_buffers = R.u32 body in
    let n_tables = R.u8 body in
    R.skip body 3;
    let capabilities = R.u32 body in
    let supported_actions = R.u32 body in
    let rec ports acc =
      if R.remaining body < C.Sizes.phy_port then List.rev acc
      else ports (read_phy_port body :: acc)
    in
    Features_reply
      { datapath_id; n_buffers; n_tables; capabilities; supported_actions; ports = ports [] }
  end
  else if typ = T.get_config_request then Get_config_request
  else if typ = T.get_config_reply then begin
    let cfg_flags = R.u16 body in
    let miss_send_len = R.u16 body in
    Get_config_reply { cfg_flags; miss_send_len }
  end
  else if typ = T.set_config then begin
    let cfg_flags = R.u16 body in
    let miss_send_len = R.u16 body in
    Set_config { cfg_flags; miss_send_len }
  end
  else if typ = T.packet_in then begin
    let pi_buffer_id = R.u32 body in
    let pi_total_len = R.u16 body in
    let pi_in_port = R.u16 body in
    let pi_reason = R.u8 body in
    R.skip body 1;
    Packet_in { pi_buffer_id; pi_total_len; pi_in_port; pi_reason; pi_data = R.rest body }
  end
  else if typ = T.flow_removed then begin
    let fr_match = read_match body in
    let fr_cookie = R.u64 body in
    let fr_priority = R.u16 body in
    let fr_reason = R.u8 body in
    R.skip body 1;
    let fr_duration_sec = R.u32 body in
    let fr_duration_nsec = R.u32 body in
    let fr_idle_timeout = R.u16 body in
    R.skip body 2;
    let fr_packet_count = R.u64 body in
    let fr_byte_count = R.u64 body in
    Flow_removed
      { fr_match; fr_cookie; fr_priority; fr_reason; fr_duration_sec; fr_duration_nsec;
        fr_idle_timeout; fr_packet_count; fr_byte_count }
  end
  else if typ = T.port_status then begin
    let ps_reason = R.u8 body in
    R.skip body 7;
    Port_status { ps_reason; ps_desc = read_phy_port body }
  end
  else if typ = T.packet_out then begin
    let po_buffer_id = R.u32 body in
    let po_in_port = R.u16 body in
    let actions_len = R.u16 body in
    let po_actions = read_actions body actions_len in
    Packet_out { po_buffer_id; po_in_port; po_actions; po_data = R.rest body }
  end
  else if typ = T.flow_mod then begin
    let fm_match = read_match body in
    let cookie = R.u64 body in
    let command = R.u16 body in
    let idle_timeout = R.u16 body in
    let hard_timeout = R.u16 body in
    let priority = R.u16 body in
    let fm_buffer_id = R.u32 body in
    let out_port = R.u16 body in
    let flags = R.u16 body in
    let fm_actions = read_actions body (R.remaining body) in
    Flow_mod
      { fm_match; cookie; command; idle_timeout; hard_timeout; priority; fm_buffer_id;
        out_port; flags; fm_actions }
  end
  else if typ = T.port_mod then begin
    let pm_port_no = R.u16 body in
    let pm_hw_addr = R.mac body in
    let pm_config = R.u32 body in
    let pm_mask = R.u32 body in
    let pm_advertise = R.u32 body in
    R.skip body 4;
    Port_mod { pm_port_no; pm_hw_addr; pm_config; pm_mask; pm_advertise }
  end
  else if typ = T.stats_request then begin
    let styp = R.u16 body in
    let sreq_flags = R.u16 body in
    Stats_request { sreq_flags; sreq = read_stats_request_body body styp }
  end
  else if typ = T.stats_reply then begin
    let styp = R.u16 body in
    let srep_flags = R.u16 body in
    Stats_reply { srep_flags; srep = read_stats_reply_body body styp }
  end
  else if typ = T.barrier_request then Barrier_request
  else if typ = T.barrier_reply then Barrier_reply
  else if typ = T.queue_get_config_request then begin
    let qgc_port = R.u16 body in
    R.skip body 2;
    Queue_get_config_request { qgc_port }
  end
  else if typ = T.queue_get_config_reply then begin
    let qgr_port = R.u16 body in
    R.skip body 6;
    let rec queues acc =
      if R.remaining body < 8 then List.rev acc
      else begin
        let qid = R.u32 body in
        let qlen = R.u16 body in
        R.skip body 2;
        let props = R.sub_reader body (qlen - 8) in
        let min_rate = ref 0 in
        while R.remaining props >= 8 do
          let ptyp = R.u16 props in
          let plen = R.u16 props in
          R.skip props 4;
          let pbody = R.sub_reader props (plen - 8) in
          if ptyp = 1 then begin
            min_rate := R.u16 pbody;
            R.skip pbody 6
          end
        done;
        queues ((qid, !min_rate) :: acc)
      end
    in
    Queue_get_config_reply { qgr_port; qgr_queues = queues [] }
  end
  else fail "unknown message type %d" typ

(* Parse one message from the given string offset; returns the message and
   the number of bytes consumed. *)
let parse_at data offset =
  let r = R.create data in
  r.R.pos <- offset;
  let version = R.u8 r in
  if version <> C.version then fail "bad version 0x%02x" version;
  let typ = R.u8 r in
  let len = R.u16 r in
  if len < C.Sizes.header then fail "length %d < header size" len;
  let xid = R.u32 r in
  let payload = read_body r typ len in
  ({ xid; payload }, offset + len)

let parse data =
  let msg, consumed = parse_at data 0 in
  if consumed <> String.length data then
    fail "trailing bytes: parsed %d of %d" consumed (String.length data);
  msg

(* Parse a back-to-back stream of messages. *)
let parse_stream data =
  let rec go offset acc =
    if offset >= String.length data then List.rev acc
    else
      let msg, next = parse_at data offset in
      go next (msg :: acc)
  in
  go 0 []
