(* Turn an inconsistency witness (a solver model) into a concrete,
   replayable test case: real OpenFlow 1.0 wire bytes for each control
   message plus concrete probe packets.  This is what a developer replays
   against the real switches to confirm and debug the divergence
   (paper §3.4: "we construct a concrete test case"). *)

open Smt
module Sym_msg = Openflow.Sym_msg
module Wire = Openflow.Wire
module SP = Packet.Sym_packet

type concrete_input =
  | C_message of { wire : string; parsed : Openflow.Types.msg option }
  | C_probe of { cp_in_port : int; cp_packet : Packet.Headers.t; cp_wire : string }
  | C_advance_time of int

type t = {
  tc_test : string;
  tc_inputs : concrete_input list;
  tc_expected_a : string * Openflow.Trace.result; (* agent name, observed result *)
  tc_expected_b : string * Openflow.Trace.result;
}

let concretize_input model = function
  | Harness.Test_spec.Msg m ->
    let wire = Sym_msg.concretize_wire model m in
    let parsed = try Some (Openflow.Wire.parse wire) with Wire.Parse_error _ -> None in
    C_message { wire; parsed }
  | Harness.Test_spec.Probe { pr_in_port; pr_packet; _ } ->
    let pkt = SP.to_concrete model pr_packet in
    C_probe { cp_in_port = pr_in_port; cp_packet = pkt; cp_wire = Packet.Headers.to_bytes pkt }
  | Harness.Test_spec.Advance_time seconds -> C_advance_time seconds

let of_inconsistency (spec : Harness.Test_spec.t) ~agent_a ~agent_b
    (inc : Crosscheck.inconsistency) =
  {
    tc_test = spec.Harness.Test_spec.id;
    tc_inputs = List.map (concretize_input inc.Crosscheck.i_witness) spec.inputs;
    tc_expected_a = (agent_a, inc.i_result_a);
    tc_expected_b = (agent_b, inc.i_result_b);
  }

(* Check the witness against the recorded group conditions: a sanity pass
   the tools run before shipping a reproducer. *)
let witness_consistent (inc : Crosscheck.inconsistency) =
  Model.eval_bool inc.Crosscheck.i_witness inc.i_cond

let hex s =
  let buf = Buffer.create (String.length s * 3) in
  String.iteri
    (fun i c ->
      if i > 0 && i mod 8 = 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents buf

let pp_input fmt = function
  | C_message { wire; parsed } -> (
    Format.fprintf fmt "control message (%d bytes): %s@ " (String.length wire) (hex wire);
    match parsed with
    | Some m -> Format.fprintf fmt "  = %a@ " Openflow.Pp.msg m
    | None -> Format.fprintf fmt "  (not parseable as a well-formed OF 1.0 message)@ ")
  | C_probe { cp_in_port; cp_packet; cp_wire } ->
    Format.fprintf fmt "probe packet on port %d (%d bytes): %a@ " cp_in_port
      (String.length cp_wire) Packet.Headers.pp cp_packet
  | C_advance_time seconds -> Format.fprintf fmt "advance virtual time by %ds@ " seconds

let pp fmt tc =
  Format.fprintf fmt "@[<v>test case for %s:@ " tc.tc_test;
  List.iteri
    (fun i input -> Format.fprintf fmt "input %d: %a" (i + 1) pp_input input)
    tc.tc_inputs;
  let name_a, res_a = tc.tc_expected_a and name_b, res_b = tc.tc_expected_b in
  Format.fprintf fmt "%s observes:@   %s@ " name_a (Openflow.Trace.result_key res_a);
  Format.fprintf fmt "%s observes:@   %s@ " name_b (Openflow.Trace.result_key res_b);
  Format.fprintf fmt "@]"

let to_string tc = Format.asprintf "%a" pp tc
