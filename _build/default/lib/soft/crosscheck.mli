(** SOFT's inconsistency finder (paper §3.4, §4.2): for every pair of
    *different* grouped results across two agents, ask the solver whether
    [C_A(i) ∧ C_B(j)] is satisfiable.  Each satisfiable pair is an
    inconsistency and its model a concrete witness input. *)

type inconsistency = {
  i_result_a : Openflow.Trace.result;
  i_result_b : Openflow.Trace.result;
  i_witness : Smt.Model.t;  (** concrete inputs exhibiting the divergence *)
  i_cond : Smt.Expr.boolean;  (** the satisfiable conjunction *)
  i_paths_a : int;
  i_paths_b : int;
}

type outcome = {
  o_agent_a : string;
  o_agent_b : string;
  o_test : string;
  o_inconsistencies : inconsistency list;
  o_pairs_checked : int;
  o_pairs_equal : int;  (** pairs skipped: identical results *)
  o_check_time : float;  (** seconds in the intersection stage (Table 3) *)
}

val check :
  ?split:int ->
  ?on_found:(inconsistency -> unit) ->
  Grouping.grouped ->
  Grouping.grouped ->
  outcome
(** Crosscheck two agents' grouped phase-1 results for the same test.

    [split]: check chunk pairs of at most [n] member conditions instead of
    one monolithic disjunction pair — the paper's proposed remedy for
    solver blow-ups on huge groups; same answers, more but smaller queries
    with an early exit.

    @raise Invalid_argument if the two runs are of different tests. *)

val count : outcome -> int
val pp : Format.formatter -> outcome -> unit
