(** SOFT's "group" tool (paper §3.4, §4.2): collapse per-path results into
    one group per distinct normalized output, the group's input subspace
    being the balanced-tree disjunction of the member path conditions.
    Grouping is what reduces solver queries from |paths_A|·|paths_B| to
    |RES_A|·|RES_B| — the 1–5 orders of magnitude of Table 3. *)

type group = {
  g_result : Openflow.Trace.result;
  g_key : string;  (** [Trace.result_key g_result] *)
  g_cond : Smt.Expr.boolean;  (** disjunction of member path conditions *)
  g_member_conds : Smt.Expr.boolean list;
  g_path_count : int;
}

type grouped = {
  gr_agent : string;
  gr_test : string;
  gr_groups : group list;
  gr_group_time : float;  (** seconds spent grouping (Table 3) *)
}

val group_paths : (Openflow.Trace.result * Smt.Expr.boolean) list -> group list

val of_saved : Harness.Serialize.saved -> grouped
(** Group a phase-1 run loaded from disk (the decoupled workflow). *)

val of_run : Harness.Runner.run -> grouped

val distinct_results : grouped -> int
val pp : Format.formatter -> grouped -> unit
