(** The end-to-end SOFT pipeline (the paper's Figure 3): symbolically
    execute each agent on a test, group path conditions by output result,
    and crosscheck the groups through the solver.  The [run]/[group]/[check]
    stages are also exposed individually (via {!Harness.Runner},
    {!Grouping}, {!Crosscheck}) for the decoupled vendor workflow. *)

type comparison = {
  c_test : Harness.Test_spec.t;
  c_run_a : Harness.Runner.run;
  c_run_b : Harness.Runner.run;
  c_grouped_a : Grouping.grouped;
  c_grouped_b : Grouping.grouped;
  c_outcome : Crosscheck.outcome;
}

val compare_runs :
  Harness.Test_spec.t -> Harness.Runner.run -> Harness.Runner.run -> comparison
(** Phase 2 only, over existing phase-1 runs. *)

val compare_agents :
  ?max_paths:int ->
  ?strategy:Symexec.Strategy.t ->
  Switches.Agent_intf.t ->
  Switches.Agent_intf.t ->
  Harness.Test_spec.t ->
  comparison
(** Both phases in one process. *)

val compare_suite :
  ?max_paths:int ->
  ?strategy:Symexec.Strategy.t ->
  Switches.Agent_intf.t ->
  Switches.Agent_intf.t ->
  Harness.Test_spec.t list ->
  comparison list

val test_cases : comparison -> Testcase.t list
(** One concrete reproducer per inconsistency found. *)

val inconsistency_count : comparison -> int
val summaries : comparison -> Report.summary list
val pp_comparison : Format.formatter -> comparison -> unit
