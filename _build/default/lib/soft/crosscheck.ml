(* SOFT's inconsistency finder (paper §3.4, §4.2): given two agents'
   grouped results, consider every pair of *different* results, and ask the
   solver whether some common input reaches both — i.e. whether
   C_A(i) ∧ C_B(j) is satisfiable.  Each satisfiable pair is an
   inconsistency, and the solver's model is a concrete witness input.

   The number of solver queries is |RES_A| · |RES_B| minus the equal pairs,
   which grouping has already reduced by orders of magnitude relative to
   raw path counts. *)

open Smt
module Trace = Openflow.Trace

type inconsistency = {
  i_result_a : Trace.result;
  i_result_b : Trace.result;
  i_witness : Model.t; (* concrete input values exhibiting the divergence *)
  i_cond : Expr.boolean; (* the satisfiable conjunction *)
  i_paths_a : int;
  i_paths_b : int;
}

type outcome = {
  o_agent_a : string;
  o_agent_b : string;
  o_test : string;
  o_inconsistencies : inconsistency list;
  o_pairs_checked : int;
  o_pairs_equal : int; (* pairs skipped because the results were identical *)
  o_check_time : float; (* seconds in the intersection stage (Table 3) *)
}

(* Split a group's disjuncts into chunks of at most [n] path conditions.
   SAT(A ∧ B) iff some chunk pair is satisfiable, so checking chunk pairs
   with an early exit trades more (but much smaller) queries for the one
   monolithic conjunction — the paper's proposed remedy for the solver
   blow-up on CS FlowMods (§5.2, future work). *)
let chunk_conds n conds =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else Expr.balanced_disj (List.rev cur) :: acc)
    | c :: rest ->
      if k = n then go (Expr.balanced_disj (List.rev cur) :: acc) [ c ] 1 rest
      else go acc (c :: cur) (k + 1) rest
  in
  go [] [] 0 conds

let sat_pair ?split (ga : Grouping.group) (gb : Grouping.group) =
  match split with
  | None -> (
    match Solver.check [ ga.Grouping.g_cond; gb.Grouping.g_cond ] with
    | Solver.Sat witness -> Some witness
    | Solver.Unsat -> None)
  | Some n ->
    let chunks_a = chunk_conds n ga.Grouping.g_member_conds in
    let chunks_b = chunk_conds n gb.Grouping.g_member_conds in
    let rec pairs = function
      | [] -> None
      | ca :: rest_a ->
        let rec inner = function
          | [] -> pairs rest_a
          | cb :: rest_b -> (
            match Solver.check [ ca; cb ] with
            | Solver.Sat witness -> Some witness
            | Solver.Unsat -> inner rest_b)
        in
        inner chunks_b
    in
    pairs chunks_a

let check ?split ?(on_found = fun (_ : inconsistency) -> ()) (a : Grouping.grouped)
    (b : Grouping.grouped) =
  if a.Grouping.gr_test <> b.Grouping.gr_test then
    invalid_arg "Crosscheck.check: runs of different tests";
  let t0 = Unix.gettimeofday () in
  let pairs_checked = ref 0 in
  let pairs_equal = ref 0 in
  let found = ref [] in
  List.iter
    (fun (ga : Grouping.group) ->
      List.iter
        (fun (gb : Grouping.group) ->
          if ga.Grouping.g_key = gb.Grouping.g_key then incr pairs_equal
          else begin
            incr pairs_checked;
            match sat_pair ?split ga gb with
            | None -> ()
            | Some witness ->
              let inc =
                {
                  i_result_a = ga.g_result;
                  i_result_b = gb.Grouping.g_result;
                  i_witness = witness;
                  i_cond = Expr.and_ ga.g_cond gb.Grouping.g_cond;
                  i_paths_a = ga.g_path_count;
                  i_paths_b = gb.Grouping.g_path_count;
                }
              in
              on_found inc;
              found := inc :: !found
          end)
        b.Grouping.gr_groups)
    a.Grouping.gr_groups;
  {
    o_agent_a = a.Grouping.gr_agent;
    o_agent_b = b.Grouping.gr_agent;
    o_test = a.Grouping.gr_test;
    o_inconsistencies = List.rev !found;
    o_pairs_checked = !pairs_checked;
    o_pairs_equal = !pairs_equal;
    o_check_time = Unix.gettimeofday () -. t0;
  }

let count o = List.length o.o_inconsistencies

let pp fmt o =
  Format.fprintf fmt "@[<v>%s vs %s on %s: %d inconsistencies (%d pairs checked, %.2fs)@ "
    o.o_agent_a o.o_agent_b o.o_test (count o) o.o_pairs_checked o.o_check_time;
  List.iteri
    (fun i inc ->
      Format.fprintf fmt "--- inconsistency %d ---@ %s:@   %s@ %s:@   %s@ witness:@   %s@ " i
        o.o_agent_a
        (Trace.result_key inc.i_result_a)
        o.o_agent_b
        (Trace.result_key inc.i_result_b)
        (String.concat "; "
           (List.map
              (fun (v, value) -> Printf.sprintf "%s=0x%Lx" (Expr.var_name v) value)
              (Model.bindings inc.i_witness))))
    o.o_inconsistencies;
  Format.fprintf fmt "@]"
