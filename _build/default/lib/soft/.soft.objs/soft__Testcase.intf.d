lib/soft/testcase.mli: Crosscheck Format Harness Openflow Packet
