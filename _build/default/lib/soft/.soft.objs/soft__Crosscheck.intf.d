lib/soft/crosscheck.mli: Format Grouping Openflow Smt
