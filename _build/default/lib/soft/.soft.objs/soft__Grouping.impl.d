lib/soft/grouping.ml: Expr Format Harness Hashtbl List Openflow Smt Unix
