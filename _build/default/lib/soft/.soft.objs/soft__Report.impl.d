lib/soft/report.ml: Crosscheck Format Hashtbl List Openflow String
