lib/soft/grouping.mli: Format Harness Openflow Smt
