lib/soft/report.mli: Crosscheck Format
