lib/soft/pipeline.ml: Crosscheck Format Grouping Harness List Report Testcase
