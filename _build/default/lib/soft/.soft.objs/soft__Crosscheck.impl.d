lib/soft/crosscheck.ml: Expr Format Grouping List Model Openflow Printf Smt Solver String Unix
