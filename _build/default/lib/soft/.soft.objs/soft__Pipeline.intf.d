lib/soft/pipeline.mli: Crosscheck Format Grouping Harness Report Switches Symexec Testcase
