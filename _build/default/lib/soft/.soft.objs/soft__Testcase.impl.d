lib/soft/testcase.ml: Buffer Char Crosscheck Format Harness List Model Openflow Packet Printf Smt String
