(** Concrete reproducers: turn an inconsistency witness (a solver model)
    into replayable inputs — real OpenFlow 1.0 wire bytes per control
    message, concrete probe packets, virtual-time steps — plus the result
    each agent is expected to exhibit (paper §3.4). *)

type concrete_input =
  | C_message of {
      wire : string;  (** exact bytes to send on the control channel *)
      parsed : Openflow.Types.msg option;
          (** strict parse of [wire]; [None] when the reproducer is
              deliberately malformed (that is often the triggering input) *)
    }
  | C_probe of { cp_in_port : int; cp_packet : Packet.Headers.t; cp_wire : string }
  | C_advance_time of int

type t = {
  tc_test : string;
  tc_inputs : concrete_input list;
  tc_expected_a : string * Openflow.Trace.result;  (** agent name, result *)
  tc_expected_b : string * Openflow.Trace.result;
}

val of_inconsistency :
  Harness.Test_spec.t -> agent_a:string -> agent_b:string -> Crosscheck.inconsistency -> t

val witness_consistent : Crosscheck.inconsistency -> bool
(** Sanity pass: the witness model satisfies the recorded conjunction. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
