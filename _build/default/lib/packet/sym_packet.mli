(** Symbolic data-plane packets.  Header fields are bitvector expressions;
    the structural shape (VLAN tag present, IPv4 vs opaque payload) is
    fixed by the builder while field values may be symbolic — mirroring
    SOFT's input structuring (paper §3.2.1). *)

open Smt

type sym_vlan = { svid : Expr.bv (* 16, low 12 used *); spcp : Expr.bv (* 8 *) }

type sym_transport =
  | Stcp of { stcp_src : Expr.bv; stcp_dst : Expr.bv }
  | Sudp of { sudp_src : Expr.bv; sudp_dst : Expr.bv }
  | Sicmp of { sicmp_type : Expr.bv; sicmp_code : Expr.bv }
  | Sother_transport

type sym_ipv4 = {
  stos : Expr.bv;  (** 8 *)
  sproto : Expr.bv;  (** 8 *)
  ssrc : Expr.bv;  (** 32 *)
  sdst : Expr.bv;  (** 32 *)
  stransport : sym_transport;
}

type sym_net = Sipv4 of sym_ipv4 | Sother_net

type t = {
  sdl_src : Expr.bv;  (** 48 *)
  sdl_dst : Expr.bv;  (** 48 *)
  svlan : sym_vlan option;
  sdl_type : Expr.bv;  (** 16 *)
  snet : sym_net;
}

val of_concrete : Headers.t -> t
(** Embed a concrete packet (all fields become constants). *)

val symbolic_tcp : prefix:string -> unit -> t
(** A fully symbolic Ethernet+IPv4+TCP packet; every field a fresh variable
    under [prefix] (the Symbolic-Probe ablation of Table 5). *)

val symbolic_eth : prefix:string -> unit -> t
(** A symbolic Ethernet frame with no typed payload. *)

val to_concrete : Model.t -> t -> Headers.t
(** Evaluate every field under a model: the concrete reproducer packet. *)

val equal : t -> t -> bool
(** Structural equality by expression identity. *)

val digest : t -> string
(** Stable structural digest used in normalized output traces: packets
    with identical expression structure share the digest. *)

val pp : Format.formatter -> t -> unit
