(* Extraction of the OpenFlow 1.0 12-tuple flow key from a (possibly
   symbolic) packet.  Mirrors flow_extract() in the reference switch: the
   parser dispatches on the ethertype and IP protocol, so extraction
   *branches* when those fields are symbolic — exactly the forks a real
   agent's parser would exhibit under symbolic execution. *)

open Smt
module Engine = Symexec.Engine

type t = {
  fk_in_port : Expr.bv; (* 16 *)
  fk_dl_src : Expr.bv; (* 48 *)
  fk_dl_dst : Expr.bv; (* 48 *)
  fk_dl_vlan : Expr.bv; (* 16; OFP_VLAN_NONE when untagged *)
  fk_dl_vlan_pcp : Expr.bv; (* 8 *)
  fk_dl_type : Expr.bv; (* 16 *)
  fk_nw_tos : Expr.bv; (* 8 *)
  fk_nw_proto : Expr.bv; (* 8 *)
  fk_nw_src : Expr.bv; (* 32 *)
  fk_nw_dst : Expr.bv; (* 32 *)
  fk_tp_src : Expr.bv; (* 16 *)
  fk_tp_dst : Expr.bv; (* 16 *)
}

let c8 v = Expr.const ~width:8 (Int64.of_int v)
let c16 v = Expr.const ~width:16 (Int64.of_int v)
let c32z = Expr.const ~width:32 0L

let vlan_none = c16 0xffff (* OFP_VLAN_NONE *)

let extract env ~in_port (p : Sym_packet.t) =
  let open Sym_packet in
  let dl_vlan, dl_vlan_pcp =
    match p.svlan with
    | Some { svid; spcp } -> (Expr.logand svid (c16 0xfff), spcp)
    | None -> (vlan_none, c8 0)
  in
  let zero_nw = (c8 0, c8 0, c32z, c32z, c16 0, c16 0) in
  let nw_tos, nw_proto, nw_src, nw_dst, tp_src, tp_dst =
    match p.snet with
    | Sother_net -> zero_nw
    | Sipv4 ip ->
      if Engine.branch_eq env p.sdl_type (Int64.of_int Constants_pkt.eth_type_ip) then begin
        let tp_src, tp_dst =
          match ip.stransport with
          | Stcp { stcp_src; stcp_dst } ->
            if Engine.branch_eq env ip.sproto (Int64.of_int Constants_pkt.proto_tcp) then
              (stcp_src, stcp_dst)
            else (c16 0, c16 0)
          | Sudp { sudp_src; sudp_dst } ->
            if Engine.branch_eq env ip.sproto (Int64.of_int Constants_pkt.proto_udp) then
              (sudp_src, sudp_dst)
            else (c16 0, c16 0)
          | Sicmp { sicmp_type; sicmp_code } ->
            if Engine.branch_eq env ip.sproto (Int64.of_int Constants_pkt.proto_icmp) then
              (Expr.zext ~width:16 sicmp_type, Expr.zext ~width:16 sicmp_code)
            else (c16 0, c16 0)
          | Sother_transport -> (c16 0, c16 0)
        in
        (ip.stos, ip.sproto, ip.ssrc, ip.sdst, tp_src, tp_dst)
      end
      else zero_nw
  in
  {
    fk_in_port = in_port;
    fk_dl_src = p.sdl_src;
    fk_dl_dst = p.sdl_dst;
    fk_dl_vlan = dl_vlan;
    fk_dl_vlan_pcp = dl_vlan_pcp;
    fk_dl_type = p.sdl_type;
    fk_nw_tos = nw_tos;
    fk_nw_proto = nw_proto;
    fk_nw_src = nw_src;
    fk_nw_dst = nw_dst;
    fk_tp_src = tp_src;
    fk_tp_dst = tp_dst;
  }
