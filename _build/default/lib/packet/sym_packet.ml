(* Symbolic data-plane packets.  Header fields are bitvector expressions;
   the structural shape (VLAN tag present, IPv4 vs ARP vs opaque) is fixed
   by the builder, while field *values* may be symbolic.  This mirrors how
   SOFT constructs inputs: structure concrete, contents symbolic
   (paper §3.2.1). *)

open Smt

type sym_vlan = { svid : Expr.bv (* 16, low 12 used *); spcp : Expr.bv (* 8 *) }

type sym_transport =
  | Stcp of { stcp_src : Expr.bv; stcp_dst : Expr.bv } (* 16 each *)
  | Sudp of { sudp_src : Expr.bv; sudp_dst : Expr.bv }
  | Sicmp of { sicmp_type : Expr.bv; sicmp_code : Expr.bv } (* 8 each *)
  | Sother_transport

type sym_ipv4 = {
  stos : Expr.bv; (* 8 *)
  sproto : Expr.bv; (* 8 *)
  ssrc : Expr.bv; (* 32 *)
  sdst : Expr.bv; (* 32 *)
  stransport : sym_transport;
}

type sym_net = Sipv4 of sym_ipv4 | Sother_net

type t = {
  sdl_src : Expr.bv; (* 48 *)
  sdl_dst : Expr.bv; (* 48 *)
  svlan : sym_vlan option;
  sdl_type : Expr.bv; (* 16 *)
  snet : sym_net;
}

let c8 v = Expr.const ~width:8 (Int64.of_int v)
let c16 v = Expr.const ~width:16 (Int64.of_int v)
let c32 v = Expr.const ~width:32 (Int64.logand (Int64.of_int32 v) 0xffffffffL)
let c48 v = Expr.const ~width:48 v

(* --- conversion from concrete packets -------------------------------- *)

let of_concrete (p : Headers.t) =
  let transport tp =
    match tp with
    | Headers.Tcp { tcp_src; tcp_dst } -> Stcp { stcp_src = c16 tcp_src; stcp_dst = c16 tcp_dst }
    | Headers.Udp { udp_src; udp_dst } -> Sudp { sudp_src = c16 udp_src; sudp_dst = c16 udp_dst }
    | Headers.Icmp { icmp_type; icmp_code } ->
      Sicmp { sicmp_type = c8 icmp_type; sicmp_code = c8 icmp_code }
    | Headers.Other_transport _ -> Sother_transport
  in
  {
    sdl_src = c48 p.Headers.dl_src;
    sdl_dst = c48 p.Headers.dl_dst;
    svlan =
      Option.map
        (fun (v : Headers.vlan) -> { svid = c16 v.vid; spcp = c8 v.pcp })
        p.Headers.vlan;
    sdl_type = c16 p.Headers.dl_type;
    snet =
      (match p.Headers.net with
       | Headers.Ipv4 ip ->
         Sipv4
           {
             stos = c8 ip.ip_tos;
             sproto = c8 ip.ip_proto;
             ssrc = c32 ip.ip_src;
             sdst = c32 ip.ip_dst;
             stransport = transport ip.ip_payload;
           }
       | Headers.Arp _ | Headers.Other_net _ -> Sother_net);
  }

(* --- symbolic builders ------------------------------------------------ *)

let v name width = Expr.var ~width name

(* A fully symbolic Ethernet+IPv4+TCP packet: every header field is a fresh
   variable named under [prefix].  Used by the Symbolic-Probe ablation
   (Table 5). *)
let symbolic_tcp ~prefix () =
  let f n = prefix ^ "." ^ n in
  {
    sdl_src = v (f "dl_src") 48;
    sdl_dst = v (f "dl_dst") 48;
    svlan = None;
    sdl_type = v (f "dl_type") 16;
    snet =
      Sipv4
        {
          stos = v (f "nw_tos") 8;
          sproto = v (f "nw_proto") 8;
          ssrc = v (f "nw_src") 32;
          sdst = v (f "nw_dst") 32;
          stransport = Stcp { stcp_src = v (f "tp_src") 16; stcp_dst = v (f "tp_dst") 16 };
        };
  }

(* A short symbolic Ethernet frame (no IP payload): symbolic addresses and
   ethertype. Used by the Eth FlowMod test's probing. *)
let symbolic_eth ~prefix () =
  let f n = prefix ^ "." ^ n in
  {
    sdl_src = v (f "dl_src") 48;
    sdl_dst = v (f "dl_dst") 48;
    svlan = None;
    sdl_type = v (f "dl_type") 16;
    snet = Sother_net;
  }

(* --- concretization ---------------------------------------------------- *)

let eval_u m e = Model.eval_bv m e

let to_concrete m (p : t) : Headers.t =
  let i v = Int64.to_int (eval_u m v) in
  let i32 v = Int64.to_int32 (eval_u m v) in
  {
    Headers.dl_src = eval_u m p.sdl_src;
    dl_dst = eval_u m p.sdl_dst;
    vlan =
      Option.map
        (fun sv -> { Headers.vid = i sv.svid land 0xfff; pcp = i sv.spcp land 0x7 })
        p.svlan;
    dl_type = i p.sdl_type;
    net =
      (match p.snet with
       | Sipv4 ip ->
         Headers.Ipv4
           {
             ip_tos = i ip.stos;
             ip_proto = i ip.sproto;
             ip_src = i32 ip.ssrc;
             ip_dst = i32 ip.sdst;
             ip_payload =
               (match ip.stransport with
                | Stcp { stcp_src; stcp_dst } ->
                  Headers.Tcp { tcp_src = i stcp_src; tcp_dst = i stcp_dst }
                | Sudp { sudp_src; sudp_dst } ->
                  Headers.Udp { udp_src = i sudp_src; udp_dst = i sudp_dst }
                | Sicmp { sicmp_type; sicmp_code } ->
                  Headers.Icmp { icmp_type = i sicmp_type; icmp_code = i sicmp_code }
                | Sother_transport -> Headers.Other_transport "");
           }
       | Sother_net -> Headers.Other_net "");
  }

(* --- structural equality (for trace comparison) ----------------------- *)

let equal_transport a b =
  match (a, b) with
  | Stcp x, Stcp y -> x.stcp_src == y.stcp_src && x.stcp_dst == y.stcp_dst
  | Sudp x, Sudp y -> x.sudp_src == y.sudp_src && x.sudp_dst == y.sudp_dst
  | Sicmp x, Sicmp y -> x.sicmp_type == y.sicmp_type && x.sicmp_code == y.sicmp_code
  | Sother_transport, Sother_transport -> true
  | _ -> false

let equal a b =
  a.sdl_src == b.sdl_src && a.sdl_dst == b.sdl_dst && a.sdl_type == b.sdl_type
  && (match (a.svlan, b.svlan) with
      | None, None -> true
      | Some x, Some y -> x.svid == y.svid && x.spcp == y.spcp
      | _ -> false)
  &&
  match (a.snet, b.snet) with
  | Sipv4 x, Sipv4 y ->
    x.stos == y.stos && x.sproto == y.sproto && x.ssrc == y.ssrc && x.sdst == y.sdst
    && equal_transport x.stransport y.stransport
  | Sother_net, Sother_net -> true
  | _ -> false

(* Stable structural digest used when normalizing output traces: two
   packets with identical expression structure produce the same digest. *)
let digest (p : t) =
  let id (e : Expr.bv) = string_of_int e.Expr.id in
  let vlan =
    match p.svlan with
    | None -> "-"
    | Some sv -> Printf.sprintf "%s/%s" (id sv.svid) (id sv.spcp)
  in
  let net =
    match p.snet with
    | Sother_net -> "raw"
    | Sipv4 ip ->
      let tp =
        match ip.stransport with
        | Stcp t -> Printf.sprintf "tcp:%s:%s" (id t.stcp_src) (id t.stcp_dst)
        | Sudp u -> Printf.sprintf "udp:%s:%s" (id u.sudp_src) (id u.sudp_dst)
        | Sicmp i -> Printf.sprintf "icmp:%s:%s" (id i.sicmp_type) (id i.sicmp_code)
        | Sother_transport -> "tp?"
      in
      Printf.sprintf "ip:%s:%s:%s:%s:%s" (id ip.stos) (id ip.sproto) (id ip.ssrc)
        (id ip.sdst) tp
  in
  Printf.sprintf "pkt{%s>%s,%s,%s,%s}" (id p.sdl_src) (id p.sdl_dst) vlan (id p.sdl_type) net

let pp fmt p = Format.fprintf fmt "%s" (digest p)
