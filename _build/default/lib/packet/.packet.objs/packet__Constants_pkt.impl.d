lib/packet/constants_pkt.ml:
