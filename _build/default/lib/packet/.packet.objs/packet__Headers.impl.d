lib/packet/headers.ml: Buffer Char Constants_pkt Format Int32 Int64 String
