lib/packet/flow_key.mli: Expr Smt Sym_packet Symexec
