lib/packet/headers.mli: Format
