lib/packet/sym_packet.mli: Expr Format Headers Model Smt
