lib/packet/sym_packet.ml: Expr Format Headers Int64 Model Option Printf Smt
