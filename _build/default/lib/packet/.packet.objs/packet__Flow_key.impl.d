lib/packet/flow_key.ml: Constants_pkt Expr Int64 Smt Sym_packet Symexec
