(** Concrete data-plane packets: Ethernet (optionally 802.1Q-tagged)
    frames carrying IPv4/TCP/UDP/ICMP, ARP, or opaque payloads, with a
    byte-level codec.  Checksums are written as zero — SOFT's Cloud9
    environment stubs checksum functions (paper §4.1), and this codec
    keeps the convention end to end. *)

type mac = int64

type tcp = { tcp_src : int; tcp_dst : int }
type udp = { udp_src : int; udp_dst : int }
type icmp = { icmp_type : int; icmp_code : int }

type transport = Tcp of tcp | Udp of udp | Icmp of icmp | Other_transport of string

type ipv4 = {
  ip_tos : int;
  ip_proto : int;
  ip_src : int32;
  ip_dst : int32;
  ip_payload : transport;
}

type arp = { arp_op : int; arp_sha : mac; arp_spa : int32; arp_tha : mac; arp_tpa : int32 }

type net = Ipv4 of ipv4 | Arp of arp | Other_net of string

type vlan = { vid : int; pcp : int }

type t = {
  dl_src : mac;
  dl_dst : mac;
  vlan : vlan option;
  dl_type : int;  (** ethertype of the encapsulated payload *)
  net : net;
}

exception Parse_error of string

val proto_of_transport : transport -> int

val tcp_probe :
  ?dl_src:mac ->
  ?dl_dst:mac ->
  ?vlan:vlan option ->
  ?tos:int ->
  ?src:int32 ->
  ?dst:int32 ->
  ?sport:int ->
  ?dport:int ->
  unit ->
  t
(** The canonical concrete TCP probe the harness injects after
    state-changing messages (paper §3.3). *)

val eth_probe : ?dl_src:mac -> ?dl_dst:mac -> ?dl_type:int -> ?payload:string -> unit -> t

val to_bytes : t -> string
val of_bytes : string -> t

val pp : Format.formatter -> t -> unit
val pp_mac : Format.formatter -> mac -> unit
val pp_ipv4_addr : Format.formatter -> int32 -> unit
val to_string : t -> string
