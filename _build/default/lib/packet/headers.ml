(* Concrete data-plane packets: Ethernet (optionally 802.1Q-tagged) frames
   carrying IPv4/TCP/UDP/ICMP, ARP, or opaque payloads.  Checksums are
   written as zero — SOFT's Cloud9 environment stubs checksum functions to
   identities (paper §4.1), and we keep the same convention end to end. *)

type mac = int64

type tcp = { tcp_src : int; tcp_dst : int }
type udp = { udp_src : int; udp_dst : int }
type icmp = { icmp_type : int; icmp_code : int }

type transport =
  | Tcp of tcp
  | Udp of udp
  | Icmp of icmp
  | Other_transport of string

type ipv4 = {
  ip_tos : int;
  ip_proto : int;
  ip_src : int32;
  ip_dst : int32;
  ip_payload : transport;
}

type arp = { arp_op : int; arp_sha : mac; arp_spa : int32; arp_tha : mac; arp_tpa : int32 }

type net = Ipv4 of ipv4 | Arp of arp | Other_net of string

type vlan = { vid : int; pcp : int }

type t = {
  dl_src : mac;
  dl_dst : mac;
  vlan : vlan option;
  dl_type : int; (* ethertype of the encapsulated payload *)
  net : net;
}

let proto_of_transport = function
  | Tcp _ -> Constants_pkt.proto_tcp
  | Udp _ -> Constants_pkt.proto_udp
  | Icmp _ -> Constants_pkt.proto_icmp
  | Other_transport _ -> 0xfd (* "use for experimentation" protocol number *)

(* A canonical concrete TCP probe, the packet the harness injects after
   state-changing messages (paper §3.3). *)
let tcp_probe
    ?(dl_src = 0x00_00_00_00_00_01L)
    ?(dl_dst = 0x00_00_00_00_00_02L)
    ?(vlan = None)
    ?(tos = 0)
    ?(src = 0x0a000001l) (* 10.0.0.1 *)
    ?(dst = 0x0a000002l)
    ?(sport = 1234)
    ?(dport = 80)
    () =
  {
    dl_src;
    dl_dst;
    vlan;
    dl_type = Constants_pkt.eth_type_ip;
    net =
      Ipv4
        {
          ip_tos = tos;
          ip_proto = Constants_pkt.proto_tcp;
          ip_src = src;
          ip_dst = dst;
          ip_payload = Tcp { tcp_src = sport; tcp_dst = dport };
        };
  }

let eth_probe ?(dl_src = 0x00_00_00_00_00_01L) ?(dl_dst = 0x00_00_00_00_00_02L)
    ?(dl_type = 0x88b5) ?(payload = "soft-probe") () =
  { dl_src; dl_dst; vlan = None; dl_type; net = Other_net payload }

(* --- serialization --------------------------------------------------- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b (v : int32) =
  add_u16 b (Int32.to_int (Int32.shift_right_logical v 16));
  add_u16 b (Int32.to_int (Int32.logand v 0xffffl))

let add_mac b (m : mac) =
  for i = 5 downto 0 do
    add_u8 b (Int64.to_int (Int64.shift_right_logical m (8 * i)))
  done

let transport_bytes tp =
  let b = Buffer.create 20 in
  (match tp with
   | Tcp { tcp_src; tcp_dst } ->
     add_u16 b tcp_src;
     add_u16 b tcp_dst;
     add_u32 b 0l (* seq *);
     add_u32 b 0l (* ack *);
     add_u8 b 0x50 (* data offset 5 *);
     add_u8 b 0x02 (* SYN *);
     add_u16 b 0xffff (* window *);
     add_u16 b 0 (* checksum: stubbed *);
     add_u16 b 0 (* urgent *)
   | Udp { udp_src; udp_dst } ->
     add_u16 b udp_src;
     add_u16 b udp_dst;
     add_u16 b 8 (* length *);
     add_u16 b 0 (* checksum: stubbed *)
   | Icmp { icmp_type; icmp_code } ->
     add_u8 b icmp_type;
     add_u8 b icmp_code;
     add_u16 b 0 (* checksum: stubbed *);
     add_u32 b 0l
   | Other_transport s -> Buffer.add_string b s);
  Buffer.contents b

let to_bytes (p : t) =
  let b = Buffer.create 64 in
  add_mac b p.dl_dst;
  add_mac b p.dl_src;
  (match p.vlan with
   | Some { vid; pcp } ->
     add_u16 b Constants_pkt.eth_type_vlan;
     add_u16 b (((pcp land 0x7) lsl 13) lor (vid land 0xfff))
   | None -> ());
  add_u16 b p.dl_type;
  (match p.net with
   | Ipv4 ip ->
     let payload = transport_bytes ip.ip_payload in
     add_u8 b 0x45 (* version 4, IHL 5 *);
     add_u8 b ip.ip_tos;
     add_u16 b (20 + String.length payload);
     add_u16 b 0 (* id *);
     add_u16 b 0 (* flags/frag *);
     add_u8 b 64 (* ttl *);
     add_u8 b ip.ip_proto;
     add_u16 b 0 (* checksum: stubbed *);
     add_u32 b ip.ip_src;
     add_u32 b ip.ip_dst;
     Buffer.add_string b payload
   | Arp a ->
     add_u16 b 1 (* htype ethernet *);
     add_u16 b Constants_pkt.eth_type_ip;
     add_u8 b 6;
     add_u8 b 4;
     add_u16 b a.arp_op;
     add_mac b a.arp_sha;
     add_u32 b a.arp_spa;
     add_mac b a.arp_tha;
     add_u32 b a.arp_tpa
   | Other_net s -> Buffer.add_string b s);
  Buffer.contents b

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

let get_u8 s pos =
  if pos >= String.length s then raise (Parse_error "truncated");
  Char.code s.[pos]

let get_u16 s pos = (get_u8 s pos lsl 8) lor get_u8 s (pos + 1)

let get_u32 s pos =
  Int32.logor
    (Int32.shift_left (Int32.of_int (get_u16 s pos)) 16)
    (Int32.of_int (get_u16 s (pos + 2)))

let get_mac s pos =
  let v = ref 0L in
  for i = 0 to 5 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 s (pos + i)))
  done;
  !v

let parse_transport proto s pos =
  if proto = Constants_pkt.proto_tcp && String.length s - pos >= 20 then
    Tcp { tcp_src = get_u16 s pos; tcp_dst = get_u16 s (pos + 2) }
  else if proto = Constants_pkt.proto_udp && String.length s - pos >= 8 then
    Udp { udp_src = get_u16 s pos; udp_dst = get_u16 s (pos + 2) }
  else if proto = Constants_pkt.proto_icmp && String.length s - pos >= 4 then
    Icmp { icmp_type = get_u8 s pos; icmp_code = get_u8 s (pos + 1) }
  else Other_transport (String.sub s pos (String.length s - pos))

let of_bytes s =
  if String.length s < 14 then raise (Parse_error "frame too short");
  let dl_dst = get_mac s 0 in
  let dl_src = get_mac s 6 in
  let tpid = get_u16 s 12 in
  let vlan, dl_type, off =
    if tpid = Constants_pkt.eth_type_vlan then begin
      let tci = get_u16 s 14 in
      (Some { vid = tci land 0xfff; pcp = (tci lsr 13) land 0x7 }, get_u16 s 16, 18)
    end
    else (None, tpid, 14)
  in
  let net =
    if dl_type = Constants_pkt.eth_type_ip && String.length s - off >= 20 then begin
      let ihl = (get_u8 s off land 0xf) * 4 in
      let ip_tos = get_u8 s (off + 1) in
      let ip_proto = get_u8 s (off + 9) in
      let ip_src = get_u32 s (off + 12) in
      let ip_dst = get_u32 s (off + 16) in
      Ipv4 { ip_tos; ip_proto; ip_src; ip_dst;
             ip_payload = parse_transport ip_proto s (off + ihl) }
    end
    else if dl_type = Constants_pkt.eth_type_arp && String.length s - off >= 28 then
      Arp
        {
          arp_op = get_u16 s (off + 6);
          arp_sha = get_mac s (off + 8);
          arp_spa = get_u32 s (off + 14);
          arp_tha = get_mac s (off + 18);
          arp_tpa = get_u32 s (off + 24);
        }
    else Other_net (String.sub s off (String.length s - off))
  in
  { dl_src; dl_dst; vlan; dl_type; net }

(* --- printing ---------------------------------------------------------- *)

let pp_mac fmt (m : mac) =
  Format.fprintf fmt "%02Lx:%02Lx:%02Lx:%02Lx:%02Lx:%02Lx"
    (Int64.logand (Int64.shift_right_logical m 40) 0xffL)
    (Int64.logand (Int64.shift_right_logical m 32) 0xffL)
    (Int64.logand (Int64.shift_right_logical m 24) 0xffL)
    (Int64.logand (Int64.shift_right_logical m 16) 0xffL)
    (Int64.logand (Int64.shift_right_logical m 8) 0xffL)
    (Int64.logand m 0xffL)

let pp_ipv4_addr fmt (a : int32) =
  let byte i = Int32.to_int (Int32.logand (Int32.shift_right_logical a (8 * i)) 0xffl) in
  Format.fprintf fmt "%d.%d.%d.%d" (byte 3) (byte 2) (byte 1) (byte 0)

let pp fmt (p : t) =
  Format.fprintf fmt "eth{%a->%a" pp_mac p.dl_src pp_mac p.dl_dst;
  (match p.vlan with
   | Some { vid; pcp } -> Format.fprintf fmt ",vlan=%d/%d" vid pcp
   | None -> ());
  Format.fprintf fmt ",type=0x%04x}" p.dl_type;
  match p.net with
  | Ipv4 ip -> (
    Format.fprintf fmt " ip{%a->%a,tos=%d,proto=%d}" pp_ipv4_addr ip.ip_src pp_ipv4_addr
      ip.ip_dst ip.ip_tos ip.ip_proto;
    match ip.ip_payload with
    | Tcp t -> Format.fprintf fmt " tcp{%d->%d}" t.tcp_src t.tcp_dst
    | Udp u -> Format.fprintf fmt " udp{%d->%d}" u.udp_src u.udp_dst
    | Icmp i -> Format.fprintf fmt " icmp{%d/%d}" i.icmp_type i.icmp_code
    | Other_transport _ -> Format.fprintf fmt " tp{?}")
  | Arp a -> Format.fprintf fmt " arp{op=%d}" a.arp_op
  | Other_net _ -> Format.fprintf fmt " raw"

let to_string p = Format.asprintf "%a" pp p
