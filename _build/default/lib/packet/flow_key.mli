(** Extraction of the OpenFlow 1.0 12-tuple flow key from a (possibly
    symbolic) packet, mirroring flow_extract() in the reference switch:
    the parser dispatches on ethertype and IP protocol, so extraction
    *branches* when those fields are symbolic — the same forks a real
    agent's parser exhibits under symbolic execution. *)

open Smt

type t = {
  fk_in_port : Expr.bv;  (** 16 *)
  fk_dl_src : Expr.bv;  (** 48 *)
  fk_dl_dst : Expr.bv;  (** 48 *)
  fk_dl_vlan : Expr.bv;  (** 16; OFP_VLAN_NONE (0xffff) when untagged *)
  fk_dl_vlan_pcp : Expr.bv;  (** 8 *)
  fk_dl_type : Expr.bv;  (** 16 *)
  fk_nw_tos : Expr.bv;  (** 8 *)
  fk_nw_proto : Expr.bv;  (** 8 *)
  fk_nw_src : Expr.bv;  (** 32 *)
  fk_nw_dst : Expr.bv;  (** 32 *)
  fk_tp_src : Expr.bv;  (** 16 *)
  fk_tp_dst : Expr.bv;  (** 16 *)
}

val extract :
  'ev Symexec.Engine.env -> in_port:Expr.bv -> Sym_packet.t -> t
(** Parse the packet into its flow key, branching on symbolic dispatch
    fields.  Non-IP packets read zero network/transport fields, per the
    1.0 specification. *)
