(* Ethernet and IP protocol numbers used across the packet library. *)

let eth_type_ip = 0x0800
let eth_type_arp = 0x0806
let eth_type_vlan = 0x8100

let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17
