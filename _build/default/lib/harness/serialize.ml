(* On-disk interchange format for phase-1 results.  A vendor runs
   [Runner.execute] privately and ships this file; the crosscheck phase
   consumes only these files — never agent code (paper §2.4).

   Line-oriented format:
     soft-run 1
     agent NAME
     test ID
     path
     T trace-line          (zero or more)
     X crash-message       (optional)
     P sexp-path-condition
     ... repeated per path
*)

module Trace = Openflow.Trace

type saved = {
  sv_agent : string;
  sv_test : string;
  sv_paths : (Trace.result * Smt.Expr.boolean) list;
}

let of_run (r : Runner.run) =
  {
    sv_agent = r.Runner.run_agent;
    sv_test = r.Runner.run_test;
    sv_paths = List.map (fun (p : Runner.path_record) -> (p.pr_result, p.pr_cond)) r.Runner.run_paths;
  }

let write_channel oc (s : saved) =
  output_string oc "soft-run 1\n";
  Printf.fprintf oc "agent %s\n" s.sv_agent;
  Printf.fprintf oc "test %s\n" s.sv_test;
  List.iter
    (fun ((res : Trace.result), cond) ->
      output_string oc "path\n";
      List.iter (fun line -> Printf.fprintf oc "T %s\n" line) res.Trace.trace;
      (match res.Trace.crash with
       | Some m -> Printf.fprintf oc "X %s\n" m
       | None -> ());
      Printf.fprintf oc "P %s\n" (Smt.Serial.bool_to_string cond))
    s.sv_paths

let save path (s : saved) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc s)

exception Format_error of string

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () = try Some (input_line ic) with End_of_file -> None in
      let expect_prefix p l =
        if String.length l >= String.length p && String.sub l 0 (String.length p) = p then
          String.sub l (String.length p) (String.length l - String.length p)
        else raise (Format_error (Printf.sprintf "%s: expected '%s...', got '%s'" path p l))
      in
      (match line () with
       | Some "soft-run 1" -> ()
       | _ -> raise (Format_error (path ^ ": bad magic")));
      let agent =
        match line () with
        | Some l -> expect_prefix "agent " l
        | None -> raise (Format_error (path ^ ": truncated"))
      in
      let test =
        match line () with
        | Some l -> expect_prefix "test " l
        | None -> raise (Format_error (path ^ ": truncated"))
      in
      let paths = ref [] in
      let cur_trace = ref [] in
      let cur_crash = ref None in
      let in_path = ref false in
      let flush_path cond =
        paths :=
          ({ Trace.trace = List.rev !cur_trace; crash = !cur_crash }, cond) :: !paths;
        cur_trace := [];
        cur_crash := None;
        in_path := false
      in
      let rec go () =
        match line () with
        | None ->
          if !in_path then raise (Format_error (path ^ ": path without condition"))
        | Some "path" ->
          if !in_path then raise (Format_error (path ^ ": nested path"));
          in_path := true;
          go ()
        | Some l when String.length l >= 2 && l.[0] = 'T' && l.[1] = ' ' ->
          cur_trace := String.sub l 2 (String.length l - 2) :: !cur_trace;
          go ()
        | Some l when String.length l >= 2 && l.[0] = 'X' && l.[1] = ' ' ->
          cur_crash := Some (String.sub l 2 (String.length l - 2));
          go ()
        | Some l when String.length l >= 2 && l.[0] = 'P' && l.[1] = ' ' ->
          let cond = Smt.Serial.bool_of_string (String.sub l 2 (String.length l - 2)) in
          flush_path cond;
          go ()
        | Some "" -> go ()
        | Some l -> raise (Format_error (path ^ ": unexpected line: " ^ l))
      in
      go ();
      { sv_agent = agent; sv_test = test; sv_paths = List.rev !paths })
