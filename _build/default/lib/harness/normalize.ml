(* Output-result normalization (paper §3.3): scrub data whose differences
   between agents are expected and meaningless — buffer identifiers,
   transaction ids (never recorded in events in the first place), and the
   free-text bodies of description statistics. *)

open Smt
module Trace = Openflow.Trace

let canonical_buffer = Trace.Buffer_id { braw = Expr.const ~width:32 0L }

let msg_out = function
  | Trace.O_packet_in { o_pi_in_port; o_pi_reason; o_pi_buffer; o_pi_pkt; o_pi_data_len } ->
    let o_pi_buffer =
      match o_pi_buffer with Trace.No_buffer -> Trace.No_buffer | Trace.Buffer_id _ -> canonical_buffer
    in
    Trace.O_packet_in { o_pi_in_port; o_pi_reason; o_pi_buffer; o_pi_pkt; o_pi_data_len }
  | Trace.O_stats_reply { o_stats_type; _ }
    when o_stats_type = Openflow.Constants.Stats_type.desc ->
    (* the description body is vendor free-text by definition *)
    Trace.O_stats_reply { o_stats_type; o_stats_body = "<desc>" }
  | m -> m

let event = function
  | Trace.Msg_out m -> Trace.Msg_out (msg_out m)
  | e -> e

let events evs = List.map event evs

(* A crash is observable (the control connection drops) but the message is
   implementation internal: normalize to the fact itself. *)
let crash = Option.map (fun (_ : string) -> "connection lost")

let result ?crash:c evs = Trace.result_of ?crash:(crash c) (events evs)
