lib/harness/test_spec.mli: Openflow Packet
