lib/harness/normalize.mli: Openflow
