lib/harness/test_spec.ml: Expr Int32 Int64 List Openflow Packet Printf Smt
