lib/harness/runner.ml: Expr Int64 List Normalize Openflow Smt Switches Symexec Test_spec
