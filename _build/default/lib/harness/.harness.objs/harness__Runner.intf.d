lib/harness/runner.mli: Openflow Smt Switches Symexec Test_spec
