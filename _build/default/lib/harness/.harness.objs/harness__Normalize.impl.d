lib/harness/normalize.ml: Expr List Openflow Option Smt
