lib/harness/serialize.mli: Openflow Runner Smt
