lib/harness/serialize.ml: Fun List Openflow Printf Runner Smt String
