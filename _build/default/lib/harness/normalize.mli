(** Output-result normalization (paper §3.3): scrub data whose differences
    between agents are expected and meaningless — buffer identifiers,
    crash-message internals, the free-text bodies of description
    statistics.  Transaction ids never enter events in the first place. *)

val event : Openflow.Trace.event -> Openflow.Trace.event
val events : Openflow.Trace.event list -> Openflow.Trace.event list

val result : ?crash:string -> Openflow.Trace.event list -> Openflow.Trace.result
(** Normalize a path's raw events (and optional crash) into the comparable
    result used by grouping and crosschecking. *)
