(* The test inputs of the evaluation (Table 1), plus the concretization
   ablations of Table 5 and the message-count sweep of Figure 4.

   Input construction follows §3.2: structure (message type, lengths,
   action counts) is concrete; field contents are symbolic variables.
   Variable names are deterministic per test, and the expression layer
   interns variables globally — so running two agents on the same spec
   feeds them literally the same symbolic inputs, which is what makes the
   crosscheck phase sound. *)

open Smt
module Sym_msg = Openflow.Sym_msg
module SP = Packet.Sym_packet

type input =
  | Msg of Sym_msg.t
  | Probe of { pr_id : int; pr_in_port : int; pr_packet : SP.t }
  | Advance_time of int
      (* virtual-time extension (the paper's future work): let the agent's
         clock progress, firing flow timeouts *)

type t = {
  id : string;
  label : string; (* row label as printed in the paper's tables *)
  description : string;
  message_count : int; (* "Message count" column of Table 2 *)
  inputs : input list;
}

let v16 n = Expr.var ~width:16 n
let v32 n = Expr.var ~width:32 n
let c32 v = Expr.const ~width:32 (Int64.of_int v)

let tcp_probe ~id ~in_port =
  Probe { pr_id = id; pr_in_port = in_port; pr_packet = SP.of_concrete (Packet.Headers.tcp_probe ()) }

let eth_probe ~id ~in_port =
  Probe { pr_id = id; pr_in_port = in_port; pr_packet = SP.of_concrete (Packet.Headers.eth_probe ()) }

(* --- Table 1 -------------------------------------------------------------- *)

(* A single Packet Out with one symbolic action and one symbolic output
   action; buffer_id and in_port symbolic, carrying a concrete packet. *)
let packet_out () =
  let p = "po" in
  let po =
    {
      Sym_msg.spo_buffer_id = v32 (p ^ ".buffer_id");
      spo_in_port = v16 (p ^ ".in_port");
      spo_actions =
        [ Sym_msg.sym_action ~prefix:(p ^ ".act0") (); Sym_msg.sym_output_action ~prefix:(p ^ ".act1") () ];
      spo_data = Some (SP.of_concrete (Packet.Headers.tcp_probe ()));
    }
  in
  {
    id = "packet_out";
    label = "Packet Out";
    description =
      "A single Packet Out message containing a symbolic action and a symbolic output action.";
    message_count = 1;
    inputs = [ Msg (Sym_msg.packet_out po) ];
  }

(* A single symbolic Stats Request covering all possible statistics
   requests. *)
let stats_request () =
  {
    id = "stats_request";
    label = "Stats Request";
    description = "A single symbolic Stats Req. It covers all possible statistics requests.";
    message_count = 1;
    inputs = [ Msg (Sym_msg.sym_stats_request ~prefix:"sr" ()) ];
  }

(* A symbolic Set Config followed by a probing TCP packet. *)
let set_config () =
  let sc =
    { Sym_msg.scfg_flags = v16 "sc.flags"; smiss_send_len = v16 "sc.miss_send_len" }
  in
  {
    id = "set_config";
    label = "Set Config";
    description = "A symbolic Set Config message followed by a probing TCP packet.";
    message_count = 2;
    inputs = [ Msg (Sym_msg.set_config sc); tcp_probe ~id:1 ~in_port:1 ];
  }

let sym_flow_mod ~prefix ~match_ ~actions () =
  {
    Sym_msg.sfm_match = match_;
    sfm_cookie = Expr.var ~width:64 (prefix ^ ".cookie");
    sfm_command = v16 (prefix ^ ".command");
    sfm_idle_timeout = v16 (prefix ^ ".idle");
    sfm_hard_timeout = v16 (prefix ^ ".hard");
    sfm_priority = v16 (prefix ^ ".priority");
    sfm_buffer_id = v32 (prefix ^ ".buffer_id");
    sfm_out_port = v16 (prefix ^ ".out_port");
    sfm_flags = v16 (prefix ^ ".flags");
    sfm_actions = actions;
  }

(* A symbolic Flow Mod with 1 symbolic action and a symbolic output action
   followed by a probing TCP packet. *)
let flow_mod () =
  let p = "fm" in
  let fm =
    sym_flow_mod ~prefix:p
      ~match_:(Sym_msg.sym_match ~prefix:(p ^ ".match") ())
      ~actions:
        [ Sym_msg.sym_action ~prefix:(p ^ ".act0") (); Sym_msg.sym_output_action ~prefix:(p ^ ".act1") () ]
      ()
  in
  {
    id = "flow_mod";
    label = "FlowMod";
    description =
      "A symbolic Flow Mod with 1 symbolic action and a symbolic output action followed by a \
       probing TCP packet.";
    message_count = 2;
    inputs = [ Msg (Sym_msg.flow_mod fm); tcp_probe ~id:1 ~in_port:1 ];
  }

(* Flow Mod with only Ethernet-related fields symbolic, probed with an
   Ethernet packet. *)
let eth_flow_mod () =
  let p = "efm" in
  let fm =
    sym_flow_mod ~prefix:p
      ~match_:(Sym_msg.sym_match_eth ~prefix:(p ^ ".match") ())
      ~actions:
        [ Sym_msg.sym_action ~prefix:(p ^ ".act0") (); Sym_msg.sym_output_action ~prefix:(p ^ ".act1") () ]
      ()
  in
  {
    id = "eth_flow_mod";
    label = "Eth FlowMod";
    description =
      "Symbolic Flow Mod with 1 symbolic action and a symbolic output action. Fields not \
       related to Ethernet are concretized. The message is followed by a probing Ethernet \
       packet.";
    message_count = 2;
    inputs = [ Msg (Sym_msg.flow_mod fm); eth_probe ~id:1 ~in_port:1 ];
  }

(* Two Flow Mods: the first concrete, the second symbolic. *)
let cs_flow_mods () =
  let concrete_fm =
    let m =
      Sym_msg.of_match
        {
          Openflow.Types.match_all with
          Openflow.Types.wildcards =
            Int32.of_int
              (Openflow.Constants.Wildcards.all land lnot Openflow.Constants.Wildcards.in_port);
          in_port = 1;
        }
    in
    {
      Sym_msg.sfm_match = m;
      sfm_cookie = Expr.const ~width:64 7L;
      sfm_command = Expr.const ~width:16 (Int64.of_int Openflow.Constants.Flow_mod_command.add);
      sfm_idle_timeout = Expr.const ~width:16 0L;
      sfm_hard_timeout = Expr.const ~width:16 0L;
      sfm_priority = Expr.const ~width:16 100L;
      sfm_buffer_id = c32 0xffffffff;
      sfm_out_port = Expr.const ~width:16 (Int64.of_int Openflow.Constants.Port.none);
      sfm_flags = Expr.const ~width:16 0L;
      sfm_actions = [ Sym_msg.of_action (Openflow.Types.Output { port = 2; max_len = 0 }) ];
    }
  in
  let p = "csfm" in
  let symbolic_fm =
    sym_flow_mod ~prefix:p
      ~match_:(Sym_msg.sym_match ~prefix:(p ^ ".match") ())
      ~actions:[ Sym_msg.sym_output_action ~prefix:(p ^ ".act0") () ]
      ()
  in
  {
    id = "cs_flow_mods";
    label = "CS FlowMods";
    description = "2 Flow Mod. The first one is concrete, the second is symbolic.";
    message_count = 2;
    inputs = [ Msg (Sym_msg.flow_mod concrete_fm); Msg (Sym_msg.flow_mod symbolic_fm) ];
  }

(* Four concrete 8-byte messages (no variable fields). *)
let concrete () =
  {
    id = "concrete";
    label = "Concrete";
    description = "4 concrete 8-byte messages. These are the messages that do not have variable fields.";
    message_count = 4;
    inputs =
      [
        Msg (Sym_msg.echo_request ?xid:None [||]);
        Msg (Sym_msg.features_request ());
        Msg (Sym_msg.get_config_request ());
        Msg (Sym_msg.barrier_request ());
      ];
  }

(* A 10-byte symbolic message; only the version field is concrete. *)
let short_symb () =
  {
    id = "short_symb";
    label = "Short Symb";
    description = "A 10-byte symbolic message. Only the OpenFlow version field is concrete.";
    message_count = 1;
    inputs = [ Msg (Sym_msg.short_symbolic ~prefix:"ss" ()) ];
  }

(* The eight tests of Table 1, in the paper's order. *)
let all () =
  [
    packet_out (); stats_request (); set_config (); flow_mod (); eth_flow_mod ();
    cs_flow_mods (); concrete (); short_symb ();
  ]

let by_id id =
  List.find_opt (fun t -> t.id = id) (all ())

(* --- Table 5: concretization ablations ------------------------------------ *)

(* Baseline: a single symbolic Flow Mod with 2 symbolic actions and 2
   symbolic output actions, followed by a TCP probe. *)
let ablation_baseline ~variant ~match_ ~actions () =
  let p = "abl_" ^ variant in
  let fm = sym_flow_mod ~prefix:p ~match_ ~actions () in
  {
    id = "ablation_" ^ variant;
    label = variant;
    description = "Table 5 ablation variant: " ^ variant;
    message_count = 2;
    inputs = [ Msg (Sym_msg.flow_mod fm); tcp_probe ~id:1 ~in_port:1 ];
  }

let fully_symbolic () =
  let p = "abl_full" in
  ablation_baseline ~variant:"full"
    ~match_:(Sym_msg.sym_match ~prefix:(p ^ ".match") ())
    ~actions:
      [
        Sym_msg.sym_action ~prefix:(p ^ ".a0") ();
        Sym_msg.sym_action ~prefix:(p ^ ".a1") ();
        Sym_msg.sym_output_action ~prefix:(p ^ ".o0") ();
        Sym_msg.sym_output_action ~prefix:(p ^ ".o1") ();
      ]
    ()

let concrete_match () =
  let p = "abl_cmatch" in
  ablation_baseline ~variant:"concrete_match"
    ~match_:(Sym_msg.wildcard_match ())
    ~actions:
      [
        Sym_msg.sym_action ~prefix:(p ^ ".a0") ();
        Sym_msg.sym_action ~prefix:(p ^ ".a1") ();
        Sym_msg.sym_output_action ~prefix:(p ^ ".o0") ();
        Sym_msg.sym_output_action ~prefix:(p ^ ".o1") ();
      ]
    ()

let concrete_action () =
  let p = "abl_cact" in
  ablation_baseline ~variant:"concrete_action"
    ~match_:(Sym_msg.sym_match ~prefix:(p ^ ".match") ())
    ~actions:[ Sym_msg.of_action (Openflow.Types.Output { port = 2; max_len = 0 }) ]
    ()

(* Probe ablation: a partially symbolic Flow Mod that applies actions to
   Ethernet packets, probed with a concrete or fully symbolic packet. *)
let probe_ablation ~symbolic_probe () =
  let variant = if symbolic_probe then "symbolic_probe" else "concrete_probe" in
  let p = "abl_" ^ variant in
  let fm =
    sym_flow_mod ~prefix:p
      ~match_:(Sym_msg.sym_match_eth ~prefix:(p ^ ".match") ())
      ~actions:[ Sym_msg.sym_output_action ~prefix:(p ^ ".o0") () ]
      ()
  in
  let probe =
    if symbolic_probe then
      Probe { pr_id = 1; pr_in_port = 1; pr_packet = SP.symbolic_eth ~prefix:(p ^ ".probe") () }
    else eth_probe ~id:1 ~in_port:1
  in
  {
    id = "ablation_" ^ variant;
    label = variant;
    description = "Table 5 probe ablation variant: " ^ variant;
    message_count = 2;
    inputs = [ Msg (Sym_msg.flow_mod fm); probe ];
  }

(* --- Figure 4: coverage vs number of symbolic messages -------------------- *)

let figure4_sequence ~messages () =
  let mk i =
    let p = Printf.sprintf "f4m%d" i in
    Msg
      (Sym_msg.flow_mod
         (sym_flow_mod ~prefix:p
            ~match_:(Sym_msg.sym_match ~prefix:(p ^ ".match") ())
            ~actions:[ Sym_msg.sym_output_action ~prefix:(p ^ ".o0") () ]
            ()))
  in
  let rec build i = if i > messages then [] else mk i :: build (i + 1) in
  {
    id = Printf.sprintf "figure4_%d" messages;
    label = Printf.sprintf "%d symbolic message(s)" messages;
    description = "Figure 4 sweep: symbolic Flow Mod sequence";
    message_count = messages;
    inputs = build 1;
  }

(* --- virtual-time extension ------------------------------------------------ *)

(* A concrete flow mod with a 10s idle timeout, the clock advanced to one
   second before expiry, then a probe.  An agent whose rules expire early
   (the Modified Switch's M2 injection) diverges observably here — the
   difference the standard suite cannot reach (paper §5.1.1). *)
let timed_flow_mod () =
  let m =
    Sym_msg.of_match
      {
        Openflow.Types.match_all with
        Openflow.Types.wildcards =
          Int32.of_int
            (Openflow.Constants.Wildcards.all land lnot Openflow.Constants.Wildcards.in_port);
        in_port = 1;
      }
  in
  let fm =
    {
      Sym_msg.sfm_match = m;
      sfm_cookie = Expr.const ~width:64 0L;
      sfm_command = Expr.const ~width:16 (Int64.of_int Openflow.Constants.Flow_mod_command.add);
      sfm_idle_timeout = Expr.const ~width:16 10L;
      sfm_hard_timeout = Expr.const ~width:16 0L;
      sfm_priority = Expr.const ~width:16 100L;
      sfm_buffer_id = c32 0xffffffff;
      sfm_out_port = Expr.const ~width:16 (Int64.of_int Openflow.Constants.Port.none);
      sfm_flags = Expr.const ~width:16 0L;
      sfm_actions = [ Sym_msg.of_action (Openflow.Types.Output { port = 2; max_len = 0 }) ];
    }
  in
  {
    id = "timed_flow_mod";
    label = "Timed FlowMod";
    description =
      "A concrete Flow Mod with idle_timeout=10, the virtual clock advanced by 9 seconds, \
       then a probing TCP packet (time extension).";
    message_count = 2;
    inputs = [ Msg (Sym_msg.flow_mod fm); Advance_time 9; tcp_probe ~id:1 ~in_port:1 ];
  }

(* Same, with a symbolic idle timeout: partitions the timeout space around
   the advanced clock. *)
let timed_flow_mod_symbolic () =
  let p = "tfms" in
  let fm =
    {
      (sym_flow_mod ~prefix:p
         ~match_:(Sym_msg.wildcard_match ())
         ~actions:[ Sym_msg.of_action (Openflow.Types.Output { port = 2; max_len = 0 }) ]
         ())
      with
      Sym_msg.sfm_command =
        Expr.const ~width:16 (Int64.of_int Openflow.Constants.Flow_mod_command.add);
      sfm_buffer_id = c32 0xffffffff;
      sfm_flags = Expr.const ~width:16 0L;
      sfm_hard_timeout = Expr.const ~width:16 0L;
    }
  in
  {
    id = "timed_flow_mod_symbolic";
    label = "Timed FlowMod (sym)";
    description =
      "A Flow Mod with a symbolic idle timeout, the virtual clock advanced by 9 seconds, \
       then a probing TCP packet (time extension).";
    message_count = 2;
    inputs = [ Msg (Sym_msg.flow_mod fm); Advance_time 9; tcp_probe ~id:1 ~in_port:1 ];
  }
