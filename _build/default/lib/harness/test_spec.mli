(** The test inputs of the paper's evaluation (Table 1), the concretization
    ablations of Table 5, the message-count sweep of Figure 4, and the
    virtual-time extension tests.

    Input construction follows §3.2: structure (message type, lengths,
    action counts) is concrete while field contents are symbolic.
    Variable names are deterministic per test and interned globally, so
    running two agents on the same spec feeds them literally the same
    symbolic inputs — the soundness prerequisite of the crosscheck phase. *)

type input =
  | Msg of Openflow.Sym_msg.t
  | Probe of { pr_id : int; pr_in_port : int; pr_packet : Packet.Sym_packet.t }
      (** a concrete (or symbolic) data-plane packet used to observe state *)
  | Advance_time of int
      (** virtual-time extension: advance the agent's clock by this many
          seconds, firing flow timeouts *)

type t = {
  id : string;
  label : string;  (** row label as printed in the paper's tables *)
  description : string;
  message_count : int;  (** the "Message count" column of Table 2 *)
  inputs : input list;
}

(** {1 Table 1} *)

val packet_out : unit -> t
val stats_request : unit -> t
val set_config : unit -> t
val flow_mod : unit -> t
val eth_flow_mod : unit -> t
val cs_flow_mods : unit -> t
val concrete : unit -> t
val short_symb : unit -> t

val all : unit -> t list
(** The eight tests, in the paper's order. *)

val by_id : string -> t option

(** {1 Building blocks} *)

val sym_flow_mod :
  prefix:string ->
  match_:Openflow.Sym_msg.smatch ->
  actions:Openflow.Sym_msg.saction list ->
  unit ->
  Openflow.Sym_msg.sflow_mod
(** A flow mod whose scalar fields (command, timeouts, priority, buffer,
    out_port, flags, cookie) are fresh symbolic variables under [prefix]. *)

val tcp_probe : id:int -> in_port:int -> input
val eth_probe : id:int -> in_port:int -> input

(** {1 Table 5 ablations} *)

val fully_symbolic : unit -> t
(** The §5.3 baseline: 2 symbolic actions + 2 symbolic output actions,
    fully symbolic match, TCP probe. *)

val concrete_match : unit -> t
val concrete_action : unit -> t
val probe_ablation : symbolic_probe:bool -> unit -> t

(** {1 Figure 4} *)

val figure4_sequence : messages:int -> unit -> t
(** A sequence of [messages] symbolic flow mods (no probe). *)

(** {1 Virtual-time extension} *)

val timed_flow_mod : unit -> t
(** Concrete rule with idle_timeout 10s, clock advanced by 9s, TCP probe —
    exposes off-by-one expiry differences (the Modified Switch's M2). *)

val timed_flow_mod_symbolic : unit -> t
(** Same with a symbolic idle timeout: partitions the timeout space around
    the advanced clock. *)
