lib/symexec/coverage.mli: Format
