lib/symexec/strategy.ml: List Printf Random String
