lib/symexec/engine.ml: Coverage Expr Format Interval List Model Option Smt Solver Strategy Sys Unix
