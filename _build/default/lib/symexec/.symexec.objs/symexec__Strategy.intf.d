lib/symexec/strategy.mli:
