lib/symexec/engine.mli: Coverage Expr Format Smt Strategy
