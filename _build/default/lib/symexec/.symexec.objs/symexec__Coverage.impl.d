lib/symexec/coverage.ml: Format Hashtbl List
