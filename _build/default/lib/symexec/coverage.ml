(* Program-point registry and coverage accounting, mirroring what Cloud9
   reports for the agents under test (Tables 4, 5 and Figure 4).

   Agents declare their instrumentation points at module-initialization time
   ([instr]/[branch] at top level), so the per-unit totals are known before
   any execution.  A point is an instruction point or one direction of a
   branch; covering a point at least once marks it covered regardless of
   operand values, exactly as the paper counts coverage. *)

type kind = Instr | Branch_true | Branch_false

type point = { pid : int; unit_name : string; pname : string; kind : kind }

type branch_point = { on_true : point; on_false : point }

let points : point list ref = ref []
let counter = ref 0
let by_unit : (string, point list ref) Hashtbl.t = Hashtbl.create 8

let register unit_name pname kind =
  let p = { pid = !counter; unit_name; pname; kind } in
  incr counter;
  points := p :: !points;
  (match Hashtbl.find_opt by_unit unit_name with
   | Some l -> l := p :: !l
   | None -> Hashtbl.add by_unit unit_name (ref [ p ]));
  p

let instr unit_name pname = register unit_name pname Instr

let branch unit_name pname =
  {
    on_true = register unit_name (pname ^ ":T") Branch_true;
    on_false = register unit_name (pname ^ ":F") Branch_false;
  }

let unit_points unit_name =
  match Hashtbl.find_opt by_unit unit_name with Some l -> !l | None -> []

let total_instr unit_name =
  List.length (List.filter (fun p -> p.kind = Instr) (unit_points unit_name))

let total_branch unit_name =
  List.length (List.filter (fun p -> p.kind <> Instr) (unit_points unit_name))

(* --- coverage sets -------------------------------------------------- *)

type set = (int, unit) Hashtbl.t

let empty_set () : set = Hashtbl.create 64
let mark (s : set) p = Hashtbl.replace s p.pid ()
let covered (s : set) p = Hashtbl.mem s p.pid
let copy_set (s : set) : set = Hashtbl.copy s
let union (a : set) (b : set) : set =
  let u = Hashtbl.copy a in
  Hashtbl.iter (fun k () -> Hashtbl.replace u k ()) b;
  u

let union_all sets = List.fold_left union (empty_set ()) sets
let cardinal (s : set) = Hashtbl.length s

(* A snapshot is an immutable list of covered point ids — what a path result
   carries around. *)
type snapshot = int list

let snapshot (s : set) : snapshot = Hashtbl.fold (fun k () acc -> k :: acc) s []

let set_of_snapshot (sn : snapshot) : set =
  let s = empty_set () in
  List.iter (fun pid -> Hashtbl.replace s pid ()) sn;
  s

(* --- reporting ------------------------------------------------------- *)

type report = {
  unit_name : string;
  instr_covered : int;
  instr_total : int;
  branch_covered : int;
  branch_total : int;
}

let instr_pct r =
  if r.instr_total = 0 then 0.0 else 100.0 *. float_of_int r.instr_covered /. float_of_int r.instr_total

let branch_pct r =
  if r.branch_total = 0 then 0.0
  else 100.0 *. float_of_int r.branch_covered /. float_of_int r.branch_total

let report unit_name (s : set) =
  let pts = unit_points unit_name in
  let ic = ref 0 and bc = ref 0 and it = ref 0 and bt = ref 0 in
  List.iter
    (fun p ->
      match p.kind with
      | Instr ->
        incr it;
        if covered s p then incr ic
      | Branch_true | Branch_false ->
        incr bt;
        if covered s p then incr bc)
    pts;
  {
    unit_name;
    instr_covered = !ic;
    instr_total = !it;
    branch_covered = !bc;
    branch_total = !bt;
  }

let pp_report fmt r =
  Format.fprintf fmt "%s: instr %d/%d (%.2f%%) branch %d/%d (%.2f%%)" r.unit_name
    r.instr_covered r.instr_total (instr_pct r) r.branch_covered r.branch_total
    (branch_pct r)
