(** Program-point registry and coverage accounting, mirroring Cloud9's
    instruction/branch coverage reports (paper Tables 4, 5 and Figure 4).

    Agents register their instrumentation points at module-initialization
    time, so per-unit totals are known before any execution.  A point is an
    instruction point or one *direction* of a branch; covering it once
    marks it covered regardless of operand values, exactly as the paper
    counts coverage. *)

type kind = Instr | Branch_true | Branch_false

type point = { pid : int; unit_name : string; pname : string; kind : kind }

type branch_point = { on_true : point; on_false : point }

val instr : string -> string -> point
(** [instr unit name] registers an instruction point for coverage unit
    [unit]. *)

val branch : string -> string -> branch_point
(** [branch unit name] registers both directions of a branch. *)

val unit_points : string -> point list
val total_instr : string -> int
val total_branch : string -> int

(** {1 Coverage sets} *)

type set

val empty_set : unit -> set
val mark : set -> point -> unit
val covered : set -> point -> bool
val copy_set : set -> set
val union : set -> set -> set
val union_all : set list -> set
val cardinal : set -> int

type snapshot = int list
(** Immutable list of covered point ids, as carried by path results. *)

val snapshot : set -> snapshot
val set_of_snapshot : snapshot -> set

(** {1 Reports} *)

type report = {
  unit_name : string;
  instr_covered : int;
  instr_total : int;
  branch_covered : int;
  branch_total : int;
}

val report : string -> set -> report
val instr_pct : report -> float
val branch_pct : report -> float
val pp_report : Format.formatter -> report -> unit
