examples/vendor_workflow.ml: Filename Format Harness List Printf Smt Soft String Switches Sys Unix
