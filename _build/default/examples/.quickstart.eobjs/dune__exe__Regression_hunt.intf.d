examples/regression_hunt.mli:
