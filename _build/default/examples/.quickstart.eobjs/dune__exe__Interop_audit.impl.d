examples/interop_audit.ml: Array Format Harness List Soft Switches Sys
