examples/quickstart.ml: Format Harness List Openflow Soft Switches Symexec
