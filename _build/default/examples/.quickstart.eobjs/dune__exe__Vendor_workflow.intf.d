examples/vendor_workflow.mli:
