examples/regression_hunt.ml: Format Harness Hashtbl List Openflow Soft Switches
