examples/quickstart.mli:
