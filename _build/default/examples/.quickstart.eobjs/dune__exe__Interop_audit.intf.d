examples/interop_audit.mli:
