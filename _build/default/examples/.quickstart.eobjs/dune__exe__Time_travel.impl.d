examples/time_travel.ml: Format Harness List Smt Soft Switches
