(* Regression hunting: the §5.1.1 experiment — crosscheck the Reference
   Switch against the Modified Switch (reference + 7 injected behaviour
   changes) and report which injections SOFT pinpoints.

   The expected outcome is 5 of 7: M1 manifests only during connection
   establishment (the harness always completes a correct handshake before
   testing) and M2 only on timer-driven rule expiry (the symbolic engine
   cannot trigger timers).

   Run with:  dune exec examples/regression_hunt.exe *)

module Trace = Openflow.Trace

(* Which injected modification does an inconsistency point at?  Shared
   with the bench harness. *)
let attribute test (inc : Soft.Crosscheck.inconsistency) =
  Switches.Modified_switch.attribute_inconsistency ~test
    ~key_a:(Trace.result_key inc.Soft.Crosscheck.i_result_a)
    ~key_b:(Trace.result_key inc.i_result_b)

let () =
  Format.printf "SOFT regression hunt: reference vs modified switch@.@.";
  let tests =
    [
      Harness.Test_spec.packet_out ();
      Harness.Test_spec.stats_request ();
      Harness.Test_spec.set_config ();
      Harness.Test_spec.cs_flow_mods ();
    ]
  in
  let detected = Hashtbl.create 8 in
  List.iter
    (fun spec ->
      let c =
        Soft.Pipeline.compare_agents ~max_paths:4000 Switches.Reference_switch.agent
          Switches.Modified_switch.agent spec
      in
      Format.printf "%s: %d inconsistencies@." spec.Harness.Test_spec.id
        (Soft.Pipeline.inconsistency_count c);
      List.iter
        (fun inc ->
          match attribute spec.Harness.Test_spec.id inc with
          | Some m when not (Hashtbl.mem detected m) -> Hashtbl.replace detected m inc
          | _ -> ())
        c.Soft.Pipeline.c_outcome.Soft.Crosscheck.o_inconsistencies)
    tests;
  Format.printf "@.== detection report ==@.";
  let found = ref 0 in
  List.iter
    (fun (m : Switches.Modified_switch.injected) ->
      let hit = Hashtbl.mem detected m.Switches.Modified_switch.inj_id in
      if hit then incr found;
      Format.printf "%s %s: %s@."
        (if hit then "[FOUND] " else "[MISSED]")
        m.inj_id m.inj_description;
      if (not hit) && not m.inj_detectable then
        Format.printf "         (expected: unreachable through the OpenFlow test interface)@.")
    Switches.Modified_switch.injected_modifications;
  Format.printf "@.SOFT pinpointed %d of %d injected modifications (paper: 5 of 7)@." !found
    (List.length Switches.Modified_switch.injected_modifications)
