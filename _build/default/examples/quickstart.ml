(* Quickstart: the paper's running example (Figures 1 and 2).

   A single Packet Out message instructs the agent to send a packet on
   port [p].  Symbolically executing each agent partitions the input space
   of [p] into equivalence classes; grouping by output result and
   intersecting differing classes across agents yields the inconsistencies
   — here including the reference switch crash at p = OFPP_CONTROLLER.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  Format.printf "SOFT quickstart: Packet Out with a symbolic output port@.@.";

  (* 1. the test input (Table 1, first row) *)
  let spec = Harness.Test_spec.packet_out () in
  Format.printf "test: %s@." spec.Harness.Test_spec.description;

  (* 2. phase 1 on each agent: input-space partition + output per class *)
  let run_ref = Harness.Runner.execute ~max_paths:1500 Switches.Reference_switch.agent spec in
  let run_ovs = Harness.Runner.execute ~max_paths:1500 Switches.Open_vswitch.agent spec in
  Format.printf "@.reference: %a@." Symexec.Engine.pp_stats run_ref.Harness.Runner.run_stats;
  Format.printf "ovs:       %a@." Symexec.Engine.pp_stats run_ovs.Harness.Runner.run_stats;

  (* 3. group paths by result (the colors of Figure 2) *)
  let g_ref = Soft.Grouping.of_run run_ref in
  let g_ovs = Soft.Grouping.of_run run_ovs in
  Format.printf "@.input-space partition, grouped by output result:@.";
  Format.printf "  reference: %d classes -> %d distinct results@."
    (List.length run_ref.run_paths)
    (Soft.Grouping.distinct_results g_ref);
  Format.printf "  ovs:       %d classes -> %d distinct results@."
    (List.length run_ovs.run_paths)
    (Soft.Grouping.distinct_results g_ovs);

  (* 4. crosscheck: intersect differing result classes *)
  let outcome = Soft.Crosscheck.check g_ref g_ovs in
  Format.printf "@.inconsistencies found: %d@." (Soft.Crosscheck.count outcome);
  Format.printf "@.root causes:@.%a@." Soft.Report.pp_summary (Soft.Report.summarize outcome);

  (* 5. show the crash inconsistency with its concrete reproducer, as in
     the Figure 2 example where p = OFPP_CTRL is derived *)
  let crash =
    List.find_opt
      (fun (i : Soft.Crosscheck.inconsistency) ->
        i.Soft.Crosscheck.i_result_a.Openflow.Trace.crash <> None
        || i.i_result_b.Openflow.Trace.crash <> None)
      outcome.Soft.Crosscheck.o_inconsistencies
  in
  match crash with
  | None -> Format.printf "no crash-class inconsistency in this budget@."
  | Some inc ->
    let tc = Soft.Testcase.of_inconsistency spec ~agent_a:"reference" ~agent_b:"ovs" inc in
    Format.printf "@.a crash-revealing reproducer (cf. Figure 2, p = OFPP_CTRL):@.%a@."
      Soft.Testcase.pp tc
