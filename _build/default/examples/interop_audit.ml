(* Interoperability audit: the §5.1.2 scenario — crosscheck the Reference
   Switch against Open vSwitch over the evaluation's test suite, classify
   the inconsistencies by root cause, and emit one concrete reproducer per
   cause class.

   Run with:  dune exec examples/interop_audit.exe [-- full]
   ("full" raises the per-test path budget). *)

let budget () = if Array.exists (( = ) "full") Sys.argv then 60_000 else 2_000

let () =
  let max_paths = budget () in
  Format.printf "SOFT interoperability audit: reference vs ovs (budget %d paths/test)@.@."
    max_paths;
  let tests =
    [
      Harness.Test_spec.packet_out ();
      Harness.Test_spec.stats_request ();
      Harness.Test_spec.set_config ();
      Harness.Test_spec.eth_flow_mod ();
      Harness.Test_spec.short_symb ();
    ]
  in
  let total = ref 0 in
  List.iter
    (fun spec ->
      let c =
        Soft.Pipeline.compare_agents ~max_paths Switches.Reference_switch.agent
          Switches.Open_vswitch.agent spec
      in
      total := !total + Soft.Pipeline.inconsistency_count c;
      Format.printf "%a@." Soft.Pipeline.pp_comparison c;
      (* one reproducer per root-cause class *)
      List.iter
        (fun (s : Soft.Report.summary) ->
          let tc =
            Soft.Testcase.of_inconsistency spec ~agent_a:"reference" ~agent_b:"ovs"
              s.Soft.Report.s_example
          in
          Format.printf "reproducer for \"%s\":@.%a@."
            (Soft.Report.class_name s.s_class)
            Soft.Testcase.pp tc)
        (Soft.Pipeline.summaries c);
      Format.printf "@.")
    tests;
  Format.printf "== total inconsistencies across tests: %d ==@." !total
