(* Virtual time: the extension the paper leaves as future work ("we plan to
   extend our approach to deal with time, e.g., similarly to MODIST",
   §5.1.1).  The symbolic engine cannot trigger timers, which is exactly
   why the Modified Switch's M2 injection (rules expiring one second early)
   escapes the standard test suite.

   With the harness's [Advance_time] inputs, the agents' virtual clocks
   progress deterministically and flow expiry becomes part of the explored
   behaviour — and M2 becomes observable.

   Run with:  dune exec examples/time_travel.exe *)

let count_inconsistencies spec =
  let c =
    Soft.Pipeline.compare_agents ~max_paths:2000 Switches.Reference_switch.agent
      Switches.Modified_switch.agent spec
  in
  c

let () =
  Format.printf "virtual-time extension: reference vs modified (M2: early idle expiry)@.@.";

  (* the standard FlowMod-with-probe test cannot see M2 *)
  let standard = count_inconsistencies (Harness.Test_spec.cs_flow_mods ()) in
  Format.printf "standard CS FlowMods test:    %d inconsistencies "
    (Soft.Pipeline.inconsistency_count standard);
  Format.printf "(M6 only; expiry never fires without time)@.";

  (* a concrete rule with idle_timeout=10, clock advanced by 9 seconds *)
  let timed = count_inconsistencies (Harness.Test_spec.timed_flow_mod ()) in
  Format.printf "timed FlowMod test:           %d inconsistencies@."
    (Soft.Pipeline.inconsistency_count timed);
  List.iter
    (fun tc -> Format.printf "@.%a@." Soft.Testcase.pp tc)
    (Soft.Pipeline.test_cases timed);

  (* with a symbolic idle timeout, SOFT partitions the timeout space: the
     witness pins the timeout to exactly the off-by-one boundary *)
  let sym = count_inconsistencies (Harness.Test_spec.timed_flow_mod_symbolic ()) in
  Format.printf "timed FlowMod (symbolic timeout): %d inconsistencies@."
    (Soft.Pipeline.inconsistency_count sym);
  (match sym.Soft.Pipeline.c_outcome.Soft.Crosscheck.o_inconsistencies with
   | inc :: _ ->
     let timeout =
       Smt.Model.get inc.Soft.Crosscheck.i_witness (Smt.Expr.make_var "tfms.idle" 16)
     in
     Format.printf
       "witness idle_timeout = %Ld: with the clock at 9s, only the boundary value@." timeout;
     Format.printf
       "separates correct expiry from the injected early expiry (M2 pinpointed).@."
   | [] -> Format.printf "(no witness found at this budget)@.");

  Format.printf
    "@.=> with virtual time, SOFT's detection rises from 5/7 to 6/7 injected changes;@.";
  Format.printf
    "   M1 (hello negotiation) remains out of reach by design of the test driver.@."
