(* The decoupled vendor workflow of §2.4: each vendor runs symbolic
   execution on its own agent *privately* and ships only the intermediate
   results (path conditions + normalized output results); a third party —
   an interoperability event or the ONF — crosschecks the files without
   ever seeing agent code.

   Run with:  dune exec examples/vendor_workflow.exe *)

let () =
  let dir = Filename.temp_file "soft_workflow" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let spec = Harness.Test_spec.packet_out () in

  (* vendor A, in its own lab *)
  Format.printf "[vendor A] symbolic execution of the reference agent...@.";
  let run_a = Harness.Runner.execute ~max_paths:1500 Switches.Reference_switch.agent spec in
  let file_a = Filename.concat dir "vendorA.run" in
  Harness.Serialize.save file_a (Harness.Serialize.of_run run_a);
  Format.printf "[vendor A] shipped %s (%d paths; no source code inside)@.@." file_a
    (List.length run_a.Harness.Runner.run_paths);

  (* vendor B, in its own lab *)
  Format.printf "[vendor B] symbolic execution of the ovs agent...@.";
  let run_b = Harness.Runner.execute ~max_paths:1500 Switches.Open_vswitch.agent spec in
  let file_b = Filename.concat dir "vendorB.run" in
  Harness.Serialize.save file_b (Harness.Serialize.of_run run_b);
  Format.printf "[vendor B] shipped %s (%d paths)@.@." file_b
    (List.length run_b.Harness.Runner.run_paths);

  (* the interoperability event: only the two files are available *)
  Format.printf "[interop event] loading intermediate results...@.";
  let a = Soft.Grouping.of_saved (Harness.Serialize.load file_a) in
  let b = Soft.Grouping.of_saved (Harness.Serialize.load file_b) in
  Format.printf "[interop event] %s: %d result groups, %s: %d result groups@."
    a.Soft.Grouping.gr_agent
    (Soft.Grouping.distinct_results a)
    b.Soft.Grouping.gr_agent
    (Soft.Grouping.distinct_results b);
  let outcome = Soft.Crosscheck.check a b in
  Format.printf "[interop event] %d inconsistencies (%d solver queries, %.2fs)@."
    (Soft.Crosscheck.count outcome) outcome.Soft.Crosscheck.o_pairs_checked
    outcome.o_check_time;
  Format.printf "@.%a@." Soft.Report.pp_summary (Soft.Report.summarize outcome);

  (* each inconsistency comes with concrete witness inputs both vendors can
     replay *)
  (match outcome.o_inconsistencies with
   | inc :: _ ->
     Format.printf "first witness: %s@."
       (String.concat "; "
          (List.map
             (fun (v, value) -> Printf.sprintf "%s=0x%Lx" (Smt.Expr.var_name v) value)
             (Smt.Model.bindings inc.Soft.Crosscheck.i_witness)))
   | [] -> ());
  Format.printf "@.(intermediate files kept in %s)@." dir
