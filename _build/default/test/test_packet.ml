(* Dataplane packet tests: codec round trips, flow-key extraction, and the
   symbolic packet layer. *)

open Smt
module H = Packet.Headers
module SP = Packet.Sym_packet

let pkt = Alcotest.testable H.pp ( = )

let test_tcp_probe_shape () =
  let p = H.tcp_probe () in
  (match p.H.net with
   | H.Ipv4 ip -> (
     Alcotest.(check int) "proto is tcp" Packet.Constants_pkt.proto_tcp ip.H.ip_proto;
     match ip.H.ip_payload with
     | H.Tcp t -> Alcotest.(check int) "dport" 80 t.H.tcp_dst
     | _ -> Alcotest.fail "expected tcp")
   | _ -> Alcotest.fail "expected ip");
  Alcotest.(check int) "ethertype" Packet.Constants_pkt.eth_type_ip p.H.dl_type

let test_codec_fixed () =
  let p = H.tcp_probe () in
  let wire = H.to_bytes p in
  (* 14 eth + 20 ip + 20 tcp *)
  Alcotest.(check int) "frame size" 54 (String.length wire);
  Alcotest.check pkt "roundtrip" p (H.of_bytes wire)

let test_codec_vlan () =
  let p = H.tcp_probe ~vlan:(Some { H.vid = 42; pcp = 5 }) () in
  let wire = H.to_bytes p in
  Alcotest.(check int) "frame size with tag" 58 (String.length wire);
  (* TPID at offset 12 *)
  Alcotest.(check int) "tpid hi" 0x81 (Char.code wire.[12]);
  Alcotest.(check int) "tpid lo" 0x00 (Char.code wire.[13]);
  Alcotest.check pkt "roundtrip" p (H.of_bytes wire)

let test_codec_errors () =
  try
    ignore (H.of_bytes "too short");
    Alcotest.fail "expected parse error"
  with H.Parse_error _ -> ()

let prop_packet_roundtrip =
  QCheck2.Test.make ~name:"random packets roundtrip through bytes" ~count:300
    Gen.packet_gen
    (fun p ->
      (* payload-bearing opaque packets may be empty; codec requires some
         minimal length only for typed payloads *)
      H.of_bytes (H.to_bytes p) = p)

(* --- symbolic packets --------------------------------------------------- *)

let test_of_concrete_concretize () =
  let p = H.tcp_probe () in
  let sp = SP.of_concrete p in
  let back = SP.to_concrete (Model.empty ()) sp in
  Alcotest.check pkt "of_concrete then to_concrete" p back

let test_symbolic_concretize_uses_model () =
  let sp = SP.symbolic_tcp ~prefix:"tpk" () in
  let m =
    Model.of_bindings
      [
        (Expr.make_var "tpk.dl_src" 48, 0x0a0b0c0d0e0fL);
        (Expr.make_var "tpk.dl_type" 16, Int64.of_int Packet.Constants_pkt.eth_type_ip);
        (Expr.make_var "tpk.nw_proto" 8, 6L);
        (Expr.make_var "tpk.tp_dst" 16, 443L);
      ]
  in
  let p = SP.to_concrete m sp in
  Alcotest.(check int64) "dl_src" 0x0a0b0c0d0e0fL p.H.dl_src;
  match p.H.net with
  | H.Ipv4 { H.ip_payload = H.Tcp t; _ } -> Alcotest.(check int) "tp_dst" 443 t.H.tcp_dst
  | _ -> Alcotest.fail "expected tcp"

let test_digest_stability () =
  let a = SP.of_concrete (H.tcp_probe ()) in
  let b = SP.of_concrete (H.tcp_probe ()) in
  Alcotest.(check string) "same packet same digest" (SP.digest a) (SP.digest b);
  let c = SP.of_concrete (H.tcp_probe ~dport:81 ()) in
  Alcotest.(check bool) "different packet different digest" false (SP.digest a = SP.digest c)

let test_sym_equal () =
  let a = SP.of_concrete (H.tcp_probe ()) in
  let b = SP.of_concrete (H.tcp_probe ()) in
  Alcotest.(check bool) "structural equality" true (SP.equal a b)

(* --- flow key extraction ------------------------------------------------ *)

let extract_concrete p ~in_port =
  (* extraction on a fully concrete packet must not fork *)
  let result =
    Symexec.Engine.run ~max_paths:10 (fun env ->
        let key =
          Packet.Flow_key.extract env
            ~in_port:(Expr.const ~width:16 (Int64.of_int in_port))
            (SP.of_concrete p)
        in
        Symexec.Engine.emit env key)
  in
  match result.Symexec.Engine.results with
  | [ r ] -> (
    match r.Symexec.Engine.events with [ k ] -> k | _ -> Alcotest.fail "one key expected")
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 path, got %d" (List.length rs))

let cval e = Option.get (Expr.const_value e)

let test_flow_key_tcp () =
  let key = extract_concrete (H.tcp_probe ()) ~in_port:3 in
  Alcotest.(check int64) "in_port" 3L (cval key.Packet.Flow_key.fk_in_port);
  Alcotest.(check int64) "dl_type" 0x800L (cval key.fk_dl_type);
  Alcotest.(check int64) "vlan none" 0xffffL (cval key.fk_dl_vlan);
  Alcotest.(check int64) "proto" 6L (cval key.fk_nw_proto);
  Alcotest.(check int64) "tp_src" 1234L (cval key.fk_tp_src);
  Alcotest.(check int64) "tp_dst" 80L (cval key.fk_tp_dst)

let test_flow_key_vlan () =
  let key = extract_concrete (H.tcp_probe ~vlan:(Some { H.vid = 7; pcp = 2 }) ()) ~in_port:1 in
  Alcotest.(check int64) "vlan id" 7L (cval key.Packet.Flow_key.fk_dl_vlan);
  Alcotest.(check int64) "vlan pcp" 2L (cval key.fk_dl_vlan_pcp)

let test_flow_key_non_ip () =
  let key = extract_concrete (H.eth_probe ()) ~in_port:1 in
  Alcotest.(check int64) "nw_src zero" 0L (cval key.Packet.Flow_key.fk_nw_src);
  Alcotest.(check int64) "tp zero" 0L (cval key.fk_tp_src);
  Alcotest.(check int64) "dl_type kept" 0x88b5L (cval key.fk_dl_type)

let test_flow_key_symbolic_forks () =
  (* a symbolic ethertype must fork the parser: ip vs non-ip *)
  let sp = SP.symbolic_tcp ~prefix:"fkp" () in
  let result =
    Symexec.Engine.run ~max_paths:100 (fun env ->
        let key = Packet.Flow_key.extract env ~in_port:(Expr.const ~width:16 1L) sp in
        Symexec.Engine.emit env key)
  in
  (* ethertype != ip / ethertype = ip with proto != tcp / full tcp parse *)
  Alcotest.(check int) "three parser paths" 3 (List.length result.Symexec.Engine.results)

let suite =
  [
    Alcotest.test_case "tcp probe shape" `Quick test_tcp_probe_shape;
    Alcotest.test_case "codec fixed frame" `Quick test_codec_fixed;
    Alcotest.test_case "codec vlan tag" `Quick test_codec_vlan;
    Alcotest.test_case "codec errors" `Quick test_codec_errors;
    QCheck_alcotest.to_alcotest prop_packet_roundtrip;
    Alcotest.test_case "of_concrete/to_concrete" `Quick test_of_concrete_concretize;
    Alcotest.test_case "concretize with model" `Quick test_symbolic_concretize_uses_model;
    Alcotest.test_case "digest stability" `Quick test_digest_stability;
    Alcotest.test_case "structural equality" `Quick test_sym_equal;
    Alcotest.test_case "flow key: tcp" `Quick test_flow_key_tcp;
    Alcotest.test_case "flow key: vlan" `Quick test_flow_key_vlan;
    Alcotest.test_case "flow key: non-ip" `Quick test_flow_key_non_ip;
    Alcotest.test_case "flow key: symbolic forks" `Quick test_flow_key_symbolic_forks;
  ]
