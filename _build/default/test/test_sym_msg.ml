(* Symbolic message layer tests: builders respect the input-structuring
   rules, byte layout agrees with the concrete wire codec, and witness
   concretization produces parseable OpenFlow. *)

open Smt
module Sym_msg = Openflow.Sym_msg
module C = Openflow.Constants

let c16 v = Expr.const ~width:16 (Int64.of_int v)
let c32 v = Expr.const ~width:32 (Int64.of_int v)

let concretize m msg = Sym_msg.concretize_wire m msg

let sym_flow_mod_of (fm : Openflow.Types.flow_mod) =
  {
    Sym_msg.sfm_match = Sym_msg.of_match fm.Openflow.Types.fm_match;
    sfm_cookie = Expr.const ~width:64 fm.cookie;
    sfm_command = c16 fm.command;
    sfm_idle_timeout = c16 fm.idle_timeout;
    sfm_hard_timeout = c16 fm.hard_timeout;
    sfm_priority = c16 fm.priority;
    sfm_buffer_id = Expr.const ~width:32 (Int64.logand (Int64.of_int32 fm.fm_buffer_id) 0xffffffffL);
    sfm_out_port = c16 fm.out_port;
    sfm_flags = c16 fm.flags;
    sfm_actions = List.map Sym_msg.of_action fm.fm_actions;
  }

(* central agreement property: laying out a concrete flow mod through the
   symbolic byte assembler gives exactly the wire codec's bytes *)
let prop_flow_mod_layout_agrees =
  QCheck2.Test.make ~name:"symbolic byte layout = wire codec (flow mod)" ~count:300
    Gen.flow_mod_gen
    (fun fm ->
      (* vendor/unknown actions have free-form bodies; the generator avoids
         them, and enqueue/dl actions exercise the 16-byte layout *)
      let via_wire =
        Openflow.Wire.serialize { Openflow.Types.xid = 0x5057l; payload = Openflow.Types.Flow_mod fm }
      in
      let sym = Sym_msg.flow_mod ~xid:(c32 0x5057) (sym_flow_mod_of fm) in
      let via_sym = concretize (Model.empty ()) sym in
      via_sym = via_wire)

let test_packet_out_layout () =
  let po =
    {
      Sym_msg.spo_buffer_id = c32 0xffffffff;
      spo_in_port = c16 C.Port.none;
      spo_actions = [ Sym_msg.of_action (Openflow.Types.Output { port = 2; max_len = 64 }) ];
      spo_data = None;
    }
  in
  let wire = concretize (Model.empty ()) (Sym_msg.packet_out po) in
  let parsed = Openflow.Wire.parse wire in
  match parsed.Openflow.Types.payload with
  | Openflow.Types.Packet_out p ->
    Alcotest.(check int) "in_port" C.Port.none p.Openflow.Types.po_in_port;
    Alcotest.(check int) "one action" 1 (List.length p.po_actions)
  | _ -> Alcotest.fail "expected packet out"

let test_symbolic_action_is_structured () =
  let a = Sym_msg.sym_action ~prefix:"tsm.a" () in
  (* length concrete (structuring rule), type symbolic *)
  Alcotest.(check bool) "length is concrete" true (Expr.is_const a.Sym_msg.a_len);
  Alcotest.(check bool) "type is symbolic" false (Expr.is_const a.Sym_msg.a_type);
  Alcotest.(check int) "8-byte action carries 4 body bytes" 4 (Array.length a.Sym_msg.a_body)

let test_body_views_are_big_endian () =
  let a = Sym_msg.sym_action ~prefix:"tsm.b" () in
  let m =
    Model.of_bindings
      [
        (Expr.make_var "tsm.b.b0" 8, 0xabL);
        (Expr.make_var "tsm.b.b1" 8, 0xcdL);
        (Expr.make_var "tsm.b.b2" 8, 0x01L);
        (Expr.make_var "tsm.b.b3" 8, 0x02L);
      ]
  in
  Alcotest.(check int64) "u16 view" 0xabcdL (Model.eval_bv m (Sym_msg.body_u16 a 0));
  Alcotest.(check int64) "u32 view" 0xabcd0102L (Model.eval_bv m (Sym_msg.body_u32 a 0))

let test_sym_output_action_aliases_port () =
  let a = Sym_msg.sym_output_action ~prefix:"tsm.o" () in
  let m = Model.of_bindings [ (Expr.make_var "tsm.o.port" 16, 0xfffdL) ] in
  Alcotest.(check int64) "port field recovered from body bytes" 0xfffdL
    (Model.eval_bv m (Sym_msg.body_u16 a 0))

let test_message_phys_lengths () =
  Alcotest.(check int) "hello" 8 (Sym_msg.hello ()).Sym_msg.sm_phys_len;
  Alcotest.(check int) "barrier" 8 (Sym_msg.barrier_request ()).Sym_msg.sm_phys_len;
  Alcotest.(check int) "set_config" 12
    (Sym_msg.set_config
       { Sym_msg.scfg_flags = c16 0; smiss_send_len = c16 0 })
      .Sym_msg.sm_phys_len;
  Alcotest.(check int) "queue_get_config" 12
    (Sym_msg.queue_get_config_request (c16 1)).Sym_msg.sm_phys_len;
  let fm =
    Sym_msg.flow_mod (sym_flow_mod_of
      { Openflow.Types.fm_match = Openflow.Types.match_all; cookie = 0L;
        command = 0; idle_timeout = 0; hard_timeout = 0; priority = 0;
        fm_buffer_id = 0xffffffffl; out_port = 0; flags = 0;
        fm_actions = [ Openflow.Types.Output { port = 1; max_len = 0 } ] })
  in
  Alcotest.(check int) "flow mod with one action" 80 fm.Sym_msg.sm_phys_len

let test_short_symbolic_shape () =
  let m = Sym_msg.short_symbolic ~prefix:"tss" () in
  Alcotest.(check int) "10 bytes" 10 m.Sym_msg.sm_phys_len;
  Alcotest.(check bool) "type symbolic" false (Expr.is_const m.Sym_msg.sm_type);
  Alcotest.(check bool) "length symbolic" false (Expr.is_const m.Sym_msg.sm_length);
  match m.Sym_msg.sm_body with
  | Sym_msg.SRaw bytes -> Alcotest.(check int) "2 raw body bytes" 2 (Array.length bytes)
  | _ -> Alcotest.fail "expected raw body"

let test_stats_request_builder () =
  let m = Sym_msg.sym_stats_request ~prefix:"tsr" () in
  Alcotest.(check int) "physical size" (8 + 4 + 44) m.Sym_msg.sm_phys_len;
  Alcotest.(check bool) "claimed length symbolic" false (Expr.is_const m.Sym_msg.sm_length);
  match m.Sym_msg.sm_body with
  | Sym_msg.SStats_request s ->
    Alcotest.(check bool) "stats type symbolic" false (Expr.is_const s.Sym_msg.ssr_type)
  | _ -> Alcotest.fail "expected stats request"

let test_concretized_message_parses () =
  (* pin the short symbolic message to an echo request through a model and
     check that the resulting bytes are valid OpenFlow *)
  let msg = Sym_msg.short_symbolic ~prefix:"tcw" () in
  let m =
    Model.of_bindings
      [
        (Expr.make_var "tcw.type" 8, Int64.of_int C.Msg_type.echo_request);
        (Expr.make_var "tcw.length" 16, 10L);
        (Expr.make_var "tcw.xid" 32, 7L);
        (Expr.make_var "tcw.b0" 8, 0x68L);
        (Expr.make_var "tcw.b1" 8, 0x69L);
      ]
  in
  let wire = concretize m msg in
  Alcotest.(check int) "10 bytes" 10 (String.length wire);
  match (Openflow.Wire.parse wire).Openflow.Types.payload with
  | Openflow.Types.Echo_request "hi" -> ()
  | _ -> Alcotest.fail "expected echo request with payload \"hi\""

let test_eth_match_forces_non_eth_wildcards () =
  let m = Sym_msg.sym_match_eth ~prefix:"tem" () in
  (* whatever the symbolic wildcard variable is, non-Ethernet fields are
     forced to fully wildcarded: check under two different assignments *)
  List.iter
    (fun v ->
      let model = Model.of_bindings [ (Expr.make_var "tem.wildcards" 32, v) ] in
      let wc = Model.eval_bv model m.Sym_msg.s_wildcards in
      let i = Int64.to_int wc in
      Alcotest.(check bool) "nw_src fully wildcarded" true
        (i land C.Wildcards.nw_src_mask = C.Wildcards.nw_src_all);
      Alcotest.(check bool) "tp wildcarded" true
        (i land C.Wildcards.tp_src <> 0 && i land C.Wildcards.tp_dst <> 0))
    [ 0L; 0x3fffffL ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_flow_mod_layout_agrees;
    Alcotest.test_case "packet out layout" `Quick test_packet_out_layout;
    Alcotest.test_case "symbolic action structure" `Quick test_symbolic_action_is_structured;
    Alcotest.test_case "body views big-endian" `Quick test_body_views_are_big_endian;
    Alcotest.test_case "output action port alias" `Quick test_sym_output_action_aliases_port;
    Alcotest.test_case "physical lengths" `Quick test_message_phys_lengths;
    Alcotest.test_case "short symbolic shape" `Quick test_short_symbolic_shape;
    Alcotest.test_case "stats request builder" `Quick test_stats_request_builder;
    Alcotest.test_case "concretized message parses" `Quick test_concretized_message_parses;
    Alcotest.test_case "eth match wildcards" `Quick test_eth_match_forces_non_eth_wildcards;
  ]
