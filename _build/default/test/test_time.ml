(* Virtual-time extension tests: flow expiry semantics per agent, the M2
   off-by-one detection, and the flow-removed notification. *)

open Smt
module Engine = Symexec.Engine
module Sym_msg = Openflow.Sym_msg
module Trace = Openflow.Trace
module C = Openflow.Constants
module Spec = Harness.Test_spec

let c16 v = Expr.const ~width:16 (Int64.of_int v)
let c32 v = Expr.const ~width:32 (Int64.of_int v)

let flow_mod ?(idle = 0) ?(hard = 0) ?(flags = 0) () =
  Spec.Msg
    (Sym_msg.flow_mod
       {
         Sym_msg.sfm_match = Sym_msg.wildcard_match ();
         sfm_cookie = Expr.const ~width:64 0L;
         sfm_command = c16 C.Flow_mod_command.add;
         sfm_idle_timeout = c16 idle;
         sfm_hard_timeout = c16 hard;
         sfm_priority = c16 100;
         sfm_buffer_id = c32 0xffffffff;
         sfm_out_port = c16 C.Port.none;
         sfm_flags = c16 flags;
         sfm_actions = [ Sym_msg.of_action (Openflow.Types.Output { port = 2; max_len = 0 }) ];
       })

let probe =
  Spec.Probe
    {
      pr_id = 1;
      pr_in_port = 1;
      pr_packet = Packet.Sym_packet.of_concrete (Packet.Headers.tcp_probe ());
    }

let run_concrete (module A : Switches.Agent_intf.S) inputs =
  let r =
    Engine.run ~max_paths:8 (fun env ->
        let st = A.init () in
        let st = A.connection_setup env st in
        ignore
          (List.fold_left
             (fun st input ->
               match input with
               | Spec.Msg m -> A.handle_message env st m
               | Spec.Probe { pr_id; pr_in_port; pr_packet } ->
                 A.handle_packet env st ~probe_id:pr_id ~in_port:(c16 pr_in_port) pr_packet
               | Spec.Advance_time seconds -> A.advance_time env st ~seconds)
             st inputs))
  in
  match r.Engine.results with
  | [ p ] -> Harness.Normalize.result ?crash:p.Engine.crashed p.Engine.events
  | l -> Alcotest.fail (Printf.sprintf "expected one path, got %d" (List.length l))

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p
let has (r : Trace.result) p = List.exists (has_prefix p) r.Trace.trace

let agents_under_test =
  [ ("reference", Switches.Reference_switch.agent); ("ovs", Switches.Open_vswitch.agent) ]

let test_rule_survives_before_timeout () =
  List.iter
    (fun (name, agent) ->
      let r = run_concrete agent [ flow_mod ~idle:10 (); Spec.Advance_time 5; probe ] in
      Alcotest.(check bool) (name ^ " still forwards at t=5") true (has r "probe1:fwd"))
    agents_under_test

let test_rule_expires_after_timeout () =
  List.iter
    (fun (name, agent) ->
      let r = run_concrete agent [ flow_mod ~idle:10 (); Spec.Advance_time 10; probe ] in
      Alcotest.(check bool) (name ^ " misses at t=10") true (has r "of:packet_in"))
    agents_under_test

let test_hard_timeout_expires () =
  List.iter
    (fun (name, agent) ->
      let r = run_concrete agent [ flow_mod ~hard:3 (); Spec.Advance_time 4; probe ] in
      Alcotest.(check bool) (name ^ " hard timeout fires") true (has r "of:packet_in"))
    agents_under_test

let test_zero_timeouts_are_permanent () =
  List.iter
    (fun (name, agent) ->
      let r = run_concrete agent [ flow_mod (); Spec.Advance_time 10000; probe ] in
      Alcotest.(check bool) (name ^ " permanent rule survives") true (has r "probe1:fwd"))
    agents_under_test

let test_flow_removed_notification () =
  let inputs =
    [ flow_mod ~idle:2 ~flags:C.Flow_mod_flags.send_flow_rem (); Spec.Advance_time 5 ]
  in
  List.iter
    (fun (name, agent) ->
      let r = run_concrete agent inputs in
      Alcotest.(check bool) (name ^ " notifies on expiry") true (has r "of:flow_removed"))
    agents_under_test;
  (* without the flag: silence *)
  let quiet = run_concrete Switches.Reference_switch.agent
      [ flow_mod ~idle:2 (); Spec.Advance_time 5 ] in
  Alcotest.(check (list string)) "no notification without the flag" [] quiet.Trace.trace

let test_m2_boundary () =
  (* idle=10, advance 9: reference keeps the rule, modified (early expiry)
     already dropped it *)
  let inputs = [ flow_mod ~idle:10 (); Spec.Advance_time 9; probe ] in
  let r_ref = run_concrete Switches.Reference_switch.agent inputs in
  let r_mod = run_concrete Switches.Modified_switch.agent inputs in
  Alcotest.(check bool) "reference forwards" true (has r_ref "probe1:fwd");
  Alcotest.(check bool) "modified already expired" true (has r_mod "of:packet_in");
  (* one second earlier both agree *)
  let inputs8 = [ flow_mod ~idle:10 (); Spec.Advance_time 8; probe ] in
  let r_ref8 = run_concrete Switches.Reference_switch.agent inputs8 in
  let r_mod8 = run_concrete Switches.Modified_switch.agent inputs8 in
  Alcotest.(check string) "agree at t=8" (Trace.result_key r_ref8) (Trace.result_key r_mod8)

let test_m2_detected_by_pipeline () =
  let c =
    Soft.Pipeline.compare_agents ~max_paths:500 Switches.Reference_switch.agent
      Switches.Modified_switch.agent
      (Spec.timed_flow_mod ())
  in
  Alcotest.(check bool) "timed test reveals M2" true
    (Soft.Pipeline.inconsistency_count c > 0)

let test_symbolic_timeout_partitions () =
  (* with a symbolic idle timeout and the clock at 9, the expiry condition
     splits the timeout space: expired (1..9) vs alive (0 or >= 10) *)
  let run =
    Harness.Runner.execute ~max_paths:100 Switches.Reference_switch.agent
      (Spec.timed_flow_mod_symbolic ())
  in
  Alcotest.(check int) "two partitions" 2 (List.length run.Harness.Runner.run_paths);
  (* the two partitions produce different probe responses *)
  let keys =
    List.sort_uniq compare
      (List.map
         (fun (p : Harness.Runner.path_record) -> Trace.result_key p.Harness.Runner.pr_result)
         run.run_paths)
  in
  Alcotest.(check int) "distinct observable outcomes" 2 (List.length keys)

let test_clock_accumulates () =
  (* two advances of 5 behave like one of 10 *)
  let split =
    run_concrete Switches.Reference_switch.agent
      [ flow_mod ~idle:10 (); Spec.Advance_time 5; Spec.Advance_time 5; probe ]
  in
  let whole =
    run_concrete Switches.Reference_switch.agent
      [ flow_mod ~idle:10 (); Spec.Advance_time 10; probe ]
  in
  Alcotest.(check string) "clock accumulates" (Trace.result_key whole) (Trace.result_key split)

let suite =
  [
    Alcotest.test_case "rule survives before timeout" `Quick test_rule_survives_before_timeout;
    Alcotest.test_case "rule expires after timeout" `Quick test_rule_expires_after_timeout;
    Alcotest.test_case "hard timeout" `Quick test_hard_timeout_expires;
    Alcotest.test_case "zero timeouts permanent" `Quick test_zero_timeouts_are_permanent;
    Alcotest.test_case "flow_removed notification" `Quick test_flow_removed_notification;
    Alcotest.test_case "M2 off-by-one boundary" `Quick test_m2_boundary;
    Alcotest.test_case "M2 detected by pipeline" `Quick test_m2_detected_by_pipeline;
    Alcotest.test_case "symbolic timeout partitions" `Quick test_symbolic_timeout_partitions;
    Alcotest.test_case "clock accumulates" `Quick test_clock_accumulates;
  ]
