(* Unit and property tests for the expression layer: hash-consing,
   constant folding, algebraic simplification, evaluation, traversal. *)

open Smt

let c w v = Expr.const ~width:w v
let x16 = Expr.var ~width:16 "tx16"
let y16 = Expr.var ~width:16 "ty16"

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let test_hash_consing () =
  check_bool "same const shares id" true (c 16 5L == c 16 5L);
  check_bool "different widths differ" true (c 16 5L != c 8 5L);
  check_bool "same var shares id" true (Expr.var ~width:16 "tx16" == x16);
  check_bool "add is interned" true (Expr.add x16 y16 == Expr.add x16 y16);
  check_bool "eq canonical order" true (Expr.eq x16 y16 == Expr.eq y16 x16)

let test_var_width_conflict () =
  Alcotest.check_raises "width conflict" (Expr.Width_mismatch "var tx16: 16 vs 8")
    (fun () -> ignore (Expr.var ~width:8 "tx16"))

let test_constant_folding () =
  check_i64 "add folds" 7L
    (Option.get (Expr.const_value (Expr.add (c 16 3L) (c 16 4L))));
  check_i64 "add wraps to width" 0L
    (Option.get (Expr.const_value (Expr.add (c 8 255L) (c 8 1L))));
  check_i64 "mul wraps" 0x56L
    (Option.get (Expr.const_value (Expr.mul (c 8 0xabL) (c 8 2L))));
  check_i64 "bnot folds" 0xfffaL
    (Option.get (Expr.const_value (Expr.bnot (c 16 5L))));
  check_i64 "neg folds" 0xfffbL (Option.get (Expr.const_value (Expr.neg (c 16 5L))));
  check_i64 "shl folds" 40L
    (Option.get (Expr.const_value (Expr.shl (c 16 5L) (c 16 3L))));
  check_i64 "shl overshift is zero" 0L
    (Option.get (Expr.const_value (Expr.shl (c 16 5L) (c 16 16L))));
  check_i64 "lshr folds" 2L
    (Option.get (Expr.const_value (Expr.lshr (c 16 5L) (c 16 1L))))

let test_identities () =
  check_bool "x + 0 = x" true (Expr.add x16 (c 16 0L) == x16);
  check_bool "x & 0 = 0" true (Expr.logand x16 (c 16 0L) == c 16 0L);
  check_bool "x & full = x" true (Expr.logand x16 (c 16 0xffffL) == x16);
  check_bool "x | 0 = x" true (Expr.logor x16 (c 16 0L) == x16);
  check_bool "x ^ x = 0" true (Expr.logxor x16 x16 == c 16 0L);
  check_bool "x - x = 0" true (Expr.sub x16 x16 == c 16 0L);
  check_bool "x * 1 = x" true (Expr.mul x16 (c 16 1L) == x16);
  check_bool "x = x folds true" true (Expr.is_true (Expr.eq x16 x16));
  check_bool "x < x folds false" true (Expr.is_false (Expr.ult x16 x16));
  check_bool "x <= x folds true" true (Expr.is_true (Expr.ule x16 x16))

let test_boolean_simplification () =
  let p = Expr.ult x16 (c 16 10L) in
  check_bool "not not p = p" true (Expr.not_ (Expr.not_ p) == p);
  check_bool "p and true = p" true (Expr.and_ p Expr.tru == p);
  check_bool "p and false = false" true (Expr.is_false (Expr.and_ p Expr.fls));
  check_bool "p or true = true" true (Expr.is_true (Expr.or_ p Expr.tru));
  check_bool "p or false = p" true (Expr.or_ p Expr.fls == p);
  check_bool "p and p = p" true (Expr.and_ p p == p);
  check_bool "p and not p = false" true (Expr.is_false (Expr.and_ p (Expr.not_ p)));
  check_bool "p or not p = true" true (Expr.is_true (Expr.or_ p (Expr.not_ p)));
  (* ¬(a < b) rewrites to b <= a *)
  check_bool "not ult is ule" true (Expr.not_ (Expr.ult x16 y16) == Expr.ule y16 x16)

let test_extract_concat () =
  let v = c 16 0xabcdL in
  check_i64 "extract low byte" 0xcdL
    (Option.get (Expr.const_value (Expr.extract ~hi:7 ~lo:0 v)));
  check_i64 "extract high byte" 0xabL
    (Option.get (Expr.const_value (Expr.extract ~hi:15 ~lo:8 v)));
  check_bool "full extract is identity" true (Expr.extract ~hi:15 ~lo:0 x16 == x16);
  check_i64 "concat" 0xabcdL
    (Option.get (Expr.const_value (Expr.concat (c 8 0xabL) (c 8 0xcdL))));
  check_int "concat width" 24 (Expr.width (Expr.concat (c 8 1L) x16));
  (* nested extract collapses *)
  let inner = Expr.extract ~hi:11 ~lo:4 x16 in
  let outer = Expr.extract ~hi:3 ~lo:0 inner in
  check_bool "extract of extract" true (outer == Expr.extract ~hi:7 ~lo:4 x16)

let test_extensions () =
  check_i64 "zext keeps value" 0xffL
    (Option.get (Expr.const_value (Expr.zext ~width:16 (c 8 0xffL))));
  check_i64 "sext extends sign" 0xffffL
    (Option.get (Expr.const_value (Expr.sext ~width:16 (c 8 0xffL))));
  check_i64 "sext positive" 0x7fL
    (Option.get (Expr.const_value (Expr.sext ~width:16 (c 8 0x7fL))));
  check_bool "zext same width is id" true (Expr.zext ~width:16 x16 == x16)

let test_signed_compare () =
  (* -1 <s 0 at width 8 *)
  check_bool "slt signed" true (Expr.is_true (Expr.slt (c 8 0xffL) (c 8 0L)));
  check_bool "ult unsigned opposite" true (Expr.is_false (Expr.ult (c 8 0xffL) (c 8 0L)));
  check_bool "sle" true (Expr.is_true (Expr.sle (c 8 0x80L) (c 8 0x7fL)))

let test_ite () =
  let p = Expr.ult x16 (c 16 10L) in
  check_bool "ite true" true (Expr.ite Expr.tru x16 y16 == x16);
  check_bool "ite false" true (Expr.ite Expr.fls x16 y16 == y16);
  check_bool "ite same arms" true (Expr.ite p x16 x16 == x16)

let test_bool_size () =
  let p = Expr.ult x16 (c 16 10L) in
  check_int "single cmp" 1 (Expr.bool_size p);
  let q = Expr.eq y16 (c 16 3L) in
  check_int "and of two" 3 (Expr.bool_size (Expr.and_ p q));
  (* shared subterms counted once *)
  check_int "shared subterm" 3 (Expr.bool_size (Expr.or_ (Expr.and_ p q) Expr.fls |> fun e -> Expr.and_ e (Expr.and_ p q)))

let test_vars_of () =
  let p = Expr.and_ (Expr.ult x16 y16) (Expr.eq x16 (c 16 1L)) in
  let names = List.map Expr.var_name (Expr.vars_of_bool p) in
  check_bool "x present" true (List.mem "tx16" names);
  check_bool "y present" true (List.mem "ty16" names);
  check_int "no duplicates" 2 (List.length names)

let test_balanced_trees () =
  let conds = List.init 9 (fun i -> Expr.eq x16 (c 16 (Int64.of_int i))) in
  let d = Expr.balanced_disj conds in
  let cj = Expr.balanced_conj conds in
  (* semantics: disjunction true iff one disjunct; conj needs all *)
  let under v b = Expr.eval_bool (fun _ -> v) b in
  check_bool "disj true at member" true (under 4L d);
  check_bool "disj false outside" false (under 100L d);
  check_bool "conj of incompatible eqs is never true" false (under 4L cj);
  check_bool "empty disj is false" true (Expr.is_false (Expr.balanced_disj []));
  check_bool "empty conj is true" true (Expr.is_true (Expr.balanced_conj []))

let test_eval () =
  let lookup v = if Expr.var_name v = "tx16" then 7L else 100L in
  let e = Expr.add (Expr.mul x16 (c 16 3L)) y16 in
  check_i64 "eval" 121L (Expr.eval_bv lookup e);
  check_i64 "memo eval agrees" 121L (Expr.eval_bv_memo lookup e);
  check_bool "bool eval" true (Expr.eval_bool lookup (Expr.ult x16 y16))

(* property: every simplification preserves semantics — compare the smart
   constructor result against direct semantic evaluation *)
let prop_binop_semantics =
  QCheck2.Test.make ~name:"binop smart constructors preserve semantics" ~count:500
    QCheck2.Gen.(
      let* w = Gen.width_gen in
      let* e = Gen.bv_gen w in
      let+ assignment = Gen.assignment_gen w in
      (w, e, assignment))
    (fun (_w, e, assignment) ->
      let lookup v =
        match
          List.find_opt (fun (ev, _) -> Expr.vars_of_bv ev = [ v ]) assignment
        with
        | Some (_, value) -> value
        | None -> 0L
      in
      Expr.eval_bv lookup e = Expr.eval_bv_memo lookup e)

let prop_mask_norm =
  QCheck2.Test.make ~name:"constants are normalized to width" ~count:500
    QCheck2.Gen.(
      let* w = Gen.width_gen in
      let+ v = map Int64.of_int (int_range 0 max_int) in
      (w, v))
    (fun (w, v) ->
      match Expr.const_value (Expr.const ~width:w v) with
      | Some stored -> Int64.unsigned_compare stored (Expr.mask w) <= 0
      | None -> false)

let prop_not_involutive =
  QCheck2.Test.make ~name:"not is involutive semantically" ~count:300
    QCheck2.Gen.(
      let* w = Gen.width_gen in
      let* b = Gen.bool_gen w in
      let+ assignment = Gen.assignment_gen w in
      (b, assignment))
    (fun (b, assignment) ->
      let m = Gen.model_of_assignment assignment in
      Model.eval_bool m (Expr.not_ (Expr.not_ b)) = Model.eval_bool m b)

let prop_demorgan =
  QCheck2.Test.make ~name:"De Morgan holds semantically" ~count:300
    QCheck2.Gen.(
      let* w = Gen.width_gen in
      let* a = Gen.bool_gen w in
      let* b = Gen.bool_gen w in
      let+ assignment = Gen.assignment_gen w in
      (a, b, assignment))
    (fun (a, b, assignment) ->
      let m = Gen.model_of_assignment assignment in
      Model.eval_bool m (Expr.not_ (Expr.and_ a b))
      = Model.eval_bool m (Expr.or_ (Expr.not_ a) (Expr.not_ b)))

let suite =
  [
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "var width conflict" `Quick test_var_width_conflict;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "algebraic identities" `Quick test_identities;
    Alcotest.test_case "boolean simplification" `Quick test_boolean_simplification;
    Alcotest.test_case "extract and concat" `Quick test_extract_concat;
    Alcotest.test_case "zext and sext" `Quick test_extensions;
    Alcotest.test_case "signed comparisons" `Quick test_signed_compare;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "bool_size metric" `Quick test_bool_size;
    Alcotest.test_case "vars_of_bool" `Quick test_vars_of;
    Alcotest.test_case "balanced or/and trees" `Quick test_balanced_trees;
    Alcotest.test_case "evaluation" `Quick test_eval;
    QCheck_alcotest.to_alcotest prop_binop_semantics;
    QCheck_alcotest.to_alcotest prop_mask_norm;
    QCheck_alcotest.to_alcotest prop_not_involutive;
    QCheck_alcotest.to_alcotest prop_demorgan;
  ]
