(* Normalization tests (paper §3.3): spurious differences — buffer ids,
   vendor description text — must not survive into compared results. *)

open Smt
module Trace = Openflow.Trace
module N = Harness.Normalize

let c16 v = Expr.const ~width:16 (Int64.of_int v)
let c32 v = Expr.const ~width:32 (Int64.of_int v)

let pkt = Packet.Sym_packet.of_concrete (Packet.Headers.tcp_probe ())

let packet_in buffer =
  Trace.Msg_out
    (Trace.O_packet_in
       {
         o_pi_in_port = c16 1;
         o_pi_reason = 0;
         o_pi_buffer = buffer;
         o_pi_pkt = Some pkt;
         o_pi_data_len = c16 64;
       })

let test_buffer_ids_scrubbed () =
  (* two agents using different buffer id values normalize identically *)
  let a = N.result [ packet_in (Trace.Buffer_id { braw = c32 0x100 }) ] in
  let b = N.result [ packet_in (Trace.Buffer_id { braw = c32 0x7fff }) ] in
  Alcotest.(check string) "same key" (Trace.result_key a) (Trace.result_key b)

let test_no_buffer_stays_distinct () =
  (* buffered vs unbuffered IS an observable difference *)
  let a = N.result [ packet_in (Trace.Buffer_id { braw = c32 0x100 }) ] in
  let b = N.result [ packet_in Trace.No_buffer ] in
  Alcotest.(check bool) "different keys" false
    (Trace.result_key a = Trace.result_key b)

let test_desc_body_scrubbed () =
  let desc body =
    Trace.Msg_out (Trace.O_stats_reply { o_stats_type = Openflow.Constants.Stats_type.desc; o_stats_body = body })
  in
  let a = N.result [ desc "mfr=Stanford" ] in
  let b = N.result [ desc "mfr=Nicira" ] in
  Alcotest.(check string) "desc bodies normalize away" (Trace.result_key a)
    (Trace.result_key b)

let test_other_stats_bodies_kept () =
  let flow body =
    Trace.Msg_out (Trace.O_stats_reply { o_stats_type = Openflow.Constants.Stats_type.flow; o_stats_body = body })
  in
  let a = N.result [ flow "flows=0" ] in
  let b = N.result [ flow "flows=1" ] in
  Alcotest.(check bool) "flow stats content matters" false
    (Trace.result_key a = Trace.result_key b)

let test_crash_normalized () =
  let a = N.result ~crash:"segfault: packet-out to OFPP_CONTROLLER" [] in
  let b = N.result ~crash:"memory error: queue config for port 0" [] in
  (* the crash *fact* is observable, its internal message is not *)
  Alcotest.(check string) "crash reasons normalize" (Trace.result_key a)
    (Trace.result_key b);
  let ok = N.result [] in
  Alcotest.(check bool) "crash vs no crash differ" false
    (Trace.result_key a = Trace.result_key ok)

let test_event_order_matters () =
  let e1 = Trace.Msg_out Trace.O_barrier_reply in
  let e2 = Trace.Msg_out (Trace.O_error { o_err_type = 1; o_err_code = 6 }) in
  Alcotest.(check bool) "order is part of the result" false
    (Trace.result_key (N.result [ e1; e2 ]) = Trace.result_key (N.result [ e2; e1 ]))

let suite =
  [
    Alcotest.test_case "buffer ids scrubbed" `Quick test_buffer_ids_scrubbed;
    Alcotest.test_case "buffered vs unbuffered distinct" `Quick test_no_buffer_stays_distinct;
    Alcotest.test_case "desc body scrubbed" `Quick test_desc_body_scrubbed;
    Alcotest.test_case "other stats bodies kept" `Quick test_other_stats_bodies_kept;
    Alcotest.test_case "crash messages normalized" `Quick test_crash_normalized;
    Alcotest.test_case "event order matters" `Quick test_event_order_matters;
  ]
