(* Flow table substrate tests: insertion/replacement, priority lookup,
   exact-match precedence, modify/delete semantics, the out_port filter and
   overlap detection — driven under the engine since table operations
   branch on (possibly symbolic) conditions. *)

open Smt
module FT = Switches.Flow_table
module Sym_msg = Openflow.Sym_msg
module C = Openflow.Constants
module Engine = Symexec.Engine

let c w v = Expr.const ~width:w (Int64.of_int v)

let fm ?(wildcards = C.Wildcards.all) ?(in_port = 0) ?(priority = 100) ?(flags = 0)
    ?(out_port = C.Port.none) ?(actions = []) () =
  {
    Sym_msg.sfm_match =
      Sym_msg.of_match
        {
          Openflow.Types.match_all with
          Openflow.Types.wildcards = Int32.of_int wildcards;
          in_port;
        };
    sfm_cookie = Expr.const ~width:64 0L;
    sfm_command = c 16 C.Flow_mod_command.add;
    sfm_idle_timeout = c 16 0;
    sfm_hard_timeout = c 16 0;
    sfm_priority = c 16 priority;
    sfm_buffer_id = Expr.const ~width:32 0xffffffffL;
    sfm_out_port = c 16 out_port;
    sfm_flags = c 16 flags;
    sfm_actions = List.map Sym_msg.of_action actions;
  }

let output_to port = Openflow.Types.Output { port; max_len = 0 }

(* run a table scenario under the engine on a concrete (single) path *)
let run1 f =
  let r = Engine.run ~max_paths:4 (fun env -> Engine.emit env (f env)) in
  match r.Engine.results with
  | [ { Engine.events = [ v ]; _ } ] -> v
  | l -> Alcotest.fail (Printf.sprintf "expected a single path, got %d" (List.length l))

let concrete_key ~in_port =
  let p = Packet.Sym_packet.of_concrete (Packet.Headers.tcp_probe ()) in
  fun env -> Packet.Flow_key.extract env ~in_port:(c 16 in_port) p

let test_add_and_lookup () =
  let n =
    run1 (fun env ->
        let t = FT.add env FT.empty (FT.entry_of_flow_mod (fm ()) 0) in
        let key = concrete_key ~in_port:1 env in
        match FT.lookup env t key with Some _ -> FT.size t | None -> -1)
  in
  Alcotest.(check int) "installed and matched" 1 n

let test_add_replaces_same_match_priority () =
  let n =
    run1 (fun env ->
        let t = FT.add env FT.empty (FT.entry_of_flow_mod (fm ~priority:5 ()) 0) in
        let t = FT.add env t (FT.entry_of_flow_mod (fm ~priority:5 ()) 0) in
        FT.size t)
  in
  Alcotest.(check int) "replaced, not duplicated" 1 n

let test_add_different_priority_coexists () =
  let n =
    run1 (fun env ->
        let t = FT.add env FT.empty (FT.entry_of_flow_mod (fm ~priority:5 ()) 0) in
        let t = FT.add env t (FT.entry_of_flow_mod (fm ~priority:6 ()) 0) in
        FT.size t)
  in
  Alcotest.(check int) "two entries" 2 n

let test_priority_lookup () =
  let winner =
    run1 (fun env ->
        let low = fm ~priority:10 ~actions:[ output_to 1 ] () in
        let high = fm ~priority:200 ~actions:[ output_to 2 ] () in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod low 0) in
        let t = FT.add env t (FT.entry_of_flow_mod high 0) in
        let key = concrete_key ~in_port:1 env in
        match FT.lookup env t key with
        | Some e -> Option.get (Expr.const_value (List.hd e.FT.e_actions).Sym_msg.a_len)
        | None -> -1L)
  in
  (* both actions have len 8; check instead via priority: re-run returning prio *)
  ignore winner;
  let prio =
    run1 (fun env ->
        let low = fm ~priority:10 () in
        let high = fm ~priority:200 () in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod low 0) in
        let t = FT.add env t (FT.entry_of_flow_mod high 0) in
        let key = concrete_key ~in_port:1 env in
        match FT.lookup env t key with
        | Some e -> Option.get (Expr.const_value e.FT.e_priority)
        | None -> -1L)
  in
  Alcotest.(check int64) "high priority wins" 200L prio

let test_exact_match_beats_priority () =
  let prio =
    run1 (fun env ->
        let wild = fm ~priority:0xffff () in
        (* an exact match on everything the tcp probe carries *)
        let exact_match =
          let p = Packet.Headers.tcp_probe () in
          {
            Openflow.Types.wildcards = 0l;
            in_port = 1;
            dl_src = p.Packet.Headers.dl_src;
            dl_dst = p.Packet.Headers.dl_dst;
            dl_vlan = 0xffff;
            dl_vlan_pcp = 0;
            dl_type = 0x800;
            nw_tos = 0;
            nw_proto = 6;
            nw_src = 0x0a000001l;
            nw_dst = 0x0a000002l;
            tp_src = 1234;
            tp_dst = 80;
          }
        in
        let exact = { (fm ~priority:1 ()) with Sym_msg.sfm_match = Sym_msg.of_match exact_match } in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod wild 0) in
        let t = FT.add env t (FT.entry_of_flow_mod exact 0) in
        let key = concrete_key ~in_port:1 env in
        match FT.lookup env t key with
        | Some e -> Option.get (Expr.const_value e.FT.e_priority)
        | None -> -1L)
  in
  Alcotest.(check int64) "exact beats wildcard despite priority" 1L prio

let test_modify_updates_actions () =
  let n =
    run1 (fun env ->
        let t = FT.add env FT.empty (FT.entry_of_flow_mod (fm ~actions:[ output_to 1 ] ()) 0) in
        let t', changed = FT.modify env t (fm ~actions:[ output_to 2; output_to 3 ] ()) in
        if changed then List.length (List.hd (FT.entries t')).FT.e_actions else -1)
  in
  Alcotest.(check int) "actions replaced" 2 n

let test_modify_strict_needs_priority () =
  let changed =
    run1 (fun env ->
        let t = FT.add env FT.empty (FT.entry_of_flow_mod (fm ~priority:10 ()) 0) in
        let _, changed = FT.modify_strict env t (fm ~priority:11 ()) in
        changed)
  in
  Alcotest.(check bool) "different priority: no strict modify" false changed

let test_delete_nonstrict_subsumption () =
  let n =
    run1 (fun env ->
        (* an in_port-specific entry is deleted by the all-wildcard delete *)
        let specific =
          fm ~wildcards:(C.Wildcards.all land lnot C.Wildcards.in_port) ~in_port:2 ()
        in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod specific 0) in
        let t', removed = FT.delete env ~strict:false t (fm ()) in
        FT.size t' + (100 * List.length removed))
  in
  Alcotest.(check int) "one removed, none left" 100 n

let test_delete_strict_requires_identity () =
  let n =
    run1 (fun env ->
        let specific =
          fm ~wildcards:(C.Wildcards.all land lnot C.Wildcards.in_port) ~in_port:2 ()
        in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod specific 0) in
        let t', removed = FT.delete env ~strict:true t (fm ()) in
        FT.size t' + (100 * List.length removed))
  in
  Alcotest.(check int) "strict delete with different match removes nothing" 1 n

let test_delete_out_port_filter () =
  let n =
    run1 (fun env ->
        let to1 = fm ~priority:1 ~actions:[ output_to 1 ] () in
        let to2 = fm ~priority:2 ~actions:[ output_to 2 ] () in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod to1 0) in
        let t = FT.add env t (FT.entry_of_flow_mod to2 0) in
        (* delete only entries outputting to port 2 *)
        let t', removed = FT.delete env ~strict:false t (fm ~out_port:2 ()) in
        FT.size t' + (100 * List.length removed))
  in
  Alcotest.(check int) "only the port-2 entry removed" 101 n

let test_check_overlap () =
  let overlapping =
    run1 (fun env ->
        let a = fm ~wildcards:(C.Wildcards.all land lnot C.Wildcards.in_port) ~in_port:1 () in
        let b = fm () (* all-wildcard: overlaps anything at equal priority *) in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod a 0) in
        FT.check_overlap env t (FT.entry_of_flow_mod b 0))
  in
  Alcotest.(check bool) "overlap detected" true overlapping;
  let disjoint =
    run1 (fun env ->
        let a = fm ~wildcards:(C.Wildcards.all land lnot C.Wildcards.in_port) ~in_port:1 () in
        let b = fm ~wildcards:(C.Wildcards.all land lnot C.Wildcards.in_port) ~in_port:2 () in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod a 0) in
        FT.check_overlap env t (FT.entry_of_flow_mod b 0))
  in
  Alcotest.(check bool) "disjoint in_ports do not overlap" false disjoint;
  let priority_differs =
    run1 (fun env ->
        let a = fm ~priority:1 () in
        let b = fm ~priority:2 () in
        let t = FT.add env FT.empty (FT.entry_of_flow_mod a 0) in
        FT.check_overlap env t (FT.entry_of_flow_mod b 0))
  in
  Alcotest.(check bool) "different priorities never overlap" false priority_differs

let test_symbolic_priority_forks_lookup () =
  (* two entries with symbolic priorities: lookup forks on the comparison *)
  let prio_var = Expr.var ~width:16 "ft.sym_prio" in
  let r =
    Engine.run ~max_paths:10 (fun env ->
        let e1 = FT.entry_of_flow_mod (fm ~priority:100 ()) 0 in
        let e2 = { (FT.entry_of_flow_mod (fm ()) 1) with FT.e_priority = prio_var } in
        let t = FT.empty in
        let t = { t with FT.entries = [ e1; e2 ] } in
        let key = concrete_key ~in_port:1 env in
        match FT.lookup env t key with
        | Some e -> Engine.emit env (Expr.bv_to_string e.FT.e_priority)
        | None -> ())
  in
  Alcotest.(check int) "lookup forks on priority order" 2
    (List.length r.Engine.results)

let suite =
  [
    Alcotest.test_case "add and lookup" `Quick test_add_and_lookup;
    Alcotest.test_case "add replaces identical match+priority" `Quick
      test_add_replaces_same_match_priority;
    Alcotest.test_case "different priorities coexist" `Quick
      test_add_different_priority_coexists;
    Alcotest.test_case "priority lookup" `Quick test_priority_lookup;
    Alcotest.test_case "exact match precedence" `Quick test_exact_match_beats_priority;
    Alcotest.test_case "modify" `Quick test_modify_updates_actions;
    Alcotest.test_case "modify strict" `Quick test_modify_strict_needs_priority;
    Alcotest.test_case "delete by subsumption" `Quick test_delete_nonstrict_subsumption;
    Alcotest.test_case "delete strict" `Quick test_delete_strict_requires_identity;
    Alcotest.test_case "delete out_port filter" `Quick test_delete_out_port_filter;
    Alcotest.test_case "check_overlap" `Quick test_check_overlap;
    Alcotest.test_case "symbolic priority forks lookup" `Quick
      test_symbolic_priority_forks_lookup;
  ]
