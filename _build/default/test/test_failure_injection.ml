(* Failure injection: feed every parsing/loading surface corrupted or
   truncated data and check that failures are clean, typed errors — never
   crashes, silent corruption, or wrong answers. *)

open Smt

let rng = Random.State.make [| 0x50f7 |]

(* --- wire codec under mutation -------------------------------------- *)

(* Parsing arbitrary mutations of valid messages either succeeds or raises
   [Wire.Parse_error] — nothing else. *)
let prop_wire_mutation_safe =
  QCheck2.Test.make ~name:"mutated wire bytes fail cleanly" ~count:500
    QCheck2.Gen.(
      let* m = Gen.msg_gen in
      let* pos_frac = float_bound_inclusive 1.0 in
      let+ newbyte = int_bound 255 in
      (m, pos_frac, newbyte))
    (fun (m, pos_frac, newbyte) ->
      let wire = Bytes.of_string (Openflow.Wire.serialize m) in
      let pos = int_of_float (pos_frac *. float_of_int (Bytes.length wire - 1)) in
      Bytes.set wire pos (Char.chr newbyte);
      match Openflow.Wire.parse (Bytes.to_string wire) with
      | (_ : Openflow.Types.msg) -> true
      | exception Openflow.Wire.Parse_error _ -> true)

let prop_wire_truncation_safe =
  QCheck2.Test.make ~name:"truncated wire bytes fail cleanly" ~count:300
    QCheck2.Gen.(
      let* m = Gen.msg_gen in
      let+ keep_frac = float_bound_inclusive 1.0 in
      (m, keep_frac))
    (fun (m, keep_frac) ->
      let wire = Openflow.Wire.serialize m in
      let keep = int_of_float (keep_frac *. float_of_int (String.length wire)) in
      let cut = String.sub wire 0 keep in
      match Openflow.Wire.parse cut with
      | (_ : Openflow.Types.msg) -> keep = String.length wire
      | exception Openflow.Wire.Parse_error _ -> true)

let prop_packet_garbage_safe =
  QCheck2.Test.make ~name:"garbage frames fail cleanly" ~count:300
    QCheck2.Gen.(string_size ~gen:char (int_bound 80))
    (fun s ->
      match Packet.Headers.of_bytes s with
      | (_ : Packet.Headers.t) -> true
      | exception Packet.Headers.Parse_error _ -> true)

(* --- run-file corruption ---------------------------------------------- *)

let sample_run_file () =
  let spec = Harness.Test_spec.short_symb () in
  let run = Harness.Runner.execute ~max_paths:30 Switches.Reference_switch.agent spec in
  let path = Filename.temp_file "soft_fi" ".run" in
  Harness.Serialize.save path (Harness.Serialize.of_run run);
  path

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let loads_cleanly path =
  match Harness.Serialize.load path with
  | (_ : Harness.Serialize.saved) -> `Loaded
  | exception Harness.Serialize.Format_error _ -> `Format_error
  | exception Smt.Serial.Parse_error _ -> `Condition_error

let test_runfile_truncation () =
  let path = sample_run_file () in
  let content = read_file path in
  (* cut at several byte positions: loading must never crash *)
  List.iter
    (fun frac ->
      let keep = int_of_float (frac *. float_of_int (String.length content)) in
      write_file path (String.sub content 0 keep);
      match loads_cleanly path with
      | `Loaded | `Format_error | `Condition_error -> ())
    [ 0.0; 0.1; 0.5; 0.9; 0.99 ];
  Sys.remove path

let test_runfile_bad_magic () =
  let path = sample_run_file () in
  let content = read_file path in
  write_file path ("soft-run 99\n" ^ content);
  Alcotest.(check bool) "bad magic rejected" true (loads_cleanly path = `Format_error);
  Sys.remove path

let test_runfile_line_mutations () =
  let path = sample_run_file () in
  let content = read_file path in
  let lines = String.split_on_char '\n' content in
  (* corrupt each line kind once *)
  List.iteri
    (fun i _ ->
      if i < 8 then begin
        let mutated =
          List.mapi (fun j l -> if j = i then "Z" ^ l else l) lines |> String.concat "\n"
        in
        write_file path mutated;
        match loads_cleanly path with
        | `Loaded | `Format_error | `Condition_error -> ()
      end)
    lines;
  Sys.remove path

let prop_condition_sexp_mutation_safe =
  QCheck2.Test.make ~name:"mutated path-condition sexps fail cleanly" ~count:300
    QCheck2.Gen.(
      let* w = Gen.width_gen in
      let* b = Gen.bool_gen w in
      let+ cut = float_bound_inclusive 1.0 in
      (b, cut))
    (fun (b, cut) ->
      let s = Serial.bool_to_string b in
      let keep = int_of_float (cut *. float_of_int (String.length s)) in
      let mutated = String.sub s 0 keep in
      match Serial.bool_of_string mutated with
      | (_ : Expr.boolean) -> keep = String.length s
      | exception Serial.Parse_error _ -> true)

(* --- degenerate pipeline inputs ---------------------------------------- *)

let test_crosscheck_empty_runs () =
  let empty name =
    {
      Soft.Grouping.gr_agent = name;
      gr_test = "t";
      gr_groups = [];
      gr_group_time = 0.0;
    }
  in
  let outcome = Soft.Crosscheck.check (empty "a") (empty "b") in
  Alcotest.(check int) "no groups, no findings" 0 (Soft.Crosscheck.count outcome);
  Alcotest.(check int) "no pairs" 0 outcome.Soft.Crosscheck.o_pairs_checked

let test_grouping_empty () =
  Alcotest.(check int) "empty path list" 0 (List.length (Soft.Grouping.group_paths []))

let test_engine_zero_budget () =
  let r = Symexec.Engine.run ~max_paths:0 (fun env -> Symexec.Engine.emit env ()) in
  Alcotest.(check int) "no paths explored" 0 (List.length r.Symexec.Engine.results)

(* agents never raise through the engine on random *concrete* message
   mutations: every path ends in a result or a recorded crash *)
let prop_agents_total_on_mutated_messages =
  QCheck2.Test.make ~name:"agents are total on arbitrary concrete messages" ~count:120
    QCheck2.Gen.(
      let* typ = int_bound 30 in
      let* claimed = int_bound 120 in
      let+ nbytes = int_bound 20 in
      (typ, claimed, nbytes))
    (fun (typ, claimed, nbytes) ->
      let msg =
        {
          Openflow.Sym_msg.sm_type = Expr.const ~width:8 (Int64.of_int typ);
          sm_length = Expr.const ~width:16 (Int64.of_int claimed);
          sm_phys_len = 8 + nbytes;
          sm_xid = Expr.const ~width:32 1L;
          sm_body =
            Openflow.Sym_msg.SRaw
              (Array.init nbytes (fun _ ->
                   Expr.const ~width:8 (Int64.of_int (Random.State.int rng 256))));
        }
      in
      List.for_all
        (fun agent ->
          let (module A : Switches.Agent_intf.S) = agent in
          let r =
            Symexec.Engine.run ~max_paths:8 (fun env ->
                let st = A.init () in
                let st = A.connection_setup env st in
                ignore (A.handle_message env st msg))
          in
          r.Symexec.Engine.results <> [])
        [ Switches.Reference_switch.agent; Switches.Open_vswitch.agent ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_wire_mutation_safe;
    QCheck_alcotest.to_alcotest prop_wire_truncation_safe;
    QCheck_alcotest.to_alcotest prop_packet_garbage_safe;
    Alcotest.test_case "run file truncation" `Quick test_runfile_truncation;
    Alcotest.test_case "run file bad magic" `Quick test_runfile_bad_magic;
    Alcotest.test_case "run file line mutations" `Quick test_runfile_line_mutations;
    QCheck_alcotest.to_alcotest prop_condition_sexp_mutation_safe;
    Alcotest.test_case "crosscheck empty runs" `Quick test_crosscheck_empty_runs;
    Alcotest.test_case "grouping empty" `Quick test_grouping_empty;
    Alcotest.test_case "engine zero budget" `Quick test_engine_zero_budget;
    QCheck_alcotest.to_alcotest prop_agents_total_on_mutated_messages;
  ]
