(* Match semantics tests: the symbolic [Match_sem] predicates, evaluated on
   concrete operands, must agree with an independently written concrete
   OpenFlow 1.0 matcher. *)

open Smt
module C = Openflow.Constants
module MS = Switches.Match_sem
module Sym_msg = Openflow.Sym_msg

(* an independent concrete matcher, straight from the 1.0 spec text *)
let concrete_matches (m : Openflow.Types.of_match) ~in_port ~key
    (k : Openflow.Types.of_match) =
  let wc = Int32.to_int m.Openflow.Types.wildcards in
  let f bit v kv = wc land bit <> 0 || v = kv in
  let nw shift (v : int32) (kv : int32) =
    let bits = (wc lsr shift) land 0x3f in
    let mask =
      if bits >= 32 then 0L
      else Int64.logand (Int64.shift_left 0xffffffffL bits) 0xffffffffL
    in
    let m64 x = Int64.logand (Int64.of_int32 x) 0xffffffffL in
    Int64.logand (m64 v) mask = Int64.logand (m64 kv) mask
  in
  ignore key;
  f C.Wildcards.in_port m.in_port in_port
  && f C.Wildcards.dl_src m.dl_src k.Openflow.Types.dl_src
  && f C.Wildcards.dl_dst m.dl_dst k.dl_dst
  && f C.Wildcards.dl_vlan m.dl_vlan k.dl_vlan
  && f C.Wildcards.dl_vlan_pcp m.dl_vlan_pcp k.dl_vlan_pcp
  && f C.Wildcards.dl_type m.dl_type k.dl_type
  && f C.Wildcards.nw_tos m.nw_tos k.nw_tos
  && f C.Wildcards.nw_proto m.nw_proto k.nw_proto
  && nw C.Wildcards.nw_src_shift m.nw_src k.nw_src
  && nw C.Wildcards.nw_dst_shift m.nw_dst k.nw_dst
  && f C.Wildcards.tp_src m.tp_src k.tp_src
  && f C.Wildcards.tp_dst m.tp_dst k.tp_dst

(* key built from a concrete "packet description" reusing the of_match record *)
let flow_key_of (k : Openflow.Types.of_match) ~in_port =
  let c w v = Expr.const ~width:w (Int64.of_int v) in
  let c48 v = Expr.const ~width:48 v in
  let c32 (v : int32) = Expr.const ~width:32 (Int64.logand (Int64.of_int32 v) 0xffffffffL) in
  {
    Packet.Flow_key.fk_in_port = c 16 in_port;
    fk_dl_src = c48 k.Openflow.Types.dl_src;
    fk_dl_dst = c48 k.dl_dst;
    fk_dl_vlan = c 16 k.dl_vlan;
    fk_dl_vlan_pcp = c 8 k.dl_vlan_pcp;
    fk_dl_type = c 16 k.dl_type;
    fk_nw_tos = c 8 k.nw_tos;
    fk_nw_proto = c 8 k.nw_proto;
    fk_nw_src = c32 k.nw_src;
    fk_nw_dst = c32 k.nw_dst;
    fk_tp_src = c 16 k.tp_src;
    fk_tp_dst = c 16 k.tp_dst;
  }

let eval_static b =
  (* the predicates on concrete operands must fold or evaluate without vars *)
  Expr.eval_bool (fun _ -> Alcotest.fail "unexpected variable") b

let test_match_all_matches_everything () =
  let m = Sym_msg.wildcard_match () in
  let key = flow_key_of Openflow.Types.match_all ~in_port:3 in
  Alcotest.(check bool) "wildcard matches" true (eval_static (MS.matches m key))

let test_exact_field () =
  let m =
    Sym_msg.of_match
      {
        Openflow.Types.match_all with
        Openflow.Types.wildcards =
          Int32.of_int (C.Wildcards.all land lnot C.Wildcards.in_port);
        in_port = 2;
      }
  in
  let hit = flow_key_of { Openflow.Types.match_all with Openflow.Types.in_port = 0 } ~in_port:2 in
  let miss = flow_key_of Openflow.Types.match_all ~in_port:3 in
  Alcotest.(check bool) "in_port 2 matches" true (eval_static (MS.matches m hit));
  Alcotest.(check bool) "in_port 3 does not" false (eval_static (MS.matches m miss))

let test_cidr_prefix () =
  (* match 10.0.0.0/24: wildcard 8 low bits of nw_src *)
  let wc =
    C.Wildcards.all land lnot C.Wildcards.nw_src_mask lor (8 lsl C.Wildcards.nw_src_shift)
  in
  let m =
    Sym_msg.of_match
      { Openflow.Types.match_all with Openflow.Types.wildcards = Int32.of_int wc;
        nw_src = 0x0a000000l }
  in
  let key src = flow_key_of { Openflow.Types.match_all with Openflow.Types.nw_src = src } ~in_port:1 in
  Alcotest.(check bool) "10.0.0.77 in /24" true (eval_static (MS.matches m (key 0x0a00004dl)));
  Alcotest.(check bool) "10.0.1.1 not in /24" false (eval_static (MS.matches m (key 0x0a000101l)))

let test_nw_all_wildcard () =
  (* >= 32 wildcard bits: the field never constrains *)
  let wc = C.Wildcards.all in
  let m =
    Sym_msg.of_match
      { Openflow.Types.match_all with Openflow.Types.wildcards = Int32.of_int wc;
        nw_src = 0x01020304l }
  in
  let key = flow_key_of { Openflow.Types.match_all with Openflow.Types.nw_src = 0x05060708l } ~in_port:1 in
  Alcotest.(check bool) "fully wildcarded nw_src" true (eval_static (MS.matches m key))

let prop_matches_agrees_with_concrete =
  QCheck2.Test.make ~name:"Match_sem.matches agrees with the concrete matcher" ~count:500
    QCheck2.Gen.(
      let* m = Gen.of_match_gen in
      let* k = Gen.of_match_gen in
      let+ in_port = int_bound 0xffff in
      (m, k, in_port))
    (fun (m, k, in_port) ->
      let sym = MS.matches (Sym_msg.of_match m) (flow_key_of k ~in_port) in
      eval_static sym = concrete_matches m ~in_port ~key:k k)

let prop_strict_equal_reflexive =
  QCheck2.Test.make ~name:"strict_equal is reflexive" ~count:300 Gen.of_match_gen
    (fun m ->
      let sm = Sym_msg.of_match m in
      eval_static (MS.strict_equal sm sm))

let prop_subsumes_reflexive =
  QCheck2.Test.make ~name:"subsumes is reflexive" ~count:300 Gen.of_match_gen
    (fun m ->
      let sm = Sym_msg.of_match m in
      eval_static (MS.subsumes sm sm))

let prop_wildcard_subsumes_everything =
  QCheck2.Test.make ~name:"the all-wildcard match subsumes any match" ~count:300
    Gen.of_match_gen
    (fun m ->
      eval_static (MS.subsumes (Sym_msg.wildcard_match ()) (Sym_msg.of_match m)))

let prop_overlaps_symmetric_on_self =
  QCheck2.Test.make ~name:"every match overlaps itself and the wildcard" ~count:300
    Gen.of_match_gen
    (fun m ->
      let sm = Sym_msg.of_match m in
      eval_static (MS.overlaps sm sm)
      && eval_static (MS.overlaps sm (Sym_msg.wildcard_match ())))

(* subsumption implies overlap, and matching a key implies the subsuming
   match also matches it *)
let prop_subsume_match_consistency =
  QCheck2.Test.make ~name:"outer subsumes inner => outer matches whatever inner matches"
    ~count:500
    QCheck2.Gen.(
      let* m1 = Gen.of_match_gen in
      let* m2 = Gen.of_match_gen in
      let+ k = Gen.of_match_gen in
      (m1, m2, k))
    (fun (m1, m2, k) ->
      let s1 = Sym_msg.of_match m1 and s2 = Sym_msg.of_match m2 in
      let key = flow_key_of k ~in_port:k.Openflow.Types.in_port in
      let subs = eval_static (MS.subsumes s1 s2) in
      let inner_hits = eval_static (MS.matches s2 key) in
      let outer_hits = eval_static (MS.matches s1 key) in
      (not (subs && inner_hits)) || outer_hits)

let test_is_exact () =
  let exact =
    Sym_msg.of_match { Openflow.Types.match_all with Openflow.Types.wildcards = 0l }
  in
  Alcotest.(check bool) "exact" true (eval_static (MS.is_exact exact));
  Alcotest.(check bool) "wildcarded" false
    (eval_static (MS.is_exact (Sym_msg.wildcard_match ())))

let suite =
  [
    Alcotest.test_case "wildcard matches everything" `Quick test_match_all_matches_everything;
    Alcotest.test_case "exact field" `Quick test_exact_field;
    Alcotest.test_case "CIDR prefix" `Quick test_cidr_prefix;
    Alcotest.test_case "nw full wildcard" `Quick test_nw_all_wildcard;
    QCheck_alcotest.to_alcotest prop_matches_agrees_with_concrete;
    QCheck_alcotest.to_alcotest prop_strict_equal_reflexive;
    QCheck_alcotest.to_alcotest prop_subsumes_reflexive;
    QCheck_alcotest.to_alcotest prop_wildcard_subsumes_everything;
    QCheck_alcotest.to_alcotest prop_overlaps_symmetric_on_self;
    QCheck_alcotest.to_alcotest prop_subsume_match_consistency;
    Alcotest.test_case "is_exact" `Quick test_is_exact;
  ]
