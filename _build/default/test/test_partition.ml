(* Whole-engine soundness properties on real agent runs.

   Symbolic execution is supposed to *partition* the input space
   (paper §2.3): the explored path conditions must be pairwise disjoint,
   and when exploration runs to frontier exhaustion their disjunction must
   cover the whole space.  And each partition must be faithful: pinning a
   path's witness values and re-running the agent concretely must
   reproduce exactly that path's normalized trace. *)

open Smt
module Engine = Symexec.Engine
module Spec = Harness.Test_spec
module Runner = Harness.Runner

let small_runs () =
  [
    ("short_symb", Runner.execute ~max_paths:200 Switches.Reference_switch.agent (Spec.short_symb ()));
    ("stats_request", Runner.execute ~max_paths:200 Switches.Reference_switch.agent (Spec.stats_request ()));
    ("set_config", Runner.execute ~max_paths:200 Switches.Open_vswitch.agent (Spec.set_config ()));
  ]

let test_pairwise_disjoint () =
  List.iter
    (fun (name, run) ->
      let conds = List.map (fun (p : Runner.path_record) -> p.Runner.pr_cond) run.Runner.run_paths in
      let arr = Array.of_list conds in
      let n = Array.length arr in
      Alcotest.(check bool) (name ^ ": enough paths to be meaningful") true (n >= 2);
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Solver.is_sat [ arr.(i); arr.(j) ] then
            Alcotest.fail
              (Printf.sprintf "%s: paths %d and %d overlap:\n%s\n%s" name i j
                 (Expr.bool_to_string arr.(i))
                 (Expr.bool_to_string arr.(j)))
        done
      done)
    (small_runs ())

let test_complete_cover () =
  List.iter
    (fun (name, run) ->
      (* exploration exhausted the frontier (no truncation, small budget
         not hit), so the disjunction of path conditions must be valid *)
      Alcotest.(check int) (name ^ ": no truncation") 0 run.Runner.run_stats.Engine.truncated;
      let conds = List.map (fun (p : Runner.path_record) -> p.Runner.pr_cond) run.run_paths in
      let whole = Expr.balanced_disj conds in
      Alcotest.(check bool) (name ^ ": disjunction is a tautology") false
        (Solver.is_sat [ Expr.not_ whole ]))
    (small_runs ())

(* Replay: constrain every witness variable to its model value with
   [assume]; the run must collapse to a single path with the original
   normalized result. *)
let replay_one (module A : Switches.Agent_intf.S) (spec : Spec.t) (p : Runner.path_record) =
  match Solver.get_model p.Runner.pr_constraints with
  | None -> Alcotest.fail "path condition unsatisfiable"
  | Some m ->
    let r =
      Engine.run ~max_paths:4 (fun env ->
          List.iter
            (fun (v, value) ->
              Engine.assume env
                (Expr.eq (Expr.of_var v) (Expr.const ~width:(Expr.var_width v) value)))
            (Model.bindings m);
          Runner.drive (module A) spec env)
    in
    (match r.Engine.results with
     | [ replayed ] ->
       let result =
         Harness.Normalize.result ?crash:replayed.Engine.crashed replayed.Engine.events
       in
       Alcotest.(check string) "replayed trace matches the partition's result"
         (Openflow.Trace.result_key p.Runner.pr_result)
         (Openflow.Trace.result_key result)
     | l -> Alcotest.fail (Printf.sprintf "replay produced %d paths" (List.length l)))

let test_replay_soundness () =
  let spec = Spec.short_symb () in
  let run = Runner.execute ~max_paths:200 Switches.Reference_switch.agent spec in
  List.iter (replay_one Switches.Reference_switch.agent spec) run.Runner.run_paths

let test_replay_soundness_packet_out () =
  let spec = Spec.packet_out () in
  let run = Runner.execute ~max_paths:60 Switches.Open_vswitch.agent spec in
  (* sample every 6th path to keep runtime bounded *)
  List.iteri
    (fun i p -> if i mod 6 = 0 then replay_one Switches.Open_vswitch.agent spec p)
    run.Runner.run_paths

(* Grouping preserves the partition: the group conditions are pairwise
   disjoint too (their members are), and their union is the union of the
   path conditions. *)
let test_groups_disjoint () =
  let run = Runner.execute ~max_paths:200 Switches.Reference_switch.agent (Spec.short_symb ()) in
  let grouped = Soft.Grouping.of_run run in
  let arr = Array.of_list grouped.Soft.Grouping.gr_groups in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      if Solver.is_sat [ arr.(i).Soft.Grouping.g_cond; arr.(j).Soft.Grouping.g_cond ] then
        Alcotest.fail (Printf.sprintf "groups %d and %d overlap" i j)
    done
  done

let suite =
  [
    Alcotest.test_case "paths pairwise disjoint" `Slow test_pairwise_disjoint;
    Alcotest.test_case "paths cover the input space" `Slow test_complete_cover;
    Alcotest.test_case "replay soundness (short symb)" `Slow test_replay_soundness;
    Alcotest.test_case "replay soundness (packet out)" `Slow test_replay_soundness_packet_out;
    Alcotest.test_case "groups pairwise disjoint" `Slow test_groups_disjoint;
  ]
