(* Serialization tests: expression s-expressions and the phase-1 run file
   format round trip faithfully — the basis of the decoupled vendor
   workflow. *)

open Smt

let c w v = Expr.const ~width:w (Int64.of_int v)

let roundtrip_bool b = Serial.bool_of_string (Serial.bool_to_string b)
let roundtrip_bv e = Serial.bv_of_string (Serial.bv_to_string e)

let test_bv_roundtrips () =
  let x = Expr.var ~width:16 "ser.x" in
  let cases =
    [
      c 16 0xabcd;
      x;
      Expr.add x (c 16 1);
      Expr.mul (Expr.bnot x) (Expr.neg x);
      Expr.extract ~hi:11 ~lo:4 x;
      Expr.concat (Expr.extract ~hi:15 ~lo:8 x) (c 8 0xff);
      Expr.zext ~width:32 x;
      Expr.sext ~width:32 x;
      Expr.ite (Expr.ult x (c 16 5)) x (c 16 0);
      Expr.shl x (c 16 3);
    ]
  in
  List.iter
    (fun e -> Alcotest.(check bool) (Expr.bv_to_string e) true (roundtrip_bv e == e))
    cases

let test_bool_roundtrips () =
  let x = Expr.var ~width:16 "ser.x" and y = Expr.var ~width:16 "ser.y" in
  let cases =
    [
      Expr.tru;
      Expr.fls;
      Expr.eq x y;
      Expr.not_ (Expr.eq x y);
      Expr.and_ (Expr.ult x (c 16 10)) (Expr.ule y (c 16 20));
      Expr.or_ (Expr.slt x y) (Expr.sle y x);
      Expr.balanced_disj (List.init 5 (fun i -> Expr.eq x (c 16 i)));
    ]
  in
  List.iter
    (fun b -> Alcotest.(check bool) (Serial.bool_to_string b) true (roundtrip_bool b == b))
    cases

let test_var_names_with_dots () =
  (* builder-generated names contain dots and digits *)
  let v = Expr.var ~width:48 "fm.match.dl_src" in
  Alcotest.(check bool) "roundtrip keeps identity" true (roundtrip_bv v == v)

let test_parse_errors () =
  List.iter
    (fun s ->
      try
        ignore (Serial.bool_of_string s);
        Alcotest.fail ("expected parse error on " ^ s)
      with Serial.Parse_error _ -> ())
    [ ""; "("; "(and t)"; "(cmp foo (c 8 1) (c 8 1))"; "t extra"; "(unknown t t)" ]

let prop_bool_roundtrip =
  QCheck2.Test.make ~name:"random booleans roundtrip through sexp" ~count:300
    QCheck2.Gen.(
      let* w = Gen.width_gen in
      Gen.bool_gen w)
    (fun b -> roundtrip_bool b == b)

(* --- run files ----------------------------------------------------------- *)

let test_run_file_roundtrip () =
  let x = Expr.var ~width:16 "serrun.x" in
  let res1 = { Openflow.Trace.trace = [ "of:error(BAD_REQUEST,6)" ]; crash = None } in
  let res2 = { Openflow.Trace.trace = []; crash = Some "connection lost" } in
  let saved =
    {
      Harness.Serialize.sv_agent = "reference";
      sv_test = "packet_out";
      sv_paths = [ (res1, Expr.ult x (c 16 10)); (res2, Expr.uge x (c 16 10)) ];
    }
  in
  let path = Filename.temp_file "soft_test" ".run" in
  Harness.Serialize.save path saved;
  let loaded = Harness.Serialize.load path in
  Sys.remove path;
  Alcotest.(check string) "agent" "reference" loaded.Harness.Serialize.sv_agent;
  Alcotest.(check string) "test" "packet_out" loaded.sv_test;
  Alcotest.(check int) "paths" 2 (List.length loaded.sv_paths);
  List.iter2
    (fun (r1, c1) (r2, c2) ->
      Alcotest.(check string) "result" (Openflow.Trace.result_key r1)
        (Openflow.Trace.result_key r2);
      Alcotest.(check bool) "condition identity" true (c1 == c2))
    saved.sv_paths loaded.sv_paths

let test_real_run_roundtrip () =
  (* a genuine (small) phase-1 run survives the file format *)
  let spec = Harness.Test_spec.concrete () in
  let run = Harness.Runner.execute ~max_paths:10 Switches.Reference_switch.agent spec in
  let path = Filename.temp_file "soft_test" ".run" in
  Harness.Serialize.save path (Harness.Serialize.of_run run);
  let loaded = Harness.Serialize.load path in
  Sys.remove path;
  Alcotest.(check int) "path count preserved"
    (List.length run.Harness.Runner.run_paths)
    (List.length loaded.Harness.Serialize.sv_paths)

let suite =
  [
    Alcotest.test_case "bv roundtrips" `Quick test_bv_roundtrips;
    Alcotest.test_case "bool roundtrips" `Quick test_bool_roundtrips;
    Alcotest.test_case "dotted variable names" `Quick test_var_names_with_dots;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest prop_bool_roundtrip;
    Alcotest.test_case "run file roundtrip" `Quick test_run_file_roundtrip;
    Alcotest.test_case "real run roundtrip" `Quick test_real_run_roundtrip;
  ]
