test/test_match_sem.ml: Alcotest Expr Gen Int32 Int64 Openflow Packet QCheck2 QCheck_alcotest Smt Switches
