test/test_normalize.ml: Alcotest Expr Harness Int64 Openflow Packet Smt
