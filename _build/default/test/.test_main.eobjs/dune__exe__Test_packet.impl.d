test/test_packet.ml: Alcotest Char Expr Gen Int64 List Model Option Packet Printf QCheck2 QCheck_alcotest Smt String Symexec
