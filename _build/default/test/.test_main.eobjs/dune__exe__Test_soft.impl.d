test/test_soft.ml: Alcotest Char Expr Harness Int64 List Model Openflow Printf Smt Soft String Switches Symexec
