test/test_sym_msg.ml: Alcotest Array Expr Gen Int64 List Model Openflow QCheck2 QCheck_alcotest Smt String
