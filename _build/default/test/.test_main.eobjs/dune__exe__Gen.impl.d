test/gen.ml: Expr Int32 Int64 List Model Openflow Packet Printf QCheck2 Smt
