test/test_flow_table.ml: Alcotest Expr Int32 Int64 List Openflow Option Packet Printf Smt Switches Symexec
