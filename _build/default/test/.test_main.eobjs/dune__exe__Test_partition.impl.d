test/test_partition.ml: Alcotest Array Expr Harness List Model Openflow Printf Smt Soft Solver Switches Symexec
