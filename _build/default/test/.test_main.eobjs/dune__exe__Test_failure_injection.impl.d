test/test_failure_injection.ml: Alcotest Array Bytes Char Expr Filename Fun Gen Harness Int64 List Openflow Packet QCheck2 QCheck_alcotest Random Serial Smt Soft String Switches Symexec Sys
