test/test_solver.ml: Alcotest Array Expr Gen Int64 Interval List Model QCheck2 QCheck_alcotest Sat Smt Solver
