test/test_engine.ml: Alcotest Expr Int64 List Model Printf Smt Solver String Symexec
