test/test_serial.ml: Alcotest Expr Filename Gen Harness Int64 List Openflow QCheck2 QCheck_alcotest Serial Smt Switches Sys
