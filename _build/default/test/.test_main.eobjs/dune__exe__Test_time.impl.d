test/test_time.ml: Alcotest Expr Harness Int64 List Openflow Packet Printf Smt Soft String Switches Symexec
