test/test_agents.ml: Alcotest Expr Harness Int32 Int64 List Openflow Packet Printf Smt String Switches Symexec
