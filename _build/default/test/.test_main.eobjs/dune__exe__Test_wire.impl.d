test/test_wire.ml: Alcotest Char Constants Gen Int64 List Openflow Pp Printf QCheck2 QCheck_alcotest String Types Wire
