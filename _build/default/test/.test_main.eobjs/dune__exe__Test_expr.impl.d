test/test_expr.ml: Alcotest Expr Gen Int64 List Model Option QCheck2 QCheck_alcotest Smt
