(* Behavioural pinning tests for the three agent models: every documented
   behaviour from the paper's §5.1.2 findings is asserted directly, with
   concrete inputs, per agent.  These are the ground truths the
   differential pipeline is expected to rediscover. *)

open Smt
module Engine = Symexec.Engine
module Sym_msg = Openflow.Sym_msg
module Trace = Openflow.Trace
module C = Openflow.Constants
module Spec = Harness.Test_spec

let c16 v = Expr.const ~width:16 (Int64.of_int v)
let c32 v = Expr.const ~width:32 (Int64.of_int v)

let ref_agent = Switches.Reference_switch.agent
let ovs_agent = Switches.Open_vswitch.agent
let mod_agent = Switches.Modified_switch.agent

(* Drive one agent over concrete inputs; expect a single path; return its
   normalized result. *)
let run_concrete (module A : Switches.Agent_intf.S) inputs =
  let r =
    Engine.run ~max_paths:8 (fun env ->
        let st = A.init () in
        let st = A.connection_setup env st in
        let final =
          List.fold_left
            (fun st input ->
              match input with
              | Spec.Msg m -> A.handle_message env st m
              | Spec.Probe { pr_id; pr_in_port; pr_packet } ->
                A.handle_packet env st ~probe_id:pr_id ~in_port:(c16 pr_in_port) pr_packet
              | Spec.Advance_time seconds -> A.advance_time env st ~seconds)
            st inputs
        in
        ignore final)
  in
  match r.Engine.results with
  | [ p ] -> Harness.Normalize.result ?crash:p.Engine.crashed p.Engine.events
  | l -> Alcotest.fail (Printf.sprintf "expected one path, got %d" (List.length l))

let trace_of agent inputs = (run_concrete agent inputs).Trace.trace
let crashes agent inputs = (run_concrete agent inputs).Trace.crash <> None

let packet_out ?(buffer_id = 0xffffffff) ?(in_port = C.Port.none) actions =
  [
    Spec.Msg
      (Sym_msg.packet_out
         {
           Sym_msg.spo_buffer_id = c32 buffer_id;
           spo_in_port = c16 in_port;
           spo_actions = List.map Sym_msg.of_action actions;
           spo_data = Some (Packet.Sym_packet.of_concrete (Packet.Headers.tcp_probe ()));
         });
  ]

let flow_mod ?(command = C.Flow_mod_command.add) ?(buffer_id = 0xffffffff) ?(flags = 0)
    ?(match_ = Openflow.Types.match_all) ?(idle = 0) ?(hard = 0) actions =
  [
    Spec.Msg
      (Sym_msg.flow_mod
         {
           Sym_msg.sfm_match = Sym_msg.of_match match_;
           sfm_cookie = Expr.const ~width:64 0L;
           sfm_command = c16 command;
           sfm_idle_timeout = c16 idle;
           sfm_hard_timeout = c16 hard;
           sfm_priority = c16 100;
           sfm_buffer_id = c32 buffer_id;
           sfm_out_port = c16 C.Port.none;
           sfm_flags = c16 flags;
           sfm_actions = List.map Sym_msg.of_action actions;
         });
  ]

let output port = Openflow.Types.Output { port; max_len = 0 }

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p
let has t p = List.exists (has_prefix p) t

(* --- basic request/reply parity ------------------------------------------ *)

let test_echo_reply () =
  let inputs = [ Spec.Msg (Sym_msg.echo_request [||]) ] in
  List.iter
    (fun agent ->
      let t = trace_of agent inputs in
      Alcotest.(check bool) "echo reply" true (has t "of:echo_reply"))
    [ ref_agent; ovs_agent; mod_agent ]

let test_barrier_features_config () =
  let inputs =
    [
      Spec.Msg (Sym_msg.features_request ());
      Spec.Msg (Sym_msg.get_config_request ());
      Spec.Msg (Sym_msg.barrier_request ());
    ]
  in
  List.iter
    (fun agent ->
      let t = trace_of agent inputs in
      Alcotest.(check int) "three replies" 3 (List.length t);
      Alcotest.(check bool) "features" true (has t "of:features_reply");
      Alcotest.(check bool) "config" true (has t "of:get_config_reply");
      Alcotest.(check bool) "barrier" true (has t "of:barrier_reply"))
    [ ref_agent; ovs_agent ]

(* --- crashes (reference only) -------------------------------------------- *)

let test_crash_packet_out_to_controller () =
  let inputs = packet_out [ output C.Port.controller ] in
  Alcotest.(check bool) "reference crashes" true (crashes ref_agent inputs);
  Alcotest.(check bool) "ovs survives" false (crashes ovs_agent inputs);
  (* ovs encapsulates to the controller instead *)
  Alcotest.(check bool) "ovs sends packet_in" true (has (trace_of ovs_agent inputs) "of:packet_in")

let test_crash_set_vlan_in_packet_out () =
  let inputs = packet_out [ Openflow.Types.Set_vlan_vid 5; output 2 ] in
  Alcotest.(check bool) "reference crashes" true (crashes ref_agent inputs);
  Alcotest.(check bool) "ovs survives and forwards" true
    (has (trace_of ovs_agent inputs) "dp:tx")

let test_crash_queue_config_port0 () =
  let inputs = [ Spec.Msg (Sym_msg.queue_get_config_request (c16 0)) ] in
  Alcotest.(check bool) "reference crashes" true (crashes ref_agent inputs);
  Alcotest.(check bool) "ovs errors instead" true
    (has (trace_of ovs_agent inputs) "of:error(QUEUE_OP_FAILED");
  Alcotest.(check bool) "ovs does not crash" false (crashes ovs_agent inputs)

(* --- validation differences ----------------------------------------------- *)

let test_vlan_value_validation () =
  (* vid 0x1fff does not fit 12 bits: ovs silently drops, reference (in a
     flow mod) masks and installs *)
  let fm = flow_mod [ Openflow.Types.Set_vlan_vid 0x1fff; output 2 ] in
  let probe =
    Spec.Probe
      {
        pr_id = 1;
        pr_in_port = 1;
        pr_packet = Packet.Sym_packet.of_concrete (Packet.Headers.tcp_probe ());
      }
  in
  let t_ovs = trace_of ovs_agent (fm @ [ probe ]) in
  Alcotest.(check bool) "ovs drops message silently, probe misses" true
    (has t_ovs "of:packet_in");
  Alcotest.(check bool) "ovs sends no error" false (has t_ovs "of:error");
  let t_ref = trace_of ref_agent (fm @ [ probe ]) in
  Alcotest.(check bool) "reference installed; probe forwarded" true (has t_ref "probe1:fwd")

let test_tos_validation () =
  let po tos = packet_out [ Openflow.Types.Set_nw_tos tos; output 2 ] in
  (* low bits set: ovs silent drop *)
  let t_ovs = trace_of ovs_agent (po 0x03) in
  Alcotest.(check (list string)) "ovs silently ignores" [] t_ovs;
  (* valid tos passes on both *)
  Alcotest.(check bool) "ovs forwards valid tos" true (has (trace_of ovs_agent (po 0x04)) "dp:tx");
  Alcotest.(check bool) "reference forwards (masked)" true (has (trace_of ref_agent (po 0x04)) "dp:tx")

let test_port_range_validation () =
  (* port 300 is beyond ovs's configurable max (255) but not special *)
  let inputs = packet_out [ output 300 ] in
  Alcotest.(check bool) "ovs errors" true
    (has (trace_of ovs_agent inputs) "of:error(BAD_ACTION,4)");
  (* reference silently hands it to a non-existent port *)
  Alcotest.(check (list string)) "reference says nothing" [] (trace_of ref_agent inputs);
  (* the modified switch (M3) rejects anything above 16 *)
  let inputs17 = packet_out [ output 17 ] in
  Alcotest.(check bool) "modified errors at 17" true
    (has (trace_of mod_agent inputs17) "of:error(BAD_ACTION,4)");
  Alcotest.(check (list string)) "reference still silent at 17" []
    (trace_of ref_agent inputs17)

let test_buffer_id_handling () =
  (* non-existent buffer: reference swallows the error entirely *)
  let po = packet_out ~buffer_id:42 [ output 2 ] in
  Alcotest.(check (list string)) "reference silent" [] (trace_of ref_agent po);
  Alcotest.(check bool) "ovs reports buffer_unknown" true
    (has (trace_of ovs_agent po) "of:error(BAD_REQUEST,8)");
  (* flow mod: ovs errors but still installs *)
  let fm = flow_mod ~buffer_id:42 [ output 2 ] in
  let probe =
    Spec.Probe
      {
        pr_id = 1;
        pr_in_port = 1;
        pr_packet = Packet.Sym_packet.of_concrete (Packet.Headers.tcp_probe ());
      }
  in
  let t = trace_of ovs_agent (fm @ [ probe ]) in
  Alcotest.(check bool) "ovs errors" true (has t "of:error(BAD_REQUEST,8)");
  Alcotest.(check bool) "but installs the flow" true (has t "probe1:fwd");
  let t_ref = trace_of ref_agent (fm @ [ probe ]) in
  Alcotest.(check bool) "reference installs without error" true (has t_ref "probe1:fwd");
  Alcotest.(check bool) "reference sends nothing else" false (has t_ref "of:error")

let test_in_port_eq_out_port () =
  (* match pins in_port = 2 and the action outputs to 2 *)
  let m =
    {
      Openflow.Types.match_all with
      Openflow.Types.wildcards =
        Int32.of_int (C.Wildcards.all land lnot C.Wildcards.in_port);
      in_port = 2;
    }
  in
  let fm = flow_mod ~match_:m [ output 2 ] in
  Alcotest.(check bool) "reference rejects" true
    (has (trace_of ref_agent fm) "of:error(BAD_ACTION,4)");
  Alcotest.(check (list string)) "ovs accepts silently" [] (trace_of ovs_agent fm);
  (* ... and drops matching packets at forwarding time *)
  let probe =
    Spec.Probe
      {
        pr_id = 1;
        pr_in_port = 2;
        pr_packet = Packet.Sym_packet.of_concrete (Packet.Headers.tcp_probe ());
      }
  in
  let t = trace_of ovs_agent (fm @ [ probe ]) in
  Alcotest.(check bool) "ovs drops the probe" true (has t "probe1:dropped")

let test_emergency_flows () =
  let fm = flow_mod ~flags:C.Flow_mod_flags.emerg [ output 2 ] in
  Alcotest.(check (list string)) "reference accepts emergency entries" []
    (trace_of ref_agent fm);
  Alcotest.(check bool) "ovs: unsupported" true
    (has (trace_of ovs_agent fm) "of:error(FLOW_MOD_FAILED,5)");
  (* emergency timeouts must be zero on the reference switch *)
  let bad = flow_mod ~flags:C.Flow_mod_flags.emerg ~idle:5 [ output 2 ] in
  Alcotest.(check bool) "bad emerg timeout" true
    (has (trace_of ref_agent bad) "of:error(FLOW_MOD_FAILED,3)")

let test_ofpp_normal_support () =
  let inputs = packet_out [ output C.Port.normal ] in
  Alcotest.(check bool) "reference: error (no NORMAL)" true
    (has (trace_of ref_agent inputs) "of:error(BAD_ACTION,4)");
  Alcotest.(check bool) "ovs: forwards via normal path" true
    (has (trace_of ovs_agent inputs) "dp:tx(#fffa")

let test_stats_silence_vs_error () =
  let msg =
    let base = Sym_msg.sym_stats_request ~prefix:"tstats" () in
    (* pin the request to an unknown type with a valid length *)
    { base with Sym_msg.sm_length = c16 base.Sym_msg.sm_phys_len }
  in
  ignore msg;
  (* build a concrete unknown stats request instead *)
  let unknown =
    {
      Sym_msg.ssr_type = c16 9;
      ssr_flags = c16 0;
      ssr_match = Sym_msg.wildcard_match ();
      ssr_table_id = Expr.const ~width:8 0xffL;
      ssr_out_port = c16 C.Port.none;
      ssr_port_no = c16 1;
      ssr_queue_port = c16 1;
      ssr_queue_id = c32 0xffffffff;
    }
  in
  let m = Sym_msg.make C.Msg_type.stats_request (Sym_msg.SStats_request unknown) in
  let inputs = [ Spec.Msg m ] in
  Alcotest.(check (list string)) "reference silently ignores" [] (trace_of ref_agent inputs);
  Alcotest.(check bool) "ovs errors" true
    (has (trace_of ovs_agent inputs) "of:error(BAD_REQUEST,2)");
  Alcotest.(check bool) "modified (M7) errors" true
    (has (trace_of mod_agent inputs) "of:error(BAD_REQUEST,2)")

let test_desc_stats_normalized () =
  let desc =
    {
      Sym_msg.ssr_type = c16 C.Stats_type.desc;
      ssr_flags = c16 0;
      ssr_match = Sym_msg.wildcard_match ();
      ssr_table_id = Expr.const ~width:8 0xffL;
      ssr_out_port = c16 C.Port.none;
      ssr_port_no = c16 1;
      ssr_queue_port = c16 1;
      ssr_queue_id = c32 0xffffffff;
    }
  in
  let m =
    let base = Sym_msg.make C.Msg_type.stats_request (Sym_msg.SStats_request desc) in
    { base with Sym_msg.sm_length = c16 12; sm_phys_len = 12 }
  in
  let t_ref = trace_of ref_agent [ Spec.Msg m ] in
  let t_ovs = trace_of ovs_agent [ Spec.Msg m ] in
  Alcotest.(check (list string)) "desc replies normalize identically" t_ref t_ovs

(* --- modified switch quirks ------------------------------------------------ *)

let test_modified_bad_action_error_type () =
  let bogus = Openflow.Types.Unknown_action { typ = 0x7777; len = 8; body = "\x00\x00\x00\x00" } in
  let inputs = packet_out [ bogus ] in
  Alcotest.(check bool) "reference: BAD_ACTION" true
    (has (trace_of ref_agent inputs) "of:error(BAD_ACTION,0)");
  Alcotest.(check bool) "modified (M4): BAD_REQUEST" true
    (has (trace_of mod_agent inputs) "of:error(BAD_REQUEST,0)")

let test_modified_miss_send_len_clamp () =
  let sc = { Sym_msg.scfg_flags = c16 0; smiss_send_len = c16 0x200 } in
  let probe =
    Spec.Probe
      {
        pr_id = 1;
        pr_in_port = 1;
        pr_packet = Packet.Sym_packet.of_concrete (Packet.Headers.tcp_probe ());
      }
  in
  let inputs = [ Spec.Msg (Sym_msg.set_config sc); probe ] in
  (* 0x200 >= frame length: reference sends the whole frame unbuffered;
     modified clamps to 0x80 and buffers/truncates *)
  let t_ref = trace_of ref_agent inputs in
  let t_mod = trace_of mod_agent inputs in
  Alcotest.(check bool) "observable difference" false (t_ref = t_mod)

let test_modified_ignores_check_overlap () =
  let first = flow_mod ~flags:C.Flow_mod_flags.check_overlap [ output 2 ] in
  let second =
    flow_mod ~flags:C.Flow_mod_flags.check_overlap
      ~match_:
        {
          Openflow.Types.match_all with
          Openflow.Types.wildcards =
            Int32.of_int (C.Wildcards.all land lnot C.Wildcards.in_port);
          in_port = 1;
        }
      [ output 3 ]
  in
  let inputs = first @ second in
  Alcotest.(check bool) "reference reports overlap" true
    (has (trace_of ref_agent inputs) "of:error(FLOW_MOD_FAILED,1)");
  Alcotest.(check (list string)) "modified (M6) installs silently" []
    (trace_of mod_agent inputs)

(* --- message framing -------------------------------------------------------- *)

let test_undersized_message_errors () =
  let m = { (Sym_msg.barrier_request ()) with Sym_msg.sm_length = c16 4 } in
  List.iter
    (fun agent ->
      Alcotest.(check bool) "bad_len error" true
        (has (trace_of agent [ Spec.Msg m ]) "of:error(BAD_REQUEST,6)"))
    [ ref_agent; ovs_agent ]

let test_oversized_claim_blocks () =
  (* claimed length beyond the delivered bytes: the agent blocks; later
     messages get no response *)
  let m = { (Sym_msg.barrier_request ()) with Sym_msg.sm_length = c16 64 } in
  let inputs = [ Spec.Msg m; Spec.Msg (Sym_msg.echo_request [||]) ] in
  List.iter
    (fun agent ->
      Alcotest.(check (list string)) "no responses at all" [] (trace_of agent inputs))
    [ ref_agent; ovs_agent ]

let test_unknown_message_type () =
  let m = { (Sym_msg.barrier_request ()) with Sym_msg.sm_type = Expr.const ~width:8 99L } in
  List.iter
    (fun agent ->
      Alcotest.(check bool) "bad_type error" true
        (has (trace_of agent [ Spec.Msg m ]) "of:error(BAD_REQUEST,1)"))
    [ ref_agent; ovs_agent ]

let test_flood_fanout () =
  let inputs = packet_out ~in_port:1 [ output C.Port.flood ] in
  List.iter
    (fun agent ->
      let t = trace_of agent inputs in
      let txs = List.filter (has_prefix "dp:tx") t in
      (* 4 ports minus the in_port *)
      Alcotest.(check int) "flood on all but ingress" 3 (List.length txs))
    [ ref_agent; ovs_agent ]

let test_in_port_output () =
  let inputs = packet_out ~in_port:2 [ output C.Port.in_port ] in
  List.iter
    (fun agent ->
      Alcotest.(check bool) "sent back out the ingress port" true
        (has (trace_of agent inputs) "dp:tx(#2"))
    [ ref_agent; ovs_agent ]

let suite =
  [
    Alcotest.test_case "echo reply" `Quick test_echo_reply;
    Alcotest.test_case "barrier/features/config" `Quick test_barrier_features_config;
    Alcotest.test_case "crash: packet-out to CONTROLLER" `Quick
      test_crash_packet_out_to_controller;
    Alcotest.test_case "crash: set_vlan in packet-out" `Quick test_crash_set_vlan_in_packet_out;
    Alcotest.test_case "crash: queue config port 0" `Quick test_crash_queue_config_port0;
    Alcotest.test_case "vlan value validation" `Quick test_vlan_value_validation;
    Alcotest.test_case "tos validation" `Quick test_tos_validation;
    Alcotest.test_case "port range validation" `Quick test_port_range_validation;
    Alcotest.test_case "buffer id handling" `Quick test_buffer_id_handling;
    Alcotest.test_case "in_port = out_port" `Quick test_in_port_eq_out_port;
    Alcotest.test_case "emergency flows" `Quick test_emergency_flows;
    Alcotest.test_case "OFPP_NORMAL support" `Quick test_ofpp_normal_support;
    Alcotest.test_case "stats silence vs error" `Quick test_stats_silence_vs_error;
    Alcotest.test_case "desc stats normalized" `Quick test_desc_stats_normalized;
    Alcotest.test_case "modified: error type (M4)" `Quick test_modified_bad_action_error_type;
    Alcotest.test_case "modified: miss_send_len clamp (M5)" `Quick
      test_modified_miss_send_len_clamp;
    Alcotest.test_case "modified: overlap ignored (M6)" `Quick
      test_modified_ignores_check_overlap;
    Alcotest.test_case "undersized message" `Quick test_undersized_message_errors;
    Alcotest.test_case "oversized claim blocks" `Quick test_oversized_claim_blocks;
    Alcotest.test_case "unknown message type" `Quick test_unknown_message_type;
    Alcotest.test_case "flood fanout" `Quick test_flood_fanout;
    Alcotest.test_case "OFPP_IN_PORT output" `Quick test_in_port_output;
  ]
