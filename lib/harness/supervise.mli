(** Watchdog supervision for pool tasks: preemptive deadlines, retry with
    backoff, failure taxonomy, and a memory-pressure guard.

    The solver's budgets are cooperative — enforced only at CDCL
    checkpoints — so a pathological bit-blast or a hung chaos task can
    stall a worker domain forever.  Supervision closes the gap: a
    dedicated {e monitor domain} watches every in-flight task's
    {!Smt.Cancel} token and cancels it preemptively when its wall-clock
    deadline passes or the process crosses a memory ceiling.  The task
    aborts at its next poll site (bit-blast memo miss, interning, interval
    pass, CDCL loop), is classified by {!taxonomy}, and may be retried on
    an exponential-backoff ladder before the caller quarantines it.

    The monitor ticks at a quarter of the deadline (clamped), so a hung
    task is cancelled well within 2x the configured deadline; how fast it
    actually dies then depends only on poll-site density, which the chaos
    [Hang] fault exercises end to end. *)

type taxonomy =
  | Hung  (** overran its wall-clock deadline; watchdog killed it *)
  | Crashed  (** raised an unexpected exception *)
  | Oom  (** memory ceiling, [Out_of_memory], or the Expr node limit *)
  | Faulted  (** a {!Chaos} injected fault *)

val taxonomy_to_string : taxonomy -> string
(** Lower-case stable names ([hung]/[crashed]/[oom]/[faulted]) — the
    checkpoint-v3 wire form. *)

val taxonomy_of_string : string -> taxonomy option

val pp_taxonomy : Format.formatter -> taxonomy -> unit

val classify_exn : exn -> taxonomy * string
(** Map an escaped task exception to its taxonomy and a one-line summary.
    Total: unrecognized exceptions classify as [Crashed]. *)

type policy = {
  sp_deadline_ms : int option;  (** per-attempt wall-clock deadline *)
  sp_max_retries : int;  (** strikes after the first attempt; 0 = one try *)
  sp_backoff_ms : int list;
      (** backoff ladder, one entry per retry; the last entry repeats *)
  sp_jitter : float;  (** +/- fraction of the backoff step, in [[0, 1]] *)
  sp_mem_ceiling_mb : int option;
      (** major-heap ceiling; crossing it sheds caches and degrades
          in-flight queries *)
}

val policy :
  ?deadline_ms:int ->
  ?max_retries:int ->
  ?backoff_ms:int list ->
  ?jitter:float ->
  ?mem_ceiling_mb:int ->
  unit ->
  policy
(** Defaults: no deadline, no memory ceiling, 2 retries, ladder
    [[10; 50; 250]] ms, jitter [0.5].
    @raise Invalid_argument on a negative deadline/retry count/ladder
    step or a jitter outside [[0, 1]]. *)

type t
(** A running monitor (or a passive handle when the policy needs none). *)

val with_monitor : policy -> (t -> 'a) -> 'a
(** Run a thunk with a monitor domain alive (spawned only if the policy
    has a deadline or memory ceiling; a passive handle otherwise).  The
    monitor is always joined before returning, even on exceptions. *)

val run : t -> (unit -> 'a) -> ('a, taxonomy * string) result
(** One supervised attempt: install a fresh {!Smt.Cancel} token for the
    thunk's dynamic extent, register it with the monitor, and classify
    any escape.  A task that completes despite a late cancellation still
    returns [Ok].  Runs the memory-pressure shed first if one is due on
    this domain. *)

val run_retrying :
  t ->
  key:int ->
  (attempt:int -> 'a) ->
  [ `Done of 'a * int | `Quarantine of taxonomy * string * int ]
(** The full retry ladder: attempt 0, then up to [sp_max_retries] further
    attempts separated by backoff sleeps with deterministic jitter seeded
    from [(key, attempt)] — [key] should identify the unit of work (e.g.
    the pair index) so reruns jitter identically.  The [int] in both arms
    is the number of retries consumed (0 = first attempt sufficed).
    [`Quarantine] carries the {e last} attempt's classification. *)

val pressure_events : t -> int
(** Memory-pressure events the monitor has fired so far. *)

val heap_mb : unit -> float
(** Current major-heap size in MiB, as the monitor samples it. *)
