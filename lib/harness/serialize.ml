(* On-disk interchange format for phase-1 results.  A vendor runs
   [Runner.execute] privately and ships this file; the crosscheck phase
   consumes only these files — never agent code (paper §2.4).

   Line-oriented format:
     soft-run 1
     agent NAME
     test ID
     path
     T trace-line          (zero or more)
     X crash-message       (optional)
     P sexp-path-condition
     ... repeated per path

   The same bytes also travel through the service layer's
   content-addressed store, so the format round-trips through strings
   ([to_string]/[of_string]); the digest of [to_string] is the agent
   fingerprint the service keys crosscheck verdicts by. *)

module Trace = Openflow.Trace

type saved = {
  sv_agent : string;
  sv_test : string;
  sv_paths : (Trace.result * Smt.Expr.boolean) list;
}

let of_run (r : Runner.run) =
  {
    sv_agent = r.Runner.run_agent;
    sv_test = r.Runner.run_test;
    sv_paths = List.map (fun (p : Runner.path_record) -> (p.pr_result, p.pr_cond)) r.Runner.run_paths;
  }

let to_string (s : saved) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "soft-run 1\n";
  Printf.bprintf buf "agent %s\n" s.sv_agent;
  Printf.bprintf buf "test %s\n" s.sv_test;
  List.iter
    (fun ((res : Trace.result), cond) ->
      Buffer.add_string buf "path\n";
      List.iter (fun line -> Printf.bprintf buf "T %s\n" line) res.Trace.trace;
      (match res.Trace.crash with
       | Some m -> Printf.bprintf buf "X %s\n" m
       | None -> ());
      Printf.bprintf buf "P %s\n" (Smt.Serial.bool_to_string cond))
    s.sv_paths;
  Buffer.contents buf

let write_channel oc (s : saved) = output_string oc (to_string s)

let save path (s : saved) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc s)

exception Format_error of string

(* [what] names the source (a file path, or "<string>") in errors. *)
let parse ~what next_line =
  let expect_prefix p l =
    if String.length l >= String.length p && String.sub l 0 (String.length p) = p then
      String.sub l (String.length p) (String.length l - String.length p)
    else raise (Format_error (Printf.sprintf "%s: expected '%s...', got '%s'" what p l))
  in
  (match next_line () with
   | Some "soft-run 1" -> ()
   | _ -> raise (Format_error (what ^ ": bad magic")));
  let agent =
    match next_line () with
    | Some l -> expect_prefix "agent " l
    | None -> raise (Format_error (what ^ ": truncated"))
  in
  let test =
    match next_line () with
    | Some l -> expect_prefix "test " l
    | None -> raise (Format_error (what ^ ": truncated"))
  in
  let paths = ref [] in
  let cur_trace = ref [] in
  let cur_crash = ref None in
  let in_path = ref false in
  let flush_path cond =
    paths :=
      ({ Trace.trace = List.rev !cur_trace; crash = !cur_crash }, cond) :: !paths;
    cur_trace := [];
    cur_crash := None;
    in_path := false
  in
  let rec go () =
    match next_line () with
    | None ->
      if !in_path then raise (Format_error (what ^ ": path without condition"))
    | Some "path" ->
      if !in_path then raise (Format_error (what ^ ": nested path"));
      in_path := true;
      go ()
    | Some l when String.length l >= 2 && l.[0] = 'T' && l.[1] = ' ' ->
      cur_trace := String.sub l 2 (String.length l - 2) :: !cur_trace;
      go ()
    | Some l when String.length l >= 2 && l.[0] = 'X' && l.[1] = ' ' ->
      cur_crash := Some (String.sub l 2 (String.length l - 2));
      go ()
    | Some l when String.length l >= 2 && l.[0] = 'P' && l.[1] = ' ' ->
      let cond = Smt.Serial.bool_of_string (String.sub l 2 (String.length l - 2)) in
      flush_path cond;
      go ()
    | Some "" -> go ()
    | Some l -> raise (Format_error (what ^ ": unexpected line: " ^ l))
  in
  go ();
  { sv_agent = agent; sv_test = test; sv_paths = List.rev !paths }

let of_string ?(what = "<string>") content =
  let lines = ref (String.split_on_char '\n' content) in
  let next_line () =
    match !lines with
    | [] | [ "" ] -> None
    | l :: rest ->
      lines := rest;
      Some l
  in
  parse ~what next_line

let load path =
  of_string ~what:path (In_channel.with_open_bin path In_channel.input_all)
