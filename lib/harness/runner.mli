(** SOFT phase 1: drive one agent over one test spec under the symbolic
    execution engine (the "test driver" of paper §4.1).  The emulated
    controller establishes the connection, injects each symbolic message,
    probe, and time step, and the engine delivers every explored path's
    condition and normalized output trace. *)

type path_record = {
  pr_result : Openflow.Trace.result;  (** normalized output trace *)
  pr_cond : Smt.Expr.boolean;  (** balanced-conjunction path condition *)
  pr_constraints : Smt.Expr.boolean list;  (** conjuncts, in order *)
  pr_size : int;  (** boolean operations in [pr_cond] (Table-2 metric) *)
}

type run = {
  run_agent : string;
  run_test : string;
  run_paths : path_record list;
  run_stats : Symexec.Engine.run_stats;
  run_coverage : Symexec.Coverage.set;
}

val default_max_paths : int
(** Per-test path budget.  The authors' testbed let the largest tests run
    to hundreds of thousands of paths over days; this keeps the
    reproduction interactive while preserving relative orderings — SOFT
    explicitly tolerates partial path coverage (paper §4.1). *)

val drive :
  Switches.Agent_intf.t ->
  Test_spec.t ->
  Openflow.Trace.event Symexec.Engine.env ->
  unit
(** The program handed to the engine: init, connection setup, then the
    spec's inputs in order. *)

val execute :
  ?max_paths:int ->
  ?strategy:Symexec.Strategy.t ->
  ?use_interval:bool ->
  ?deadline_ms:int ->
  ?solver_budget:Smt.Solver.budget ->
  Switches.Agent_intf.t ->
  Test_spec.t ->
  run
(** [deadline_ms] bounds the run's wall-clock exploration time;
    [solver_budget] bounds each feasibility query (see
    {!Symexec.Engine.run}). *)

val execute_replay :
  ?max_paths:int ->
  ?solver_budget:Smt.Solver.budget ->
  Switches.Agent_intf.t ->
  Test_spec.t ->
  witness:Smt.Model.t ->
  Openflow.Trace.result option
(** Re-execute [agent] on [spec] with every symbolic input pinned to the
    [witness]'s concrete values, returning the normalized trace of the
    explored path the witness selects — [None] if no explored path's
    condition is satisfied by the witness (replay failure).  Validation
    uses this to confirm reported inconsistencies by concrete re-execution
    (paper §4.2: every inconsistency comes with a replayable test case). *)

type failure = {
  f_agent : string;
  f_test : string;
  f_error : string;  (** printed exception *)
  f_backtrace : string;
}
(** A whole-run failure: the agent (or the stack under it) raised outside
    the engine's per-path isolation. *)

val pp_failure : Format.formatter -> failure -> unit

val execute_safe :
  ?max_paths:int ->
  ?strategy:Symexec.Strategy.t ->
  ?use_interval:bool ->
  ?deadline_ms:int ->
  ?solver_budget:Smt.Solver.budget ->
  Switches.Agent_intf.t ->
  Test_spec.t ->
  (run, failure) result
(** Like {!execute}, but any exception escaping the run is captured as a
    {!failure} record instead of aborting the caller ([Out_of_memory]
    still propagates).  One crashing agent must not lose a suite. *)

val coverage_report : run -> Symexec.Coverage.report

val constraint_sizes : run -> float * int
(** [(average, maximum)] constraint size over the run's paths. *)
