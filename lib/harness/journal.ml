(* Append-only write-ahead log for the crash-only service layer.

   The SOFT pipeline is naturally restartable — phase 2 needs only durable
   phase-1 artefacts (paper §2.4) — *if* progress is journaled with crash
   semantics.  This module is that journal: one record per state change,
   each checksummed, each committed with an fsync before the caller is
   allowed to act on it.  Nothing is ever updated in place; recovery is a
   pure left-to-right replay that stops at the first byte it cannot
   verify.

   Wire format (line oriented, binary-safe via escaping):

     soft-wal 1
     r <md5-hex-of-payload> <String.escaped payload>
     ...

   Crash semantics, record by record:
   - a record is COMMITTED once [append] returns: the bytes are flushed
     and fsynced (unless the caller opted out for tests/benchmarks);
   - a crash mid-append leaves a torn tail — a final line that is
     incomplete, unparsable, or whose checksum does not match its
     payload.  [scan] verifies each record and returns both the verified
     records and the byte offset where verification stopped; [create]
     truncates the file back to that offset, so the next append starts at
     a record boundary and can never be corrupted by earlier debris;
   - a failed fsync means the record may or may not be durable even
     though [append] raised.  Replay may therefore surface a record whose
     append "failed" — consumers must treat records idempotently (the
     service dedups on job/unit ids).

   Torn-tail containment: verification stops at the FIRST bad line and
   discards everything after it, even lines that would individually
   verify.  An append-only writer can only tear the tail, so anything
   after a bad line is debris from a corrupted file, not valid history —
   trusting it could reorder or resurrect records.

   Fault injection: {!Chaos.Torn_write} makes an append write half the
   record and die; {!Chaos.Fsync_fail} makes the commit unacknowledged;
   {!Chaos.Rename_crash} kills the process right after a [rewrite]'s
   atomic rename.  All three surface as {!Chaos.Injected_fault} — the
   caller experiences a crash, and only the recovery path can carry on. *)

type t = {
  j_path : string;
  j_oc : out_channel;
  j_fsync : bool;
}

let magic = "soft-wal 1\n"

let encode payload =
  Printf.sprintf "r %s %s\n" (Digest.to_hex (Digest.string payload)) (String.escaped payload)

(* Parse one "r <sum> <escaped>" line back to its payload; [None] means
   the line cannot be trusted (malformed, unescapable, or checksum
   mismatch). *)
let decode_line line =
  if String.length line < 2 + 32 + 1 || String.sub line 0 2 <> "r " then None
  else
    let sum = String.sub line 2 32 in
    if String.length line < 35 || line.[34] <> ' ' then None
    else
      let esc = String.sub line 35 (String.length line - 35) in
      match Scanf.unescaped esc with
      | payload ->
        if Digest.to_hex (Digest.string payload) = String.lowercase_ascii sum then Some payload
        else None
      | exception (Scanf.Scan_failure _ | Failure _) -> None

let scan path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let content = In_channel.with_open_bin path In_channel.input_all in
    let mlen = String.length magic in
    if String.length content < mlen || String.sub content 0 mlen <> magic then ([], 0)
    else begin
      let records = ref [] in
      let pos = ref mlen in
      let stop = ref false in
      while not !stop do
        match String.index_from_opt content !pos '\n' with
        | None -> stop := true (* no terminating newline: torn tail *)
        | Some nl -> (
          let line = String.sub content !pos (nl - !pos) in
          match decode_line line with
          | Some payload ->
            records := payload :: !records;
            pos := nl + 1;
            if !pos >= String.length content then stop := true
          | None -> stop := true)
      done;
      (List.rev !records, !pos)
    end
  end

let sync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let create ?(fsync = true) path =
  let _, valid = scan path in
  let exists = Sys.file_exists path in
  if exists then begin
    let size = (Unix.stat path).Unix.st_size in
    if valid < size then
      (* discard the torn tail so appends restart at a record boundary *)
      Unix.truncate path valid
  end;
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path
  in
  let t = { j_path = path; j_oc = oc; j_fsync = fsync } in
  if valid = 0 then begin
    (* brand-new (or unsalvageable) file: the header is the first commit *)
    if exists && (Unix.stat path).Unix.st_size > 0 then Unix.truncate path 0;
    output_string oc magic;
    if fsync then sync_channel oc else flush oc
  end;
  t

let path t = t.j_path

let append t payload =
  let line = encode payload in
  if Chaos.maybe_torn_write () then begin
    (* a kill mid-write: half the record reaches the file, the caller
       sees a crash, recovery truncates the debris *)
    output_string t.j_oc (String.sub line 0 (String.length line / 2));
    flush t.j_oc;
    raise (Chaos.Injected_fault (Chaos.point_name Chaos.Torn_write))
  end;
  output_string t.j_oc line;
  flush t.j_oc;
  (* a failed fsync: bytes written, commit unacknowledged — the record is
     a "ghost" that replay may or may not surface *)
  Chaos.maybe_fsync_fail ();
  if t.j_fsync then Unix.fsync (Unix.descr_of_out_channel t.j_oc)

let close t = close_out t.j_oc

(* Atomic compaction: write the surviving records to a sibling, fsync,
   rename over the log.  A crash before the rename leaves the old log; a
   crash after it (the [Rename_crash] fault point) leaves the new one —
   either way exactly one intact journal is visible, never a mix. *)
let rewrite ?(fsync = true) path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      List.iter (fun r -> output_string oc (encode r)) records;
      if fsync then sync_channel oc);
  Sys.rename tmp path;
  Chaos.maybe_rename_crash ()

let replay path = fst (scan path)
