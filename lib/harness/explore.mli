(** Deterministic fault-schedule exploration: run a workload under
    candidate {!Schedule}s, check its invariant oracles per schedule, and
    shrink any violation to a locally minimal failing schedule.

    Where the seeded chaos sweeps {e sample} the fault space, this driver
    {e enumerates} it: a recording discovery run yields the finite
    universe of draw sites the workload can reach, and the strategies
    below cover it systematically — every single-fault schedule, a
    budgeted pass over pairs, and bounded-density random combinations.
    The discipline is the deterministic-simulation-testing one: because
    a schedule replays exactly (see {!Chaos.scripted}), every verdict
    here — pass, violation, and the shrunk minimum — is reproducible
    from a committed repro file. *)

type 'a workload = {
  w_name : string;
  w_run : unit -> 'a;
      (** run the workload under whatever chaos plan the driver installed
          and return an observation.  Must be self-cleaning (clock skew,
          temp files): the driver only installs/deactivates plans. *)
  w_oracle : baseline:'a -> 'a -> string list;
      (** invariant oracles: violation messages for this observation
          against the fault-free baseline; [[]] means the schedule
          passed. *)
}

type violation = {
  v_schedule : Schedule.t;  (** the failing schedule as explored *)
  v_messages : string list;  (** the oracle's complaints *)
  v_minimal : Schedule.t option;  (** the ddmin result, when shrinking ran *)
  v_shrink_tests : int;  (** workload executions the shrink spent *)
}

type stats = {
  x_sites : int;  (** distinct draw sites discovered *)
  x_schedules : int;  (** candidate schedules executed *)
  x_violations : int;
  x_shrink_tests : int;  (** total executions spent shrinking *)
}

type 'a outcome = {
  o_baseline : 'a;
  o_sites : Schedule.site list;
  o_violations : violation list;
  o_stats : stats;
}

val discover : 'a workload -> 'a * Schedule.site list
(** Run the workload once under a recording plan that never fires,
    returning the fault-free baseline observation and the universe of
    draw sites the run reached. *)

val check_schedule : 'a workload -> baseline:'a -> Schedule.t -> string list
(** Run the workload under [schedule] (installed as a {!Chaos.scripted}
    plan, deactivated afterwards) and apply the oracles.  An exception
    escaping the workload — including an uncontained
    {!Chaos.Injected_fault} — is itself reported as a violation. *)

(** {2 Schedule strategies} — pure functions over the site universe. *)

val singles : Schedule.site list -> Schedule.t list
(** One schedule per site: exhaustive single-fault enumeration. *)

val pairs : ?budget:int -> Schedule.site list -> Schedule.t list
(** All two-site combinations in sorted order, capped at [budget]. *)

val randoms :
  seed:int -> density:int -> count:int -> Schedule.site list -> Schedule.t list
(** [count] deterministic random schedules of at most [density] distinct
    sites each, drawn from a stream seeded by [seed]. *)

val shrink :
  'a workload -> baseline:'a -> Schedule.t -> (Schedule.t * int) option
(** ddmin over the failing schedule's fired sites: [Some (minimal, n)]
    is a locally minimal failing schedule — removing {e any single}
    remaining site makes the oracles pass (1-minimality, the classic
    ddmin guarantee) — found in [n] workload executions.  [None] if the
    schedule does not actually fail (nothing to shrink).  Metadata is
    preserved on the minimized schedule. *)

val explore :
  ?max_schedules:int ->
  ?faults_per_schedule:int ->
  ?seed:int ->
  ?shrink:bool ->
  ?log:(string -> unit) ->
  'a workload ->
  'a outcome
(** The full driver: discover the site universe, enumerate candidates —
    all singles; pairs when [faults_per_schedule >= 2]; random schedules
    of density [faults_per_schedule] filling the remaining budget when
    [faults_per_schedule > 2] — capped at [max_schedules] (default 256),
    run each, and ddmin every violation when [shrink] (default true).
    [log] receives progress lines (default: silent).
    @raise Invalid_argument if [faults_per_schedule < 1] or
    [max_schedules < 1]. *)
