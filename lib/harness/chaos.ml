(* Deterministic internal fault injection.

   PR 1 grew many degradation paths — budgets, the retry ladder,
   checkpoint/resume, crash isolation — that input-level fuzzing never
   exercises from the inside.  This module injects faults *inside* the
   pipeline at four keyed points:

   - [Solver_fault]: a query that reached the SAT core raises instead of
     answering (installed via {!Smt.Solver.set_query_hook}, scoped to the
     crosscheck phase by {!with_solver_faults});
   - [Agent_step]: an agent input step raises mid-drive;
   - [Checkpoint_truncate]: a checkpoint file is truncated mid-file right
     after being written;
   - [Clock_jump]: the monotonic clock jumps far past any deadline
     ({!Smt.Mono.advance}), expiring wall-clock budgets.

   The plan is deterministic: each point draws from its own
   [Random.State] stream seeded from [(seed, point index)], so the fault
   schedule of one point is independent of how often the others fire and
   a seed reproduces the exact same fault pattern.

   Soundness contract (asserted by test_chaos): injected faults may only
   ever move crosscheck pairs to [o_pairs_undecided] — they must never
   flip a verdict.  Two design points enforce this:
   - {!Injected_fault} is registered as fatal with the engine, so an
     agent-step fault aborts the whole run loudly instead of being
     recorded as an agent crash path (which would be observable behaviour
     and could alter grouping, hence verdicts);
   - clock jumps and solver faults are only delivered inside the
     crosscheck's per-pair scope, where the pair handler degrades them to
     undecided.  A clock jump during path exploration could silently
     truncate the path set and narrow a group disjunction, flipping a SAT
     pair to UNSAT — so it is never injected there. *)

exception Injected_fault of string

type point =
  | Solver_fault
  | Agent_step
  | Checkpoint_truncate
  | Clock_jump
  | Hang
  | Torn_write
  | Fsync_fail
  | Rename_crash
  | Torn_frame
  | Conn_reset
  | Read_stall

let point_name = function
  | Solver_fault -> "solver-fault"
  | Agent_step -> "agent-step"
  | Checkpoint_truncate -> "checkpoint-truncate"
  | Clock_jump -> "clock-jump"
  | Hang -> "hang"
  | Torn_write -> "torn-write"
  | Fsync_fail -> "fsync-fail"
  | Rename_crash -> "rename-crash"
  | Torn_frame -> "torn-frame"
  | Conn_reset -> "conn-reset"
  | Read_stall -> "read-stall"

let npoints = 11

let point_index = function
  | Solver_fault -> 0
  | Agent_step -> 1
  | Checkpoint_truncate -> 2
  | Clock_jump -> 3
  | Hang -> 4
  | Torn_write -> 5
  | Fsync_fail -> 6
  | Rename_crash -> 7
  | Torn_frame -> 8
  | Conn_reset -> 9
  | Read_stall -> 10

let all_points =
  [
    Solver_fault;
    Agent_step;
    Checkpoint_truncate;
    Clock_jump;
    Hang;
    Torn_write;
    Fsync_fail;
    Rename_crash;
    Torn_frame;
    Conn_reset;
    Read_stall;
  ]

let point_of_name s =
  List.find_opt (fun pt -> point_name pt = s) all_points

(* The transport points are drawn by the live-wire connection layer
   ({!Openflow.Conn}), which turns each firing into the corresponding
   contained transport failure — a frame cut mid-write, a reset socket, a
   read that outlives its deadline.  They never raise {!Injected_fault}
   themselves: the invariant under test is that the transport layer
   classifies and degrades them like the real network events they model. *)
let transport_points = [ Torn_frame; Conn_reset; Read_stall ]

type draw = { d_point : point; d_key : int option; d_index : int; d_fired : bool }

type plan = {
  p_seed : int;
  p_rate : float;
  p_streams : Random.State.t array; (* one independent stream per point *)
  p_fired : int array;
  p_enabled : bool array;
  (* [?only] mask: a disabled point never fires and never draws.  Each
     point has its own stream, so masking one point cannot shift another
     point's schedule — restricting a plan to the durability points keeps
     the solver/agent/clock points byte-for-byte silent. *)
  p_keyed : (int * int, Random.State.t) Hashtbl.t;
  (* keyed streams, allocated lazily under [fire_lock]: a [fire ~key] draw
     comes from the stream seeded by [(seed, point, key)] instead of the
     point's global stream, so whether it fires depends only on the plan
     and on how many draws *that key* has made — not on how many other
     keys have drawn, and hence not on worker count or scheduling.  The
     crosscheck keys its per-pair solver-fault scope by pair index, which
     is what keeps a [-j N] chaos report byte-identical to [-j 1].
     Streams persist for the plan's lifetime, so a retry of the same key
     (supervised re-attempts) continues the key's stream rather than
     replaying its first draw. *)
  p_counts : (int * int option, int) Hashtbl.t;
  (* draws made so far per (point, key): a draw's zero-based index within
     its own stream.  The per-key count — not the global draw count — is
     what identifies a draw as a {!Schedule.site}, so the identity is
     invariant under worker count exactly where the keyed streams are. *)
  p_script : (int * int option * int, unit) Hashtbl.t option;
  (* [Some sites]: scripted mode — a draw fires iff its (point, key,
     index) site is listed; the random streams are never consulted, so a
     schedule replays the same faults regardless of rate or seed. *)
  p_record : bool;
  mutable p_trace : draw list; (* most recent first; only when p_record *)
  mutable p_draws : int;
}

let make_plan ?only ?(record = false) ?script ~seed ~rate () =
  let enabled =
    match only with
    | None -> Array.make npoints true
    | Some pts ->
      let e = Array.make npoints false in
      List.iter (fun pt -> e.(point_index pt) <- true) pts;
      e
  in
  {
    p_seed = seed;
    p_rate = rate;
    p_streams = Array.init npoints (fun i -> Random.State.make [| 0x50f7; seed; i |]);
    p_fired = Array.make npoints 0;
    p_enabled = enabled;
    p_keyed = Hashtbl.create 64;
    p_counts = Hashtbl.create 64;
    p_script = script;
    p_record = record;
    p_trace = [];
    p_draws = 0;
  }

let plan ?only ?record ~seed ~rate () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Chaos.plan: rate must be within [0, 1]";
  make_plan ?only ?record ~seed ~rate ()

let scripted ?only ?record schedule =
  let script = Hashtbl.create 16 in
  List.iter
    (fun (s : Schedule.site) ->
      match point_of_name s.Schedule.s_point with
      | Some pt ->
        Hashtbl.replace script (point_index pt, s.Schedule.s_key, s.Schedule.s_index) ()
      | None ->
        invalid_arg
          (Printf.sprintf "Chaos.scripted: unknown injection point %S"
             s.Schedule.s_point))
    (Schedule.sites schedule);
  make_plan ?only ?record ~script ~seed:0 ~rate:0.0 ()

let is_scripted p = p.p_script <> None

let seed p = p.p_seed
let rate p = p.p_rate
let fired p pt = p.p_fired.(point_index pt)
let total_fired p = Array.fold_left ( + ) 0 p.p_fired

(* The active plan.  Global by design: injection points live in layers
   (runner, crosscheck, solver hook) that share no parameter path.

   Domain-safety contract: [install]/[deactivate] run on the main domain
   *before* any worker domains spawn (and after they join) — the spawn
   establishes the happens-before that lets workers read [active].  The
   draws themselves may then race from several workers, so [fire]
   serializes them under a mutex: [Random.State] and the counters are
   plain mutable state.  Under [-j 1] the schedule is the deterministic
   per-seed pattern; under [-j N] the *interleaving* of draws across
   points depends on scheduling, so only the soundness invariant (faults
   degrade pairs to undecided) is stable — not which pairs fault. *)
let active : plan option ref = ref None

let fire_lock = Mutex.create ()

let install p = active := Some p
let deactivate () = active := None
let current () = !active

(* Decide whether the fault at [pt] fires now; always consumes exactly one
   draw from the point's stream when a plan is active and the point is
   enabled (a masked point neither fires nor draws).  With [~key] the
   draw comes from the point's keyed stream (see [p_keyed]) instead of
   its global one, making the outcome independent of draw interleaving
   across keys. *)
let fire ?key pt =
  match !active with
  | None -> false
  | Some p ->
    let i = point_index pt in
    if not p.p_enabled.(i) then false
    else
      Mutex.protect fire_lock (fun () ->
          p.p_draws <- p.p_draws + 1;
          let index =
            let n = Option.value ~default:0 (Hashtbl.find_opt p.p_counts (i, key)) in
            Hashtbl.replace p.p_counts (i, key) (n + 1);
            n
          in
          let hit =
            match p.p_script with
            | Some script -> Hashtbl.mem script (i, key, index)
            | None ->
              let stream =
                match key with
                | None -> p.p_streams.(i)
                | Some k -> (
                  match Hashtbl.find_opt p.p_keyed (i, k) with
                  | Some s -> s
                  | None ->
                    let s = Random.State.make [| 0x50f7; p.p_seed; i; k |] in
                    Hashtbl.replace p.p_keyed (i, k) s;
                    s)
              in
              Random.State.float stream 1.0 < p.p_rate
          in
          if p.p_record then
            p.p_trace <-
              { d_point = pt; d_key = key; d_index = index; d_fired = hit } :: p.p_trace;
          if hit then p.p_fired.(i) <- p.p_fired.(i) + 1;
          hit)

let fires = fire

(* --- record/replay ---------------------------------------------------- *)

let trace p = Mutex.protect fire_lock (fun () -> List.rev p.p_trace)

let site_of_draw d =
  {
    Schedule.s_point = point_name d.d_point;
    s_key = d.d_key;
    s_index = d.d_index;
  }

let sites p =
  List.sort_uniq Schedule.compare_site (List.map site_of_draw (trace p))

let to_schedule ?meta p =
  Schedule.make ?meta
    (List.filter_map (fun d -> if d.d_fired then Some (site_of_draw d) else None) (trace p))

let maybe_raise ?key pt = if fire ?key pt then raise (Injected_fault (point_name pt))

(* Far beyond any per-query or per-run deadline in use. *)
let clock_jump_seconds = 86400.0

let maybe_clock_jump ?key () =
  if fire ?key Clock_jump then Smt.Mono.advance clock_jump_seconds

(* A hung task: sleep until the watchdog cancels us, then surface the
   cancellation.  Drawn only when a supervision token is installed — an
   unsupervised run has no watchdog, so firing would freeze the worker
   forever and the point would test nothing (it also keeps this point
   invisible, draws included, to every pre-supervision chaos test).  The
   safety cap bounds the sweep tests even if a watchdog dies; the skewed
   clock may cut it short after a clock-jump fault, which is harmless. *)
let hang_safety_cap_s = 30.0

let maybe_hang ?key () =
  match Smt.Cancel.current () with
  | None -> ()
  | Some tok ->
    if fire ?key Hang then begin
      let t0 = Smt.Mono.now () in
      while
        (not (Smt.Cancel.is_cancelled tok))
        && Smt.Mono.elapsed t0 < hang_safety_cap_s
      do
        Unix.sleepf 0.0005
      done;
      Smt.Cancel.check tok
    end

let maybe_truncate_file path =
  if fire Checkpoint_truncate then begin
    let size = (Unix.stat path).Unix.st_size in
    if size > 0 then Unix.truncate path (size / 2)
  end

(* --- durability fault points (WAL / store) ---------------------------- *)

(* The three points below simulate the ways an append-or-rename durability
   protocol actually dies in the field.  They raise {!Injected_fault} so
   the service layer experiences them as a crash — the crash-only recovery
   path is then the *only* code that can make the test pass:

   - [Torn_write]: the caller learns the write tore (it must write only a
     prefix of the record, then treat the append as a crash);
   - [Fsync_fail]: the data may or may not have reached the platter — the
     record is written but the commit must not be acknowledged, so a
     recovery may legitimately find a record the writer never confirmed
     (replay has to be idempotent against these "ghost" commits);
   - [Rename_crash]: the process dies immediately *after* the atomic
     rename publishes a rewrite — recovery sees the new file but none of
     the writer's post-publish bookkeeping. *)

let maybe_torn_write () = fire Torn_write

let maybe_fsync_fail () = if fire Fsync_fail then raise (Injected_fault (point_name Fsync_fail))

let maybe_rename_crash () =
  if fire Rename_crash then raise (Injected_fault (point_name Rename_crash))

(* Deliver solver faults and clock jumps to every query [f] issues that
   reaches the SAT core.  The hook is installed only for the dynamic
   extent of [f] — the crosscheck pair scope — never during path
   exploration (see the soundness contract above).  [~key] routes all
   three draws through keyed streams; the crosscheck keys each scope by
   its pair index so the fault pattern is worker-count-invariant. *)
let with_solver_faults ?key f =
  match !active with
  | None -> f ()
  | Some _ ->
    Smt.Solver.set_query_hook (fun () ->
        maybe_hang ?key ();
        maybe_clock_jump ?key ();
        maybe_raise ?key Solver_fault);
    Fun.protect ~finally:(fun () -> Smt.Solver.set_query_hook (fun () -> ())) f

(* An injected fault recorded as an agent crash path would be observable
   behaviour and could flip a verdict; make the engine re-raise it. *)
let () =
  Symexec.Engine.register_fatal (function Injected_fault _ -> true | _ -> false)

let pp fmt p =
  let fired_list =
    String.concat "; "
      (List.filter_map
         (fun pt ->
           match fired p pt with
           | 0 -> None
           | n -> Some (Printf.sprintf "%s=%d" (point_name pt) n))
         all_points)
  in
  match p.p_script with
  | Some script ->
    Format.fprintf fmt "chaos(scripted sites=%d draws=%d fired=[%s])"
      (Hashtbl.length script) p.p_draws fired_list
  | None ->
    Format.fprintf fmt "chaos(seed=%d rate=%g draws=%d fired=[%s])" p.p_seed p.p_rate
      p.p_draws fired_list
