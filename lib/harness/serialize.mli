(** On-disk interchange format for phase-1 results.  A vendor runs
    {!Runner.execute} privately and ships this file; the crosscheck phase
    consumes only these files — never agent code (paper §2.4). *)

type saved = {
  sv_agent : string;
  sv_test : string;
  sv_paths : (Openflow.Trace.result * Smt.Expr.boolean) list;
}

exception Format_error of string

val of_run : Runner.run -> saved

val to_string : saved -> string
(** The exact bytes {!save} writes.  The service layer stores these in
    its content-addressed store, and their digest is the agent
    fingerprint under which crosscheck verdicts are keyed. *)

val write_channel : out_channel -> saved -> unit
val save : string -> saved -> unit

val of_string : ?what:string -> string -> saved
(** Parse {!to_string}'s output; [what] names the source in error
    messages (default ["<string>"]).
    @raise Format_error on malformed content,
    @raise Smt.Serial.Parse_error on malformed path conditions. *)

val load : string -> saved
(** @raise Format_error on malformed files,
    @raise Smt.Serial.Parse_error on malformed path conditions. *)
