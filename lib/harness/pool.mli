(** A work-stealing domain pool for embarrassingly-parallel task arrays.

    Built on stdlib [Domain]/[Mutex]/[Condition] only.  The task array is
    split into contiguous per-worker blocks; idle workers steal from the
    back of a victim's block, so execution stays close to submission
    order without any worker going idle while work remains.

    The caller's domain never runs tasks — it drains a completion queue
    and runs [on_result] there, serialized.  Parallel crosscheck leans on
    this: its checkpoint writer is the [on_result] callback, so snapshot
    writes never race even at [-j N].

    A task that raises yields a per-task [Error] outcome; the rest of the
    run proceeds.  This is what makes one poisonous solver query cost one
    pair, not the whole batch.  [~fail_fast:true] restores the old
    all-or-nothing contract for callers that prefer a loud crash. *)

type 'b outcome = ('b, exn * Printexc.raw_backtrace) result
(** What became of one task: its value, or the exception (with backtrace)
    that killed it. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val run :
  ?worker_init:(unit -> unit) ->
  ?worker_exit:(unit -> unit) ->
  ?on_result:(int -> 'b outcome -> unit) ->
  ?fail_fast:bool ->
  ?force_pool:bool ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
(** [run ~jobs f tasks] maps [f] over [tasks] on up to [jobs] domains and
    returns the per-task outcomes in task order.

    [worker_init]/[worker_exit] run on each spawned worker domain at its
    start/end — e.g. to seed the worker's solver context from the
    caller's config and to merge its stats back.  [worker_exit] runs even
    when a task raised ([Fun.protect]).

    [on_result i o] runs on the {e caller's} domain, serialized, in
    completion order (not task order) — [i] is the task index.

    [jobs = 1] is a guaranteed sequential fast path: no domain is
    spawned, [worker_init]/[worker_exit] do not run, tasks execute on the
    caller's domain in submission order with [on_result] inline after
    each — exactly the pre-pool sequential behaviour.  [~force_pool:true]
    disables that fast path: even at [jobs = 1] one worker domain is
    spawned and the full coordinator/completion-queue machinery runs —
    the benchmark uses it to measure pure pool scheduling overhead on
    machines without enough cores for a real speedup comparison.

    By default ([fail_fast = false]) a task exception is captured as that
    task's [Error] outcome and every other task still runs.  With
    [~fail_fast:true] the first task exception instead cancels the
    remaining unstarted tasks, every domain is joined, and the exception
    is re-raised with its original backtrace — today's pre-supervision
    semantics.  An exception from [on_result] always cancels outstanding
    work, joins all domains, then propagates.

    @raise Invalid_argument if [jobs < 1]. *)

val run_exn :
  ?worker_init:(unit -> unit) ->
  ?worker_exit:(unit -> unit) ->
  ?on_result:(int -> 'b -> unit) ->
  ?force_pool:bool ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [run ~fail_fast:true] with unwrapped results: returns plain values in
    task order, re-raising the first task exception.  Convenience for
    callers whose tasks cannot fail (or should crash the run if they do). *)
