(** A work-stealing domain pool for embarrassingly-parallel task arrays.

    Built on stdlib [Domain]/[Mutex]/[Condition] only.  The task array is
    split into contiguous per-worker blocks; idle workers steal from the
    back of a victim's block, so execution stays close to submission
    order without any worker going idle while work remains.

    The caller's domain never runs tasks — it drains a completion queue
    and runs [on_result] there, serialized.  Parallel crosscheck leans on
    this: its checkpoint writer is the [on_result] callback, so snapshot
    writes never race even at [-j N]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val run :
  ?worker_init:(unit -> unit) ->
  ?worker_exit:(unit -> unit) ->
  ?on_result:(int -> 'b -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [run ~jobs f tasks] maps [f] over [tasks] on up to [jobs] domains and
    returns the results in task order.

    [worker_init]/[worker_exit] run on each spawned worker domain at its
    start/end — e.g. to seed the worker's solver context from the
    caller's config and to merge its stats back.  [worker_exit] runs even
    when a task raised ([Fun.protect]).

    [on_result i r] runs on the {e caller's} domain, serialized, in
    completion order (not task order) — [i] is the task index.

    [jobs = 1] is a guaranteed sequential fast path: no domain is
    spawned, [worker_init]/[worker_exit] do not run, tasks execute on the
    caller's domain in submission order with [on_result] inline after
    each — exactly the pre-pool sequential behaviour.

    If a task raises, the remaining unstarted tasks are skipped, every
    domain is joined, and the first exception is re-raised with its
    original backtrace.  An exception from [on_result] likewise cancels
    outstanding work, joins all domains, then propagates.

    @raise Invalid_argument if [jobs < 1]. *)
