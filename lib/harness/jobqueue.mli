(** Spool-directory persistent job queue: the submission side of the
    crash-only service.  Submitter and daemon share only the filesystem;
    submissions are atomic single files and survive crashes of either
    side.

    Backpressure is enforced here, statelessly, on the submitter: once
    pending depth reaches the watermark, {!submit} refuses with
    [`Backpressure] instead of growing the queue — no daemon-maintained
    marker that could go stale across a crash. *)

type submitted = {
  sb_id : string;  (** unique per submission (not per payload) *)
  sb_payload : string;
}

val submit :
  ?max_pending:int -> string -> string -> (string, [ `Backpressure of int ]) result
(** [submit dir payload] enqueues one job under the queue rooted at
    [dir]; returns its fresh id, or [`Backpressure depth] when the
    pending count has reached [max_pending] (default 64).  Resubmitting
    an identical payload yields a {e new} id — answering repeats cheaply
    is the result store's job, not the queue's. *)

val pending : string -> submitted list
(** Pending jobs in arrival order.  Torn or corrupt spool files are
    skipped (their checksum fails), never parsed as garbage. *)

val depth : string -> int

val remove : string -> string -> unit
(** [remove dir id] deletes the pending file for [id], if any.  The
    daemon calls this only {e after} journaling the job; a crash in
    between re-offers the file, which the service dedups by id. *)
