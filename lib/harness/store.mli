(** Content-addressed result store: one integrity-checked file per hex
    key, written atomically (temp + fsync + rename).

    The service layer keys phase-1 artefacts by [(agent, scenario hash)]
    and crosscheck verdicts by [(fingerprint A, fingerprint B, scenario
    hash)]; a resubmitted unchanged job is answered entirely from here
    with zero new SAT calls, and an agent-model edit invalidates exactly
    the entries whose fingerprint changed.

    Crash contract: a [put] that did not return may have published the
    entry or not — both are fine, because entries are pure functions of
    their key.  A torn or corrupt entry reads as absent ({!get} verifies
    a checksum), so the worst crash outcome is recomputation, never a
    wrong answer. *)

type t

val open_store : ?fsync:bool -> string -> t
(** Open (creating directories as needed) the store rooted at the given
    directory; sweeps temp-file debris left by crashed writes.  [fsync]
    (default [true]) as in {!Journal.create}. *)

val put : t -> key:string -> string -> unit
(** Durably publish [payload] under [key] (a hex digest string).  May
    raise {!Chaos.Injected_fault} under a fault plan — treat as a crash.
    @raise Invalid_argument on a non-hex key. *)

val get : t -> key:string -> string option
(** The payload published under [key]; [None] if absent, torn or corrupt
    (a failed integrity check is indistinguishable from absence by
    design). *)

val mem : t -> key:string -> bool

val size : t -> int
(** Number of (non-temp) entries on disk. *)
