(* Content-addressed result store for the crash-only service layer.

   One file per key under a flat directory; keys are hex digests computed
   by the caller (the service keys phase-1 artefacts by
   (agent, scenario hash) and crosscheck verdicts by
   (agent fingerprint A, agent fingerprint B, scenario hash)), so a
   resubmitted unchanged job resolves entirely from here and an
   agent-model edit invalidates exactly the partitions whose fingerprint
   changed.

   Durability protocol per [put]:
     write payload (with an integrity header) to a unique temp file in
     the same directory, fsync it, rename over the final name, fsync is
     not required on the directory for our recovery invariants — a lost
     rename just re-derives the entry.
   Readers verify the integrity header; a corrupt or torn entry reads as
   absent, so the worst outcome of any crash is recomputation, never a
   wrong answer served from the store.

   The [Rename_crash] and [Fsync_fail] chaos points fire inside [put],
   surfacing as a crash after/before the publish respectively. *)

type t = {
  s_dir : string;
  s_fsync : bool;
}

let key_re_ok key =
  key <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
       key

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_store ?(fsync = true) dir =
  mkdir_p dir;
  (* abandoned temp files from crashed puts are debris: collect them *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  { s_dir = dir; s_fsync = fsync }

let file_of t key =
  if not (key_re_ok key) then invalid_arg ("Store: malformed key " ^ key);
  Filename.concat t.s_dir key

let put t ~key payload =
  let final = file_of t key in
  let tmp = Printf.sprintf "%s.%d.tmp" final (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "soft-store 1 %s %d\n" (Digest.to_hex (Digest.string payload))
        (String.length payload);
      output_string oc payload;
      flush oc;
      Chaos.maybe_fsync_fail ();
      if t.s_fsync then Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp final;
  Chaos.maybe_rename_crash ()

let get t ~key =
  let file = file_of t key in
  if not (Sys.file_exists file) then None
  else begin
    let content = In_channel.with_open_bin file In_channel.input_all in
    match String.index_opt content '\n' with
    | None -> None
    | Some nl -> (
      let header = String.sub content 0 nl in
      let payload = String.sub content (nl + 1) (String.length content - nl - 1) in
      match String.split_on_char ' ' header with
      | [ "soft-store"; "1"; sum; len ] -> (
        match int_of_string_opt len with
        | Some l
          when l = String.length payload
               && Digest.to_hex (Digest.string payload) = String.lowercase_ascii sum ->
          Some payload
        | _ -> None (* torn or corrupt: absent, recompute *))
      | _ -> None)
  end

let mem t ~key = get t ~key <> None

let size t =
  Array.fold_left
    (fun n f -> if Filename.check_suffix f ".tmp" then n else n + 1)
    0 (Sys.readdir t.s_dir)
