(* Watchdog supervision: a monitor domain + per-task cancellation tokens.

   Division of labour:
   - [Smt.Cancel] (bottom of the stack) owns the token and the poll
     sites: Sat's conflict/decision loop, Bitblast memo misses, Expr
     interning, Interval passes, Session entry.
   - this module owns the *policy*: who gets a token, when it is
     cancelled (deadline scan, memory sweep), what an escape means
     (taxonomy), and the retry ladder.
   - the caller (crosscheck) owns the *consequence*: record the verdict,
     or quarantine the pair after the ladder is exhausted.

   The monitor domain is deliberately dumb: it loops over a registry of
   [(token, deadline)] entries, cancelling what has expired, and samples
   the major heap against the ceiling.  All communication is one atomic
   flag per task — the monitor never touches solver state, so it cannot
   race it.

   Memory pressure is a process-wide event, not a per-task one: the
   monitor bumps a generation counter and cancels every in-flight token
   with [Memory].  Each worker domain compares the generation on its next
   supervised attempt and sheds its own memo cache (per-domain state must
   be shed by its owner; [Gc.major] then actually releases it).  Learnt
   clauses live in the killed attempts' session instances, which become
   garbage with the abort.  Queries killed by the sweep degrade to
   Unknown/quarantine rather than answering wrong — shedding never
   touches a completed verdict. *)

type taxonomy = Hung | Crashed | Oom | Faulted

let taxonomy_to_string = function
  | Hung -> "hung"
  | Crashed -> "crashed"
  | Oom -> "oom"
  | Faulted -> "faulted"

let taxonomy_of_string = function
  | "hung" -> Some Hung
  | "crashed" -> Some Crashed
  | "oom" -> Some Oom
  | "faulted" -> Some Faulted
  | _ -> None

let pp_taxonomy fmt t = Format.pp_print_string fmt (taxonomy_to_string t)

let classify_exn = function
  | Smt.Cancel.Cancelled Smt.Cancel.Deadline ->
    (Hung, "wall-clock deadline exceeded; killed by watchdog")
  | Smt.Cancel.Cancelled Smt.Cancel.Memory ->
    (Oom, "memory ceiling crossed; query degraded")
  | Out_of_memory -> (Oom, "Out_of_memory")
  | Smt.Expr.Node_limit n -> (Oom, Printf.sprintf "expr node limit (%d) reached" n)
  | Chaos.Injected_fault p -> (Faulted, "injected fault: " ^ p)
  | Smt.Solver.Solver_error (msg, _) -> (Crashed, "solver error: " ^ msg)
  | e -> (Crashed, Printexc.to_string e)

type policy = {
  sp_deadline_ms : int option;
  sp_max_retries : int;
  sp_backoff_ms : int list;
  sp_jitter : float;
  sp_mem_ceiling_mb : int option;
}

let policy ?deadline_ms ?(max_retries = 2) ?(backoff_ms = [ 10; 50; 250 ])
    ?(jitter = 0.5) ?mem_ceiling_mb () =
  (match deadline_ms with
  | Some d when d <= 0 -> invalid_arg "Supervise.policy: deadline must be positive"
  | _ -> ());
  if max_retries < 0 then invalid_arg "Supervise.policy: max_retries must be >= 0";
  if backoff_ms = [] || List.exists (fun b -> b < 0) backoff_ms then
    invalid_arg "Supervise.policy: backoff ladder must be non-empty and non-negative";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Supervise.policy: jitter must be within [0, 1]";
  (match mem_ceiling_mb with
  | Some m when m <= 0 -> invalid_arg "Supervise.policy: mem ceiling must be positive"
  | _ -> ());
  { sp_deadline_ms = deadline_ms;
    sp_max_retries = max_retries;
    sp_backoff_ms = backoff_ms;
    sp_jitter = jitter;
    sp_mem_ceiling_mb = mem_ceiling_mb }

type entry = { e_tok : Smt.Cancel.t; e_deadline : float option }

type t = {
  pol : policy;
  reg : (int, entry) Hashtbl.t;
  reg_lock : Mutex.t;
  mutable next_id : int;
  stop : bool Atomic.t;
  (* bumped once per pressure event; workers shed when they lag it *)
  pressure_gen : int Atomic.t;
  pressure_cnt : int Atomic.t;
  (* hysteresis: re-armed only after the heap drops below 80% of the
     ceiling, so one sustained spike is one event, not one per tick *)
  armed : bool Atomic.t;
}

let heap_mb () =
  float_of_int (Gc.quick_stat ()).Gc.heap_words
  *. float_of_int (Sys.word_size / 8)
  /. (1024.0 *. 1024.0)

let register t tok =
  let deadline =
    Option.map
      (fun ms -> Smt.Mono.now () +. (float_of_int ms /. 1000.0))
      t.pol.sp_deadline_ms
  in
  Mutex.protect t.reg_lock (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.reg id { e_tok = tok; e_deadline = deadline };
      id)

let unregister t id = Mutex.protect t.reg_lock (fun () -> Hashtbl.remove t.reg id)

(* Tick at a quarter of the deadline (clamped to [0.5ms, 5ms]): the scan
   itself is a locked iteration over a handful of entries, so ticking fast
   is cheap and bounds the kill latency at deadline + tick << 2x deadline. *)
let tick_interval pol =
  match pol.sp_deadline_ms with
  | Some ms -> Float.max 0.0005 (Float.min 0.005 (float_of_int ms /. 4000.0))
  | None -> 0.005

let monitor_loop t () =
  let tick = tick_interval t.pol in
  while not (Atomic.get t.stop) do
    let now = Smt.Mono.now () in
    Mutex.protect t.reg_lock (fun () ->
        Hashtbl.iter
          (fun _ e ->
            match e.e_deadline with
            | Some d when now >= d -> Smt.Cancel.cancel e.e_tok Smt.Cancel.Deadline
            | _ -> ())
          t.reg);
    (match t.pol.sp_mem_ceiling_mb with
    | None -> ()
    | Some mb ->
      let used = heap_mb () in
      if Atomic.get t.armed then begin
        if used >= float_of_int mb then begin
          Atomic.set t.armed false;
          Atomic.incr t.pressure_cnt;
          Atomic.incr t.pressure_gen;
          Mutex.protect t.reg_lock (fun () ->
              Hashtbl.iter
                (fun _ e -> Smt.Cancel.cancel e.e_tok Smt.Cancel.Memory)
                t.reg)
        end
      end
      else if used < 0.8 *. float_of_int mb then Atomic.set t.armed true);
    Unix.sleepf tick
  done

let with_monitor pol g =
  let t =
    {
      pol;
      reg = Hashtbl.create 64;
      reg_lock = Mutex.create ();
      next_id = 0;
      stop = Atomic.make false;
      pressure_gen = Atomic.make 0;
      pressure_cnt = Atomic.make 0;
      armed = Atomic.make true;
    }
  in
  let needs_monitor = pol.sp_deadline_ms <> None || pol.sp_mem_ceiling_mb <> None in
  if not needs_monitor then g t
  else begin
    let mon = Domain.spawn (monitor_loop t) in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set t.stop true;
        Domain.join mon)
      (fun () -> g t)
  end

let pressure_events t = Atomic.get t.pressure_cnt

(* Per-domain generation of the last shed this domain performed. *)
let shed_gen_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let maybe_shed t =
  let g = Atomic.get t.pressure_gen in
  if g > Domain.DLS.get shed_gen_key then begin
    Domain.DLS.set shed_gen_key g;
    Smt.Solver.clear_cache ();
    Gc.major ()
  end

let run t f =
  maybe_shed t;
  let tok = Smt.Cancel.create () in
  let id = register t tok in
  Smt.Cancel.set_current tok;
  let finish () =
    Smt.Cancel.clear_current ();
    unregister t id
  in
  match f () with
  | v ->
    finish ();
    Ok v
  | exception e ->
    finish ();
    Error (classify_exn e)

(* Backoff with deterministic jitter: the delay for (key, attempt) is a
   pure function, so a resumed or re-run ladder sleeps identically —
   nothing about retry timing perturbs report determinism. *)
let backoff_delay_s pol ~key ~attempt =
  let rec nth_or_last l n =
    match l with
    | [] -> 0 (* unreachable: policy validates non-empty *)
    | [ last ] -> last
    | x :: _ when n = 0 -> x
    | _ :: rest -> nth_or_last rest (n - 1)
  in
  let base = float_of_int (nth_or_last pol.sp_backoff_ms attempt) in
  let st = Random.State.make [| 0xbac0ff; key; attempt |] in
  let u = Random.State.float st 1.0 in
  let factor = 1.0 -. (pol.sp_jitter /. 2.0) +. (u *. pol.sp_jitter) in
  base *. factor /. 1000.0

let run_retrying t ~key f =
  let rec go attempt =
    match run t (fun () -> f ~attempt) with
    | Ok v -> `Done (v, attempt)
    | Error (tax, msg) ->
      if attempt >= t.pol.sp_max_retries then `Quarantine (tax, msg, attempt)
      else begin
        let d = backoff_delay_s t.pol ~key ~attempt in
        if d > 0.0 then Unix.sleepf d;
        go (attempt + 1)
      end
  in
  go 0
