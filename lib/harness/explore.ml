(* Fault-schedule exploration (see the .mli).  The driver owns plan
   lifecycle — install a scripted plan, run the workload, deactivate —
   and nothing else: workloads clean up their own side effects, oracles
   are pure functions of observations.  Every run here is deterministic,
   so a violation found by any strategy replays from its schedule
   alone. *)

type 'a workload = {
  w_name : string;
  w_run : unit -> 'a;
  w_oracle : baseline:'a -> 'a -> string list;
}

type violation = {
  v_schedule : Schedule.t;
  v_messages : string list;
  v_minimal : Schedule.t option;
  v_shrink_tests : int;
}

type stats = {
  x_sites : int;
  x_schedules : int;
  x_violations : int;
  x_shrink_tests : int;
}

type 'a outcome = {
  o_baseline : 'a;
  o_sites : Schedule.site list;
  o_violations : violation list;
  o_stats : stats;
}

let under_plan plan f =
  Chaos.install plan;
  Fun.protect ~finally:(fun () -> Chaos.deactivate ()) f

let discover w =
  (* a recording plan that never fires: the run is the fault-free
     baseline, and its trace is the complete draw-site universe *)
  let plan = Chaos.plan ~record:true ~seed:0 ~rate:0.0 () in
  let baseline = under_plan plan w.w_run in
  (baseline, Chaos.sites plan)

let check_schedule w ~baseline schedule =
  match under_plan (Chaos.scripted schedule) w.w_run with
  | obs -> w.w_oracle ~baseline obs
  | exception Chaos.Injected_fault p ->
    [ Printf.sprintf "injected fault (%s) escaped the workload uncontained" p ]
  | exception exn ->
    [ Printf.sprintf "workload raised %s" (Printexc.to_string exn) ]

(* --- strategies ------------------------------------------------------- *)

let singles sites = List.map (fun s -> Schedule.make [ s ]) sites

let pairs ?budget sites =
  let sites = Array.of_list sites in
  let n = Array.length sites in
  let cap = Option.value ~default:max_int budget in
  let out = ref [] in
  let count = ref 0 in
  (try
     for i = 0 to n - 2 do
       for j = i + 1 to n - 1 do
         if !count >= cap then raise Exit;
         out := Schedule.make [ sites.(i); sites.(j) ] :: !out;
         incr count
       done
     done
   with Exit -> ());
  List.rev !out

let randoms ~seed ~density ~count sites =
  let sites = Array.of_list sites in
  let n = Array.length sites in
  if n = 0 || density < 1 || count < 1 then []
  else
    let rng = Random.State.make [| 0x5eed; seed |] in
    List.init count (fun _ ->
        (* draw [density] indices with replacement; Schedule.make dedups,
           so the effective density is bounded, not exact *)
        Schedule.make (List.init (min density n) (fun _ -> sites.(Random.State.int rng n))))

(* --- ddmin ------------------------------------------------------------ *)

(* Split [l] into [n] contiguous chunks, the first ones one element
   longer when the length does not divide evenly. *)
let chunk n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i >= n then List.rev acc
    else
      let take = base + if i < extra then 1 else 0 in
      let rec split k l acc' =
        if k = 0 then (List.rev acc', l)
        else match l with [] -> (List.rev acc', []) | x :: tl -> split (k - 1) tl (x :: acc')
      in
      let c, rest' = split take rest [] in
      go (i + 1) rest' (c :: acc)
  in
  go 0 l [] |> List.filter (fun c -> c <> [])

(* Zeller–Hildebrandt ddmin on the fired-site list.  [fails] must hold
   for [sites]; on return, [fails] holds for the result and fails for no
   single-site removal of it (1-minimality): the loop only terminates at
   granularity n = |sites| after every complement — each the set minus
   one element — passed. *)
let ddmin ~fails sites =
  let tests = ref 0 in
  let fails l =
    incr tests;
    fails l
  in
  let rec go sites n =
    let len = List.length sites in
    if len <= 1 then sites
    else begin
      let chunks = chunk n sites in
      match List.find_opt fails chunks with
      | Some c -> go c 2
      | None -> (
        let complement i = List.concat (List.filteri (fun j _ -> j <> i) chunks) in
        let rec try_complements i =
          if i >= List.length chunks then None
          else
            let c = complement i in
            if fails c then Some c else try_complements (i + 1)
        in
        (* at n = 2 a complement is the other chunk, already tested *)
        match (if n = 2 then None else try_complements 0) with
        | Some c -> go c (max (n - 1) 2)
        | None -> if n >= len then sites else go sites (min (2 * n) len))
    end
  in
  let minimal = go sites 2 in
  (minimal, !tests)

let shrink w ~baseline schedule =
  let meta = Schedule.meta_all schedule in
  let fails sites = check_schedule w ~baseline (Schedule.make ~meta sites) <> [] in
  if not (fails (Schedule.sites schedule)) then None
  else
    let minimal, tests = ddmin ~fails (Schedule.sites schedule) in
    (* the initial confirmation counts too *)
    Some (Schedule.make ~meta minimal, tests + 1)

(* --- the driver ------------------------------------------------------- *)

let take n l =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: tl -> go (n - 1) (x :: acc) tl
  in
  go n [] l

let explore ?(max_schedules = 256) ?(faults_per_schedule = 2) ?(seed = 0)
    ?(shrink = true) ?(log = fun _ -> ()) w =
  if max_schedules < 1 then invalid_arg "Explore.explore: max_schedules must be positive";
  if faults_per_schedule < 1 then
    invalid_arg "Explore.explore: faults_per_schedule must be positive";
  let do_shrink = shrink in
  let baseline, sites = discover w in
  log (Printf.sprintf "%s: discovered %d draw site(s)" w.w_name (List.length sites));
  let candidates =
    let s = singles sites in
    let budget_after_singles = max 0 (max_schedules - List.length s) in
    let p =
      if faults_per_schedule >= 2 then pairs ~budget:budget_after_singles sites else []
    in
    let r =
      if faults_per_schedule > 2 then
        randoms ~seed ~density:faults_per_schedule
          ~count:(max 0 (budget_after_singles - List.length p))
          sites
      else []
    in
    take max_schedules (s @ p @ r)
  in
  if List.length candidates = max_schedules then
    log
      (Printf.sprintf "%s: candidate set capped at %d schedule(s)" w.w_name max_schedules);
  let violations = ref [] in
  let run = ref 0 in
  List.iter
    (fun schedule ->
      incr run;
      match check_schedule w ~baseline schedule with
      | [] -> ()
      | messages ->
        log
          (Printf.sprintf "%s: schedule %d/%d violates: %s" w.w_name !run
             (List.length candidates) (String.concat "; " messages));
        let minimal, shrink_tests =
          if do_shrink then
            match
              let minimal, tests =
                ddmin
                  ~fails:(fun sites ->
                    check_schedule w ~baseline
                      (Schedule.make ~meta:(Schedule.meta_all schedule) sites)
                    <> [])
                  (Schedule.sites schedule)
              in
              (Schedule.make ~meta:(Schedule.meta_all schedule) minimal, tests)
            with
            | m, t -> (Some m, t)
          else (None, 0)
        in
        violations :=
          { v_schedule = schedule; v_messages = messages; v_minimal = minimal; v_shrink_tests = shrink_tests }
          :: !violations)
    candidates;
  let violations = List.rev !violations in
  {
    o_baseline = baseline;
    o_sites = sites;
    o_violations = violations;
    o_stats =
      {
        x_sites = List.length sites;
        x_schedules = List.length candidates;
        x_violations = List.length violations;
        x_shrink_tests = List.fold_left (fun a v -> a + v.v_shrink_tests) 0 violations;
      };
  }
