(** Append-only, checksummed, fsync-on-commit write-ahead log — the
    durability substrate of the crash-only service layer.

    Records are arbitrary strings (binary-safe; escaped on disk), one per
    line, each carrying its own MD5.  [append] returns only once the
    record is flushed and fsynced, so a record the caller acted on is
    durable.  Recovery is a pure replay: {!scan} verifies records left to
    right and stops at the first line it cannot trust — a crash mid-append
    costs exactly the torn record, never earlier history.

    Two non-obvious crash contracts consumers must honour:
    - {e ghost commits}: a failed fsync (or a crash between flush and
      fsync acknowledgment) can leave a record durable even though
      [append] raised — replay consumers must be idempotent;
    - {e torn-tail containment}: verification discards everything from
      the first bad line onward, even later lines that would individually
      verify; an append-only writer can only tear the tail, so such lines
      are debris, not history.

    Fault injection: {!Chaos.Torn_write}, {!Chaos.Fsync_fail} and
    {!Chaos.Rename_crash} fire inside {!append}/{!rewrite} and surface as
    {!Chaos.Injected_fault} — the caller experiences a crash and must come
    back through {!create}'s recovery path. *)

type t
(** An open append handle. *)

val create : ?fsync:bool -> string -> t
(** Open [path] for appending, creating it (with the format header) if
    missing.  If the existing file ends in a torn or corrupt tail, the
    tail is truncated away first so subsequent appends start at a record
    boundary.  [fsync] (default [true]) controls whether each commit is
    fsynced; turning it off is for tests and benchmarks only. *)

val path : t -> string

val append : t -> string -> unit
(** Commit one record durably.  On return the record is flushed and (with
    [fsync]) synced.  May raise {!Chaos.Injected_fault} under an active
    fault plan — treat exactly like a crash: drop the handle and recover
    via {!create}. *)

val close : t -> unit

val scan : string -> string list * int
(** [scan path] replays the journal without touching it: the verified
    records in append order, plus the byte offset at which verification
    stopped (the length of the trustworthy prefix).  A missing file or an
    unrecognizable header is [([], 0)]. *)

val replay : string -> string list
(** [fst (scan path)]. *)

val rewrite : ?fsync:bool -> string -> string list -> unit
(** Atomically replace the journal at [path] with exactly [records]
    (compaction): write a sibling temp file, fsync, rename over the log.
    A crash at any instant leaves exactly one intact journal visible —
    the old or the new, never a mix. *)
