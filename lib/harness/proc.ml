(* Child-process supervision for the switch-under-test: see proc.mli.

   The child runs under [/bin/sh -c] in its own process group (via
   [setsid] when available) so [stop] can drain the whole tree: SIGTERM
   first, a bounded grace period, then SIGKILL.  All waiting is
   WNOHANG-polled — nothing here blocks past its deadline. *)

type status = Running | Exited of int | Signaled of int

let status_descr = function
  | Running -> "running"
  | Exited c -> Printf.sprintf "exited with code %d" c
  | Signaled s -> Printf.sprintf "killed by signal %d" s

type t = {
  p_cmd : string;
  p_pid : int;
  mutable p_status : status; (* sticky once the child is reaped *)
}

let cmd p = p.p_cmd
let pid p = p.p_pid

let spawn command =
  (* [setsid] puts the shell (and everything it starts) in a fresh
     process group, so the negative-pid kill in [stop] drains the tree. *)
  let pid =
    Unix.create_process "/bin/sh"
      [|
        "/bin/sh"; "-c";
        "if command -v setsid >/dev/null 2>&1; then exec setsid sh -c \"$0\"; \
         else exec sh -c \"$0\"; fi";
        command;
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  { p_cmd = command; p_pid = pid; p_status = Running }

let poll p =
  match p.p_status with
  | Exited _ | Signaled _ -> p.p_status
  | Running ->
    (match Unix.waitpid [ Unix.WNOHANG ] p.p_pid with
     | 0, _ -> Running
     | _, Unix.WEXITED c ->
       p.p_status <- Exited c;
       p.p_status
     | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
       p.p_status <- Signaled s;
       p.p_status
     | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
       (* Someone else reaped it; the precise code is gone. *)
       p.p_status <- Exited 0;
       p.p_status)

let alive p = poll p = Running

let kill_group p signal =
  (* Try the process group first (setsid succeeded), then the child
     itself: one of the two exists until the child is reaped. *)
  (try Unix.kill (-p.p_pid) signal with Unix.Unix_error _ -> ());
  try Unix.kill p.p_pid signal with Unix.Unix_error _ -> ()

let wait_dead p deadline =
  let rec go () =
    match poll p with
    | (Exited _ | Signaled _) as st -> Some st
    | Running ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Unix.sleepf 0.01;
        go ()
      end
  in
  go ()

let stop ?(grace_ms = 500) p =
  match poll p with
  | (Exited _ | Signaled _) as st -> st
  | Running ->
    kill_group p Sys.sigterm;
    (match wait_dead p (Unix.gettimeofday () +. (float_of_int grace_ms /. 1000.0)) with
     | Some st -> st
     | None ->
       kill_group p Sys.sigkill;
       (* SIGKILL cannot be ignored; the second wait is just reaping. *)
       (match wait_dead p (Unix.gettimeofday () +. 5.0) with
        | Some st -> st
        | None -> poll p))

let wait_ready ?(timeout_ms = 5000) ?(interval_ms = 20) p probe =
  let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.0) in
  let rec go () =
    if not (alive p) then false
    else if (try probe () with _ -> false) then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf (float_of_int interval_ms /. 1000.0);
      go ()
    end
  in
  go ()

(* Same backoff discipline as Supervise.run_retrying: the ladder's last
   entry repeats, and the jitter factor for attempt [n] is drawn from a
   stream seeded by [(key, n)] so a rerun restarts on the same schedule. *)
let backoff_sleep ladder jitter key attempt =
  let rec nth_or_last l n =
    match l with
    | [] -> 0
    | [ x ] -> x
    | x :: rest -> if n = 0 then x else nth_or_last rest (n - 1)
  in
  let step = nth_or_last ladder attempt in
  if step > 0 then begin
    let st = Random.State.make [| 0x9b0c; key; attempt |] in
    let factor = 1.0 +. (jitter *. ((2.0 *. Random.State.float st 1.0) -. 1.0)) in
    Unix.sleepf (float_of_int step *. Float.max 0.0 factor /. 1000.0)
  end

let start_supervised ?(restarts = 2) ?(backoff_ms = [ 100; 400; 1600 ]) ?(jitter = 0.5)
    ?(readiness_timeout_ms = 5000) ?(key = 0) command ~ready =
  let attempt_once () =
    let p = spawn command in
    if wait_ready ~timeout_ms:readiness_timeout_ms p ready then Ok p
    else begin
      let classification =
        match stop p with
        | Running -> (Supervise.Hung, "switch process never became ready")
        | Exited c when c <> 0 ->
          (Supervise.Crashed, Printf.sprintf "switch process exited with code %d before ready" c)
        | Exited _ ->
          (Supervise.Crashed, "switch process exited before becoming ready")
        | Signaled s ->
          if s = Sys.sigterm || s = Sys.sigkill then
            (* our own drain killed it: the probe timed out on a live child *)
            (Supervise.Hung,
             Printf.sprintf "switch process unready after %d ms (drained)" readiness_timeout_ms)
          else (Supervise.Crashed, Printf.sprintf "switch process killed by signal %d" s)
      in
      Error classification
    end
  in
  let rec go attempt last =
    if attempt > restarts then Error last
    else
      match attempt_once () with
      | Ok p -> Ok p
      | Error cls ->
        if attempt = restarts then Error cls
        else begin
          backoff_sleep backoff_ms jitter key attempt;
          go (attempt + 1) cls
        end
  in
  go 0 (Supervise.Hung, "switch process never attempted")

let classify_transport = function
  | Openflow.Conn.Timeout msg -> (Supervise.Hung, "transport timeout: " ^ msg)
  | Openflow.Conn.Peer_fault msg -> (Supervise.Crashed, "transport fault: " ^ msg)
  | e -> Supervise.classify_exn e
