(** Explicit fault schedules: the record/replay currency of deterministic
    fault exploration.

    A {!Chaos} plan in Bernoulli mode decides each draw by a seeded coin;
    a {e schedule} instead names the exact draws that must fire.  A draw
    is identified by its {e site} — the injection point, the optional
    stream key (the crosscheck keys pair-scoped draws by pair index), and
    the zero-based index of the draw within that (point, key) stream.
    Because keyed draw indices count per key — not globally — a site is
    invariant under worker count and scheduling, which is what lets a
    schedule recorded at [-j 1] replay byte-identically at [-j 4].

    Schedules serialize to a compact line-oriented text format used for
    committed repro files:

    {v
    soft-schedule 1
    meta workload cs_flow_mods
    meta seed 7
    s solver-fault 3 0
    s torn-write - 2
    sum <md5-hex of every preceding line>
    v}

    Site lines are emitted in sorted order and deduplicated, so equal
    schedules serialize to equal bytes; the [sum] trailer (the same
    idiom as checkpoints and the WAL) rejects truncated or edited files
    instead of silently replaying the wrong fault pattern. *)

type site = {
  s_point : string;  (** a {!Chaos.point_name} *)
  s_key : int option;  (** keyed-stream key, [None] for the global stream *)
  s_index : int;  (** zero-based draw index within the (point, key) stream *)
}

val compare_site : site -> site -> int
(** Total order: point name, then key ([None] first), then index. *)

val pp_site : Format.formatter -> site -> unit

type t

val make : ?meta:(string * string) list -> site list -> t
(** Build a schedule; sites are sorted and deduplicated.  [meta] carries
    free-form provenance (workload name, originating seed, expectation) —
    keys must be nonempty and contain no spaces or newlines; values may
    be arbitrary bytes.
    @raise Invalid_argument on a malformed meta key or an empty site
    point name. *)

val sites : t -> site list
(** In sorted order. *)

val cardinal : t -> int
val mem : t -> site -> bool

val meta : t -> string -> string option
(** First binding of the key, if any. *)

val meta_all : t -> (string * string) list

val with_meta : (string * string) list -> t -> t
(** Replace the schedule's metadata (sites unchanged). *)

val to_string : t -> string
(** The canonical text form, [sum] trailer included.  Equal schedules
    with equal metadata render to equal bytes. *)

val of_string : string -> (t, string) result
(** Parse {!to_string}'s format.  Any defect — bad magic, malformed
    line, unparsable site, checksum mismatch — is an [Error] naming the
    offending line; a repro file is either trusted whole or not at all. *)

val save : string -> t -> unit
(** Write {!to_string} to a file (via a temp sibling and atomic rename). *)

val load : string -> (t, string) result
(** Read and {!of_string} a file; a missing file is an [Error]. *)

val pp : Format.formatter -> t -> unit
