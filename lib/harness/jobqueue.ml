(* Spool-directory job queue: the submission side of the crash-only
   service.

   [submit] and the daemon share nothing but the filesystem, so a
   submission survives any crash of either side and needs no daemon to be
   alive.  Each job is one file in <dir>/pending/, written atomically
   (temp + rename in the same directory), named

     <zero-padded microsecond timestamp>-<job id>.job

   so a plain lexicographic sort of filenames is arrival order.  The job
   id is a digest of the payload plus a per-process nonce: resubmitting
   an identical job gets a fresh id (it is a new piece of work — that it
   will be answered from the result store is the service's business, not
   the queue's).

   Backpressure lives here, on the submitter: when pending depth has
   reached the watermark, [submit] refuses with [`Backpressure] instead
   of growing the queue without bound.  This is deliberately submit-side
   and stateless — it needs no daemon-maintained marker that could go
   stale across a crash, which is the crash-only way.

   The daemon removes a pending file only after journaling the job; a
   crash between journal append and file removal re-offers the file on
   the next boot, which the service dedups by id.  File contents carry a
   checksum header so a torn pending file (crash mid-rename on a weird
   filesystem) is detected and skipped rather than parsed as garbage. *)

type submitted = {
  sb_id : string;
  sb_payload : string;
}

let pending_dir dir = Filename.concat dir "pending"

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let job_files dir =
  let pd = pending_dir dir in
  if not (Sys.file_exists pd) then []
  else
    Sys.readdir pd |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".job")
    |> List.sort compare

let depth dir = List.length (job_files dir)

let nonce = ref 0

let submit ?(max_pending = 64) dir payload =
  let pd = pending_dir dir in
  mkdir_p pd;
  let d = depth dir in
  if d >= max_pending then Error (`Backpressure d)
  else begin
    incr nonce;
    let id =
      String.sub
        (Digest.to_hex
           (Digest.string
              (Printf.sprintf "%s\x00%f\x00%d\x00%d" payload (Unix.gettimeofday ())
                 (Unix.getpid ()) !nonce)))
        0 16
    in
    let name = Printf.sprintf "%020.0f-%s.job" (Unix.gettimeofday () *. 1e6) id in
    let final = Filename.concat pd name in
    let tmp = final ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc "soft-job 1 %s\n" (Digest.to_hex (Digest.string payload));
        output_string oc payload;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp final;
    Ok id
  end

(* id is embedded in the filename between the '-' and the extension *)
let id_of_file f =
  let base = Filename.chop_suffix f ".job" in
  match String.index_opt base '-' with
  | Some i -> String.sub base (i + 1) (String.length base - i - 1)
  | None -> base

let pending dir =
  List.filter_map
    (fun f ->
      let file = Filename.concat (pending_dir dir) f in
      match In_channel.with_open_bin file In_channel.input_all with
      | content -> (
        match String.index_opt content '\n' with
        | None -> None (* torn: skip, never parse garbage *)
        | Some nl -> (
          let header = String.sub content 0 nl in
          let payload = String.sub content (nl + 1) (String.length content - nl - 1) in
          match String.split_on_char ' ' header with
          | [ "soft-job"; "1"; sum ]
            when Digest.to_hex (Digest.string payload) = String.lowercase_ascii sum ->
            Some { sb_id = id_of_file f; sb_payload = payload }
          | _ -> None))
      | exception Sys_error _ -> None (* raced with a concurrent remove *))
    (job_files dir)

let remove dir id =
  List.iter
    (fun f ->
      if id_of_file f = id then
        try Sys.remove (Filename.concat (pending_dir dir) f) with Sys_error _ -> ())
    (job_files dir)
