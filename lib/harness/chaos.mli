(** Deterministic internal fault injection.

    A seeded {!plan} decides, at five keyed injection points, whether a
    fault fires: a solver query raising, an agent input step raising, a
    checkpoint file truncating right after its write, the monotonic
    clock jumping past every deadline, and a solver task hanging until
    the supervision watchdog kills it.  Each point draws from its own
    stream seeded from [(seed, point)], so one point's schedule does not
    shift another's and a seed reproduces the exact fault pattern.

    Soundness contract (asserted by the chaos test): injected faults may
    only ever move crosscheck pairs to undecided — never flip a verdict.
    {!Injected_fault} is registered as engine-fatal so an agent-step
    fault aborts a run loudly instead of masquerading as agent behaviour,
    and solver faults/clock jumps are delivered only inside the
    crosscheck pair scope ({!with_solver_faults}). *)

exception Injected_fault of string
(** Carries the injection point's name.  Registered with
    {!Symexec.Engine.register_fatal}: never recorded as a crash path. *)

type point =
  | Solver_fault
  | Agent_step
  | Checkpoint_truncate
  | Clock_jump
  | Hang
      (** a solver task stalls until the supervision watchdog cancels it;
          drawn only when a {!Smt.Cancel} token is installed (i.e. under
          supervision), so unsupervised runs can never freeze *)
  | Torn_write
      (** a WAL append writes only a prefix of the record and then the
          process "dies" ({!Injected_fault}); recovery must discard the
          torn tail *)
  | Fsync_fail
      (** an fsync fails after the bytes were written: the commit is not
          acknowledged but the record may still be durable, so recovery
          may find commits the writer never confirmed *)
  | Rename_crash
      (** the process dies right after an atomic rename published a store
          write or a WAL rewrite — the new file is visible, none of the
          writer's post-publish bookkeeping happened *)
  | Torn_frame
      (** a live-wire send cuts the frame mid-write and loses the socket —
          the peer sees a truncated OpenFlow message followed by EOF *)
  | Conn_reset
      (** the live-wire socket resets under the caller, as if the peer
          closed or the network dropped the connection *)
  | Read_stall
      (** a live-wire receive stalls past its deadline: the peer is alive
          at TCP level but stops sending bytes *)

val point_name : point -> string
val all_points : point list

val point_of_name : string -> point option
(** Inverse of {!point_name} — lets the CLI's [--chaos-points] flag name
    the points of an [?only] mask. *)

val transport_points : point list
(** The live-wire transport faults ([Torn_frame]; [Conn_reset];
    [Read_stall]).  Unlike the durability points these never raise
    {!Injected_fault}: {!Openflow.Conn} draws them and surfaces each as
    the contained transport failure it models, so the invariant under
    test is degrade-to-transport-failed, not abort. *)

type plan

val plan : ?only:point list -> ?record:bool -> seed:int -> rate:float -> unit -> plan
(** A fault plan firing each point's draws independently with probability
    [rate].  [only] restricts the plan to the listed points: a masked
    point never fires and never draws, and since every point has its own
    stream, masking cannot shift another point's schedule (the service
    byte-identity tests rely on this to inject durability faults without
    perturbing solver verdicts).  [record] (default false) traces every
    draw the plan makes — fired or not — so the run converts to an
    explicit {!Schedule.t} afterwards (see {!trace}, {!to_schedule}).
    @raise Invalid_argument if [rate] is outside [[0, 1]]. *)

val scripted : ?only:point list -> ?record:bool -> Schedule.t -> plan
(** A schedule-driven plan: a draw fires iff its (point, key, index) site
    is listed in the schedule; the seeded random streams are never
    consulted.  A draw's index counts within its own (point, key) stream
    — the same per-key discipline that makes keyed Bernoulli draws
    worker-count-invariant — so a schedule recorded from a seeded run
    replays the identical fault pattern at any [-j].  Sites the run never
    reaches simply never fire.
    @raise Invalid_argument if a site names an unknown injection point. *)

val is_scripted : plan -> bool

val install : plan -> unit
(** Make [plan] the process-wide active plan.  Must be called on the main
    domain before any crosscheck worker domains spawn (the CLI installs it
    at startup): workers read the active plan through the happens-before
    edge of their spawn.  Draws from concurrent workers are serialized
    internally.  Unkeyed draws under [-j N > 1] interleave by scheduling,
    so only the degrade-to-undecided invariant is stable for them; keyed
    draws (see {!maybe_raise}) are scheduling-invariant, which is how the
    crosscheck keeps a chaos report byte-identical at every [-j]. *)

val deactivate : unit -> unit
val current : unit -> plan option

val seed : plan -> int
val rate : plan -> float

val fired : plan -> point -> int
(** How often this point's fault has fired so far. *)

val total_fired : plan -> int

val maybe_raise : ?key:int -> point -> unit
(** Draw at [point]; raise {!Injected_fault} if the fault fires.  A no-op
    when no plan is active.  With [~key] the draw comes from a stream
    seeded by [(seed, point, key)] instead of the point's global stream:
    whether it fires depends only on how many draws {e that key} has
    made, not on the interleaving of other keys' draws — which makes a
    keyed fault pattern invariant under worker count and scheduling.
    Keyed streams persist for the plan's lifetime, so retries of the
    same key continue its stream. *)

val maybe_clock_jump : ?key:int -> unit -> unit
(** Draw at [Clock_jump]; on fire, {!Smt.Mono.advance} the clock a day. *)

val maybe_hang : ?key:int -> unit -> unit
(** Draw at [Hang] — but only when the calling domain carries a
    {!Smt.Cancel} token; a no-op otherwise (no draw consumed).  On fire,
    sleep until the watchdog cancels the token (safety-capped), then raise
    the cancellation.  Exercises the preemptive-kill path end to end. *)

val maybe_truncate_file : string -> unit
(** Draw at [Checkpoint_truncate]; on fire, truncate the file to half its
    size — simulating a write cut down mid-file. *)

val fires : ?key:int -> point -> bool
(** Draw at [point] and report whether the fault fires, without raising.
    [false] when no plan is active or the point is masked (no draw
    consumed then).  For callers that must stage a fault themselves —
    the WAL uses it to write a deliberately torn record. *)

val maybe_torn_write : unit -> bool
(** Draw at [Torn_write].  [true] tells the caller to write only a prefix
    of the record and then raise {!Injected_fault} as if killed mid-write. *)

val maybe_fsync_fail : unit -> unit
(** Draw at [Fsync_fail]; on fire raise {!Injected_fault} {e before} the
    fsync — the bytes are in the file, the commit is unacknowledged. *)

val maybe_rename_crash : unit -> unit
(** Draw at [Rename_crash]; on fire raise {!Injected_fault} {e after} the
    caller's rename — the publish happened, the crash eats everything
    after it. *)

val with_solver_faults : ?key:int -> (unit -> 'a) -> 'a
(** Run a thunk with solver faults, clock jumps and hangs delivered to
    every query reaching the SAT core (via {!Smt.Solver.set_query_hook}); the
    hook is removed on exit.  Crosscheck wraps each pair decision in
    this, keyed by the pair's index ([~key] routes all three draws
    through keyed streams — see {!maybe_raise}) so the chaos fault
    pattern is identical at every [-j]; the engine's exploration phase
    must never be wrapped. *)

(** {2 Record/replay}

    With [~record:true] the plan logs every draw it makes, fired or not.
    The fired subset converts to an explicit {!Schedule.t} that replays
    the run's exact fault pattern under {!scripted}; the full trace is
    the draw-site universe an exploration driver enumerates over
    ({!Explore}). *)

type draw = {
  d_point : point;
  d_key : int option;
  d_index : int;  (** zero-based position within the (point, key) stream *)
  d_fired : bool;
}

val trace : plan -> draw list
(** Every draw the plan has made, in draw order.  Empty unless the plan
    was created with [~record:true]. *)

val sites : plan -> Schedule.site list
(** The distinct draw sites of {!trace} (fired or not), sorted — the
    site universe a systematic exploration enumerates. *)

val to_schedule : ?meta:(string * string) list -> plan -> Schedule.t
(** The fired draws of {!trace} as an explicit schedule: replaying it
    with {!scripted} reproduces this run's fault pattern exactly. *)

val pp : Format.formatter -> plan -> unit
