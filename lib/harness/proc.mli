(** Child-process supervision for a switch-under-test.

    The live-wire layer replays witnesses against a {e real} process, and
    real processes die: they crash on an input, hang on startup, or get
    killed under the replay.  This module owns that lifecycle — spawn,
    readiness probe, exit/crash detection, graceful SIGTERM-then-SIGKILL
    drain, and a restart ladder with the same capped-backoff +
    deterministic-jitter discipline as {!Supervise.run_retrying} — and
    classifies every failure into the existing {!Supervise.taxonomy}, so
    a dead switch degrades pairs exactly like a dead solver task. *)

type status =
  | Running
  | Exited of int  (** exit code *)
  | Signaled of int  (** killing signal number *)

val status_descr : status -> string

type t

val cmd : t -> string
val pid : t -> int

val spawn : string -> t
(** Start [cmd] under [/bin/sh -c] with a fresh process group, stdio
    inherited.  Never raises for a bad command — that surfaces as a
    prompt [Exited _] from {!poll}. *)

val poll : t -> status
(** Non-blocking status; reaps the child once on transition. *)

val alive : t -> bool

val stop : ?grace_ms:int -> t -> status
(** Drain: SIGTERM to the process group, wait up to [grace_ms] (default
    500), then SIGKILL.  Idempotent; returns the final status. *)

val wait_ready : ?timeout_ms:int -> ?interval_ms:int -> t -> (unit -> bool) -> bool
(** Poll a readiness probe (e.g. "does the socket connect?") until it
    holds, the child dies, or [timeout_ms] (default 5000) passes.
    Returns whether the probe ever held. *)

val start_supervised :
  ?restarts:int ->
  ?backoff_ms:int list ->
  ?jitter:float ->
  ?readiness_timeout_ms:int ->
  ?key:int ->
  string ->
  ready:(unit -> bool) ->
  (t, Supervise.taxonomy * string) result
(** The restart ladder: spawn, probe readiness, and on failure stop the
    remnant and retry up to [restarts] (default 2) more times, sleeping
    the [backoff_ms] ladder (default [[100; 400; 1600]], last entry
    repeats) scaled by deterministic jitter seeded from [(key, attempt)].
    The error carries the {e last} attempt's classification: a readiness
    timeout with the child still alive is [Hung]; a dead child is
    [Crashed]. *)

val classify_transport : exn -> Supervise.taxonomy * string
(** Fold live-wire failures into the supervision taxonomy:
    {!Openflow.Conn.Timeout} is [Hung] (the peer went silent),
    {!Openflow.Conn.Peer_fault} is [Crashed] (the peer misbehaved or
    died), and everything else defers to {!Supervise.classify_exn}
    (which keeps {!Chaos.Injected_fault} as [Faulted]). *)
