(* A small work-stealing domain pool — stdlib [Domain]/[Mutex]/[Condition]
   only, no dependencies.

   Shape: the task array is split into contiguous blocks, one per worker
   domain; each worker owns a deque of task indices and pops from its
   front, and an idle worker steals from the *back* of a victim's deque.
   Contiguous blocks + front-first popping keep each worker close to the
   caller's submission order (crosscheck's row-major pair order), which
   matters for cache-warm solver prefixes; back-stealing keeps thieves
   and owners off the same end.  Every deque operation is a few loads
   under that deque's own mutex — the tasks here are solver queries that
   run for micro- to milliseconds, so a nanoseconds-scale lock is not the
   bottleneck and buys obvious correctness over a lock-free Chase-Lev.

   All tasks are known up front (no task spawns tasks), so a worker
   terminates as soon as its own deque and every victim's deque are
   empty.

   The caller's domain never executes tasks: it is the *coordinator*,
   draining a completion queue and running the [on_result] callback —
   giving parallel crosscheck its single serialized checkpoint writer for
   free.  Results are delivered to [on_result] in completion order;
   [run]'s return value is always in task order.

   Failure containment: a task exception becomes that task's [Error]
   outcome and the run continues — one poisonous query costs one slot,
   not the batch.  Under [~fail_fast:true] the first exception instead
   cancels the rest of the run (remaining tasks are skipped, not killed
   mid-flight) and is re-raised from [run] with its original backtrace,
   after every domain has been joined — no domain is ever leaked, even
   when [on_result] itself raises. *)

type 'b outcome = ('b, exn * Printexc.raw_backtrace) result

type deque = {
  buf : int array; (* task indices, a contiguous block *)
  mutable head : int; (* owner pops here *)
  mutable tail : int; (* thieves steal here; empty iff head >= tail *)
  lock : Mutex.t;
}

let pop_own d =
  Mutex.protect d.lock (fun () ->
      if d.head < d.tail then begin
        let i = d.buf.(d.head) in
        d.head <- d.head + 1;
        Some i
      end
      else None)

let steal d =
  Mutex.protect d.lock (fun () ->
      if d.head < d.tail then begin
        d.tail <- d.tail - 1;
        Some d.buf.(d.tail)
      end
      else None)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run ?(worker_init = fun () -> ()) ?(worker_exit = fun () -> ())
    ?(on_result = fun _ _ -> ()) ?(fail_fast = false) ?(force_pool = false)
    ~jobs f tasks =
  let n = Array.length tasks in
  if jobs < 1 then invalid_arg "Pool.run: jobs must be positive";
  if n = 0 then [||]
  else if jobs = 1 && not force_pool then
    (* Sequential fast path on the caller's domain: no spawn, no hooks —
       the caller's own solver context and installed state apply, and
       execution order is exactly submission order.  [-j 1] through this
       path is byte-for-byte the pre-pool behaviour. *)
    Array.mapi
      (fun i a ->
        match f a with
        | r ->
          let o = Ok r in
          on_result i o;
          o
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          if fail_fast then Printexc.raise_with_backtrace e bt;
          let o = Error (e, bt) in
          on_result i o;
          o)
      tasks
  else begin
    let w = min jobs n in
    let deques =
      Array.init w (fun k ->
          let lo = k * n / w and hi = (k + 1) * n / w in
          {
            buf = Array.init (hi - lo) (fun i -> lo + i);
            head = 0;
            tail = hi - lo;
            lock = Mutex.create ();
          })
    in
    let results = Array.make n None in
    (* completion queue: workers push, the coordinator drains.  [done_cnt]
       counts every task retired (computed, failed, or skipped), so the
       coordinator knows when to stop waiting even under cancellation. *)
    let q : (int * 'b outcome) Queue.t = Queue.create () in
    let q_lock = Mutex.create () in
    let q_cond = Condition.create () in
    let done_cnt = ref 0 in
    let failure = ref None in
    let cancelled = Atomic.make false in
    let retire pushed =
      Mutex.protect q_lock (fun () ->
          (match pushed with Some cell -> Queue.push cell q | None -> ());
          incr done_cnt;
          Condition.signal q_cond)
    in
    let find_task k =
      match pop_own deques.(k) with
      | Some i -> Some i
      | None ->
        let rec try_steal dist =
          if dist >= w then None
          else
            match steal deques.((k + dist) mod w) with
            | Some i -> Some i
            | None -> try_steal (dist + 1)
        in
        try_steal 1
    in
    let worker k () =
      worker_init ();
      Fun.protect ~finally:worker_exit (fun () ->
          let rec loop () =
            match find_task k with
            | None -> ()
            | Some i ->
              (if Atomic.get cancelled then retire None
               else
                 match f tasks.(i) with
                 | r ->
                   let o = Ok r in
                   results.(i) <- Some o;
                   retire (Some (i, o))
                 | exception e ->
                   let bt = Printexc.get_raw_backtrace () in
                   if fail_fast then begin
                     Atomic.set cancelled true;
                     Mutex.protect q_lock (fun () ->
                         if !failure = None then failure := Some (e, bt);
                         incr done_cnt;
                         Condition.signal q_cond)
                   end
                   else begin
                     let o = Error (e, bt) in
                     results.(i) <- Some o;
                     retire (Some (i, o))
                   end);
              loop ()
          in
          loop ())
    in
    let domains = Array.init w (fun k -> Domain.spawn (worker k)) in
    (* coordinator: deliver completions in arrival order until every task
       has been retired and the queue is drained *)
    let drain () =
      let rec next () =
        let action =
          Mutex.protect q_lock (fun () ->
              let rec wait () =
                if not (Queue.is_empty q) then `Deliver (Queue.pop q)
                else if !done_cnt >= n then `Done
                else begin
                  Condition.wait q_cond q_lock;
                  wait ()
                end
              in
              wait ())
        in
        match action with
        | `Deliver (i, o) ->
          on_result i o;
          next ()
        | `Done -> ()
      in
      next ()
    in
    let coordinator_failure =
      match drain () with
      | () -> None
      | exception e ->
        (* [on_result] raised: stop handing out work, but still join every
           domain before propagating *)
        Atomic.set cancelled true;
        Some (e, Printexc.get_raw_backtrace ())
    in
    Array.iter Domain.join domains;
    (match coordinator_failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    (match !failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.map (function Some o -> o | None -> assert false) results
  end

let run_exn ?worker_init ?worker_exit ?on_result ?force_pool ~jobs f tasks =
  let on_result =
    Option.map
      (fun g i -> function Ok r -> g i r | Error _ -> assert false)
      on_result
  in
  run ?worker_init ?worker_exit ?on_result ?force_pool ~fail_fast:true ~jobs f
    tasks
  |> Array.map (function Ok r -> r | Error _ -> assert false)
