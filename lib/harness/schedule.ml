(* Explicit fault schedules (see the .mli for the format).  This module
   is deliberately independent of {!Chaos}: a site names its injection
   point by string, so schedules can be parsed, diffed and minimized
   without resolving them — resolution (and rejection of unknown point
   names) happens when {!Chaos.scripted} turns a schedule into a plan. *)

let magic = "soft-schedule 1"

type site = { s_point : string; s_key : int option; s_index : int }

let compare_site a b =
  match compare a.s_point b.s_point with
  | 0 -> (
    match compare a.s_key b.s_key with
    | 0 -> compare a.s_index b.s_index
    | c -> c)
  | c -> c

let pp_site fmt s =
  Format.fprintf fmt "%s/%s/%d" s.s_point
    (match s.s_key with None -> "-" | Some k -> string_of_int k)
    s.s_index

type t = { t_meta : (string * string) list; t_sites : site list }

let bad_meta_key k =
  k = "" || String.exists (fun c -> c = ' ' || c = '\n' || c = '\r') k

let make ?(meta = []) sites =
  List.iter
    (fun (k, _) ->
      if bad_meta_key k then
        invalid_arg (Printf.sprintf "Schedule.make: malformed meta key %S" k))
    meta;
  List.iter
    (fun s ->
      if s.s_point = "" || String.contains s.s_point ' ' then
        invalid_arg (Printf.sprintf "Schedule.make: malformed point name %S" s.s_point);
      if s.s_index < 0 then invalid_arg "Schedule.make: negative draw index")
    sites;
  { t_meta = meta; t_sites = List.sort_uniq compare_site sites }

let sites t = t.t_sites
let cardinal t = List.length t.t_sites
let mem t s = List.exists (fun s' -> compare_site s s' = 0) t.t_sites
let meta t k = List.assoc_opt k t.t_meta
let meta_all t = t.t_meta
let with_meta meta t = make ~meta t.t_sites

let site_line s =
  Printf.sprintf "s %s %s %d" s.s_point
    (match s.s_key with None -> "-" | Some k -> string_of_int k)
    s.s_index

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "meta %s %s\n" k (String.escaped v)))
    t.t_meta;
  List.iter
    (fun s ->
      Buffer.add_string buf (site_line s);
      Buffer.add_char buf '\n')
    t.t_sites;
  let body = Buffer.contents buf in
  body ^ "sum " ^ Digest.to_hex (Digest.string body) ^ "\n"

let parse_site line =
  match String.split_on_char ' ' line with
  | [ "s"; point; key; index ] -> (
    let key =
      match key with
      | "-" -> Ok None
      | k -> (
        match int_of_string_opt k with
        | Some k -> Ok (Some k)
        | None -> Error ())
    in
    match (key, int_of_string_opt index) with
    | Ok key, Some index when index >= 0 && point <> "" ->
      Some { s_point = point; s_key = key; s_index = index }
    | _ -> None)
  | _ -> None

let parse_meta line =
  (* "meta <key> <escaped value>": the value is everything after the
     second space, unescaped — String.escaped leaves spaces intact, so
     values round-trip with embedded spaces (same idiom as the WAL). *)
  if String.length line < 5 || String.sub line 0 5 <> "meta " then None
  else
    match String.index_from_opt line 5 ' ' with
    | None -> None
    | Some sp -> (
      let key = String.sub line 5 (sp - 5) in
      let esc = String.sub line (sp + 1) (String.length line - sp - 1) in
      if bad_meta_key key then None
      else
        match Scanf.unescaped esc with
        | v -> Some (key, v)
        | exception (Scanf.Scan_failure _ | Failure _) -> None)

let of_string text =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char '\n' text with
  | [] | [ _ ] -> err "schedule: empty input"
  | first :: _ when first <> magic -> err "schedule: bad magic %S" first
  | _ :: rest -> (
    (* the file ends "sum <hex>\n": after the final newline split leaves
       a trailing "" element *)
    let rec split_body acc = function
      | [ sum; "" ] -> Ok (List.rev acc, sum)
      | [ sum ] -> Ok (List.rev acc, sum)
      | line :: tl -> split_body (line :: acc) tl
      | [] -> err "schedule: missing sum trailer"
    in
    match split_body [] rest with
    | Error e -> Error e
    | Ok (body_lines, sum_line) ->
      if String.length sum_line < 4 || String.sub sum_line 0 4 <> "sum " then
        err "schedule: missing sum trailer (got %S)" sum_line
      else begin
        let body =
          String.concat "" (List.map (fun l -> l ^ "\n") (magic :: body_lines))
        in
        let want = String.sub sum_line 4 (String.length sum_line - 4) in
        if Digest.to_hex (Digest.string body) <> String.lowercase_ascii want then
          err "schedule: checksum mismatch"
        else
          let rec parse meta sites = function
            | [] -> Ok (make ~meta:(List.rev meta) sites)
            | line :: tl -> (
              if line = "" then parse meta sites tl
              else
                match parse_site line with
                | Some s -> parse meta (s :: sites) tl
                | None -> (
                  match parse_meta line with
                  | Some kv -> parse (kv :: meta) sites tl
                  | None -> err "schedule: malformed line %S" line))
          in
          parse [] [] body_lines
      end)

let save path t =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (to_string t));
  Sys.rename tmp path

let load path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "schedule: no such file %s" path)
  else of_string (In_channel.with_open_bin path In_channel.input_all)

let pp fmt t =
  Format.fprintf fmt "schedule(%d site%s%s)" (cardinal t)
    (if cardinal t = 1 then "" else "s")
    (match meta t "workload" with None -> "" | Some w -> " workload=" ^ w)
