(* SOFT phase 1: drive one agent over one test spec under the symbolic
   execution engine — the "test driver" of §4.1.  The emulated controller
   establishes the connection, injects each symbolic message and probe, and
   the engine delivers every explored path's condition and normalized
   output trace. *)

open Smt
module Engine = Symexec.Engine
module Coverage = Symexec.Coverage
module Strategy = Symexec.Strategy
module Trace = Openflow.Trace
module Agent_intf = Switches.Agent_intf

type path_record = {
  pr_result : Trace.result; (* normalized output trace *)
  pr_cond : Expr.boolean; (* the path condition, as a balanced conjunction *)
  pr_constraints : Expr.boolean list; (* individual conjuncts, in order *)
  pr_size : int; (* boolean operations in [pr_cond] (Table 2 metric) *)
}

type run = {
  run_agent : string;
  run_test : string;
  run_paths : path_record list;
  run_stats : Engine.run_stats;
  run_coverage : Coverage.set;
}

(* Default per-test path budget.  The authors' testbed let the largest
   tests run to hundreds of thousands of paths over days; the budget keeps
   the reproduction interactive while preserving relative orderings.  SOFT
   explicitly tolerates partial path coverage (paper §4.1). *)
let default_max_paths = 20000

let drive (module A : Agent_intf.S) (spec : Test_spec.t) env =
  let st = A.init () in
  let st = A.connection_setup env st in
  let final =
    List.fold_left
      (fun st input ->
        (* fault injection: an agent step may raise.  Injected_fault is
           engine-fatal, so this aborts the whole run loudly rather than
           recording a crash path that would look like agent behaviour. *)
        Chaos.maybe_raise Chaos.Agent_step;
        match input with
        | Test_spec.Msg m -> A.handle_message env st m
        | Test_spec.Probe { pr_id; pr_in_port; pr_packet } ->
          A.handle_packet env st ~probe_id:pr_id
            ~in_port:(Expr.const ~width:16 (Int64.of_int pr_in_port))
            pr_packet
        | Test_spec.Advance_time seconds -> A.advance_time env st ~seconds)
      st spec.Test_spec.inputs
  in
  ignore final

let execute ?(max_paths = default_max_paths) ?(strategy = Strategy.default)
    ?(use_interval = true) ?deadline_ms ?solver_budget (agent : Agent_intf.t)
    (spec : Test_spec.t) =
  let (module A) = agent in
  let result =
    Engine.run ~strategy ~max_paths ~use_interval ?deadline_ms ?solver_budget
      (drive agent spec)
  in
  let paths =
    List.map
      (fun (r : Trace.event Engine.path_result) ->
        {
          pr_result = Normalize.result ?crash:r.Engine.crashed r.Engine.events;
          pr_cond = r.Engine.path_cond;
          pr_constraints = r.Engine.pc;
          pr_size = Expr.bool_size r.Engine.path_cond;
        })
      result.Engine.results
  in
  {
    run_agent = A.name;
    run_test = spec.Test_spec.id;
    run_paths = paths;
    run_stats = result.Engine.stats;
    run_coverage = result.Engine.coverage;
  }

(* Replay: re-execute one agent on [spec] with every symbolic input pinned
   to the witness's concrete values, and return the normalized trace of
   the (unique) explored path the witness selects.  Used by validation to
   confirm a reported inconsistency by actually running both agents on
   the concrete test case.  Pinning is done by [assume]-ing [v = value]
   for every witness binding before the drive, so exploration collapses
   to the paths consistent with the witness; among those we keep the one
   whose path condition the witness satisfies (absent variables default
   to zero, matching [Testcase] concretization). *)
let execute_replay ?(max_paths = 64) ?solver_budget (agent : Agent_intf.t)
    (spec : Test_spec.t) ~(witness : Model.t) =
  let pinned env =
    List.iter
      (fun (v, value) ->
        Engine.assume env
          (Expr.eq (Expr.of_var v) (Expr.const ~width:(Expr.var_width v) value)))
      (Model.bindings witness);
    drive agent spec env
  in
  let result =
    Engine.run ~strategy:Strategy.Dfs ~max_paths ?solver_budget pinned
  in
  List.find_map
    (fun (r : Trace.event Engine.path_result) ->
      if Model.eval_bool witness r.Engine.path_cond then
        Some (Normalize.result ?crash:r.Engine.crashed r.Engine.events)
      else None)
    result.Engine.results

(* Crash isolation at the run boundary.  The engine already contains
   per-path exceptions; what still escapes it — an agent's [init] or
   [connection_setup] raising, a solver soundness violation, a corrupted
   spec — would otherwise abort a whole suite.  [execute_safe] converts any
   such escape into a per-run failure record so the caller can keep going
   and report which (agent, test) runs were lost. *)
type failure = {
  f_agent : string;
  f_test : string;
  f_error : string;
  f_backtrace : string;
}

let pp_failure fmt f =
  Format.fprintf fmt "%s on %s FAILED: %s" f.f_agent f.f_test f.f_error

let execute_safe ?max_paths ?strategy ?use_interval ?deadline_ms ?solver_budget agent
    (spec : Test_spec.t) =
  let (module A : Agent_intf.S) = agent in
  match execute ?max_paths ?strategy ?use_interval ?deadline_ms ?solver_budget agent spec with
  | r -> Ok r
  | exception Out_of_memory -> raise Out_of_memory
  | exception e ->
    Error
      {
        f_agent = A.name;
        f_test = spec.Test_spec.id;
        f_error = Printexc.to_string e;
        f_backtrace = Printexc.get_backtrace ();
      }

let coverage_report (r : run) = Coverage.report r.run_agent r.run_coverage

(* Constraint-size statistics for Table 2. *)
let constraint_sizes (r : run) =
  let sizes = List.map (fun p -> p.pr_size) r.run_paths in
  match sizes with
  | [] -> (0.0, 0)
  | _ ->
    let total = List.fold_left ( + ) 0 sizes in
    (float_of_int total /. float_of_int (List.length sizes), List.fold_left max 0 sizes)
