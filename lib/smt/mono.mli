(** Monotonic clock.  Use this — never [Unix.gettimeofday] — for stage
    timings and deadlines: it cannot step backwards or jump under NTP
    adjustment.  The origin is arbitrary (boot time on Linux); only
    differences between readings are meaningful. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin. *)

val now : unit -> float
(** Seconds from the same origin, as a float. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]. *)

val advance : float -> unit
(** Skew every subsequent reading forward by [seconds] (negative undoes).
    Fault injection uses this to simulate a clock jumping past a deadline;
    nothing else should call it.  The skew is atomic: jumps delivered
    concurrently from several worker domains all take effect, and readers
    in any domain observe them. *)

val reset_skew : unit -> unit
(** Drop any accumulated {!advance} skew. *)
