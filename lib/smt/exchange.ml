(* Bounded cross-domain learnt-clause exchange: a lock-free ring buffer
   of immutable literal arrays, shared by every worker solving pairs of
   one crosscheck over adopted copies of the same blasted base.

   Design constraints, in order:

   - *Soundness first.*  A consumer may only ever import a clause that is
     implied by its own instance.  The shared-base discipline guarantees
     this structurally: adopted instances never receive per-query problem
     clauses (queries are decided purely under assumptions), so every
     clause a producer learns is implied by the common prefix alone and
     is therefore safe to add to any other adopted copy — in any order,
     at any time.
   - *Never block a solver.*  Producers publish with one
     [Atomic.fetch_and_add] (the write cursor) plus one [Atomic.set]
     (the slot); consumers read with plain [Atomic.get]s.  No mutex, no
     retry loop, no allocation beyond the clause copy itself.
   - *Bounded, lossy, and occasionally duplicating — by contract.*  The
     ring holds the last [capacity] exports.  A slow consumer loses
     overwritten clauses (its cursor is clamped forward); a racing
     overwrite can hand a consumer a clause it will see again next drain.
     Both are harmless: a lost clause costs only re-derivation, a
     duplicated one is an extra implied clause.  What the bound buys is a
     hard cap on memory and on import work per restart.

   Determinism note: which clauses a consumer happens to import depends
   on cross-domain timing, so imports may steer one schedule's search
   differently from another's.  That is why the shared-base path only
   runs on unbudgeted queries — Sat/Unsat are semantic there, so the
   *verdicts* (and hence report bytes) cannot depend on the exchange;
   only the time to reach them can. *)

type entry = { e_src : int; e_lits : int array }

type t = {
  capacity : int;
  slots : entry option Atomic.t array;
  wpos : int Atomic.t; (* total clauses ever published *)
  nreaders : int Atomic.t; (* endpoint id allocator *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Exchange.create: capacity must be positive";
  {
    capacity;
    slots = Array.init capacity (fun _ -> Atomic.make None);
    wpos = Atomic.make 0;
    nreaders = Atomic.make 0;
  }

let published t = Atomic.get t.wpos

(* One endpoint per (domain, ring): tags its own exports so [drain] can
   skip them, and remembers how far into the stream it has read. *)
type endpoint = { ring : t; id : int; mutable rpos : int }

let register ring = { ring; id = Atomic.fetch_and_add ring.nreaders 1; rpos = 0 }

let publish ep lits =
  (* the caller's array is private to us from here on (sat.ml builds it
     fresh); publishing the value itself keeps the slot write one store *)
  let i = Atomic.fetch_and_add ep.ring.wpos 1 in
  Atomic.set ep.ring.slots.(i mod ep.ring.capacity) (Some { e_src = ep.id; e_lits = lits })

(* Everything published since the last drain that (a) is still in the
   ring and (b) did not come from this endpoint, oldest first. *)
let drain ep =
  let w = Atomic.get ep.ring.wpos in
  let lo = max ep.rpos (w - ep.ring.capacity) in
  let acc = ref [] in
  for i = w - 1 downto lo do
    match Atomic.get ep.ring.slots.(i mod ep.ring.capacity) with
    | Some e when e.e_src <> ep.id -> acc := e.e_lits :: !acc
    | Some _ | None -> ()
  done;
  ep.rpos <- w;
  !acc
