(* CDCL SAT solver: two-watched literals, VSIDS decision heuristic with a
   binary heap, first-UIP conflict analysis, phase saving and Luby restarts.
   This is the engine underneath the bitvector solver.

   The solver is incremental in the MiniSat style: an instance stays valid
   across successive [solve] calls, [add_clause] may be interleaved with
   them, and each call may carry assumption literals that are decided
   first (at their own decision levels) and hold only for that call.
   Learnt clauses, variable activities and saved phases all persist from
   one [solve] to the next — that retention is what the crosscheck's
   row-major sessions amortize.

   Literal encoding: variable [v] yields literals [2*v] (positive) and
   [2*v+1] (negated). *)

(* Why a solve can stop without an answer: every budget maps to one of
   these, and the frontend surfaces them as [Solver.Unknown]. *)
type stop_reason = Conflicts | Decisions | Time

type result = Sat | Unsat | Unknown of stop_reason

type clause = { lits : int array; learnt : bool }

(* DRUP proof logging.  When enabled, every clause the solver derives
   (learnt clauses, including the final empty clause of an Unsat run) is
   recorded in derivation order, together with the raw original clauses as
   the caller supplied them — before level-0 simplification, so an
   independent checker replays against exactly the input CNF.  The log is
   [None] unless [enable_proof] is called: certification off-path must not
   allocate anything. *)
type proof_step = P_add of int array | P_delete of int array

type proof_log = {
  mutable p_orig_rev : int array list; (* original clauses, newest first *)
  mutable p_steps_rev : proof_step list; (* derivation steps, newest first *)
}

type t = {
  mutable nvars : int;
  mutable clauses : clause array; (* dynamic *)
  mutable nclauses : int;
  mutable watches : int list array; (* literal -> clause indices *)
  mutable assigns : int array; (* var -> 0 unassigned / 1 true / 2 false *)
  mutable level : int array; (* var -> decision level *)
  mutable reason : int array; (* var -> clause index or -1 *)
  mutable trail : int array; (* literals in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int array; (* decision-level boundaries *)
  mutable ndecisions : int;
  mutable qhead : int;
  mutable activity : float array;
  mutable polarity : bool array; (* saved phases *)
  mutable var_inc : float;
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_size : int;
  mutable heap_pos : int array; (* var -> heap index or -1 *)
  mutable ok : bool; (* false once a top-level conflict is found *)
  mutable conflicts : int;
  mutable propagations : int;
  mutable decisions : int; (* cumulative, for the decision budget *)
  mutable nlearnts : int; (* learnt clauses in the database *)
  mutable failed : int list; (* failed assumptions of the last Unsat *)
  mutable proof : proof_log option;
  mutable exchange : exchange option; (* cross-domain learnt-clause exchange *)
}

(* Cross-domain learnt-clause exchange, as a pair of closures so the SAT
   core stays decoupled from the ring's implementation (and from who
   counts what).  SOUNDNESS CONTRACT: the attaching caller guarantees
   that every clause [ex_import] returns is implied by this instance's
   problem clauses alone — the shared-base discipline (instances that
   are copies of one frozen prefix and never receive further problem
   clauses) provides exactly that.  Never attach an exchange to an
   instance that grows per-query clauses, and never together with proof
   logging: imported clauses are not RUP-derivable steps of *this*
   instance's log. *)
and exchange = {
  ex_export : int array -> unit; (* called with a private copy of the learnt *)
  ex_import : unit -> int array list; (* new foreign clauses since last call *)
}

let lit_var l = l lsr 1
let lit_neg l = l lxor 1
let lit_sign l = l land 1 = 1 (* true = negated *)

let create () =
  {
    nvars = 0;
    clauses = Array.make 16 { lits = [||]; learnt = false };
    nclauses = 0;
    watches = Array.make 16 [];
    assigns = Array.make 8 0;
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    ndecisions = 0;
    qhead = 0;
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    var_inc = 1.0;
    heap = Array.make 8 0;
    heap_size = 0;
    heap_pos = Array.make 8 (-1);
    ok = true;
    conflicts = 0;
    propagations = 0;
    decisions = 0;
    nlearnts = 0;
    failed = [];
    proof = None;
    exchange = None;
  }

(* Deep copy of an instance.  The intended use is the shared blasted
   base: one domain blasts a formula once, freezes the instance, and
   every worker adopts a private copy instead of re-blasting — so [copy]
   must be safe to call concurrently from several domains on an instance
   nobody mutates.  Clause literal arrays are duplicated (watch
   maintenance physically reorders them during propagation); the watch
   lists are immutable OCaml lists, so copying the spine array suffices. *)
let copy s =
  {
    nvars = s.nvars;
    clauses =
      Array.init (Array.length s.clauses) (fun i ->
          if i < s.nclauses then
            let c = s.clauses.(i) in
            { c with lits = Array.copy c.lits }
          else s.clauses.(i));
    nclauses = s.nclauses;
    watches = Array.copy s.watches;
    assigns = Array.copy s.assigns;
    level = Array.copy s.level;
    reason = Array.copy s.reason;
    trail = Array.copy s.trail;
    trail_size = s.trail_size;
    trail_lim = Array.copy s.trail_lim;
    ndecisions = s.ndecisions;
    qhead = s.qhead;
    activity = Array.copy s.activity;
    polarity = Array.copy s.polarity;
    var_inc = s.var_inc;
    heap = Array.copy s.heap;
    heap_size = s.heap_size;
    heap_pos = Array.copy s.heap_pos;
    ok = s.ok;
    conflicts = s.conflicts;
    propagations = s.propagations;
    decisions = s.decisions;
    nlearnts = s.nlearnts;
    failed = s.failed;
    proof =
      (match s.proof with
      | None -> None
      | Some p -> Some { p_orig_rev = p.p_orig_rev; p_steps_rev = p.p_steps_rev });
    exchange = None;
  }

let attach_exchange s ex = s.exchange <- Some ex

(* --- proof logging --------------------------------------------------- *)

let enable_proof s =
  if s.proof = None then s.proof <- Some { p_orig_rev = []; p_steps_rev = [] }

let proof_enabled s = s.proof <> None

let log_original s lits =
  match s.proof with
  | None -> ()
  | Some p -> p.p_orig_rev <- Array.of_list lits :: p.p_orig_rev

let log_step s step =
  match s.proof with
  | None -> ()
  | Some p -> p.p_steps_rev <- step :: p.p_steps_rev

let proof_steps s =
  match s.proof with None -> [] | Some p -> List.rev p.p_steps_rev

let original_clauses s =
  match s.proof with None -> [] | Some p -> List.rev p.p_orig_rev

let grow_int_array a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a + 1)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_float_array a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a + 1)) 0.0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_bool_array a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a + 1)) false in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* --- VSIDS heap ---------------------------------------------------- *)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vj) <- i;
  s.heap_pos.(vi) <- j

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(parent)) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best)) then
    best := l;
  if r < s.heap_size && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best)) then
    best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap <- grow_int_array s.heap (s.heap_size + 1) 0;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let decay_activities s = s.var_inc <- s.var_inc /. 0.95

(* --- variables and clauses ----------------------------------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns <- grow_int_array s.assigns s.nvars 0;
  s.level <- grow_int_array s.level s.nvars 0;
  s.reason <- grow_int_array s.reason s.nvars (-1);
  s.activity <- grow_float_array s.activity s.nvars;
  s.polarity <- grow_bool_array s.polarity s.nvars;
  s.heap_pos <- grow_int_array s.heap_pos s.nvars (-1);
  s.trail <- grow_int_array s.trail s.nvars 0;
  s.trail_lim <- grow_int_array s.trail_lim s.nvars 0;
  if Array.length s.watches < 2 * s.nvars then begin
    let w = Array.make (max (2 * s.nvars) (2 * Array.length s.watches + 2)) [] in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end;
  heap_insert s v;
  v

(* literal value: 0 unassigned, 1 true, 2 false *)
let lit_value s l =
  let a = s.assigns.(lit_var l) in
  if a = 0 then 0 else if lit_sign l then 3 - a else a

let enqueue s l reason =
  let v = lit_var l in
  s.assigns.(v) <- (if lit_sign l then 2 else 1);
  s.level.(v) <- s.ndecisions;
  s.reason.(v) <- reason;
  s.polarity.(v) <- not (lit_sign l);
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let push_clause s c =
  if s.nclauses >= Array.length s.clauses then begin
    let a = Array.make (2 * Array.length s.clauses) c in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  s.clauses.(s.nclauses) <- c;
  s.nclauses <- s.nclauses + 1;
  s.nclauses - 1

let watch_clause s ci =
  let c = s.clauses.(ci) in
  s.watches.(lit_neg c.lits.(0)) <- ci :: s.watches.(lit_neg c.lits.(0));
  s.watches.(lit_neg c.lits.(1)) <- ci :: s.watches.(lit_neg c.lits.(1))

let cancel_until s lvl =
  if s.ndecisions > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = lit_var s.trail.(i) in
      s.assigns.(v) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.ndecisions <- lvl
  end

(* Add a problem clause.  May be called between [solve]s: any leftover
   non-root assignment is unwound first, so the level-0 simplification
   below only ever filters by permanent assignments. *)
let add_clause s lits =
  cancel_until s 0;
  log_original s lits;
  if s.ok then begin
    (* dedup, drop false lits? At level 0 we can simplify by assignments. *)
    let lits = List.sort_uniq compare lits in
    let tauto =
      List.exists (fun l -> List.exists (fun l' -> l' = lit_neg l) lits) lits
    in
    if not tauto then begin
      let lits = List.filter (fun l -> lit_value s l <> 2) lits in
      if List.exists (fun l -> lit_value s l = 1) lits then ()
      else
        match lits with
        | [] ->
          (* the clause is falsified by level-0 units, all of which an RUP
             checker rederives by propagation — the contradiction is a
             legitimate proof step *)
          log_step s (P_add [||]);
          s.ok <- false
        | [ l ] -> enqueue s l (-1)
        | _ ->
          let arr = Array.of_list lits in
          let ci = push_clause s { lits = arr; learnt = false } in
          watch_clause s ci
    end
  end

(* --- propagation ---------------------------------------------------- *)

exception Conflict of int (* clause index *)

let propagate s =
  try
    while s.qhead < s.trail_size do
      let l = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      let watching = s.watches.(l) in
      s.watches.(l) <- [];
      let rec go = function
        | [] -> ()
        | ci :: rest -> (
          let c = s.clauses.(ci) in
          (* ensure the false literal is at position 1 *)
          if c.lits.(0) = lit_neg l then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- lit_neg l
          end;
          if lit_value s c.lits.(0) = 1 then begin
            (* satisfied: keep watching *)
            s.watches.(l) <- ci :: s.watches.(l);
            go rest
          end
          else begin
            (* find a new watch *)
            let n = Array.length c.lits in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < n do
              if lit_value s c.lits.(!k) <> 2 then begin
                let tmp = c.lits.(1) in
                c.lits.(1) <- c.lits.(!k);
                c.lits.(!k) <- tmp;
                s.watches.(lit_neg c.lits.(1)) <- ci :: s.watches.(lit_neg c.lits.(1));
                found := true
              end
              else incr k
            done;
            if !found then go rest
            else begin
              (* unit or conflict *)
              s.watches.(l) <- ci :: s.watches.(l);
              match lit_value s c.lits.(0) with
              | 2 ->
                (* conflict: restore remaining watches first *)
                List.iter (fun ci' -> s.watches.(l) <- ci' :: s.watches.(l)) rest;
                s.qhead <- s.trail_size;
                raise (Conflict ci)
              | _ ->
                enqueue s c.lits.(0) ci;
                go rest
            end
          end)
      in
      go watching
    done;
    -1
  with Conflict ci -> ci

(* --- conflict analysis (first UIP) ---------------------------------- *)

let analyze s confl =
  let seen = Bytes.make s.nvars '\000' in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let idx = ref (s.trail_size - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!confl) in
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c.lits - 1 do
      let q = c.lits.(j) in
      let v = lit_var q in
      if Bytes.get seen v = '\000' && s.level.(v) > 0 then begin
        Bytes.set seen v '\001';
        bump_var s v;
        if s.level.(v) >= s.ndecisions then incr counter
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* pick next literal to look at from the trail *)
    while Bytes.get seen (lit_var s.trail.(!idx)) = '\000' do
      decr idx
    done;
    p := s.trail.(!idx);
    Bytes.set seen (lit_var !p) '\000';
    decr idx;
    decr counter;
    if !counter <= 0 then continue := false
    else confl := s.reason.(lit_var !p)
  done;
  let learnt = lit_neg !p :: !learnt in
  (learnt, !btlevel)

(* Literal-block distance of a learnt clause: distinct decision levels
   among its literals.  Must be computed at conflict time, before the
   backjump invalidates the levels.  Glue clauses (LBD <= 2) are the
   classic high-value exchange candidates: they bridge exactly one
   decision level and tend to stay relevant across restarts — and across
   workers solving assumption variants of the same base. *)
let lbd s lits =
  let levels = ref [] in
  List.iter
    (fun l ->
      let lv = s.level.(lit_var l) in
      if lv > 0 && not (List.mem lv !levels) then levels := lv :: !levels)
    lits;
  List.length !levels

let max_export_lbd = 2
let max_export_len = 32

let record_learnt s lits btlevel =
  (* log a private copy: the stored clause's literal array is physically
     reordered by watch maintenance during later propagation *)
  log_step s (P_add (Array.of_list lits));
  (match s.exchange with
  | Some ex
    when (match lits with [] -> false | _ -> true)
         && List.length lits <= max_export_len
         && lbd s lits <= max_export_lbd ->
    (* before [cancel_until]: the LBD needs conflict-time levels *)
    ex.ex_export (Array.of_list lits)
  | _ -> ());
  cancel_until s btlevel;
  match lits with
  | [] -> s.ok <- false
  | [ l ] -> enqueue s l (-1)
  | l :: _ ->
    (* ensure second literal has the highest level among the rest for a
       correct watch after backjump *)
    let arr = Array.of_list lits in
    let best = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if s.level.(lit_var arr.(i)) > s.level.(lit_var arr.(!best)) then best := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let ci = push_clause s { lits = arr; learnt = true } in
    s.nlearnts <- s.nlearnts + 1;
    watch_clause s ci;
    enqueue s l ci

(* Which assumptions are to blame for assumption literal [l] arriving
   already false at its decision point: walk the trail top-down from the
   implied complement, expanding propagation reasons and collecting the
   decisions reached — during assumption selection every live decision is
   an assumption.  The result (including [l] itself) is an inconsistent
   subset of the call's assumptions: the final conflict clause is the
   disjunction of their negations. *)
let analyze_final s l =
  let v0 = lit_var l in
  if s.level.(v0) = 0 then [ l ]
  else begin
    let seen = Bytes.make s.nvars '\000' in
    Bytes.set seen v0 '\001';
    let failed = ref [ l ] in
    let bound = if s.ndecisions > 0 then s.trail_lim.(0) else s.trail_size in
    for i = s.trail_size - 1 downto bound do
      let v = lit_var s.trail.(i) in
      if Bytes.get seen v = '\001' then begin
        if s.reason.(v) >= 0 then begin
          let c = s.clauses.(s.reason.(v)) in
          Array.iter
            (fun q ->
              let u = lit_var q in
              if u <> v && s.level.(u) > 0 then Bytes.set seen u '\001')
            c.lits
        end
        else failed := s.trail.(i) :: !failed;
        Bytes.set seen v '\000'
      end
    done;
    !failed
  end

(* --- learnt-clause import ------------------------------------------- *)

(* Insert one imported clause at decision level 0.  Mirrors [add_clause]'s
   level-0 simplification but: the clause enters the database as learnt
   (it counts toward [learnt_count], like the locally derived clauses it
   replaces), it is never proof-logged (the exchange is only attached on
   the non-certify shared-base path; an imported clause is implied by the
   shared prefix, not RUP-derivable from this instance's own log), and it
   is not recorded as an original clause.  An import that simplifies to
   the empty clause proves the shared prefix itself unsatisfiable —
   propagating that to [ok] is sound for every future query. *)
let import_clause s lits_arr =
  if s.ok then begin
    let lits = List.sort_uniq compare (Array.to_list lits_arr) in
    let tauto =
      List.exists (fun l -> List.exists (fun l' -> l' = lit_neg l) lits) lits
    in
    if not tauto then begin
      let lits = List.filter (fun l -> lit_value s l <> 2) lits in
      if List.exists (fun l -> lit_value s l = 1) lits then ()
      else
        match lits with
        | [] -> s.ok <- false
        | [ l ] -> enqueue s l (-1)
        | _ ->
          let arr = Array.of_list lits in
          let ci = push_clause s { lits = arr; learnt = true } in
          s.nlearnts <- s.nlearnts + 1;
          watch_clause s ci
    end
  end

(* Drain the exchange into this instance.  Called only with the trail at
   decision level 0 — solve entry and restart boundaries — so the
   simplification in [import_clause] filters against permanent
   assignments only. *)
let import_exchange s =
  match s.exchange with
  | None -> ()
  | Some ex -> List.iter (fun c -> import_clause s c) (ex.ex_import ())

(* --- main loop ------------------------------------------------------ *)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let decide s =
  let rec pick () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assigns.(v) = 0 then v else pick ()
  in
  let v = pick () in
  if v < 0 then -1
  else begin
    s.decisions <- s.decisions + 1;
    s.trail_lim.(s.ndecisions) <- s.trail_size;
    s.ndecisions <- s.ndecisions + 1;
    let l = if s.polarity.(v) then 2 * v else (2 * v) + 1 in
    enqueue s l (-1);
    v
  end

(* Budgets make [solve] total in practice: [max_conflicts]/[max_decisions]
   are counted from this call's start, [deadline] is an absolute monotonic
   time ([Mono.now] seconds).  When any budget is exhausted the search is
   unwound to level 0 and [Unknown] is returned — the instance stays valid
   but carries no model.

   [assumptions] are literals decided before any free decision, one per
   decision level, MiniSat-style: they hold for this call only.  An
   [Unsat] under non-empty assumptions means "unsat under these
   assumptions" (the failed subset is in {!failed_assumptions}); it does
   not poison the instance, and no empty clause is derived or logged —
   which is also why certify mode solves from scratch instead. *)
let no_assumptions = [||]

let solve ?(assumptions = no_assumptions) ?max_conflicts ?max_decisions ?deadline s =
  (* unwind whatever a previous call left assigned: clauses, activities
     and phases persist across calls, the trail does not *)
  cancel_until s 0;
  import_exchange s;
  s.failed <- [];
  if not s.ok then Unsat
  else begin
    let nassume = Array.length assumptions in
    (* one level per assumption (even ones already true get an empty
       level, keeping level index = assumption index) plus one per free
       decision *)
    s.trail_lim <- grow_int_array s.trail_lim (s.nvars + nassume + 1) 0;
    let conflicts0 = s.conflicts and decisions0 = s.decisions in
    (* Fetch the supervision token once: the per-conflict/per-decision check
       is then a single atomic load.  Cancellation raises out of the search;
       the trail is unwound by the next [solve]'s [cancel_until]. *)
    let cancel_tok = Cancel.current () in
    let over_budget () =
      (match cancel_tok with Some t -> Cancel.check t | None -> ());
      if match max_conflicts with
        | Some n -> s.conflicts - conflicts0 >= n
        | None -> false
      then Some Conflicts
      else if
        match max_decisions with
        | Some n -> s.decisions - decisions0 >= n
        | None -> false
      then Some Decisions
      else if match deadline with Some d -> Mono.now () >= d | None -> false then
        Some Time
      else None
    in
    (* pick the next branch: the call's assumptions first, in order, then
       VSIDS.  [`A_sat]: every variable is assigned; [`A_failed]: an
       assumption is already falsified by the trail — the failed subset
       has been extracted. *)
    let rec assume_or_decide () =
      if s.ndecisions < nassume then begin
        let l = assumptions.(s.ndecisions) in
        match lit_value s l with
        | 1 ->
          (* already implied: open an empty decision level *)
          s.trail_lim.(s.ndecisions) <- s.trail_size;
          s.ndecisions <- s.ndecisions + 1;
          assume_or_decide ()
        | 2 ->
          s.failed <- analyze_final s l;
          `A_failed
        | _ ->
          s.decisions <- s.decisions + 1;
          s.trail_lim.(s.ndecisions) <- s.trail_size;
          s.ndecisions <- s.ndecisions + 1;
          enqueue s l (-1);
          `A_decided
      end
      else if decide s < 0 then `A_sat
      else `A_decided
    in
    let restart_count = ref 0 in
    let result = ref None in
    while !result = None do
      let conflict_budget = 100 * luby !restart_count in
      incr restart_count;
      let conflicts_here = ref 0 in
      let restart = ref false in
      while !result = None && not !restart do
        let confl = propagate s in
        if confl >= 0 then begin
          s.conflicts <- s.conflicts + 1;
          incr conflicts_here;
          if s.ndecisions = 0 then begin
            (* conflict under propagation alone: the empty clause is RUP *)
            log_step s (P_add [||]);
            s.ok <- false;
            result := Some Unsat
          end
          else begin
            let learnt, btlevel = analyze s confl in
            record_learnt s learnt btlevel;
            decay_activities s;
            match over_budget () with
            | Some r ->
              cancel_until s 0;
              result := Some (Unknown r)
            | None -> ()
          end
        end
        else if !conflicts_here >= conflict_budget then begin
          cancel_until s 0;
          (* restart boundary: the cheapest moment to adopt other
             workers' glue clauses — the trail is at level 0, so the
             level-0 simplification in [import_clause] applies cleanly *)
          import_exchange s;
          restart := true
        end
        else
          match over_budget () with
          (* also bounds conflict-free dives through huge instances *)
          | Some r ->
            cancel_until s 0;
            result := Some (Unknown r)
          | None -> (
            match assume_or_decide () with
            | `A_sat -> result := Some Sat
            | `A_failed ->
              cancel_until s 0;
              result := Some Unsat
            | `A_decided -> ())
      done
    done;
    match !result with Some r -> r | None -> assert false
  end

(* Model access after [Sat]: unassigned vars default to false. *)
let model_value s v = if v < s.nvars then s.assigns.(v) = 1 else false

let stats s = (s.conflicts, s.propagations, s.nvars, s.nclauses)

let decisions s = s.decisions

let learnt_count s = s.nlearnts

(* Valid after an [Unsat] answer from a [solve] with assumptions: the
   subset of that call's assumptions the conflict actually used.  Empty
   after a global (assumption-free) Unsat. *)
let failed_assumptions s = s.failed
