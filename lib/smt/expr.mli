(** Hash-consed bitvector and boolean expressions (the QF_BV fragment).

    Every node carries a unique id assigned at interning time, so structural
    equality is physical equality ([==]) and id comparison; this property
    underpins cheap trace comparison and solver memoization across SOFT.

    Bitvector widths range over [1..64]; concrete values are [int64]
    normalized to their width (high bits zero).  Smart constructors perform
    constant folding and algebraic simplification, so a term built only from
    constants is itself a [Const]. *)

(** {1 Types} *)

type unop = Bnot  (** bitwise complement *) | Neg  (** two's-complement negation *)

type binop =
  | Add
  | Sub
  | Mul
  | Andb
  | Orb
  | Xorb
  | Shl  (** left shift; amounts >= width give zero *)
  | Lshr  (** logical right shift; amounts >= width give zero *)

type cmp =
  | Eq
  | Ult  (** unsigned less-than *)
  | Ule  (** unsigned less-or-equal *)
  | Slt  (** signed less-than *)
  | Sle  (** signed less-or-equal *)

type bv = private { id : int; width : int; node : bv_node }
(** A bitvector term. [id] is the hash-consing identity. *)

and bv_node =
  | Const of int64
  | Var of var
  | Unop of unop * bv
  | Binop of binop * bv * bv
  | Ite of boolean * bv * bv
  | Extract of bv * int * int  (** [Extract (e, hi, lo)], bits inclusive *)
  | Concat of bv * bv  (** [Concat (high, low)] *)
  | Zext of bv
  | Sext of bv

and boolean = private { bid : int; bnode : bool_node }
(** A boolean formula over bitvector atoms. *)

and bool_node =
  | True
  | False
  | Cmp of cmp * bv * bv
  | Not of boolean
  | And of boolean * boolean
  | Or of boolean * boolean

and var
(** A symbolic variable.  Variables are interned globally by name: two
    [var] calls with the same name return the same variable, which is what
    lets two independently-executed agents share an input namespace. *)

exception Width_mismatch of string
(** Raised when an operation combines bitvectors of different widths, or a
    variable name is reused at a different width. *)

(** {1 Widths and normalization} *)

val mask : int -> int64
(** [mask w] is the all-ones value of width [w]. *)

val norm : int -> int64 -> int64
(** [norm w v] truncates [v] to its low [w] bits. *)

val to_signed : int -> int64 -> int64
(** [to_signed w v] sign-extends the normalized width-[w] value [v] into a
    full [int64]. *)

(** {1 Variables} *)

val var : width:int -> string -> bv
(** [var ~width name] is the bitvector variable [name], creating it on
    first use. @raise Width_mismatch if [name] exists at another width. *)

val make_var : string -> int -> var
(** Like {!var} but returns the variable handle itself. *)

val of_var : var -> bv
val var_by_id : int -> var option
val var_name : var -> string
val var_width : var -> int
val var_id : var -> int
val all_vars : unit -> var list

(** {1 Bitvector constructors} *)

val const : width:int -> int64 -> bv
val width : bv -> int
val is_const : bv -> bool
val const_value : bv -> int64 option

val unop : unop -> bv -> bv
val binop : binop -> bv -> bv -> bv
val bnot : bv -> bv
val neg : bv -> bv
val add : bv -> bv -> bv
val sub : bv -> bv -> bv
val mul : bv -> bv -> bv
val logand : bv -> bv -> bv
val logor : bv -> bv -> bv
val logxor : bv -> bv -> bv
val shl : bv -> bv -> bv
val lshr : bv -> bv -> bv

val extract : hi:int -> lo:int -> bv -> bv
(** [extract ~hi ~lo e] is bits [hi..lo] of [e], inclusive, LSB 0. *)

val concat : bv -> bv -> bv
(** [concat high low]; result width is the sum (at most 64). *)

val zext : width:int -> bv -> bv
val sext : width:int -> bv -> bv
val ite : boolean -> bv -> bv -> bv

(** {1 Boolean constructors} *)

val tru : boolean
val fls : boolean
val of_bool : bool -> boolean
val is_true : boolean -> bool
val is_false : boolean -> bool

val cmp : cmp -> bv -> bv -> boolean
val eq : bv -> bv -> boolean
val neq : bv -> bv -> boolean
val ult : bv -> bv -> boolean
val ule : bv -> bv -> boolean
val ugt : bv -> bv -> boolean
val uge : bv -> bv -> boolean
val slt : bv -> bv -> boolean
val sle : bv -> bv -> boolean

val eq_const : bv -> int64 -> boolean
val neq_const : bv -> int64 -> boolean

val not_ : boolean -> boolean
val and_ : boolean -> boolean -> boolean
val or_ : boolean -> boolean -> boolean
val implies : boolean -> boolean -> boolean

val conj : boolean list -> boolean
(** Left-fold conjunction; [conj [] = tru]. *)

val disj : boolean list -> boolean
(** Left-fold disjunction; [disj [] = fls]. *)

val balanced_conj : boolean list -> boolean
(** Conjunction as a balanced tree, minimizing nesting depth — the shape
    SOFT hands to the solver. *)

val balanced_disj : boolean list -> boolean
(** Disjunction as a balanced tree (the grouping tool's or-trees,
    paper §4.2). *)

(** {1 Traversal and metrics} *)

val iter_bool : on_bv:(bv -> unit) -> on_bool:(boolean -> unit) -> boolean -> unit
val iter_bv : on_bv:(bv -> unit) -> on_bool:(boolean -> unit) -> bv -> unit

val bool_size : boolean -> int
(** Number of boolean operations (comparisons and connectives) in the
    formula, counting shared subterms once — the "constraint size" metric
    of the paper's Table 2. *)

val vars_of_bool : boolean -> var list
val vars_of_bv : bv -> var list

(** {1 Evaluation} *)

val eval_bv : (var -> int64) -> bv -> int64
(** Evaluate under an assignment.  Recursive over the term structure; for
    heavily shared DAGs prefer {!eval_bv_memo}. *)

val eval_bool : (var -> int64) -> boolean -> bool

val eval_bv_memo : (var -> int64) -> bv -> int64
(** Like {!eval_bv} but visits each distinct node once. *)

val eval_bool_memo : (var -> int64) -> boolean -> bool

(** {1 Printing} *)

val pp_bv : Format.formatter -> bv -> unit
val pp_bool : Format.formatter -> boolean -> unit
val bv_to_string : bv -> string
val bool_to_string : boolean -> string

(** {1 Hash-cons table accounting}

    The interning tables are global and append-only: node ids are identity
    and live expressions hold physical pointers to their children, so
    nothing can ever be evicted without breaking hash-consing.  Growth is
    therefore {e bounded} advisorily ({!set_node_limit}) and {e reported}
    ({!live_nodes}, folded into solver stats) rather than reclaimed. *)

exception Node_limit of int
(** Raised by an interning miss once the tables hold at least the
    configured number of nodes.  The payload is the limit.  Under
    supervision this is classified as a memory failure and the offending
    pair is retried/quarantined; existing expressions stay valid. *)

val set_node_limit : int option -> unit
(** Cap the {e total} number of interned nodes (bitvector + boolean +
    variables).  [None] (the default) removes the cap.  The cap only stops
    {e new} nodes; lookups of existing nodes always succeed. *)

val get_node_limit : unit -> int option

val live_nodes : unit -> int
(** Total interned nodes across the bitvector, boolean and variable
    tables — the gauge reported through [Solver] stats. *)

val table_sizes : unit -> int * int * int
(** [(bv, bool, vars)] table sizes, individually. *)

val reset_for_testing : unit -> unit
(** Drop all interning tables (invalidates every existing expression);
    tests only. *)
