(** CDCL SAT solver: two-watched literals, VSIDS decisions, first-UIP
    conflict learning, phase saving and Luby restarts.

    Instances are incremental in the MiniSat style: {!solve} may be called
    repeatedly, {!add_clause}/{!new_var} may be interleaved between calls,
    and each call may carry {e assumption} literals that hold for that
    call only.  Learnt clauses, variable activities and saved phases
    persist across calls — the retention the crosscheck's row sessions
    amortize.

    Literal encoding: variable [v] yields literal [2*v] (positive) and
    [2*v+1] (negated). *)

type stop_reason = Conflicts | Decisions | Time
(** Which budget stopped an inconclusive solve. *)

type result = Sat | Unsat | Unknown of stop_reason

type proof_step =
  | P_add of int array  (** a derived (learnt) clause; [[||]] is the empty clause *)
  | P_delete of int array  (** a clause removed from the database *)
(** One step of a DRUP derivation, in solver literal encoding.  The solver
    currently never deletes clauses, so it emits only [P_add]; {!Proof}
    checks both. *)

type t

val create : unit -> t

val copy : t -> t
(** A deep, private copy of the instance: clauses (with private literal
    arrays), watches, trail, activities, phases, counters.  Safe to call
    concurrently from several domains on an instance nobody mutates —
    the shared-blasted-base path freezes one instance and has every
    worker domain adopt a [copy] instead of re-blasting.  The copy's
    learnt-clause exchange is detached (see {!attach_exchange}). *)

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val add_clause : t -> int list -> unit
(** Add a problem clause (list of literals).  May be called before the
    first {!solve} or between solves (any leftover assignment above level
    0 is unwound first).  Tautologies are dropped; an empty clause makes
    the instance permanently unsatisfiable. *)

val solve :
  ?assumptions:int array ->
  ?max_conflicts:int ->
  ?max_decisions:int ->
  ?deadline:float ->
  t ->
  result
(** Decide the instance under the call's [assumptions] (literals decided
    first, one per decision level, holding for this call only — MiniSat
    style).  [Unsat] under non-empty assumptions means unsat {e under
    those assumptions}; the instance stays usable and
    {!failed_assumptions} names the subset the conflict used.  No empty
    clause is derived in that case, so the DRUP log of an
    assumption-failure answer does not certify it — certify mode must
    solve from scratch instead.

    [max_conflicts]/[max_decisions] bound the search effort spent in this
    call; [deadline] is an absolute monotonic time in {!Mono.now} seconds.
    With no budgets the search runs to completion.  On budget exhaustion
    the result is [Unknown] and the instance remains usable (the search is
    unwound to decision level 0). *)

type exchange = {
  ex_export : int array -> unit;
      (** receives a private copy of each low-LBD learnt clause, at
          conflict time *)
  ex_import : unit -> int array list;
      (** polled at solve entry and at every restart boundary; must
          return clauses implied by this instance's problem clauses *)
}
(** Cross-domain learnt-clause exchange as closures, keeping the core
    decoupled from the ring buffer ({!Exchange}) that implements them. *)

val attach_exchange : t -> exchange -> unit
(** Attach an exchange to this instance: learnt clauses with LBD ≤ 2
    (and ≤ 32 literals) are exported through [ex_export]; [ex_import] is
    drained at solve entry and restart boundaries, inserting the
    returned clauses as learnt clauses with level-0 simplification.

    SOUNDNESS: the caller guarantees every imported clause is implied by
    this instance's problem clauses alone.  The shared-base discipline
    provides this (all participants are {!copy}s of one frozen prefix
    and never receive further problem clauses).  Never attach together
    with proof logging — imported clauses are not steps of this
    instance's DRUP log. *)

val failed_assumptions : t -> int list
(** After an [Unsat] from a {!solve} with assumptions: the subset of that
    call's assumptions the final conflict used (an inconsistent core, not
    necessarily minimal).  Empty after a global, assumption-free Unsat. *)

val learnt_count : t -> int
(** Learnt clauses currently in the database — what an incremental session
    carries from one solve into the next. *)

val model_value : t -> int -> bool
(** After [Sat]: the assignment of a variable (unassigned vars read as
    false). *)

val lit_var : int -> int
val lit_neg : int -> int
val lit_sign : int -> bool

val stats : t -> int * int * int * int
(** [(conflicts, propagations, nvars, nclauses)]. *)

val decisions : t -> int
(** Cumulative decision count (the quantity bounded by [max_decisions]). *)

(** {1 DRUP proof logging}

    Off by default, and off-path free: until {!enable_proof} is called the
    instance carries no proof structure at all (not an empty one), and
    {!add_clause}/{!solve} allocate nothing extra. *)

val enable_proof : t -> unit
(** Start recording original clauses and derivation steps.  Must be called
    before the first {!add_clause} for the original-CNF record to be
    complete.  Idempotent. *)

val proof_enabled : t -> bool
(** Whether a proof log is physically allocated on this instance. *)

val original_clauses : t -> int array list
(** The raw clauses passed to {!add_clause}, in order, before any level-0
    simplification.  Empty if proof logging is disabled. *)

val proof_steps : t -> proof_step list
(** The derivation, in order.  After an [Unsat] answer with proof logging
    enabled, the log contains an empty-clause step; feed it together with
    {!original_clauses} to {!Proof.check_derivation}.  Empty if proof
    logging is disabled. *)
