(** CDCL SAT solver: two-watched literals, VSIDS decisions, first-UIP
    conflict learning, phase saving and Luby restarts.  One instance per
    satisfiability query (no incrementality is needed by SOFT).

    Literal encoding: variable [v] yields literal [2*v] (positive) and
    [2*v+1] (negated). *)

type stop_reason = Conflicts | Decisions | Time
(** Which budget stopped an inconclusive solve. *)

type result = Sat | Unsat | Unknown of stop_reason

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val add_clause : t -> int list -> unit
(** Add a problem clause (list of literals).  Must be called before
    {!solve}.  Tautologies are dropped; an empty clause makes the instance
    trivially unsatisfiable. *)

val solve : ?max_conflicts:int -> ?max_decisions:int -> ?deadline:float -> t -> result
(** Decide the instance.  [max_conflicts]/[max_decisions] bound the search
    effort spent in this call; [deadline] is an absolute monotonic time in
    {!Mono.now} seconds.  With no budgets the search runs to completion.
    On budget exhaustion the result is [Unknown] and the instance remains
    usable (the search is unwound to decision level 0). *)

val model_value : t -> int -> bool
(** After [Sat]: the assignment of a variable (unassigned vars read as
    false). *)

val lit_var : int -> int
val lit_neg : int -> int
val lit_sign : int -> bool

val stats : t -> int * int * int * int
(** [(conflicts, propagations, nvars, nclauses)]. *)

val decisions : t -> int
(** Cumulative decision count (the quantity bounded by [max_decisions]). *)
