/* Monotonic clock for deadline and timing logic.  Unix.gettimeofday is
   wall-clock time and steps under NTP adjustment, which corrupts both the
   reported stage timings and any deadline arithmetic built on them.

   Two entry points for the same reading: the unboxed one is what native
   code calls ([@unboxed] [@@noalloc] on the OCaml external) — it returns
   a raw int64_t, allocates nothing, and touches no runtime state, so it
   is safe and cheap from any domain concurrently; the boxed one exists
   only for bytecode.  clock_gettime(CLOCK_MONOTONIC) is thread-safe. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim int64_t soft_mono_clock_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value soft_mono_clock_ns(value unit)
{
  return caml_copy_int64(soft_mono_clock_ns_unboxed(unit));
}
