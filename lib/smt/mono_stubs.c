/* Monotonic clock for deadline and timing logic.  Unix.gettimeofday is
   wall-clock time and steps under NTP adjustment, which corrupts both the
   reported stage timings and any deadline arithmetic built on them. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value soft_mono_clock_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
