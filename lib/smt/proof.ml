(* Independent DRUP proof checker.

   [check_derivation originals steps] replays a clause derivation produced
   by {!Sat} (with proof logging enabled) against the raw original CNF and
   accepts it only if every added clause has the reverse-unit-propagation
   property — assuming its negation and propagating units over the clauses
   admitted so far yields a conflict — and the derivation reaches the
   empty clause.  The code shares nothing with [Sat] beyond the literal
   encoding (variable [v] is literals [2*v]/[2*v+1]): it is a second,
   deliberately separate implementation of unit propagation, so a bug in
   the solver's propagation or conflict analysis cannot vouch for itself.

   The checker's top-level assignment only ever grows (units are
   propagated permanently as clauses are admitted; RUP assumptions are
   trailed and undone), so the two-watched-literal invariant needs no
   repair on undo. *)

type verdict = Valid | Invalid of string

let lit_var l = l lsr 1
let lit_neg l = l lxor 1

type cls = { lits : int array; mutable alive : bool }

type t = {
  mutable value : int array; (* var -> 0 unassigned / 1 true / 2 false *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable qhead : int;
  mutable watches : int list array; (* watched literal -> clause indices *)
  mutable clauses : cls array;
  mutable nclauses : int;
  index : (int list, int list) Hashtbl.t; (* sorted lits -> clause indices *)
  mutable refuted : bool; (* a top-level contradiction has been reached *)
}

let create () =
  {
    value = Array.make 16 0;
    trail = Array.make 16 0;
    trail_size = 0;
    qhead = 0;
    watches = Array.make 32 [];
    clauses = Array.make 16 { lits = [||]; alive = false };
    nclauses = 0;
    index = Hashtbl.create 256;
    refuted = false;
  }

let ensure_vars t lits =
  let maxv = Array.fold_left (fun m l -> max m (lit_var l)) (-1) lits in
  let need = maxv + 1 in
  if need > Array.length t.value then begin
    let cap = max need (2 * Array.length t.value) in
    let value = Array.make cap 0 in
    Array.blit t.value 0 value 0 (Array.length t.value);
    t.value <- value;
    let trail = Array.make cap 0 in
    Array.blit t.trail 0 trail 0 t.trail_size;
    t.trail <- trail;
    let watches = Array.make (2 * cap) [] in
    Array.blit t.watches 0 watches 0 (Array.length t.watches);
    t.watches <- watches
  end

let lit_value t l =
  let a = t.value.(lit_var l) in
  if a = 0 then 0 else if l land 1 = 1 then 3 - a else a

let assign t l =
  t.value.(lit_var l) <- (if l land 1 = 1 then 2 else 1);
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

(* Unit propagation to fixpoint; returns [true] on conflict. *)
let propagate t =
  let conflict = ref false in
  while (not !conflict) && t.qhead < t.trail_size do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let fl = lit_neg l in
    (* clauses watching [fl] just lost that literal *)
    let ws = t.watches.(fl) in
    t.watches.(fl) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest ->
        let c = t.clauses.(ci) in
        if not c.alive then go rest (* deleted: drop the watch lazily *)
        else begin
          if c.lits.(0) = fl then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- fl
          end;
          if lit_value t c.lits.(0) = 1 then begin
            t.watches.(fl) <- ci :: t.watches.(fl);
            go rest
          end
          else begin
            let n = Array.length c.lits in
            let k = ref 2 in
            while !k < n && lit_value t c.lits.(!k) = 2 do
              incr k
            done;
            if !k < n then begin
              let tmp = c.lits.(1) in
              c.lits.(1) <- c.lits.(!k);
              c.lits.(!k) <- tmp;
              t.watches.(c.lits.(1)) <- ci :: t.watches.(c.lits.(1));
              go rest
            end
            else begin
              t.watches.(fl) <- ci :: t.watches.(fl);
              match lit_value t c.lits.(0) with
              | 2 ->
                List.iter (fun ci' -> t.watches.(fl) <- ci' :: t.watches.(fl)) rest;
                conflict := true
              | 0 ->
                assign t c.lits.(0);
                go rest
              | _ -> go rest
            end
          end
        end
    in
    go ws
  done;
  !conflict

(* Normalize a raw clause: sorted, duplicate-free literals, or [None] for
   a tautology (inert: it can never propagate or conflict). *)
let normalize raw =
  let lits = List.sort_uniq compare (Array.to_list raw) in
  if List.exists (fun l -> List.mem (lit_neg l) lits) lits then None
  else Some lits

let store t arr key =
  if t.nclauses >= Array.length t.clauses then begin
    let a = Array.make (2 * Array.length t.clauses) { lits = [||]; alive = false } in
    Array.blit t.clauses 0 a 0 t.nclauses;
    t.clauses <- a
  end;
  let ci = t.nclauses in
  t.clauses.(ci) <- { lits = arr; alive = true };
  t.nclauses <- ci + 1;
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.index key) in
  Hashtbl.replace t.index key (ci :: prev);
  ci

(* Admit a clause into the database, updating the permanent top-level
   assignment.  Assumes the top level is at propagation fixpoint. *)
let attach t raw =
  match normalize raw with
  | None -> ()
  | Some lits ->
    let arr = Array.of_list lits in
    ensure_vars t arr;
    let n = Array.length arr in
    if n = 0 then t.refuted <- true
    else if Array.exists (fun l -> lit_value t l = 1) arr then
      (* permanently satisfied: keep for deletion lookups, never watch *)
      ignore (store t arr lits)
    else begin
      (* move currently-non-false literals to the front; top-level
         assignments are permanent, so false-at-attach stays false *)
      let j = ref 0 in
      for i = 0 to n - 1 do
        if lit_value t arr.(i) <> 2 then begin
          let tmp = arr.(!j) in
          arr.(!j) <- arr.(i);
          arr.(i) <- tmp;
          incr j
        end
      done;
      let ci = store t arr lits in
      if !j = 0 then t.refuted <- true
      else if !j = 1 then begin
        assign t arr.(0);
        if propagate t then t.refuted <- true
      end
      else begin
        t.watches.(arr.(0)) <- ci :: t.watches.(arr.(0));
        t.watches.(arr.(1)) <- ci :: t.watches.(arr.(1))
      end
    end

let delete t raw =
  match normalize raw with
  | None -> ()
  | Some lits -> (
    match Hashtbl.find_opt t.index lits with
    | None | Some [] -> () (* unknown deletions are ignored, as in drat-trim *)
    | Some (ci :: rest) ->
      t.clauses.(ci).alive <- false;
      Hashtbl.replace t.index lits rest)

(* Does [raw] have the reverse-unit-propagation property w.r.t. the
   current database?  Assume the negation of every literal, propagate,
   demand a conflict; the temporary trail suffix is undone either way. *)
let rup_holds t raw =
  ensure_vars t raw;
  let mark = t.trail_size in
  let qhead0 = t.qhead in
  let satisfied = ref false in
  let n = Array.length raw in
  let i = ref 0 in
  while (not !satisfied) && !i < n do
    let l = raw.(!i) in
    (match lit_value t l with
     | 1 -> satisfied := true (* ¬l contradicts the assignment outright *)
     | 2 -> () (* ¬l already holds *)
     | _ -> assign t (lit_neg l));
    incr i
  done;
  let refutes = !satisfied || propagate t in
  for j = t.trail_size - 1 downto mark do
    t.value.(lit_var t.trail.(j)) <- 0
  done;
  t.trail_size <- mark;
  t.qhead <- qhead0;
  refutes

let pp_clause fmt lits =
  if Array.length lits = 0 then Format.fprintf fmt "<empty>"
  else
    Array.iteri
      (fun i l ->
        Format.fprintf fmt "%s%s%d" (if i > 0 then " " else "")
          (if l land 1 = 1 then "-" else "") (lit_var l))
      lits

let check_derivation originals steps =
  let t = create () in
  List.iter (attach t) originals;
  if propagate t then t.refuted <- true;
  let rec go i = function
    | [] -> if t.refuted then Valid else Invalid "derivation does not reach the empty clause"
    | _ when t.refuted -> Valid (* contradiction established; the rest is moot *)
    | Sat.P_delete lits :: rest ->
      delete t lits;
      go (i + 1) rest
    | Sat.P_add lits :: rest ->
      if rup_holds t lits then begin
        attach t lits;
        go (i + 1) rest
      end
      else
        Invalid
          (Format.asprintf "step %d is not reverse-unit-propagation: %a" i pp_clause lits)
  in
  go 0 steps
