(* Incremental solving session: one persistent bit-blasting context over
   one persistent SAT instance, shared by a run of closely related
   queries that all contain a common [base] conjunction.

   The base is blasted once, as hard clauses.  Each query's remaining
   conjuncts are blasted (memoized by hash-consed expr id, so shared
   sub-structure across the run costs nothing) and guarded by a fresh
   activation literal [g]: the clause set is [¬g ∨ lit(extra)], and the
   query is decided by [Sat.solve ~assumptions:[|g|]].  Before the next
   query the guard is retired with a unit [¬g], permanently satisfying
   the previous query's guarded clauses while keeping every learnt
   clause, variable activity and saved phase for the rest of the run —
   the amortization the crosscheck's row-major loop exploits.

   Queries go through {!Solver.check_with}, so a session query sees the
   exact frontend pipeline a scratch {!Solver.check} sees: constant
   folding, memo cache, interval filter, query hook, model sanity check.
   Two things keep session answers byte-identical to scratch answers:

   - Sat answers are re-derived by a hook-suppressed scratch solve on a
     fresh instance ({!Solver.solve_scratch} with [fire_hook:false]).
     The session's own model is correct but not canonical — its variable
     numbering and saved phases depend on everything solved before it in
     the row — whereas the confirm solve reproduces the witness scratch
     mode would publish.  Suppressing the hook keeps the fault-injection
     stream aligned: one draw per query in both modes.  A confirm that
     answers Unsat contradicts the session and raises {!Solver.Solver_error}.
   - Unsat answers are published directly: both modes are sound and
     complete when budgets do not bite, and Unsat carries no witness to
     normalize.

   Certify mode is the documented exception: an assumption-failure Unsat
   derives no empty clause, so the session's DRUP log cannot certify it.
   {!check} therefore auto-falls back to a plain scratch {!Solver.check}
   whenever certification is enabled; sessions never publish an
   uncertified Unsat. *)

type t = {
  bctx : Bitblast.ctx;
  base_ids : (int, unit) Hashtbl.t; (* bids of the hard-asserted base *)
  mutable active : int option; (* previous query's guard, to retire *)
}

let create base =
  let st = Solver.stats () in
  st.Solver.sessions_opened <- st.Solver.sessions_opened + 1;
  let bctx = Bitblast.create () in
  let base_ids = Hashtbl.create 16 in
  List.iter
    (fun (b : Expr.boolean) ->
      Bitblast.assert_bool bctx b;
      Hashtbl.replace base_ids b.Expr.bid ())
    base;
  { bctx; base_ids; active = None }

(* The incremental back end handed to [Solver.check_with]: decides the
   query's conjunction on the session instance under a fresh activation
   literal.  Mirrors [Solver.run_sat] step for step — deadline anchored
   before blasting, hook fired between anchoring and search — so budget
   accounting and fault delivery match scratch mode. *)
let core ?(on_unsat = fun _ -> ()) t budget conds =
  Cancel.poll ();
  let st = Solver.stats () in
  let sat = t.bctx.Bitblast.sat in
  let t0 = Mono.now () in
  (match t.active with
  | Some g ->
    Sat.add_clause sat [ Sat.lit_neg g ];
    t.active <- None
  | None -> ());
  let retained = Sat.learnt_count sat in
  let g = Bitblast.fresh t.bctx in
  List.iter
    (fun (b : Expr.boolean) ->
      if not (Hashtbl.mem t.base_ids b.Expr.bid) then
        Sat.add_clause sat [ Sat.lit_neg g; Bitblast.blast_bool t.bctx b ])
    conds;
  t.active <- Some g;
  let deadline =
    Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) budget.Solver.b_timeout_ms
  in
  Solver.run_query_hook ();
  st.Solver.sat_calls <- st.Solver.sat_calls + 1;
  st.Solver.assumption_solves <- st.Solver.assumption_solves + 1;
  st.Solver.learnt_retained <- st.Solver.learnt_retained + retained;
  let r =
    Sat.solve ~assumptions:[| g |] ?max_conflicts:budget.Solver.b_max_conflicts
      ?max_decisions:budget.Solver.b_max_decisions ?deadline sat
  in
  st.Solver.solver_time <- st.Solver.solver_time +. Mono.elapsed t0;
  match r with
  | Sat.Unsat ->
    (* the failed-assumption core attributes the refutation: an empty
       core means the base alone (plus unguarded unit clauses) is
       contradictory; a non-empty one implicates this query's guard *)
    on_unsat (Sat.failed_assumptions sat);
    Solver.Unsat
  | Sat.Unknown Sat.Conflicts -> Solver.Unknown Solver.Out_of_conflicts
  | Sat.Unknown Sat.Decisions -> Solver.Unknown Solver.Out_of_decisions
  | Sat.Unknown Sat.Time -> Solver.Unknown Solver.Out_of_time
  | Sat.Sat -> (
    (* canonical witness: re-derive the model on a fresh instance so the
       published assignment is the one scratch mode would publish *)
    match Solver.solve_scratch ~fire_hook:false budget conds with
    | Solver.Sat _ as s -> s
    | Solver.Unsat ->
      raise
        (Solver.Solver_error
           ("incremental session answered Sat but the scratch confirmation is Unsat", conds))
    | Solver.Unknown _ as u -> u)

let check ?use_interval ?use_cache ?budget t conds =
  if Solver.certify_enabled () then
    (* assumption-failure Unsats carry no replayable DRUP derivation:
       under certification every query goes through the proof-checked
       scratch path instead (see header) *)
    Solver.check ?use_interval ?use_cache ?budget conds
  else Solver.check_with ?use_interval ?use_cache ?budget ~core:(core t) conds

(* --- shared blasted base -------------------------------------------------

   A [shared] value is the parallel crosscheck's answer to each worker
   re-blasting the same condition set: every path condition of both
   agents is Tseitin-blasted ONCE, into one frozen SAT instance, and
   each worker domain adopts a {!Sat.copy} of that instance on first
   touch.  Crucially the conditions are blasted with {!Bitblast.blast_bool}
   but never asserted: the prefix holds only Tseitin definitions (plus
   the [tru] unit), so it is satisfiable by construction, and a query
   [c₁ ∧ … ∧ cₙ] is decided purely under assumptions — the defining
   literals of the cᵢ.  No per-query clause ever enters an adopted
   instance, which is exactly the discipline that makes cross-domain
   learnt-clause exchange sound (see [exchange.ml]): every clause any
   adopted copy learns is implied by the common prefix alone.

   Adoption is per-(domain, shared base), memoized in domain-local
   state; the frozen original is never solved on, so concurrent
   [Sat.copy]s from many domains are safe.  Answers stay byte-identical
   to scratch mode by the same two rules as row sessions: Sat answers
   are confirmed by a hook-suppressed scratch solve (canonical witness),
   Unsat answers are published directly. *)

type shared = {
  sh_id : int; (* key for per-domain adoption memo *)
  sh_sat : Sat.t; (* the frozen prefix; adopted via Sat.copy, never solved *)
  sh_lits : (int, int) Hashtbl.t; (* expr bid -> defining literal *)
  sh_ring : Exchange.t option; (* learnt-clause exchange, if enabled *)
}

let next_shared_id = Atomic.make 0

let make_shared ?ring conds =
  let bctx = Bitblast.create () in
  let sh_lits = Hashtbl.create (List.length conds * 2) in
  List.iter
    (fun (b : Expr.boolean) ->
      if not (Hashtbl.mem sh_lits b.Expr.bid) then
        Hashtbl.replace sh_lits b.Expr.bid (Bitblast.blast_bool bctx b))
    conds;
  {
    sh_id = Atomic.fetch_and_add next_shared_id 1;
    sh_sat = bctx.Bitblast.sat;
    sh_lits;
    sh_ring = ring;
  }

(* per-domain memo of adopted copies, keyed by [sh_id] *)
let adopted_key : (int, Sat.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let adopt sh =
  let tbl = Domain.DLS.get adopted_key in
  match Hashtbl.find_opt tbl sh.sh_id with
  | Some sat -> sat
  | None ->
    let st = Solver.stats () in
    st.Solver.bases_adopted <- st.Solver.bases_adopted + 1;
    let sat = Sat.copy sh.sh_sat in
    (match sh.sh_ring with
    | None -> ()
    | Some ring ->
      let ep = Exchange.register ring in
      Sat.attach_exchange sat
        {
          Sat.ex_export =
            (fun lits ->
              st.Solver.clauses_exported <- st.Solver.clauses_exported + 1;
              Exchange.publish ep lits);
          ex_import =
            (fun () ->
              let cs = Exchange.drain ep in
              st.Solver.clauses_imported <-
                st.Solver.clauses_imported + List.length cs;
              cs);
        });
    Hashtbl.replace tbl sh.sh_id sat;
    sat

let release sh = Hashtbl.remove (Domain.DLS.get adopted_key) sh.sh_id

(* The shared-base back end for [Solver.check_with]: mirrors [core] above
   step for step (anchor, hook, budgets, Sat-confirm, Unknown mapping),
   except the query is decided entirely under assumptions — one defining
   literal per conjunct — on this domain's adopted copy.  A conjunct
   missing from the shared prefix (not expected from the crosscheck, but
   legal) falls back to a plain scratch solve, whose own hook firing
   keeps the fault-injection stream at one draw per query. *)
let shared_core sh budget conds =
  Cancel.poll ();
  match
    List.map (fun (b : Expr.boolean) -> Hashtbl.find_opt sh.sh_lits b.Expr.bid) conds
  with
  | lits when List.exists Option.is_none lits -> Solver.solve_scratch budget conds
  | lits ->
    let assumptions = Array.of_list (List.filter_map Fun.id lits) in
    let st = Solver.stats () in
    let sat = adopt sh in
    let t0 = Mono.now () in
    let retained = Sat.learnt_count sat in
    let deadline =
      Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) budget.Solver.b_timeout_ms
    in
    Solver.run_query_hook ();
    st.Solver.sat_calls <- st.Solver.sat_calls + 1;
    st.Solver.assumption_solves <- st.Solver.assumption_solves + 1;
    st.Solver.shared_solves <- st.Solver.shared_solves + 1;
    st.Solver.learnt_retained <- st.Solver.learnt_retained + retained;
    let r =
      Sat.solve ~assumptions ?max_conflicts:budget.Solver.b_max_conflicts
        ?max_decisions:budget.Solver.b_max_decisions ?deadline sat
    in
    st.Solver.solver_time <- st.Solver.solver_time +. Mono.elapsed t0;
    (match r with
    | Sat.Unsat -> Solver.Unsat
    | Sat.Unknown Sat.Conflicts -> Solver.Unknown Solver.Out_of_conflicts
    | Sat.Unknown Sat.Decisions -> Solver.Unknown Solver.Out_of_decisions
    | Sat.Unknown Sat.Time -> Solver.Unknown Solver.Out_of_time
    | Sat.Sat -> (
      match Solver.solve_scratch ~fire_hook:false budget conds with
      | Solver.Sat _ as s -> s
      | Solver.Unsat ->
        raise
          (Solver.Solver_error
             ( "shared-base session answered Sat but the scratch confirmation is Unsat",
               conds ))
      | Solver.Unknown _ as u -> u))

let check_shared ?use_interval ?use_cache ?budget sh conds =
  if Solver.certify_enabled () then
    (* same exception as row sessions: an assumption-failure Unsat has no
       replayable DRUP derivation *)
    Solver.check ?use_interval ?use_cache ?budget conds
  else
    Solver.check_with ?use_interval ?use_cache ?budget ~core:(shared_core sh) conds

type attribution = Base_refuted | Assumptions_refuted

let check_attributed ?use_interval ?use_cache ?budget t conds =
  if Solver.certify_enabled () then
    (Solver.check ?use_interval ?use_cache ?budget conds, None)
  else begin
    (* only an Unsat that actually reached the assumption solve carries a
       failed core; frontend short-circuits (constant folding, memo or
       canonical hit, interval filter) leave the attribution [None] *)
    let attr = ref None in
    let on_unsat failed =
      attr := Some (if failed = [] then Base_refuted else Assumptions_refuted)
    in
    let r =
      Solver.check_with ?use_interval ?use_cache ?budget ~core:(core ~on_unsat t) conds
    in
    (r, !attr)
  end
