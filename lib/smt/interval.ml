(* A cheap, sound UNSAT-only pre-filter for path-feasibility queries.

   Tracks, per variable, an unsigned range [lo, hi], known-one and known-zero
   bit masks, and a small set of forbidden exact values.  Constraints that do
   not fit the recognized shapes are ignored, which keeps the domain an
   over-approximation: [add] answering [`Unsat] is definitive, everything
   else must go to the SAT solver.

   This matters because the vast majority of branch conditions in OpenFlow
   agents are single-field validations (equality with a constant, range
   checks, masked-bits checks), which this domain decides instantly. *)

type dom = {
  lo : int64; (* unsigned *)
  hi : int64;
  ones : int64; (* bits known to be 1 *)
  zeros : int64; (* bits known to be 0 *)
  forbidden : int64 list;
  dwidth : int;
}

type t = { doms : (int, dom) Hashtbl.t }

type verdict = Unsat | Unknown

let create () = { doms = Hashtbl.create 16 }

let copy t = { doms = Hashtbl.copy t.doms }

let full_dom w =
  { lo = 0L; hi = Expr.mask w; ones = 0L; zeros = 0L; forbidden = []; dwidth = w }

let get t (v : Expr.var) =
  match Hashtbl.find_opt t.doms (Expr.var_id v) with
  | Some d -> d
  | None -> full_dom (Expr.var_width v)

let set t (v : Expr.var) d = Hashtbl.replace t.doms (Expr.var_id v) d

let ucmp = Int64.unsigned_compare
let umin a b = if ucmp a b <= 0 then a else b
let umax a b = if ucmp a b >= 0 then a else b

(* Is the domain definitely empty?  Only definite answers are allowed. *)
let dom_empty d =
  ucmp d.lo d.hi > 0
  || not (Int64.equal (Int64.logand d.ones d.zeros) 0L)
  || ucmp d.ones d.hi > 0 (* minimal mask-consistent value exceeds hi *)
  || ucmp (Int64.logand (Expr.mask d.dwidth) (Int64.lognot d.zeros)) d.lo < 0
  ||
  (* exact-value cases *)
  (Int64.equal d.lo d.hi && List.exists (Int64.equal d.lo) d.forbidden)
  || Int64.equal (Int64.logor d.ones d.zeros) (Expr.mask d.dwidth)
     && (let forced = d.ones in
         ucmp forced d.lo < 0 || ucmp forced d.hi > 0
         || List.exists (Int64.equal forced) d.forbidden)
  ||
  (* small range: enumerate *)
  (let span = Int64.sub d.hi d.lo in
   ucmp span 128L <= 0
   &&
   let ok = ref false in
   let v = ref d.lo in
   let continue = ref true in
   while !continue && not !ok do
     let x = !v in
     if
       Int64.equal (Int64.logand x d.ones) d.ones
       && Int64.equal (Int64.logand x d.zeros) 0L
       && not (List.exists (Int64.equal x) d.forbidden)
     then ok := true;
     if Int64.equal x d.hi then continue := false else v := Int64.add x 1L
   done;
   not !ok)

(* Recognize [e] as a variable possibly wrapped in zero-extensions, returning
   the variable. Extract/masks are handled separately. *)
let rec as_var (e : Expr.bv) =
  match e.node with
  | Expr.Var v -> Some v
  | Expr.Zext inner -> as_var inner
  | _ -> None

let rec as_const (e : Expr.bv) =
  match e.node with
  | Expr.Const c -> Some c
  | Expr.Zext inner -> as_const inner
  | _ -> None

(* Recognize [var & mask] for masked-equality constraints. *)
let as_masked_var (e : Expr.bv) =
  match e.node with
  | Expr.Binop (Expr.Andb, a, b) -> (
    match (as_var a, as_const b) with
    | Some v, Some m -> Some (v, m)
    | None, _ -> (
      match (as_const a, as_var b) with
      | Some m, Some v -> Some (v, m)
      | _ -> None)
    | _ -> None)
  | _ -> None

let refine_eq t v c =
  let d = get t v in
  set t v { d with lo = umax d.lo c; hi = umin d.hi c }

let refine_neq t v c =
  let d = get t v in
  set t v { d with forbidden = c :: d.forbidden }

let refine_ult t v c =
  (* v < c  (unsigned) *)
  if Int64.equal c 0L then
    let d = get t v in
    set t v { d with lo = 1L; hi = 0L } (* empty *)
  else
    let d = get t v in
    set t v { d with hi = umin d.hi (Int64.sub c 1L) }

let refine_ule t v c =
  let d = get t v in
  set t v { d with hi = umin d.hi c }

let refine_ugt t v c =
  (* v > c *)
  let d = get t v in
  if Int64.equal c (Expr.mask d.dwidth) then set t v { d with lo = 1L; hi = 0L }
  else set t v { d with lo = umax d.lo (Int64.add c 1L) }

let refine_uge t v c =
  let d = get t v in
  set t v { d with lo = umax d.lo c }

let refine_masked_eq t v m c =
  let d = get t v in
  set t v
    {
      d with
      ones = Int64.logor d.ones (Int64.logand m c);
      zeros = Int64.logor d.zeros (Int64.logand m (Int64.lognot c));
    }

(* Add one constraint. Unrecognized shapes are soundly ignored. *)
let rec add_bool t (b : Expr.boolean) =
  match b.bnode with
  | Expr.True | Expr.False -> ()
  | Expr.And (x, y) ->
    add_bool t x;
    add_bool t y
  | Expr.Not inner -> add_negated t inner
  | Expr.Cmp (op, x, y) -> add_cmp t op x y
  | Expr.Or _ -> ()

and add_negated t (b : Expr.boolean) =
  match b.bnode with
  | Expr.Cmp (Expr.Eq, x, y) -> (
    match (as_var x, as_const y, as_const x, as_var y) with
    | Some v, Some c, _, _ | _, _, Some c, Some v -> refine_neq t v c
    | _ -> ())
  | Expr.Or (x, y) ->
    (* ¬(x ∨ y) = ¬x ∧ ¬y *)
    add_negated t x;
    add_negated t y
  | Expr.Not inner -> add_bool t inner
  | _ -> ()

and add_cmp t op x y =
  match op with
  | Expr.Eq -> (
    match (as_var x, as_const y) with
    | Some v, Some c -> refine_eq t v c
    | _ -> (
      match (as_const x, as_var y) with
      | Some c, Some v -> refine_eq t v c
      | _ -> (
        match (as_masked_var x, as_const y) with
        | Some (v, m), Some c -> refine_masked_eq t v m c
        | _ -> (
          match (as_const x, as_masked_var y) with
          | Some c, Some (v, m) -> refine_masked_eq t v m c
          | _ -> ()))))
  | Expr.Ult -> (
    match (as_var x, as_const y) with
    | Some v, Some c -> refine_ult t v c
    | _ -> (
      match (as_const x, as_var y) with
      | Some c, Some v -> refine_ugt t v c
      | _ -> ()))
  | Expr.Ule -> (
    match (as_var x, as_const y) with
    | Some v, Some c -> refine_ule t v c
    | _ -> (
      match (as_const x, as_var y) with
      | Some c, Some v -> refine_uge t v c
      | _ -> ()))
  | Expr.Slt | Expr.Sle -> ()

let add t b =
  if Expr.is_false b then Unsat
  else begin
    add_bool t b;
    let empty = Hashtbl.fold (fun _ d acc -> acc || dom_empty d) t.doms false in
    if empty then Unsat else Unknown
  end

let check conds =
  let t = create () in
  let rec go = function
    | [] -> Unknown
    | c :: rest ->
      (* per-condition poll: long condition lists are a pre-SAT hot path *)
      Cancel.poll ();
      (match add t c with Unsat -> Unsat | Unknown -> go rest)
  in
  go conds

(* Hint for model-free concretization: a value consistent with the domain of
   [v], preferring the smallest admissible one. Best-effort (the SAT model is
   authoritative). *)
let suggest t (v : Expr.var) =
  let d = get t v in
  let candidate = umax d.lo d.ones in
  if
    ucmp candidate d.hi <= 0
    && Int64.equal (Int64.logand candidate d.zeros) 0L
    && Int64.equal (Int64.logand candidate d.ones) d.ones
    && not (List.exists (Int64.equal candidate) d.forbidden)
  then Some candidate
  else None
