(** Bounded, lock-free cross-domain learnt-clause exchange.

    A fixed-capacity ring of immutable literal arrays ([Atomic]-based, no
    locks) shared by the workers of one parallel crosscheck.  Producers
    publish low-LBD learnt clauses; consumers drain at restart
    boundaries.  The ring is deliberately lossy (a slow consumer misses
    overwritten entries) and may occasionally hand a consumer a
    duplicate under a racing overwrite — both are sound, because the
    shared-base discipline guarantees every published clause is implied
    by the common CNF prefix all consumers share (see [exchange.ml]).

    Clause literal arrays passed to {!publish} must never be mutated
    afterwards; [sat.ml] builds a fresh array per export. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument on a non-positive capacity. *)

val published : t -> int
(** Total clauses ever published (not bounded by capacity). *)

type endpoint
(** One per (domain, ring): tracks the domain's read position and tags
    its exports so it never re-imports its own clauses. *)

val register : t -> endpoint

val publish : endpoint -> int array -> unit
(** Lock-free; the array is owned by the ring from here on. *)

val drain : endpoint -> int array list
(** Clauses published by *other* endpoints since the last drain, oldest
    first, minus any the ring has already overwritten. *)
