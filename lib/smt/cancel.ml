type reason = Deadline | Memory

exception Cancelled of reason

type t = { flag : reason option Atomic.t }

let create () = { flag = Atomic.make None }

let cancel t r =
  (* First reason wins: a task killed for its deadline stays Hung even if a
     memory sweep cancels every live token a tick later. *)
  ignore (Atomic.compare_and_set t.flag None (Some r))

let is_cancelled t = Atomic.get t.flag <> None
let reason t = Atomic.get t.flag

let check t =
  match Atomic.get t.flag with None -> () | Some r -> raise (Cancelled r)

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let set_current t = Domain.DLS.set key (Some t)
let clear_current () = Domain.DLS.set key None
let current () = Domain.DLS.get key

let poll () =
  match Domain.DLS.get key with None -> () | Some t -> check t
