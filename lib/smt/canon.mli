(** Variable-renaming-invariant canonical forms of solver queries.

    A query (a conjunction of {!Expr.boolean}s) is rewritten into a
    normal form that is stable under α-renaming of its variables and
    under reassociation/commutation of its connectives: negation-normal
    form with flattened and shape-sorted commutative operand lists, and
    de Bruijn-style variable numbering in order of first occurrence in
    the normalized traversal.  Two queries that differ only in variable
    names (widths must agree) or in the order/association of commutative
    operands therefore share one canonical {!key} — the handle the
    solver's canonical memo layer caches verdicts under.

    The canonicalizer never builds new {!Expr} nodes (the interning
    tables stay untouched); it produces a serialized form over the
    hash-consed DAG, visiting each (node, polarity) once, so the cost is
    linear in the DAG and comparable to one bit-blasting pass.

    Soundness of reuse: equal keys mean the two queries are equal up to
    a width-preserving variable bijection plus commutative reordering,
    so satisfiability transfers exactly, and a model of one becomes a
    model of the other through the stored {!renaming}. *)

type key = string
(** The full serialized canonical form (not a digest: key equality is
    exact, so a lookup can never confuse two distinct queries). *)

type renaming
(** The width-preserving map between this query's variables and the
    canonical slot numbers [0, 1, ...] assigned at first occurrence. *)

val fingerprint : Expr.boolean list -> int
(** A cheap integer digest of the canonical form: queries with equal
    {!key}s always have equal fingerprints, while the converse can fail
    (it is a hash).  The solver uses it as a negative filter — a query
    whose fingerprint has never been seen cannot have an α-equivalent
    cached twin, so the full canonicalization passes are skipped on the
    (overwhelmingly common) miss path.  Memoized per hash-consed node
    for the domain's lifetime: interning is append-only, so shared
    sub-DAGs are fingerprinted once, not once per query. *)

val of_conds : Expr.boolean list -> key * renaming
(** Canonicalize the conjunction of [conds].  The key is invariant
    under α-renaming of variables and commutative reordering; the
    renaming is what translates models between the query's variable
    space and the canonical slot space. *)

val key_of_conds : Expr.boolean list -> key
(** [fst (of_conds conds)], for tests and diagnostics. *)

val slot_count : renaming -> int
(** Number of distinct variables the query mentions. *)

val to_canonical_bindings : renaming -> Model.t -> (int * int64) list
(** Project a model of this query into canonical slot space: the value
    of each variable the model binds, keyed by the variable's slot.
    Variables the model leaves unconstrained are omitted (they default
    to zero on both sides, see {!Model.get}). *)

val translate_model : renaming -> (int * int64) list -> Model.t
(** The inverse direction: rebuild a model over {e this} query's
    variables from canonical slot bindings cached for an α-equivalent
    query.  Slots with no binding stay absent (unconstrained). *)
