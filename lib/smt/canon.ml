(* Canonical (α-invariant) forms of solver queries — see canon.mli.

   Two passes over the hash-consed expression DAG, both memoized per
   (node, polarity) so shared substructure is visited once:

   1. *Shape*: a bottom-up structural digest that drops variable names
      (keeping widths), pushes negation to the atoms (NNF), flattens
      runs of the same effective connective, and sorts commutative
      operand lists by their own shapes.  Shapes are what make the
      ordering of pass 2 independent of variable identity.
   2. *Emission*: a deterministic traversal in shape-sorted order
      (stable on ties, so structurally identical builds agree) that
      assigns canonical node numbers in first-visit order, canonical
      variable slots in first-occurrence order (the de Bruijn-style
      numbering), and serializes one definition line per visited node.

   The serialized form is the cache key itself — not a digest of it —
   so key equality is exact structural equality of canonical forms and
   a hash collision can never smuggle one query's verdict to another.

   No Expr nodes are ever constructed here: negation and flattening are
   interpreted during traversal, which keeps the global interning
   tables (and the [expr_nodes] gauge) untouched by cache lookups. *)

type key = string
type renaming = (Expr.var * int) list

let commutative_binop = function
  | Expr.Add | Expr.Mul | Expr.Andb | Expr.Orb | Expr.Xorb -> true
  | Expr.Sub | Expr.Shl | Expr.Lshr -> false

let unop_tag = function Expr.Bnot -> "~" | Expr.Neg -> "-"

let binop_tag = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Andb -> "&"
  | Expr.Orb -> "|"
  | Expr.Xorb -> "^"
  | Expr.Shl -> "<<"
  | Expr.Lshr -> ">>"

let cmp_tag = function
  | Expr.Eq -> "="
  | Expr.Ult -> "u<"
  | Expr.Ule -> "u<="
  | Expr.Slt -> "s<"
  | Expr.Sle -> "s<="

(* A negated inequality is the complementary positive comparison with
   swapped operands (¬(x u< y) ≡ y u≤ x).  The Expr smart constructors
   apply exactly this rewrite when a negation is built directly, so a
   NNF-negated atom reached through an [Or]/[And] flip must normalize
   the same way or the two builds of one formula would key apart.  Only
   equality has no complementary comparison and keeps a negative
   polarity. *)
let norm_cmp op pol x y =
  if pol then (true, op, x, y)
  else
    match op with
    | Expr.Eq -> (false, Expr.Eq, x, y)
    | Expr.Ult -> (true, Expr.Ule, y, x)
    | Expr.Ule -> (true, Expr.Ult, y, x)
    | Expr.Slt -> (true, Expr.Sle, y, x)
    | Expr.Sle -> (true, Expr.Slt, y, x)

(* The effective connective of [b] seen under polarity [pol] (NNF view):
   a negated conjunction is a disjunction of negations and vice versa. *)
let rec eff (b : Expr.boolean) pol =
  match b.Expr.bnode with
  | Expr.Not x -> eff x (not pol)
  | Expr.And _ -> if pol then `And else `Or
  | Expr.Or _ -> if pol then `Or else `And
  | _ -> `Atom

(* Flatten the maximal run of [target]-connective nodes under polarity,
   returning the operand leaves as (node, polarity) in original order. *)
let operands target b pol =
  let rec go acc (b : Expr.boolean) pol =
    match b.Expr.bnode with
    | Expr.Not x -> go acc x (not pol)
    | Expr.And (x, y) when (if pol then `And else `Or) = target ->
      go (go acc x pol) y pol
    | Expr.Or (x, y) when (if pol then `Or else `And) = target ->
      go (go acc x pol) y pol
    | _ -> (b, pol) :: acc
  in
  List.rev (go [] b pol)

type state = {
  shape_bool_memo : (int * bool, string) Hashtbl.t;
  shape_bv_memo : (int, string) Hashtbl.t;
  bool_ids : (int * bool, int) Hashtbl.t;
  bv_ids : (int, int) Hashtbl.t;
  mutable next_id : int;
  slots : (int, int) Hashtbl.t; (* var id -> canonical slot *)
  mutable var_order : Expr.var list; (* reversed first-occurrence order *)
  buf : Buffer.t;
}

let create_state () =
  {
    shape_bool_memo = Hashtbl.create 64;
    shape_bv_memo = Hashtbl.create 64;
    bool_ids = Hashtbl.create 64;
    bv_ids = Hashtbl.create 64;
    next_id = 0;
    slots = Hashtbl.create 8;
    var_order = [];
    buf = Buffer.create 256;
  }

(* --- pass 1: structural shapes ---------------------------------------- *)

let digest = Digest.string

let rec shape_bv st (e : Expr.bv) =
  match Hashtbl.find_opt st.shape_bv_memo e.Expr.id with
  | Some s -> s
  | None ->
    let s =
      match e.Expr.node with
      | Expr.Const c -> digest (Printf.sprintf "k%d:%Ld" e.Expr.width c)
      | Expr.Var _ -> digest (Printf.sprintf "v%d" e.Expr.width)
      | Expr.Unop (op, a) -> digest ("u" ^ unop_tag op ^ shape_bv st a)
      | Expr.Binop (op, a, b) ->
        let sa = shape_bv st a and sb = shape_bv st b in
        let sa, sb = if commutative_binop op && sb < sa then (sb, sa) else (sa, sb) in
        digest ("p" ^ binop_tag op ^ sa ^ sb)
      | Expr.Ite (c, t, f) ->
        digest ("i" ^ shape_bool st c true ^ shape_bv st t ^ shape_bv st f)
      | Expr.Extract (a, hi, lo) ->
        digest (Printf.sprintf "x%d:%d" hi lo ^ shape_bv st a)
      | Expr.Concat (h, l) -> digest ("cc" ^ shape_bv st h ^ shape_bv st l)
      | Expr.Zext a -> digest (Printf.sprintf "z%d" e.Expr.width ^ shape_bv st a)
      | Expr.Sext a -> digest (Printf.sprintf "s%d" e.Expr.width ^ shape_bv st a)
    in
    Hashtbl.replace st.shape_bv_memo e.Expr.id s;
    s

and shape_bool st (b : Expr.boolean) pol =
  match Hashtbl.find_opt st.shape_bool_memo (b.Expr.bid, pol) with
  | Some s -> s
  | None ->
    let s =
      match b.Expr.bnode with
      | Expr.True -> digest (if pol then "T" else "F")
      | Expr.False -> digest (if pol then "F" else "T")
      | Expr.Not x -> shape_bool st x (not pol)
      | Expr.Cmp (op, x, y) ->
        let pos, op, x, y = norm_cmp op pol x y in
        let sx = shape_bv st x and sy = shape_bv st y in
        let sx, sy = if op = Expr.Eq && sy < sx then (sy, sx) else (sx, sy) in
        digest ((if pos then "c" else "n") ^ cmp_tag op ^ sx ^ sy)
      | Expr.And _ | Expr.Or _ ->
        let target = eff b pol in
        let kids = operands target b pol in
        let kid_shapes =
          List.sort compare (List.map (fun (k, kp) -> shape_bool st k kp) kids)
        in
        digest ((if target = `And then "A" else "O") ^ String.concat "" kid_shapes)
    in
    Hashtbl.replace st.shape_bool_memo (b.Expr.bid, pol) s;
    s

(* --- pass 2: deterministic emission ----------------------------------- *)

let fresh_id st line =
  let id = st.next_id in
  st.next_id <- id + 1;
  Buffer.add_string st.buf line;
  Buffer.add_char st.buf '\n';
  id

(* Stable sort by shape: operands with distinct shapes order canonically;
   shape ties (structurally identical siblings) keep their original
   order, which two α-equivalent builds share. *)
let by_shape shapes = List.stable_sort (fun (s1, _) (s2, _) -> compare (s1 : string) s2) shapes

let rec emit_bv st (e : Expr.bv) =
  match Hashtbl.find_opt st.bv_ids e.Expr.id with
  | Some id -> id
  | None ->
    let line =
      match e.Expr.node with
      | Expr.Const c -> Printf.sprintf "k%d:%Ld" e.Expr.width c
      | Expr.Var v ->
        let slot =
          match Hashtbl.find_opt st.slots (Expr.var_id v) with
          | Some s -> s
          | None ->
            let s = Hashtbl.length st.slots in
            Hashtbl.replace st.slots (Expr.var_id v) s;
            st.var_order <- v :: st.var_order;
            s
        in
        Printf.sprintf "v%d#%d" e.Expr.width slot
      | Expr.Unop (op, a) -> Printf.sprintf "u%s %d" (unop_tag op) (emit_bv st a)
      | Expr.Binop (op, a, b) ->
        let order =
          if commutative_binop op then
            by_shape [ (shape_bv st a, a); (shape_bv st b, b) ]
          else [ ("", a); ("", b) ]
        in
        let ids = List.map (fun (_, x) -> emit_bv st x) order in
        Printf.sprintf "p%s %s" (binop_tag op)
          (String.concat " " (List.map string_of_int ids))
      | Expr.Ite (c, t, f) ->
        let cid = emit_bool st c true in
        let tid = emit_bv st t in
        let fid = emit_bv st f in
        Printf.sprintf "i %d %d %d" cid tid fid
      | Expr.Extract (a, hi, lo) -> Printf.sprintf "x%d:%d %d" hi lo (emit_bv st a)
      | Expr.Concat (h, l) ->
        let hid = emit_bv st h in
        let lid = emit_bv st l in
        Printf.sprintf "cc %d %d" hid lid
      | Expr.Zext a -> Printf.sprintf "z%d %d" e.Expr.width (emit_bv st a)
      | Expr.Sext a -> Printf.sprintf "s%d %d" e.Expr.width (emit_bv st a)
    in
    let id = fresh_id st line in
    Hashtbl.replace st.bv_ids e.Expr.id id;
    id

and emit_bool st (b : Expr.boolean) pol =
  match Hashtbl.find_opt st.bool_ids (b.Expr.bid, pol) with
  | Some id -> id
  | None ->
    (match b.Expr.bnode with
    | Expr.Not x -> emit_bool st x (not pol) (* NNF: fold the negation away *)
    | _ ->
      let line =
        match b.Expr.bnode with
        | Expr.Not _ -> assert false
        | Expr.True -> if pol then "T" else "F"
        | Expr.False -> if pol then "F" else "T"
        | Expr.Cmp (op, x, y) ->
          let pos, op, x, y = norm_cmp op pol x y in
          let order =
            if op = Expr.Eq then by_shape [ (shape_bv st x, x); (shape_bv st y, y) ]
            else [ ("", x); ("", y) ]
          in
          let ids = List.map (fun (_, e) -> emit_bv st e) order in
          Printf.sprintf "%s%s %s"
            (if pos then "c" else "n")
            (cmp_tag op)
            (String.concat " " (List.map string_of_int ids))
        | Expr.And _ | Expr.Or _ ->
          let target = eff b pol in
          let kids = operands target b pol in
          let sorted = by_shape (List.map (fun (k, kp) -> (shape_bool st k kp, (k, kp))) kids) in
          let ids = List.map (fun (_, (k, kp)) -> emit_bool st k kp) sorted in
          Printf.sprintf "%s %s"
            (if target = `And then "A" else "O")
            (String.concat " " (List.map string_of_int ids))
      in
      let id = fresh_id st line in
      Hashtbl.replace st.bool_ids (b.Expr.bid, pol) id;
      id)

(* --- pass 0: cheap α-invariant fingerprints --------------------------- *)

(* An integer digest of the same normal form the two passes above
   produce: NNF with [norm_cmp]-normalized atoms, flattened connective
   runs, commutative operands folded order-insensitively, variables
   reduced to their widths.  Queries with equal canonical keys always
   have equal fingerprints; the converse can fail (it is a hash), so a
   fingerprint match licenses nothing by itself — the solver uses it as
   a negative filter that makes the common no-α-twin case nearly free,
   and only computes full canonical forms when fingerprints collide.

   The memo is keyed by hash-consed node id and lives for the domain's
   lifetime (not per query): interning is append-only, so an id never
   changes meaning, and path exploration re-fingerprints shared
   prefixes for free. *)

type fp_state = {
  fp_bool : (int * bool, int) Hashtbl.t;
  fp_bv : (int, int) Hashtbl.t;
}

let fp_key : fp_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { fp_bool = Hashtbl.create 1024; fp_bv = Hashtbl.create 1024 })

(* FNV-1a-style fold: cheap, deterministic, order-sensitive — operand
   lists that must not be order-sensitive are sorted before folding. *)
let mix h x = ((h * 0x01000193) lxor x) land max_int
let mix2 h a b = mix (mix h a) b

let rec fp_bv st (e : Expr.bv) =
  match Hashtbl.find_opt st.fp_bv e.Expr.id with
  | Some h -> h
  | None ->
    let h =
      match e.Expr.node with
      | Expr.Const c -> mix2 1 e.Expr.width (Int64.to_int c land max_int)
      | Expr.Var _ -> mix 2 e.Expr.width
      | Expr.Unop (op, a) -> mix2 3 (Hashtbl.hash (unop_tag op)) (fp_bv st a)
      | Expr.Binop (op, a, b) ->
        let ha = fp_bv st a and hb = fp_bv st b in
        let ha, hb = if commutative_binop op && hb < ha then (hb, ha) else (ha, hb) in
        mix2 (mix 4 (Hashtbl.hash (binop_tag op))) ha hb
      | Expr.Ite (c, t, f) -> mix2 (mix 5 (fp_bool st c true)) (fp_bv st t) (fp_bv st f)
      | Expr.Extract (a, hi, lo) -> mix (mix2 6 hi lo) (fp_bv st a)
      | Expr.Concat (h, l) -> mix2 7 (fp_bv st h) (fp_bv st l)
      | Expr.Zext a -> mix2 8 e.Expr.width (fp_bv st a)
      | Expr.Sext a -> mix2 9 e.Expr.width (fp_bv st a)
    in
    Hashtbl.replace st.fp_bv e.Expr.id h;
    h

and fp_bool st (b : Expr.boolean) pol =
  match Hashtbl.find_opt st.fp_bool (b.Expr.bid, pol) with
  | Some h -> h
  | None ->
    let h =
      match b.Expr.bnode with
      | Expr.True -> if pol then 10 else 11
      | Expr.False -> if pol then 11 else 10
      | Expr.Not x -> fp_bool st x (not pol)
      | Expr.Cmp (op, x, y) ->
        let pos, op, x, y = norm_cmp op pol x y in
        let hx = fp_bv st x and hy = fp_bv st y in
        let hx, hy = if op = Expr.Eq && hy < hx then (hy, hx) else (hx, hy) in
        mix2 (mix2 12 (Bool.to_int pos) (Hashtbl.hash (cmp_tag op))) hx hy
      | Expr.And _ | Expr.Or _ ->
        let target = eff b pol in
        let kids = operands target b pol in
        let hs = List.sort compare (List.map (fun (k, kp) -> fp_bool st k kp) kids) in
        List.fold_left mix (if target = `And then 13 else 14) hs
    in
    Hashtbl.replace st.fp_bool (b.Expr.bid, pol) h;
    h

(* Same root treatment as [of_conds]: flatten each conjunct's top-level
   And run, dedup repeated (node, polarity) operands, fold the operand
   fingerprints order-insensitively under a virtual And. *)
let fingerprint conds =
  let st = Domain.DLS.get fp_key in
  let kids = List.concat_map (fun c -> operands `And c true) conds in
  let seen = Hashtbl.create 16 in
  let hs =
    List.filter_map
      (fun ((k : Expr.boolean), kp) ->
        if Hashtbl.mem seen (k.Expr.bid, kp) then None
        else begin
          Hashtbl.replace seen (k.Expr.bid, kp) ();
          Some (fp_bool st k kp)
        end)
      kids
  in
  List.fold_left mix 15 (List.sort compare hs)

let of_conds conds =
  let st = create_state () in
  (* the query is the conjunction of [conds]: flatten each conjunct's
     own top-level And run into one operand list, dedup repeats, and
     emit in shape-sorted order — the root is a virtual And node *)
  let kids = List.concat_map (fun c -> operands `And c true) conds in
  let seen = Hashtbl.create 16 in
  let kids =
    List.filter
      (fun ((k : Expr.boolean), kp) ->
        if Hashtbl.mem seen (k.Expr.bid, kp) then false
        else begin
          Hashtbl.replace seen (k.Expr.bid, kp) ();
          true
        end)
      kids
  in
  let sorted = by_shape (List.map (fun (k, kp) -> (shape_bool st k kp, (k, kp))) kids) in
  let ids = List.map (fun (_, (k, kp)) -> emit_bool st k kp) sorted in
  Buffer.add_string st.buf ("R " ^ String.concat " " (List.map string_of_int ids));
  Buffer.add_char st.buf '\n';
  let renaming =
    List.mapi (fun i v -> (v, i)) (List.rev st.var_order)
  in
  (Buffer.contents st.buf, renaming)

let key_of_conds conds = fst (of_conds conds)

let slot_count (r : renaming) = List.length r

let to_canonical_bindings (r : renaming) m =
  List.filter_map
    (fun (v, slot) -> if Model.mem m v then Some (slot, Model.get m v) else None)
    r

let translate_model (r : renaming) cbinds =
  Model.of_bindings
    (List.filter_map
       (fun (v, slot) ->
         Option.map (fun value -> (v, value)) (List.assoc_opt slot cbinds))
       r)
