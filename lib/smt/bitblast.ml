(* Tseitin bit-blasting of bitvector expressions to CNF over a [Sat.t]
   instance.  Bit order is LSB-first throughout.  Blasting is memoized per
   expression id (hash-consing makes this effective across the shared
   sub-structure of a path condition). *)

type ctx = {
  sat : Sat.t;
  tru : int; (* literal fixed to true *)
  bv_memo : (int, int array) Hashtbl.t;
  bool_memo : (int, int) Hashtbl.t;
  var_bits : (int, int array) Hashtbl.t; (* Expr var id -> sat vars *)
}

(* [proof] must be decided at creation: the [tru] clause below is already
   part of the CNF a DRUP checker replays, so enabling logging any later
   would leave the original-clause record incomplete. *)
let create ?(proof = false) () =
  let sat = Sat.create () in
  if proof then Sat.enable_proof sat;
  let tv = Sat.new_var sat in
  let tru = 2 * tv in
  Sat.add_clause sat [ tru ];
  {
    sat;
    tru;
    bv_memo = Hashtbl.create 512;
    bool_memo = Hashtbl.create 512;
    var_bits = Hashtbl.create 64;
  }

let lit_neg = Sat.lit_neg

let fls ctx = lit_neg ctx.tru

let fresh ctx = 2 * Sat.new_var ctx.sat

let is_tru ctx l = l = ctx.tru
let is_fls ctx l = l = lit_neg ctx.tru

(* --- gates ----------------------------------------------------------- *)

let g_and ctx a b =
  if is_fls ctx a || is_fls ctx b then fls ctx
  else if is_tru ctx a then b
  else if is_tru ctx b then a
  else if a = b then a
  else if a = lit_neg b then fls ctx
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ lit_neg o; a ];
    Sat.add_clause ctx.sat [ lit_neg o; b ];
    Sat.add_clause ctx.sat [ o; lit_neg a; lit_neg b ];
    o
  end

let g_or ctx a b = lit_neg (g_and ctx (lit_neg a) (lit_neg b))

let g_xor ctx a b =
  if is_fls ctx a then b
  else if is_fls ctx b then a
  else if is_tru ctx a then lit_neg b
  else if is_tru ctx b then lit_neg a
  else if a = b then fls ctx
  else if a = lit_neg b then ctx.tru
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ lit_neg o; a; b ];
    Sat.add_clause ctx.sat [ lit_neg o; lit_neg a; lit_neg b ];
    Sat.add_clause ctx.sat [ o; lit_neg a; b ];
    Sat.add_clause ctx.sat [ o; a; lit_neg b ];
    o
  end

let g_xnor ctx a b = lit_neg (g_xor ctx a b)

(* if c then a else b *)
let g_mux ctx c a b =
  if is_tru ctx c then a
  else if is_fls ctx c then b
  else if a = b then a
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ lit_neg c; lit_neg a; o ];
    Sat.add_clause ctx.sat [ lit_neg c; a; lit_neg o ];
    Sat.add_clause ctx.sat [ c; lit_neg b; o ];
    Sat.add_clause ctx.sat [ c; b; lit_neg o ];
    o
  end

let g_maj ctx a b c =
  g_or ctx (g_and ctx a b) (g_or ctx (g_and ctx a c) (g_and ctx b c))

(* --- arithmetic ------------------------------------------------------- *)

let full_adder ctx a b cin =
  let sum = g_xor ctx (g_xor ctx a b) cin in
  let cout = g_maj ctx a b cin in
  (sum, cout)

let ripple_add ctx a b cin =
  let w = Array.length a in
  let out = Array.make w (fls ctx) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder ctx a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out

let bits_of_const ctx width c =
  Array.init width (fun i ->
      if Int64.equal (Int64.logand (Int64.shift_right_logical c i) 1L) 1L then ctx.tru
      else fls ctx)

(* --- comparisons ------------------------------------------------------ *)

let blast_eq ctx a b =
  let w = Array.length a in
  let acc = ref ctx.tru in
  for i = 0 to w - 1 do
    acc := g_and ctx !acc (g_xnor ctx a.(i) b.(i))
  done;
  !acc

let blast_ult ctx a b =
  (* from LSB upward: lt_i = (¬a_i ∧ b_i) ∨ ((a_i ≡ b_i) ∧ lt_{i-1}) *)
  let w = Array.length a in
  let lt = ref (fls ctx) in
  for i = 0 to w - 1 do
    let bit_lt = g_and ctx (lit_neg a.(i)) b.(i) in
    let bit_eq = g_xnor ctx a.(i) b.(i) in
    lt := g_or ctx bit_lt (g_and ctx bit_eq !lt)
  done;
  !lt

(* --- expression blasting ---------------------------------------------- *)

let rec blast_bv ctx (e : Expr.bv) =
  match Hashtbl.find_opt ctx.bv_memo e.id with
  | Some bits -> bits
  | None ->
    (* Poll on every memo miss: a pathological blast (wide multiplies,
       deep shifter chains) generates gates far from any CDCL budget
       checkpoint, and this is where a watchdog deadline must land. *)
    Cancel.poll ();
    let bits =
      match e.node with
      | Expr.Const c -> bits_of_const ctx e.width c
      | Expr.Var v ->
        let vid = Expr.var_id v in
        (match Hashtbl.find_opt ctx.var_bits vid with
         | Some sat_vars -> Array.map (fun sv -> 2 * sv) sat_vars
         | None ->
           let sat_vars = Array.init e.width (fun _ -> Sat.new_var ctx.sat) in
           Hashtbl.add ctx.var_bits vid sat_vars;
           Array.map (fun sv -> 2 * sv) sat_vars)
      | Expr.Unop (Expr.Bnot, a) -> Array.map lit_neg (blast_bv ctx a)
      | Expr.Unop (Expr.Neg, a) ->
        let nb = Array.map lit_neg (blast_bv ctx a) in
        ripple_add ctx nb (bits_of_const ctx e.width 0L) ctx.tru
      | Expr.Binop (op, a, b) -> blast_binop ctx op a b
      | Expr.Ite (c, a, b) ->
        let cl = blast_bool ctx c in
        let ab = blast_bv ctx a and bb = blast_bv ctx b in
        Array.init e.width (fun i -> g_mux ctx cl ab.(i) bb.(i))
      | Expr.Extract (a, hi, lo) ->
        let ab = blast_bv ctx a in
        Array.sub ab lo (hi - lo + 1)
      | Expr.Concat (high, low) ->
        Array.append (blast_bv ctx low) (blast_bv ctx high)
      | Expr.Zext a ->
        let ab = blast_bv ctx a in
        Array.init e.width (fun i -> if i < Array.length ab then ab.(i) else fls ctx)
      | Expr.Sext a ->
        let ab = blast_bv ctx a in
        let msb = ab.(Array.length ab - 1) in
        Array.init e.width (fun i -> if i < Array.length ab then ab.(i) else msb)
    in
    Hashtbl.add ctx.bv_memo e.id bits;
    bits

and blast_binop ctx op a b =
  let w = a.Expr.width in
  let ab = blast_bv ctx a and bb = blast_bv ctx b in
  match op with
  | Expr.Add -> ripple_add ctx ab bb (fls ctx)
  | Expr.Sub -> ripple_add ctx ab (Array.map lit_neg bb) ctx.tru
  | Expr.Andb -> Array.init w (fun i -> g_and ctx ab.(i) bb.(i))
  | Expr.Orb -> Array.init w (fun i -> g_or ctx ab.(i) bb.(i))
  | Expr.Xorb -> Array.init w (fun i -> g_xor ctx ab.(i) bb.(i))
  | Expr.Mul ->
    (* shift-and-add; O(w^2) gates, acceptable at protocol-field widths *)
    let acc = ref (bits_of_const ctx w 0L) in
    for i = 0 to w - 1 do
      let addend =
        Array.init w (fun j -> if j < i then fls ctx else g_and ctx bb.(i) ab.(j - i))
      in
      acc := ripple_add ctx !acc addend (fls ctx)
    done;
    !acc
  | Expr.Shl | Expr.Lshr ->
    (* barrel shifter over the shift amount's bits; amounts >= w give 0 *)
    let left = op = Expr.Shl in
    let stages = ref ab in
    let nbits = Array.length bb in
    for k = 0 to nbits - 1 do
      let shift = 1 lsl k in
      let cur = !stages in
      if shift < w then
        stages :=
          Array.init w (fun i ->
              let src = if left then i - shift else i + shift in
              let shifted = if src >= 0 && src < w then cur.(src) else fls ctx in
              g_mux ctx bb.(k) shifted cur.(i))
      else
        (* any set bit at or beyond this position zeroes the result *)
        stages := Array.map (fun bit -> g_and ctx (lit_neg bb.(k)) bit) cur
    done;
    !stages

and blast_bool ctx (b : Expr.boolean) =
  match Hashtbl.find_opt ctx.bool_memo b.bid with
  | Some l -> l
  | None ->
    Cancel.poll ();
    let l =
      match b.bnode with
      | Expr.True -> ctx.tru
      | Expr.False -> fls ctx
      | Expr.Not x -> lit_neg (blast_bool ctx x)
      | Expr.And (x, y) -> g_and ctx (blast_bool ctx x) (blast_bool ctx y)
      | Expr.Or (x, y) -> g_or ctx (blast_bool ctx x) (blast_bool ctx y)
      | Expr.Cmp (op, x, y) -> (
        let xb = blast_bv ctx x and yb = blast_bv ctx y in
        match op with
        | Expr.Eq -> blast_eq ctx xb yb
        | Expr.Ult -> blast_ult ctx xb yb
        | Expr.Ule -> lit_neg (blast_ult ctx yb xb)
        | Expr.Slt ->
          let flip bits =
            let n = Array.length bits in
            Array.init n (fun i -> if i = n - 1 then lit_neg bits.(i) else bits.(i))
          in
          blast_ult ctx (flip xb) (flip yb)
        | Expr.Sle ->
          let flip bits =
            let n = Array.length bits in
            Array.init n (fun i -> if i = n - 1 then lit_neg bits.(i) else bits.(i))
          in
          lit_neg (blast_ult ctx (flip yb) (flip xb)))
    in
    Hashtbl.add ctx.bool_memo b.bid l;
    l

(* Assert a boolean expression as a top-level constraint. *)
let assert_bool ctx b = Sat.add_clause ctx.sat [ blast_bool ctx b ]

(* Extract concrete values for every [Expr] variable that appeared in the
   blasted constraints, reading the SAT model. *)
let extract_model ctx =
  let model = Model.empty () in
  Hashtbl.iter
    (fun vid sat_vars ->
      match Expr.var_by_id vid with
      | None -> ()
      | Some var ->
        let v = ref 0L in
        Array.iteri
          (fun i sv ->
            if Sat.model_value ctx.sat sv then v := Int64.logor !v (Int64.shift_left 1L i))
          sat_vars;
        Model.set model var !v)
    ctx.var_bits;
  model
