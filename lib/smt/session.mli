(** Incremental solving session over one persistent SAT instance.

    A session amortizes a run of queries that share a common [base]
    conjunction (a crosscheck row: every [C_A(i) ∧ C_B(j)] of row [i]
    shares [C_A(i)]).  The base is bit-blasted once as hard clauses; each
    query's remaining conjuncts are guarded by a fresh activation literal
    and decided with a MiniSat-style assumption solve, retaining learnt
    clauses, variable activities and saved phases across the whole run.
    CNF memoization (keyed by hash-consed expr ids) also survives the run,
    so repeated sub-structure is blasted once.

    {!check} answers are byte-for-byte the answers {!Solver.check} gives:
    the frontend pipeline is shared via {!Solver.check_with}, Sat
    witnesses are re-derived canonically from scratch (hook-suppressed),
    and under certify mode every query auto-falls back to the
    proof-checked scratch path — a session never publishes an uncertified
    Unsat.  See [session.ml]'s header for the full argument.

    Sessions are single-domain values: create and use a session on the
    same domain (its counters and query hook are that domain's). *)

type t

val create : Expr.boolean list -> t
(** [create base] opens a session whose every query is assumed to contain
    the conjuncts of [base]; they are asserted as hard clauses once.
    Bumps the calling domain's [sessions_opened] counter. *)

val check :
  ?use_interval:bool ->
  ?use_cache:bool ->
  ?budget:Solver.budget ->
  t ->
  Expr.boolean list ->
  Solver.result
(** [check t conds] decides the conjunction of [conds] — which must
    include the session's base (extra occurrences of base conjuncts are
    recognized by expr id and not re-asserted) — on the session instance.
    Options mean exactly what they mean on {!Solver.check}.  [Unknown]
    means the budget bit; callers retry with {!Solver.check} (scratch)
    and should count the fallback in [scratch_fallbacks]. *)

(** {1 Shared blasted base}

    The parallel crosscheck's alternative to per-row sessions: every
    path condition of both agents is Tseitin-blasted once (definitions
    only — nothing asserted, so the prefix is satisfiable by
    construction) into one frozen SAT instance, and each worker domain
    adopts a private {!Sat.copy} on first use instead of re-blasting.
    Queries are decided purely under assumptions (the conjuncts'
    defining literals), so adopted instances never gain problem
    clauses — the invariant that makes cross-domain learnt-clause
    exchange sound. *)

type shared

val make_shared : ?ring:Exchange.t -> Expr.boolean list -> shared
(** [make_shared conds] blasts every condition (memoized by expr id)
    into the frozen prefix.  With [?ring], adopted copies additionally
    export their low-LBD learnt clauses to — and import from — the
    given exchange ring.  The value is immutable and safe to share
    across domains. *)

val adopt : shared -> Sat.t
(** The calling domain's adopted copy, created ({!Sat.copy} + exchange
    attachment, bumping [bases_adopted]) on first call and memoized in
    domain-local state thereafter.  Exposed for tests; {!check_shared}
    adopts internally. *)

val release : shared -> unit
(** Drop the calling domain's adopted copy (if any) from the
    domain-local memo, releasing its memory.  The next {!check_shared}
    on this domain re-adopts. *)

val check_shared :
  ?use_interval:bool ->
  ?use_cache:bool ->
  ?budget:Solver.budget ->
  shared ->
  Expr.boolean list ->
  Solver.result
(** {!Solver.check}-identical answers decided by an assumption solve on
    the calling domain's adopted copy: same frontend pipeline
    ({!Solver.check_with}), same one-hook-draw-per-query discipline,
    Sat answers confirmed by a hook-suppressed scratch solve, certify
    mode auto-falls back to the proof-checked scratch path.  A conjunct
    that was not part of [make_shared]'s condition set is handled by a
    plain scratch solve.  Bumps [shared_solves] per assumption solve. *)

type attribution =
  | Base_refuted
      (** the failed-assumption core was empty: the session's base (plus
          the query's unguarded units) is contradictory on its own, so
          {e every} query of this session is Unsat *)
  | Assumptions_refuted
      (** the conflict used this query's activation guard: the verdict
          implicates the query's own conjuncts, not the base alone *)

val check_attributed :
  ?use_interval:bool ->
  ?use_cache:bool ->
  ?budget:Solver.budget ->
  t ->
  Expr.boolean list ->
  Solver.result * attribution option
(** {!check}, additionally reporting — for an Unsat decided by the
    in-session assumption solve — which side the SAT core's failed-
    assumption set implicates.  The attribution is [None] whenever the
    answer did not come from the assumption solve: frontend
    short-circuits (constant folding, memo/canonical hits, the interval
    filter) and the certify-mode scratch fallback.  The crosscheck's
    row-pruning pass logs it to attribute each pruned row. *)
