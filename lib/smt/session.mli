(** Incremental solving session over one persistent SAT instance.

    A session amortizes a run of queries that share a common [base]
    conjunction (a crosscheck row: every [C_A(i) ∧ C_B(j)] of row [i]
    shares [C_A(i)]).  The base is bit-blasted once as hard clauses; each
    query's remaining conjuncts are guarded by a fresh activation literal
    and decided with a MiniSat-style assumption solve, retaining learnt
    clauses, variable activities and saved phases across the whole run.
    CNF memoization (keyed by hash-consed expr ids) also survives the run,
    so repeated sub-structure is blasted once.

    {!check} answers are byte-for-byte the answers {!Solver.check} gives:
    the frontend pipeline is shared via {!Solver.check_with}, Sat
    witnesses are re-derived canonically from scratch (hook-suppressed),
    and under certify mode every query auto-falls back to the
    proof-checked scratch path — a session never publishes an uncertified
    Unsat.  See [session.ml]'s header for the full argument.

    Sessions are single-domain values: create and use a session on the
    same domain (its counters and query hook are that domain's). *)

type t

val create : Expr.boolean list -> t
(** [create base] opens a session whose every query is assumed to contain
    the conjuncts of [base]; they are asserted as hard clauses once.
    Bumps the calling domain's [sessions_opened] counter. *)

val check :
  ?use_interval:bool ->
  ?use_cache:bool ->
  ?budget:Solver.budget ->
  t ->
  Expr.boolean list ->
  Solver.result
(** [check t conds] decides the conjunction of [conds] — which must
    include the session's base (extra occurrences of base conjuncts are
    recognized by expr id and not re-asserted) — on the session instance.
    Options mean exactly what they mean on {!Solver.check}.  [Unknown]
    means the budget bit; callers retry with {!Solver.check} (scratch)
    and should count the fallback in [scratch_fallbacks]. *)

type attribution =
  | Base_refuted
      (** the failed-assumption core was empty: the session's base (plus
          the query's unguarded units) is contradictory on its own, so
          {e every} query of this session is Unsat *)
  | Assumptions_refuted
      (** the conflict used this query's activation guard: the verdict
          implicates the query's own conjuncts, not the base alone *)

val check_attributed :
  ?use_interval:bool ->
  ?use_cache:bool ->
  ?budget:Solver.budget ->
  t ->
  Expr.boolean list ->
  Solver.result * attribution option
(** {!check}, additionally reporting — for an Unsat decided by the
    in-session assumption solve — which side the SAT core's failed-
    assumption set implicates.  The attribution is [None] whenever the
    answer did not come from the assumption solve: frontend
    short-circuits (constant folding, memo/canonical hits, the interval
    filter) and the certify-mode scratch fallback.  The crosscheck's
    row-pruning pass logs it to attribute each pruned row. *)
