(* Solver frontend: the STP-shaped API that the rest of SOFT talks to.

   A query is a conjunction of boolean expressions.  The pipeline is:
   1. constant-level short-circuit (hash-consing already folded constants),
   2. the interval/bit-mask pre-filter (sound UNSAT-only),
   3. bit-blast + CDCL SAT, with model extraction on SAT.

   Results are memoized on the multiset of constraint ids; this pays off
   because path exploration re-checks shared path-condition prefixes.

   Every query may carry a resource budget (conflicts, decisions,
   wall-clock).  An exhausted budget yields the third outcome [Unknown],
   which is never cached: a later identical query may carry a larger
   budget and deserves a fresh attempt.

   Domain-safety: all mutable frontend state — the memo cache, the stats
   counters, the certify flag, the query hook and the default budget —
   lives in a per-domain [ctx] held in [Domain.DLS].  Each domain that
   issues queries owns an independent solver context; nothing here is
   shared across domains, so the crosscheck worker pool runs [check]
   concurrently without locks.  A freshly spawned domain starts from the
   built-in defaults; parallel drivers snapshot the parent's
   configuration ({!snapshot_config}) and install it in each worker
   ({!apply_config}), then fold the workers' counters back with
   {!merge_stats}. *)

type unknown_reason =
  | Out_of_conflicts
  | Out_of_decisions
  | Out_of_time
  | Proof_failed of string

type result = Sat of Model.t | Unsat | Unknown of unknown_reason

exception Solver_error of string * Expr.boolean list

let unknown_reason_to_string = function
  | Out_of_conflicts -> "conflict budget exhausted"
  | Out_of_decisions -> "decision budget exhausted"
  | Out_of_time -> "time budget exhausted"
  | Proof_failed msg -> "unsat proof rejected: " ^ msg

(* --- budgets --------------------------------------------------------- *)

type budget = {
  b_max_conflicts : int option;
  b_max_decisions : int option;
  b_timeout_ms : int option; (* per-query wall clock, monotonic *)
}

let no_budget = { b_max_conflicts = None; b_max_decisions = None; b_timeout_ms = None }

let budget ?max_conflicts ?max_decisions ?timeout_ms () =
  { b_max_conflicts = max_conflicts; b_max_decisions = max_decisions; b_timeout_ms = timeout_ms }

let is_unlimited b = b = no_budget

type stats = {
  mutable queries : int;
  mutable const_hits : int;
  mutable interval_hits : int;
  mutable cache_hits : int;
  mutable sat_calls : int;
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable unknown_results : int;
  mutable cache_evictions : int;
  mutable solver_time : float;
  mutable proofs_checked : int;
  mutable proofs_failed : int;
  mutable sessions_opened : int;
  mutable assumption_solves : int;
  mutable scratch_fallbacks : int;
  mutable tiny_session_fallbacks : int;
  mutable learnt_retained : int;
  mutable expr_nodes : int;
}

let fresh_stats () = {
  queries = 0;
  const_hits = 0;
  interval_hits = 0;
  cache_hits = 0;
  sat_calls = 0;
  sat_results = 0;
  unsat_results = 0;
  unknown_results = 0;
  cache_evictions = 0;
  solver_time = 0.0;
  proofs_checked = 0;
  proofs_failed = 0;
  sessions_opened = 0;
  assumption_solves = 0;
  scratch_fallbacks = 0;
  tiny_session_fallbacks = 0;
  learnt_retained = 0;
  expr_nodes = 0;
}

(* --- the per-domain context ------------------------------------------ *)

let default_cache_capacity = 65536

type ctx = {
  c_stats : stats;
  c_cache : (int list, result) Hashtbl.t;
  (* insertion order of cache keys, oldest first; drives the bounded
     FIFO eviction.  Keys are only ever added on a cache miss, so each
     live entry appears in the queue exactly once *)
  c_order : int list Queue.t;
  mutable c_capacity : int;
  mutable c_certify : bool;
  mutable c_hook : unit -> unit;
  mutable c_budget : budget; (* applied to queries with no explicit [?budget] *)
}

let create_ctx () = {
  c_stats = fresh_stats ();
  c_cache = Hashtbl.create 4096;
  c_order = Queue.create ();
  c_capacity = default_cache_capacity;
  c_certify = false;
  c_hook = (fun () -> ());
  c_budget = no_budget;
}

let dls_key : ctx Domain.DLS.key = Domain.DLS.new_key create_ctx

let ctx () = Domain.DLS.get dls_key

(* Queries that do not pass an explicit [?budget] fall back to this; the
   CLI sets it from --budget-ms / --max-conflicts so the budget reaches
   every solver call without threading a parameter through each layer. *)
let set_default_budget b = (ctx ()).c_budget <- b
let get_default_budget () = (ctx ()).c_budget

let stats () = (ctx ()).c_stats

let reset_stats () =
  let s = stats () in
  s.queries <- 0;
  s.const_hits <- 0;
  s.interval_hits <- 0;
  s.cache_hits <- 0;
  s.sat_calls <- 0;
  s.sat_results <- 0;
  s.unsat_results <- 0;
  s.unknown_results <- 0;
  s.cache_evictions <- 0;
  s.solver_time <- 0.0;
  s.proofs_checked <- 0;
  s.proofs_failed <- 0;
  s.sessions_opened <- 0;
  s.assumption_solves <- 0;
  s.scratch_fallbacks <- 0;
  s.tiny_session_fallbacks <- 0;
  s.learnt_retained <- 0;
  s.expr_nodes <- 0

(* [expr_nodes] is a gauge over a single global table, not a per-domain
   counter: capture reads the current table size, merge takes the max so
   folding several workers' snapshots never double-counts shared nodes. *)
let capture_expr_stats () =
  let s = stats () in
  s.expr_nodes <- Expr.live_nodes ()

let merge_stats ~into:dst (src : stats) =
  dst.queries <- dst.queries + src.queries;
  dst.const_hits <- dst.const_hits + src.const_hits;
  dst.interval_hits <- dst.interval_hits + src.interval_hits;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.sat_calls <- dst.sat_calls + src.sat_calls;
  dst.sat_results <- dst.sat_results + src.sat_results;
  dst.unsat_results <- dst.unsat_results + src.unsat_results;
  dst.unknown_results <- dst.unknown_results + src.unknown_results;
  dst.cache_evictions <- dst.cache_evictions + src.cache_evictions;
  dst.solver_time <- dst.solver_time +. src.solver_time;
  dst.proofs_checked <- dst.proofs_checked + src.proofs_checked;
  dst.proofs_failed <- dst.proofs_failed + src.proofs_failed;
  dst.sessions_opened <- dst.sessions_opened + src.sessions_opened;
  dst.assumption_solves <- dst.assumption_solves + src.assumption_solves;
  dst.scratch_fallbacks <- dst.scratch_fallbacks + src.scratch_fallbacks;
  dst.tiny_session_fallbacks <- dst.tiny_session_fallbacks + src.tiny_session_fallbacks;
  dst.learnt_retained <- dst.learnt_retained + src.learnt_retained;
  dst.expr_nodes <- max dst.expr_nodes src.expr_nodes

(* --- memo cache ------------------------------------------------------- *)

let set_cache_capacity n =
  if n <= 0 then invalid_arg "Solver.set_cache_capacity: capacity must be positive";
  (ctx ()).c_capacity <- n

let clear_cache () =
  let c = ctx () in
  Hashtbl.reset c.c_cache;
  Queue.clear c.c_order

let cache_len () = Hashtbl.length (ctx ()).c_cache

(* Bounded eviction: on reaching capacity, discard the *older half* of the
   entries (FIFO over insertion order) instead of flushing the whole
   table.  A full flush right after hitting capacity costs a worst-case
   thrash: every warm prefix entry is re-solved at once.  Dropping half
   keeps the younger, still-hot half resident while bounding memory the
   same way. *)
let cache_evict c =
  c.c_stats.cache_evictions <- c.c_stats.cache_evictions + 1;
  let target = c.c_capacity / 2 in
  while Hashtbl.length c.c_cache > target && not (Queue.is_empty c.c_order) do
    let k = Queue.pop c.c_order in
    Hashtbl.remove c.c_cache k
  done

let cache_add c key r =
  if Hashtbl.length c.c_cache >= c.c_capacity then cache_evict c;
  if not (Hashtbl.mem c.c_cache key) then Queue.push key c.c_order;
  Hashtbl.replace c.c_cache key r

let cache_key conds = List.sort_uniq compare (List.map (fun (b : Expr.boolean) -> b.Expr.bid) conds)

(* --- certification ---------------------------------------------------- *)

(* When on, every Unsat leaving the SAT core must carry a DRUP proof that
   the independent checker (Proof) accepts; a rejected proof downgrades
   the answer to [Unknown (Proof_failed _)] — an unproven Unsat is never
   trusted.  The interval pre-filter is bypassed so that no Unsat reaches
   a caller without a proof (constant folding of a literal [false]
   conjunct is the one exemption: the refutation is the constant itself). *)
let set_certify b =
  let c = ctx () in
  if b <> c.c_certify then begin
    c.c_certify <- b;
    (* memoized entries from the other regime are not proof-backed (or
       were needlessly strict); drop them *)
    clear_cache ()
  end

let certify_enabled () = (ctx ()).c_certify

(* Called on every query that reaches the SAT core, after the deadline is
   anchored and before the search starts.  Fault injection installs a
   closure here (scoped to the crosscheck phase) that may raise or skew
   the clock; by default it does nothing.  The hook is per-domain: a
   worker installing it for a pair's scope never perturbs another
   domain's queries. *)
let set_query_hook f = (ctx ()).c_hook <- f

(* --- configuration hand-off across domains ---------------------------- *)

type config = {
  cfg_budget : budget;
  cfg_certify : bool;
  cfg_cache_capacity : int;
}

let snapshot_config () =
  let c = ctx () in
  { cfg_budget = c.c_budget; cfg_certify = c.c_certify; cfg_cache_capacity = c.c_capacity }

let apply_config cfg =
  let c = ctx () in
  c.c_budget <- cfg.cfg_budget;
  c.c_capacity <- cfg.cfg_cache_capacity;
  if c.c_certify <> cfg.cfg_certify then begin
    c.c_certify <- cfg.cfg_certify;
    clear_cache ()
  end

(* --- the query pipeline ----------------------------------------------- *)

let run_sat ?(fire_hook = true) c budget conds =
  c.c_stats.sat_calls <- c.c_stats.sat_calls + 1;
  let t0 = Mono.now () in
  let bctx = Bitblast.create ~proof:c.c_certify () in
  List.iter (Bitblast.assert_bool bctx) conds;
  (* the deadline is anchored before bit-blasting, so blast time counts
     against the same per-query budget as the search *)
  let deadline =
    Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) budget.b_timeout_ms
  in
  if fire_hook then c.c_hook ();
  let r =
    match
      Sat.solve ?max_conflicts:budget.b_max_conflicts
        ?max_decisions:budget.b_max_decisions ?deadline bctx.Bitblast.sat
    with
    | Sat.Sat -> Sat (Bitblast.extract_model bctx)
    | Sat.Unsat ->
      if not c.c_certify then Unsat
      else begin
        c.c_stats.proofs_checked <- c.c_stats.proofs_checked + 1;
        match
          Proof.check_derivation
            (Sat.original_clauses bctx.Bitblast.sat)
            (Sat.proof_steps bctx.Bitblast.sat)
        with
        | Proof.Valid -> Unsat
        | Proof.Invalid msg ->
          c.c_stats.proofs_failed <- c.c_stats.proofs_failed + 1;
          Unknown (Proof_failed msg)
      end
    | Sat.Unknown Sat.Conflicts -> Unknown Out_of_conflicts
    | Sat.Unknown Sat.Decisions -> Unknown Out_of_decisions
    | Sat.Unknown Sat.Time -> Unknown Out_of_time
  in
  c.c_stats.solver_time <- c.c_stats.solver_time +. Mono.elapsed t0;
  r

(* The full frontend pipeline with a pluggable back end: [core budget conds]
   is invoked only for queries that survive constant folding, the memo
   cache and the interval filter.  [check] instantiates it with the
   scratch SAT core; [Session.check] instantiates it with an incremental
   assumption solve, inheriting the exact same front half so the two modes
   see identical query streams. *)
let check_with ?(use_interval = true) ?(use_cache = true) ?budget ~core conds =
  let c = ctx () in
  let budget = match budget with Some b -> b | None -> c.c_budget in
  c.c_stats.queries <- c.c_stats.queries + 1;
  (* drop trivially-true conjuncts; answer immediately on any false *)
  let conds = List.filter (fun cond -> not (Expr.is_true cond)) conds in
  if List.exists Expr.is_false conds then begin
    c.c_stats.const_hits <- c.c_stats.const_hits + 1;
    Unsat
  end
  else if conds = [] then begin
    c.c_stats.const_hits <- c.c_stats.const_hits + 1;
    Sat (Model.empty ())
  end
  else
    let key = if use_cache then cache_key conds else [] in
    match if use_cache then Hashtbl.find_opt c.c_cache key else None with
    | Some r ->
      c.c_stats.cache_hits <- c.c_stats.cache_hits + 1;
      r
    | None ->
      let r =
        (* certify mode bypasses the interval filter: its Unsat answers
           carry no proof, and the whole point is never to publish one *)
        if use_interval && (not c.c_certify) && Interval.check conds = Interval.Unsat
        then begin
          c.c_stats.interval_hits <- c.c_stats.interval_hits + 1;
          Unsat
        end
        else core budget conds
      in
      (match r with
       | Sat m ->
         c.c_stats.sat_results <- c.c_stats.sat_results + 1;
         (* sanity: the model must actually satisfy the query.  A raised
            error, not an assert — asserts vanish under --release, which
            would silently disable the check exactly when it matters. *)
         if not (Model.satisfies m conds) then
           raise (Solver_error ("SAT model does not satisfy the query", conds))
       | Unsat -> c.c_stats.unsat_results <- c.c_stats.unsat_results + 1
       | Unknown _ -> c.c_stats.unknown_results <- c.c_stats.unknown_results + 1);
      (* never cache Unknown: it reflects this call's budget, not the query *)
      (match r with
       | Unknown _ -> ()
       | Sat _ | Unsat -> if use_cache then cache_add c key r);
      r

let check ?use_interval ?use_cache ?budget conds =
  check_with ?use_interval ?use_cache ?budget
    ~core:(fun budget conds -> run_sat (ctx ()) budget conds)
    conds

(* A raw scratch SAT solve on the calling domain's context, bypassing the
   frontend pipeline.  [fire_hook=false] suppresses the query hook: the
   incremental session uses this to re-derive a canonical witness without
   consuming a fault-injection draw the scratch mode would not consume. *)
let solve_scratch ?fire_hook budget conds = run_sat ?fire_hook (ctx ()) budget conds

let run_query_hook () = (ctx ()).c_hook ()

let is_sat ?use_interval ?use_cache ?budget conds =
  match check ?use_interval ?use_cache ?budget conds with
  | Sat _ -> true
  | Unsat | Unknown _ -> false

let get_model ?use_interval ?use_cache ?budget conds =
  match check ?use_interval ?use_cache ?budget conds with
  | Sat m -> Some m
  | Unsat | Unknown _ -> None

(* Validity of an implication: pc ⊨ c  iff  pc ∧ ¬c is unsat.  An Unknown
   on the negation means we cannot certify the entailment — answer [false]
   (the sound direction for every current caller). *)
let entails ?budget pc c =
  match check ?budget (Expr.not_ c :: pc) with
  | Unsat -> true
  | Sat _ | Unknown _ -> false

let pp_stats fmt () =
  capture_expr_stats ();
  let s = stats () in
  Format.fprintf fmt
    "queries=%d const=%d interval=%d cache=%d sat_calls=%d (sat=%d unsat=%d unknown=%d) evictions=%d time=%.3fs expr_nodes=%d"
    s.queries s.const_hits s.interval_hits s.cache_hits s.sat_calls
    s.sat_results s.unsat_results s.unknown_results s.cache_evictions
    s.solver_time s.expr_nodes;
  if s.proofs_checked > 0 then
    Format.fprintf fmt " proofs=%d/%d"
      (s.proofs_checked - s.proofs_failed)
      s.proofs_checked;
  if s.sessions_opened > 0 then
    Format.fprintf fmt " sessions=%d assumption_solves=%d fallbacks=%d learnt_retained=%d"
      s.sessions_opened s.assumption_solves s.scratch_fallbacks s.learnt_retained;
  if s.tiny_session_fallbacks > 0 then
    Format.fprintf fmt " tiny_session_fallbacks=%d" s.tiny_session_fallbacks
