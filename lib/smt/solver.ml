(* Solver frontend: the STP-shaped API that the rest of SOFT talks to.

   A query is a conjunction of boolean expressions.  The pipeline is:
   1. constant-level short-circuit (hash-consing already folded constants),
   2. the interval/bit-mask pre-filter (sound UNSAT-only),
   3. bit-blast + CDCL SAT, with model extraction on SAT.

   Results are memoized on the multiset of constraint ids; this pays off
   because path exploration re-checks shared path-condition prefixes.

   Every query may carry a resource budget (conflicts, decisions,
   wall-clock).  An exhausted budget yields the third outcome [Unknown],
   which is never cached: a later identical query may carry a larger
   budget and deserves a fresh attempt. *)

type unknown_reason =
  | Out_of_conflicts
  | Out_of_decisions
  | Out_of_time
  | Proof_failed of string

type result = Sat of Model.t | Unsat | Unknown of unknown_reason

exception Solver_error of string * Expr.boolean list

let unknown_reason_to_string = function
  | Out_of_conflicts -> "conflict budget exhausted"
  | Out_of_decisions -> "decision budget exhausted"
  | Out_of_time -> "time budget exhausted"
  | Proof_failed msg -> "unsat proof rejected: " ^ msg

(* --- budgets --------------------------------------------------------- *)

type budget = {
  b_max_conflicts : int option;
  b_max_decisions : int option;
  b_timeout_ms : int option; (* per-query wall clock, monotonic *)
}

let no_budget = { b_max_conflicts = None; b_max_decisions = None; b_timeout_ms = None }

let budget ?max_conflicts ?max_decisions ?timeout_ms () =
  { b_max_conflicts = max_conflicts; b_max_decisions = max_decisions; b_timeout_ms = timeout_ms }

let is_unlimited b = b = no_budget

(* Queries that do not pass an explicit [?budget] fall back to this; the
   CLI sets it from --budget-ms / --max-conflicts so the budget reaches
   every solver call without threading a parameter through each layer. *)
let default_budget = ref no_budget

let set_default_budget b = default_budget := b
let get_default_budget () = !default_budget


type stats = {
  mutable queries : int;
  mutable const_hits : int;
  mutable interval_hits : int;
  mutable cache_hits : int;
  mutable sat_calls : int;
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable unknown_results : int;
  mutable cache_evictions : int;
  mutable solver_time : float;
  mutable proofs_checked : int;
  mutable proofs_failed : int;
}

let stats = {
  queries = 0;
  const_hits = 0;
  interval_hits = 0;
  cache_hits = 0;
  sat_calls = 0;
  sat_results = 0;
  unsat_results = 0;
  unknown_results = 0;
  cache_evictions = 0;
  solver_time = 0.0;
  proofs_checked = 0;
  proofs_failed = 0;
}

let reset_stats () =
  stats.queries <- 0;
  stats.const_hits <- 0;
  stats.interval_hits <- 0;
  stats.cache_hits <- 0;
  stats.sat_calls <- 0;
  stats.sat_results <- 0;
  stats.unsat_results <- 0;
  stats.unknown_results <- 0;
  stats.cache_evictions <- 0;
  stats.solver_time <- 0.0;
  stats.proofs_checked <- 0;
  stats.proofs_failed <- 0

(* cache: sorted constraint-id list -> result.  Bounded: a week-long suite
   run must not grow memory without limit, so on reaching capacity the
   whole table is dropped (cheap, and path exploration rebuilds the useful
   prefix entries quickly). *)
let cache : (int list, result) Hashtbl.t = Hashtbl.create 4096

let cache_capacity = ref 65536

let set_cache_capacity n =
  if n <= 0 then invalid_arg "Solver.set_cache_capacity: capacity must be positive";
  cache_capacity := n

let clear_cache () = Hashtbl.reset cache

let cache_add key r =
  if Hashtbl.length cache >= !cache_capacity then begin
    stats.cache_evictions <- stats.cache_evictions + 1;
    Hashtbl.reset cache
  end;
  Hashtbl.replace cache key r

let cache_key conds = List.sort_uniq compare (List.map (fun (b : Expr.boolean) -> b.Expr.bid) conds)

(* --- certification ---------------------------------------------------- *)

(* When on, every Unsat leaving the SAT core must carry a DRUP proof that
   the independent checker (Proof) accepts; a rejected proof downgrades
   the answer to [Unknown (Proof_failed _)] — an unproven Unsat is never
   trusted.  The interval pre-filter is bypassed so that no Unsat reaches
   a caller without a proof (constant folding of a literal [false]
   conjunct is the one exemption: the refutation is the constant itself). *)
let certify = ref false

let set_certify b =
  if b <> !certify then begin
    certify := b;
    (* memoized entries from the other regime are not proof-backed (or
       were needlessly strict); drop them *)
    clear_cache ()
  end

let certify_enabled () = !certify

(* Called on every query that reaches the SAT core, after the deadline is
   anchored and before the search starts.  Fault injection installs a
   closure here (scoped to the crosscheck phase) that may raise or skew
   the clock; by default it does nothing. *)
let query_hook : (unit -> unit) ref = ref (fun () -> ())

let set_query_hook f = query_hook := f

let run_sat budget conds =
  stats.sat_calls <- stats.sat_calls + 1;
  let t0 = Mono.now () in
  let ctx = Bitblast.create ~proof:!certify () in
  List.iter (Bitblast.assert_bool ctx) conds;
  (* the deadline is anchored before bit-blasting, so blast time counts
     against the same per-query budget as the search *)
  let deadline =
    Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) budget.b_timeout_ms
  in
  !query_hook ();
  let r =
    match
      Sat.solve ?max_conflicts:budget.b_max_conflicts
        ?max_decisions:budget.b_max_decisions ?deadline ctx.Bitblast.sat
    with
    | Sat.Sat -> Sat (Bitblast.extract_model ctx)
    | Sat.Unsat ->
      if not !certify then Unsat
      else begin
        stats.proofs_checked <- stats.proofs_checked + 1;
        match
          Proof.check_derivation
            (Sat.original_clauses ctx.Bitblast.sat)
            (Sat.proof_steps ctx.Bitblast.sat)
        with
        | Proof.Valid -> Unsat
        | Proof.Invalid msg ->
          stats.proofs_failed <- stats.proofs_failed + 1;
          Unknown (Proof_failed msg)
      end
    | Sat.Unknown Sat.Conflicts -> Unknown Out_of_conflicts
    | Sat.Unknown Sat.Decisions -> Unknown Out_of_decisions
    | Sat.Unknown Sat.Time -> Unknown Out_of_time
  in
  stats.solver_time <- stats.solver_time +. Mono.elapsed t0;
  r

let check ?(use_interval = true) ?(use_cache = true) ?budget conds =
  let budget = match budget with Some b -> b | None -> !default_budget in
  stats.queries <- stats.queries + 1;
  (* drop trivially-true conjuncts; answer immediately on any false *)
  let conds = List.filter (fun c -> not (Expr.is_true c)) conds in
  if List.exists Expr.is_false conds then begin
    stats.const_hits <- stats.const_hits + 1;
    Unsat
  end
  else if conds = [] then begin
    stats.const_hits <- stats.const_hits + 1;
    Sat (Model.empty ())
  end
  else
    let key = if use_cache then cache_key conds else [] in
    match if use_cache then Hashtbl.find_opt cache key else None with
    | Some r ->
      stats.cache_hits <- stats.cache_hits + 1;
      r
    | None ->
      let r =
        (* certify mode bypasses the interval filter: its Unsat answers
           carry no proof, and the whole point is never to publish one *)
        if use_interval && (not !certify) && Interval.check conds = Interval.Unsat
        then begin
          stats.interval_hits <- stats.interval_hits + 1;
          Unsat
        end
        else run_sat budget conds
      in
      (match r with
       | Sat m ->
         stats.sat_results <- stats.sat_results + 1;
         (* sanity: the model must actually satisfy the query.  A raised
            error, not an assert — asserts vanish under --release, which
            would silently disable the check exactly when it matters. *)
         if not (Model.satisfies m conds) then
           raise (Solver_error ("SAT model does not satisfy the query", conds))
       | Unsat -> stats.unsat_results <- stats.unsat_results + 1
       | Unknown _ -> stats.unknown_results <- stats.unknown_results + 1);
      (* never cache Unknown: it reflects this call's budget, not the query *)
      (match r with
       | Unknown _ -> ()
       | Sat _ | Unsat -> if use_cache then cache_add key r);
      r

let is_sat ?use_interval ?use_cache ?budget conds =
  match check ?use_interval ?use_cache ?budget conds with
  | Sat _ -> true
  | Unsat | Unknown _ -> false

let get_model ?use_interval ?use_cache ?budget conds =
  match check ?use_interval ?use_cache ?budget conds with
  | Sat m -> Some m
  | Unsat | Unknown _ -> None

(* Validity of an implication: pc ⊨ c  iff  pc ∧ ¬c is unsat.  An Unknown
   on the negation means we cannot certify the entailment — answer [false]
   (the sound direction for every current caller). *)
let entails ?budget pc c =
  match check ?budget (Expr.not_ c :: pc) with
  | Unsat -> true
  | Sat _ | Unknown _ -> false

let pp_stats fmt () =
  Format.fprintf fmt
    "queries=%d const=%d interval=%d cache=%d sat_calls=%d (sat=%d unsat=%d unknown=%d) evictions=%d time=%.3fs"
    stats.queries stats.const_hits stats.interval_hits stats.cache_hits stats.sat_calls
    stats.sat_results stats.unsat_results stats.unknown_results stats.cache_evictions
    stats.solver_time;
  if stats.proofs_checked > 0 then
    Format.fprintf fmt " proofs=%d/%d"
      (stats.proofs_checked - stats.proofs_failed)
      stats.proofs_checked
