(* Solver frontend: the STP-shaped API that the rest of SOFT talks to.

   A query is a conjunction of boolean expressions.  The pipeline is:
   1. constant-level short-circuit (hash-consing already folded constants),
   2. the interval/bit-mask pre-filter (sound UNSAT-only),
   3. bit-blast + CDCL SAT, with model extraction on SAT.

   Results are memoized on the multiset of constraint ids; this pays off
   because path exploration re-checks shared path-condition prefixes.

   Every query may carry a resource budget (conflicts, decisions,
   wall-clock).  An exhausted budget yields the third outcome [Unknown],
   which is never cached: a later identical query may carry a larger
   budget and deserves a fresh attempt.

   Domain-safety: all mutable frontend state — the memo cache, the stats
   counters, the certify flag, the query hook and the default budget —
   lives in a per-domain [ctx] held in [Domain.DLS].  Each domain that
   issues queries owns an independent solver context; nothing here is
   shared across domains, so the crosscheck worker pool runs [check]
   concurrently without locks.  A freshly spawned domain starts from the
   built-in defaults; parallel drivers snapshot the parent's
   configuration ({!snapshot_config}) and install it in each worker
   ({!apply_config}), then fold the workers' counters back with
   {!merge_stats}. *)

type unknown_reason =
  | Out_of_conflicts
  | Out_of_decisions
  | Out_of_time
  | Proof_failed of string

type result = Sat of Model.t | Unsat | Unknown of unknown_reason

exception Solver_error of string * Expr.boolean list

let unknown_reason_to_string = function
  | Out_of_conflicts -> "conflict budget exhausted"
  | Out_of_decisions -> "decision budget exhausted"
  | Out_of_time -> "time budget exhausted"
  | Proof_failed msg -> "unsat proof rejected: " ^ msg

(* --- budgets --------------------------------------------------------- *)

type budget = {
  b_max_conflicts : int option;
  b_max_decisions : int option;
  b_timeout_ms : int option; (* per-query wall clock, monotonic *)
}

let no_budget = { b_max_conflicts = None; b_max_decisions = None; b_timeout_ms = None }

let budget ?max_conflicts ?max_decisions ?timeout_ms () =
  { b_max_conflicts = max_conflicts; b_max_decisions = max_decisions; b_timeout_ms = timeout_ms }

let is_unlimited b = b = no_budget

type stats = {
  mutable queries : int;
  mutable const_hits : int;
  mutable interval_hits : int;
  mutable cache_hits : int;
  mutable sat_calls : int;
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable unknown_results : int;
  mutable cache_evictions : int;
  mutable solver_time : float;
  mutable proofs_checked : int;
  mutable proofs_failed : int;
  mutable sessions_opened : int;
  mutable assumption_solves : int;
  mutable scratch_fallbacks : int;
  mutable tiny_session_fallbacks : int;
  mutable learnt_retained : int;
  mutable canonical_hits : int;
  mutable canon_small_skips : int;
  mutable canon_threshold_nodes : int;
  mutable rows_pruned : int;
  mutable pairs_skipped_by_pruning : int;
  mutable subsumed_groups : int;
  mutable shared_solves : int;
  mutable bases_adopted : int;
  mutable clauses_exported : int;
  mutable clauses_imported : int;
  mutable expr_nodes : int;
}

let fresh_stats () = {
  queries = 0;
  const_hits = 0;
  interval_hits = 0;
  cache_hits = 0;
  sat_calls = 0;
  sat_results = 0;
  unsat_results = 0;
  unknown_results = 0;
  cache_evictions = 0;
  solver_time = 0.0;
  proofs_checked = 0;
  proofs_failed = 0;
  sessions_opened = 0;
  assumption_solves = 0;
  scratch_fallbacks = 0;
  tiny_session_fallbacks = 0;
  learnt_retained = 0;
  canonical_hits = 0;
  canon_small_skips = 0;
  canon_threshold_nodes = 0;
  rows_pruned = 0;
  pairs_skipped_by_pruning = 0;
  subsumed_groups = 0;
  shared_solves = 0;
  bases_adopted = 0;
  clauses_exported = 0;
  clauses_imported = 0;
  expr_nodes = 0;
}

(* --- the per-domain context ------------------------------------------ *)

let default_cache_capacity = 65536

(* A bounded map with recency tracking: a hashtable over an intrusive
   doubly-linked list ordered least- to most-recently used.  [find]
   moves the entry to the back, so bounded eviction from the front
   discards what has gone longest without a hit — canonical entries
   that keep hitting are never swept out with a cold half, which the
   old FIFO (insertion-order) eviction could not guarantee. *)
module Lru = struct
  type ('k, 'v) node = {
    nkey : 'k;
    mutable value : 'v;
    mutable prev : ('k, 'v) node option;
    mutable next : ('k, 'v) node option;
  }

  type ('k, 'v) t = {
    tbl : ('k, ('k, 'v) node) Hashtbl.t;
    mutable head : ('k, 'v) node option; (* least recently used *)
    mutable tail : ('k, 'v) node option; (* most recently used *)
  }

  let create n = { tbl = Hashtbl.create n; head = None; tail = None }
  let length t = Hashtbl.length t.tbl

  let clear t =
    Hashtbl.reset t.tbl;
    t.head <- None;
    t.tail <- None

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_back t n =
    n.prev <- t.tail;
    n.next <- None;
    (match t.tail with Some old -> old.next <- Some n | None -> t.head <- Some n);
    t.tail <- Some n

  let find t k =
    match Hashtbl.find_opt t.tbl k with
    | None -> None
    | Some n ->
      unlink t n;
      push_back t n;
      Some n.value

  let add t k v =
    match Hashtbl.find_opt t.tbl k with
    | Some n ->
      n.value <- v;
      unlink t n;
      push_back t n
    | None ->
      let n = { nkey = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_back t n

  let evict_to t target =
    while length t > target do
      match t.head with
      | None -> Hashtbl.reset t.tbl (* defensive: list and table disagree *)
      | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl n.nkey
    done
end

(* The canonical (α-invariant) memo is an index over the exact-key
   cache, not a second copy of it.  Entering every query into a
   canonical-form table costs a full canonicalization per miss — two
   digest passes over the DAG, which measured at ~0.2ms on crosscheck
   pair queries, dwarfing the queries it might later save.  Instead:

   - [c_fps] maps a cheap α-invariant fingerprint ({!Canon.fingerprint},
     a memoized integer fold over the hash-consed DAG) to the few cached
     queries bearing it.  A query whose fingerprint is absent provably
     has no α-equivalent cached twin, and the miss path has paid only
     the fingerprint — amortized O(new DAG nodes), ~free on shared
     prefixes.
   - Only on a fingerprint match are full canonical keys computed (and
     memoized per exact key in [c_canon_memo]) to confirm or refute the
     α-equivalence; the verdict is then read back out of [c_cache], so
     the two levels can never disagree and eviction needs no
     cross-maintenance — a candidate whose exact entry was evicted is
     dropped from the index lazily. *)
type ctx = {
  c_stats : stats;
  c_cache : (int list, result) Lru.t;
  c_fps : (int, Expr.boolean list list ref) Hashtbl.t;
  c_canon_memo : (int list, Canon.key * Canon.renaming) Hashtbl.t;
  mutable c_capacity : int;
  mutable c_canon_on : bool;
  mutable c_certify : bool;
  mutable c_hook : unit -> unit;
  mutable c_budget : budget; (* applied to queries with no explicit [?budget] *)
}

(* Distinct cached queries sharing one fingerprint are nearly always
   genuine α-twins (the key confirms); a longer chain means fingerprint
   collisions, and scanning it would canonicalize every member. *)
let max_fp_candidates = 8

let create_ctx () = {
  c_stats = fresh_stats ();
  c_cache = Lru.create 4096;
  c_fps = Hashtbl.create 4096;
  c_canon_memo = Hashtbl.create 1024;
  c_capacity = default_cache_capacity;
  c_canon_on = true;
  c_certify = false;
  c_hook = (fun () -> ());
  c_budget = no_budget;
}

let dls_key : ctx Domain.DLS.key = Domain.DLS.new_key create_ctx

let ctx () = Domain.DLS.get dls_key

(* Queries that do not pass an explicit [?budget] fall back to this; the
   CLI sets it from --budget-ms / --max-conflicts so the budget reaches
   every solver call without threading a parameter through each layer. *)
let set_default_budget b = (ctx ()).c_budget <- b
let get_default_budget () = (ctx ()).c_budget

let stats () = (ctx ()).c_stats

let reset_stats () =
  let s = stats () in
  s.queries <- 0;
  s.const_hits <- 0;
  s.interval_hits <- 0;
  s.cache_hits <- 0;
  s.sat_calls <- 0;
  s.sat_results <- 0;
  s.unsat_results <- 0;
  s.unknown_results <- 0;
  s.cache_evictions <- 0;
  s.solver_time <- 0.0;
  s.proofs_checked <- 0;
  s.proofs_failed <- 0;
  s.sessions_opened <- 0;
  s.assumption_solves <- 0;
  s.scratch_fallbacks <- 0;
  s.tiny_session_fallbacks <- 0;
  s.learnt_retained <- 0;
  s.canonical_hits <- 0;
  s.canon_small_skips <- 0;
  s.canon_threshold_nodes <- 0;
  s.rows_pruned <- 0;
  s.pairs_skipped_by_pruning <- 0;
  s.subsumed_groups <- 0;
  s.shared_solves <- 0;
  s.bases_adopted <- 0;
  s.clauses_exported <- 0;
  s.clauses_imported <- 0;
  s.expr_nodes <- 0

(* [expr_nodes] is a gauge over a single global table, not a per-domain
   counter: capture reads the current table size, merge takes the max so
   folding several workers' snapshots never double-counts shared nodes. *)
let capture_expr_stats () =
  let s = stats () in
  s.expr_nodes <- Expr.live_nodes ()

let merge_stats ~into:dst (src : stats) =
  dst.queries <- dst.queries + src.queries;
  dst.const_hits <- dst.const_hits + src.const_hits;
  dst.interval_hits <- dst.interval_hits + src.interval_hits;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.sat_calls <- dst.sat_calls + src.sat_calls;
  dst.sat_results <- dst.sat_results + src.sat_results;
  dst.unsat_results <- dst.unsat_results + src.unsat_results;
  dst.unknown_results <- dst.unknown_results + src.unknown_results;
  dst.cache_evictions <- dst.cache_evictions + src.cache_evictions;
  dst.solver_time <- dst.solver_time +. src.solver_time;
  dst.proofs_checked <- dst.proofs_checked + src.proofs_checked;
  dst.proofs_failed <- dst.proofs_failed + src.proofs_failed;
  dst.sessions_opened <- dst.sessions_opened + src.sessions_opened;
  dst.assumption_solves <- dst.assumption_solves + src.assumption_solves;
  dst.scratch_fallbacks <- dst.scratch_fallbacks + src.scratch_fallbacks;
  dst.tiny_session_fallbacks <- dst.tiny_session_fallbacks + src.tiny_session_fallbacks;
  dst.learnt_retained <- dst.learnt_retained + src.learnt_retained;
  dst.canonical_hits <- dst.canonical_hits + src.canonical_hits;
  dst.canon_small_skips <- dst.canon_small_skips + src.canon_small_skips;
  (* a gauge (the configured cutoff), not a counter: max, like expr_nodes *)
  dst.canon_threshold_nodes <- max dst.canon_threshold_nodes src.canon_threshold_nodes;
  dst.rows_pruned <- dst.rows_pruned + src.rows_pruned;
  dst.pairs_skipped_by_pruning <- dst.pairs_skipped_by_pruning + src.pairs_skipped_by_pruning;
  dst.subsumed_groups <- dst.subsumed_groups + src.subsumed_groups;
  dst.shared_solves <- dst.shared_solves + src.shared_solves;
  dst.bases_adopted <- dst.bases_adopted + src.bases_adopted;
  dst.clauses_exported <- dst.clauses_exported + src.clauses_exported;
  dst.clauses_imported <- dst.clauses_imported + src.clauses_imported;
  dst.expr_nodes <- max dst.expr_nodes src.expr_nodes

(* --- memo cache ------------------------------------------------------- *)

let set_cache_capacity n =
  if n <= 0 then invalid_arg "Solver.set_cache_capacity: capacity must be positive";
  (ctx ()).c_capacity <- n

(* Both cache levels are flushed together: the canonical index can
   answer (some) queries without reaching the SAT core, so a caller that
   clears "the cache" to measure cold costs — or to realign two runs'
   query-hook draw streams — must start both levels cold. *)
let clear_cache () =
  let c = ctx () in
  Lru.clear c.c_cache;
  Hashtbl.reset c.c_fps;
  Hashtbl.reset c.c_canon_memo

let cache_len () = Lru.length (ctx ()).c_cache

(* Bounded eviction: on reaching capacity, discard the *colder half* of
   the entries (least-recently-used first) instead of flushing the whole
   table.  A full flush right after hitting capacity costs a worst-case
   thrash: every warm prefix entry is re-solved at once.  Dropping the
   half that has gone longest without a hit keeps the hot half resident
   while bounding memory the same way. *)
let cache_evict c lru =
  c.c_stats.cache_evictions <- c.c_stats.cache_evictions + 1;
  Lru.evict_to lru (c.c_capacity / 2)

let cache_add c key r =
  if Lru.length c.c_cache >= c.c_capacity then cache_evict c c.c_cache;
  Lru.add c.c_cache key r

let cache_key conds = List.sort_uniq compare (List.map (fun (b : Expr.boolean) -> b.Expr.bid) conds)

(* Full canonicalization, memoized by exact key so a query canonicalized
   as a lookup probe is not re-canonicalized when it later serves as a
   candidate (or vice versa).  Keying by the exact key is sound: the
   canonical form depends only on the deduplicated conjunct set. *)
let canon_of c ekey conds =
  match Hashtbl.find_opt c.c_canon_memo ekey with
  | Some kr -> kr
  | None ->
    let kr = Canon.of_conds conds in
    if Hashtbl.length c.c_canon_memo >= c.c_capacity then Hashtbl.reset c.c_canon_memo;
    Hashtbl.replace c.c_canon_memo ekey kr;
    kr

(* Enter a freshly decided query into the fingerprint index.  The
   per-fingerprint chain is bounded and deduplicated by exact key; the
   whole index is reset (not evicted — it is only an index, losing it
   costs future canonical hits, never correctness) if it somehow
   outgrows several times the cache capacity. *)
let fp_register c fp key conds =
  match Hashtbl.find_opt c.c_fps fp with
  | Some lst ->
    if
      List.length !lst < max_fp_candidates
      && not (List.exists (fun cand -> cache_key cand = key) !lst)
    then lst := conds :: !lst
  | None ->
    if Hashtbl.length c.c_fps >= 4 * c.c_capacity then Hashtbl.reset c.c_fps;
    Hashtbl.replace c.c_fps fp (ref [ conds ])

(* --- certification ---------------------------------------------------- *)

(* When on, every Unsat leaving the SAT core must carry a DRUP proof that
   the independent checker (Proof) accepts; a rejected proof downgrades
   the answer to [Unknown (Proof_failed _)] — an unproven Unsat is never
   trusted.  The interval pre-filter is bypassed so that no Unsat reaches
   a caller without a proof (constant folding of a literal [false]
   conjunct is the one exemption: the refutation is the constant itself). *)
let set_certify b =
  let c = ctx () in
  if b <> c.c_certify then begin
    c.c_certify <- b;
    (* memoized entries from the other regime are not proof-backed (or
       were needlessly strict); drop them *)
    clear_cache ()
  end

let certify_enabled () = (ctx ()).c_certify

(* The canonical layer is an optimisation, not a regime: toggling it
   never invalidates entries (they stay sound either way), so unlike
   {!set_certify} there is nothing to flush. *)
let set_canon b = (ctx ()).c_canon_on <- b
let canon_enabled () = (ctx ()).c_canon_on

(* Called on every query that reaches the SAT core, after the deadline is
   anchored and before the search starts.  Fault injection installs a
   closure here (scoped to the crosscheck phase) that may raise or skew
   the clock; by default it does nothing.  The hook is per-domain: a
   worker installing it for a pair's scope never perturbs another
   domain's queries. *)
let set_query_hook f = (ctx ()).c_hook <- f

(* --- configuration hand-off across domains ---------------------------- *)

type config = {
  cfg_budget : budget;
  cfg_certify : bool;
  cfg_cache_capacity : int;
  cfg_canon : bool;
}

let snapshot_config () =
  let c = ctx () in
  {
    cfg_budget = c.c_budget;
    cfg_certify = c.c_certify;
    cfg_cache_capacity = c.c_capacity;
    cfg_canon = c.c_canon_on;
  }

let apply_config cfg =
  let c = ctx () in
  c.c_budget <- cfg.cfg_budget;
  c.c_capacity <- cfg.cfg_cache_capacity;
  c.c_canon_on <- cfg.cfg_canon;
  if c.c_certify <> cfg.cfg_certify then begin
    c.c_certify <- cfg.cfg_certify;
    clear_cache ()
  end

(* --- the query pipeline ----------------------------------------------- *)

let run_sat ?(fire_hook = true) c budget conds =
  c.c_stats.sat_calls <- c.c_stats.sat_calls + 1;
  let t0 = Mono.now () in
  let bctx = Bitblast.create ~proof:c.c_certify () in
  List.iter (Bitblast.assert_bool bctx) conds;
  (* the deadline is anchored before bit-blasting, so blast time counts
     against the same per-query budget as the search *)
  let deadline =
    Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) budget.b_timeout_ms
  in
  if fire_hook then c.c_hook ();
  let r =
    match
      Sat.solve ?max_conflicts:budget.b_max_conflicts
        ?max_decisions:budget.b_max_decisions ?deadline bctx.Bitblast.sat
    with
    | Sat.Sat -> Sat (Bitblast.extract_model bctx)
    | Sat.Unsat ->
      if not c.c_certify then Unsat
      else begin
        c.c_stats.proofs_checked <- c.c_stats.proofs_checked + 1;
        match
          Proof.check_derivation
            (Sat.original_clauses bctx.Bitblast.sat)
            (Sat.proof_steps bctx.Bitblast.sat)
        with
        | Proof.Valid -> Unsat
        | Proof.Invalid msg ->
          c.c_stats.proofs_failed <- c.c_stats.proofs_failed + 1;
          Unknown (Proof_failed msg)
      end
    | Sat.Unknown Sat.Conflicts -> Unknown Out_of_conflicts
    | Sat.Unknown Sat.Decisions -> Unknown Out_of_decisions
    | Sat.Unknown Sat.Time -> Unknown Out_of_time
  in
  c.c_stats.solver_time <- c.c_stats.solver_time +. Mono.elapsed t0;
  r

(* Queries below this many boolean DAG nodes skip the canonical memo
   entirely (no fingerprint, no index registration): on a cold pipeline
   the canonicalization machinery costs more than just solving them.
   The default cutoff was measured on the bench workload — tiny
   guard/equality probes sit well under it, the big pair-disagreement
   queries well over, so the cache-hit-rate the canonical layer earns on
   real pair queries is untouched.  Process-wide (one atomic, read by
   every domain) so workers and caller always agree. *)
let default_canon_threshold = 64

let canon_threshold_cell = Atomic.make default_canon_threshold
let set_canon_threshold n = Atomic.set canon_threshold_cell (max 0 n)
let canon_threshold () = Atomic.get canon_threshold_cell

(* The full frontend pipeline with a pluggable back end: [core budget conds]
   is invoked only for queries that survive constant folding, the memo
   cache and the interval filter.  [check] instantiates it with the
   scratch SAT core; [Session.check] instantiates it with an incremental
   assumption solve, inheriting the exact same front half so the two modes
   see identical query streams. *)
let check_with ?(use_interval = true) ?(use_cache = true) ?budget ~core conds =
  let c = ctx () in
  let budget = match budget with Some b -> b | None -> c.c_budget in
  c.c_stats.queries <- c.c_stats.queries + 1;
  (* drop trivially-true conjuncts; answer immediately on any false *)
  let conds = List.filter (fun cond -> not (Expr.is_true cond)) conds in
  if List.exists Expr.is_false conds then begin
    c.c_stats.const_hits <- c.c_stats.const_hits + 1;
    Unsat
  end
  else if conds = [] then begin
    c.c_stats.const_hits <- c.c_stats.const_hits + 1;
    Sat (Model.empty ())
  end
  else
    let key = if use_cache then cache_key conds else [] in
    match if use_cache then Lru.find c.c_cache key else None with
    | Some r ->
      c.c_stats.cache_hits <- c.c_stats.cache_hits + 1;
      (* the hit replaces a solve that would have fired the query hook
         once; consume that draw here (the hook may raise).  Per-domain
         caches warm differently at different [-j], so a draw skipped on
         a hit is exactly what would make a chaos fault schedule — and
         hence the report — depend on the worker count. *)
      c.c_hook ();
      r
    | None ->
      (* second level: the α-invariant canonical memo.  An exact-key miss
         may still be a renaming/reassociation of a query already
         decided.  The cheap fingerprint decides whether that is even
         possible; full canonical forms are computed (and memoized) only
         when it is, so the common no-twin miss pays one memoized integer
         fold, not two digest passes over the DAG.

         The lookup runs {e after} the interval filter, and a confirmed
         hit consumes exactly the query-hook draw a fresh solve would:
         an Unsat hit fires the hook once in place of the core's firing
         (the hook may raise — an injected fault must land here exactly
         as it would land on the solve the hit replaced), and a Sat hit
         replays through the scratch core, which fires it.  Canonical
         reuse is therefore invisible to fault injection: a --no-canon
         run draws the same fault stream and faults on the same pairs. *)
      (* computed once per miss, shared between the lookup probe and the
         post-solve registration; lazy so an interval-filtered query pays
         for it only if its result is registered *)
      let fp = lazy (Canon.fingerprint conds) in
      (* queries cheaper to solve than to canonicalize bypass the memo in
         both directions (no lookup, no registration); the exact-key LRU
         above still serves their repeats *)
      let canon_small =
        use_cache && c.c_canon_on
        && begin
          let threshold = canon_threshold () in
          c.c_stats.canon_threshold_nodes <- threshold;
          List.fold_left (fun n cond -> n + Expr.bool_size cond) 0 conds < threshold
        end
      in
      if canon_small then
        c.c_stats.canon_small_skips <- c.c_stats.canon_small_skips + 1;
      let canonical_reuse () =
        if canon_small || not (use_cache && c.c_canon_on) then None
        else
          match Hashtbl.find_opt c.c_fps (Lazy.force fp) with
          | None | Some { contents = [] } -> None
          | Some lst ->
            let ckey, ren = canon_of c key conds in
            let rec try_candidates = function
              | [] -> None
              | cand :: rest -> (
                let ckey_c, ren_c = canon_of c (cache_key cand) cand in
                if ckey_c <> ckey then try_candidates rest
                else
                  match Lru.find c.c_cache (cache_key cand) with
                  | None ->
                    (* the exact entry behind this candidate was
                       evicted; drop it from the index lazily *)
                    lst := List.filter (fun x -> x != cand) !lst;
                    try_candidates rest
                  | Some entry ->
                    if c.c_certify then begin
                      (* certify mode never trusts a canonical hit
                         without replay: count the hit, then fall
                         through to the proof-checked core like any
                         miss *)
                      c.c_stats.canonical_hits <- c.c_stats.canonical_hits + 1;
                      None
                    end
                    else begin
                      match entry with
                      | Unsat ->
                        (* unsatisfiability transfers exactly across
                           the variable bijection — no replay needed,
                           but the replaced solve's hook draw is *)
                        c.c_stats.canonical_hits <- c.c_stats.canonical_hits + 1;
                        c.c_hook ();
                        Some Unsat
                      | Sat m ->
                        let m' =
                          Canon.translate_model ren (Canon.to_canonical_bindings ren_c m)
                        in
                        if not (Model.satisfies m' conds) then
                          None (* defensive: treat as miss *)
                        else begin
                          c.c_stats.canonical_hits <- c.c_stats.canonical_hits + 1;
                          (* the translated model proves the query Sat,
                             but the published witness must be
                             byte-identical to what a fresh solve would
                             print — replay through the scratch core
                             (whose hook firing is the one draw the
                             replaced solve would have made) and publish
                             its model *)
                          match run_sat c budget conds with
                          | Sat _ as r -> Some r
                          | Unknown _ as r -> Some r
                          | Unsat ->
                            raise
                              (Solver_error
                                 ("canonical Sat entry refuted on replay", conds))
                        end
                      | Unknown _ ->
                        (* unreachable: Unknown is never cached *)
                        try_candidates rest
                    end)
            in
            try_candidates !lst
      in
      (* certify mode bypasses the interval filter: its Unsat answers
         carry no proof, and the whole point is never to publish one *)
      if use_interval && (not c.c_certify) && Interval.check conds = Interval.Unsat
      then begin
        c.c_stats.interval_hits <- c.c_stats.interval_hits + 1;
        c.c_stats.unsat_results <- c.c_stats.unsat_results + 1;
        (* never cached (and never fp-registered): an interval refutation
           consumes no query-hook draw, while a cache or canonical hit
           consumes exactly one — the draw of the core solve it replaces.
           Caching one would let the same query cost zero draws on the
           domain that decided it fresh and one draw on a domain replaying
           it from cache, making the fault-injection schedule — and hence
           a chaos report — depend on per-domain cache warmth, i.e. on the
           worker count.  Replaying the filter costs about what the hit
           would, so the entry is not missed. *)
        Unsat
      end
      else begin
      let r =
        match canonical_reuse () with
        | Some r -> r
        | None -> core budget conds
      in
      (match r with
       | Sat m ->
         c.c_stats.sat_results <- c.c_stats.sat_results + 1;
         (* sanity: the model must actually satisfy the query.  A raised
            error, not an assert — asserts vanish under --release, which
            would silently disable the check exactly when it matters. *)
         if not (Model.satisfies m conds) then
           raise (Solver_error ("SAT model does not satisfy the query", conds))
       | Unsat -> c.c_stats.unsat_results <- c.c_stats.unsat_results + 1
       | Unknown _ -> c.c_stats.unknown_results <- c.c_stats.unknown_results + 1);
      (* never cache Unknown: it reflects this call's budget, not the query *)
      (match r with
       | Unknown _ -> ()
       | Sat _ | Unsat ->
         if use_cache then begin
           cache_add c key r;
           (* make this query findable by future α-variants; the full
              canonical form stays uncomputed until a fingerprint match
              actually asks for it *)
           if c.c_canon_on && not canon_small then
             fp_register c (Lazy.force fp) key conds
         end);
      r
      end

let check ?use_interval ?use_cache ?budget conds =
  check_with ?use_interval ?use_cache ?budget
    ~core:(fun budget conds -> run_sat (ctx ()) budget conds)
    conds

(* A raw scratch SAT solve on the calling domain's context, bypassing the
   frontend pipeline.  [fire_hook=false] suppresses the query hook: the
   incremental session uses this to re-derive a canonical witness without
   consuming a fault-injection draw the scratch mode would not consume. *)
let solve_scratch ?fire_hook budget conds = run_sat ?fire_hook (ctx ()) budget conds

let run_query_hook () = (ctx ()).c_hook ()

let is_sat ?use_interval ?use_cache ?budget conds =
  match check ?use_interval ?use_cache ?budget conds with
  | Sat _ -> true
  | Unsat | Unknown _ -> false

let get_model ?use_interval ?use_cache ?budget conds =
  match check ?use_interval ?use_cache ?budget conds with
  | Sat m -> Some m
  | Unsat | Unknown _ -> None

(* Validity of an implication: pc ⊨ c  iff  pc ∧ ¬c is unsat.  An Unknown
   on the negation means we cannot certify the entailment — answer [false]
   (the sound direction for every current caller). *)
let entails ?budget pc c =
  match check ?budget (Expr.not_ c :: pc) with
  | Unsat -> true
  | Sat _ | Unknown _ -> false

let pp_stats fmt () =
  capture_expr_stats ();
  let s = stats () in
  Format.fprintf fmt
    "queries=%d const=%d interval=%d cache=%d sat_calls=%d (sat=%d unsat=%d unknown=%d) evictions=%d time=%.3fs expr_nodes=%d"
    s.queries s.const_hits s.interval_hits s.cache_hits s.sat_calls
    s.sat_results s.unsat_results s.unknown_results s.cache_evictions
    s.solver_time s.expr_nodes;
  if s.proofs_checked > 0 then
    Format.fprintf fmt " proofs=%d/%d"
      (s.proofs_checked - s.proofs_failed)
      s.proofs_checked;
  if s.sessions_opened > 0 then
    Format.fprintf fmt " sessions=%d assumption_solves=%d fallbacks=%d learnt_retained=%d"
      s.sessions_opened s.assumption_solves s.scratch_fallbacks s.learnt_retained;
  if s.tiny_session_fallbacks > 0 then
    Format.fprintf fmt " tiny_session_fallbacks=%d" s.tiny_session_fallbacks;
  if s.canonical_hits > 0 then
    Format.fprintf fmt " canonical_hits=%d" s.canonical_hits;
  if s.canon_small_skips > 0 then
    Format.fprintf fmt " canon_small_skips=%d (threshold=%d nodes)"
      s.canon_small_skips s.canon_threshold_nodes;
  if s.bases_adopted > 0 then
    Format.fprintf fmt " shared_solves=%d bases_adopted=%d"
      s.shared_solves s.bases_adopted;
  if s.clauses_exported > 0 || s.clauses_imported > 0 then
    Format.fprintf fmt " clauses_exported=%d clauses_imported=%d"
      s.clauses_exported s.clauses_imported;
  if s.rows_pruned > 0 || s.subsumed_groups > 0 then
    Format.fprintf fmt " rows_pruned=%d pairs_skipped=%d subsumed_groups=%d"
      s.rows_pruned s.pairs_skipped_by_pruning s.subsumed_groups
