(* Monotonic clock helper.  All stage timings and deadline logic in the
   solver, engine and crosscheck go through this module rather than
   [Unix.gettimeofday]: wall-clock steps (NTP, manual adjustment) would
   otherwise corrupt [solver_time]/[o_check_time] and, worse, any budget
   deadline computed from them. *)

external raw_now_ns : unit -> int64 = "soft_mono_clock_ns"

(* Fault injection (Harness.Chaos) simulates clock jumps by skewing every
   reading; the skew is additive and normally zero, so production reads
   stay a single external call plus one add. *)
let skew_ns = ref 0L

let advance seconds =
  skew_ns := Int64.add !skew_ns (Int64.of_float (seconds *. 1e9))

let reset_skew () = skew_ns := 0L

let now_ns () = Int64.add (raw_now_ns ()) !skew_ns

let now () = Int64.to_float (now_ns ()) /. 1e9

let elapsed since = now () -. since
