(* Monotonic clock helper.  All stage timings and deadline logic in the
   solver, engine and crosscheck go through this module rather than
   [Unix.gettimeofday]: wall-clock steps (NTP, manual adjustment) would
   otherwise corrupt [solver_time]/[o_check_time] and, worse, any budget
   deadline computed from them. *)

external now_ns : unit -> int64 = "soft_mono_clock_ns"

let now () = Int64.to_float (now_ns ()) /. 1e9

let elapsed since = now () -. since
