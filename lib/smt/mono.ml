(* Monotonic clock helper.  All stage timings and deadline logic in the
   solver, engine and crosscheck go through this module rather than
   [Unix.gettimeofday]: wall-clock steps (NTP, manual adjustment) would
   otherwise corrupt [solver_time]/[o_check_time] and, worse, any budget
   deadline computed from them.

   The external returns an unboxed int64 and never allocates, so a clock
   read is a plain C call from any domain — no GC interaction, nothing
   shared.  [clock_gettime(CLOCK_MONOTONIC)] itself is thread-safe. *)

external raw_now_ns : unit -> (int64[@unboxed])
  = "soft_mono_clock_ns" "soft_mono_clock_ns_unboxed"
[@@noalloc]

(* Fault injection (Harness.Chaos) simulates clock jumps by skewing every
   reading; the skew is additive and normally zero, so production reads
   stay a single external call plus one atomic load and add.  An
   [Atomic.t] rather than a [ref]: chaos delivers jumps inside crosscheck
   worker domains, so the skew is written and read across domains — the
   CAS loop in [advance] never loses a concurrent jump. *)
let skew_ns : int64 Atomic.t = Atomic.make 0L

let advance seconds =
  let delta = Int64.of_float (seconds *. 1e9) in
  let rec go () =
    let cur = Atomic.get skew_ns in
    if not (Atomic.compare_and_set skew_ns cur (Int64.add cur delta)) then go ()
  in
  go ()

let reset_skew () = Atomic.set skew_ns 0L

let now_ns () = Int64.add (raw_now_ns ()) (Atomic.get skew_ns)

let now () = Int64.to_float (now_ns ()) /. 1e9

let elapsed since = now () -. since
