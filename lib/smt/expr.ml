(* Hash-consed bitvector and boolean expressions (QF_BV fragment).

   Every node carries a unique id assigned by the hash-consing tables, so
   structural equality of expressions is O(1) id comparison.  This is what
   makes trace comparison and solver memoization cheap throughout SOFT.

   Bitvector widths range over 1..64; concrete values are stored in an
   [int64] normalized to the width (high bits zero). *)

type unop = Bnot | Neg

type binop = Add | Sub | Mul | Andb | Orb | Xorb | Shl | Lshr

type cmp = Eq | Ult | Ule | Slt | Sle

type bv = { id : int; width : int; node : bv_node }

and bv_node =
  | Const of int64
  | Var of var
  | Unop of unop * bv
  | Binop of binop * bv * bv
  | Ite of boolean * bv * bv
  | Extract of bv * int * int (* hi, lo inclusive *)
  | Concat of bv * bv (* high, low *)
  | Zext of bv
  | Sext of bv

and boolean = { bid : int; bnode : bool_node }

and bool_node =
  | True
  | False
  | Cmp of cmp * bv * bv
  | Not of boolean
  | And of boolean * boolean
  | Or of boolean * boolean

and var = { vid : int; name : string; vwidth : int }

exception Width_mismatch of string

let mask width = if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L

let norm width v = Int64.logand v (mask width)

(* ------------------------------------------------------------------ *)
(* Domain-safety: the hash-consing tables below are the one piece of
   process-global mutable state in the SMT stack that parallel crosscheck
   workers must share — expression identity (the ids) is what makes
   cross-domain results comparable, so the tables cannot be per-domain.
   Every table access goes through [interned], a single mutex: interning
   is a brief lookup/insert, so even the uncontended single-domain cost is
   a few nanoseconds against the bit-blast and CDCL work each node feeds.
   Plain [Hashtbl] reads racing an insert (which may resize) are undefined
   under OCaml 5, hence lookups are locked too — never "optimistically"
   read outside the lock. *)

let intern_lock = Mutex.create ()

(* Poll before taking the lock: a cancelled worker stuck in an interning
   storm aborts here instead of growing the global tables further.  Outside
   a supervised task the poll is two loads. *)
let interned f =
  Cancel.poll ();
  Mutex.protect intern_lock f

(* Advisory bound on the hash-cons tables.  True eviction is impossible —
   node ids are identity, and live expressions reference their children by
   physical pointer — so the bound converts an interning storm into a
   catchable exception instead of unbounded growth.  0 means unlimited. *)
exception Node_limit of int

let node_limit = Atomic.make 0

let set_node_limit n =
  Atomic.set node_limit (match n with None -> 0 | Some n when n > 0 -> n | Some _ -> 0)

let get_node_limit () =
  match Atomic.get node_limit with 0 -> None | n -> Some n

(* ------------------------------------------------------------------ *)
(* Variable registry: names are globally unique handles so that two
   independent symbolic executions (agent A, agent B) fed with inputs built
   from the same names share variables — the crosscheck phase depends on
   this. *)

let var_table : (string, var) Hashtbl.t = Hashtbl.create 256
let vars_by_id : (int, var) Hashtbl.t = Hashtbl.create 256
let var_counter = ref 0

let make_var name width =
  if width < 1 || width > 64 then invalid_arg "Expr.var: width out of range";
  interned (fun () ->
      match Hashtbl.find_opt var_table name with
      | Some v ->
        if v.vwidth <> width then
          raise (Width_mismatch (Printf.sprintf "var %s: %d vs %d" name v.vwidth width));
        v
      | None ->
        let v = { vid = !var_counter; name; vwidth = width } in
        incr var_counter;
        Hashtbl.add var_table name v;
        Hashtbl.add vars_by_id v.vid v;
        v)

let var_by_id vid = interned (fun () -> Hashtbl.find_opt vars_by_id vid)
let var_name v = v.name
let var_width v = v.vwidth
let var_id v = v.vid
let all_vars () = interned (fun () -> Hashtbl.fold (fun _ v acc -> v :: acc) var_table [])

(* ------------------------------------------------------------------ *)
(* Hash-consing: keys reference children by id only. *)

type bv_key =
  | KConst of int64 * int
  | KVar of int
  | KUnop of unop * int
  | KBinop of binop * int * int
  | KIte of int * int * int
  | KExtract of int * int * int
  | KConcat of int * int
  | KZext of int * int
  | KSext of int * int

type bool_key =
  | KTrue
  | KFalse
  | KCmp of cmp * int * int
  | KNot of int
  | KAnd of int * int
  | KOr of int * int

let bv_table : (bv_key, bv) Hashtbl.t = Hashtbl.create 4096
let bool_table : (bool_key, boolean) Hashtbl.t = Hashtbl.create 4096
let bv_counter = ref 0
let bool_counter = ref 0

(* Callers hold [intern_lock]. *)
let live_nodes_unlocked () =
  Hashtbl.length bv_table + Hashtbl.length bool_table + Hashtbl.length var_table

let live_nodes () = interned live_nodes_unlocked

let table_sizes () =
  interned (fun () ->
      (Hashtbl.length bv_table, Hashtbl.length bool_table, Hashtbl.length var_table))

let check_node_limit () =
  let lim = Atomic.get node_limit in
  if lim > 0 && live_nodes_unlocked () >= lim then raise (Node_limit lim)

let key_of_bv_node width node =
  match node with
  | Const c -> KConst (c, width)
  | Var v -> KVar v.vid
  | Unop (op, a) -> KUnop (op, a.id)
  | Binop (op, a, b) -> KBinop (op, a.id, b.id)
  | Ite (c, a, b) -> KIte (c.bid, a.id, b.id)
  | Extract (a, hi, lo) -> KExtract (a.id, hi, lo)
  | Concat (a, b) -> KConcat (a.id, b.id)
  | Zext a -> KZext (a.id, width)
  | Sext a -> KSext (a.id, width)

let key_of_bool_node node =
  match node with
  | True -> KTrue
  | False -> KFalse
  | Cmp (c, a, b) -> KCmp (c, a.id, b.id)
  | Not a -> KNot a.bid
  | And (a, b) -> KAnd (a.bid, b.bid)
  | Or (a, b) -> KOr (a.bid, b.bid)

let intern_bv width node =
  let key = key_of_bv_node width node in
  interned (fun () ->
      match Hashtbl.find_opt bv_table key with
      | Some e -> e
      | None ->
        check_node_limit ();
        let e = { id = !bv_counter; width; node } in
        incr bv_counter;
        Hashtbl.add bv_table key e;
        e)

let intern_bool node =
  let key = key_of_bool_node node in
  interned (fun () ->
      match Hashtbl.find_opt bool_table key with
      | Some e -> e
      | None ->
        check_node_limit ();
        let e = { bid = !bool_counter; bnode = node } in
        incr bool_counter;
        Hashtbl.add bool_table key e;
        e)

(* ------------------------------------------------------------------ *)
(* Constructors with constant folding and algebraic simplification. *)

let const ~width v =
  if width < 1 || width > 64 then invalid_arg "Expr.const: width out of range";
  intern_bv width (Const (norm width v))

let var ~width name = intern_bv width (Var (make_var name width))
let of_var v = intern_bv v.vwidth (Var v)

let width e = e.width

let is_const e = match e.node with Const _ -> true | _ -> false

let const_value e = match e.node with Const c -> Some c | _ -> None

let tru = intern_bool True
let fls = intern_bool False

let of_bool b = if b then tru else fls
let is_true b = b.bnode = True
let is_false b = b.bnode = False

(* Sign-extend a normalized width-[w] value into a full int64. *)
let to_signed w v =
  if w >= 64 then v
  else
    let sign_bit = Int64.logand v (Int64.shift_left 1L (w - 1)) in
    if Int64.equal sign_bit 0L then v else Int64.logor v (Int64.lognot (mask w))

let eval_unop op w a =
  match op with
  | Bnot -> norm w (Int64.lognot a)
  | Neg -> norm w (Int64.neg a)

let eval_binop op w a b =
  match op with
  | Add -> norm w (Int64.add a b)
  | Sub -> norm w (Int64.sub a b)
  | Mul -> norm w (Int64.mul a b)
  | Andb -> Int64.logand a b
  | Orb -> Int64.logor a b
  | Xorb -> Int64.logxor a b
  | Shl ->
    let s = Int64.to_int b in
    if s >= w || s < 0 then 0L else norm w (Int64.shift_left a s)
  | Lshr ->
    let s = Int64.to_int b in
    if s >= w || s < 0 then 0L else Int64.shift_right_logical a s

let eval_cmp op w a b =
  match op with
  | Eq -> Int64.equal a b
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Slt -> Int64.compare (to_signed w a) (to_signed w b) < 0
  | Sle -> Int64.compare (to_signed w a) (to_signed w b) <= 0

let unop op a =
  match a.node with
  | Const c -> const ~width:a.width (eval_unop op a.width c)
  | Unop (Bnot, inner) when op = Bnot -> inner
  | Unop (Neg, inner) when op = Neg -> inner
  | _ -> intern_bv a.width (Unop (op, a))

let bnot a = unop Bnot a
let neg a = unop Neg a

let binop op a b =
  if a.width <> b.width then
    raise (Width_mismatch (Printf.sprintf "binop: %d vs %d" a.width b.width));
  let w = a.width in
  match (a.node, b.node) with
  | Const ca, Const cb -> const ~width:w (eval_binop op w ca cb)
  | _, Const 0L when op = Add || op = Sub || op = Orb || op = Xorb || op = Shl || op = Lshr
    -> a
  | Const 0L, _ when op = Add || op = Orb || op = Xorb -> b
  | _, Const 0L when op = Andb || op = Mul -> const ~width:w 0L
  | Const 0L, _ when op = Andb || op = Mul -> const ~width:w 0L
  | _, Const cb when op = Andb && Int64.equal cb (mask w) -> a
  | Const ca, _ when op = Andb && Int64.equal ca (mask w) -> b
  | _, Const 1L when op = Mul -> a
  | Const 1L, _ when op = Mul -> b
  | _ ->
    if a.id = b.id then
      match op with
      | Xorb | Sub -> const ~width:w 0L
      | Andb | Orb -> a
      | _ -> intern_bv w (Binop (op, a, b))
    else intern_bv w (Binop (op, a, b))

let add a b = binop Add a b
let sub a b = binop Sub a b
let mul a b = binop Mul a b
let logand a b = binop Andb a b
let logor a b = binop Orb a b
let logxor a b = binop Xorb a b
let shl a b = binop Shl a b
let lshr a b = binop Lshr a b

let extract ~hi ~lo a =
  if lo < 0 || hi >= a.width || hi < lo then invalid_arg "Expr.extract: bad range";
  let w = hi - lo + 1 in
  if lo = 0 && hi = a.width - 1 then a
  else
    match a.node with
    | Const c -> const ~width:w (norm w (Int64.shift_right_logical c lo))
    | Extract (inner, _, lo') -> intern_bv w (Extract (inner, hi + lo', lo + lo'))
    | _ -> intern_bv w (Extract (a, hi, lo))

let concat hi lo =
  let w = hi.width + lo.width in
  if w > 64 then invalid_arg "Expr.concat: result wider than 64";
  match (hi.node, lo.node) with
  | Const ch, Const cl ->
    const ~width:w (Int64.logor (Int64.shift_left ch lo.width) cl)
  | _ -> intern_bv w (Concat (hi, lo))

let zext ~width:w a =
  if w < a.width then invalid_arg "Expr.zext: narrowing";
  if w = a.width then a
  else
    match a.node with
    | Const c -> const ~width:w c
    | _ -> intern_bv w (Zext a)

let sext ~width:w a =
  if w < a.width then invalid_arg "Expr.sext: narrowing";
  if w = a.width then a
  else
    match a.node with
    | Const c -> const ~width:w (norm w (to_signed a.width c))
    | _ -> intern_bv w (Sext a)

(* Boolean layer ----------------------------------------------------- *)

let rec not_ a =
  match a.bnode with
  | True -> fls
  | False -> tru
  | Not inner -> inner
  | Cmp (Ult, x, y) -> intern_bool (Cmp (Ule, y, x))
  | Cmp (Ule, x, y) -> intern_bool (Cmp (Ult, y, x))
  | _ -> intern_bool (Not a)

and and_ a b =
  match (a.bnode, b.bnode) with
  | True, _ -> b
  | _, True -> a
  | False, _ | _, False -> fls
  | _ ->
    if a.bid = b.bid then a
    else if (not_ a).bid = b.bid then fls
    else intern_bool (And (a, b))

and or_ a b =
  match (a.bnode, b.bnode) with
  | False, _ -> b
  | _, False -> a
  | True, _ | _, True -> tru
  | _ ->
    if a.bid = b.bid then a
    else if (not_ a).bid = b.bid then tru
    else intern_bool (Or (a, b))

let implies a b = or_ (not_ a) b

let cmp op a b =
  if a.width <> b.width then
    raise (Width_mismatch (Printf.sprintf "cmp: %d vs %d" a.width b.width));
  match (a.node, b.node) with
  | Const ca, Const cb -> of_bool (eval_cmp op a.width ca cb)
  | _ ->
    if a.id = b.id then of_bool (match op with Eq | Ule | Sle -> true | Ult | Slt -> false)
    else
      (* canonical order for the symmetric comparison *)
      match op with
      | Eq when a.id > b.id -> intern_bool (Cmp (Eq, b, a))
      | _ -> intern_bool (Cmp (op, a, b))

let eq a b = cmp Eq a b
let neq a b = not_ (eq a b)
let ult a b = cmp Ult a b
let ule a b = cmp Ule a b
let ugt a b = cmp Ult b a
let uge a b = cmp Ule b a
let slt a b = cmp Slt a b
let sle a b = cmp Sle a b

let eq_const a v = eq a (const ~width:a.width v)
let neq_const a v = neq a (const ~width:a.width v)

let ite c a b =
  if a.width <> b.width then
    raise (Width_mismatch (Printf.sprintf "ite: %d vs %d" a.width b.width));
  match c.bnode with
  | True -> a
  | False -> b
  | _ -> if a.id = b.id then a else intern_bv a.width (Ite (c, a, b))

let conj = function
  | [] -> tru
  | c :: rest -> List.fold_left and_ c rest

let disj = function
  | [] -> fls
  | c :: rest -> List.fold_left or_ c rest

(* Balanced or-tree over a list of conditions, as SOFT's grouping tool
   builds: minimizes nesting depth for the downstream solver (paper §4.2). *)
let balanced_disj conds =
  match conds with
  | [] -> fls
  | _ ->
    let arr = Array.of_list conds in
    let rec build lo hi =
      if lo = hi then arr.(lo)
      else
        let mid = (lo + hi) / 2 in
        or_ (build lo mid) (build (mid + 1) hi)
    in
    build 0 (Array.length arr - 1)

let balanced_conj conds =
  match conds with
  | [] -> tru
  | _ ->
    let arr = Array.of_list conds in
    let rec build lo hi =
      if lo = hi then arr.(lo)
      else
        let mid = (lo + hi) / 2 in
        and_ (build lo mid) (build (mid + 1) hi)
    in
    build 0 (Array.length arr - 1)

(* ------------------------------------------------------------------ *)
(* Traversals *)

let rec iter_bool ~on_bv ~on_bool b =
  on_bool b;
  match b.bnode with
  | True | False -> ()
  | Cmp (_, x, y) ->
    iter_bv ~on_bv ~on_bool x;
    iter_bv ~on_bv ~on_bool y
  | Not x -> iter_bool ~on_bv ~on_bool x
  | And (x, y) | Or (x, y) ->
    iter_bool ~on_bv ~on_bool x;
    iter_bool ~on_bv ~on_bool y

and iter_bv ~on_bv ~on_bool e =
  on_bv e;
  match e.node with
  | Const _ | Var _ -> ()
  | Unop (_, a) | Extract (a, _, _) | Zext a | Sext a -> iter_bv ~on_bv ~on_bool a
  | Binop (_, a, b) | Concat (a, b) ->
    iter_bv ~on_bv ~on_bool a;
    iter_bv ~on_bv ~on_bool b
  | Ite (c, a, b) ->
    iter_bool ~on_bv ~on_bool c;
    iter_bv ~on_bv ~on_bool a;
    iter_bv ~on_bv ~on_bool b

(* Number of boolean operations in a condition: the "constraint size" metric
   of Table 2. Each comparison and connective counts as one. *)
let bool_size b =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go x =
    if not (Hashtbl.mem seen x.bid) then begin
      Hashtbl.add seen x.bid ();
      (match x.bnode with
       | True | False -> ()
       | Cmp _ -> incr count
       | Not a ->
         incr count;
         go a
       | And (a, b) | Or (a, b) ->
         incr count;
         go a;
         go b)
    end
  in
  go b;
  !count

let vars_of_bool b =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let on_bv e =
    match e.node with
    | Var v when not (Hashtbl.mem seen v.vid) ->
      Hashtbl.add seen v.vid ();
      acc := v :: !acc
    | _ -> ()
  in
  iter_bool ~on_bv ~on_bool:(fun _ -> ()) b;
  List.rev !acc

let vars_of_bv e =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let on_bv x =
    match x.node with
    | Var v when not (Hashtbl.mem seen v.vid) ->
      Hashtbl.add seen v.vid ();
      acc := v :: !acc
    | _ -> ()
  in
  iter_bv ~on_bv ~on_bool:(fun _ -> ()) e;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Evaluation under an assignment of variable ids to concrete values. *)

let rec eval_bv lookup e =
  match e.node with
  | Const c -> c
  | Var v -> norm v.vwidth (lookup v)
  | Unop (op, a) -> eval_unop op e.width (eval_bv lookup a)
  | Binop (op, a, b) -> eval_binop op e.width (eval_bv lookup a) (eval_bv lookup b)
  | Ite (c, a, b) -> if eval_bool lookup c then eval_bv lookup a else eval_bv lookup b
  | Extract (a, hi, lo) ->
    let v = eval_bv lookup a in
    norm (hi - lo + 1) (Int64.shift_right_logical v lo)
  | Concat (a, b) ->
    Int64.logor (Int64.shift_left (eval_bv lookup a) b.width) (eval_bv lookup b)
  | Zext a -> eval_bv lookup a
  | Sext a -> norm e.width (to_signed a.width (eval_bv lookup a))

and eval_bool lookup b =
  match b.bnode with
  | True -> true
  | False -> false
  | Cmp (op, x, y) -> eval_cmp op x.width (eval_bv lookup x) (eval_bv lookup y)
  | Not x -> not (eval_bool lookup x)
  | And (x, y) -> eval_bool lookup x && eval_bool lookup y
  | Or (x, y) -> eval_bool lookup x || eval_bool lookup y

(* Memoized evaluation over the expression DAG: hash-consing shares
   subexpressions heavily, so the naive recursive [eval_bv] can revisit a
   node exponentially often.  These variants visit each node once. *)
let memo_eval lookup =
  let bv_memo : (int, int64) Hashtbl.t = Hashtbl.create 64 in
  let bool_memo : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec ebv e =
    match Hashtbl.find_opt bv_memo e.id with
    | Some v -> v
    | None ->
      let v =
        match e.node with
        | Const c -> c
        | Var v -> norm v.vwidth (lookup v)
        | Unop (op, a) -> eval_unop op e.width (ebv a)
        | Binop (op, a, b) -> eval_binop op e.width (ebv a) (ebv b)
        | Ite (c, a, b) -> if ebool c then ebv a else ebv b
        | Extract (a, hi, lo) -> norm (hi - lo + 1) (Int64.shift_right_logical (ebv a) lo)
        | Concat (a, b) -> Int64.logor (Int64.shift_left (ebv a) b.width) (ebv b)
        | Zext a -> ebv a
        | Sext a -> norm e.width (to_signed a.width (ebv a))
      in
      Hashtbl.add bv_memo e.id v;
      v
  and ebool b =
    match Hashtbl.find_opt bool_memo b.bid with
    | Some v -> v
    | None ->
      let v =
        match b.bnode with
        | True -> true
        | False -> false
        | Cmp (op, x, y) -> eval_cmp op x.width (ebv x) (ebv y)
        | Not x -> not (ebool x)
        | And (x, y) -> ebool x && ebool y
        | Or (x, y) -> ebool x || ebool y
      in
      Hashtbl.add bool_memo b.bid v;
      v
  in
  (ebv, ebool)

let eval_bv_memo lookup e =
  let ebv, _ = memo_eval lookup in
  ebv e

let eval_bool_memo lookup b =
  let _, ebool = memo_eval lookup in
  ebool b

(* ------------------------------------------------------------------ *)
(* Pretty printing *)

let unop_name = function Bnot -> "~" | Neg -> "-"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Andb -> "&"
  | Orb -> "|"
  | Xorb -> "^"
  | Shl -> "<<"
  | Lshr -> ">>"

let cmp_name = function
  | Eq -> "="
  | Ult -> "<u"
  | Ule -> "<=u"
  | Slt -> "<s"
  | Sle -> "<=s"

let rec pp_bv fmt e =
  match e.node with
  | Const c -> Format.fprintf fmt "0x%Lx:%d" c e.width
  | Var v -> Format.fprintf fmt "%s" v.name
  | Unop (op, a) -> Format.fprintf fmt "(%s %a)" (unop_name op) pp_bv a
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_bv a (binop_name op) pp_bv b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp_bool c pp_bv a pp_bv b
  | Extract (a, hi, lo) -> Format.fprintf fmt "%a[%d:%d]" pp_bv a hi lo
  | Concat (a, b) -> Format.fprintf fmt "(%a @@ %a)" pp_bv a pp_bv b
  | Zext a -> Format.fprintf fmt "(zext%d %a)" e.width pp_bv a
  | Sext a -> Format.fprintf fmt "(sext%d %a)" e.width pp_bv a

and pp_bool fmt b =
  match b.bnode with
  | True -> Format.fprintf fmt "true"
  | False -> Format.fprintf fmt "false"
  | Cmp (op, x, y) -> Format.fprintf fmt "(%a %s %a)" pp_bv x (cmp_name op) pp_bv y
  | Not x -> Format.fprintf fmt "(not %a)" pp_bool x
  | And (x, y) -> Format.fprintf fmt "(%a /\\ %a)" pp_bool x pp_bool y
  | Or (x, y) -> Format.fprintf fmt "(%a \\/ %a)" pp_bool x pp_bool y

let bv_to_string e = Format.asprintf "%a" pp_bv e
let bool_to_string b = Format.asprintf "%a" pp_bool b

(* Reset all global tables (tests only: invalidates existing expressions;
   never call while another domain is interning). *)
let reset_for_testing () =
  interned (fun () ->
      Hashtbl.reset var_table;
      Hashtbl.reset vars_by_id;
      Hashtbl.reset bv_table;
      Hashtbl.reset bool_table;
      var_counter := 0;
      bv_counter := 0;
      bool_counter := 0)
