(** Independent DRUP proof checker for {!Sat} refutations.

    A deliberately separate implementation of unit propagation (sharing
    only the literal encoding with the solver) that validates a logged
    derivation against the raw original CNF: every [P_add] step must have
    the reverse-unit-propagation property — assuming the negation of each
    of its literals and propagating over the clauses admitted so far must
    yield a conflict — and the derivation must reach the empty clause.

    {!Solver}'s certify mode feeds it {!Sat.original_clauses} and
    {!Sat.proof_steps} after every [Unsat] answer and downgrades the
    answer to [Unknown] if the proof does not check. *)

type verdict =
  | Valid  (** every step is RUP and the empty clause was derived *)
  | Invalid of string  (** why the derivation was rejected *)

val check_derivation : int array list -> Sat.proof_step list -> verdict
(** [check_derivation originals steps] checks [steps] (in order) against
    the clause database seeded with [originals].  Tautologies are inert;
    deletions of unknown clauses are ignored (as in drat-trim).  Runs in
    time comparable to the original solve: propagation uses two watched
    literals. *)
