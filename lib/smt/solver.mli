(** Solver frontend: the STP-shaped interface the rest of SOFT uses.

    A query is a conjunction of boolean expressions.  The pipeline is
    constant short-circuiting, then the sound UNSAT-only interval filter,
    then bit-blasting to the CDCL SAT core with model extraction.
    Results are memoized on the multiset of constraint ids.

    Every query may carry a resource {!budget}; exhausting it yields the
    third outcome [Unknown], which is never cached (a later identical
    query may carry a larger budget).

    All mutable frontend state (memo cache, stats, certify flag, query
    hook, default budget) is {e per-domain}: each domain owns an
    independent solver context, created on first use from the built-in
    defaults.  [check] is therefore safe to call concurrently from
    several domains.  Parallel drivers hand the parent's configuration
    to workers via {!snapshot_config}/{!apply_config} and fold worker
    counters back with {!merge_stats}. *)

type unknown_reason =
  | Out_of_conflicts  (** the conflict budget was exhausted *)
  | Out_of_decisions  (** the decision budget was exhausted *)
  | Out_of_time  (** the per-query wall-clock budget was exhausted *)
  | Proof_failed of string
      (** certify mode: the SAT core answered Unsat but the independent
          DRUP checker rejected its proof — the answer is not trusted *)

type result =
  | Sat of Model.t  (** satisfiable, with a concrete witness *)
  | Unsat
  | Unknown of unknown_reason  (** gave up within the budget *)

exception Solver_error of string * Expr.boolean list
(** Internal soundness violation (e.g. a SAT answer whose model does not
    satisfy the query), carrying the offending query.  A real exception
    rather than an [assert]: asserts vanish under [--release]. *)

val unknown_reason_to_string : unknown_reason -> string

(** {1 Budgets} *)

type budget = {
  b_max_conflicts : int option;  (** CDCL conflicts per query *)
  b_max_decisions : int option;  (** CDCL decisions per query *)
  b_timeout_ms : int option;  (** wall-clock per query, monotonic *)
}

val no_budget : budget
(** No limits; [solve] runs to completion (the pre-budget behaviour). *)

val budget :
  ?max_conflicts:int -> ?max_decisions:int -> ?timeout_ms:int -> unit -> budget

val is_unlimited : budget -> bool

val set_default_budget : budget -> unit
(** Budget applied to queries that pass no explicit [?budget] {e in the
    calling domain}.  The CLI sets this from
    [--budget-ms]/[--max-conflicts] so limits reach every solver call in
    the process; worker domains inherit it via {!apply_config}. *)

val get_default_budget : unit -> budget

(** {1 Certification} *)

val set_certify : bool -> unit
(** When enabled, every query reaching the SAT core logs a DRUP proof;
    an [Unsat] answer is published only if {!Proof.check_derivation}
    accepts the proof, and is downgraded to [Unknown (Proof_failed _)]
    otherwise.  The interval pre-filter is bypassed (its Unsat answers
    carry no proof); constant folding of a literal [false] conjunct is the
    one remaining uncertified Unsat path.  Toggling flushes the memo
    cache: entries from the other regime are not comparable. *)

val certify_enabled : unit -> bool

val set_canon : bool -> unit
(** Enable/disable the α-invariant canonical memo layer (default on) in
    the calling domain.  On an exact-key cache miss the query's cheap
    {!Canon.fingerprint} is probed against an index of cached queries;
    only a fingerprint match triggers full canonicalization
    ({!Canon.of_conds}) to confirm the α-equivalence, so the common
    no-twin miss costs one memoized integer fold.  A confirmed hit
    answers Unsat directly (unsatisfiability transfers across the
    variable bijection) and pre-confirms Sat, whose witness is still
    replayed through the scratch core so published models are
    byte-identical to a fresh solve.  A hit consumes exactly the query-hook
    draw the solve it replaces would have consumed (fired directly on an
    Unsat hit, by the replay on a Sat hit), so fault-injection streams
    stay aligned with a [--no-canon] run.  Under certify a canonical hit is
    counted but {e never} trusted: the query falls through to the
    proof-checked core.  Toggling flushes nothing — canonical reuse
    stays sound either way. *)

val canon_enabled : unit -> bool

val default_canon_threshold : int
(** The measured node-count cutoff below which queries skip the
    canonical memo (64 — see [solver.ml]). *)

val set_canon_threshold : int -> unit
(** Set the cutoff: queries whose summed {!Expr.bool_size} is below it
    bypass the canonical lookup {e and} registration (counted in
    [canon_small_skips]; the cutoff in force is recorded in the
    [canon_threshold_nodes] gauge).  They are cheaper to solve than to
    canonicalize; the exact-key memo cache still serves their repeats.
    Process-wide, not per-domain, so pool workers and their caller
    always agree; [0] disables the skip entirely (tests targeting the
    canonical layer with tiny queries use that). *)

val canon_threshold : unit -> int

val set_query_hook : (unit -> unit) -> unit
(** Install a closure run on every query that reaches the SAT core
    (between deadline anchoring and the search).  Fault injection uses
    this to deliver solver faults and clock jumps; install
    [(fun () -> ())] to remove.  An exception it raises propagates to the
    {!check} caller.  The hook is per-domain: a crosscheck worker
    installing it for a pair's scope never perturbs other domains. *)

(** {1 Cross-domain configuration hand-off} *)

type config = {
  cfg_budget : budget;
  cfg_certify : bool;
  cfg_cache_capacity : int;
  cfg_canon : bool;
}
(** The configurable part of a domain's solver context — what a freshly
    spawned worker domain must inherit to behave like its parent. *)

val snapshot_config : unit -> config
(** The calling domain's current configuration. *)

val apply_config : config -> unit
(** Install [config] into the calling domain's context.  Flushes the
    memo cache iff the certify regime changes (entries from the other
    regime are not comparable), exactly as {!set_certify} does. *)

(** {1 Statistics} *)

type stats = {
  mutable queries : int;
  mutable const_hits : int;  (** answered by constant folding *)
  mutable interval_hits : int;  (** answered by the interval filter *)
  mutable cache_hits : int;
  mutable sat_calls : int;  (** queries reaching the SAT core *)
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable unknown_results : int;  (** queries that exhausted their budget *)
  mutable cache_evictions : int;
      (** bounded (evict-LRU-half) eviction events at capacity *)
  mutable solver_time : float;  (** monotonic seconds inside the SAT core *)
  mutable proofs_checked : int;  (** certify mode: Unsat proofs validated *)
  mutable proofs_failed : int;  (** certify mode: proofs the checker rejected *)
  mutable sessions_opened : int;  (** incremental sessions created *)
  mutable assumption_solves : int;
      (** queries answered by an in-session assumption solve *)
  mutable scratch_fallbacks : int;
      (** session queries re-run from scratch after an in-session Unknown *)
  mutable tiny_session_fallbacks : int;
      (** crosscheck rows solved scratch because they held too few pairs
          for a session's bit-blast prefix to pay for itself *)
  mutable learnt_retained : int;
      (** learnt clauses already in a session's database when an
          assumption solve started — the reuse incrementality buys *)
  mutable canonical_hits : int;
      (** queries answered (or, under certify, pre-confirmed) by the
          α-invariant canonical memo after an exact-key miss *)
  mutable canon_small_skips : int;
      (** queries that bypassed the canonical memo (lookup and
          registration) because their boolean DAG was smaller than the
          node-count cutoff — cheaper to solve than to canonicalize *)
  mutable canon_threshold_nodes : int;
      (** gauge: the node-count cutoff in force when small queries were
          skipped; merged with [max], not [+] *)
  mutable rows_pruned : int;
      (** crosscheck rows skipped wholesale because the row condition is
          unsatisfiable against the other side's common constraint *)
  mutable pairs_skipped_by_pruning : int;
      (** pairwise checks avoided by row pruning and row subsumption *)
  mutable subsumed_groups : int;
      (** row-prune probes avoided because the row's condition is
          subsumed by an already-pruned row's condition *)
  mutable shared_solves : int;
      (** queries answered by an assumption solve on an adopted copy of
          the shared blasted base *)
  mutable bases_adopted : int;
      (** shared-base adoptions: one per (domain, shared base) — the
          number of [Sat.copy]s made in place of full re-blasts *)
  mutable clauses_exported : int;
      (** low-LBD learnt clauses this domain published to the
          cross-domain exchange ring *)
  mutable clauses_imported : int;
      (** learnt clauses this domain pulled from the exchange ring at
          solve entries and restart boundaries *)
  mutable expr_nodes : int;
      (** gauge: total nodes in the global {!Expr} hash-cons tables at the
          last {!capture_expr_stats}; merged with [max], not [+] *)
}

val stats : unit -> stats
(** The calling domain's counters, cumulative since the domain's first
    solver use or the last {!reset_stats}.  The returned record is live:
    later queries in this domain keep mutating it. *)

val reset_stats : unit -> unit

val merge_stats : into:stats -> stats -> unit
(** [merge_stats ~into src] adds every counter of [src] into [into] —
    except [expr_nodes], a gauge over one global table, which merges with
    [max] so folding several workers never double-counts shared nodes.
    Parallel drivers use it to fold worker-domain counters into the
    parent's record after the workers have quiesced; it performs no
    synchronization of its own. *)

val capture_expr_stats : unit -> unit
(** Record the current global {!Expr} hash-cons table size into the
    calling domain's [expr_nodes] gauge.  Called automatically by
    {!pp_stats} and by the crosscheck pool's worker-exit hook. *)

(** {1 Memo cache} *)

val clear_cache : unit -> unit
(** Drop both memo levels — the exact-key table and the canonical
    (α-invariant) fingerprint index.  Benchmarks use this to measure cold costs;
    reproducibility harnesses use it to realign two runs' query streams
    (a surviving canonical entry would let one run skip a SAT-core call,
    and its fault-injection draw, that the other still makes). *)

val cache_len : unit -> int
(** Entries currently in the calling domain's memo table.  The service's
    memory-pressure ladder reads this to report how much cache a shed
    released. *)

val set_cache_capacity : int -> unit
(** Entry count at which bounded eviction triggers (default 65536, per
    memo level); on reaching it the *colder half* of the entries
    (least-recently-used first — a hit moves an entry to the back) is
    discarded, keeping the hot half warm while bounding memory for
    week-long suite runs.
    @raise Invalid_argument on a non-positive capacity. *)

(** {1 Queries} *)

val check :
  ?use_interval:bool -> ?use_cache:bool -> ?budget:budget -> Expr.boolean list -> result
(** [check conds] decides the conjunction of [conds].  [use_interval]
    (default true) enables the interval pre-filter; [use_cache] (default
    true) the memo table; [budget] defaults to {!set_default_budget}'s
    value (initially unlimited).  [Unknown] results are never cached. *)

val check_with :
  ?use_interval:bool ->
  ?use_cache:bool ->
  ?budget:budget ->
  core:(budget -> Expr.boolean list -> result) ->
  Expr.boolean list ->
  result
(** {!check} with a pluggable back end: the full frontend pipeline
    (constant folding, memo cache, interval filter, result sanity check
    and caching) runs as usual, and [core budget conds] decides the
    queries that survive it.  [check] is [check_with] over the scratch
    SAT core; {!Session.check} supplies an incremental assumption solve.
    Sharing the front half is what keeps the two modes' query streams —
    and hence their fault-injection draws and memo behaviour —
    identical. *)

val solve_scratch : ?fire_hook:bool -> budget -> Expr.boolean list -> result
(** A raw scratch SAT solve (blast + CDCL + certify-mode proof check) on
    the calling domain's context, bypassing constant folding, the cache
    and the interval filter.  [fire_hook] (default true) controls whether
    the {!set_query_hook} closure runs; the incremental session passes
    [false] when re-deriving a canonical witness so it does not consume a
    fault-injection draw scratch mode would not consume. *)

val run_query_hook : unit -> unit
(** Fire the calling domain's query hook, exactly as a query reaching the
    SAT core would.  The incremental session calls this once per
    assumption solve to keep the fault-injection stream aligned with
    scratch mode. *)

val is_sat :
  ?use_interval:bool -> ?use_cache:bool -> ?budget:budget -> Expr.boolean list -> bool
(** [Unknown] maps to [false]; callers that must distinguish "unsat" from
    "gave up" use {!check}. *)

val get_model :
  ?use_interval:bool ->
  ?use_cache:bool ->
  ?budget:budget ->
  Expr.boolean list ->
  Model.t option

val entails : ?budget:budget -> Expr.boolean list -> Expr.boolean -> bool
(** [entails pc c] iff [pc ∧ ¬c] is unsatisfiable.  [Unknown] answers
    [false]: we refuse to certify an entailment we could not prove. *)

val pp_stats : Format.formatter -> unit -> unit
