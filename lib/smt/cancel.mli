(** Preemptive cancellation tokens.

    Budgets ({!Sat.solve}'s conflict/decision/deadline limits) are
    {e cooperative}: they are only checked inside the CDCL loop.  A
    pathological bit-blast, an interning storm, or a hung agent step never
    reaches a budget checkpoint and can stall a worker domain forever.
    Cancellation tokens close that gap: a supervisor (another domain) flips
    an atomic flag, and the hot paths outside the CDCL loop — {!Bitblast}
    memo misses, {!Expr} interning, {!Interval} passes, {!Session} solves —
    poll it and abort promptly by raising {!Cancelled}.

    A token is installed for the current domain's dynamic extent with
    {!set_current}; {!poll} is then a cheap no-op everywhere a token is not
    installed, so code outside a supervised task pays two loads and no
    branch misprediction in the common case. *)

type reason =
  | Deadline  (** the task overran its wall-clock deadline *)
  | Memory  (** the process crossed the memory ceiling; shed and degrade *)

exception Cancelled of reason
(** Raised from a poll site once the token has been cancelled.  Supervised
    tasks translate it into a failure-taxonomy tag; it must not escape a
    supervision scope. *)

type t
(** A cancellation token: one atomic flag, written once by the supervisor,
    read by every poll site. *)

val create : unit -> t

val cancel : t -> reason -> unit
(** Request cancellation.  The first reason wins; later calls are no-ops,
    so a deadline kill is not re-labelled by a concurrent memory kill. *)

val is_cancelled : t -> bool

val reason : t -> reason option

val check : t -> unit
(** Raise {!Cancelled} if [t] has been cancelled, else return. *)

val set_current : t -> unit
(** Install [t] as the current domain's token for subsequent {!poll}s. *)

val clear_current : unit -> unit

val current : unit -> t option
(** The token installed on the calling domain, if any. *)

val poll : unit -> unit
(** [check] the current domain's token; no-op when none is installed. *)
