(* Path exploration by re-execution (generational search).

   A program under test is an OCaml function over an ['ev env]; it reads
   symbolic inputs (bitvector expressions), branches via [branch], and emits
   observable events via [emit].  When a branch condition is symbolic and
   both arms are feasible under the current path condition, the engine
   records a *replay script* for the unexplored arm on the frontier and
   continues down the chosen arm.  Each frontier item is re-executed from
   the start with its script; scripted decisions are consumed without
   solver calls, so the solver only runs at genuinely new forks.

   This plays the role Cloud9 plays for SOFT: it produces, per explored
   path, the path condition, the normalized output events, and the covered
   program points. *)

open Smt

type decision = Dir of bool | Val of int64

type 'ev env = {
  mutable pc_rev : Expr.boolean list;
  mutable dom : Interval.t;
  mutable script : decision list; (* prescribed prefix to replay *)
  mutable taken_rev : decision list;
  mutable events_rev : 'ev list;
  mutable model : Model.t option; (* invariant: satisfies [pc_rev] when Some *)
  cov : Coverage.set;
  mutable ndecisions : int;
  eng : 'ev engine_state;
}

and 'ev engine_state = {
  frontier : decision list Strategy.frontier;
  global_cov : Coverage.set;
  max_decisions : int;
  use_interval : bool;
  solver_budget : Solver.budget option; (* per-query budget for arm solving *)
  mutable forks : int;
  mutable aborted : int;
  mutable truncated : int;
  mutable solver_unknowns : int; (* arm queries that exhausted their budget *)
  mutable exceptions : int; (* paths ended by an uncaught agent exception *)
}

exception Path_crash of string
exception Path_abort
exception Path_stop

(* Exceptions the per-path crash isolation must never swallow, beyond the
   built-in [Out_of_memory]/[Solver_error].  Fault injection registers its
   marker exception here: a chaos fault recorded as an ordinary crash path
   would become part of the agent's observable behaviour and could flip a
   crosscheck verdict, so it has to abort the whole run loudly instead. *)
let fatal_predicates : (exn -> bool) list ref = ref []

let register_fatal p = fatal_predicates := p :: !fatal_predicates

let is_fatal e = List.exists (fun p -> p e) !fatal_predicates

type 'ev path_result = {
  pc : Expr.boolean list; (* in execution order *)
  path_cond : Expr.boolean; (* balanced conjunction of [pc] *)
  events : 'ev list;
  crashed : string option;
  covered : Coverage.snapshot;
  decisions : int;
}

type run_stats = {
  path_count : int;
  aborted : int;
  truncated : int;
  forks : int;
  exceptions : int; (* paths that ended in an uncaught agent exception *)
  solver_unknowns : int; (* arm queries lost to the solver budget *)
  deadline_hit : bool; (* exploration stopped by the wall-clock budget *)
  cpu_time : float;
  wall_time : float;
  avg_constraint_size : float;
  max_constraint_size : int;
  solver_sat_calls : int;
  solver_cache_hits : int;
  solver_interval_hits : int;
}

type 'ev run_result = {
  results : 'ev path_result list;
  stats : run_stats;
  coverage : Coverage.set;
}

(* ------------------------------------------------------------------ *)
(* Primitives available to programs under test *)

let emit env ev = env.events_rev <- ev :: env.events_rev

let events_so_far env = List.rev env.events_rev

let event_count env = List.length env.events_rev

let crash _env msg = raise (Path_crash msg)

(* End the current path normally (e.g. the program under test blocks
   waiting for input that will never come); events so far are recorded. *)
let stop _env = raise Path_stop

let cover env point =
  Coverage.mark env.cov point;
  Coverage.mark env.eng.global_cov point

let mark_branch env (loc : Coverage.branch_point option) dir =
  match loc with
  | None -> ()
  | Some bp -> cover env (if dir then bp.Coverage.on_true else bp.Coverage.on_false)

let path_condition env = List.rev env.pc_rev

(* Solve pc ∧ extra, returning a model on success.  The interval domain
   gives a fast sound UNSAT answer first.  A budget-exhausted [Unknown]
   degrades to "arm not taken": the path set may then be incomplete, which
   SOFT tolerates by design (§4.1) — the loss is counted in
   [solver_unknowns] so reports can say so. *)
let solve_arm env extra =
  let dom' = Interval.copy env.dom in
  if env.eng.use_interval && Interval.add dom' extra = Interval.Unsat then None
  else
    match
      Solver.check ~use_interval:false ?budget:env.eng.solver_budget (extra :: env.pc_rev)
    with
    | Solver.Sat m -> Some m
    | Solver.Unsat -> None
    | Solver.Unknown _ ->
      env.eng.solver_unknowns <- env.eng.solver_unknowns + 1;
      None


let commit_constraint env c =
  env.pc_rev <- c :: env.pc_rev;
  if env.eng.use_interval then ignore (Interval.add env.dom c);
  (* keep the cached model honest: drop it if the new constraint falsifies
     it *)
  match env.model with
  | Some m when not (Model.eval_bool m c) -> env.model <- None
  | _ -> ()

let take_dir env loc cond d =
  commit_constraint env (if d then cond else Expr.not_ cond);
  env.taken_rev <- Dir d :: env.taken_rev;
  mark_branch env loc d;
  d

(* Branch on a symbolic condition, forking if both arms are feasible. *)
let branch ?loc env cond =
  if Expr.is_true cond then begin
    mark_branch env loc true;
    true
  end
  else if Expr.is_false cond then begin
    mark_branch env loc false;
    false
  end
  else begin
    env.ndecisions <- env.ndecisions + 1;
    if env.ndecisions > env.eng.max_decisions then begin
      env.eng.truncated <- env.eng.truncated + 1;
      raise Path_abort
    end;
    match env.script with
    | Dir d :: rest ->
      env.script <- rest;
      take_dir env loc cond d
    | Val _ :: _ ->
      invalid_arg "Engine.branch: replay script out of sync (expected direction)"
    | [] ->
      (* the cached model satisfies pc, so the arm it picks is feasible
         without a solver call; only the other arm needs solving *)
      let model_pick = Option.map (fun m -> Model.eval_bool m cond) env.model in
      let arm want =
        match model_pick with
        | Some b when b = want -> (true, env.model)
        | _ -> (
          match solve_arm env (if want then cond else Expr.not_ cond) with
          | Some m -> (true, Some m)
          | None -> (false, None))
      in
      let feas_true, model_true = arm true in
      let feas_false, model_false = arm false in
      (match (feas_true, feas_false) with
       | true, true ->
         env.eng.forks <- env.eng.forks + 1;
         let fresh =
           match loc with
           | None -> false
           | Some bp -> not (Coverage.covered env.eng.global_cov bp.Coverage.on_false)
         in
         let alt_script = List.rev (Dir false :: env.taken_rev) in
         Strategy.add env.eng.frontier ~fresh alt_script;
         env.model <- model_true;
         take_dir env loc cond true
       | true, false ->
         env.model <- model_true;
         take_dir env loc cond true
       | false, true ->
         env.model <- model_false;
         take_dir env loc cond false
       | false, false ->
         (* path condition became unsatisfiable: dead path *)
         env.eng.aborted <- env.eng.aborted + 1;
         raise Path_abort)
  end

(* Add a constraint; kill the path if it is infeasible. *)
let assume env cond =
  if Expr.is_true cond then ()
  else if Expr.is_false cond then begin
    env.eng.aborted <- env.eng.aborted + 1;
    raise Path_abort
  end
  else begin
    let ok =
      match env.model with
      | Some m when Model.eval_bool m cond -> true
      | _ -> (
        match solve_arm env cond with
        | Some m ->
          env.model <- Some m;
          true
        | None -> false)
    in
    if ok then commit_constraint env cond
    else begin
      env.eng.aborted <- env.eng.aborted + 1;
      raise Path_abort
    end
  end

(* Pin a symbolic expression to one concrete representative value under the
   current path condition.  Replays deterministically. *)
let concretize env (e : Expr.bv) =
  match Expr.const_value e with
  | Some v -> v
  | None -> (
    match env.script with
    | Val v :: rest ->
      env.script <- rest;
      commit_constraint env (Expr.eq e (Expr.const ~width:(Expr.width e) v));
      env.taken_rev <- Val v :: env.taken_rev;
      v
    | Dir _ :: _ ->
      invalid_arg "Engine.concretize: replay script out of sync (expected value)"
    | [] -> (
      let model =
        match env.model with
        | Some m -> Some m
        | None -> (
          match Solver.check ?budget:env.eng.solver_budget env.pc_rev with
          | Solver.Sat m -> Some m
          | Solver.Unsat -> None
          | Solver.Unknown _ ->
            env.eng.solver_unknowns <- env.eng.solver_unknowns + 1;
            None)
      in
      match model with
      | None ->
        env.eng.aborted <- env.eng.aborted + 1;
        raise Path_abort
      | Some m ->
        let v = Model.eval_bv m e in
        env.model <- Some m;
        commit_constraint env (Expr.eq e (Expr.const ~width:(Expr.width e) v));
        env.taken_rev <- Val v :: env.taken_rev;
        v))

(* Convenience: branch on equality with a constant. *)
let branch_eq ?loc env e v =
  branch ?loc env (Expr.eq e (Expr.const ~width:(Expr.width e) v))

(* ------------------------------------------------------------------ *)
(* Exploration driver *)

let run ?(strategy = Strategy.default) ?(max_paths = max_int) ?(max_decisions = 4096)
    ?max_attempts ?(use_interval = true) ?deadline_ms ?solver_budget program =
  (* aborted and truncated re-executions consume attempts so that a program
     with unbounded symbolic branching cannot spin the driver forever *)
  let max_attempts =
    match max_attempts with
    | Some n -> n
    | None -> if max_paths >= max_int / 4 then max_int else (2 * max_paths) + 1024
  in
  let eng =
    {
      frontier = Strategy.create strategy;
      global_cov = Coverage.empty_set ();
      max_decisions;
      use_interval;
      solver_budget;
      forks = 0;
      aborted = 0;
      truncated = 0;
      solver_unknowns = 0;
      exceptions = 0;
    }
  in
  let solver_stats0 =
    let s = Solver.stats () in
    Solver.(s.sat_calls, s.cache_hits, s.interval_hits)
  in
  let cpu0 = Sys.time () and wall0 = Mono.now () in
  let deadline =
    Option.map (fun ms -> wall0 +. (float_of_int ms /. 1000.0)) deadline_ms
  in
  let deadline_hit = ref false in
  let past_deadline () =
    match deadline with
    | Some d when Mono.now () >= d ->
      deadline_hit := true;
      true
    | _ -> false
  in
  Strategy.add eng.frontier ~fresh:true [];
  let results = ref [] in
  let count = ref 0 in
  let attempts = ref 0 in
  let rec loop () =
    if !count >= max_paths || !attempts >= max_attempts || past_deadline () then ()
    else
      match Strategy.pop eng.frontier with
      | None -> ()
      | Some script ->
        incr attempts;
        let env =
          {
            pc_rev = [];
            dom = Interval.create ();
            script;
            taken_rev = [];
            events_rev = [];
            model = Some (Model.empty ());
            cov = Coverage.empty_set ();
            ndecisions = 0;
            eng;
          }
        in
        (try
           (try program env with Path_stop -> ());
           incr count;
           results :=
             {
               pc = List.rev env.pc_rev;
               path_cond = Expr.balanced_conj (List.rev env.pc_rev);
               events = List.rev env.events_rev;
               crashed = None;
               covered = Coverage.snapshot env.cov;
               decisions = env.ndecisions;
             }
             :: !results
         with
         | Path_crash msg ->
           incr count;
           results :=
             {
               pc = List.rev env.pc_rev;
               path_cond = Expr.balanced_conj (List.rev env.pc_rev);
               events = List.rev env.events_rev;
               crashed = Some msg;
               covered = Coverage.snapshot env.cov;
               decisions = env.ndecisions;
             }
             :: !results
         | Path_abort -> ()
         | (Out_of_memory | Solver.Solver_error _) as e ->
           (* process-level resource exhaustion and solver soundness
              violations must not be masked as one bad path *)
           raise e
         | e when is_fatal e -> raise e
         | e ->
           (* crash isolation: an uncaught exception in the agent ends this
              path with a crash record instead of aborting the whole run *)
           eng.exceptions <- eng.exceptions + 1;
           incr count;
           results :=
             {
               pc = List.rev env.pc_rev;
               path_cond = Expr.balanced_conj (List.rev env.pc_rev);
               events = List.rev env.events_rev;
               crashed = Some ("uncaught exception: " ^ Printexc.to_string e);
               covered = Coverage.snapshot env.cov;
               decisions = env.ndecisions;
             }
             :: !results);
        loop ()
  in
  loop ();
  let results = List.rev !results in
  let cpu_time = Sys.time () -. cpu0 and wall_time = Mono.elapsed wall0 in
  let sizes = List.map (fun r -> Expr.bool_size r.path_cond) results in
  let total_size = List.fold_left ( + ) 0 sizes in
  let max_size = List.fold_left max 0 sizes in
  let sc1, cc1, ic1 =
    let s = Solver.stats () in
    Solver.(s.sat_calls, s.cache_hits, s.interval_hits)
  in
  let sc0, cc0, ic0 = solver_stats0 in
  {
    results;
    coverage = eng.global_cov;
    stats =
      {
        path_count = List.length results;
        aborted = eng.aborted;
        truncated = eng.truncated;
        forks = eng.forks;
        exceptions = eng.exceptions;
        solver_unknowns = eng.solver_unknowns;
        deadline_hit = !deadline_hit;
        cpu_time;
        wall_time;
        avg_constraint_size =
          (if results = [] then 0.0
           else float_of_int total_size /. float_of_int (List.length results));
        max_constraint_size = max_size;
        solver_sat_calls = sc1 - sc0;
        solver_cache_hits = cc1 - cc0;
        solver_interval_hits = ic1 - ic0;
      };
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "paths=%d aborted=%d truncated=%d forks=%d exceptions=%d cpu=%.2fs constraints(avg=%.2f max=%d) sat_calls=%d"
    s.path_count s.aborted s.truncated s.forks s.exceptions s.cpu_time
    s.avg_constraint_size s.max_constraint_size s.solver_sat_calls;
  if s.solver_unknowns > 0 then Format.fprintf fmt " solver_unknowns=%d" s.solver_unknowns;
  if s.deadline_hit then Format.fprintf fmt " (wall-clock budget hit)"
